file(REMOVE_RECURSE
  "../lib/librelc_refimpls.a"
  "../lib/librelc_refimpls.pdb"
  "CMakeFiles/relc_refimpls.dir/ref/ref_impls.c.o"
  "CMakeFiles/relc_refimpls.dir/ref/ref_impls.c.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang C)
  include(CMakeFiles/relc_refimpls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
