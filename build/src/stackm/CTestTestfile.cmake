# CMake generated Testfile for 
# Source directory: /root/repo/src/stackm
# Build directory: /root/repo/build/src/stackm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
