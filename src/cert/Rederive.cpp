//===- cert/Rederive.cpp - Independent certificate re-derivation -----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The deterministic replayer behind relc-check. Structurally this mirrors
// the two symbolic evaluators in tv/Tv.cpp — the checker must re-derive
// the same term graph the producer built, so the evaluation rules are the
// same by construction — but with the one asymmetry that makes the whole
// subsystem worth having: where the validator *searches* for a loop match
// (a backtracking bijection over carried locals), the checker *replays*
// the certificate's recorded witness and verifies the match equations
// directly. Every divergence rejects with a named reason; nothing here
// ever "fixes up" a certificate to make it pass.
//
//===----------------------------------------------------------------------===//

#include "cert/Rederive.h"
#include "support/Hash.h"

#include "analysis/Domains.h"
#include "bedrock/Ast.h"
#include "codelint/Codelint.h"
#include "support/Casting.h"
#include "support/StringExtras.h"
#include "tv/Term.h"

#include <algorithm>
#include <map>
#include <set>

namespace relc {
namespace cert {

namespace {

using tv::AffineView;
using tv::FoldInfo;
using tv::FoldRef;
using tv::FoldRegion;
using tv::NoTerm;
using tv::TermGraph;
using tv::TermId;

//===----------------------------------------------------------------------===//
// Small utilities (mirroring tv/Tv.cpp's, which live in its anonymous
// namespace and are deliberately not exported).
//===----------------------------------------------------------------------===//

/// Internal rejection escape; caught at the Rederive::check boundary.
struct CheckFail {
  Reject Why;
  std::string Detail;
};

[[noreturn]] void fail(Reject Why, const std::string &Detail) {
  throw CheckFail{Why, Detail};
}

bedrock::BinOp lowerOp(ir::WordOp Op) {
  switch (Op) {
  case ir::WordOp::Add:
    return bedrock::BinOp::Add;
  case ir::WordOp::Sub:
    return bedrock::BinOp::Sub;
  case ir::WordOp::Mul:
    return bedrock::BinOp::Mul;
  case ir::WordOp::DivU:
    return bedrock::BinOp::DivU;
  case ir::WordOp::RemU:
    return bedrock::BinOp::RemU;
  case ir::WordOp::And:
    return bedrock::BinOp::And;
  case ir::WordOp::Or:
    return bedrock::BinOp::Or;
  case ir::WordOp::Xor:
    return bedrock::BinOp::Xor;
  case ir::WordOp::Shl:
    return bedrock::BinOp::Shl;
  case ir::WordOp::LShr:
    return bedrock::BinOp::LShr;
  case ir::WordOp::AShr:
    return bedrock::BinOp::AShr;
  case ir::WordOp::LtU:
    return bedrock::BinOp::LtU;
  case ir::WordOp::LtS:
    return bedrock::BinOp::LtS;
  case ir::WordOp::Eq:
    return bedrock::BinOp::Eq;
  case ir::WordOp::Ne:
    return bedrock::BinOp::Ne;
  }
  fail(Reject::RederivationFailed, "unknown word operator");
}

std::string joinNames(const std::vector<std::string> &Names) {
  std::string Out;
  for (const std::string &N : Names) {
    if (!Out.empty())
      Out += ",";
    Out += N;
  }
  return Out;
}

std::string joinSet(const std::set<std::string> &S) {
  std::string Out;
  for (const std::string &N : S) {
    if (!Out.empty())
      Out += ",";
    Out += N;
  }
  return Out;
}

std::string clip(const std::string &S, size_t Max = 96) {
  if (S.size() <= Max)
    return S;
  return S.substr(0, Max) + "...";
}

uint64_t tableMax(const std::vector<uint64_t> &Elements) {
  uint64_t M = 0;
  for (uint64_t E : Elements)
    M = std::max(M, E);
  return M;
}

bool isLoopForm(const ir::BoundForm &B) {
  switch (B.kind()) {
  case ir::BoundForm::Kind::ListMap:
  case ir::BoundForm::Kind::ListFold:
  case ir::BoundForm::Kind::FoldBreak:
  case ir::BoundForm::Kind::RangeFold:
  case ir::BoundForm::Kind::WhileComb:
    return true;
  default:
    return false;
  }
}

bool progHasLoop(const ir::Prog &P) {
  for (const ir::Binding &B : P.bindings()) {
    if (isLoopForm(*B.Bound))
      return true;
    if (const auto *IB = dyn_cast<ir::IfBound>(B.Bound.get()))
      if (progHasLoop(*IB->thenProg()) || progHasLoop(*IB->elseProg()))
        return true;
  }
  return false;
}

void collectProgWrites(const ir::Prog &P, std::set<std::string> &Out) {
  for (const ir::Binding &B : P.bindings()) {
    if (const auto *AP = dyn_cast<ir::ArrayPut>(B.Bound.get()))
      Out.insert(AP->array());
    else if (const auto *CP = dyn_cast<ir::CellPut>(B.Bound.get()))
      Out.insert(CP->cell());
    else if (const auto *CI = dyn_cast<ir::CellIncr>(B.Bound.get()))
      Out.insert(CI->cell());
    else if (const auto *IB = dyn_cast<ir::IfBound>(B.Bound.get())) {
      collectProgWrites(*IB->thenProg(), Out);
      collectProgWrites(*IB->elseProg(), Out);
    }
  }
}

//===----------------------------------------------------------------------===//
// Symbolic states (same shape as the producer's).
//===----------------------------------------------------------------------===//

struct SrcArr {
  std::string Region;
  TermId Len = NoTerm;
  unsigned EltBytes = 1;
};

struct SrcState {
  std::map<std::string, TermId> Scal;
  std::map<std::string, SrcArr> Arr;
  std::set<std::string> Cells;
  std::map<std::string, TermId> Region;
};

struct TgtState {
  std::map<std::string, TermId> Locals;
  std::map<std::string, TermId> Region;
  std::map<std::string, std::string> LocalDef;
  std::map<std::string, std::string> RegionDef;
};

struct SrcLoopRec {
  TermId Fold = NoTerm;
  std::string BindingName;
  std::string Path;
};

//===----------------------------------------------------------------------===//
// The replayer.
//===----------------------------------------------------------------------===//

class Replayer {
public:
  Replayer(const Certificate &Cert, const ir::SourceFn &Src,
           const sep::FnSpec &Spec, const bedrock::Function &Fn,
           const analysis::EntryFactList &Hints)
      : Cert(Cert), Src(Src), Spec(Spec), Fn(Fn),
        Abi(analysis::makeAbiInfo(Fn, Spec, Src, Hints)) {
    G.setEntryFacts(&Abi.EntryFacts);
  }

  CheckResult run() {
    if (Src.TheMonad != ir::Monad::Pure)
      fail(Reject::RederivationFailed,
           std::string("model is in the ") + ir::monadName(Src.TheMonad) +
               " monad; a proved certificate is impossible");
    checkTables();
    setupRegions();
    SrcState SS = sourceEntry();
    evalSrcProg(*Src.Body, SS, "");
    TgtState TT = targetEntry();
    execBlock(Fn.Body.get(), TT, "body");
    return compareTrace(SS, TT);
  }

private:
  const Certificate &Cert;
  const ir::SourceFn &Src;
  const sep::FnSpec &Spec;
  const bedrock::Function &Fn;
  analysis::AbiInfo Abi;
  TermGraph G;

  std::vector<BindingRec> DerivedBindings;
  std::vector<LoopRec> DerivedLoops;

  std::map<std::string, unsigned> RegionWidth;
  std::map<TermId, std::string> PtrRegion;
  std::vector<SrcLoopRec> SrcLoops;
  unsigned TgtCursor = 0;
  std::map<std::string, std::string> LastSrcBind;
  std::set<std::string> *CurStores = nullptr;

  std::string canonSym(unsigned Loop, unsigned Pos) const {
    return "%L" + std::to_string(Loop) + ".c" + std::to_string(Pos);
  }
  std::string canonRegionSym(unsigned Loop, const std::string &R) const {
    return "%L" + std::to_string(Loop) + ".r." + R;
  }

  //===--------------------------------------------------------------------===//
  // Entry states.
  //===--------------------------------------------------------------------===//

  void checkTables() {
    for (const bedrock::InlineTable &T : Fn.Tables) {
      const ir::TableDef *D = Src.findTable(T.Name);
      if (!D)
        fail(Reject::RederivationFailed,
             "inline table '" + T.Name + "' has no counterpart in the model");
      if (bedrock::sizeBytes(T.EltSize) != ir::eltSize(D->Elt))
        fail(Reject::RederivationFailed,
             "inline table '" + T.Name +
                 "' element width differs from the model's");
      if (T.Elements != D->Elements)
        fail(Reject::RederivationFailed,
             "inline table '" + T.Name + "' contents differ from the model");
    }
  }

  void setupRegions() {
    for (const ir::Param &P : Src.Params) {
      if (P.TheKind == ir::Param::Kind::List)
        RegionWidth[P.Name] = ir::eltSize(P.Elt);
      else if (P.TheKind == ir::Param::Kind::Cell)
        RegionWidth[P.Name] = 8;
    }
  }

  SrcState sourceEntry() {
    std::map<std::string, std::string> CanonScalar;
    for (const sep::ArgSpec &A : Spec.Args)
      if (A.TheKind == sep::ArgSpec::Kind::ArrayLen)
        CanonScalar[A.SourceName] = "len_" + A.OfArray;

    SrcState S;
    for (const ir::Param &P : Src.Params) {
      switch (P.TheKind) {
      case ir::Param::Kind::ScalarWord: {
        auto It = CanonScalar.find(P.Name);
        S.Scal[P.Name] = G.sym(It != CanonScalar.end() ? It->second : P.Name);
        break;
      }
      case ir::Param::Kind::List: {
        unsigned W = ir::eltSize(P.Elt);
        S.Arr[P.Name] = {P.Name, G.sym("len_" + P.Name), W};
        S.Region[P.Name] = G.arrInit(P.Name, W);
        break;
      }
      case ir::Param::Kind::Cell:
        S.Cells.insert(P.Name);
        S.Region[P.Name] = G.arrInit(P.Name, 8);
        break;
      }
    }
    return S;
  }

  TgtState targetEntry() {
    TgtState T;
    for (const sep::ArgSpec &A : Spec.Args) {
      switch (A.TheKind) {
      case sep::ArgSpec::Kind::Scalar:
        T.Locals[A.TargetName] = G.sym(A.SourceName);
        break;
      case sep::ArgSpec::Kind::ArrayLen:
        T.Locals[A.TargetName] = G.sym("len_" + A.OfArray);
        break;
      case sep::ArgSpec::Kind::ArrayPtr:
      case sep::ArgSpec::Kind::CellPtr: {
        TermId P = G.sym("ptr_" + A.SourceName);
        T.Locals[A.TargetName] = P;
        PtrRegion[P] = A.SourceName;
        break;
      }
      }
      T.LocalDef[A.TargetName] = "entry";
    }
    for (const auto &[R, W] : RegionWidth) {
      T.Region[R] = G.arrInit(R, W);
      T.RegionDef[R] = "entry";
    }
    return T;
  }

  //===--------------------------------------------------------------------===//
  // Source evaluation.
  //===--------------------------------------------------------------------===//

  TermId evalSrcExpr(const ir::Expr &E, const SrcState &S) {
    switch (E.kind()) {
    case ir::Expr::Kind::Const:
      return G.constant(cast<ir::Const>(&E)->value().scalar());
    case ir::Expr::Kind::VarRef: {
      const std::string &N = cast<ir::VarRef>(&E)->name();
      auto It = S.Scal.find(N);
      if (It == S.Scal.end())
        fail(Reject::RederivationFailed,
             "model references '" + N + "' where no scalar value is tracked");
      return It->second;
    }
    case ir::Expr::Kind::Bin: {
      const auto *B = cast<ir::Bin>(&E);
      TermId L = evalSrcExpr(*B->lhs(), S);
      TermId R = evalSrcExpr(*B->rhs(), S);
      return G.bin(lowerOp(B->op()), L, R);
    }
    case ir::Expr::Kind::Select: {
      const auto *Sel = cast<ir::Select>(&E);
      TermId C = evalSrcExpr(*Sel->cond(), S);
      TermId T = evalSrcExpr(*Sel->thenExpr(), S);
      TermId F = evalSrcExpr(*Sel->elseExpr(), S);
      return G.select(C, T, F);
    }
    case ir::Expr::Kind::Cast: {
      const auto *C = cast<ir::Cast>(&E);
      TermId Op = evalSrcExpr(*C->operand(), S);
      switch (C->castKind()) {
      case ir::CastKind::ByteToWord:
      case ir::CastKind::BoolToWord:
        return Op;
      case ir::CastKind::WordToByte:
        return G.bin(bedrock::BinOp::And, Op, G.constant(0xff));
      }
      fail(Reject::RederivationFailed, "unknown cast");
    }
    case ir::Expr::Kind::ArrayGet: {
      const auto *AG = cast<ir::ArrayGet>(&E);
      auto It = S.Arr.find(AG->array());
      if (It == S.Arr.end())
        fail(Reject::RederivationFailed,
             "model reads array '" + AG->array() + "' which is not tracked");
      TermId Idx = evalSrcExpr(*AG->index(), S);
      return G.elt(S.Region.at(It->second.Region), Idx);
    }
    case ir::Expr::Kind::TableGet: {
      const auto *TG = cast<ir::TableGet>(&E);
      const ir::TableDef *D = Src.findTable(TG->table());
      if (!D)
        fail(Reject::RederivationFailed,
             "model reads unknown table '" + TG->table() + "'");
      TermId Idx = evalSrcExpr(*TG->index(), S);
      return G.tableElt(D->Name, ir::eltSize(D->Elt), tableMax(D->Elements),
                        Idx);
    }
    }
    fail(Reject::RederivationFailed, "unknown expression kind");
  }

  uint64_t srcValueHash(const SrcState &S, const std::string &Name) const {
    auto SIt = S.Scal.find(Name);
    if (SIt != S.Scal.end())
      return G.hashOf(SIt->second);
    auto AIt = S.Arr.find(Name);
    if (AIt != S.Arr.end())
      return G.hashOf(S.Region.at(AIt->second.Region));
    if (S.Cells.count(Name))
      return G.hashOf(S.Region.at(Name));
    return 0;
  }

  void recordBinding(const ir::Binding &B, const SrcState &S,
                     const std::string &Path) {
    uint64_t H = 0xcbf29ce484222325ull;
    for (const std::string &N : B.Names) {
      H = hash::fnv1a64Word(srcValueHash(S, N), H);
      LastSrcBind[N] = Path + ": let " + joinNames(B.Names) + " := " +
                       clip(B.Bound->str());
    }
    DerivedBindings.push_back({Path, joinNames(B.Names), H});
  }

  void evalSrcProg(const ir::Prog &P, SrcState &S, const std::string &Prefix) {
    const std::vector<ir::Binding> &Bs = P.bindings();
    for (size_t I = 0; I < Bs.size(); ++I)
      evalSrcBinding(Bs[I], S, Prefix + std::to_string(I));
  }

  void evalSrcBinding(const ir::Binding &B, SrcState &S,
                      const std::string &Path) {
    using K = ir::BoundForm::Kind;
    switch (B.Bound->kind()) {
    case K::PureVal: {
      if (B.Names.size() != 1)
        fail(Reject::RederivationFailed, "multi-name pure binding");
      S.Scal[B.Names[0]] =
          evalSrcExpr(*cast<ir::PureVal>(B.Bound.get())->expr(), S);
      break;
    }
    case K::ArrayPut: {
      const auto *AP = cast<ir::ArrayPut>(B.Bound.get());
      if (B.Names.size() != 1 || B.Names[0] != AP->array())
        fail(Reject::RederivationFailed,
             "array put must rebind the array's own name");
      auto It = S.Arr.find(AP->array());
      if (It == S.Arr.end())
        fail(Reject::RederivationFailed,
             "put into untracked array '" + AP->array() + "'");
      TermId Idx = evalSrcExpr(*AP->index(), S);
      TermId Val = evalSrcExpr(*AP->val(), S);
      const std::string &R = It->second.Region;
      S.Region[R] = G.arrStore(S.Region.at(R), Idx, Val);
      break;
    }
    case K::CellGet: {
      const auto *CG = cast<ir::CellGet>(B.Bound.get());
      if (!S.Cells.count(CG->cell()))
        fail(Reject::RederivationFailed,
             "get from untracked cell '" + CG->cell() + "'");
      S.Scal[B.Names[0]] = G.elt(S.Region.at(CG->cell()), G.constant(0));
      break;
    }
    case K::CellPut: {
      const auto *CP = cast<ir::CellPut>(B.Bound.get());
      if (B.Names.size() != 1 || B.Names[0] != CP->cell() ||
          !S.Cells.count(CP->cell()))
        fail(Reject::RederivationFailed,
             "cell put must rebind the cell's own name");
      TermId V = evalSrcExpr(*CP->expr(), S);
      S.Region[CP->cell()] =
          G.arrStore(S.Region.at(CP->cell()), G.constant(0), V);
      break;
    }
    case K::CellIncr: {
      const auto *CI = cast<ir::CellIncr>(B.Bound.get());
      if (B.Names.size() != 1 || B.Names[0] != CI->cell() ||
          !S.Cells.count(CI->cell()))
        fail(Reject::RederivationFailed,
             "cell incr must rebind the cell's own name");
      TermId Cur = G.elt(S.Region.at(CI->cell()), G.constant(0));
      TermId V = G.bin(bedrock::BinOp::Add, Cur, evalSrcExpr(*CI->expr(), S));
      S.Region[CI->cell()] =
          G.arrStore(S.Region.at(CI->cell()), G.constant(0), V);
      break;
    }
    case K::IfBound:
      evalSrcIf(B, S, Path);
      break;
    case K::ListMap:
    case K::ListFold:
    case K::FoldBreak:
    case K::RangeFold:
    case K::WhileComb:
      evalSrcLoop(B, S, Path);
      break;
    default:
      fail(Reject::RederivationFailed,
           "binding form '" + clip(B.Bound->str(), 48) +
               "' is outside the modeled fragment");
    }
    recordBinding(B, S, Path);
  }

  void evalSrcIf(const ir::Binding &B, SrcState &S, const std::string &Path) {
    const auto *IB = cast<ir::IfBound>(B.Bound.get());
    TermId C = evalSrcExpr(*IB->cond(), S);
    SrcState TS = S, ES = S;
    evalSrcProg(*IB->thenProg(), TS, Path + ".then.");
    evalSrcProg(*IB->elseProg(), ES, Path + ".else.");
    const std::vector<std::string> &TR = IB->thenProg()->returns();
    const std::vector<std::string> &ER = IB->elseProg()->returns();
    if (TR.size() != B.Names.size() || ER.size() != B.Names.size())
      fail(Reject::RederivationFailed, "conditional binding arity mismatch");
    for (auto &[R, Contents] : S.Region)
      Contents = G.arrSelect(C, TS.Region.at(R), ES.Region.at(R));
    for (size_t J = 0; J < B.Names.size(); ++J) {
      bool ThenArr = TS.Arr.count(TR[J]) != 0;
      bool ElseArr = ES.Arr.count(ER[J]) != 0;
      if (ThenArr != ElseArr)
        fail(Reject::RederivationFailed,
             "conditional branches return values of different kinds");
      if (ThenArr) {
        const SrcArr &A1 = TS.Arr.at(TR[J]);
        const SrcArr &A2 = ES.Arr.at(ER[J]);
        if (A1.Region != A2.Region)
          fail(Reject::RederivationFailed,
               "conditional branches return different arrays");
        S.Arr[B.Names[J]] = A1;
        continue;
      }
      auto TI = TS.Scal.find(TR[J]);
      auto EI = ES.Scal.find(ER[J]);
      if (TI == TS.Scal.end() || EI == ES.Scal.end())
        fail(Reject::RederivationFailed,
             "conditional branch result '" + TR[J] +
                 "' is not a tracked scalar");
      S.Scal[B.Names[J]] = G.select(C, TI->second, EI->second);
    }
  }

  void evalSrcLoop(const ir::Binding &B, SrcState &S, const std::string &Path) {
    unsigned K = unsigned(SrcLoops.size());
    FoldInfo FI;
    TermId F = NoTerm;

    auto Carried = [&](unsigned Pos) { return G.sym(canonSym(K, Pos)); };

    switch (B.Bound->kind()) {
    case ir::BoundForm::Kind::ListMap: {
      const auto *M = cast<ir::ListMap>(B.Bound.get());
      if (B.Names.size() != 1 || B.Names[0] != M->array())
        fail(Reject::RederivationFailed, "map must rebind its array in place");
      auto It = S.Arr.find(M->array());
      if (It == S.Arr.end())
        fail(Reject::RederivationFailed,
             "map over untracked array '" + M->array() + "'");
      const std::string R = It->second.Region;
      unsigned W = It->second.EltBytes;
      TermId Entry = S.Region.at(R);
      TermId I = Carried(0);
      TermId Hav = G.arrHavoc(canonRegionSym(K, R), W);
      SrcState BS = S;
      BS.Region[R] = Hav;
      BS.Scal[M->param()] = G.elt(Hav, I);
      TermId V = evalSrcExpr(*M->body(), BS);
      FI.NumCarried = 1;
      FI.Guard = G.bin(bedrock::BinOp::LtU, I, It->second.Len);
      FI.Inits = {G.constant(0)};
      FI.Nexts = {G.bin(bedrock::BinOp::Add, I, G.constant(1))};
      FI.Regions = {{R, Entry, G.arrStore(Hav, I, V)}};
      F = G.fold(FI);
      S.Region[R] = G.foldOutArr(F, R);
      break;
    }
    case ir::BoundForm::Kind::ListFold:
    case ir::BoundForm::Kind::FoldBreak: {
      std::string ArrName, AccP, EltP;
      const ir::Expr *InitE, *BodyE, *BreakE = nullptr;
      if (const auto *FL = dyn_cast<ir::ListFold>(B.Bound.get())) {
        ArrName = FL->array();
        AccP = FL->accParam();
        EltP = FL->eltParam();
        InitE = FL->init();
        BodyE = FL->body();
      } else {
        const auto *FB = cast<ir::FoldBreak>(B.Bound.get());
        ArrName = FB->array();
        AccP = FB->accParam();
        EltP = FB->eltParam();
        InitE = FB->init();
        BodyE = FB->body();
        BreakE = FB->breakCond();
      }
      if (B.Names.size() != 1)
        fail(Reject::RederivationFailed, "fold must bind exactly one name");
      auto It = S.Arr.find(ArrName);
      if (It == S.Arr.end())
        fail(Reject::RederivationFailed,
             "fold over untracked array '" + ArrName + "'");
      const std::string R = It->second.Region;
      TermId I = Carried(0), A = Carried(1);
      TermId InitT = evalSrcExpr(*InitE, S);
      SrcState BS = S;
      BS.Scal[AccP] = A;
      BS.Scal[EltP] = G.elt(S.Region.at(R), I);
      TermId Next = evalSrcExpr(*BodyE, BS);
      FI.NumCarried = 2;
      FI.Guard = G.bin(bedrock::BinOp::LtU, I, It->second.Len);
      if (BreakE) {
        SrcState GS = S;
        GS.Scal[AccP] = A;
        TermId Brk = evalSrcExpr(*BreakE, GS);
        FI.Guard = G.bin(bedrock::BinOp::And, FI.Guard,
                         G.bin(bedrock::BinOp::Eq, Brk, G.constant(0)));
      }
      FI.Inits = {G.constant(0), InitT};
      FI.Nexts = {G.bin(bedrock::BinOp::Add, I, G.constant(1)), Next};
      F = G.fold(FI);
      S.Scal[B.Names[0]] = G.foldOut(F, 1);
      break;
    }
    case ir::BoundForm::Kind::RangeFold:
    case ir::BoundForm::Kind::WhileComb: {
      const auto *RF = dyn_cast<ir::RangeFold>(B.Bound.get());
      const auto *WC = dyn_cast<ir::WhileComb>(B.Bound.get());
      const std::vector<ir::AccInit> &Accs = RF ? RF->accs() : WC->accs();
      const ir::Prog &Body = RF ? *RF->body() : *WC->body();
      if (progHasLoop(Body))
        fail(Reject::RederivationFailed, "nested loops are not summarized");
      if (Accs.size() != B.Names.size())
        fail(Reject::RederivationFailed, "loop accumulator arity mismatch");
      for (size_t J = 0; J < Accs.size(); ++J)
        if (Accs[J].Name != B.Names[J])
          fail(Reject::RederivationFailed,
               "loop accumulators must be bound under their names");

      struct ScalAcc {
        std::string Name;
        unsigned Pos;
        TermId Init;
      };
      std::vector<ScalAcc> Scals;
      std::vector<std::string> ArrAccs;
      unsigned NextPos = RF ? 1 : 0;
      for (const ir::AccInit &A : Accs) {
        const auto *V = dyn_cast<ir::VarRef>(A.Init.get());
        if (V && S.Arr.count(V->name())) {
          if (V->name() != A.Name)
            fail(Reject::RederivationFailed,
                 "array accumulator must be initialized by itself");
          ArrAccs.push_back(A.Name);
          continue;
        }
        Scals.push_back({A.Name, NextPos++, evalSrcExpr(*A.Init, S)});
      }

      std::set<std::string> Writes;
      collectProgWrites(Body, Writes);
      std::map<std::string, TermId> Entries;

      SrcState BS = S;
      TermId I = NoTerm;
      TermId Lo = NoTerm, Hi = NoTerm;
      if (RF) {
        Lo = evalSrcExpr(*RF->lo(), S);
        Hi = evalSrcExpr(*RF->hi(), S);
        I = Carried(0);
        BS.Scal[RF->idxName()] = I;
      }
      for (const ScalAcc &A : Scals)
        BS.Scal[A.Name] = Carried(A.Pos);
      for (const std::string &WName : Writes) {
        std::string R;
        if (auto It = S.Arr.find(WName); It != S.Arr.end())
          R = It->second.Region;
        else if (S.Cells.count(WName))
          R = WName;
        else
          fail(Reject::RederivationFailed,
               "loop body writes untracked '" + WName + "'");
        Entries[R] = S.Region.at(R);
        BS.Region[R] = G.arrHavoc(canonRegionSym(K, R), RegionWidth.at(R));
      }

      if (RF)
        FI.Guard = G.bin(bedrock::BinOp::LtU, I, Hi);
      else
        FI.Guard = evalSrcExpr(*WC->cond(), BS);

      evalSrcProg(Body, BS, Path + ".body.");
      const std::vector<std::string> &Rets = Body.returns();
      if (Rets.size() != Accs.size())
        fail(Reject::RederivationFailed, "loop body return arity mismatch");

      FI.NumCarried = (RF ? 1 : 0) + unsigned(Scals.size());
      FI.Inits.resize(FI.NumCarried);
      FI.Nexts.resize(FI.NumCarried);
      if (RF) {
        FI.Inits[0] = Lo;
        FI.Nexts[0] = G.bin(bedrock::BinOp::Add, I, G.constant(1));
      }
      for (const ScalAcc &A : Scals) {
        size_t AccIdx = 0;
        for (; AccIdx < Accs.size(); ++AccIdx)
          if (Accs[AccIdx].Name == A.Name)
            break;
        auto It = BS.Scal.find(Rets[AccIdx]);
        if (It == BS.Scal.end())
          fail(Reject::RederivationFailed,
               "loop body result '" + Rets[AccIdx] +
                   "' is not a tracked scalar");
        FI.Inits[A.Pos] = A.Init;
        FI.Nexts[A.Pos] = It->second;
      }
      for (const std::string &AName : ArrAccs) {
        size_t AccIdx = 0;
        for (; AccIdx < Accs.size(); ++AccIdx)
          if (Accs[AccIdx].Name == AName)
            break;
        if (Rets[AccIdx] != AName)
          fail(Reject::RederivationFailed,
               "array accumulator must be returned under its name");
      }
      for (const auto &[R, Entry] : Entries)
        FI.Regions.push_back({R, Entry, BS.Region.at(R)});

      F = G.fold(FI);
      for (const ScalAcc &A : Scals)
        S.Scal[A.Name] = G.foldOut(F, A.Pos);
      for (const auto &[R, Entry] : Entries)
        S.Region[R] = G.foldOutArr(F, R);
      break;
    }
    default:
      fail(Reject::RederivationFailed, "not a loop binding");
    }

    SrcLoops.push_back({F, joinNames(B.Names), Path});
    LoopRec DL;
    DL.Ordinal = K;
    DL.Binding = joinNames(B.Names);
    DL.Path = Path;
    DL.FoldHash = G.hashOf(F);
    DL.Carried = FI.NumCarried;
    DL.Regions = unsigned(FI.Regions.size());
    DerivedLoops.push_back(std::move(DL));
  }

  //===--------------------------------------------------------------------===//
  // Target execution.
  //===--------------------------------------------------------------------===//

  TermId evalTgtExpr(const bedrock::Expr &E, const TgtState &T) {
    switch (E.kind()) {
    case bedrock::Expr::Kind::Literal:
      return G.constant(cast<bedrock::Literal>(&E)->value());
    case bedrock::Expr::Kind::Var: {
      const std::string &N = cast<bedrock::Var>(&E)->name();
      auto It = T.Locals.find(N);
      if (It == T.Locals.end())
        fail(Reject::RederivationFailed,
             "target reads local '" + N + "' with no tracked value");
      return It->second;
    }
    case bedrock::Expr::Kind::Bin: {
      const auto *B = cast<bedrock::Bin>(&E);
      TermId L = evalTgtExpr(*B->lhs(), T);
      TermId R = evalTgtExpr(*B->rhs(), T);
      return G.bin(B->op(), L, R);
    }
    case bedrock::Expr::Kind::Load: {
      const auto *L = cast<bedrock::Load>(&E);
      TermId Addr = evalTgtExpr(*L->addr(), T);
      auto [R, Idx] = resolveAddr(Addr, bedrock::sizeBytes(L->size()));
      return G.elt(T.Region.at(R), Idx);
    }
    case bedrock::Expr::Kind::TableGet: {
      const auto *TG = cast<bedrock::TableGet>(&E);
      const ir::TableDef *D = Src.findTable(TG->table());
      if (!D)
        fail(Reject::RederivationFailed,
             "table read from unknown table '" + TG->table() + "'");
      if (bedrock::sizeBytes(TG->size()) != ir::eltSize(D->Elt))
        fail(Reject::RederivationFailed,
             "table read width differs from the model table");
      TermId Idx = evalTgtExpr(*TG->index(), T);
      return G.tableElt(D->Name, ir::eltSize(D->Elt), tableMax(D->Elements),
                        Idx);
    }
    }
    fail(Reject::RederivationFailed, "unknown target expression");
  }

  std::pair<std::string, TermId> resolveAddr(TermId Addr, unsigned Bytes) {
    AffineView V = G.affine(Addr);
    TermId PtrAtom = NoTerm;
    std::string Reg;
    for (const auto &[Atom, C] : V.Coeffs) {
      auto It = PtrRegion.find(Atom);
      if (It == PtrRegion.end())
        continue;
      if (PtrAtom != NoTerm)
        fail(Reject::RederivationFailed, "address combines two region pointers");
      if (C != 1)
        fail(Reject::RederivationFailed, "address scales a region pointer");
      PtrAtom = Atom;
      Reg = It->second;
    }
    if (PtrAtom == NoTerm)
      fail(Reject::RederivationFailed,
           "memory access with no resolvable region pointer");
    unsigned W = RegionWidth.at(Reg);
    if (W != Bytes)
      fail(Reject::RederivationFailed,
           "access width differs from region '" + Reg + "' element width");
    AffineView IdxV;
    for (const auto &[Atom, C] : V.Coeffs) {
      if (Atom == PtrAtom)
        continue;
      if (int64_t(C) % int64_t(W) != 0)
        fail(Reject::RederivationFailed, "address offset is not element-aligned");
      IdxV.Coeffs[Atom] = uint64_t(int64_t(C) / int64_t(W));
    }
    if (int64_t(V.K) % int64_t(W) != 0)
      fail(Reject::RederivationFailed, "address constant is not element-aligned");
    IdxV.K = uint64_t(int64_t(V.K) / int64_t(W));
    return {Reg, G.fromAffine(IdxV)};
  }

  static void flatten(const bedrock::Cmd *C,
                      std::vector<const bedrock::Cmd *> &Out) {
    if (const auto *S = dyn_cast<bedrock::Seq>(C)) {
      flatten(S->first(), Out);
      flatten(S->second(), Out);
      return;
    }
    if (isa<bedrock::Skip>(C))
      return;
    Out.push_back(C);
  }

  void execBlock(const bedrock::Cmd *C, TgtState &T, const std::string &Path) {
    std::vector<const bedrock::Cmd *> Stmts;
    flatten(C, Stmts);
    for (size_t I = 0; I < Stmts.size(); ++I)
      execStmt(*Stmts[I], T, Path + "." + std::to_string(I));
  }

  void execStmt(const bedrock::Cmd &C, TgtState &T, const std::string &Path) {
    switch (C.kind()) {
    case bedrock::Cmd::Kind::Skip:
      return;
    case bedrock::Cmd::Kind::Set: {
      const auto *S = cast<bedrock::Set>(&C);
      T.Locals[S->name()] = evalTgtExpr(*S->value(), T);
      T.LocalDef[S->name()] = Path;
      return;
    }
    case bedrock::Cmd::Kind::Unset: {
      const auto *U = cast<bedrock::Unset>(&C);
      T.Locals.erase(U->name());
      T.LocalDef.erase(U->name());
      return;
    }
    case bedrock::Cmd::Kind::Store: {
      const auto *S = cast<bedrock::Store>(&C);
      TermId Addr = evalTgtExpr(*S->addr(), T);
      TermId Val = evalTgtExpr(*S->value(), T);
      auto [R, Idx] = resolveAddr(Addr, bedrock::sizeBytes(S->size()));
      T.Region[R] = G.arrStore(T.Region.at(R), Idx, Val);
      T.RegionDef[R] = Path;
      if (CurStores)
        CurStores->insert(R);
      return;
    }
    case bedrock::Cmd::Kind::If: {
      const auto *I = cast<bedrock::If>(&C);
      TermId Cond = evalTgtExpr(*I->cond(), T);
      TgtState A = T, B = T;
      execBlock(I->thenCmd(), A, Path + ".then");
      execBlock(I->elseCmd(), B, Path + ".else");
      joinStates(Cond, T, A, B, Path);
      return;
    }
    case bedrock::Cmd::Kind::While:
      checkLoop(*cast<bedrock::While>(&C), T, Path);
      return;
    case bedrock::Cmd::Kind::Seq:
      execBlock(&C, T, Path);
      return;
    case bedrock::Cmd::Kind::Call:
      fail(Reject::RederivationFailed,
           "target calls '" + cast<bedrock::Call>(&C)->callee() +
               "'; calls are outside the modeled fragment");
    case bedrock::Cmd::Kind::Stackalloc:
      fail(Reject::RederivationFailed,
           "stackalloc is outside the modeled fragment");
    case bedrock::Cmd::Kind::Interact:
      fail(Reject::RederivationFailed,
           "environment interaction is outside the modeled fragment");
    }
  }

  void joinStates(TermId Cond, TgtState &T, const TgtState &A,
                  const TgtState &B, const std::string &Path) {
    std::map<std::string, TermId> L;
    std::map<std::string, std::string> LD;
    for (const auto &[N, VA] : A.Locals) {
      auto It = B.Locals.find(N);
      if (It == B.Locals.end())
        continue;
      L[N] = VA == It->second ? VA : G.select(Cond, VA, It->second);
      if (VA == It->second) {
        auto DIt = A.LocalDef.find(N);
        LD[N] = DIt != A.LocalDef.end() ? DIt->second : Path;
      } else {
        LD[N] = Path;
      }
    }
    T.Locals = std::move(L);
    T.LocalDef = std::move(LD);
    for (auto &[R, Contents] : T.Region) {
      TermId VA = A.Region.at(R), VB = B.Region.at(R);
      if (VA == VB) {
        Contents = VA;
        T.RegionDef[R] = A.RegionDef.at(R);
      } else {
        Contents = G.arrSelect(Cond, VA, VB);
        T.RegionDef[R] = Path;
      }
    }
  }

  void scanLoopBody(const bedrock::Cmd *C, std::set<std::string> &Assigned) {
    switch (C->kind()) {
    case bedrock::Cmd::Kind::Skip:
    case bedrock::Cmd::Kind::Store:
      return;
    case bedrock::Cmd::Kind::Set:
      Assigned.insert(cast<bedrock::Set>(C)->name());
      return;
    case bedrock::Cmd::Kind::Seq: {
      const auto *S = cast<bedrock::Seq>(C);
      scanLoopBody(S->first(), Assigned);
      scanLoopBody(S->second(), Assigned);
      return;
    }
    case bedrock::Cmd::Kind::If: {
      const auto *I = cast<bedrock::If>(C);
      scanLoopBody(I->thenCmd(), Assigned);
      scanLoopBody(I->elseCmd(), Assigned);
      return;
    }
    case bedrock::Cmd::Kind::While:
      fail(Reject::RederivationFailed, "nested target loops are not summarized");
    case bedrock::Cmd::Kind::Unset:
      fail(Reject::RederivationFailed, "unset inside a loop body");
    default:
      fail(Reject::RederivationFailed,
           "unsupported statement inside a loop body");
    }
  }

  /// The producer's matchLoop, with the search replaced by witness replay:
  /// the certificate says which target local implements each carried
  /// position and which regions the loop stores to, and this function
  /// verifies the resulting renaming satisfies the guard, step, and region
  /// equations — deterministically, in one pass.
  void checkLoop(const bedrock::While &W, TgtState &T, const std::string &Path) {
    unsigned K = TgtCursor++;
    if (K >= SrcLoops.size())
      fail(Reject::RederivationFailed,
           "target loop at " + Path + " has no corresponding loop in the model");
    if (K >= Cert.Loops.size())
      fail(Reject::TruncatedTrace,
           "target loop #" + std::to_string(K) +
               " has no loop record in the certificate");
    const LoopRec &CL = Cert.Loops[K];
    const SrcLoopRec &SL = SrcLoops[K];
    FoldRef FI = G.foldInfo(SL.Fold);

    std::set<std::string> Assigned;
    scanLoopBody(W.body(), Assigned);

    // Discovery pass: havoc everything, record which regions the body
    // stores to (addresses never depend on contents, so the store set is
    // the same in the precise pass).
    std::set<std::string> Stored;
    {
      TgtState A = T;
      for (const std::string &V : Assigned)
        A.Locals[V] = G.sym("%TA" + std::to_string(K) + "." + V);
      for (auto &[R, Contents] : A.Region)
        Contents = G.arrHavoc("%TA" + std::to_string(K) + ".R." + R,
                              RegionWidth.at(R));
      CurStores = &Stored;
      execBlock(W.body(), A, Path + ".body");
      CurStores = nullptr;
    }

    // Precise pass: havoc only the assigned locals and the stored regions.
    TgtState B = T;
    std::map<std::string, TermId> HavocOf;
    for (const std::string &V : Assigned) {
      HavocOf[V] = G.sym("%T" + std::to_string(K) + "." + V);
      B.Locals[V] = HavocOf[V];
    }
    std::map<std::string, TermId> RegionHavoc;
    for (const std::string &R : Stored) {
      RegionHavoc[R] =
          G.arrHavoc("%T" + std::to_string(K) + ".R." + R, RegionWidth.at(R));
      B.Region[R] = RegionHavoc[R];
    }
    TermId GuardT = evalTgtExpr(*W.cond(), B);
    {
      std::set<std::string> Stored2;
      CurStores = &Stored2;
      execBlock(W.body(), B, Path + ".body");
      CurStores = nullptr;
      if (Stored2 != Stored)
        fail(Reject::RederivationFailed,
             "loop store set depends on memory contents");
    }

    std::set<std::string> SrcRegs;
    for (unsigned RI = 0, RE = FI.numRegions(); RI < RE; ++RI)
      SrcRegs.insert(FI.regionName(RI));
    if (SrcRegs != Stored)
      fail(Reject::RederivationFailed,
           "loop at " + Path + " writes regions {" + joinSet(Stored) +
               "} but model binding '" + SL.BindingName + "' (" + SL.Path +
               ") writes {" + joinSet(SrcRegs) + "}");

    // The witness must name this While, the derived store set, and exactly
    // one assigned local per carried position.
    if (CL.TargetPath != Path)
      fail(Reject::LoopWitnessMismatch,
           "loop #" + std::to_string(K) + " witness names the While at '" +
               CL.TargetPath + "' but it executes at '" + Path + "'");
    std::set<std::string> WitRegs(CL.WitnessRegions.begin(),
                                  CL.WitnessRegions.end());
    if (WitRegs != Stored)
      fail(Reject::LoopWitnessMismatch,
           "loop #" + std::to_string(K) + " witness region set {" +
               joinSet(WitRegs) + "} differs from the derived store set {" +
               joinSet(Stored) + "}");
    if (CL.WitnessLocals.size() != FI.numCarried())
      fail(Reject::LoopWitnessMismatch,
           "loop #" + std::to_string(K) + " witness maps " +
               std::to_string(CL.WitnessLocals.size()) +
               " locals but the model carries " +
               std::to_string(FI.numCarried()) + " values");

    // Replay: build the recorded renaming and verify the match equations.
    std::map<TermId, TermId> Ren;
    for (const std::string &R : Stored)
      Ren[RegionHavoc[R]] =
          G.arrHavoc(canonRegionSym(K, R), RegionWidth.at(R));

    struct Picked {
      std::string Name;
      TermId Next;
    };
    std::vector<Picked> Picks;
    std::set<std::string> SeenLocals;
    for (unsigned J = 0; J < FI.numCarried(); ++J) {
      const std::string &V = CL.WitnessLocals[J];
      if (!SeenLocals.insert(V).second)
        fail(Reject::LoopWitnessMismatch,
             "witness maps local '" + V + "' to two carried positions");
      if (!Assigned.count(V))
        fail(Reject::LoopWitnessMismatch,
             "witness local '" + V + "' is not assigned by the loop body");
      auto InitIt = T.Locals.find(V);
      auto NextIt = B.Locals.find(V);
      if (InitIt == T.Locals.end() || NextIt == B.Locals.end())
        fail(Reject::LoopWitnessMismatch,
             "witness local '" + V + "' has no loop-carried value");
      if (InitIt->second != FI.init(J))
        fail(Reject::LoopWitnessMismatch,
             "witness local '" + V + "' is initialized to '" +
                 clip(G.str(InitIt->second)) +
                 "' but the model's carried value " + std::to_string(J) +
                 " starts at '" + clip(G.str(FI.init(J))) + "'");
      Ren[HavocOf.at(V)] = G.sym(canonSym(K, J));
      Picks.push_back({V, NextIt->second});
    }

    if (G.substitute(GuardT, Ren) != FI.guard())
      fail(Reject::LoopWitnessMismatch,
           "under the recorded witness the loop guard computes '" +
               clip(G.str(GuardT)) + "' but the model's is '" +
               clip(G.str(FI.guard())) + "'");
    for (unsigned J = 0; J < FI.numCarried(); ++J)
      if (G.substitute(Picks[J].Next, Ren) != FI.next(J))
        fail(Reject::LoopWitnessMismatch,
             "witness local '" + Picks[J].Name + "' steps to '" +
                 clip(G.str(Picks[J].Next)) +
                 "' but the model's carried value " + std::to_string(J) +
                 " steps to '" + clip(G.str(FI.next(J))) + "'");
    for (unsigned RI = 0, RE = FI.numRegions(); RI < RE; ++RI) {
      const std::string RName = FI.regionName(RI);
      if (T.Region.at(RName) != FI.regionEntry(RI))
        fail(Reject::LoopWitnessMismatch,
             "region '" + RName + "' enters the loop as '" +
                 clip(G.str(T.Region.at(RName))) + "' but the model has '" +
                 clip(G.str(FI.regionEntry(RI))) + "'");
      if (G.substitute(B.Region.at(RName), Ren) != FI.regionNext(RI))
        fail(Reject::LoopWitnessMismatch,
             "region '" + RName + "' is rewritten as '" +
                 clip(G.str(B.Region.at(RName))) +
                 "' per iteration but the model rewrites it as '" +
                 clip(G.str(FI.regionNext(RI))) + "'");
    }

    // Commit exactly as the producer does.
    for (const std::string &V : Assigned) {
      T.Locals.erase(V);
      T.LocalDef.erase(V);
    }
    for (unsigned J = 0; J < FI.numCarried(); ++J) {
      T.Locals[Picks[J].Name] = G.foldOut(SL.Fold, J);
      T.LocalDef[Picks[J].Name] = Path;
    }
    for (const std::string &R : Stored) {
      T.Region[R] = G.foldOutArr(SL.Fold, R);
      T.RegionDef[R] = Path;
    }

    // Record the verified witness on the derived loop (the summary fields
    // were filled during source evaluation).
    DerivedLoops[K].WitnessLocals = CL.WitnessLocals;
    DerivedLoops[K].WitnessRegions = CL.WitnessRegions;
    DerivedLoops[K].TargetPath = Path;
  }

  //===--------------------------------------------------------------------===//
  // Trace comparison.
  //===--------------------------------------------------------------------===//

  CheckResult compareTrace(const SrcState &SS, const TgtState &TT) {
    if (TgtCursor < SrcLoops.size())
      fail(Reject::RederivationFailed,
           "model loop binding '" + SrcLoops[TgtCursor].BindingName + "' (" +
               SrcLoops[TgtCursor].Path +
               ") has no corresponding loop in the target");
    if (Spec.ScalarRets.size() != Fn.Rets.size())
      fail(Reject::RederivationFailed,
           "target returns " + std::to_string(Fn.Rets.size()) +
               " words but the ABI promises " +
               std::to_string(Spec.ScalarRets.size()));

    // Re-derive the output channels in the producer's order.
    std::vector<OutputRec> Derived;
    for (size_t I = 0; I < Spec.ScalarRets.size(); ++I) {
      const std::string &SN = Spec.ScalarRets[I];
      const std::string &TN = Fn.Rets[I];
      auto SIt = SS.Scal.find(SN);
      if (SIt == SS.Scal.end())
        fail(Reject::RederivationFailed,
             "model result '" + SN + "' is not a tracked scalar");
      auto TIt = TT.Locals.find(TN);
      if (TIt == TT.Locals.end())
        fail(Reject::RederivationFailed,
             "target never defines return local '" + TN + "'");
      OutputRec O;
      O.Name = SN;
      O.Kind = "scalar";
      O.SrcHash = G.hashOf(SIt->second);
      O.TgtHash = G.hashOf(TIt->second);
      O.Matched = SIt->second == TIt->second;
      if (auto BIt = LastSrcBind.find(SN); BIt != LastSrcBind.end())
        O.SourceBinding = BIt->second;
      if (auto DIt = TT.LocalDef.find(TN); DIt != TT.LocalDef.end())
        O.TargetPath = DIt->second;
      Derived.push_back(std::move(O));
    }
    for (const auto &[R, SrcContents] : SS.Region) {
      OutputRec O;
      O.Name = R;
      bool InPlaceArr =
          std::find(Spec.InPlaceArrays.begin(), Spec.InPlaceArrays.end(), R) !=
          Spec.InPlaceArrays.end();
      bool InPlaceCell =
          std::find(Spec.InPlaceCells.begin(), Spec.InPlaceCells.end(), R) !=
          Spec.InPlaceCells.end();
      O.Kind = InPlaceArr ? "array" : InPlaceCell ? "cell" : "frame";
      TermId Tgt = TT.Region.at(R);
      O.SrcHash = G.hashOf(SrcContents);
      O.TgtHash = G.hashOf(Tgt);
      O.Matched = SrcContents == Tgt;
      if (auto BIt = LastSrcBind.find(R); BIt != LastSrcBind.end())
        O.SourceBinding = BIt->second;
      if (auto DIt = TT.RegionDef.find(R); DIt != TT.RegionDef.end())
        O.TargetPath = DIt->second;
      Derived.push_back(std::move(O));
    }

    // The proved claim itself: every channel must re-derive equal.
    for (const OutputRec &O : Derived)
      if (!O.Matched)
        return CheckResult::reject(
            Reject::OutputMismatch,
            "output '" + O.Name + "' [" + O.Kind +
                "] does not re-derive as equal between model and target");

    // Binding trace: same length, same records, in order.
    if (Cert.Bindings.size() != DerivedBindings.size())
      return CheckResult::reject(
          Reject::TruncatedTrace,
          "certificate records " + std::to_string(Cert.Bindings.size()) +
              " bindings but re-derivation produces " +
              std::to_string(DerivedBindings.size()));
    for (size_t I = 0; I < DerivedBindings.size(); ++I) {
      const BindingRec &C = Cert.Bindings[I], &D = DerivedBindings[I];
      if (C.Path != D.Path || C.Name != D.Name || C.Hash != D.Hash)
        return CheckResult::reject(
            Reject::BindingTraceMismatch,
            "binding #" + std::to_string(I) + " records (" + C.Path + ", " +
                C.Name + ") but re-derivation gives (" + D.Path + ", " +
                D.Name + ") with a " +
                (C.Hash != D.Hash ? std::string("different")
                                  : std::string("matching")) +
                " hash");
    }

    // Loop summaries (witnesses were verified during execution).
    if (Cert.Loops.size() != DerivedLoops.size())
      return CheckResult::reject(
          Reject::TruncatedTrace,
          "certificate records " + std::to_string(Cert.Loops.size()) +
              " loops but re-derivation produces " +
              std::to_string(DerivedLoops.size()));
    for (size_t I = 0; I < DerivedLoops.size(); ++I) {
      const LoopRec &C = Cert.Loops[I], &D = DerivedLoops[I];
      if (C.Ordinal != D.Ordinal || C.Binding != D.Binding ||
          C.Path != D.Path || C.FoldHash != D.FoldHash ||
          C.Carried != D.Carried || C.Regions != D.Regions)
        return CheckResult::reject(
            Reject::LoopSummaryMismatch,
            "loop #" + std::to_string(I) +
                " summary differs from the re-derived one (binding '" +
                D.Binding + "' at " + D.Path + ")");
    }

    // Output channels.
    if (Cert.Outputs.size() != Derived.size())
      return CheckResult::reject(
          Reject::OutputMismatch,
          "certificate records " + std::to_string(Cert.Outputs.size()) +
              " outputs but re-derivation produces " +
              std::to_string(Derived.size()));
    for (size_t I = 0; I < Derived.size(); ++I) {
      const OutputRec &C = Cert.Outputs[I], &D = Derived[I];
      if (C.Name != D.Name || C.Kind != D.Kind || C.SrcHash != D.SrcHash ||
          C.TgtHash != D.TgtHash || C.Matched != D.Matched ||
          C.SourceBinding != D.SourceBinding || C.TargetPath != D.TargetPath)
        return CheckResult::reject(
            Reject::OutputMismatch,
            "output '" + D.Name + "' [" + D.Kind +
                "] record differs from the re-derived one");
    }

    return CheckResult::accept();
  }
};

} // namespace

CheckResult Rederive::check(const Certificate &C, const ir::SourceFn &Model,
                            const EntryFacts &Hints, const sep::FnSpec &Spec,
                            const bedrock::Function &Code) {
  if (C.SchemaVersion == 1)
    return CheckResult::reject(
        Reject::UnverifiableV1,
        "v1 certificates carry no content hashes or loop witnesses and "
        "cannot be independently re-checked");
  if (C.SchemaVersion != kSchemaVersion)
    return CheckResult::reject(Reject::UnknownSchemaVersion,
                               "schema_version " +
                                   std::to_string(C.SchemaVersion) +
                                   " is not checkable by this build");
  if (C.Function != Code.Name)
    return CheckResult::reject(Reject::FunctionMismatch,
                               "certificate is about '" + C.Function +
                                   "' but the suite compiles '" + Code.Name +
                                   "'");

  ContentKey Fresh = contentKey(Model, Hints, Spec, Code);
  if (Fresh.ModelHash != C.Key.ModelHash)
    return CheckResult::reject(
        Reject::StaleModel,
        "certificate model hash does not match the current model+hints");
  if (Fresh.SpecHash != C.Key.SpecHash)
    return CheckResult::reject(
        Reject::StaleSpec,
        "certificate fnspec hash does not match the current fnspec");
  if (Fresh.CodeHash != C.Key.CodeHash)
    return CheckResult::reject(
        Reject::StaleCode,
        "certificate code hash does not match the freshly compiled code");

  if (!C.proved())
    return CheckResult::reject(Reject::VerdictNotProved,
                               "certificate verdict is '" + C.Verdict +
                                   "'; only proved certificates are "
                                   "acceptable");

  CheckResult R = CheckResult::accept();
  try {
    R = Replayer(C, Model, Spec, Code, Hints).run();
  } catch (const CheckFail &F) {
    return CheckResult::reject(F.Why, F.Detail);
  }
  if (!R.Accepted || !C.Codelint)
    return R;

  // The optional codelint section re-derives the same way everything else
  // does: run the analyzer core (unbudgeted — the producer only embeds the
  // section when its own budgeted run finished) and compare field-for-field.
  codelint::Report Rep = codelint::analyzeFunction(Code, Spec, Model, Hints);
  CodelintRec Fresh2 = codelintRecOf(Rep);
  if (!(Fresh2 == *C.Codelint))
    return CheckResult::reject(
        Reject::CodelintMismatch,
        "codelint section does not re-derive: certificate claims (" +
            C.Codelint->Mem + "/" + C.Codelint->Stack + "/" +
            C.Codelint->Steps + ", v" + std::to_string(C.Codelint->Version) +
            ") but the analyzer derives (" + Fresh2.Mem + "/" + Fresh2.Stack +
            "/" + Fresh2.Steps + ", v" + std::to_string(Fresh2.Version) + ")");
  return R;
}

} // namespace cert
} // namespace relc
