//===- cert/Reader.cpp - Certificate parsing (v2 + v1 compat) --------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "cert/Reader.h"

#include "support/Hash.h"
#include "support/StringExtras.h"

#include <fstream>
#include <map>
#include <sstream>

namespace relc {
namespace cert {

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON value + recursive-descent parser. Certificates only use
// objects, arrays, strings, unsigned integers, and booleans; anything
// else (floats, null) is rejected. Object keys keep first-wins semantics.
//===----------------------------------------------------------------------===//

struct JValue {
  enum class Kind { Object, Array, String, Number, Bool } K = Kind::Bool;
  std::map<std::string, JValue> Obj;
  std::vector<JValue> Arr;
  std::string Str;
  uint64_t Num = 0;
  bool B = false;
};

class JParser {
public:
  explicit JParser(const std::string &Text) : S(Text) {}

  std::optional<JValue> parse(std::string *Why) {
    std::optional<JValue> V = value();
    skipWs();
    if (V && Pos != S.size()) {
      *Why = "trailing garbage at offset " + std::to_string(Pos);
      return std::nullopt;
    }
    if (!V)
      *Why = Err.empty() ? "syntax error at offset " + std::to_string(Pos)
                         : Err;
    return V;
  }

private:
  const std::string &S;
  size_t Pos = 0;
  std::string Err;

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  std::optional<std::string> string() {
    skipWs();
    if (Pos >= S.size() || S[Pos] != '"')
      return std::nullopt;
    size_t End = Pos + 1;
    std::string Raw;
    while (End < S.size() && S[End] != '"') {
      if (S[End] == '\\') {
        if (End + 1 >= S.size())
          return std::nullopt;
        Raw += S[End];
        Raw += S[End + 1];
        End += 2;
        continue;
      }
      Raw += S[End++];
    }
    if (End >= S.size())
      return std::nullopt; // Unterminated.
    Pos = End + 1;
    std::string Out;
    if (!jsonUnescape(Raw, &Out))
      return std::nullopt;
    return Out;
  }

  std::optional<JValue> value() {
    skipWs();
    if (Pos >= S.size())
      return std::nullopt;
    char C = S[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"') {
      std::optional<std::string> Str = string();
      if (!Str)
        return std::nullopt;
      JValue V;
      V.K = JValue::Kind::String;
      V.Str = *Str;
      return V;
    }
    if (C >= '0' && C <= '9') {
      JValue V;
      V.K = JValue::Kind::Number;
      uint64_t N = 0;
      size_t Start = Pos;
      while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9')
        N = N * 10 + uint64_t(S[Pos++] - '0');
      if (Pos == Start)
        return std::nullopt;
      V.Num = N;
      return V;
    }
    auto Lit = [&](const char *Word, bool Val) -> std::optional<JValue> {
      size_t L = std::string(Word).size();
      if (S.compare(Pos, L, Word) != 0)
        return std::nullopt;
      Pos += L;
      JValue V;
      V.K = JValue::Kind::Bool;
      V.B = Val;
      return V;
    };
    if (C == 't')
      return Lit("true", true);
    if (C == 'f')
      return Lit("false", false);
    return std::nullopt;
  }

  std::optional<JValue> object() {
    if (!eat('{'))
      return std::nullopt;
    JValue V;
    V.K = JValue::Kind::Object;
    skipWs();
    if (eat('}'))
      return V;
    while (true) {
      std::optional<std::string> Key = string();
      if (!Key || !eat(':'))
        return std::nullopt;
      std::optional<JValue> Member = value();
      if (!Member)
        return std::nullopt;
      V.Obj.emplace(*Key, std::move(*Member));
      if (eat(','))
        continue;
      if (eat('}'))
        return V;
      return std::nullopt;
    }
  }

  std::optional<JValue> array() {
    if (!eat('['))
      return std::nullopt;
    JValue V;
    V.K = JValue::Kind::Array;
    skipWs();
    if (eat(']'))
      return V;
    while (true) {
      std::optional<JValue> Elem = value();
      if (!Elem)
        return std::nullopt;
      V.Arr.push_back(std::move(*Elem));
      if (eat(','))
        continue;
      if (eat(']'))
        return V;
      return std::nullopt;
    }
  }
};

//===----------------------------------------------------------------------===//
// Field extraction. Missing or mistyped required fields are malformed.
//===----------------------------------------------------------------------===//

/// Parse-time escape; caught at the Reader::parse boundary.
struct Bad {
  std::string Why;
};

[[noreturn]] void bad(const std::string &Why) { throw Bad{Why}; }

const JValue &field(const JValue &Obj, const std::string &Key) {
  auto It = Obj.Obj.find(Key);
  if (It == Obj.Obj.end())
    bad("missing field '" + Key + "'");
  return It->second;
}

std::string strField(const JValue &Obj, const std::string &Key) {
  const JValue &V = field(Obj, Key);
  if (V.K != JValue::Kind::String)
    bad("field '" + Key + "' is not a string");
  return V.Str;
}

uint64_t numField(const JValue &Obj, const std::string &Key) {
  const JValue &V = field(Obj, Key);
  if (V.K != JValue::Kind::Number)
    bad("field '" + Key + "' is not a number");
  return V.Num;
}

bool boolField(const JValue &Obj, const std::string &Key) {
  const JValue &V = field(Obj, Key);
  if (V.K != JValue::Kind::Bool)
    bad("field '" + Key + "' is not a boolean");
  return V.B;
}

const std::vector<JValue> &arrField(const JValue &Obj, const std::string &Key) {
  const JValue &V = field(Obj, Key);
  if (V.K != JValue::Kind::Array)
    bad("field '" + Key + "' is not an array");
  return V.Arr;
}

/// Term hashes render as "0x" + 16 hex digits; content hashes as bare
/// hex16. Accept both spellings for robustness.
uint64_t hashField(const JValue &Obj, const std::string &Key) {
  std::string S = strField(Obj, Key);
  if (S.size() > 2 && S[0] == '0' && S[1] == 'x')
    S = S.substr(2);
  uint64_t Out = 0;
  if (!hash::parseHex(S, &Out))
    bad("field '" + Key + "' is not a hash");
  return Out;
}

std::vector<std::string> strListField(const JValue &Obj,
                                      const std::string &Key) {
  std::vector<std::string> Out;
  for (const JValue &E : arrField(Obj, Key)) {
    if (E.K != JValue::Kind::String)
      bad("field '" + Key + "' has a non-string element");
    Out.push_back(E.Str);
  }
  return Out;
}

void parseTraces(const JValue &Root, Certificate &C, bool Witness) {
  for (const JValue &L : arrField(Root, "loops")) {
    if (L.K != JValue::Kind::Object)
      bad("loop entry is not an object");
    LoopRec R;
    R.Ordinal = unsigned(numField(L, "ordinal"));
    R.Binding = strField(L, "binding");
    R.FoldHash = hashField(L, "fold_hash");
    R.Carried = unsigned(numField(L, "carried"));
    R.Regions = unsigned(numField(L, "regions"));
    if (Witness) {
      R.Path = strField(L, "path");
      const JValue &W = field(L, "witness");
      if (W.K != JValue::Kind::Object)
        bad("loop witness is not an object");
      R.WitnessLocals = strListField(W, "locals");
      R.WitnessRegions = strListField(W, "regions");
      R.TargetPath = strField(W, "target_path");
    }
    C.Loops.push_back(std::move(R));
  }
  for (const JValue &B : arrField(Root, "bindings")) {
    if (B.K != JValue::Kind::Object)
      bad("binding entry is not an object");
    C.Bindings.push_back(
        {strField(B, "path"), strField(B, "name"), hashField(B, "hash")});
  }
  for (const JValue &O : arrField(Root, "outputs")) {
    if (O.K != JValue::Kind::Object)
      bad("output entry is not an object");
    OutputRec R;
    R.Name = strField(O, "name");
    R.Kind = strField(O, "kind");
    R.Matched = boolField(O, "matched");
    R.SrcHash = hashField(O, "src_hash");
    R.TgtHash = hashField(O, "tgt_hash");
    R.SourceBinding = strField(O, "source_binding");
    R.TargetPath = strField(O, "target_path");
    C.Outputs.push_back(std::move(R));
  }
}

} // namespace

std::optional<Certificate> Reader::parse(const std::string &Text,
                                         ReadError *Err) {
  auto Fail = [&](Reject Why, const std::string &Detail) {
    if (Err)
      *Err = {Why, Detail};
    return std::nullopt;
  };

  std::string Why;
  std::optional<JValue> Root = JParser(Text).parse(&Why);
  if (!Root || Root->K != JValue::Kind::Object)
    return Fail(Reject::MalformedCertificate,
                Root ? "certificate is not a JSON object" : Why);

  try {
    Certificate C;
    auto VerIt = Root->Obj.find("schema_version");
    if (VerIt == Root->Obj.end()) {
      // Legacy v1: identified by its "format" tag.
      if (Root->Obj.count("format") == 0 ||
          strField(*Root, "format") != "relc-tv-certificate-v1")
        bad("neither 'schema_version' nor a known 'format' tag");
      C.SchemaVersion = 1;
      C.Producer = kProducer; // v1 had no producer field.
      C.Function = strField(*Root, "function");
      C.Verdict = strField(*Root, "verdict");
      C.Reason = strField(*Root, "reason");
      C.NumTerms = numField(*Root, "num_terms");
      parseTraces(*Root, C, /*Witness=*/false);
      return C;
    }
    if (VerIt->second.K != JValue::Kind::Number)
      bad("'schema_version' is not a number");
    if (VerIt->second.Num != kSchemaVersion)
      return Fail(Reject::UnknownSchemaVersion,
                  "schema_version " + std::to_string(VerIt->second.Num) +
                      " is newer than this checker (knows " +
                      std::to_string(kSchemaVersion) + ")");
    C.SchemaVersion = unsigned(VerIt->second.Num);
    C.Producer = strField(*Root, "producer");
    C.Function = strField(*Root, "function");
    C.Key.ModelHash = hashField(*Root, "model_hash");
    C.Key.SpecHash = hashField(*Root, "spec_hash");
    C.Key.CodeHash = hashField(*Root, "code_hash");
    C.Verdict = strField(*Root, "verdict");
    C.Reason = strField(*Root, "reason");
    C.NumTerms = numField(*Root, "num_terms");
    parseTraces(*Root, C, /*Witness=*/true);
    // Optional codelint section (v2 extension; absence is not an error).
    auto ClIt = Root->Obj.find("codelint");
    if (ClIt != Root->Obj.end()) {
      const JValue &Cl = ClIt->second;
      if (Cl.K != JValue::Kind::Object)
        bad("'codelint' is not an object");
      CodelintRec L;
      L.Version = unsigned(numField(Cl, "version"));
      L.Mem = strField(Cl, "mem");
      L.Stack = strField(Cl, "stack");
      L.Steps = strField(Cl, "steps");
      L.Accesses = numField(Cl, "accesses");
      L.LocalsBytes = numField(Cl, "locals_bytes");
      L.ScratchBytes = numField(Cl, "scratch_bytes");
      L.OperandDepth = numField(Cl, "operand_depth");
      L.StepBound = numField(Cl, "step_bound");
      C.Codelint = std::move(L);
    }
    return C;
  } catch (const Bad &B) {
    return Fail(Reject::MalformedCertificate, B.Why);
  }
}

std::optional<Certificate> Reader::readFile(const std::string &Path,
                                            ReadError *Err) {
  std::ifstream In(Path);
  if (!In) {
    if (Err)
      *Err = {Reject::MissingCertificate, "cannot read " + Path};
    return std::nullopt;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parse(SS.str(), Err);
}

} // namespace cert
} // namespace relc
