file(REMOVE_RECURSE
  "CMakeFiles/relc_cgen.dir/CEmit.cpp.o"
  "CMakeFiles/relc_cgen.dir/CEmit.cpp.o.d"
  "librelc_cgen.a"
  "librelc_cgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_cgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
