//===- pipeline/Hash.h - Content hashing for the certificate cache -*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The certificate cache (pipeline/CertCache.h) is content-addressed: a
// cached verdict is keyed on hashes of the exact inputs certification
// consumed — the functional model, the fnspec, and the emitted Bedrock2
// code. All three have canonical, deterministic renderings (their str()
// forms), so content hashing reduces to string hashing. FNV-1a/64 is
// plenty here: the cache is an *optimization*, not a trust boundary — a
// (cryptographically implausible) collision could at worst reuse a verdict
// for a different program, and the trust story in DESIGN.md §4.5 covers
// why even that does not silently certify wrong code in practice: every
// run still compiles and replays emission, and any input change reflected
// in the rendering changes the key.
//
// The implementations live in support/Hash.h (one definition shared with
// cert content keys, fault targeting, and the rule-registry fingerprint);
// this header re-exports them under their historical pipeline:: names.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_PIPELINE_HASH_H
#define RELC_PIPELINE_HASH_H

#include "support/Hash.h"

namespace relc {
namespace pipeline {

using hash::fnv1a64;
using hash::hex16;
using hash::parseHex;

} // namespace pipeline
} // namespace relc

#endif // RELC_PIPELINE_HASH_H
