//===- ir/Expr.h - Pure scalar expressions ---------------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Pure, scalar-valued FunLang expressions: the right-hand sides of simple
// let/n bindings and the bodies of map/fold lambdas. The type discipline is
// deliberately explicit — bytes must be widened with b2w before arithmetic,
// words narrowed with w2b before being stored into byte arrays — because
// each cast corresponds to a representation decision the compiler must see
// (§3.1: "arithmetic over many types ... expressions with casts between
// different types").
//
//===----------------------------------------------------------------------===//

#ifndef RELC_IR_EXPR_H
#define RELC_IR_EXPR_H

#include "ir/Value.h"
#include "support/Casting.h"

#include <memory>
#include <string>
#include <vector>

namespace relc {
namespace ir {

/// Scalar types.
enum class Ty : uint8_t { Word, Byte, Bool };

const char *tyName(Ty T);

/// Binary operators over words (operands and result are Word unless noted).
enum class WordOp {
  Add,
  Sub,
  Mul,
  DivU,
  RemU,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  LtU, ///< Result is Bool.
  LtS, ///< Result is Bool.
  Eq,  ///< Result is Bool.
  Ne   ///< Result is Bool.
};

const char *wordOpName(WordOp Op);
bool wordOpIsCompare(WordOp Op);
uint64_t evalWordOp(WordOp Op, uint64_t A, uint64_t B);

//===----------------------------------------------------------------------===//
// Expression AST.
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind {
    Const,
    VarRef,
    Bin,
    Select,
    Cast,
    ArrayGet,
    TableGet
  };

  explicit Expr(Kind K) : TheKind(K) {}
  virtual ~Expr() = default;

  Kind kind() const { return TheKind; }

  /// Gallina-flavored pretty-printing.
  virtual std::string str() const = 0;

private:
  Kind TheKind;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// A scalar literal (word, byte, or bool according to its Value).
class Const : public Expr {
public:
  explicit Const(Value V) : Expr(Kind::Const), TheValue(std::move(V)) {
    assert(TheValue.isScalar() && "Const must hold a scalar");
  }

  const Value &value() const { return TheValue; }
  std::string str() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Const; }

private:
  Value TheValue;
};

class VarRef : public Expr {
public:
  explicit VarRef(std::string Name)
      : Expr(Kind::VarRef), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  std::string str() const override { return Name; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
};

class Bin : public Expr {
public:
  Bin(WordOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(Kind::Bin), Op(Op), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  WordOp op() const { return Op; }
  const Expr *lhs() const { return Lhs.get(); }
  const Expr *rhs() const { return Rhs.get(); }
  ExprPtr lhsPtr() const { return Lhs; }
  ExprPtr rhsPtr() const { return Rhs; }
  std::string str() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Bin; }

private:
  WordOp Op;
  ExprPtr Lhs, Rhs;
};

/// if c then t else e, as an expression. Both arms have the same type.
class Select : public Expr {
public:
  Select(ExprPtr Cond, ExprPtr Then, ExprPtr Else)
      : Expr(Kind::Select), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr *cond() const { return Cond.get(); }
  const Expr *thenExpr() const { return Then.get(); }
  const Expr *elseExpr() const { return Else.get(); }
  ExprPtr condPtr() const { return Cond; }
  ExprPtr thenPtr() const { return Then; }
  ExprPtr elsePtr() const { return Else; }
  std::string str() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Select; }

private:
  ExprPtr Cond, Then, Else;
};

/// Scalar conversions.
enum class CastKind {
  ByteToWord, ///< Zero extension.
  WordToByte, ///< Truncation to the low byte.
  BoolToWord  ///< false -> 0, true -> 1.
};

class Cast : public Expr {
public:
  Cast(CastKind CK, ExprPtr Operand)
      : Expr(Kind::Cast), CK(CK), Operand(std::move(Operand)) {}

  CastKind castKind() const { return CK; }
  const Expr *operand() const { return Operand.get(); }
  ExprPtr operandPtr() const { return Operand; }
  std::string str() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Cast; }

private:
  CastKind CK;
  ExprPtr Operand;
};

/// ListArray.get a i: reads element i of array-layout list \p Array. The
/// compiler emits a load and must discharge the bounds side condition
/// i < length a.
class ArrayGet : public Expr {
public:
  ArrayGet(std::string Array, ExprPtr Index)
      : Expr(Kind::ArrayGet), Array(std::move(Array)), Index(std::move(Index)) {}

  const std::string &array() const { return Array; }
  const Expr *index() const { return Index.get(); }
  ExprPtr indexPtr() const { return Index; }
  std::string str() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayGet; }

private:
  std::string Array;
  ExprPtr Index;
};

/// InlineTable.get t i: reads entry i of a per-function constant table
/// (§4.1.2). Unfolds to List.nth at the source level; compiles to a
/// Bedrock2 inline-table read. Bounds side condition i < length t.
class TableGet : public Expr {
public:
  TableGet(std::string Table, ExprPtr Index)
      : Expr(Kind::TableGet), Table(std::move(Table)), Index(std::move(Index)) {}

  const std::string &table() const { return Table; }
  const Expr *index() const { return Index.get(); }
  ExprPtr indexPtr() const { return Index; }
  std::string str() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::TableGet; }

private:
  std::string Table;
  ExprPtr Index;
};

//===----------------------------------------------------------------------===//
// Combinators (the builder's expression vocabulary).
//===----------------------------------------------------------------------===//

ExprPtr cw(uint64_t W);                       ///< Word literal.
ExprPtr cb(uint8_t B);                        ///< Byte literal.
ExprPtr cbool(bool B);                        ///< Bool literal.
ExprPtr v(std::string Name);                  ///< Variable reference.
ExprPtr binop(WordOp Op, ExprPtr L, ExprPtr R);
ExprPtr addw(ExprPtr L, ExprPtr R);
ExprPtr subw(ExprPtr L, ExprPtr R);
ExprPtr mulw(ExprPtr L, ExprPtr R);
ExprPtr andw(ExprPtr L, ExprPtr R);
ExprPtr orw(ExprPtr L, ExprPtr R);
ExprPtr xorw(ExprPtr L, ExprPtr R);
ExprPtr shlw(ExprPtr L, ExprPtr R);
ExprPtr shrw(ExprPtr L, ExprPtr R);           ///< Logical right shift.
ExprPtr ltu(ExprPtr L, ExprPtr R);
ExprPtr eqw(ExprPtr L, ExprPtr R);
ExprPtr nez(ExprPtr E);                       ///< E != 0.
ExprPtr select(ExprPtr C, ExprPtr T, ExprPtr E);
ExprPtr b2w(ExprPtr E);
ExprPtr w2b(ExprPtr E);
ExprPtr bool2w(ExprPtr E);
ExprPtr aget(std::string Array, ExprPtr Index);
ExprPtr tget(std::string Table, ExprPtr Index);

/// Rotate left on \p Bits-bit values (expressed with shifts and or; the
/// value must fit in Bits bits). Used by the Murmur3 scramble model.
ExprPtr rotl(ExprPtr E, unsigned Amount, unsigned Bits);

/// Stable lowercase name of an expression node kind (e.g. "array-get"),
/// used by the rule-metatheory coverage matrix and diagnostics.
const char *exprKindName(Expr::Kind K);

/// All expression node kinds, in declaration order: the rows of the
/// expression-engine coverage matrix.
const std::vector<Expr::Kind> &allExprKinds();

} // namespace ir
} // namespace relc

#endif // RELC_IR_EXPR_H
