//===- pipeline/Pipeline.h - Parallel, incremental certification -*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The suite-level certification driver behind relc-gen: for each program,
// a dependency-aware job chain
//
//     compile ──> { derivation replay, static analysis, translation
//                   validation, codelint } (independent once code exists)
//             ──> differential certification
//             ──> certificate store
//
// executed on the work-stealing scheduler (pipeline/Scheduler.h) across
// programs and layers, with verdicts reused across runs through the
// content-addressed certificate cache (pipeline/CertCache.h).
//
// Reproducibility contract: all diagnostics are buffered into per-program
// outcome fields — jobs never print — and consumed by the caller in
// program submission order, so `-j N` and `-j 1` produce byte-identical
// terminal streams and artifacts. `-j 1` executes jobs inline in
// submission order: exactly the pre-pipeline serial behavior.
//
// Error semantics match validate::validate: layers report in the fixed
// order replay -> analysis -> tv -> codelint -> differential (a replay
// failure wins even if analysis also failed in parallel), differential
// only runs when every enabled static layer passed, and one program's
// failure never blocks or poisons sibling programs.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_PIPELINE_PIPELINE_H
#define RELC_PIPELINE_PIPELINE_H

#include "analysis/Analysis.h"
#include "codelint/Codelint.h"
#include "core/Rule.h"
#include "pipeline/CertCache.h"
#include "programs/Programs.h"
#include "tv/Tv.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace relc {
namespace pipeline {

struct PipelineOptions {
  unsigned Jobs = 1;        ///< Scheduler width; 1 = serial reference.
  std::string CacheDir;     ///< Certificate cache; empty disables it.
  bool Validate = true;     ///< Layers 1 and 4 (replay + differential).
  bool Analyze = true;      ///< Layer 2 (dataflow verifier).
  bool Tv = true;           ///< Layer 3 (translation validation).
  bool Codelint = true;     ///< Target-side codelint over the emitted code
                            ///< (memory safety, stack bound, step bound).
                            ///< An Unsafe verdict fails the program; Unknown
                            ///< passes here (the strict Safe gate is
                            ///< relc-lint --code). When the layer completes
                            ///< un-degraded its record is embedded as the
                            ///< certificate's "codelint" section.

  /// Robustness guards (DESIGN.md §4.7): when nonzero, these override the
  /// per-program ValidationOptions so every certification layer is
  /// wall-clock terminating. Exhaustion degrades the layer (see
  /// LayerRun::Degraded), it never hangs or wrongly accepts.
  unsigned LayerTimeoutMs = 0; ///< Per-layer deadline, ms. 0 = unlimited.
  uint64_t TvStepBudget = 0;   ///< TV step cap. 0 = unlimited.
  /// Reclassify programs whose only problems are budget exhaustion or
  /// injected faults as "degraded" rather than failed (relc-gen exit 3,
  /// not 1). Deliberately NOT part of the options hash: it changes how
  /// outcomes are *classified*, never what is certified or cached.
  bool KeepGoing = false;
};

/// One certification layer's outcome within a program's chain.
struct LayerRun {
  bool Enabled = false;   ///< Requested by the options.
  bool Ran = false;       ///< Executed live this run.
  bool FromCache = false; ///< Verdict reused from the certificate cache.
  bool Ok = false;        ///< Verdict (meaningful when Ran or FromCache).
  double Millis = 0;      ///< Live execution time (0 when cached).
  /// The layer did not complete its real work: a guard::Budget ran out, an
  /// injected fault fired at its entry, or its job died at the scheduler
  /// boundary. Degraded outcomes are never cached, and with
  /// PipelineOptions::KeepGoing they are reported as exit-code-3
  /// "degraded" rather than genuine failures. Note Degraded does not
  /// imply !Ok: a budget-exhausted TV run is Inconclusive (Ok) yet
  /// Degraded — the differential layer then carries the certification.
  bool Degraded = false;
  /// Names what degraded the layer (the injected fault's describe() text
  /// or the scheduler-level failure), "" when Degraded came from a budget
  /// (the layer's own report carries the budget text then).
  std::string FaultNote;
};

/// Everything one program's jobs produced, buffered for deterministic
/// consumption. Move-only (owns the derivation witness).
struct ProgramOutcome {
  const programs::ProgramDef *Def = nullptr;

  bool CompileOk = false;
  std::string CompileError;      ///< Rendered compile failure.
  core::CompileResult Compiled;  ///< Valid when CompileOk.
  bedrock::Module Linked;        ///< Single-function module for layer 4.
  double CompileMillis = 0;

  LayerRun Replay, Analysis, Tv, Codelint, Diff;

  /// First failing layer's rendered error, with the same note chain
  /// validate::validate produces (so callers can print identical text).
  std::string ValidationError;

  /// Live-run reports (valid when the layer's Ran flag is set).
  analysis::AnalysisReport AReport;
  tv::TvReport TvRep;
  codelint::Report ClReport;

  /// Summary fields available on both live and cached paths.
  uint64_t AnalysisWarnings = 0;
  std::string AnalysisDiags;     ///< Rendered diags, newline-joined.
  std::string TvVerdictName;     ///< verdictName() form ("proved", ...).
  uint64_t TvLoops = 0, TvTerms = 0;
  std::string TvCertJson;        ///< The .tv.json payload ("" if TV off).
  std::string TvCertBin;         ///< The .certbin image ("" if TV off).
  std::string CodelintVerdictName; ///< "safe"/"unknown"/"unsafe" ("" if off).

  CertKey Key;                   ///< Content hashes (valid when CompileOk).
  uint64_t OptsHash = 0;
  bool CacheHit = false;         ///< Entire verdict came from the cache.

  /// The compile job itself died at the scheduler boundary (injected
  /// sched-job fault or a genuine throw); CompileError names why.
  bool CompileDegraded = false;
  /// Scheduler-level problem with the certify/store job, "" if none.
  std::string DegradedNote;

  /// The certificate cache was enabled but storing this program's verdict
  /// failed (unwritable directory, full disk, injected cache-write fault).
  /// Absorbed — the verdict stands — but relc-gen surfaces the first one
  /// as a named cache-dir-unwritable warning.
  std::string CacheStoreError;

  /// True iff compilation and every enabled layer succeeded.
  bool ok() const;

  /// Any layer (or compile, or certify) was degraded by a budget or fault.
  /// Degraded outcomes are never cached.
  bool anyDegraded() const;

  /// True iff the program is not ok() but every problem is a degraded
  /// outcome (budget exhaustion, injected fault, scheduler-boundary
  /// failure) — nothing genuinely failed certification. This is what
  /// --keep-going reclassifies to exit code 3.
  bool failureIsDegradedOnly() const;

  /// First degraded problem's text, in the fixed compile -> replay ->
  /// analysis -> tv -> codelint -> differential -> certify order ("" if
  /// none).
  std::string firstDegradedNote() const;
};

struct PipelineStats {
  CacheStats Cache;
  unsigned Programs = 0;
  unsigned Failures = 0;
};

/// Test-only *content* tampering: runs after a program compiles, before
/// any certification layer sees the result. Lets tests mutate one
/// program's emitted code or witness inside a parallel run. (Injection of
/// I/O and scheduling *faults* is the job of relc::fault — see
/// support/Fault.h — which this hook predates and complements.)
using TamperHook =
    std::function<void(const programs::ProgramDef &, core::CompileResult &)>;

/// Content hashes for the cache key — a thin wrapper over
/// cert::contentKey, THE definition of program identity shared with the
/// certificate writer and the independent checker. Exposed for tests:
/// mutating any of model / hints / fnspec / emitted code must change the
/// respective component.
CertKey certKeyFor(const ir::SourceFn &Model, const core::CompileHints &Hints,
                   const sep::FnSpec &Spec, const bedrock::Function &Code);

/// Digest of everything else a verdict depends on: validation options
/// (seed, vector battery, custom generators' presence), which layers are
/// enabled, and the rule-registry fingerprint — the digest of "which
/// compiler produced this" (core::standardRegistryFingerprint). Any
/// change, including editing/reordering/removing a compilation rule,
/// forces a cache miss.
uint64_t optionsHashFor(
    const validate::ValidationOptions &VOpts, const PipelineOptions &Opts,
    uint64_t RegistryFingerprint = core::standardRegistryFingerprint());

/// Certifies \p Progs under \p Opts on the job-graph scheduler. The result
/// vector is indexed like \p Progs regardless of execution order.
std::vector<ProgramOutcome>
certifyPrograms(const std::vector<const programs::ProgramDef *> &Progs,
                const PipelineOptions &Opts, PipelineStats *Stats = nullptr,
                const TamperHook &Tamper = nullptr);

} // namespace pipeline
} // namespace relc

#endif // RELC_PIPELINE_PIPELINE_H
