//===- tests/bedrock/InterpTest.cpp - Target semantics ---------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "bedrock/Interp.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::bedrock;

namespace {

/// Builds a one-function module and calls it.
Result<RunResult> runIt(Function Fn, const std::vector<Word> &Args,
                        TapeEnv &Env,
                        std::function<Status(State &)> Setup = nullptr,
                        ExecOptions Opts = {}) {
  Module M;
  M.Functions.push_back(std::move(Fn));
  return runFunction(
      M, M.Functions[0].Name, Args, Env,
      [&](State &S, std::vector<Word> &) {
        return Setup ? Setup(S) : Status::success();
      },
      Opts);
}

TEST(BedrockInterpTest, StraightLineArithmetic) {
  Function F;
  F.Name = "f";
  F.Args = {"x"};
  F.Rets = {"r"};
  F.Body = seqAll({set("t", mul(var("x"), lit(3))),
                   set("r", add(var("t"), lit(4)))});
  TapeEnv Env;
  Result<RunResult> R = runIt(F, {10}, Env);
  ASSERT_TRUE(bool(R)) << R.error().str();
  EXPECT_EQ(R->Rets, (std::vector<Word>{34}));
}

TEST(BedrockInterpTest, BinOpSemantics) {
  EXPECT_EQ(evalBinOp(BinOp::DivU, 7, 0), ~Word(0));
  EXPECT_EQ(evalBinOp(BinOp::RemU, 7, 0), 7u);
  EXPECT_EQ(evalBinOp(BinOp::Shl, 1, 64), 1u); // Mod 64.
  EXPECT_EQ(evalBinOp(BinOp::AShr, ~Word(0), 8), ~Word(0));
  EXPECT_EQ(evalBinOp(BinOp::LtS, ~Word(0), 0), 1u);
  EXPECT_EQ(evalBinOp(BinOp::LtU, ~Word(0), 0), 0u);
}

TEST(BedrockInterpTest, WhileLoopSumsRange) {
  // r = 0; i = 0; while (i < n) { r += i; i += 1 }
  Function F;
  F.Name = "sum";
  F.Args = {"n"};
  F.Rets = {"r"};
  F.Body = seqAll(
      {set("r", lit(0)), set("i", lit(0)),
       whileLoop(bin(BinOp::LtU, var("i"), var("n")),
                 seqAll({set("r", add(var("r"), var("i"))),
                         set("i", add(var("i"), lit(1)))}))});
  TapeEnv Env;
  Result<RunResult> R = runIt(F, {10}, Env);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Rets[0], 45u);
}

TEST(BedrockInterpTest, NonterminatingLoopRunsOutOfFuel) {
  Function F;
  F.Name = "spin";
  F.Rets = {};
  F.Body = whileLoop(lit(1), skip());
  TapeEnv Env;
  ExecOptions Opts;
  Opts.Fuel = 1000;
  Result<RunResult> R = runIt(F, {}, Env, nullptr, Opts);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("fuel"), std::string::npos);
}

TEST(BedrockInterpTest, LoadsAndStoresGoThroughMemory) {
  Function F;
  F.Name = "bump";
  F.Args = {"p"};
  F.Rets = {"old"};
  F.Body = seqAll({set("old", load(AccessSize::Byte, var("p"))),
                   store(AccessSize::Byte, var("p"),
                         add(var("old"), lit(1)))});
  Module M;
  M.Functions.push_back(F);
  State S;
  Word Base = S.Mem.alloc(1);
  ASSERT_TRUE(bool(S.Mem.fill(Base, {41})));
  TapeEnv Env;
  Interp I(M, Env);
  Result<std::vector<Word>> R = I.callFunction(S, "bump", {Base});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0], 41u);
  EXPECT_EQ(*S.Mem.loadByte(Base), 42);
}

TEST(BedrockInterpTest, WildStoreIsAnError) {
  Function F;
  F.Name = "wild";
  F.Rets = {};
  F.Body = store(AccessSize::Byte, lit(0x10), lit(1));
  TapeEnv Env;
  Result<RunResult> R = runIt(F, {}, Env);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("out of bounds"), std::string::npos);
}

TEST(BedrockInterpTest, UndefinedLocalIsAnError) {
  Function F;
  F.Name = "f";
  F.Rets = {"r"};
  F.Body = set("r", var("ghost"));
  TapeEnv Env;
  Result<RunResult> R = runIt(F, {}, Env);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("undefined local"), std::string::npos);
}

TEST(BedrockInterpTest, CallPassesArgsAndReturns) {
  Function Callee;
  Callee.Name = "sq";
  Callee.Args = {"x"};
  Callee.Rets = {"y"};
  Callee.Body = set("y", mul(var("x"), var("x")));
  Function Caller;
  Caller.Name = "main";
  Caller.Args = {"a"};
  Caller.Rets = {"r"};
  Caller.Body =
      seqAll({call({"t"}, "sq", {var("a")}), set("r", add(var("t"), lit(1)))});
  Module M;
  M.Functions = {Callee, Caller};
  State S;
  TapeEnv Env;
  Interp I(M, Env);
  Result<std::vector<Word>> R = I.callFunction(S, "main", {6});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0], 37u);
}

TEST(BedrockInterpTest, CalleeLocalsAreFunctionScoped) {
  Function Callee;
  Callee.Name = "clobber";
  Callee.Rets = {"x"};
  Callee.Body = set("x", lit(99)); // Same local name as the caller's.
  Function Caller;
  Caller.Name = "main";
  Caller.Rets = {"r"};
  Caller.Body = seqAll({set("x", lit(1)), call({"y"}, "clobber", {}),
                        set("r", var("x"))});
  Module M;
  M.Functions = {Callee, Caller};
  State S;
  TapeEnv Env;
  Interp I(M, Env);
  Result<std::vector<Word>> R = I.callFunction(S, "main", {});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0], 1u); // Caller's x untouched.
}

TEST(BedrockInterpTest, MissingReturnLocalIsAnError) {
  Function F;
  F.Name = "f";
  F.Rets = {"never_set"};
  F.Body = skip();
  TapeEnv Env;
  Result<RunResult> R = runIt(F, {}, Env);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("never_set"), std::string::npos);
}

TEST(BedrockInterpTest, StackallocScopesAndReclaims) {
  Function F;
  F.Name = "f";
  F.Rets = {"r"};
  F.Body = stackalloc(
      "p", 8,
      seqAll({store(AccessSize::Eight, var("p"), lit(777)),
              set("r", load(AccessSize::Eight, var("p")))}));
  TapeEnv Env;
  Result<RunResult> R = runIt(F, {}, Env);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Rets[0], 777u);
  EXPECT_EQ(R->Final.Mem.liveAllocations(), 0u); // Reclaimed at scope end.
}

TEST(BedrockInterpTest, StackallocContentsAreNondeterministic) {
  Function F;
  F.Name = "peek";
  F.Rets = {"r"};
  F.Body = stackalloc("p", 8, set("r", load(AccessSize::Eight, var("p"))));
  Module M;
  M.Functions.push_back(F);
  TapeEnv Env;
  ExecOptions A, B;
  A.NondetSeed = 1;
  B.NondetSeed = 2;
  State S1, S2;
  Interp I1(M, Env, A), I2(M, Env, B);
  Result<std::vector<Word>> R1 = I1.callFunction(S1, "peek", {});
  Result<std::vector<Word>> R2 = I2.callFunction(S2, "peek", {});
  ASSERT_TRUE(bool(R1) && bool(R2));
  EXPECT_NE((*R1)[0], (*R2)[0]); // Depends on the oracle.
}

TEST(BedrockInterpTest, InteractRecordsTraceAndUsesEnv) {
  Function F;
  F.Name = "echo";
  F.Rets = {"x"};
  F.Body = seqAll({interact({"x"}, "read", {}),
                   interact({}, "write", {add(var("x"), lit(1))})});
  TapeEnv Env({41});
  Result<RunResult> R = runIt(F, {}, Env);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Rets[0], 41u);
  ASSERT_EQ(R->Final.Tr.size(), 2u);
  EXPECT_EQ(R->Final.Tr[0].Action, "read");
  EXPECT_EQ(R->Final.Tr[0].Rets, (std::vector<Word>{41}));
  EXPECT_EQ(R->Final.Tr[1].Action, "write");
  EXPECT_EQ(R->Final.Tr[1].Args, (std::vector<Word>{42}));
  EXPECT_EQ(Env.output(), (std::vector<Word>{42}));
}

TEST(BedrockInterpTest, InlineTableReads) {
  Function F;
  F.Name = "lut";
  F.Args = {"i"};
  F.Rets = {"r"};
  F.Tables.push_back(InlineTable{"t", AccessSize::Four, {10, 20, 30}});
  F.Body = set("r", tableGet(AccessSize::Four, "t", var("i")));
  TapeEnv Env;
  Result<RunResult> Ok = runIt(F, {2}, Env);
  ASSERT_TRUE(bool(Ok));
  EXPECT_EQ(Ok->Rets[0], 30u);
  Result<RunResult> Oob = runIt(F, {3}, Env);
  EXPECT_FALSE(bool(Oob)); // Out-of-bounds table read is a runtime error.
}

TEST(BedrockInterpTest, RunawayRecursionIsCaught) {
  Function F;
  F.Name = "loop";
  F.Rets = {};
  F.Body = call({}, "loop", {});
  TapeEnv Env;
  Result<RunResult> R = runIt(F, {}, Env);
  EXPECT_FALSE(bool(R));
}

} // namespace
