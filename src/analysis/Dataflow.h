//===- analysis/Dataflow.h - Forward worklist dataflow solver ---*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// A generic forward dataflow solver over `analysis::Cfg`, parameterized by
// an abstract domain. A Domain provides:
//
//   using State = ...;                      // copyable abstract state
//   State entry();                          // state at function entry
//   void transfer(const Cfg &, const BasicBlock &, const CfgStmt &, State &);
//   std::optional<State> edge(const Cfg &, const BasicBlock &,
//                             const State &, bool Taken);
//       // State flowing along the Taken/not-Taken edge of a Branch block
//       // (and along Jump edges, with Taken = true). nullopt marks the
//       // edge statically infeasible — its target receives nothing.
//   bool join(unsigned BlockId, State &Into, const State &From);
//       // Merge From into Into; returns true iff Into changed. BlockId
//       // lets domains widen at loop headers.
//   bool same(const State &, const State &);
//       // Structural equality; drives change detection.
//   bool restartLoops();
//       // Whether a loop should be re-seeded from its entry state when
//       // that entry state changes (see below). Domains whose join can
//       // get *stuck* on artifacts of a stale merge (the symbolic
//       // domain's phis) need this; proper lattice domains with widening
//       // (intervals) should decline — each upstream change would
//       // restart every downstream loop, and the cascade across a chain
//       // of loops multiplies visits past the iteration cap.
//
// Block inputs are recomputed *fresh* on every visit as the join of the
// predecessors' latest cached edge states ("In[b] = ⊔ out-edges of preds"),
// never by accumulating into the stored input. Accumulation would merge
// states from different fixpoint generations — a join point would phi
// together its predecessor's final state with that predecessor's own
// stale early-iteration states, losing facts (and precision) that hold at
// the actual fixpoint.
//
// Block-input states start unset; a block whose input never gets a state is
// unreachable under the domain's abstraction. The worklist is ordered by
// reverse post order so loop bodies stabilize before their exits are
// explored. Iteration is capped (domains with unbounded ascending chains
// must widen); hitting the cap sets Converged = false, which callers treat
// as an analysis error rather than trusting a partial fixpoint.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_ANALYSIS_DATAFLOW_H
#define RELC_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"
#include "support/Budget.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

namespace relc {
namespace analysis {

template <typename Domain> struct DataflowResult {
  /// Fixpoint state at each block's input, indexed by block id; unset means
  /// the block is unreachable in the abstraction.
  std::vector<std::optional<typename Domain::State>> In;
  unsigned Iterations = 0;
  bool Converged = true;
  /// Non-convergence was forced by guard::Budget exhaustion, not by the
  /// visit cap. Callers word their diagnostic accordingly.
  bool BudgetExhausted = false;
};

template <typename Domain>
DataflowResult<Domain> runForward(const Cfg &G, Domain &D,
                                  unsigned MaxVisitsPerBlock = 64,
                                  const guard::Budget *Budget = nullptr) {
  DataflowResult<Domain> R;
  const unsigned NumBlocks = unsigned(G.blocks().size());
  R.In.resize(NumBlocks);
  R.In[G.entry()] = D.entry();

  const std::vector<unsigned> &Pos = G.rpoPos();
  auto Order = [&Pos](unsigned A, unsigned B) {
    return Pos[A] != Pos[B] ? Pos[A] < Pos[B] : A < B;
  };
  std::set<unsigned, decltype(Order)> Worklist(Order);
  Worklist.insert(G.entry());

  const unsigned MaxIterations = MaxVisitsPerBlock * NumBlocks;

  // Latest feasible edge state per (pred, succ); absent means the edge is
  // infeasible or the pred has not been visited yet.
  std::vector<std::map<unsigned, typename Domain::State>> EdgeOut(NumBlocks);
  // Last seen join of a loop header's *forward* (non-back-edge) inputs.
  std::vector<std::optional<typename Domain::State>> FwdIn(NumBlocks);

  // Joins the cached edge states flowing into Succ; with ForwardOnly set,
  // back edges (preds at an equal or later RPO position) are skipped.
  auto JoinPreds = [&](unsigned Succ,
                       bool ForwardOnly) -> std::optional<typename Domain::State> {
    std::optional<typename Domain::State> J;
    for (unsigned P : G.block(Succ).Preds) {
      if (ForwardOnly && Pos[P] >= Pos[Succ])
        continue;
      auto It = EdgeOut[P].find(Succ);
      if (It == EdgeOut[P].end())
        continue;
      if (!J)
        J = It->second;
      else
        D.join(Succ, *J, It->second);
    }
    return J;
  };

  auto Propagate = [&](unsigned From, unsigned Succ,
                       std::optional<typename Domain::State> S) {
    if (S)
      EdgeOut[From][Succ] = std::move(*S);
    else
      EdgeOut[From].erase(Succ); // Infeasible (possibly newly so).

    // When the state *entering* a loop changes, restart the loop instead
    // of joining: seed the header with the forward-only join and requeue
    // the back-edge predecessors. Joining the new entry state against the
    // cached back-edge state would mix fixpoint generations — the cached
    // state was computed from the loop's previous input, and the spurious
    // phis/fact losses that merge produces are never undone (a phi, once
    // minted, keeps both sides unequal forever). The worklist's RPO order
    // makes the restart cheap: the loop body refreshes before the
    // requeued back edge re-joins, so the header re-stabilizes against
    // current states only.
    bool HasBack = false;
    for (unsigned P : G.block(Succ).Preds)
      HasBack |= Pos[P] >= Pos[Succ];
    if (HasBack && Pos[From] < Pos[Succ] && D.restartLoops()) {
      std::optional<typename Domain::State> Fwd =
          JoinPreds(Succ, /*ForwardOnly=*/true);
      if (Fwd && (!FwdIn[Succ] || !D.same(*FwdIn[Succ], *Fwd))) {
        FwdIn[Succ] = *Fwd;
        R.In[Succ] = std::move(*Fwd);
        Worklist.insert(Succ);
        for (unsigned P : G.block(Succ).Preds)
          if (Pos[P] >= Pos[Succ] && R.In[P])
            Worklist.insert(P);
        return;
      }
    }

    // Recompute Succ's input fresh from all feasible predecessor edges.
    std::optional<typename Domain::State> Fresh =
        JoinPreds(Succ, /*ForwardOnly=*/false);
    if (!Fresh)
      return; // No feasible way in (yet).
    if (!R.In[Succ] || !D.same(*R.In[Succ], *Fresh)) {
      R.In[Succ] = std::move(*Fresh);
      Worklist.insert(Succ);
    }
  };

  while (!Worklist.empty()) {
    if (++R.Iterations > MaxIterations) {
      R.Converged = false;
      break;
    }
    // A budgeted run that exhausts stops exactly like a visit-cap miss:
    // Converged = false, which every caller already turns into an analysis
    // *error* (a refusal) — never a silently weaker accepted state.
    if (Budget && !Budget->checkpoint()) {
      R.Converged = false;
      R.BudgetExhausted = true;
      break;
    }
    unsigned Id = *Worklist.begin();
    Worklist.erase(Worklist.begin());
    const BasicBlock &B = G.block(Id);

    typename Domain::State S = *R.In[Id];
    for (const CfgStmt &St : B.Stmts)
      D.transfer(G, B, St, S);

    switch (B.T) {
    case BasicBlock::Term::Jump:
      Propagate(Id, B.TrueSucc, D.edge(G, B, S, true));
      break;
    case BasicBlock::Term::Branch:
      Propagate(Id, B.TrueSucc, D.edge(G, B, S, true));
      Propagate(Id, B.FalseSucc, D.edge(G, B, S, false));
      break;
    case BasicBlock::Term::Exit:
      break;
    }
  }
  return R;
}

} // namespace analysis
} // namespace relc

#endif // RELC_ANALYSIS_DATAFLOW_H
