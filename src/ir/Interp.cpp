//===- ir/Interp.cpp - Reference semantics for FunLang ---------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

namespace relc {
namespace ir {

//===----------------------------------------------------------------------===//
// Expressions.
//===----------------------------------------------------------------------===//

Result<Value> Evaluator::evalExpr(const Env &E, const Expr &Ex) {
  switch (Ex.kind()) {
  case Expr::Kind::Const:
    return cast<Const>(&Ex)->value();

  case Expr::Kind::VarRef: {
    const auto *V = cast<VarRef>(&Ex);
    auto It = E.find(V->name());
    if (It == E.end())
      return Error("unbound variable '" + V->name() + "'");
    return It->second;
  }

  case Expr::Kind::Bin: {
    const auto *B = cast<Bin>(&Ex);
    Result<Value> L = evalExpr(E, *B->lhs());
    if (!L)
      return L.takeError();
    Result<Value> R = evalExpr(E, *B->rhs());
    if (!R)
      return R.takeError();
    if (L->kind() != Value::Kind::Word || R->kind() != Value::Kind::Word)
      return Error("binary operator '" + std::string(wordOpName(B->op())) +
                   "' applied to non-word operands (insert b2w/Z.b2z casts)");
    uint64_t Raw = evalWordOp(B->op(), L->asWord(), R->asWord());
    if (wordOpIsCompare(B->op()))
      return Value::boolean(Raw != 0);
    return Value::word(Raw);
  }

  case Expr::Kind::Select: {
    const auto *S = cast<Select>(&Ex);
    Result<Value> C = evalExpr(E, *S->cond());
    if (!C)
      return C.takeError();
    if (C->kind() != Value::Kind::Bool)
      return Error("Select condition is not a bool");
    // Both arms are evaluated in a pure language: selection is value-level.
    return evalExpr(E, C->asBool() ? *S->thenExpr() : *S->elseExpr());
  }

  case Expr::Kind::Cast: {
    const auto *C = cast<Cast>(&Ex);
    Result<Value> V = evalExpr(E, *C->operand());
    if (!V)
      return V.takeError();
    switch (C->castKind()) {
    case CastKind::ByteToWord:
      if (V->kind() != Value::Kind::Byte)
        return Error("b2w applied to non-byte");
      return Value::word(V->asByte());
    case CastKind::WordToByte:
      if (V->kind() != Value::Kind::Word)
        return Error("w2b applied to non-word");
      return Value::byte(uint8_t(V->asWord()));
    case CastKind::BoolToWord:
      if (V->kind() != Value::Kind::Bool)
        return Error("Z.b2z applied to non-bool");
      return Value::word(V->asBool() ? 1 : 0);
    }
    return Error("unknown cast");
  }

  case Expr::Kind::ArrayGet: {
    const auto *G = cast<ArrayGet>(&Ex);
    auto It = E.find(G->array());
    if (It == E.end())
      return Error("unbound array '" + G->array() + "'");
    if (It->second.kind() != Value::Kind::List)
      return Error("ListArray.get on non-list '" + G->array() + "'");
    Result<Value> Idx = evalExpr(E, *G->index());
    if (!Idx)
      return Idx.takeError();
    if (Idx->kind() != Value::Kind::Word)
      return Error("array index is not a word");
    const std::vector<Value> &Elems = It->second.elems();
    if (Idx->asWord() >= Elems.size())
      return Error("source-level out-of-bounds get: " + G->array() + "[" +
                   std::to_string(Idx->asWord()) + "] of " +
                   std::to_string(Elems.size()));
    return Elems[size_t(Idx->asWord())];
  }

  case Expr::Kind::TableGet: {
    const auto *G = cast<TableGet>(&Ex);
    const TableDef *T = Fn.findTable(G->table());
    if (!T)
      return Error("unknown inline table '" + G->table() + "'");
    Result<Value> Idx = evalExpr(E, *G->index());
    if (!Idx)
      return Idx.takeError();
    if (Idx->kind() != Value::Kind::Word)
      return Error("table index is not a word");
    if (Idx->asWord() >= T->Elements.size())
      return Error("source-level out-of-bounds table get: " + G->table() +
                   "[" + std::to_string(Idx->asWord()) + "]");
    uint64_t Raw = T->Elements[size_t(Idx->asWord())] & eltMask(T->Elt);
    // Byte tables yield bytes (InlineTable.get unfolds to nth on a list of
    // bytes); wider tables yield words.
    if (T->Elt == EltKind::U8)
      return Value::byte(uint8_t(Raw));
    return Value::word(Raw);
  }
  }
  return Error("unknown expression kind");
}

//===----------------------------------------------------------------------===//
// Bindings.
//===----------------------------------------------------------------------===//

/// Checks that \p V fits the element kind \p K and normalizes it to the
/// stored representation (Byte for U8, Word otherwise).
static Result<Value> normalizeElt(EltKind K, const Value &V) {
  if (K == EltKind::U8) {
    if (V.kind() != Value::Kind::Byte)
      return Error("storing non-byte into a byte array (insert w2b)");
    return V;
  }
  if (V.kind() != Value::Kind::Word)
    return Error("storing non-word into a word array");
  if ((V.asWord() & ~eltMask(K)) != 0)
    return Error("stored value does not fit element width");
  return V;
}

Result<Value> Evaluator::evalBound(Env &E, const Binding &B) {
  const BoundForm &F = *B.Bound;
  switch (F.kind()) {
  case BoundForm::Kind::PureVal:
    return evalExpr(E, *cast<PureVal>(&F)->expr());

  case BoundForm::Kind::ArrayPut: {
    const auto *P = cast<ArrayPut>(&F);
    auto It = E.find(P->array());
    if (It == E.end() || It->second.kind() != Value::Kind::List)
      return Error("ListArray.put on unbound or non-list '" + P->array() +
                   "'");
    Result<Value> Idx = evalExpr(E, *P->index());
    if (!Idx)
      return Idx.takeError();
    Result<Value> V = evalExpr(E, *P->val());
    if (!V)
      return V.takeError();
    Value NewList = It->second; // Functional update: copy, then replace.
    if (Idx->asWord() >= NewList.elems().size())
      return Error("source-level out-of-bounds put on '" + P->array() + "'");
    Result<Value> Norm = normalizeElt(NewList.listElt(), *V);
    if (!Norm)
      return Norm.takeError();
    NewList.elems()[size_t(Idx->asWord())] = *Norm;
    return NewList;
  }

  case BoundForm::Kind::ListMap: {
    const auto *M = cast<ListMap>(&F);
    auto It = E.find(M->array());
    if (It == E.end() || It->second.kind() != Value::Kind::List)
      return Error("ListArray.map on unbound or non-list '" + M->array() +
                   "'");
    Value NewList = It->second;
    Env Scope = E;
    for (Value &Elt : NewList.elems()) {
      if (FuelLeft-- == 0)
        return Error("out of fuel in ListArray.map");
      Scope[M->param()] = Elt;
      Result<Value> V = evalExpr(Scope, *M->body());
      if (!V)
        return V.takeError();
      Result<Value> Norm = normalizeElt(NewList.listElt(), *V);
      if (!Norm)
        return Norm.takeError();
      Elt = *Norm;
    }
    return NewList;
  }

  case BoundForm::Kind::ListFold: {
    const auto *L = cast<ListFold>(&F);
    auto It = E.find(L->array());
    if (It == E.end() || It->second.kind() != Value::Kind::List)
      return Error("fold_left on unbound or non-list '" + L->array() + "'");
    Result<Value> Acc = evalExpr(E, *L->init());
    if (!Acc)
      return Acc.takeError();
    Env Scope = E;
    for (const Value &Elt : It->second.elems()) {
      if (FuelLeft-- == 0)
        return Error("out of fuel in fold_left");
      Scope[L->accParam()] = *Acc;
      Scope[L->eltParam()] = Elt;
      Acc = evalExpr(Scope, *L->body());
      if (!Acc)
        return Acc.takeError();
    }
    return Acc.take();
  }

  case BoundForm::Kind::FoldBreak: {
    const auto *L = cast<FoldBreak>(&F);
    auto It = E.find(L->array());
    if (It == E.end() || It->second.kind() != Value::Kind::List)
      return Error("fold_break on unbound or non-list '" + L->array() + "'");
    Result<Value> Acc = evalExpr(E, *L->init());
    if (!Acc)
      return Acc.takeError();
    Env Scope = E;
    for (const Value &Elt : It->second.elems()) {
      if (FuelLeft-- == 0)
        return Error("out of fuel in fold_break");
      Scope[L->accParam()] = *Acc;
      Result<Value> Brk = evalExpr(Scope, *L->breakCond());
      if (!Brk)
        return Brk.takeError();
      if (Brk->kind() != Value::Kind::Bool)
        return Error("fold_break predicate is not a bool");
      if (Brk->asBool())
        break;
      Scope[L->eltParam()] = Elt;
      Acc = evalExpr(Scope, *L->body());
      if (!Acc)
        return Acc.takeError();
    }
    return Acc.take();
  }

  case BoundForm::Kind::RangeFold: {
    const auto *R = cast<RangeFold>(&F);
    Result<Value> Lo = evalExpr(E, *R->lo());
    if (!Lo)
      return Lo.takeError();
    Result<Value> Hi = evalExpr(E, *R->hi());
    if (!Hi)
      return Hi.takeError();
    if (Lo->kind() != Value::Kind::Word || Hi->kind() != Value::Kind::Word)
      return Error("ranged_for bounds are not words");
    Env Scope = E;
    std::vector<Value> Accs;
    for (const AccInit &A : R->accs()) {
      Result<Value> V = evalExpr(E, *A.Init);
      if (!V)
        return V.takeError();
      Accs.push_back(V.take());
    }
    for (uint64_t I = Lo->asWord(); I < Hi->asWord(); ++I) {
      if (FuelLeft-- == 0)
        return Error("out of fuel in ranged_for");
      Scope[R->idxName()] = Value::word(I);
      for (size_t A = 0; A < Accs.size(); ++A)
        Scope[R->accs()[A].Name] = Accs[A];
      Result<std::vector<Value>> Out = evalProg(Scope, *R->body());
      if (!Out)
        return Out.takeError();
      if (Out->size() != Accs.size())
        return Error("ranged_for body returns wrong number of accumulators");
      Accs = Out.take();
    }
    if (Accs.size() == 1)
      return Accs[0];
    return Value::tuple(std::move(Accs));
  }

  case BoundForm::Kind::WhileComb: {
    const auto *W = cast<WhileComb>(&F);
    Env Scope = E;
    std::vector<Value> Accs;
    for (const AccInit &A : W->accs()) {
      Result<Value> V = evalExpr(E, *A.Init);
      if (!V)
        return V.takeError();
      Accs.push_back(V.take());
    }
    auto BindAccs = [&] {
      for (size_t A = 0; A < Accs.size(); ++A)
        Scope[W->accs()[A].Name] = Accs[A];
    };
    while (true) {
      if (FuelLeft-- == 0)
        return Error("out of fuel in while");
      BindAccs();
      Result<Value> Cond = evalExpr(Scope, *W->cond());
      if (!Cond)
        return Cond.takeError();
      if (Cond->kind() != Value::Kind::Bool)
        return Error("while condition is not a bool");
      if (!Cond->asBool())
        break;
      Result<Value> M0 = evalExpr(Scope, *W->measure());
      if (!M0)
        return M0.takeError();
      Result<std::vector<Value>> Out = evalProg(Scope, *W->body());
      if (!Out)
        return Out.takeError();
      if (Out->size() != Accs.size())
        return Error("while body returns wrong number of accumulators");
      Accs = Out.take();
      BindAccs();
      Result<Value> M1 = evalExpr(Scope, *W->measure());
      if (!M1)
        return M1.takeError();
      // Total-correctness obligation: the declared measure must strictly
      // decrease. This is the dynamic check standing in for the Coq proof.
      if (!(M1->asWord() < M0->asWord()))
        return Error("while measure did not strictly decrease (" +
                     std::to_string(M0->asWord()) + " -> " +
                     std::to_string(M1->asWord()) + ")");
    }
    if (Accs.size() == 1)
      return Accs[0];
    return Value::tuple(std::move(Accs));
  }

  case BoundForm::Kind::IfBound: {
    const auto *I = cast<IfBound>(&F);
    Result<Value> C = evalExpr(E, *I->cond());
    if (!C)
      return C.takeError();
    if (C->kind() != Value::Kind::Bool)
      return Error("conditional guard is not a bool");
    Result<std::vector<Value>> Out =
        evalProg(E, C->asBool() ? *I->thenProg() : *I->elseProg());
    if (!Out)
      return Out.takeError();
    if (Out->size() == 1)
      return (*Out)[0];
    return Value::tuple(Out.take());
  }

  case BoundForm::Kind::StackInit: {
    const auto *S = cast<StackInit>(&F);
    return Value::byteList(S->bytes());
  }

  case BoundForm::Kind::StackUninit: {
    const auto *S = cast<StackUninit>(&F);
    // Unconstrained contents: drawn from the nondet oracle, so results that
    // depend on them differ across seeds and fail differential validation.
    std::vector<uint8_t> Bytes(S->size());
    for (uint8_t &B : Bytes)
      B = Ctx.Nondet.nextByte();
    return Value::byteList(Bytes);
  }

  case BoundForm::Kind::NondetAlloc: {
    const auto *N = cast<NondetAlloc>(&F);
    std::vector<uint8_t> Bytes(N->size());
    for (uint8_t &B : Bytes)
      B = Ctx.Nondet.nextByte();
    return Value::byteList(Bytes);
  }

  case BoundForm::Kind::NondetPeek:
    return Value::word(Ctx.Nondet.next());

  case BoundForm::Kind::IoRead: {
    uint64_t V = Ctx.NextInput < Ctx.InputTape.size()
                     ? Ctx.InputTape[Ctx.NextInput++]
                     : 0;
    Ctx.IoLog.emplace_back('r', V);
    return Value::word(V);
  }

  case BoundForm::Kind::IoWrite: {
    Result<Value> V = evalExpr(E, *cast<IoWrite>(&F)->expr());
    if (!V)
      return V.takeError();
    if (V->kind() != Value::Kind::Word)
      return Error("write of non-word");
    Ctx.Output.push_back(V->asWord());
    Ctx.IoLog.emplace_back('w', V->asWord());
    return Value::unit();
  }

  case BoundForm::Kind::WriterTell: {
    Result<Value> V = evalExpr(E, *cast<WriterTell>(&F)->expr());
    if (!V)
      return V.takeError();
    if (V->kind() != Value::Kind::Word)
      return Error("tell of non-word");
    Ctx.Output.push_back(V->asWord());
    Ctx.IoLog.emplace_back('w', V->asWord());
    return Value::unit();
  }

  case BoundForm::Kind::CellGet: {
    const auto *C = cast<CellGet>(&F);
    auto It = E.find(C->cell());
    if (It == E.end() || It->second.kind() != Value::Kind::List ||
        It->second.elems().size() != 1)
      return Error("Cell.get on unbound or non-cell '" + C->cell() + "'");
    return It->second.elems()[0];
  }

  case BoundForm::Kind::CellPut:
  case BoundForm::Kind::CellIncr: {
    bool IsIncr = F.kind() == BoundForm::Kind::CellIncr;
    const std::string &CellName =
        IsIncr ? cast<CellIncr>(&F)->cell() : cast<CellPut>(&F)->cell();
    const Expr *Arg =
        IsIncr ? cast<CellIncr>(&F)->expr() : cast<CellPut>(&F)->expr();
    auto It = E.find(CellName);
    if (It == E.end() || It->second.kind() != Value::Kind::List ||
        It->second.elems().size() != 1)
      return Error("cell operation on unbound or non-cell '" + CellName + "'");
    Result<Value> V = evalExpr(E, *Arg);
    if (!V)
      return V.takeError();
    if (V->kind() != Value::Kind::Word)
      return Error("cell operand is not a word");
    uint64_t Old = It->second.elems()[0].asWord();
    uint64_t New = IsIncr ? Old + V->asWord() : V->asWord();
    return Value::list(EltKind::U64, {Value::word(New)});
  }

  case BoundForm::Kind::CopyArr: {
    const auto *C = cast<CopyArr>(&F);
    auto It = E.find(C->array());
    if (It == E.end() || It->second.kind() != Value::Kind::List)
      return Error("copy of unbound or non-list '" + C->array() + "'");
    return It->second; // Pure duplication: the same list value.
  }

  case BoundForm::Kind::ExternCall: {
    const auto *X = cast<ExternCall>(&F);
    if (!Ctx.ExternSem)
      return Error("no source semantics registered for external call to '" +
                   X->callee() + "'");
    std::vector<Value> Args;
    for (const ExprPtr &A : X->args()) {
      Result<Value> V = evalExpr(E, *A);
      if (!V)
        return V.takeError();
      Args.push_back(V.take());
    }
    Result<std::vector<Value>> Rets = Ctx.ExternSem(X->callee(), Args);
    if (!Rets)
      return Rets.takeError();
    if (Rets->size() != X->numRets())
      return Error("external call to '" + X->callee() +
                   "' returned wrong arity");
    if (Rets->size() == 1)
      return (*Rets)[0];
    return Value::tuple(Rets.take());
  }
  }
  return Error("unknown bound form");
}

Status Evaluator::bindResults(Env &E, const Binding &B, Value V) {
  if (B.Names.size() == 1) {
    E[B.Names[0]] = std::move(V);
    return Status::success();
  }
  if (V.kind() != Value::Kind::Tuple || V.elems().size() != B.Names.size())
    return Error("binding " + B.str() + ": arity mismatch");
  for (size_t I = 0; I < B.Names.size(); ++I)
    E[B.Names[I]] = V.elems()[I];
  return Status::success();
}

Result<std::vector<Value>> Evaluator::evalProg(const Env &Outer,
                                               const Prog &P) {
  Env E = Outer;
  for (const Binding &B : P.bindings()) {
    if (FuelLeft-- == 0)
      return Error("out of fuel");
    Result<Value> V = evalBound(E, B);
    if (!V)
      return V.takeError().note("in " + B.str());
    Status Bound = bindResults(E, B, V.take());
    if (!Bound)
      return Bound.takeError();
  }
  std::vector<Value> Out;
  for (const std::string &R : P.returns()) {
    auto It = E.find(R);
    if (It == E.end())
      return Error("returned variable '" + R + "' is unbound");
    Out.push_back(It->second);
  }
  return Out;
}

Result<std::vector<Value>> evalFn(const SourceFn &Fn,
                                  const std::vector<Value> &Args,
                                  EffectCtx &Ctx, EvalOptions Opts) {
  if (Args.size() != Fn.Params.size())
    return Error("evalFn: expected " + std::to_string(Fn.Params.size()) +
                 " arguments, got " + std::to_string(Args.size()));
  Env E;
  for (size_t I = 0; I < Args.size(); ++I)
    E[Fn.Params[I].Name] = Args[I];
  Evaluator Ev(Fn, Ctx, Opts);
  return Ev.evalProg(E, *Fn.Body);
}

} // namespace ir
} // namespace relc
