//===- rulemeta/Coverage.cpp - Construct × engine coverage matrix ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Analysis 2: relc is "two relational compilers rolled into one" (§4.1.3),
// so the coverage matrix has one row per source construct and one column
// per engine — statement kinds against the statement registry, expression
// kinds against the expression registry. A construct with no applicable
// rule is an unsolved goal waiting to happen; this reports the gap before
// any program compiles into it.
//
// Coverage demands an *unconditional* rule: a conditional rule
// (MatchConds) only fires on a slice of its kinds, so it cannot promise
// the construct is compilable in general.
//
//===----------------------------------------------------------------------===//

#include "rulemeta/Pattern.h"
#include "rulemeta/RuleMeta.h"

namespace relc {
namespace rulemeta {

Report analyzeCoverage(const core::RuleSet &RS, const core::ExprRuleSet &ES) {
  Report R;

  uint64_t StmtCovered = 0;
  for (size_t I = 0; I < RS.size(); ++I) {
    SelPattern S = SelPattern::of(RS[I].pattern());
    if (S.satisfiable())
      StmtCovered |= S.KindBits;
  }
  for (ir::BoundForm::Kind K : ir::allBoundKinds())
    if (!(StmtCovered & (1ULL << unsigned(K))))
      R.add(Reason::UncoveredConstruct,
            std::string("stmt/") + ir::boundKindName(K),
            "no registered statement rule can compile this construct; any "
            "program using it dies with an unsolved goal");

  uint64_t ExprCovered = 0;
  for (size_t I = 0; I < ES.size(); ++I) {
    SelPattern S = SelPattern::of(ES[I].pattern());
    if (S.satisfiable() && !S.Conditional)
      ExprCovered |= S.KindBits;
  }
  for (ir::Expr::Kind K : ir::allExprKinds())
    if (!(ExprCovered & (1ULL << unsigned(K))))
      R.add(Reason::UncoveredConstruct,
            std::string("expr/") + ir::exprKindName(K),
            "no unconditional expression rule can compile this node kind; "
            "any expression using it dies with an unsolved goal");

  return R;
}

} // namespace rulemeta
} // namespace relc
