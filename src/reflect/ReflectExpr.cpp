//===- reflect/ReflectExpr.cpp - The reflective expression compiler --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "reflect/ReflectExpr.h"

#include "bedrock/Interp.h"
#include "support/Rng.h"

namespace relc {
namespace reflect {

std::string RExpr::str() const {
  switch (TheKind) {
  case Kind::Lit:
    return std::to_string(Lit);
  case Kind::Var:
    return Var;
  case Kind::Op:
    return "(" + Lhs->str() + " " + ir::wordOpName(Op) + " " + Rhs->str() +
           ")";
  }
  return "?";
}

// RELC-SECTION-BEGIN: reflective-expr-compiler
Result<RExprPtr> reify(const ir::Expr &E) {
  switch (E.kind()) {
  case ir::Expr::Kind::Const: {
    const ir::Value &V = cast<ir::Const>(&E)->value();
    if (V.kind() != ir::Value::Kind::Word)
      return Error("reify: only word literals are in the reified grammar");
    auto R = std::make_shared<RExpr>();
    R->TheKind = RExpr::Kind::Lit;
    R->Lit = V.asWord();
    return RExprPtr(R);
  }
  case ir::Expr::Kind::VarRef: {
    auto R = std::make_shared<RExpr>();
    R->TheKind = RExpr::Kind::Var;
    R->Var = cast<ir::VarRef>(&E)->name();
    return RExprPtr(R);
  }
  case ir::Expr::Kind::Bin: {
    const auto *B = cast<ir::Bin>(&E);
    Result<RExprPtr> L = reify(*B->lhs());
    if (!L)
      return L.takeError();
    Result<RExprPtr> R = reify(*B->rhs());
    if (!R)
      return R.takeError();
    auto Out = std::make_shared<RExpr>();
    Out->TheKind = RExpr::Kind::Op;
    Out->Op = B->op();
    Out->Lhs = *L;
    Out->Rhs = *R;
    return RExprPtr(Out);
  }
  default:
    // The closed grammar ends here: casts, selects, array reads and
    // inline tables are not reifiable without editing this switch, the
    // compiler below, and the certifier — the §4.1.3 extension cost.
    return Error("reify: construct outside the reified grammar: " + E.str());
  }
}

bedrock::ExprPtr compileReified(const RExpr &E) {
  switch (E.TheKind) {
  case RExpr::Kind::Lit:
    return bedrock::lit(E.Lit);
  case RExpr::Kind::Var:
    return bedrock::var(E.Var);
  case RExpr::Kind::Op: {
    // The operator mapping duplicates core/ExprCompile's lowering — by
    // design: the monolithic pipeline owns its own copy of everything.
    bedrock::BinOp Op;
    switch (E.Op) {
    case ir::WordOp::Add:
      Op = bedrock::BinOp::Add;
      break;
    case ir::WordOp::Sub:
      Op = bedrock::BinOp::Sub;
      break;
    case ir::WordOp::Mul:
      Op = bedrock::BinOp::Mul;
      break;
    case ir::WordOp::DivU:
      Op = bedrock::BinOp::DivU;
      break;
    case ir::WordOp::RemU:
      Op = bedrock::BinOp::RemU;
      break;
    case ir::WordOp::And:
      Op = bedrock::BinOp::And;
      break;
    case ir::WordOp::Or:
      Op = bedrock::BinOp::Or;
      break;
    case ir::WordOp::Xor:
      Op = bedrock::BinOp::Xor;
      break;
    case ir::WordOp::Shl:
      Op = bedrock::BinOp::Shl;
      break;
    case ir::WordOp::LShr:
      Op = bedrock::BinOp::LShr;
      break;
    case ir::WordOp::AShr:
      Op = bedrock::BinOp::AShr;
      break;
    case ir::WordOp::LtU:
      Op = bedrock::BinOp::LtU;
      break;
    case ir::WordOp::LtS:
      Op = bedrock::BinOp::LtS;
      break;
    case ir::WordOp::Eq:
      Op = bedrock::BinOp::Eq;
      break;
    case ir::WordOp::Ne:
      Op = bedrock::BinOp::Ne;
      break;
    default:
      Op = bedrock::BinOp::Add;
      break;
    }
    return bedrock::bin(Op, compileReified(*E.Lhs), compileReified(*E.Rhs));
  }
  }
  return bedrock::lit(0);
}

Result<uint64_t> evalReified(const RExpr &E,
                             const std::map<std::string, uint64_t> &Env) {
  switch (E.TheKind) {
  case RExpr::Kind::Lit:
    return E.Lit;
  case RExpr::Kind::Var: {
    auto It = Env.find(E.Var);
    if (It == Env.end())
      return Error("evalReified: unbound variable " + E.Var);
    return It->second;
  }
  case RExpr::Kind::Op: {
    Result<uint64_t> L = evalReified(*E.Lhs, Env);
    if (!L)
      return L;
    Result<uint64_t> R = evalReified(*E.Rhs, Env);
    if (!R)
      return R;
    return ir::evalWordOp(E.Op, *L, *R);
  }
  }
  return Error("evalReified: bad node");
}

/// Collects the variables of a reified expression.
static void collectVars(const RExpr &E, std::map<std::string, uint64_t> *Env) {
  if (E.TheKind == RExpr::Kind::Var)
    (*Env)[E.Var] = 0;
  if (E.TheKind == RExpr::Kind::Op) {
    collectVars(*E.Lhs, Env);
    collectVars(*E.Rhs, Env);
  }
}

Status certifyReified(const RExpr &E, const bedrock::Expr &Compiled,
                      unsigned Samples, uint64_t Seed) {
  std::map<std::string, uint64_t> Env;
  collectVars(E, &Env);
  Rng R(Seed);
  bedrock::Module Empty;
  bedrock::TapeEnv Tape;
  bedrock::Interp Interp(Empty, Tape);
  bedrock::Function Dummy;
  for (unsigned I = 0; I < Samples; ++I) {
    bedrock::State St;
    for (auto &[Name, V] : Env) {
      V = R.next();
      St.Vars[Name] = V;
    }
    Result<uint64_t> Want = evalReified(E, Env);
    if (!Want)
      return Want.takeError();
    Interp.resetFuel();
    Result<bedrock::Word> Got = Interp.evalExpr(St, Dummy, Compiled);
    if (!Got)
      return Got.takeError();
    if (*Got != *Want)
      return Error("certifyReified: denotation mismatch on sample " +
                   std::to_string(I) + " for " + E.str());
  }
  return Status::success();
}

Result<bedrock::ExprPtr> compileExprReflective(const ir::Expr &E) {
  Result<RExprPtr> R = reify(E);
  if (!R)
    return R.takeError();
  bedrock::ExprPtr Out = compileReified(**R);
  Status Cert = certifyReified(**R, *Out);
  if (!Cert)
    return Cert.takeError();
  return Out;
}
// RELC-SECTION-END: reflective-expr-compiler

} // namespace reflect
} // namespace relc
