//===- tests/support/StringExtrasTest.cpp ----------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/StringExtras.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

TEST(StringExtrasTest, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringExtrasTest, HexStr) {
  EXPECT_EQ(hexStr(0), "0x0");
  EXPECT_EQ(hexStr(255), "0xff");
  EXPECT_EQ(hexStr(0xdeadbeefull), "0xdeadbeef");
  EXPECT_EQ(hexStr(~0ull), "0xffffffffffffffff");
}

TEST(StringExtrasTest, HexByte) {
  EXPECT_EQ(hexByte(0x00), "00");
  EXPECT_EQ(hexByte(0x0a), "0a");
  EXPECT_EQ(hexByte(0xf3), "f3");
}

TEST(StringExtrasTest, ValidCIdentifier) {
  EXPECT_TRUE(isValidCIdentifier("foo"));
  EXPECT_TRUE(isValidCIdentifier("_bar9"));
  EXPECT_FALSE(isValidCIdentifier(""));
  EXPECT_FALSE(isValidCIdentifier("9lives"));
  EXPECT_FALSE(isValidCIdentifier("has space"));
  EXPECT_FALSE(isValidCIdentifier("while")); // Keyword.
}

TEST(StringExtrasTest, SanitizeProducesValidIdentifiers) {
  for (const char *Bad : {"a$b", "9x", "while", "odd name", "a-b"}) {
    std::string S = sanitizeCIdentifier(Bad);
    EXPECT_TRUE(isValidCIdentifier(S)) << Bad << " -> " << S;
  }
  // Already-valid names pass through unchanged.
  EXPECT_EQ(sanitizeCIdentifier("fine_name"), "fine_name");
}

TEST(StringExtrasTest, ReplaceAll) {
  EXPECT_EQ(replaceAll("a$b$c", "$", "_"), "a_b_c");
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba"); // Non-overlapping scan.
  EXPECT_EQ(replaceAll("x", "", "y"), "x");      // Empty pattern: no-op.
}

TEST(StringExtrasTest, IndentLines) {
  EXPECT_EQ(indentLines("a\nb\n", 2), "  a\n  b\n");
  EXPECT_EQ(indentLines("a", 4), "    a");
  // Blank lines stay blank (no trailing spaces).
  EXPECT_EQ(indentLines("a\n\nb", 2), "  a\n\n  b");
}

} // namespace
