# Empty dependencies file for relc-gen.
# This may be replaced when dependencies are built.
