//===- rulemeta/Recursion.cpp - Rule-dependency termination audit ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Analysis 4: the compiler terminates because every rule that emits
// sub-goals (Emits::Expr / Emits::Prog / EmitsExprGoals) hands the engine
// a structurally smaller term — a sub-program's bindings, an operand of
// the matched expression. A rule that emits sub-goals but declares
// Decreasing=false breaks that argument: if the dependency graph lets any
// of its sub-goal targets reach back to it, the engine can loop forever
// on a hostile (or merely unlucky) input. That is rule-cycle.
//
// Edges are conservative, computed from descriptors alone: a Prog-emitting
// statement rule may spawn goals for any satisfiable statement rule and
// any expression rule; an Expr-emitting statement rule only for expression
// rules; an expression rule with EmitsExprGoals only for expression rules.
//
//===----------------------------------------------------------------------===//

#include "rulemeta/Pattern.h"
#include "rulemeta/RuleMeta.h"

namespace relc {
namespace rulemeta {

namespace {

struct Node {
  std::string Name;
  bool Satisfiable;
  bool EmitsStmtGoals; ///< May spawn statement sub-goals (Prog emitter).
  bool EmitsExprGoals; ///< May spawn expression sub-goals.
  bool Decreasing;
};

} // namespace

Report analyzeRecursion(const core::RuleSet &RS, const core::ExprRuleSet &ES) {
  Report R;

  // Build the node list: statement rules first, then expression rules.
  std::vector<Node> Nodes;
  std::vector<bool> IsStmt;
  for (size_t I = 0; I < RS.size(); ++I) {
    const core::GoalPattern P = RS[I].pattern();
    Nodes.push_back({RS[I].name(), SelPattern::of(P).satisfiable(),
                     P.SubGoals == core::GoalPattern::Emits::Prog,
                     P.SubGoals != core::GoalPattern::Emits::None,
                     P.Decreasing});
    IsStmt.push_back(true);
  }
  for (size_t I = 0; I < ES.size(); ++I) {
    const core::ExprGoalPattern P = ES[I].pattern();
    Nodes.push_back({ES[I].name(), SelPattern::of(P).satisfiable(),
                     /*EmitsStmtGoals=*/false, P.EmitsExprGoals, P.Decreasing});
    IsStmt.push_back(false);
  }

  // Adjacency: rule -> rules its emitted sub-goals may select.
  auto targets = [&](size_t From) {
    std::vector<size_t> Out;
    const Node &N = Nodes[From];
    if (!N.Satisfiable)
      return Out;
    for (size_t I = 0; I < Nodes.size(); ++I) {
      if (!Nodes[I].Satisfiable)
        continue;
      if (IsStmt[I] ? N.EmitsStmtGoals : N.EmitsExprGoals)
        Out.push_back(I);
    }
    return Out;
  };

  // A non-decreasing emitter on a cycle is the finding. Decreasing
  // emitters on cycles are fine — that is ordinary structural recursion
  // (compile_cond's branches contain more bindings, each smaller).
  for (size_t From = 0; From < Nodes.size(); ++From) {
    const Node &N = Nodes[From];
    if (N.Decreasing || (!N.EmitsStmtGoals && !N.EmitsExprGoals) ||
        !N.Satisfiable)
      continue;
    // DFS from each direct target back to From.
    std::vector<bool> Seen(Nodes.size(), false);
    std::vector<size_t> Stack = targets(From);
    bool Cyclic = false;
    while (!Stack.empty() && !Cyclic) {
      size_t At = Stack.back();
      Stack.pop_back();
      if (At == From) {
        Cyclic = true;
        break;
      }
      if (Seen[At])
        continue;
      Seen[At] = true;
      for (size_t Next : targets(At))
        Stack.push_back(Next);
    }
    if (Cyclic)
      R.add(Reason::RuleCycle, N.Name,
            "emits sub-goals without a structurally decreasing argument and "
            "the dependency graph reaches back to it; compilation may not "
            "terminate");
  }
  return R;
}

Report analyzeRegistry(const core::RuleSet &RS, const core::ExprRuleSet &ES) {
  Report R;
  R.append(analyzeOrdering(RS, ES));
  R.append(analyzeCoverage(RS, ES));
  R.append(analyzeRecursion(RS, ES));
  return R;
}

} // namespace rulemeta
} // namespace relc
