//===- core/rules/StackRules.cpp - Stack allocation (§4.1.2) ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The two stack-allocation source constructs from the §4.1.2 case study:
// `stack (bytes)` for immediately initialized buffers and `stack_uninit n`
// for buffers whose initial contents are unconstrained. Both wrap the
// continuation in the target's lexically scoped stackalloc; the array
// clause lives exactly as long as the scope.
//
//===----------------------------------------------------------------------===//

#include "core/rules/Rules.h"
#include "core/rules/RulesCommon.h"

namespace relc {
namespace core {

using bedrock::CmdPtr;
using sep::HeapClause;
using sep::SymVal;
using sep::TargetSlot;
using solver::lc;

namespace {

/// Shared body: allocate, bind clause + locals, compile the continuation
/// inside the scope, then retire the clause.
Result<CmdPtr> compileStackCommon(CompileCtx &Ctx, const std::string &Name,
                                  uint64_t Size,
                                  const std::vector<uint8_t> *InitBytes,
                                  const Cont &K, DerivNode &D) {
  if (Ctx.State.Locals.count(Name))
    return Error("stack binding '" + Name +
                 "' collides with a live local; rename it");
  if (Size > 4096)
    return Error("stack allocation of " + std::to_string(Size) +
                 " bytes exceeds the 4096-byte policy limit");

  std::string PtrSym = Ctx.State.freshSym("stk_" + Name);
  HeapClause C;
  C.TheKind = HeapClause::Kind::Array;
  C.Ptr = PtrSym;
  C.Payload = Name;
  C.Elt = ir::EltKind::U8;
  C.Len = lc(int64_t(Size));
  C.FromStack = true;
  Ctx.State.Heap.push_back(C);
  int ClauseIdx = int(Ctx.State.Heap.size()) - 1;
  Ctx.State.Locals[Name] = TargetSlot::ptr(SymVal::sym(PtrSym), ClauseIdx);

  std::vector<CmdPtr> Inner;
  if (InitBytes) {
    // Initialize the buffer; word-sized stores for full groups of eight,
    // byte stores for the tail.
    size_t I = 0;
    for (; I + 8 <= InitBytes->size(); I += 8) {
      uint64_t W = 0;
      for (unsigned J = 0; J < 8; ++J)
        W |= uint64_t((*InitBytes)[I + J]) << (8 * J);
      Inner.push_back(bedrock::store(
          bedrock::AccessSize::Eight,
          bedrock::add(bedrock::var(Name), bedrock::lit(I)), bedrock::lit(W)));
    }
    for (; I < InitBytes->size(); ++I)
      Inner.push_back(bedrock::store(
          bedrock::AccessSize::Byte,
          bedrock::add(bedrock::var(Name), bedrock::lit(I)),
          bedrock::lit((*InitBytes)[I])));
    D.SideConds.push_back("buffer '" + Name + "' fully initialized (" +
                          std::to_string(InitBytes->size()) + " bytes)");
  } else {
    D.Notes.push_back("contents start unconstrained; the overall result "
                      "must be independent of them (checked by differential "
                      "validation across nondet seeds)");
  }

  Result<CmdPtr> Rest = K(D);
  if (!Rest)
    return Rest;
  Inner.push_back(Rest.take());

  // Scope exit: the clause must still be the last stack clause (scopes are
  // LIFO) and the payload must not be needed anymore — in-place results are
  // rejected against stack clauses by the function-end handler.
  if (Ctx.State.Heap.empty() || Ctx.State.Heap.back().Ptr != PtrSym)
    return Error("stack scope for '" + Name +
                 "' ended with a non-LIFO heap shape");
  Ctx.State.Heap.pop_back();
  Ctx.State.Locals.erase(Name);

  return bedrock::stackalloc(Name, Size, bedrock::seqAll(std::move(Inner)));
}

// RELC-SECTION-BEGIN: lemma-stack-init
/// compile_stack: `let/n p := stack (bytes)` — the "immediately
/// initialized" §4.1.2 form. Generates a stackalloc whose body begins by
/// storing the initial contents, then resumes compilation of the plain
/// program.
class StackInitRule : public StmtRule {
public:
  std::string name() const override { return "compile_stack"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::StackInit};
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::StackInit>(B.Bound.get()) && B.Names.size() == 1;
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *S = cast<ir::StackInit>(B.Bound.get());
    Ctx.noteFeature("Mutation");
    return compileStackCommon(Ctx, B.Names[0], S->bytes().size(),
                              &S->bytes(), K, D);
  }
};
// RELC-SECTION-END: lemma-stack-init

// RELC-SECTION-BEGIN: lemma-stack-uninit
/// compile_stack_uninit: `let/n p := stack_uninit n` — the
/// nondeterministic-contents form, legal when the compilation "is still
/// provably deterministic (independent of initial bytes in the stack
/// region)"; here that proof obligation is carried by the validator.
class StackUninitRule : public StmtRule {
public:
  std::string name() const override { return "compile_stack_uninit"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::StackUninit};
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::StackUninit>(B.Bound.get()) && B.Names.size() == 1;
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *S = cast<ir::StackUninit>(B.Bound.get());
    Ctx.noteFeature("Mutation");
    return compileStackCommon(Ctx, B.Names[0], S->size(), nullptr, K, D);
  }
};
// RELC-SECTION-END: lemma-stack-uninit

} // namespace

std::unique_ptr<StmtRule> makeStackInitRule() {
  return std::make_unique<StackInitRule>();
}
std::unique_ptr<StmtRule> makeStackUninitRule() {
  return std::make_unique<StackUninitRule>();
}

} // namespace core
} // namespace relc
