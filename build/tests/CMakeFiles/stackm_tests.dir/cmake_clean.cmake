file(REMOVE_RECURSE
  "CMakeFiles/stackm_tests.dir/stackm/StackMachineTest.cpp.o"
  "CMakeFiles/stackm_tests.dir/stackm/StackMachineTest.cpp.o.d"
  "stackm_tests"
  "stackm_tests.pdb"
  "stackm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
