file(REMOVE_RECURSE
  "CMakeFiles/cgen_tests.dir/cgen/CCompileIntegrationTest.cpp.o"
  "CMakeFiles/cgen_tests.dir/cgen/CCompileIntegrationTest.cpp.o.d"
  "CMakeFiles/cgen_tests.dir/cgen/CEmitTest.cpp.o"
  "CMakeFiles/cgen_tests.dir/cgen/CEmitTest.cpp.o.d"
  "cgen_tests"
  "cgen_tests.pdb"
  "cgen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
