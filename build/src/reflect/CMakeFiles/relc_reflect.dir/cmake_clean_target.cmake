file(REMOVE_RECURSE
  "librelc_reflect.a"
)
