//===- examples/effects_tour.cpp - Intensional & extensional effects -------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// A tour of §3.4.1's effect taxonomy on three small programs:
//
//   - cells (intensional state): a compare-and-swap over a mutable cell —
//     the exact example §3.4.2 uses to motivate join-point inference;
//   - io (extensional): an echo-and-accumulate loop over the input tape,
//     with trace equality checked by the validator;
//   - nondet (extensional): an allocation of unspecified bytes whose spec
//     is the paper's "λ l ⇒ length l = n" predicate — validation checks
//     the predicate, not value equality.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "ir/Build.h"
#include "validate/Validate.h"

#include <cstdio>

using namespace relc;
using namespace relc::ir;

static bool runOne(const char *Title, const SourceFn &Model,
                   const sep::FnSpec &Spec,
                   validate::ValidationOptions VOpts = {}) {
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Model, Spec);
  if (!R) {
    std::fprintf(stderr, "[%s] compilation failed:\n%s\n", Title,
                 R.error().str().c_str());
    return false;
  }
  bedrock::Module Linked;
  Linked.Functions.push_back(R->Fn);
  Status V = validate::validate(Model, Spec, *R, Linked, VOpts);
  if (!V) {
    std::fprintf(stderr, "[%s] validation failed:\n%s\n", Title,
                 V.error().str().c_str());
    return false;
  }
  std::printf("=== %s ===\n%s\n", Title, R->Fn.str().c_str());
  return true;
}

int main() {
  bool Ok = true;

  // 1. Intensional state: compare-and-swap on a cell (§3.4.2's example).
  //    let (r, c) := if t =? Cell.get c then (1, Cell.put c x) else (0, c)
  {
    FnBuilder FB("cas_model", Monad::Pure);
    FB.cellParam("c").wordParam("t").wordParam("x");
    ProgBuilder Then;
    Then.let("c", mkCellPut("c", v("x"))).let("r", cw(1));
    ProgBuilder Else;
    Else.let("r", cw(0));
    ProgBuilder Body;
    Body.let("cur", mkCellGet("c"))
        .letMulti({"r", "c"},
                  mkIf(eqw(v("cur"), v("t")),
                       std::move(Then).ret({"r", "c"}),
                       std::move(Else).ret({"r", "c"})))
        .let("r", v("r"));
    SourceFn Model = std::move(FB).done(std::move(Body).ret({"r", "c"}));
    sep::FnSpec Spec("cas");
    Spec.cellArg("c").scalarArg("t").scalarArg("x").retScalar("r")
        .retCellInPlace("c");
    Ok &= runOne("cells: compare-and-swap (intensional state)", Model, Spec);
  }

  // 2. IO monad: read n words, writing the running maximum after each.
  {
    FnBuilder FB("runmax_model", Monad::Io);
    FB.wordParam("n");
    ProgBuilder Loop;
    Loop.let("x", mkIoRead())
        .let("m", select(ltu(v("m"), v("x")), v("x"), v("m")))
        .let("_", mkIoWrite(v("m")));
    ProgBuilder Body;
    Body.letMulti({"m"}, mkRange("i", cw(0), v("n"), {acc("m", cw(0))},
                                 std::move(Loop).ret({"m"})))
        .let("m", v("m"));
    SourceFn Model = std::move(FB).done(std::move(Body).ret({"m"}));
    sep::FnSpec Spec("runmax");
    Spec.scalarArg("n").retScalar("m");
    validate::ValidationOptions VO;
    VO.MakeInputs = [](const SourceFn &, Rng &R, size_t) {
      return std::vector<Value>{Value::word(R.below(24))};
    };
    Ok &= runOne("io: running maximum over the tape (extensional)", Model,
                 Spec, VO);
  }

  // 3. Nondet monad: allocate 16 unspecified bytes, zero a prefix, return
  //    the first byte. Spec: the result is whatever byte 0 holds — which
  //    the program zeroed, so the ensures predicate pins it to 0.
  {
    FnBuilder FB("scratch_model", Monad::Nondet);
    FB.wordParam("k");
    ProgBuilder Fill;
    Fill.let("buf", mkPut("buf", v("j"), cb(0)));
    ProgBuilder Body;
    Body.let("buf", mkNondetAlloc(16))
        .letMulti({"buf"}, mkRange("j", cw(0), cw(8), {acc("buf", v("buf"))},
                                   std::move(Fill).ret({"buf"})))
        .let("first", b2w(aget("buf", cw(0))))
        .let("r", addw(v("first"), v("k")));
    SourceFn Model = std::move(FB).done(std::move(Body).ret({"r"}));
    sep::FnSpec Spec("scratch");
    Spec.scalarArg("k").retScalar("r");
    validate::ValidationOptions VO;
    VO.NondetEnsures = [](const std::vector<Value> &Inputs,
                          const validate::TargetOutputs &Out) -> Status {
      // ensures: r = k + buf[0] where buf[0] was zeroed: r = k.
      if (Out.Rets.size() != 1 || Out.Rets[0] != Inputs[0].asWord())
        return Error("scratch: r != k despite the zeroed prefix");
      return Status::success();
    };
    Ok &= runOne("nondet: unspecified scratch buffer (predicate spec)",
                 Model, Spec, VO);
  }

  return Ok ? 0 : 1;
}
