//===- core/rules/ArrayRules.cpp - In-place array updates ------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/rules/Rules.h"
#include "core/rules/RulesCommon.h"

namespace relc {
namespace core {

namespace {

// RELC-SECTION-BEGIN: lemma-array-put
/// compile_arrayput: the C++ rendition of the §3.3 example lemma — a
/// functional replacement `let/n a := ListArray.put a i v` becomes a store
/// through the array's pointer. Mutation is chosen by name reuse: binding
/// the put to a different name is an unsolved goal (an explicit copy is
/// the escape hatch), which is the intensional-mutation effect of §3.4.1.
class ArrayPutRule : public StmtRule {
public:
  std::string name() const override { return "compile_arrayput"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::ArrayPut};
    P.NameDir = GoalPattern::NameDirection::InPlace;
    P.SideConds = {"index-in-bounds", "value-fits-element"};
    P.SubGoals = GoalPattern::Emits::Expr;
    return P;
  }

  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::ArrayPut>(B.Bound.get()) && B.Names.size() == 1;
  }

  Result<bedrock::CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B,
                                const Cont &K, DerivNode &D) override {
    const auto *P = cast<ir::ArrayPut>(B.Bound.get());
    if (B.Names[0] != P->array())
      return Error("unsolved goal: ListArray.put result bound to '" +
                   B.Names[0] + "' but the array is '" + P->array() +
                   "'; rebind under the same name for in-place mutation");

    Result<int> ClauseIdx =
        Ctx.requireClause(P->array(), sep::HeapClause::Kind::Array);
    if (!ClauseIdx)
      return ClauseIdx.takeError();
    const sep::HeapClause Clause = Ctx.State.Heap[*ClauseIdx];
    Result<std::string> Ptr = Ctx.requirePtrLocal(*ClauseIdx);
    if (!Ptr)
      return Ptr.takeError();

    Result<CompiledExpr> Idx =
        Ctx.exprs().compileTyped(*P->index(), ir::Ty::Word, D);
    if (!Idx)
      return Idx.takeError();
    ir::Ty WantTy = Clause.Elt == ir::EltKind::U8 ? ir::Ty::Byte
                                                  : ir::Ty::Word;
    Result<CompiledExpr> Val = Ctx.exprs().compileTyped(*P->val(), WantTy, D);
    if (!Val)
      return Val.takeError();

    // Side condition 1: the index is in bounds.
    Status Bound = Ctx.State.Facts.proveLt(Idx->Val.term(), Clause.Len);
    if (!Bound)
      return Bound.takeError().note("for " + B.str());
    D.SideConds.push_back(Idx->Val.str() + " < " + Clause.Len.str() +
                          " (bounds of " + P->array() + ")");
    // Side condition 2: wide elements must be storable without truncation
    // (bytes are immediate from the type discipline).
    if (Clause.Elt != ir::EltKind::U8 && Clause.Elt != ir::EltKind::U64) {
      Status Fits = Ctx.State.Facts.proveLe(
          Val->Val.term(), solver::lc(int64_t(ir::eltMask(Clause.Elt))));
      if (!Fits)
        return Fits.takeError().note("stored value must fit element width");
      D.SideConds.push_back(Val->Val.str() + " fits u" +
                            std::to_string(8 * ir::eltSize(Clause.Elt)));
    }

    Ctx.noteFeature("Arrays");
    Ctx.noteFeature("Mutation");

    std::vector<bedrock::CmdPtr> Cmds = Idx->Pre;
    Cmds.insert(Cmds.end(), Val->Pre.begin(), Val->Pre.end());
    Cmds.push_back(bedrock::store(
        accessSize(Clause.Elt),
        scaledAddress(bedrock::var(*Ptr), Idx->E, Clause.Elt), Val->E));
    // The clause payload name is unchanged: the source rebinding under the
    // same name *is* the mutation.
    Result<bedrock::CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-array-put

} // namespace

std::unique_ptr<StmtRule> makeArrayPutRule() {
  return std::make_unique<ArrayPutRule>();
}

} // namespace core
} // namespace relc
