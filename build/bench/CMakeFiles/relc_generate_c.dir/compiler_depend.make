# Empty custom commands generated dependencies file for relc_generate_c.
# This may be replaced when dependencies are built.
