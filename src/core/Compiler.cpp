//===- core/Compiler.cpp - The relational compilation driver ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "core/Derivation.h"
#include "ir/Check.h"
#include "support/StringExtras.h"

#include <algorithm>

namespace relc {
namespace core {

using sep::ArgSpec;
using sep::CompState;
using sep::HeapClause;
using sep::SymVal;
using sep::TargetSlot;
using solver::lc;
using solver::ls;

std::string DerivNode::str(unsigned Indent) const {
  std::string Pad(Indent, ' ');
  std::string Out = Pad + Rule + "  ⊢  " + Goal + "\n";
  for (const std::string &S : SideConds)
    Out += Pad + "  |- side: " + S + "\n";
  for (const std::string &N : Notes)
    Out += Pad + "  |- note: " + N + "\n";
  for (const auto &C : Children)
    Out += C->str(Indent + 2);
  return Out;
}

//===----------------------------------------------------------------------===//
// CompileCtx.
//===----------------------------------------------------------------------===//

CompileCtx::CompileCtx(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
                       const RuleSet &Rules)
    : SrcFn(Fn), Spec(Spec), Rules(Rules), Exprs(*this) {}

Result<int> CompileCtx::requireClause(const std::string &Name,
                                      HeapClause::Kind Kind) const {
  int Idx = State.findClauseByPayload(Name);
  if (Idx < 0)
    return Error("unsolved goal: the memory predicate has no clause holding "
                 "'" + Name + "'")
        .note(State.str());
  if (State.Heap[Idx].TheKind != Kind)
    return Error("memory clause for '" + Name +
                 "' has the wrong shape (found " + State.Heap[Idx].str() +
                 ")");
  return Idx;
}

Result<std::string> CompileCtx::requirePtrLocal(int ClauseIdx) const {
  std::optional<std::string> L = State.findPtrLocal(ClauseIdx);
  if (!L)
    return Error("unsolved goal: no local variable holds a pointer to " +
                 State.Heap[ClauseIdx].str())
        .note(State.str());
  return *L;
}

Result<std::string>
CompileCtx::requireLenLocal(const solver::LinTerm &Len) const {
  std::optional<std::string> L = State.findLocalEqualTo(Len);
  if (!L)
    return Error("unsolved goal: no local variable holds the length (" +
                 Len.str() + ") needed to drive this loop; pass it as an "
                 "argument or bind it first")
        .note(State.str());
  return *L;
}

Status CompileCtx::checkNoCollisions(
    const ir::Prog &P, const std::set<std::string> &Allowed) const {
  for (const ir::Binding &B : P.bindings())
    for (const std::string &N : B.Names)
      if (State.Locals.count(N) && !Allowed.count(N))
        return Error("binder '" + N +
                     "' inside this loop/branch collides with a live local; "
                     "rename the inner binding (compilation is name-directed)");
  return Status::success();
}

Status CompileCtx::noteTableUse(const std::string &TableName) {
  const ir::TableDef *T = SrcFn.findTable(TableName);
  if (!T)
    return Error("unknown inline table '" + TableName + "'");
  UsedTables.insert(TableName);
  return Status::success();
}

std::string CompileCtx::judgmentStr(const std::string &GoalText) const {
  return "{ tr; m; l; σ } ?c { pred (" + GoalText + ") }\nwhere\n" +
         indentLines(State.str(), 2);
}

Result<bedrock::CmdPtr> CompileCtx::compileProg(const ir::Prog &P,
                                                const EndHandler &End,
                                                DerivNode &D) {
  // Recursive let-chain compilation in continuation style: each rule's
  // conclusion mentions the continuation K, mirroring §3.3.
  std::function<Result<bedrock::CmdPtr>(size_t, DerivNode &)> Go =
      [&](size_t I, DerivNode &Parent) -> Result<bedrock::CmdPtr> {
    if (I == P.bindings().size())
      return End(*this, Parent);
    const ir::Binding &B = P.bindings()[I];
    StmtRule *R = Rules.findMatch(*this, B);
    if (!R)
      return Error("unsolved goal: no compilation lemma matches\n" +
                   judgmentStr(B.str()) +
                   "\n(register a rule for this construct)");
    DerivNode &Node = Parent.child(R->name(), B.str());
    // The continuation extends the *parent* node so the derivation reads
    // like the let-chain; the rule's own subderivations nest under Node.
    Cont K = [&Go, I, &Parent](DerivNode &) { return Go(I + 1, Parent); };
    Result<bedrock::CmdPtr> Out = R->apply(*this, B, K, Node);
    if (!Out)
      return Out.takeError().note("while compiling " + B.str());
    return Out;
  };
  return Go(0, D);
}

//===----------------------------------------------------------------------===//
// Compiler.
//===----------------------------------------------------------------------===//

Compiler::Compiler() { registerStandardRules(Rules); }
Compiler::Compiler(EmptyTag) {}

/// Builds the initial symbolic state from the ABI (§3.2: the first
/// transformation is encoded as the ABI).
static Status setupInitialState(CompileCtx &Ctx, const ir::SourceFn &Fn,
                                const sep::FnSpec &Spec,
                                std::vector<std::string> *ArgNames) {
  CompState &St = Ctx.State;
  for (const ArgSpec &A : Spec.Args) {
    ArgNames->push_back(A.TargetName);
    const ir::Param *P = Fn.findParam(A.SourceName);
    switch (A.TheKind) {
    case ArgSpec::Kind::Scalar: {
      // The local mirrors the source word parameter; same symbol.
      St.Locals[A.TargetName] =
          TargetSlot::scalar(SymVal::sym(A.SourceName), ir::Ty::Word);
      St.Facts.addGe0(ls(A.SourceName), "word parameter is nonnegative");
      break;
    }
    case ArgSpec::Kind::ArrayLen: {
      // requires: this argument equals length(OfArray); use the length
      // symbol itself as the local's value.
      std::string LenSym = "len_" + A.OfArray;
      St.Locals[A.TargetName] =
          TargetSlot::scalar(SymVal::sym(LenSym), ir::Ty::Word);
      break;
    }
    case ArgSpec::Kind::ArrayPtr: {
      std::string PtrSym = "ptr_" + A.SourceName;
      HeapClause C;
      C.TheKind = HeapClause::Kind::Array;
      C.Ptr = PtrSym;
      C.Payload = A.SourceName;
      C.Elt = P->Elt;
      C.Len = ls("len_" + A.SourceName);
      St.Heap.push_back(C);
      St.Locals[A.TargetName] =
          TargetSlot::ptr(SymVal::sym(PtrSym), int(St.Heap.size()) - 1);
      Ctx.ArgPtrSyms[A.SourceName] = PtrSym;
      // Structural ABI facts: lengths are nonnegative and bounded (the
      // validator rejects larger inputs, keeping index arithmetic in the
      // no-wraparound fragment the solver is sound for).
      St.Facts.addGe0(ls("len_" + A.SourceName), "length is nonnegative");
      St.Facts.addLe(ls("len_" + A.SourceName), lc(int64_t(1) << 32),
                     "ABI bounds array lengths by 2^32");
      break;
    }
    case ArgSpec::Kind::CellPtr: {
      std::string PtrSym = "ptr_" + A.SourceName;
      HeapClause C;
      C.TheKind = HeapClause::Kind::Cell;
      C.Ptr = PtrSym;
      C.Payload = A.SourceName;
      C.Elt = ir::EltKind::U64;
      C.Len = lc(1);
      St.Heap.push_back(C);
      St.Locals[A.TargetName] =
          TargetSlot::ptr(SymVal::sym(PtrSym), int(St.Heap.size()) - 1);
      Ctx.ArgPtrSyms[A.SourceName] = PtrSym;
      break;
    }
    }
  }
  return Status::success();
}

/// The function-end handler: realizes the ensures clause by checking that
/// scalar returns live in locals of their names and in-place results are
/// still framed at their argument pointers.
static Result<bedrock::CmdPtr> functionEnd(CompileCtx &Ctx, DerivNode &D) {
  const sep::FnSpec &Spec = Ctx.spec();
  DerivNode &Node = D.child("compile_fn_return", "ensures clause");

  for (const std::string &R : Spec.ScalarRets) {
    const TargetSlot *Slot = Ctx.State.findScalar(R);
    if (!Slot)
      return Error("unsolved goal: scalar return '" + R +
                   "' is not held by any local at function end")
          .note(Ctx.State.str());
    Node.SideConds.push_back("local " + R + " holds the model result " + R);
  }
  for (const std::string &S : Spec.InPlaceArrays) {
    Result<int> Idx = Ctx.requireClause(S, HeapClause::Kind::Array);
    if (!Idx)
      return Idx.takeError().note("for in-place result '" + S + "'");
    const HeapClause &C = Ctx.State.Heap[*Idx];
    auto It = Ctx.ArgPtrSyms.find(S);
    if (It == Ctx.ArgPtrSyms.end() || C.Ptr != It->second)
      return Error("in-place result '" + S +
                   "' does not live at its argument pointer anymore");
    if (C.FromStack)
      return Error("in-place result '" + S +
                   "' escaped into a stack allocation");
    Node.SideConds.push_back("(array " + C.Ptr + " " + S +
                             " * r) m' holds at exit");
  }
  for (const std::string &S : Spec.InPlaceCells) {
    Result<int> Idx = Ctx.requireClause(S, HeapClause::Kind::Cell);
    if (!Idx)
      return Idx.takeError().note("for in-place cell result '" + S + "'");
    const HeapClause &C = Ctx.State.Heap[*Idx];
    auto It = Ctx.ArgPtrSyms.find(S);
    if (It == Ctx.ArgPtrSyms.end() || C.Ptr != It->second)
      return Error("in-place cell result '" + S +
                   "' does not live at its argument pointer anymore");
    Node.SideConds.push_back("(cell " + C.Ptr + " " + S +
                             " * r) m' holds at exit");
  }
  return bedrock::skip();
}

Result<CompileResult> Compiler::compileFn(const ir::SourceFn &Fn,
                                          const sep::FnSpec &Spec,
                                          const CompileHints &Hints) {
  // Source-level checks come first: the compiler only ever sees models
  // that scope-, type- and monad-check.
  Result<std::vector<ir::VType>> Checked = ir::checkFn(Fn);
  if (!Checked)
    return Checked.takeError().note("model rejected before compilation");
  Status SpecOk = sep::checkSpecAgainstFn(Spec, Fn);
  if (!SpecOk)
    return SpecOk.takeError().note("fnspec rejected before compilation");

  CompileCtx Ctx(Fn, Spec, Rules);
  std::vector<std::string> ArgNames;
  Status Init = setupInitialState(Ctx, Fn, Spec, &ArgNames);
  if (!Init)
    return Init.takeError();
  for (const auto &H : Hints.EntryFacts)
    H(Ctx.State);

  auto Proof = std::make_unique<DerivNode>(
      "compile_fn", "defn! \"" + Spec.TargetName + "\" implements " + Fn.Name);
  Proof->Notes.push_back("monad: " + std::string(ir::monadName(Fn.TheMonad)));

  Result<bedrock::CmdPtr> Body =
      Ctx.compileProg(*Fn.Body, functionEnd, *Proof);
  if (!Body)
    return Body.takeError().note("while deriving \"" + Spec.TargetName +
                                 "\"");

  bedrock::Function Out;
  Out.Name = Spec.TargetName;
  Out.Args = ArgNames;
  Out.Rets = Spec.ScalarRets;
  Out.Body = Body.take();
  for (const std::string &TName : Ctx.UsedTables) {
    const ir::TableDef *T = Fn.findTable(TName);
    bedrock::InlineTable BT;
    BT.Name = T->Name;
    BT.EltSize = accessSize(T->Elt);
    BT.Elements = T->Elements;
    Out.Tables.push_back(std::move(BT));
  }

  CompileResult R;
  R.Fn = std::move(Out);
  R.Proof = std::move(Proof);
  R.Features = Ctx.Features;
  R.ExternalCallees = Ctx.ExternalCallees;
  R.SourceBindings = Fn.Body->countBindings();
  R.EmittedStmts = R.Fn.countStmts();
  return R;
}

} // namespace core
} // namespace relc
