//===- service/Server.cpp - relcd daemon core ------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "core/Rule.h"
#include "service/Service.h"
#include "service/Worker.h"
#include "support/Fault.h"
#include "support/Hash.h"
#include "support/StringExtras.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace relc {
namespace service {

namespace {

/// Poll slice: every blocking wait wakes at least this often to check
/// the stop flag, so shutdown latency is bounded without signals.
constexpr int kPollSliceMs = 100;

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

Server::Server(ServerOptions O) : Opts(std::move(O)) {}

Server::~Server() {
  requestStop();
  if (Started)
    wait();
}

Status Server::start() {
  sockaddr_un Addr{};
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return Error("relcd: socket path unusable (empty or longer than " +
                 std::to_string(sizeof(Addr.sun_path) - 1) + " bytes): '" +
                 Opts.SocketPath + "'");
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  // Socket ownership lock: two daemons racing onto the same path could
  // both probe a stale socket dead, both unlink, and the loser would
  // silently serve nothing. The flock on the `.lock` sibling makes
  // ownership atomic — the loser fails here, by name, before touching
  // the socket file. The lock file is never unlinked (unlinking would
  // let a third daemon lock a fresh inode while the old one is still
  // held); the flock dies with the process, so crashes leave no stale
  // ownership behind.
  const std::string LockPath = Opts.SocketPath + ".lock";
  LockFd = ::open(LockPath.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (LockFd < 0)
    return Error("relcd: cannot open socket lock " + LockPath + ": " +
                 std::strerror(errno));
  if (::flock(LockFd, LOCK_EX | LOCK_NB) != 0) {
    ::close(LockFd);
    LockFd = -1;
    return Error("relcd: socket-in-use: another relcd holds " + LockPath +
                 " (socket " + Opts.SocketPath + ")");
  }

  // Warm the registry fingerprint once: every ping and memo key reuses
  // it instead of refolding the rule registry per request.
  RegistryFingerprint = core::standardRegistryFingerprint();

  auto FailWith = [this](Status S) {
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    ::close(LockFd);
    LockFd = -1;
    return S;
  };

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return FailWith(
        Error(std::string("relcd: socket: ") + std::strerror(errno)));

  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (errno != EADDRINUSE)
      return FailWith(Error("relcd: bind " + Opts.SocketPath + ": " +
                            std::strerror(errno)));
    // The path exists and we hold the lock, so no *locked* daemon owns
    // it. A predecessor killed mid-request leaves a stale socket file
    // behind; probe it — only a live (pre-lock-era, or foreign) daemon
    // answers.
    int Probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    bool Alive =
        Probe >= 0 &&
        ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
            0;
    if (Probe >= 0)
      ::close(Probe);
    if (Alive)
      return FailWith(
          Error("relcd: address-in-use: another relcd is serving " +
                Opts.SocketPath));
    ::unlink(Opts.SocketPath.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0)
      return FailWith(Error("relcd: bind " + Opts.SocketPath + ": " +
                            std::strerror(errno)));
  }

  if (::listen(ListenFd, 128) != 0)
    return FailWith(
        Error(std::string("relcd: listen: ") + std::strerror(errno)));

  // Spawn the worker pool before the daemon goes multi-threaded, so the
  // initial forks happen from a quiet process.
  if (Opts.Workers > 0) {
    SupervisorOptions SupO;
    SupO.Workers = Opts.Workers;
    SupO.RetryLimit = Opts.WorkerRetries;
    SupO.JobWallMs = Opts.JobWallMs;
    SupO.BackoffBaseMs = Opts.WorkerBackoffBaseMs;
    SupO.BackoffCapMs = Opts.WorkerBackoffCapMs;
    SupO.BackoffSeed = RegistryFingerprint;
    SupO.Worker.CacheDir = Opts.CacheDir;
    SupO.Worker.Jobs = Opts.Jobs;
    SupO.Worker.MemLimitMb = Opts.WorkerMemLimitMb;
    SupO.Worker.CpuLimitSec = Opts.WorkerCpuLimitSec;
    if (!Opts.CacheDir.empty())
      SupO.CrashDir = Opts.CacheDir + "/crash-reports";
    Sup = std::make_unique<Supervisor>(SupO);
    if (Status S = Sup->start(); !S) {
      Sup.reset();
      return FailWith(S);
    }
  }

  Started = true;
  AcceptThread = std::thread([this] { acceptLoop(); });
  return Status::success();
}

void Server::requestStop() {
  // Begin the graceful drain; the accept loop owns the rest (listener
  // close, in-flight wait, hard stop, worker-pool teardown). When the
  // accept loop never started (start() failed), hard-stop directly.
  if (!Draining.exchange(true, std::memory_order_acq_rel))
    DrainCount.fetch_add(1);
  if (!Started)
    Stop.store(true, std::memory_order_release);
}

bool Server::draining() const {
  return Draining.load(std::memory_order_acquire);
}

bool Server::stopping() const {
  return Stop.load(std::memory_order_acquire);
}

void Server::wait() {
  if (AcceptThread.joinable())
    AcceptThread.join();
  std::unique_lock<std::mutex> L(DrainMu);
  DrainCv.wait(L, [this] { return ActiveConns.load() == 0; });
}

wire::Stats Server::stats() const {
  wire::Stats S;
  S.Requests = Requests.load();
  S.CertifyRequests = CertifyRequests.load();
  S.MemoHits = MemoHits.load();
  S.CacheHits = CacheHits.load();
  S.CacheMisses = CacheMisses.load();
  S.CacheStores = CacheStores.load();
  S.BusyRejections = BusyRejections.load();
  S.ProtocolRejections = ProtocolRejections.load();
  S.FaultedRequests = FaultedRequests.load();
  S.ActiveConnections = ActiveConns.load();
  S.Workers = Opts.Workers;
  if (Sup) {
    SupervisorCounters C = Sup->counters();
    S.WorkerSpawns = C.Spawns;
    S.WorkerRestarts = C.Restarts;
    S.WorkerSpawnFailures = C.SpawnFailures;
    S.WorkerCrashes = C.Crashes;
    S.WorkerOoms = C.Ooms;
    S.WorkerTimeouts = C.Timeouts;
    S.WorkerRetries = C.Retries;
    S.WorkerDegraded = C.DegradedReplies;
  }
  S.Drains = DrainCount.load();
  S.CacheDir = Opts.CacheDir;
  return S;
}

void Server::acceptLoop() {
  while (!draining()) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, kPollSliceMs);
    if (R <= 0)
      continue; // Timeout or EINTR: re-check the stop flag.
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    uint64_t ConnId = NextConnId.fetch_add(1);
    // svc-accept: injected accept-side failure — the connection is
    // dropped exactly as if accept() had failed, and the client's
    // connect/retry logic must absorb it.
    if (fault::fireWithRetry(fault::Site::SvcAccept, Opts.SocketPath)) {
      ::close(Fd);
      continue;
    }
    if (ActiveConns.load() >= Opts.MaxClients) {
      // Connection-level backpressure: one named reply, then close.
      BusyRejections.fetch_add(1);
      wire::Message E;
      E.TheKind = wire::Kind::ErrorReply;
      E.Error.Reason = "server-busy";
      E.Error.Detail = "connection cap reached (max-clients " +
                       std::to_string(Opts.MaxClients) + ")";
      writeFrame(Fd, ConnId, E);
      ::close(Fd);
      continue;
    }
    ActiveConns.fetch_add(1);
    std::thread([this, Fd, ConnId] { serveConnection(Fd, ConnId); }).detach();
  }

  // Graceful drain: stop listening first (new connects are refused by
  // the OS, and the socket path disappears), let in-flight jobs finish
  // up to the drain deadline — connections stay open and get named
  // "server-busy" replies for new certify work — then hard-stop.
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(Opts.SocketPath.c_str());
  auto DrainT0 = std::chrono::steady_clock::now();
  while (Inflight.load() > 0 &&
         msSince(DrainT0) < double(Opts.DrainTimeoutMs))
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Stop.store(true, std::memory_order_release);
  if (Sup)
    Sup->stop(); // Unsticks any over-deadline jobs with a named loss.
  if (LockFd >= 0) {
    ::close(LockFd); // Releases the flock; the lock file stays.
    LockFd = -1;
  }
}

void Server::serveConnection(int Fd, uint64_t ConnId) {
  const std::string ConnKey = std::to_string(ConnId);
  std::string Buf;
  auto FrameStart = std::chrono::steady_clock::now();

  while (!stopping()) {
    size_t FrameSize = 0;
    std::string_view Payload;
    wire::FrameStatus FS = wire::splitFrame(Buf, &FrameSize, &Payload);

    if (FS == wire::FrameStatus::Ok) {
      wire::Message Req;
      std::string Reason;
      if (!wire::decode(Payload, &Req, &Reason)) {
        ProtocolRejections.fetch_add(1);
        wire::Message E;
        E.TheKind = wire::Kind::ErrorReply;
        E.Error.Reason = Reason;
        writeFrame(Fd, ConnId, E);
        break;
      }
      Buf.erase(0, FrameSize);
      FrameStart = std::chrono::steady_clock::now();
      Requests.fetch_add(1);
      wire::Message Reply = dispatch(Req);
      if (!writeFrame(Fd, ConnId, Reply))
        break;
      if (Req.TheKind == wire::Kind::ShutdownRequest)
        break;
      continue;
    }

    if (FS != wire::FrameStatus::NeedMore) {
      // Named frame rejection: the peer learns exactly why.
      ProtocolRejections.fetch_add(1);
      wire::Message E;
      E.TheKind = wire::Kind::ErrorReply;
      E.Error.Reason = wire::frameStatusReason(FS);
      writeFrame(Fd, ConnId, E);
      break;
    }

    // Slow-loris guard: once a frame has started arriving, the rest
    // must follow within the window.
    if (!Buf.empty() && msSince(FrameStart) > double(Opts.ReadTimeoutMs)) {
      ProtocolRejections.fetch_add(1);
      wire::Message E;
      E.TheKind = wire::Kind::ErrorReply;
      E.Error.Reason = "request-timeout";
      E.Error.Detail = "frame incomplete after " +
                       std::to_string(Opts.ReadTimeoutMs) + " ms";
      writeFrame(Fd, ConnId, E);
      break;
    }

    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, kPollSliceMs);
    if (R < 0 && errno != EINTR)
      break;
    if (R <= 0)
      continue;
    // svc-read: injected read-side I/O failure — the connection drops
    // with no reply, exactly like a real failed read.
    if (fault::fireWithRetry(fault::Site::SvcRead, ConnKey))
      break;
    char Tmp[65536];
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0) {
      // EOF between frames is a clean disconnect; EOF mid-frame is the
      // named truncation (the peer may have shut down only its write
      // side, so the reply can still land).
      if (!Buf.empty()) {
        ProtocolRejections.fetch_add(1);
        wire::Message E;
        E.TheKind = wire::Kind::ErrorReply;
        E.Error.Reason = "truncated-frame";
        E.Error.Detail =
            "peer closed after " + std::to_string(Buf.size()) + " bytes";
        writeFrame(Fd, ConnId, E);
      }
      break;
    }
    if (Buf.empty())
      FrameStart = std::chrono::steady_clock::now();
    Buf.append(Tmp, size_t(N));
  }

  ::close(Fd);
  {
    std::lock_guard<std::mutex> L(DrainMu);
    ActiveConns.fetch_sub(1);
    DrainCv.notify_all();
  }
}

bool Server::writeFrame(int Fd, uint64_t ConnId, const wire::Message &Reply) {
  // svc-write: injected write-side I/O failure — the reply is lost and
  // the connection drops, exactly like a peer that died mid-read.
  if (fault::fireWithRetry(fault::Site::SvcWrite, std::to_string(ConnId)))
    return false;
  std::string F = wire::frame(wire::encode(Reply));
  size_t Off = 0;
  while (Off < F.size()) {
    ssize_t N = ::send(Fd, F.data() + Off, F.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += size_t(N);
  }
  return true;
}

wire::Message Server::dispatch(const wire::Message &Req) {
  wire::Message Reply;
  switch (Req.TheKind) {
  case wire::Kind::PingRequest:
    Reply.TheKind = wire::Kind::PongReply;
    Reply.ThePong.ApiVersion = kApiVersion;
    Reply.ThePong.SchemaVersion = wire::kSchemaVersion;
    Reply.ThePong.RegistryFingerprint = RegistryFingerprint;
    Reply.ThePong.Pid = uint64_t(::getpid());
    return Reply;
  case wire::Kind::StatsRequest:
    Reply.TheKind = wire::Kind::StatsReply;
    Reply.TheStats = stats();
    return Reply;
  case wire::Kind::ShutdownRequest:
    Reply.TheKind = wire::Kind::ShutdownReply;
    requestStop();
    return Reply;
  case wire::Kind::CertifyRequest:
    CertifyRequests.fetch_add(1);
    return handleCertify(Req.Certify);
  default:
    // Well-formed frame, but not a request (a reply kind, say).
    ProtocolRejections.fetch_add(1);
    Reply.TheKind = wire::Kind::ErrorReply;
    Reply.Error.Reason = "unknown-request-kind";
    return Reply;
  }
}

wire::Message Server::handleCertify(const wire::CertifyRequest &WReq) {
  wire::Message Reply;
  if (draining()) {
    // Drain discipline: in-flight jobs finish; *new* certify work is
    // backpressure, named like any other busy refusal so retrying
    // clients treat it as transient.
    BusyRejections.fetch_add(1);
    Reply.TheKind = wire::Kind::ErrorReply;
    Reply.Error.Reason = "server-busy";
    Reply.Error.Detail = "server draining";
    return Reply;
  }

  // Canonicalize: a request that carries no budget gets the server's
  // defaults, so every dispatched certification is bounded — and the
  // memo key is computed over the budgets that actually apply.
  wire::CertifyRequest Canon = WReq;
  if (Canon.LayerTimeoutMs == 0)
    Canon.LayerTimeoutMs = Opts.DefaultLayerTimeoutMs;
  if (Canon.TvStepBudget == 0)
    Canon.TvStepBudget = Opts.DefaultTvStepBudget;

  // svc-dispatch: injected dispatch failure — a named, never-cached
  // degraded outcome carrying the fault's description.
  const std::string DispatchKey =
      Canon.Programs.empty() ? "all" : join(Canon.Programs, ",");
  if (std::optional<fault::Hit> H =
          fault::fireWithRetry(fault::Site::SvcDispatch, DispatchKey)) {
    FaultedRequests.fetch_add(1);
    Reply.TheKind = wire::Kind::ErrorReply;
    Reply.Error.Reason = "injected-fault";
    Reply.Error.Detail = H->describe();
    return Reply;
  }

  // Reply memo: a fully-certified reply is a pure function of (canonical
  // request bytes, registry fingerprint, cache directory, wire schema),
  // so the hot path is one digest + map lookup. Degraded or failed
  // replies never enter (the wire-level face of "degraded verdicts are
  // never cached").
  wire::Message CanonMsg;
  CanonMsg.TheKind = wire::Kind::CertifyRequest;
  CanonMsg.Certify = Canon;
  const uint64_t MemoKey = hash::fnv1a64(
      wire::encode(CanonMsg),
      hash::fnv1a64(Opts.CacheDir,
                    RegistryFingerprint ^ uint64_t(wire::kSchemaVersion)));
  {
    std::lock_guard<std::mutex> L(MemoMu);
    auto It = MemoIndex.find(MemoKey);
    if (It != MemoIndex.end()) {
      MemoLru.splice(MemoLru.begin(), MemoLru, It->second);
      MemoHits.fetch_add(1);
      Reply.TheKind = wire::Kind::CertifyReply;
      Reply.Reply = It->second->second;
      // Provenance is per-answer, not per-entry: THIS reply came from
      // the memo.
      for (wire::ProgramResult &P : Reply.Reply.Programs)
        P.From = uint8_t(Provenance::Memo);
      return Reply;
    }
  }

  // Certify-level backpressure: admission is capped; an over-cap
  // request is refused by name immediately so the client can back off.
  if (Inflight.fetch_add(1) >= Opts.MaxInflight) {
    Inflight.fetch_sub(1);
    BusyRejections.fetch_add(1);
    Reply.TheKind = wire::Kind::ErrorReply;
    Reply.Error.Reason = "server-busy";
    Reply.Error.Detail = "certify admission cap reached (max-inflight " +
                         std::to_string(Opts.MaxInflight) + ")";
    return Reply;
  }

  // The job itself: through the supervised worker pool when configured
  // (crash-only: a lost worker degrades to a named worker-* reply),
  // else in-process on this connection thread. Both paths are the same
  // runCertify projection, so the replies are byte-identical.
  if (Sup) {
    const std::string JobKey = DispatchKey + "#" + hash::hex16(MemoKey);
    Reply = Sup->runJob(Canon, JobKey);
  } else {
    WorkerConfig Cfg;
    Cfg.CacheDir = Opts.CacheDir;
    Cfg.Jobs = Opts.Jobs;
    Reply = runCertify(Canon, Cfg);
  }
  Inflight.fetch_sub(1);

  if (Reply.TheKind == wire::Kind::ErrorReply) {
    if (Reply.Error.Reason == "server-busy")
      BusyRejections.fetch_add(1);
    return Reply;
  }

  CacheHits.fetch_add(Reply.Reply.CacheHits);
  CacheMisses.fetch_add(Reply.Reply.CacheMisses);
  CacheStores.fetch_add(Reply.Reply.CacheStores);

  if (Reply.Reply.Exit == 0) {
    std::lock_guard<std::mutex> L(MemoMu);
    if (MemoIndex.find(MemoKey) == MemoIndex.end()) {
      MemoLru.emplace_front(MemoKey, Reply.Reply);
      MemoIndex[MemoKey] = MemoLru.begin();
      while (MemoLru.size() > Opts.MemoCapacity) {
        MemoIndex.erase(MemoLru.back().first);
        MemoLru.pop_back();
      }
    }
  }
  return Reply;
}

} // namespace service
} // namespace relc
