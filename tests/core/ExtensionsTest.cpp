//===- tests/core/ExtensionsTest.cpp - Table 1 extension evidence ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The correctness evidence for each Table 1 extension, one marked section
// per operation. The table1_extensions bench counts these sections as the
// "Proof" column: in Coq the proof script, here the end-to-end
// certification test of the extension (compilation + derivation replay +
// differential validation of a model exercising exactly that operation).
//
//===----------------------------------------------------------------------===//

#include "CoreTestUtil.h"

using namespace relc;
using namespace relc::ir;
using namespace relc::coretest;

namespace {

// RELC-SECTION-BEGIN: proof-cell-get
TEST(ExtensionsTest, CellGetCertifies) {
  FnBuilder FB("m", Monad::Pure);
  FB.cellParam("c");
  ProgBuilder B;
  B.let("x", mkCellGet("c")).let("r", addw(v("x"), v("x")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r", "c"}));
  sep::FnSpec Spec("cell_get_demo");
  Spec.cellArg("c").retScalar("r").retCellInPlace("c");
  EXPECT_CERTIFIES(Fn, Spec);
}
// RELC-SECTION-END: proof-cell-get

// RELC-SECTION-BEGIN: proof-cell-put
TEST(ExtensionsTest, CellPutCertifies) {
  FnBuilder FB("m", Monad::Pure);
  FB.cellParam("c").wordParam("x");
  ProgBuilder B;
  B.let("c", mkCellPut("c", mulw(v("x"), cw(3))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"c"}));
  sep::FnSpec Spec("cell_put_demo");
  Spec.cellArg("c").scalarArg("x").retCellInPlace("c");
  EXPECT_CERTIFIES(Fn, Spec);
}

TEST(ExtensionsTest, CellPutWrongNameIsUnsolvedGoal) {
  FnBuilder FB("m", Monad::Pure);
  FB.cellParam("c").wordParam("x");
  ProgBuilder B;
  B.let("d", mkCellPut("c", v("x")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"c"}));
  sep::FnSpec Spec("f");
  Spec.cellArg("c").scalarArg("x").retCellInPlace("c");
  core::Compiler C;
  EXPECT_FALSE(bool(C.compileFn(Fn, Spec)));
}
// RELC-SECTION-END: proof-cell-put

// RELC-SECTION-BEGIN: proof-cell-iadd
TEST(ExtensionsTest, CellIaddCertifiesAndEmitsOneStore) {
  FnBuilder FB("m", Monad::Pure);
  FB.cellParam("c").wordParam("x");
  ProgBuilder B;
  B.let("c", mkCellIncr("c", v("x"))).let("c", mkCellIncr("c", cw(1)));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"c"}));
  sep::FnSpec Spec("cell_iadd_demo");
  Spec.cellArg("c").scalarArg("x").retCellInPlace("c");
  core::CompileResult Out;
  ASSERT_CERTIFIES(Fn, Spec, {}, {}, &Out);
  // The iadd lemma compiles to a single read-add-write statement each.
  EXPECT_EQ(Out.EmittedStmts, 2u);
}
// RELC-SECTION-END: proof-cell-iadd

// RELC-SECTION-BEGIN: proof-nondet-alloc
TEST(ExtensionsTest, NondetAllocCertifiesAgainstLengthSpec) {
  // The paper's spec shape: λ l ⇒ length l = n. The buffer is consumed by
  // writing then reading back one slot, so the predicate can check it.
  FnBuilder FB("m", Monad::Nondet);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("buf", mkNondetAlloc(8))
      .let("buf", mkPut("buf", cw(3), w2b(andw(v("x"), cw(0xff)))))
      .let("r", b2w(aget("buf", cw(3))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("nd_alloc_demo");
  Spec.scalarArg("x").retScalar("r");
  validate::ValidationOptions VO;
  VO.NondetEnsures = [](const std::vector<Value> &In,
                        const validate::TargetOutputs &Out) -> Status {
    if (Out.Rets.size() != 1 || Out.Rets[0] != (In[0].asWord() & 0xff))
      return Error("written slot must read back");
    return Status::success();
  };
  EXPECT_CERTIFIES(Fn, Spec, {}, VO);
}
// RELC-SECTION-END: proof-nondet-alloc

// RELC-SECTION-BEGIN: proof-nondet-peek
TEST(ExtensionsTest, NondetPeekCertifiesUnderTrivialSpec) {
  FnBuilder FB("m", Monad::Nondet);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("any", mkNondetPeek()).let("r", orw(v("any"), cw(1)));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("nd_peek_demo");
  Spec.scalarArg("x").retScalar("r");
  validate::ValidationOptions VO;
  VO.NondetEnsures = [](const std::vector<Value> &,
                        const validate::TargetOutputs &Out) -> Status {
    // ensures: the low bit is set, whatever was chosen.
    if (Out.Rets.size() != 1 || (Out.Rets[0] & 1) != 1)
      return Error("low bit must be set");
    return Status::success();
  };
  EXPECT_CERTIFIES(Fn, Spec, {}, VO);
}

TEST(ExtensionsTest, NondetWithoutEnsuresPredicateIsRejected) {
  FnBuilder FB("m", Monad::Nondet);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("any", mkNondetPeek());
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"any"}));
  sep::FnSpec Spec("f");
  Spec.scalarArg("x").retScalar("any");
  Status S = compileAndCertify(Fn, Spec);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("NondetEnsures"), std::string::npos);
}
// RELC-SECTION-END: proof-nondet-peek

// RELC-SECTION-BEGIN: proof-io-read
TEST(ExtensionsTest, IoReadCertifiesTraceEquality) {
  FnBuilder FB("m", Monad::Io);
  FB.wordParam("n");
  ProgBuilder Loop;
  Loop.let("x", mkIoRead()).let("acc", addw(v("acc"), v("x")));
  ProgBuilder B;
  B.letMulti({"acc"}, mkRange("i", cw(0), v("n"), {acc("acc", cw(0))},
                              std::move(Loop).ret({"acc"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"acc"}));
  sep::FnSpec Spec("io_read_demo");
  Spec.scalarArg("n").retScalar("acc");
  validate::ValidationOptions VO;
  VO.MakeInputs = [](const SourceFn &, Rng &R, size_t) {
    return std::vector<Value>{Value::word(R.below(12))};
  };
  EXPECT_CERTIFIES(Fn, Spec, {}, VO);
}
// RELC-SECTION-END: proof-io-read

// RELC-SECTION-BEGIN: proof-io-write
TEST(ExtensionsTest, IoWriteCertifiesTraceOrder) {
  FnBuilder FB("m", Monad::Io);
  FB.wordParam("a").wordParam("b");
  ProgBuilder B;
  B.let("_1", mkIoWrite(v("a")))
      .let("_2", mkIoWrite(v("b")))
      .let("_3", mkIoWrite(addw(v("a"), v("b"))))
      .let("r", cw(0));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("io_write_demo");
  Spec.scalarArg("a").scalarArg("b").retScalar("r");
  EXPECT_CERTIFIES(Fn, Spec);
}

TEST(ExtensionsTest, InterleavedReadsAndWritesKeepOrder) {
  FnBuilder FB("m", Monad::Io);
  FB.wordParam("n");
  ProgBuilder Loop;
  Loop.let("x", mkIoRead())
      .let("_", mkIoWrite(mulw(v("x"), cw(2))))
      .let("k", addw(v("k"), cw(1)));
  ProgBuilder B;
  B.letMulti({"k"}, mkRange("i", cw(0), v("n"), {acc("k", cw(0))},
                            std::move(Loop).ret({"k"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"k"}));
  sep::FnSpec Spec("io_echo_demo");
  Spec.scalarArg("n").retScalar("k");
  validate::ValidationOptions VO;
  VO.MakeInputs = [](const SourceFn &, Rng &R, size_t) {
    return std::vector<Value>{Value::word(R.below(10))};
  };
  EXPECT_CERTIFIES(Fn, Spec, {}, VO);
}
// RELC-SECTION-END: proof-io-write

// RELC-SECTION-BEGIN: proof-writer-tell
TEST(ExtensionsTest, WriterTellCertifiesAccumulatedOutput) {
  FnBuilder FB("m", Monad::Writer);
  FB.wordParam("n");
  ProgBuilder Loop;
  Loop.let("_", mkTell(mulw(v("i"), v("i")))).let("c", addw(v("c"), cw(1)));
  ProgBuilder B;
  B.letMulti({"c"}, mkRange("i", cw(0), v("n"), {acc("c", cw(0))},
                            std::move(Loop).ret({"c"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"c"}));
  sep::FnSpec Spec("writer_demo");
  Spec.scalarArg("n").retScalar("c");
  validate::ValidationOptions VO;
  VO.MakeInputs = [](const SourceFn &, Rng &R, size_t) {
    return std::vector<Value>{Value::word(R.below(16))};
  };
  EXPECT_CERTIFIES(Fn, Spec, {}, VO);
}
// RELC-SECTION-END: proof-writer-tell

TEST(ExtensionsTest, PureLemmasApplyInsideEveryMonad) {
  // §3.4.1: "a single lemma for compiling (pure) addition, applicable to
  // all monadic programs" — the same pure binding compiles under each
  // ambient monad without monad-specific rules firing for it.
  for (Monad M : {Monad::Pure, Monad::Nondet, Monad::Writer, Monad::Io}) {
    FnBuilder FB("m", M);
    FB.wordParam("x");
    ProgBuilder B;
    B.let("y", addw(v("x"), cw(1)));
    SourceFn Fn = std::move(FB).done(std::move(B).ret({"y"}));
    sep::FnSpec Spec("pure_in_monads");
    Spec.scalarArg("x").retScalar("y");
    validate::ValidationOptions VO;
    if (M == Monad::Nondet)
      VO.NondetEnsures = [](const std::vector<Value> &In,
                            const validate::TargetOutputs &Out) -> Status {
        if (Out.Rets[0] != In[0].asWord() + 1)
          return Error("y != x + 1");
        return Status::success();
      };
    EXPECT_CERTIFIES(Fn, Spec, {}, VO);
  }
}

} // namespace
