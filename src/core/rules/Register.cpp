//===- core/rules/Register.cpp - Standard rule registration ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Also home of the pattern renderings and the registry fingerprint: the
// canonical digest of "which rules, in which order, with which declared
// behavior" that the certificate cache salts into its options hash.
//
//===----------------------------------------------------------------------===//

#include "core/ExprCompile.h"
#include "core/rules/Rules.h"
#include "support/Hash.h"

namespace relc {
namespace core {

void registerStandardRules(RuleSet &RS) {
  // Order is documentation only for disjoint matches (each rule matches a
  // distinct binding shape), but program-specific rules registered with
  // addFront deliberately shadow these.
  RS.add(makeLetRule());
  RS.add(makeArrayPutRule());
  RS.add(makeMapRule());
  RS.add(makeFoldRule());
  RS.add(makeFoldBreakRule());
  RS.add(makeRangeRule());
  RS.add(makeWhileRule());
  RS.add(makeIfRule());
  RS.add(makeStackInitRule());
  RS.add(makeStackUninitRule());
  RS.add(makeCellGetRule());
  RS.add(makeCellPutRule());
  RS.add(makeCellIncrRule());
  RS.add(makeNondetAllocRule());
  RS.add(makeNondetPeekRule());
  RS.add(makeIoReadRule());
  RS.add(makeIoWriteRule());
  RS.add(makeWriterTellRule());
  RS.add(makeCopyRule());
  RS.add(makeExternCallRule());
}

namespace {

std::string joined(const std::vector<std::string> &Tags) {
  std::string Out;
  for (const std::string &T : Tags)
    Out += (Out.empty() ? "" : ",") + T;
  return Out;
}

std::string arityStr(unsigned N) {
  return N == GoalPattern::kAnyArity ? "*" : std::to_string(N);
}

} // namespace

std::string GoalPattern::render() const {
  std::string Out = "kinds=";
  for (size_t I = 0; I < Kinds.size(); ++I)
    Out += std::string(I ? "," : "") + ir::boundKindName(Kinds[I]);
  Out += "|names=" + arityStr(MinNames) + ".." + arityStr(MaxNames);
  Out += std::string("|dir=") +
         (NameDir == NameDirection::InPlace
              ? "in-place"
              : NameDir == NameDirection::Fresh ? "fresh" : "none");
  Out += "|side=" + joined(SideConds);
  Out += std::string("|emits=") +
         (SubGoals == Emits::Prog ? "prog"
                                  : SubGoals == Emits::Expr ? "expr" : "none");
  Out += std::string("|dec=") + (Decreasing ? "1" : "0");
  return Out;
}

std::string ExprGoalPattern::render() const {
  std::string Out = "kinds=";
  for (size_t I = 0; I < Kinds.size(); ++I)
    Out += std::string(I ? "," : "") + ir::exprKindName(Kinds[I]);
  Out += "|match=" + joined(MatchConds);
  Out += "|side=" + joined(SideConds);
  Out += std::string("|emits=") + (EmitsExprGoals ? "expr" : "none");
  Out += std::string("|dec=") + (Decreasing ? "1" : "0");
  return Out;
}

uint64_t RuleSet::fingerprint() const {
  uint64_t H = hash::fnv1a64("relc-stmt-rules-v1|");
  for (const auto &R : Rules)
    H = hash::fnv1a64(R->name() + "{" + R->pattern().render() + "}", H);
  return H;
}

uint64_t ExprRuleSet::fingerprint() const {
  uint64_t H = hash::fnv1a64("relc-expr-rules-v1|");
  for (const auto &R : Rules)
    H = hash::fnv1a64(R->name() + "{" + R->pattern().render() + "}", H);
  return H;
}

uint64_t standardRegistryFingerprint() {
  // The standard registries are process-constants: build each once, hash
  // once. (Initialization is thread-safe per the C++ static-local rule.)
  static const uint64_t FP = [] {
    RuleSet RS;
    registerStandardRules(RS);
    ExprRuleSet ES;
    registerStandardExprRules(ES);
    return hash::fnv1a64Word(ES.fingerprint(),
                             hash::fnv1a64Word(RS.fingerprint()));
  }();
  return FP;
}

} // namespace core
} // namespace relc
