//===- service/Client.h - relcd wire client ---------------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The client half of the relcd wire protocol: connect (with retry, so a
// freshly exec'd or freshly restarted daemon is not a race), one
// framed round trip per request, and the same named-rejection
// discipline the server applies — a reply frame with a wrong magic or
// schema is rejected by name, never trusted. Used by relcd's
// ping/stats/shutdown subcommands, bench/service_load, and the service
// test suite; persistent (many round trips per connection).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVICE_CLIENT_H
#define RELC_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "support/Result.h"

#include <cstdint>
#include <functional>

namespace relc {
namespace service {

/// Transient-failure retry policy for roundTripWithRetry: momentary
/// backpressure ("server-busy" — including a draining daemon) and
/// connect failures (ECONNREFUSED/ENOENT from a daemon that is
/// restarting) back off with deterministic decorrelated jitter
/// (support/Backoff.h) instead of surfacing as hard failures.
struct RetryPolicy {
  unsigned Attempts = 3; ///< Total tries, including the first.
  unsigned BaseMs = 25;
  unsigned CapMs = 1000;
  uint64_t Seed = 0;
  /// Fake clock for tests: when set, called with each delay instead of
  /// sleeping through it.
  std::function<void(unsigned Ms)> SleepFn;
};

class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to \p SocketPath, retrying for up to \p TimeoutMs — the
  /// daemon may still be binding (or restarting after a crash).
  Status connect(const std::string &SocketPath, unsigned TimeoutMs = 2000);

  void close();
  bool connected() const { return Fd >= 0; }

  /// Writes \p Req as one frame and reads one reply frame. Failures are
  /// named kebab-case first: "connection-lost", "request-timeout",
  /// "truncated-frame", "bad-magic", "unknown-schema-version",
  /// "oversized-frame", "malformed-frame". A server-side ErrorReply is
  /// a *successful* round trip — the caller inspects the message kind.
  Result<wire::Message> roundTrip(const wire::Message &Req,
                                  unsigned TimeoutMs = 120000);

  /// roundTrip with transient-failure absorption: (re)connects to
  /// \p SocketPath as needed and retries up to Policy.Attempts times on
  /// connect failure, a lost connection, or a "server-busy" reply, with
  /// decorrelated-jitter backoff between tries. Any other reply —
  /// including named worker-* degradations — returns immediately. After
  /// the attempts run out, returns the last busy reply (it IS a
  /// successful round trip) or the last transport error. \p Retries,
  /// when non-null, accumulates the retry count (bench honesty).
  Result<wire::Message> roundTripWithRetry(const std::string &SocketPath,
                                           const wire::Message &Req,
                                           const RetryPolicy &Policy = {},
                                           unsigned TimeoutMs = 120000,
                                           unsigned *Retries = nullptr);

private:
  int Fd = -1;
};

} // namespace service
} // namespace relc

#endif // RELC_SERVICE_CLIENT_H
