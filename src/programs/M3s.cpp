//===- programs/M3s.cpp - Murmur3 scramble -----------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace relc {
namespace programs {

using namespace ir;

ProgramDef makeM3s() {
  ProgramDef P;
  P.Name = "m3s";
  P.Description = "Scramble part of the Murmur3 algorithm";
  P.SourceFile = "src/programs/M3s.cpp";
  P.EndToEnd = false; // As in Table 2: no abstract-spec proof for m3s.

  // RELC-SECTION-BEGIN: program-m3s-source
  // m3s' := fun k => let/n k := (k & 0xffffffff) * 0xcc9e2d51 mod 2^32 in
  //                  let/n k := rotl32 k 15 in
  //                  let/n k := k * 0x1b873593 mod 2^32 in k
  FnBuilder FB("m3s_model", Monad::Pure);
  FB.wordParam("k");
  ProgBuilder Body;
  Body.let("k", andw(v("k"), cw(0xffffffffull)))
      .let("k", andw(mulw(v("k"), cw(0xcc9e2d51ull)), cw(0xffffffffull)))
      .let("k", rotl(v("k"), 15, 32))
      .let("k", andw(mulw(v("k"), cw(0x1b873593ull)), cw(0xffffffffull)));
  P.Model = std::move(FB).done(std::move(Body).ret({"k"}));
  // RELC-SECTION-END: program-m3s-source

  P.Spec = sep::FnSpec("m3s");
  P.Spec.scalarArg("k").retScalar("k");

  return P;
}

} // namespace programs
} // namespace relc
