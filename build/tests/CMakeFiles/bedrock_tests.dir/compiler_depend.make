# Empty compiler generated dependencies file for bedrock_tests.
# This may be replaced when dependencies are built.
