//===- tools/relcd.cpp - Certification-as-a-service daemon -----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The daemon face of the certification pipeline: `relcd serve` binds a
// local Unix-domain socket and answers compile-and-certify requests from
// many concurrent clients (wire schema v1, service/Protocol.h), keeping
// the certificate cache, the rule-registry fingerprint, and an in-memory
// reply memo warm across requests. `ping`, `stats`, and `shutdown` are
// the operator's side of the protocol.
//
// The daemon serves the *same* audited computation relc-gen performs
// (service::certify): certificates on the wire are byte-identical to
// relc-gen's artifacts and are accepted by relc-check unchanged.
// Degraded or faulted requests come back as named statuses and are
// never cached or memoized.
//
// Exit codes: 0 = success; 1 = server/protocol failure (no daemon on
// the socket, error reply); 2 = usage error.
//
//===----------------------------------------------------------------------===//

#include "relc/Certify.h"
#include "support/CommandLine.h"
#include "support/Fault.h"
#include "support/Hash.h"
#include "support/ToolFlags.h"

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

using namespace relc;

namespace {

/// SIGINT/SIGTERM request the same graceful drain a wire shutdown does.
volatile std::sig_atomic_t GotSignal = 0;
void onSignal(int) { GotSignal = 1; }

constexpr const char *kDefaultSocket = "relcd.sock";

void addSocketFlag(cl::OptionTable &T, std::string &Socket) {
  T.str({"-socket"}, &Socket, "<path>",
        "Unix-domain socket path (default: relcd.sock)");
}

/// The worker-supervision serve flags (ServerOptions' crash-only face);
/// 0 keeps the ServerOptions default where one exists.
struct WorkerFlags {
  unsigned Workers = 0;
  unsigned Retries = 2;
  unsigned JobWallMs = 0;
  unsigned DrainTimeoutMs = 0;
  unsigned MemLimitMb = 0;
  unsigned CpuLimitSec = 0;
};

int serveMain(const std::string &Socket, const cl::CacheDirFlags &Cache,
              unsigned Jobs, const cl::BudgetFlags &Budgets,
              unsigned MaxClients, unsigned MaxInflight,
              unsigned ReadTimeoutMs, const WorkerFlags &Workers) {
  service::ServerOptions SO;
  SO.SocketPath = Socket;
  SO.CacheDir = cl::resolveCacheDir(Cache);
  SO.Jobs = Jobs;
  SO.MaxClients = MaxClients;
  SO.MaxInflight = MaxInflight;
  if (ReadTimeoutMs)
    SO.ReadTimeoutMs = ReadTimeoutMs;
  if (Budgets.LayerTimeoutMs)
    SO.DefaultLayerTimeoutMs = Budgets.LayerTimeoutMs;
  SO.DefaultTvStepBudget = Budgets.TvStepBudget;
  SO.Workers = Workers.Workers;
  SO.WorkerRetries = Workers.Retries;
  if (Workers.JobWallMs)
    SO.JobWallMs = Workers.JobWallMs;
  if (Workers.DrainTimeoutMs)
    SO.DrainTimeoutMs = Workers.DrainTimeoutMs;
  SO.WorkerMemLimitMb = Workers.MemLimitMb;
  SO.WorkerCpuLimitSec = Workers.CpuLimitSec;

  service::Server Srv(SO);
  if (Status S = Srv.start(); !S) {
    std::fprintf(stderr, "relcd: %s\n", S.error().str().c_str());
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::printf("relcd: serving on %s (cache %s, max-clients %u, "
              "max-inflight %u, workers %u)\n",
              SO.SocketPath.c_str(),
              SO.CacheDir.empty() ? "disabled" : SO.CacheDir.c_str(),
              SO.MaxClients, SO.MaxInflight, SO.Workers);
  std::fflush(stdout);

  while (!Srv.stopping()) {
    if (GotSignal)
      Srv.requestStop();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Srv.wait();
  std::printf("relcd: shutdown complete\n");
  return 0;
}

/// One request against a running daemon; every failure is named on
/// stderr and maps to exit 1.
int clientRound(const std::string &Socket, service::wire::Kind Kind,
                service::wire::Message *Out) {
  service::Client C;
  if (Status S = C.connect(Socket); !S) {
    std::fprintf(stderr, "relcd: %s\n", S.error().str().c_str());
    return 1;
  }
  service::wire::Message Req;
  Req.TheKind = Kind;
  Result<service::wire::Message> R = C.roundTrip(Req, 10000);
  if (!R) {
    std::fprintf(stderr, "relcd: %s\n", R.error().str().c_str());
    return 1;
  }
  if (R->TheKind == service::wire::Kind::ErrorReply) {
    std::fprintf(stderr, "relcd: server error: %s%s%s\n",
                 R->Error.Reason.c_str(), R->Error.Detail.empty() ? "" : ": ",
                 R->Error.Detail.c_str());
    return 1;
  }
  *Out = std::move(*R);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (Status S = fault::armFromEnv(); !S) {
    std::fprintf(stderr, "relcd: RELC_FAULT_SPEC: %s\n",
                 S.error().str().c_str());
    return 2;
  }

  std::string ServeSocket = kDefaultSocket, PingSocket = kDefaultSocket;
  std::string StatsSocket = kDefaultSocket, ShutdownSocket = kDefaultSocket;
  std::string CertifySocket = kDefaultSocket;
  cl::CacheDirFlags Cache;
  cl::BudgetFlags Budgets, CertifyBudgets;
  unsigned Jobs = 1, MaxClients = 64, MaxInflight = 16, ReadTimeoutMs = 0;
  WorkerFlags Workers;
  std::vector<std::string> CertifyPrograms;
  bool CertifyKeepGoing = false;

  cl::SubcommandSet Cmds(
      "relcd",
      "Long-lived certification daemon: serves compile-and-certify\n"
      "requests over a local Unix-domain socket (wire schema v1),\n"
      "keeping the certificate cache and rule-registry fingerprint\n"
      "warm across requests. Certificates served on the wire are\n"
      "byte-identical to relc-gen's artifacts.");

  cl::OptionTable &Serve =
      Cmds.add("serve", "run the daemon in the foreground",
               "Binds the socket and serves until a shutdown request or\n"
               "SIGINT/SIGTERM; degraded or faulted requests return named\n"
               "statuses and are never cached.");
  addSocketFlag(Serve, ServeSocket);
  cl::addCacheDirFlags(Serve, Cache);
  cl::addJobsFlag(Serve, Jobs, "per-request certification");
  cl::addBudgetFlags(Serve, Budgets);
  cl::addFaultFlag(Serve);
  Serve.num({"-max-clients"}, &MaxClients, 1, "<n>",
            "concurrent connection cap; excess connections\n"
            "get a named server-busy reply (default: 64)");
  Serve.num({"-max-inflight"}, &MaxInflight, 1, "<n>",
            "concurrent certification cap (backpressure);\n"
            "excess requests get server-busy (default: 16)");
  Serve.num({"-read-timeout-ms"}, &ReadTimeoutMs, 0, "<ms>",
            "slow-loris guard: a started frame must complete\n"
            "within this window (default: 10000)");
  Serve.num({"-workers"}, &Workers.Workers, 0, "<n>",
            "crash-only worker pool: run every certification in\n"
            "one of <n> forked, rlimited subprocesses; a crashing\n"
            "or hanging job degrades by name (worker-crashed,\n"
            "worker-oom, worker-timeout, worker-retries-exhausted)\n"
            "instead of killing the daemon (default: 0 = in-process)");
  Serve.num({"-worker-retries"}, &Workers.Retries, 0, "<n>",
            "retries per job after a lost worker, with\n"
            "exponential backoff + jitter (default: 2)");
  Serve.num({"-job-wall-ms"}, &Workers.JobWallMs, 0, "<ms>",
            "per-attempt worker wall deadline; a silent worker\n"
            "is killed and the job retried (default: 60000)");
  Serve.num({"-drain-timeout-ms"}, &Workers.DrainTimeoutMs, 0, "<ms>",
            "graceful-drain window on shutdown/SIGTERM: in-flight\n"
            "jobs get this long to finish, new certify requests\n"
            "get server-busy (default: 5000)");
  Serve.num({"-worker-mem-limit-mb"}, &Workers.MemLimitMb, 0, "<mb>",
            "RLIMIT_AS per worker; allocation failure becomes a\n"
            "named worker-oom (default: 0 = inherit)");
  Serve.num({"-worker-cpu-limit-sec"}, &Workers.CpuLimitSec, 0, "<s>",
            "RLIMIT_CPU per worker; a spin loop becomes a named\n"
            "worker-timeout (default: 0 = inherit)");

  cl::OptionTable &Ping =
      Cmds.add("ping", "check that a daemon is alive",
               "One round trip: prints the daemon's API/schema versions,\n"
               "rule-registry fingerprint, and pid.");
  addSocketFlag(Ping, PingSocket);

  cl::OptionTable &Stats =
      Cmds.add("stats", "print a daemon's request/cache counters",
               "One round trip: request counts, memo and certificate-cache\n"
               "hits, backpressure and protocol rejections.");
  addSocketFlag(Stats, StatsSocket);

  cl::OptionTable &Shutdown =
      Cmds.add("shutdown", "ask a daemon to drain and exit",
               "Sends the shutdown request and waits for the\n"
               "acknowledgement.");
  addSocketFlag(Shutdown, ShutdownSocket);

  cl::OptionTable &Certify =
      Cmds.add("certify", "certify programs through a running daemon",
               "One certify round trip (with transient-failure retry on\n"
               "server-busy and connect refusal). Exits with the daemon's\n"
               "relc-gen exit taxonomy: 0 certified, 1 failed, 2 unknown\n"
               "program, 3 degraded (including the named worker-*\n"
               "supervision degradations).");
  addSocketFlag(Certify, CertifySocket);
  cl::addBudgetFlags(Certify, CertifyBudgets);
  Certify.flag({"-keep-going"}, &CertifyKeepGoing,
               "continue past failing programs; degraded-only runs exit 3");
  Certify.positional("program",
                     "program names to certify (none = the whole suite)",
                     [&CertifyPrograms](const std::string &Arg, std::string *) {
                       CertifyPrograms.push_back(Arg);
                       return true;
                     });

  cl::SubcommandSet::Dispatch D = Cmds.dispatch(argc, argv);
  switch (D.Result) {
  case cl::ParseResult::Ok:
    break;
  case cl::ParseResult::Help:
    return 0;
  case cl::ParseResult::Error:
    return 2;
  }

  if (D.Name == "serve")
    return serveMain(ServeSocket, Cache, Jobs, Budgets, MaxClients,
                     MaxInflight, ReadTimeoutMs, Workers);

  if (D.Name == "ping") {
    service::wire::Message M;
    if (int Rc = clientRound(PingSocket, service::wire::Kind::PingRequest, &M))
      return Rc;
    std::printf("relcd: alive (api %u, schema %u, rules %s, pid %llu)\n",
                M.ThePong.ApiVersion, M.ThePong.SchemaVersion,
                hash::hex16(M.ThePong.RegistryFingerprint).c_str(),
                static_cast<unsigned long long>(M.ThePong.Pid));
    return 0;
  }

  if (D.Name == "stats") {
    service::wire::Message M;
    if (int Rc =
            clientRound(StatsSocket, service::wire::Kind::StatsRequest, &M))
      return Rc;
    const service::wire::Stats &S = M.TheStats;
    std::printf("requests:             %llu\n"
                "certify-requests:     %llu\n"
                "memo-hits:            %llu\n"
                "cache-hits:           %llu\n"
                "cache-misses:         %llu\n"
                "cache-stores:         %llu\n"
                "busy-rejections:      %llu\n"
                "protocol-rejections:  %llu\n"
                "faulted-requests:     %llu\n"
                "active-connections:   %llu\n"
                "workers:              %llu\n"
                "worker-spawns:        %llu\n"
                "worker-restarts:      %llu\n"
                "worker-spawn-failures:%llu\n"
                "worker-crashes:       %llu\n"
                "worker-ooms:          %llu\n"
                "worker-timeouts:      %llu\n"
                "worker-retries:       %llu\n"
                "worker-degraded:      %llu\n"
                "drains:               %llu\n"
                "cache-dir:            %s\n",
                static_cast<unsigned long long>(S.Requests),
                static_cast<unsigned long long>(S.CertifyRequests),
                static_cast<unsigned long long>(S.MemoHits),
                static_cast<unsigned long long>(S.CacheHits),
                static_cast<unsigned long long>(S.CacheMisses),
                static_cast<unsigned long long>(S.CacheStores),
                static_cast<unsigned long long>(S.BusyRejections),
                static_cast<unsigned long long>(S.ProtocolRejections),
                static_cast<unsigned long long>(S.FaultedRequests),
                static_cast<unsigned long long>(S.ActiveConnections),
                static_cast<unsigned long long>(S.Workers),
                static_cast<unsigned long long>(S.WorkerSpawns),
                static_cast<unsigned long long>(S.WorkerRestarts),
                static_cast<unsigned long long>(S.WorkerSpawnFailures),
                static_cast<unsigned long long>(S.WorkerCrashes),
                static_cast<unsigned long long>(S.WorkerOoms),
                static_cast<unsigned long long>(S.WorkerTimeouts),
                static_cast<unsigned long long>(S.WorkerRetries),
                static_cast<unsigned long long>(S.WorkerDegraded),
                static_cast<unsigned long long>(S.Drains),
                S.CacheDir.empty() ? "(disabled)" : S.CacheDir.c_str());
    return 0;
  }

  if (D.Name == "shutdown") {
    service::wire::Message M;
    if (int Rc = clientRound(ShutdownSocket,
                             service::wire::Kind::ShutdownRequest, &M))
      return Rc;
    std::printf("relcd: shutdown acknowledged\n");
    return 0;
  }

  if (D.Name == "certify") {
    service::wire::Message Req;
    Req.TheKind = service::wire::Kind::CertifyRequest;
    Req.Certify.Programs = CertifyPrograms;
    Req.Certify.KeepGoing = CertifyKeepGoing;
    Req.Certify.LayerTimeoutMs = CertifyBudgets.LayerTimeoutMs;
    Req.Certify.TvStepBudget = CertifyBudgets.TvStepBudget;

    service::Client C;
    Result<service::wire::Message> R =
        C.roundTripWithRetry(CertifySocket, Req);
    if (!R) {
      std::fprintf(stderr, "relcd: %s\n", R.error().str().c_str());
      return 1;
    }
    if (R->TheKind == service::wire::Kind::ErrorReply) {
      const std::string &Reason = R->Error.Reason;
      std::fprintf(stderr, "relcd: %s%s%s\n", Reason.c_str(),
                   R->Error.Detail.empty() ? "" : ": ",
                   R->Error.Detail.c_str());
      // Mirror the relc-gen taxonomy: an unknown program is a usage
      // error; a named availability degradation (worker supervision,
      // injected fault) is exit 3; everything else is a hard failure.
      if (Reason == "unknown-program")
        return 2;
      if (Reason.rfind("worker-", 0) == 0 || Reason == "injected-fault")
        return 3;
      return 1;
    }
    if (R->TheKind != service::wire::Kind::CertifyReply) {
      std::fprintf(stderr, "relcd: unexpected reply kind\n");
      return 1;
    }
    for (const service::wire::ProgramResult &P : R->Reply.Programs) {
      std::printf("%-24s %s (%s)%s%s\n", P.Name.c_str(),
                  service::statusName(
                      static_cast<service::ProgramStatus>(P.Status)),
                  service::provenanceName(
                      static_cast<service::Provenance>(P.From)),
                  P.Error.empty() ? "" : ": ",
                  P.Error.c_str());
      if (!P.DegradedNote.empty())
        std::printf("  note: %s\n", P.DegradedNote.c_str());
    }
    return int(R->Reply.Exit);
  }

  std::fprintf(stderr, "relcd: internal: unhandled command '%s'\n",
               D.Name.c_str());
  return 2;
}
