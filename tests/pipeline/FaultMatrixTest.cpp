//===- tests/pipeline/FaultMatrixTest.cpp - Seeded fault-injection matrix --===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The §4.7 robustness contract, stress-tested: for every fault site, mode
// (transient / persistent / probabilistic), and a battery of seeds, a
// certification run under injection must either
//
//   (a) produce an outcome byte-identical to the fault-free baseline
//       (the fault healed within a retry allowance or missed its target), or
//   (b) report the exact injected fault as a *named* outcome — and never
//       crash, hang, poison a sibling program, or cache a degraded verdict.
//
// Well over 100 individual injections are exercised: an unmatched
// persistent layer-entry clause alone fires 8 times per run (4 layers x 2
// programs; the codelint layer has its own codelint-entry site), an
// unmatched interp-fuel clause fires once per differential vector (6 per
// program), and a sched-job clause fires at every scheduler job boundary;
// summed across the ~60 configurations below the guaranteed fire count is
// several hundred.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "support/Fault.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace relc;
using namespace relc::pipeline;

namespace {

struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("relc-fault-matrix-" + Name))
               .string();
    std::filesystem::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

/// Canonical, timing-free rendering of an outcome: everything observable
/// except Millis. Two runs with the same semantics render identically.
std::string render(const ProgramOutcome &O) {
  auto Layer = [](const LayerRun &R) {
    std::string S;
    S += R.Enabled ? 'E' : '-';
    S += R.Ran ? 'R' : '-';
    S += R.FromCache ? 'C' : '-';
    S += R.Ok ? 'K' : '-';
    S += R.Degraded ? 'D' : '-';
    return S + "{" + R.FaultNote + "}";
  };
  std::string S = O.Def->Name;
  S += "|compileOk=" + std::to_string(O.CompileOk);
  S += "|compileDegraded=" + std::to_string(O.CompileDegraded);
  S += "|compileError={" + O.CompileError + "}";
  S += "|cacheHit=" + std::to_string(O.CacheHit);
  S += "|replay=" + Layer(O.Replay);
  S += "|analysis=" + Layer(O.Analysis);
  S += "|tv=" + Layer(O.Tv);
  S += "|codelint=" + Layer(O.Codelint);
  S += "|diff=" + Layer(O.Diff);
  S += "|validationError={" + O.ValidationError + "}";
  S += "|degradedNote={" + O.DegradedNote + "}";
  S += "|tvVerdict=" + O.TvVerdictName;
  S += "|tvLoops=" + std::to_string(O.TvLoops);
  S += "|tvTerms=" + std::to_string(O.TvTerms);
  S += "|codelintVerdict=" + O.CodelintVerdictName;
  S += "|analysisWarnings=" + std::to_string(O.AnalysisWarnings);
  S += "|analysisDiags={" + O.AnalysisDiags + "}";
  S += "|tvCert={" + O.TvCertJson + "}";
  S += "|ok=" + std::to_string(O.ok());
  S += "|anyDegraded=" + std::to_string(O.anyDegraded());
  S += "|degradedOnly=" + std::to_string(O.failureIsDegradedOnly());
  return S;
}

/// The site names armed by \p Spec (first token of each clause).
std::vector<std::string> sitesOf(const std::string &Spec) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Clause = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Out.push_back(Clause.substr(0, Clause.find(':')));
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Out;
}

TEST(FaultMatrixTest, EveryInjectionIsAbsorbedOrNamedNeverWorse) {
  // Two real programs with a shrunk vector battery (6 vectors each) so the
  // whole matrix runs in seconds.
  const programs::ProgramDef *P1 = programs::findProgram("fnv1a");
  const programs::ProgramDef *P2 = programs::findProgram("upstr");
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P2, nullptr);
  programs::ProgramDef A = *P1, B = *P2;
  for (programs::ProgramDef *P : {&A, &B}) {
    P->VOpts.Sizes = {0, 3, 8};
    P->VOpts.VectorsPerSize = 2;
  }
  std::vector<const programs::ProgramDef *> Suite = {&A, &B};

  //--- Fault-free baseline (fresh cache: misses + stores, no hits).
  fault::disarm();
  std::vector<std::string> Baseline;
  {
    TempDir D("baseline");
    PipelineOptions Opts;
    Opts.CacheDir = D.Path;
    PipelineStats Stats;
    std::vector<ProgramOutcome> Out = certifyPrograms(Suite, Opts, &Stats);
    ASSERT_EQ(Out.size(), 2u);
    for (const ProgramOutcome &O : Out) {
      ASSERT_TRUE(O.ok()) << O.Def->Name << ": " << O.ValidationError;
      Baseline.push_back(render(O));
    }
    ASSERT_EQ(Stats.Cache.Stores, 2u);
  }

  //--- The matrix: every site x {transient within / beyond the retry
  //    allowance, persistent, matched, probabilistic across seeds}.
  std::vector<std::string> Configs;
  for (unsigned I = 0; I < fault::NumSites; ++I) {
    std::string Site = fault::siteName(fault::Site(I));
    Configs.push_back(Site + ":transient:n=1");
    Configs.push_back(Site + ":transient:n=6");
    Configs.push_back(Site + ":persistent");
    Configs.push_back(Site + ":persistent:match=fnv1a");
    for (unsigned Seed = 1; Seed <= 4; ++Seed)
      Configs.push_back(Site + ":persistent:p=0.5:seed=" +
                        std::to_string(Seed));
  }
  // Multi-clause combinations.
  Configs.push_back("cache-read:persistent,cache-write:persistent");
  Configs.push_back("layer-entry:transient:n=6,sched-job:transient:n=1");
  Configs.push_back("interp-fuel:persistent:v=12,cache-write:transient:n=2");

  auto RunConfig = [&](const std::string &Spec, unsigned Jobs,
                       PipelineStats *Stats) {
    fault::ScopedFaults Armed(Spec);
    TempDir D("cfg");
    PipelineOptions Opts;
    Opts.CacheDir = D.Path;
    Opts.Jobs = Jobs;
    std::vector<ProgramOutcome> Out = certifyPrograms(Suite, Opts, Stats);
    std::vector<std::string> R;
    for (const ProgramOutcome &O : Out)
      R.push_back(render(O));
    return R;
  };

  for (size_t C = 0; C < Configs.size(); ++C) {
    const std::string &Spec = Configs[C];
    SCOPED_TRACE("fault spec: " + Spec);
    PipelineStats Stats;
    std::vector<std::string> R;
    std::vector<ProgramOutcome> Out;
    {
      fault::ScopedFaults Armed(Spec);
      TempDir D("serial");
      PipelineOptions Opts;
      Opts.CacheDir = D.Path;
      Out = certifyPrograms(Suite, Opts, &Stats);
    }
    ASSERT_EQ(Out.size(), 2u);
    unsigned EligibleStores = 0;
    for (size_t I = 0; I < Out.size(); ++I) {
      const ProgramOutcome &O = Out[I];
      R.push_back(render(O));
      if (O.ok() && !O.anyDegraded() && !O.CacheHit)
        ++EligibleStores;
      if (R[I] == Baseline[I])
        continue; // (a) the injection was absorbed or missed this program.
      // (b) otherwise the outcome must NAME the injection: the word
      // "injected" plus one of the armed sites, somewhere in the render
      // (fault note, validation error, compile error, or degraded note).
      EXPECT_NE(R[I].find("injected"), std::string::npos)
          << O.Def->Name << "\n" << R[I];
      bool AnySite = false;
      for (const std::string &S : sitesOf(Spec))
        AnySite = AnySite || R[I].find(S) != std::string::npos;
      EXPECT_TRUE(AnySite) << O.Def->Name << "\n" << R[I];
    }
    // Degraded or failed verdicts are never cached. (Successful stores can
    // be *lower* than eligible only when the write path itself is under
    // injection.)
    EXPECT_LE(Stats.Cache.Stores, EligibleStores);
    if (Spec.find("cache-write") == std::string::npos) {
      EXPECT_EQ(Stats.Cache.Stores, EligibleStores);
    }

    // A slice of the matrix re-runs at width 4: injection outcomes are
    // keyed by (site, key) ordinals, not thread interleaving, so the
    // parallel run renders byte-identically.
    if (C % 3 == 0) {
      std::vector<std::string> Par = RunConfig(Spec, 4, nullptr);
      ASSERT_EQ(Par.size(), R.size());
      for (size_t I = 0; I < R.size(); ++I)
        EXPECT_EQ(Par[I], R[I]) << "width divergence under " << Spec;
    }
  }
}

} // namespace
