//===- cert/Rederive.h - Independent certificate re-derivation --*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The independent checker behind relc-check. Given a certificate and the
// (model, fnspec, code) triple it claims to be about, `Rederive::check`
// re-derives every hash in the certificate from scratch:
//
//   - the content key is recomputed with cert::contentKey, so a stale or
//     tampered certificate is pinned before any symbolic work;
//   - the model is re-evaluated binding by binding and the command tree
//     re-executed, both into a fresh tv::TermGraph — the same interning
//     normalizer the producer used, but *only* the normalizer: no TV
//     driver, no solver search, no matching heuristics;
//   - where the producer *searched* for a bijection between loop-carried
//     locals and the model's carried positions, the checker *replays* the
//     certificate's recorded witness and verifies the guard/step/region
//     equations deterministically. A wrong witness cannot be patched over:
//     the equations simply fail to intern equal.
//
// The re-derived trace (binding hashes, loop summaries, output channels)
// must then equal the certificate's records exactly. This is the de Bruijn
// criterion applied to translation validation: the ~1300-line searching
// validator is audited by this much smaller deterministic replayer, and a
// certificate is only as good as what the replayer can confirm.
//
// Trusted base of an accept: cert::contentKey, the TermGraph normalization
// rules (tv/Term.cpp), the two symbolic evaluators below, and the ABI
// digest (analysis::makeAbiInfo). Explicitly NOT trusted: tv/Tv.cpp.
// relc-check's link line is CI-audited to contain no TV-driver symbols.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CERT_REDERIVE_H
#define RELC_CERT_REDERIVE_H

#include "cert/Cert.h"

namespace relc {
namespace cert {

class Rederive {
public:
  /// Checks \p C against the triple (\p Model + \p Hints, \p Spec,
  /// \p Code). Accepts iff every re-derived fact matches the certificate;
  /// otherwise rejects with a named reason (see cert::Reject). Never
  /// throws: a program outside the modeled fragment rejects as
  /// `rederivation-failed` (such programs cannot carry a proved
  /// certificate in the first place).
  static CheckResult check(const Certificate &C, const ir::SourceFn &Model,
                           const EntryFacts &Hints, const sep::FnSpec &Spec,
                           const bedrock::Function &Code);
};

} // namespace cert
} // namespace relc

#endif // RELC_CERT_REDERIVE_H
