//===- core/rules/LoopRules.cpp - Iteration patterns ------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The loop lemmas, each paired with §3.4.2's invariant inference: the
// invariant template is computed from the symbolic state (targets →
// scalar/pointer classification → abstraction → closure), the body is
// compiled against the abstracted state (the "state at an arbitrary
// iteration"), and the instantiation in terms of partial executions of the
// source combinator is recorded in the derivation for the validator.
//
//===----------------------------------------------------------------------===//

#include "core/rules/Rules.h"
#include "core/rules/RulesCommon.h"

namespace relc {
namespace core {

using bedrock::CmdPtr;
using sep::HeapClause;
using sep::SymVal;
using sep::TargetSlot;
using solver::lc;

namespace {

/// Shared plumbing: looks up the array clause, its pointer local and a
/// length local for a map/fold loop over source array \p Array.
struct ArrayLoopParts {
  int ClauseIdx;
  HeapClause Clause;
  std::string PtrLocal;
  std::string LenLocal;
};

Result<ArrayLoopParts> arrayLoopParts(CompileCtx &Ctx,
                                      const std::string &Array) {
  Result<int> ClauseIdx = Ctx.requireClause(Array, HeapClause::Kind::Array);
  if (!ClauseIdx)
    return ClauseIdx.takeError();
  Result<std::string> Ptr = Ctx.requirePtrLocal(*ClauseIdx);
  if (!Ptr)
    return Ptr.takeError();
  Result<std::string> Len =
      Ctx.requireLenLocal(Ctx.State.Heap[*ClauseIdx].Len);
  if (!Len)
    return Len.takeError();
  return ArrayLoopParts{*ClauseIdx, Ctx.State.Heap[*ClauseIdx], *Ptr, *Len};
}

/// Binds a fresh loop-index local with facts Lo ≤ i < Hi.
std::string bindIndex(CompileCtx &Ctx, const std::string &Name,
                      const solver::LinTerm &Lo, const solver::LinTerm &Hi) {
  SymVal I = SymVal::sym(Ctx.State.freshSym(Name + "@body"));
  Ctx.State.Facts.addLe(Lo, I.term(), "loop index lower bound");
  Ctx.State.Facts.addLt(I.term(), Hi, "loop index upper bound");
  Ctx.State.Facts.addGe0(I.term(), "word is nonnegative");
  Ctx.State.Locals[Name] = TargetSlot::scalar(I, ir::Ty::Word);
  return Name;
}

//===----------------------------------------------------------------------===//
// ListArray.map → in-place for loop.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: lemma-map-inplace
/// compile_map_inplace: `let/n a := ListArray.map f a` becomes
///
///   i = 0; while (i < len) { x = load(a + i·sz); store(a + i·sz) = f(x);
///                            i = i + 1 }
///
/// Intermediate states are exposed as `map f (firstn i a0) ++ skipn i a0`
/// (the paper's optimally-readable form). This is the lemma behind the
/// upstr walkthrough of §3.2: transformations 2 (map as loop) and 3
/// (mutation) both come from it.
class MapRule : public StmtRule {
public:
  std::string name() const override { return "compile_map_inplace"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::ListMap};
    P.NameDir = GoalPattern::NameDirection::InPlace;
    P.SideConds = {"param-not-live-local", "invariant-inferable"};
    P.SubGoals = GoalPattern::Emits::Expr;
    return P;
  }

  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::ListMap>(B.Bound.get()) && B.Names.size() == 1;
  }

  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *M = cast<ir::ListMap>(B.Bound.get());
    if (B.Names[0] != M->array())
      return Error("unsolved goal: map result bound to '" + B.Names[0] +
                   "' but the array is '" + M->array() +
                   "'; rebind under the same name for the in-place lemma");
    Result<ArrayLoopParts> Parts = arrayLoopParts(Ctx, M->array());
    if (!Parts)
      return Parts.takeError();
    if (Ctx.State.Locals.count(M->param()))
      return Error("map parameter '" + M->param() +
                   "' collides with a live local; rename it");

    // Invariant inference: the single target is the array (pointer).
    Result<LoopInvariant> Inv = inferInvariant(Ctx, {M->array()}, {});
    if (!Inv)
      return Inv.takeError();
    D.Notes.push_back("invariant template: " + Inv->Template);
    D.Notes.push_back("instantiation: " + M->array() + " ↦ map f (firstn i " +
                      M->array() + "0) ++ skipn i " + M->array() + "0");

    StateSnapshot Snap = StateSnapshot::take(Ctx.State);

    // Abstract state for the body: arbitrary iteration i, element x.
    std::string Idx = Ctx.State.freshLocal("i");
    bindIndex(Ctx, Idx, lc(0), Parts->Clause.Len);
    ir::Ty EltTy =
        Parts->Clause.Elt == ir::EltKind::U8 ? ir::Ty::Byte : ir::Ty::Word;
    SymVal EltV = freshTypedSym(Ctx.State, M->param(), EltTy);
    Ctx.State.Locals[M->param()] = TargetSlot::scalar(EltV, EltTy);

    DerivNode &BodyD = D.child("map_body", "fun " + M->param() + " => " +
                                               M->body()->str());
    Result<CompiledExpr> BodyCE =
        Ctx.exprs().compileTyped(*M->body(), EltTy, BodyD);
    if (!BodyCE)
      return BodyCE.takeError().note("in map body");

    Snap.restore(Ctx.State);

    bedrock::ExprPtr Addr = scaledAddress(bedrock::var(Parts->PtrLocal),
                                          bedrock::var(Idx),
                                          Parts->Clause.Elt);
    std::vector<CmdPtr> LoopBody;
    LoopBody.push_back(bedrock::set(
        M->param(), bedrock::load(accessSize(Parts->Clause.Elt), Addr)));
    LoopBody.insert(LoopBody.end(), BodyCE->Pre.begin(), BodyCE->Pre.end());
    LoopBody.push_back(bedrock::store(accessSize(Parts->Clause.Elt), Addr,
                                      BodyCE->E));
    LoopBody.push_back(bedrock::set(
        Idx, bedrock::add(bedrock::var(Idx), bedrock::lit(1))));

    CmdPtr Loop = bedrock::seq(
        bedrock::set(Idx, bedrock::lit(0)),
        bedrock::whileLoop(bedrock::bin(bedrock::BinOp::LtU,
                                        bedrock::var(Idx),
                                        bedrock::var(Parts->LenLocal)),
                           bedrock::seqAll(std::move(LoopBody))));

    Ctx.noteFeature("Loops");
    Ctx.noteFeature("Mutation");
    Ctx.noteFeature("Arrays");

    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    return bedrock::seq(Loop, Rest.take());
  }
};
// RELC-SECTION-END: lemma-map-inplace

//===----------------------------------------------------------------------===//
// List.fold_left → accumulator loop.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: lemma-fold
/// compile_fold: `let/n h := fold_left f a init` becomes an accumulator
/// register updated in a for loop; intermediate states expose
/// `fold_left f (firstn i a0) init`.
class FoldRule : public StmtRule {
public:
  std::string name() const override { return "compile_fold"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::ListFold};
    P.SideConds = {"params-not-live-locals", "invariant-inferable"};
    P.SubGoals = GoalPattern::Emits::Expr;
    return P;
  }

  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::ListFold>(B.Bound.get()) && B.Names.size() == 1;
  }

  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *F = cast<ir::ListFold>(B.Bound.get());
    const std::string &Name = B.Names[0];
    Result<ArrayLoopParts> Parts = arrayLoopParts(Ctx, F->array());
    if (!Parts)
      return Parts.takeError();
    if (Ctx.State.Locals.count(F->eltParam()))
      return Error("fold element parameter '" + F->eltParam() +
                   "' collides with a live local; rename it");
    if (F->accParam() != Name && Ctx.State.Locals.count(F->accParam()))
      return Error("fold accumulator parameter '" + F->accParam() +
                   "' collides with a live local; rename it");

    Result<CompiledExpr> Init = Ctx.exprs().compile(*F->init(), D);
    if (!Init)
      return Init.takeError().note("in fold initializer");

    Result<LoopInvariant> Inv =
        inferInvariant(Ctx, {F->accParam()},
                       {{F->accParam(), Init->Type}});
    if (!Inv)
      return Inv.takeError();
    D.Notes.push_back("invariant template: " + Inv->Template);
    D.Notes.push_back("instantiation: " + F->accParam() +
                      " ↦ fold_left f (firstn i " + F->array() + "0) init");

    std::vector<CmdPtr> Cmds = Init->Pre;
    Cmds.push_back(bedrock::set(F->accParam(), Init->E));
    Ctx.State.Locals[F->accParam()] =
        TargetSlot::scalar(Init->Val, Init->Type);

    StateSnapshot Snap = StateSnapshot::take(Ctx.State);

    abstractScalars(Ctx, *Inv, "body");
    std::string Idx = Ctx.State.freshLocal("i");
    bindIndex(Ctx, Idx, lc(0), Parts->Clause.Len);
    ir::Ty EltTy =
        Parts->Clause.Elt == ir::EltKind::U8 ? ir::Ty::Byte : ir::Ty::Word;
    SymVal EltV = freshTypedSym(Ctx.State, F->eltParam(), EltTy);
    Ctx.State.Locals[F->eltParam()] = TargetSlot::scalar(EltV, EltTy);

    DerivNode &BodyD =
        D.child("fold_body", "fun " + F->accParam() + " " + F->eltParam() +
                                 " => " + F->body()->str());
    Result<CompiledExpr> BodyCE = Ctx.exprs().compile(*F->body(), BodyD);
    if (!BodyCE)
      return BodyCE.takeError().note("in fold body");
    if (BodyCE->Type != Init->Type)
      return Error("fold body type differs from accumulator type");

    Snap.restore(Ctx.State);

    bedrock::ExprPtr Addr = scaledAddress(bedrock::var(Parts->PtrLocal),
                                          bedrock::var(Idx),
                                          Parts->Clause.Elt);
    std::vector<CmdPtr> LoopBody;
    LoopBody.push_back(bedrock::set(
        F->eltParam(), bedrock::load(accessSize(Parts->Clause.Elt), Addr)));
    LoopBody.insert(LoopBody.end(), BodyCE->Pre.begin(), BodyCE->Pre.end());
    LoopBody.push_back(bedrock::set(F->accParam(), BodyCE->E));
    LoopBody.push_back(bedrock::set(
        Idx, bedrock::add(bedrock::var(Idx), bedrock::lit(1))));

    Cmds.push_back(bedrock::seq(
        bedrock::set(Idx, bedrock::lit(0)),
        bedrock::whileLoop(bedrock::bin(bedrock::BinOp::LtU,
                                        bedrock::var(Idx),
                                        bedrock::var(Parts->LenLocal)),
                           bedrock::seqAll(std::move(LoopBody)))));

    // After the loop the accumulator local holds the fold result: rebind it
    // (and the target name, when different) to a fresh "final" symbol.
    SymVal FinalV = freshTypedSym(Ctx.State, Name + "@post", Init->Type);
    Ctx.State.Locals[F->accParam()] =
        TargetSlot::scalar(FinalV, Init->Type);
    if (F->accParam() != Name) {
      Cmds.push_back(bedrock::set(Name, bedrock::var(F->accParam())));
      Ctx.State.Locals[Name] = TargetSlot::scalar(FinalV, Init->Type);
    }

    Ctx.noteFeature("Loops");
    Ctx.noteFeature("Arrays");

    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-fold

//===----------------------------------------------------------------------===//
// fold_break → accumulator loop with early exit.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: lemma-fold-break
/// compile_fold_break: `let/n h := fold_break f a init brk` becomes
///
///   h = init; i = 0;
///   while ((i < len) & !brk(h)) { x = load(a + i·sz); h = f(h, x);
///                                 i = i + 1 }
///
/// — the early-exit variant of compile_fold ("maps and folds, with and
/// without early exits"). The exit predicate is evaluated on the live
/// accumulator register; its side conditions are discharged against the
/// abstracted iteration state (so they hold at every loop head).
class FoldBreakRule : public StmtRule {
public:
  std::string name() const override { return "compile_fold_break"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::FoldBreak};
    P.NameDir = GoalPattern::NameDirection::InPlace;
    P.SideConds = {"params-not-live-locals", "invariant-inferable"};
    P.SubGoals = GoalPattern::Emits::Expr;
    return P;
  }

  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::FoldBreak>(B.Bound.get()) && B.Names.size() == 1;
  }

  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *F = cast<ir::FoldBreak>(B.Bound.get());
    const std::string &Name = B.Names[0];
    if (F->accParam() != Name)
      return Error("unsolved goal: fold_break accumulator '" +
                   F->accParam() + "' must be bound under its own name "
                   "(got '" + Name + "'); compilation is name-directed");
    Result<ArrayLoopParts> Parts = arrayLoopParts(Ctx, F->array());
    if (!Parts)
      return Parts.takeError();
    if (Ctx.State.Locals.count(F->eltParam()))
      return Error("fold_break element parameter '" + F->eltParam() +
                   "' collides with a live local; rename it");

    Result<CompiledExpr> Init = Ctx.exprs().compile(*F->init(), D);
    if (!Init)
      return Init.takeError().note("in fold_break initializer");

    Result<LoopInvariant> Inv =
        inferInvariant(Ctx, {Name}, {{Name, Init->Type}});
    if (!Inv)
      return Inv.takeError();
    D.Notes.push_back("invariant template: " + Inv->Template);
    D.Notes.push_back("instantiation: " + Name +
                      " ↦ fold_break f (firstn i " + F->array() +
                      "0) init, stopped at the first brk prefix");

    std::vector<CmdPtr> Cmds = Init->Pre;
    Cmds.push_back(bedrock::set(Name, Init->E));
    Ctx.State.Locals[Name] = TargetSlot::scalar(Init->Val, Init->Type);

    StateSnapshot Snap = StateSnapshot::take(Ctx.State);

    abstractScalars(Ctx, *Inv, "body");
    std::string Idx = Ctx.State.freshLocal("i");
    bindIndex(Ctx, Idx, lc(0), Parts->Clause.Len);
    ir::Ty EltTy =
        Parts->Clause.Elt == ir::EltKind::U8 ? ir::Ty::Byte : ir::Ty::Word;
    SymVal EltV = freshTypedSym(Ctx.State, F->eltParam(), EltTy);
    Ctx.State.Locals[F->eltParam()] = TargetSlot::scalar(EltV, EltTy);

    // The exit predicate sees only the accumulator; compile it under the
    // abstracted state. It must be a pure target expression.
    DerivNode &BrkD = D.child("fold_break_cond", F->breakCond()->str());
    Result<CompiledExpr> Brk =
        Ctx.exprs().compileTyped(*F->breakCond(), ir::Ty::Bool, BrkD);
    if (!Brk)
      return Brk.takeError().note("in fold_break exit predicate");
    if (!Brk->Pre.empty())
      return Error("unsolved goal: fold_break exit predicates must compile "
                   "to pure target expressions");

    DerivNode &BodyD =
        D.child("fold_body", "fun " + F->accParam() + " " + F->eltParam() +
                                 " => " + F->body()->str());
    Result<CompiledExpr> BodyCE = Ctx.exprs().compile(*F->body(), BodyD);
    if (!BodyCE)
      return BodyCE.takeError().note("in fold_break body");
    if (BodyCE->Type != Init->Type)
      return Error("fold_break body type differs from accumulator type");

    Snap.restore(Ctx.State);

    bedrock::ExprPtr Addr = scaledAddress(bedrock::var(Parts->PtrLocal),
                                          bedrock::var(Idx),
                                          Parts->Clause.Elt);
    std::vector<CmdPtr> LoopBody;
    LoopBody.push_back(bedrock::set(
        F->eltParam(), bedrock::load(accessSize(Parts->Clause.Elt), Addr)));
    LoopBody.insert(LoopBody.end(), BodyCE->Pre.begin(), BodyCE->Pre.end());
    LoopBody.push_back(bedrock::set(Name, BodyCE->E));
    LoopBody.push_back(bedrock::set(
        Idx, bedrock::add(bedrock::var(Idx), bedrock::lit(1))));

    // (i < len) & (brk == 0): both operands are 0/1 words, so bitwise And
    // is conjunction.
    bedrock::ExprPtr Cond = bedrock::bin(
        bedrock::BinOp::And,
        bedrock::bin(bedrock::BinOp::LtU, bedrock::var(Idx),
                     bedrock::var(Parts->LenLocal)),
        bedrock::bin(bedrock::BinOp::Eq, Brk->E, bedrock::lit(0)));
    Cmds.push_back(bedrock::seq(
        bedrock::set(Idx, bedrock::lit(0)),
        bedrock::whileLoop(Cond, bedrock::seqAll(std::move(LoopBody)))));

    SymVal FinalV = freshTypedSym(Ctx.State, Name + "@post", Init->Type);
    Ctx.State.Locals[Name] = TargetSlot::scalar(FinalV, Init->Type);

    Ctx.noteFeature("Loops");
    Ctx.noteFeature("Arrays");

    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-fold-break

//===----------------------------------------------------------------------===//
// ranged_for → counted loop with general accumulators.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: lemma-ranged-for
/// compile_ranged_for: `let/n (accs..) := ranged_for lo hi body accs0`
/// becomes a counted while loop threading the accumulators (scalars in
/// registers; arrays in place). The body is a whole sub-program, compiled
/// against the abstracted iteration state; intermediate states expose the
/// iteration prefix `ranged_for lo i body accs0`.
class RangeRule : public StmtRule {
public:
  std::string name() const override { return "compile_ranged_for"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::RangeFold};
    P.MinNames = 0;
    P.MaxNames = GoalPattern::kAnyArity;
    P.SideConds = {"accs-match-bound-names", "invariant-inferable"};
    P.SubGoals = GoalPattern::Emits::Prog;
    return P;
  }

  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::RangeFold>(B.Bound.get());
  }

  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *R = cast<ir::RangeFold>(B.Bound.get());
    if (Ctx.State.Locals.count(R->idxName()))
      return Error("loop index '" + R->idxName() +
                   "' collides with a live local; rename it");
    std::set<std::string> Allowed{R->idxName()};
    for (const ir::AccInit &A : R->accs())
      Allowed.insert(A.Name);
    Status NoColl = Ctx.checkNoCollisions(*R->body(), Allowed);
    if (!NoColl)
      return NoColl.takeError();

    Result<CompiledExpr> Lo =
        Ctx.exprs().compileTyped(*R->lo(), ir::Ty::Word, D);
    if (!Lo)
      return Lo.takeError().note("in loop lower bound");
    Result<CompiledExpr> Hi =
        Ctx.exprs().compileTyped(*R->hi(), ir::Ty::Word, D);
    if (!Hi)
      return Hi.takeError().note("in loop upper bound");

    std::vector<CmdPtr> Cmds = Lo->Pre;
    Cmds.insert(Cmds.end(), Hi->Pre.begin(), Hi->Pre.end());
    // The upper bound is evaluated once: materialize it into a
    // compiler-chosen local the body cannot touch.
    std::string HiLocal = Ctx.State.freshLocal("hi");
    Cmds.push_back(bedrock::set(HiLocal, Hi->E));
    Ctx.State.Locals[HiLocal] = TargetSlot::scalar(Hi->Val, ir::Ty::Word);

    std::map<std::string, ir::Ty> NewScalarTys;
    Result<std::vector<CmdPtr>> AccCmds =
        emitAccInits(Ctx, R->accs(), B.Names, &NewScalarTys, D);
    if (!AccCmds)
      return AccCmds.takeError();
    Cmds.insert(Cmds.end(), AccCmds->begin(), AccCmds->end());

    Result<LoopInvariant> Inv = inferInvariant(Ctx, B.Names, NewScalarTys);
    if (!Inv)
      return Inv.takeError();
    D.Notes.push_back("invariant template: " + Inv->Template);
    D.Notes.push_back(
        "instantiation: accs ↦ ranged_for " + R->lo()->str() + " i body accs0");

    StateSnapshot Snap = StateSnapshot::take(Ctx.State);

    abstractScalars(Ctx, *Inv, "body");
    bindIndex(Ctx, R->idxName(), Lo->Val.term(), Hi->Val.term());

    DerivNode &BodyD = D.child("ranged_for_body", R->body()->str());
    Result<CmdPtr> Body = Ctx.compileProg(
        *R->body(), accEndHandler(Inv->Targets, R->body()->returns()), BodyD);
    if (!Body)
      return Body.takeError().note("in ranged_for body");

    Snap.restore(Ctx.State);
    abstractScalars(Ctx, *Inv, "post");

    Cmds.push_back(bedrock::set(R->idxName(), Lo->E));
    CmdPtr Step = bedrock::set(
        R->idxName(),
        bedrock::add(bedrock::var(R->idxName()), bedrock::lit(1)));
    Cmds.push_back(bedrock::whileLoop(
        bedrock::bin(bedrock::BinOp::LtU, bedrock::var(R->idxName()),
                     bedrock::var(HiLocal)),
        bedrock::seq(Body.take(), Step)));

    // The index local is dead after the loop; drop it from the symbolic
    // state so later bindings may reuse the name.
    Ctx.State.Locals.erase(R->idxName());

    Ctx.noteFeature("Loops");

    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-ranged-for

//===----------------------------------------------------------------------===//
// while → general loop with a termination measure.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: lemma-while
/// compile_while: `let/n (accs..) := while cond accs0 body {measure m}`.
/// The condition is compiled against the abstracted iteration state, so
/// its side conditions hold at every iteration (entry included). Totality
/// comes from the declared measure, re-checked dynamically by validation —
/// the operational stand-in for Bedrock2 giving meaning only to
/// terminating loops (Box 2).
class WhileRule : public StmtRule {
public:
  std::string name() const override { return "compile_while"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::WhileComb};
    P.MinNames = 0;
    P.MaxNames = GoalPattern::kAnyArity;
    P.SideConds = {"accs-match-bound-names", "measure-bounds-iteration", "invariant-inferable"};
    P.SubGoals = GoalPattern::Emits::Prog;
    return P;
  }

  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::WhileComb>(B.Bound.get());
  }

  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *W = cast<ir::WhileComb>(B.Bound.get());
    std::set<std::string> Allowed;
    for (const ir::AccInit &A : W->accs())
      Allowed.insert(A.Name);
    Status NoColl = Ctx.checkNoCollisions(*W->body(), Allowed);
    if (!NoColl)
      return NoColl.takeError();

    std::map<std::string, ir::Ty> NewScalarTys;
    Result<std::vector<CmdPtr>> AccCmds =
        emitAccInits(Ctx, W->accs(), B.Names, &NewScalarTys, D);
    if (!AccCmds)
      return AccCmds.takeError();
    std::vector<CmdPtr> Cmds = AccCmds.take();

    Result<LoopInvariant> Inv = inferInvariant(Ctx, B.Names, NewScalarTys);
    if (!Inv)
      return Inv.takeError();
    D.Notes.push_back("invariant template: " + Inv->Template);
    D.Notes.push_back("totality: measure " + W->measure()->str() +
                      " strictly decreases (re-checked dynamically)");

    StateSnapshot Snap = StateSnapshot::take(Ctx.State);
    abstractScalars(Ctx, *Inv, "body");

    // Compile the guard against the abstracted state. Comparison-shaped
    // guards are compiled operand-wise so the guard fact (which holds
    // whenever the body runs) can be added to the body's fact database —
    // the loop analogue of CondRules' branch facts.
    DerivNode &CondD = D.child("while_cond", W->cond()->str());
    Result<CompiledExpr> Cond = [&]() -> Result<CompiledExpr> {
      const auto *Cmp = dyn_cast<ir::Bin>(W->cond());
      if (!Cmp || !ir::wordOpIsCompare(Cmp->op()))
        return Ctx.exprs().compileTyped(*W->cond(), ir::Ty::Bool, CondD);
      Result<CompiledExpr> L =
          Ctx.exprs().compileTyped(*Cmp->lhs(), ir::Ty::Word, CondD);
      if (!L)
        return L;
      Result<CompiledExpr> R =
          Ctx.exprs().compileTyped(*Cmp->rhs(), ir::Ty::Word, CondD);
      if (!R)
        return R;
      CompiledExpr Out;
      Out.Pre = L->Pre;
      Out.Pre.insert(Out.Pre.end(), R->Pre.begin(), R->Pre.end());
      Out.E = bedrock::bin(lowerWordOp(Cmp->op()), L->E, R->E);
      Out.Type = ir::Ty::Bool;
      Out.Val = freshTypedSym(Ctx.State, "cond", ir::Ty::Bool);
      solver::LinTerm A = L->Val.term(), B2 = R->Val.term();
      switch (Cmp->op()) {
      case ir::WordOp::LtU:
        Ctx.State.Facts.addLt(A, B2, "while guard: a < b");
        CondD.SideConds.push_back("body facts: " + A.str() + " < " +
                                  B2.str());
        break;
      case ir::WordOp::Ne:
        if (R->Val.IsConst && R->Val.K == 0) {
          Ctx.State.Facts.addLe(solver::lc(1), A, "while guard: a != 0");
          CondD.SideConds.push_back("body facts: 1 <= " + A.str());
        }
        break;
      case ir::WordOp::Eq:
        Ctx.State.Facts.addEq(A, B2, "while guard: a = b");
        break;
      default:
        break;
      }
      return Out;
    }();
    if (!Cond)
      return Cond.takeError().note("in while condition");
    if (!Cond->Pre.empty())
      return Error("unsolved goal: while conditions must compile to pure "
                   "target expressions (no statement preamble); hoist the "
                   "conditional into the loop body");

    DerivNode &BodyD = D.child("while_body", W->body()->str());
    Result<CmdPtr> Body = Ctx.compileProg(
        *W->body(), accEndHandler(Inv->Targets, W->body()->returns()), BodyD);
    if (!Body)
      return Body.takeError().note("in while body");

    Snap.restore(Ctx.State);
    abstractScalars(Ctx, *Inv, "post");

    Cmds.push_back(bedrock::whileLoop(Cond->E, Body.take()));

    Ctx.noteFeature("Loops");

    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-while

} // namespace

std::unique_ptr<StmtRule> makeMapRule() { return std::make_unique<MapRule>(); }
std::unique_ptr<StmtRule> makeFoldRule() {
  return std::make_unique<FoldRule>();
}
std::unique_ptr<StmtRule> makeFoldBreakRule() {
  return std::make_unique<FoldBreakRule>();
}
std::unique_ptr<StmtRule> makeRangeRule() {
  return std::make_unique<RangeRule>();
}
std::unique_ptr<StmtRule> makeWhileRule() {
  return std::make_unique<WhileRule>();
}

} // namespace core
} // namespace relc
