//===- tools/relc-gen.cpp - Generate C for the benchmark suite -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the pipeline: compiles every registered
// benchmark program with the relational compiler, replays and
// differentially certifies the derivations, and emits the certified C
// into an output directory (consumed by the Figure 2 bench at build
// time). With -print-bedrock or -print-deriv it dumps the intermediate
// artifacts instead.
//
// Every compiled program is additionally run through the static analyzer
// (relc::analysis); analysis errors fail the run even under -no-validate.
// -no-analyze disables this, -analysis-report prints the full per-program
// report including statistics and warnings.
//
// Every compiled program is also translation-validated (relc::tv): model
// and generated code are symbolically evaluated into one term graph and
// the outputs compared for all inputs. A refuted equivalence fails the
// run; the equivalence certificate is written next to the generated C as
// <name>.tv.json. -no-tv disables the layer, -tv-report prints each
// program's full match trace.
//
// Usage: relc-gen [-out <dir>] [-only <name>] [-print-bedrock]
//                 [-print-deriv] [-no-validate] [-no-analyze]
//                 [-analysis-report] [-no-tv] [-tv-report]
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "cgen/CEmit.h"
#include "programs/Programs.h"
#include "tv/Tv.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

using namespace relc;

static int usage() {
  std::fprintf(stderr,
               "usage: relc-gen [-out <dir>] [-only <name>] [-print-bedrock]"
               " [-print-deriv] [-no-validate] [-no-analyze]"
               " [-analysis-report] [-no-tv] [-tv-report]\n");
  return 2;
}

int main(int argc, char **argv) {
  std::string OutDir = "generated";
  std::string Only;
  bool PrintBedrock = false, PrintDeriv = false, Validate = true;
  bool Analyze = true, AnalysisReport = false;
  bool Tv = true, TvReport = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-out" && I + 1 < argc)
      OutDir = argv[++I];
    else if (A == "-only" && I + 1 < argc)
      Only = argv[++I];
    else if (A == "-print-bedrock")
      PrintBedrock = true;
    else if (A == "-print-deriv")
      PrintDeriv = true;
    else if (A == "-no-validate")
      Validate = false;
    else if (A == "-no-analyze" || A == "--no-analyze")
      Analyze = false;
    else if (A == "-analysis-report" || A == "--analysis-report")
      AnalysisReport = true;
    else if (A == "-no-tv" || A == "--no-tv")
      Tv = false;
    else if (A == "-tv-report" || A == "--tv-report")
      TvReport = true;
    else
      return usage();
  }

  std::error_code EC;
  std::filesystem::create_directories(OutDir, EC);
  if (EC) {
    std::fprintf(stderr, "cannot create output directory %s: %s\n",
                 OutDir.c_str(), EC.message().c_str());
    return 2;
  }

  std::string Header = cgen::cPrelude();
  bool AnyFailed = false;

  for (const programs::ProgramDef &P : programs::allPrograms()) {
    if (!Only.empty() && P.Name != Only)
      continue;

    Result<programs::CompiledProgram> C =
        programs::compileAndValidate(P, Validate);
    if (!C) {
      std::fprintf(stderr, "[%s] FAILED:\n%s\n", P.Name.c_str(),
                   C.error().str().c_str());
      AnyFailed = true;
      continue;
    }

    std::printf("[%s] ok: %u source bindings -> %u target statements, "
                "derivation of %u rule applications, %u side conditions%s\n",
                P.Name.c_str(), C->Result.SourceBindings,
                C->Result.EmittedStmts, C->Result.Proof->size(),
                C->Result.Proof->countSideConds(),
                Validate ? ", validated" : "");

    if (Analyze) {
      analysis::AnalysisReport R = analysis::analyzeProgram(
          C->Result.Fn, P.Spec, P.Model, P.Hints.EntryFacts);
      if (AnalysisReport) {
        std::printf("%s", R.str().c_str());
      } else {
        for (const analysis::Diagnostic &D : R.Diags)
          std::fprintf(stderr, "[%s] %s\n", P.Name.c_str(), D.str().c_str());
      }
      if (R.hasErrors()) {
        std::fprintf(stderr,
                     "[%s] FAILED: static analysis found %u error(s)\n",
                     P.Name.c_str(), R.numErrors());
        AnyFailed = true;
        continue;
      }
    }

    if (Tv) {
      tv::TvReport R = tv::validateTranslation(P.Model, P.Spec, C->Result.Fn,
                                               P.Hints.EntryFacts);
      if (TvReport)
        std::printf("%s", R.str().c_str());
      else
        std::printf("[%s] tv: %s (%zu loops, %u terms)\n", P.Name.c_str(),
                    tv::verdictName(R.TheVerdict), R.Loops.size(),
                    R.NumTerms);
      if (R.refuted()) {
        std::fprintf(stderr, "[%s] FAILED: translation validation refuted "
                             "the compilation:\n%s",
                     P.Name.c_str(), R.str().c_str());
        AnyFailed = true;
        continue;
      }
      std::ofstream Cert(OutDir + "/" + P.Name + ".tv.json");
      Cert << R.certificate();
    }

    if (PrintBedrock)
      std::printf("%s\n", C->Result.Fn.str().c_str());
    if (PrintDeriv)
      std::printf("%s\n", C->Result.Proof->str().c_str());

    cgen::CEmitOptions Opts;
    Opts.NamePrefix = "relc_";
    Result<std::string> CCode = cgen::emitFunction(C->Result.Fn, Opts);
    if (!CCode) {
      std::fprintf(stderr, "[%s] C emission failed: %s\n", P.Name.c_str(),
                   CCode.error().str().c_str());
      AnyFailed = true;
      continue;
    }

    std::string Path = OutDir + "/" + P.Name + ".c";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "[%s] cannot write %s\n", P.Name.c_str(),
                   Path.c_str());
      AnyFailed = true;
      continue;
    }
    Out << "/* Generated by relc (relational compilation); certified by\n"
           " * derivation replay and differential validation. Do not edit. */\n"
        << cgen::cPrelude() << *CCode;

    // Accumulate the aggregate header.
    const bedrock::Function &Fn = C->Result.Fn;
    Header += (Fn.Rets.empty() ? std::string("void") : "uintptr_t") +
              " relc_" + Fn.Name + "(";
    for (size_t I = 0; I < Fn.Args.size(); ++I)
      Header += std::string(I ? ", " : "") + "uintptr_t " + Fn.Args[I];
    Header += ");\n";
  }

  std::ofstream H(OutDir + "/relc_generated.h");
  H << "/* Generated by relc; aggregate declarations. */\n"
    << "#ifndef RELC_GENERATED_H\n#define RELC_GENERATED_H\n"
    << "#ifdef __cplusplus\nextern \"C\" {\n#endif\n"
    << Header << "#ifdef __cplusplus\n}\n#endif\n#endif\n";

  return AnyFailed ? 1 : 0;
}
