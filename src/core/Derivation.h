//===- core/Derivation.h - Compilation witnesses ----------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// A Derivation is the witness produced by a successful relational
// compilation: one node per rule application, recording the goal it
// discharged, the side conditions the solver proved, and any invariant
// templates inferred for control-flow constructs. It is the C++ stand-in
// for the Coq proof term of §2.2 ("we can use Coq's inspection facilities
// to see the proof term as it is being generated").
//
// The validator replays derivations independently of the search driver
// (src/validate/), which is what makes this translation validation rather
// than a trusted compiler.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CORE_DERIVATION_H
#define RELC_CORE_DERIVATION_H

#include <memory>
#include <string>
#include <vector>

namespace relc {
namespace core {

struct DerivNode {
  /// Rule (lemma) name, e.g. "compile_map_inplace".
  std::string Rule;

  /// The goal this node discharges, in printed-judgment form.
  std::string Goal;

  /// Side conditions discharged by the solver, printable ("i < len_s").
  std::vector<std::string> SideConds;

  /// Free-form notes: inferred invariant templates, lift annotations, etc.
  std::vector<std::string> Notes;

  std::vector<std::unique_ptr<DerivNode>> Children;

  DerivNode() = default;
  DerivNode(std::string Rule, std::string Goal)
      : Rule(std::move(Rule)), Goal(std::move(Goal)) {}

  /// Adds and returns a child node.
  DerivNode &child(std::string RuleName, std::string GoalText) {
    Children.push_back(
        std::make_unique<DerivNode>(std::move(RuleName), std::move(GoalText)));
    return *Children.back();
  }

  /// Number of rule applications in the tree.
  unsigned size() const {
    unsigned N = 1;
    for (const auto &C : Children)
      N += C->size();
    return N;
  }

  /// Total number of recorded side conditions.
  unsigned countSideConds() const {
    unsigned N = unsigned(SideConds.size());
    for (const auto &C : Children)
      N += C->countSideConds();
    return N;
  }

  /// Indented tree rendering.
  std::string str(unsigned Indent = 0) const;
};

} // namespace core
} // namespace relc

#endif // RELC_CORE_DERIVATION_H
