//===- tests/service/SupervisorTest.cpp - Crash-only worker supervision ----===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The crash-only certification contract (DESIGN.md §4.12), end to end: a
// daemon in worker mode serves byte-identical certificates through
// forked, supervised workers; a worker killed by signal, OOMed, or
// hung past the wall deadline costs one retry, never the daemon; jobs
// that cannot complete degrade to *named* worker-* statuses that are
// never memoized; shutdown drains in-flight jobs gracefully; and the
// probe-then-unlink socket race is closed by the flock on the `.lock`
// sibling. The chaos soak at the bottom runs hundreds of concurrent
// requests under injected SIGKILL/SIGSEGV faults and then audits a
// surviving certificate with the independent checker — supervision is
// trusted for availability only, never for certificate content.
//
//===----------------------------------------------------------------------===//

#include "cert/Reader.h"
#include "cert/Rederive.h"
#include "core/Compiler.h"
#include "programs/Programs.h"
#include "service/Client.h"
#include "service/Server.h"
#include "service/Service.h"
#include "service/Supervisor.h"
#include "support/Backoff.h"
#include "support/Fault.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

// fork() is unsupported under ThreadSanitizer; detect it for both
// compilers (clang: __has_feature, gcc: __SANITIZE_THREAD__).
#if defined(__SANITIZE_THREAD__)
#define RELC_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RELC_UNDER_TSAN 1
#endif
#endif
#ifndef RELC_UNDER_TSAN
#define RELC_UNDER_TSAN 0
#endif

// RLIMIT_AS is incompatible with AddressSanitizer's shadow reservation,
// so the real-OOM test needs plain builds.
#if defined(__SANITIZE_ADDRESS__)
#define RELC_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RELC_UNDER_ASAN 1
#endif
#endif
#ifndef RELC_UNDER_ASAN
#define RELC_UNDER_ASAN 0
#endif

using namespace relc;
using namespace relc::service;

namespace {

#ifndef _WIN32

struct TempPaths {
  std::string Sock;
  std::string CacheDir;
  explicit TempPaths(const std::string &Tag) {
    std::string Base =
        "/tmp/relc-sup-" + Tag + "-" + std::to_string(uint64_t(::getpid()));
    Sock = Base + ".sock";
    CacheDir = Base + ".cache";
    std::filesystem::remove(Sock);
    std::filesystem::remove(Sock + ".lock");
    std::filesystem::remove_all(CacheDir);
  }
  ~TempPaths() {
    std::filesystem::remove(Sock);
    std::filesystem::remove(Sock + ".lock");
    std::filesystem::remove_all(CacheDir);
  }
};

wire::Message certifyMsg(std::vector<std::string> Programs,
                         uint64_t TvStepBudget = 0) {
  wire::Message M;
  M.TheKind = wire::Kind::CertifyRequest;
  M.Certify.Programs = std::move(Programs);
  M.Certify.TvStepBudget = TvStepBudget;
  return M;
}

/// A worker-mode server with tight-but-safe supervision knobs.
ServerOptions workerOptions(const TempPaths &P, unsigned Workers,
                            unsigned Retries, unsigned JobWallMs = 60000) {
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  SO.CacheDir = P.CacheDir;
  SO.Workers = Workers;
  SO.WorkerRetries = Retries;
  SO.JobWallMs = JobWallMs;
  SO.WorkerBackoffBaseMs = 5; // Fast retries: keep the suite quick.
  SO.WorkerBackoffCapMs = 40;
  return SO;
}

//===----------------------------------------------------------------------===//
// Loss classification: pure unit pins, no processes involved.
//===----------------------------------------------------------------------===//

/// Linux wait-status encodings (what wait4 actually reports).
int exitedStatus(int Code) { return (Code & 0xff) << 8; }
int signaledStatus(int Sig) { return Sig & 0x7f; }

TEST(SupervisorTest, LossNamesArePinned) {
  EXPECT_STREQ(lossName(Loss::Crashed), "worker-crashed");
  EXPECT_STREQ(lossName(Loss::Oom), "worker-oom");
  EXPECT_STREQ(lossName(Loss::Timeout), "worker-timeout");
}

TEST(SupervisorTest, ClassifyExitCoversEveryLossShape) {
  std::string D;

  // Death by signal: worker-crashed, naming the signal.
  EXPECT_EQ(classifyExit(signaledStatus(SIGSEGV), false, &D), Loss::Crashed);
  EXPECT_NE(D.find("signal 11"), std::string::npos) << D;
  EXPECT_EQ(classifyExit(signaledStatus(SIGKILL), false, &D), Loss::Crashed);
  EXPECT_NE(D.find("signal 9"), std::string::npos) << D;

  // The OOM exit code: worker-oom.
  EXPECT_EQ(classifyExit(exitedStatus(kWorkerOomExit), false, &D), Loss::Oom);

  // Any other unexpected exit: worker-crashed with the code.
  EXPECT_EQ(classifyExit(exitedStatus(5), false, &D), Loss::Crashed);
  EXPECT_NE(D.find("5"), std::string::npos) << D;

  // RLIMIT_CPU delivers SIGXCPU: a runaway loop is a timeout, not a
  // crash.
  EXPECT_EQ(classifyExit(signaledStatus(SIGXCPU), false, &D), Loss::Timeout);

  // A kill the supervisor itself delivered after the wall deadline is a
  // timeout regardless of how the death reads.
  EXPECT_EQ(classifyExit(signaledStatus(SIGKILL), true, &D), Loss::Timeout);
  EXPECT_NE(D.find("deadline"), std::string::npos) << D;
}

//===----------------------------------------------------------------------===//
// Everything below forks workers.
//===----------------------------------------------------------------------===//

#if !RELC_UNDER_TSAN

TEST(SupervisorTest, WorkerModeServesByteIdenticalCertificates) {
  TempPaths P("basic");
  ServerOptions SO = workerOptions(P, 2, 2);
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));

  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(R->Reply.Exit, 0);
  ASSERT_EQ(R->Reply.Programs.size(), 1u);
  EXPECT_EQ(R->Reply.Programs[0].Status, uint8_t(ProgramStatus::Certified));
  EXPECT_EQ(R->Reply.Programs[0].TvVerdict, "proved");

  // The whole point of routing both paths through runCertify: a worker
  // answer is byte-identical to the in-process (relc-gen) artifacts.
  Request Direct;
  Direct.Programs = {"fnv1a"};
  Direct.LayerTimeoutMs = SO.DefaultLayerTimeoutMs;
  Response DirectResp = certify(Direct);
  ASSERT_EQ(DirectResp.Programs.size(), 1u);
  EXPECT_EQ(R->Reply.Programs[0].CertJson, DirectResp.Programs[0].CertJson);
  EXPECT_EQ(R->Reply.Programs[0].CertBin, DirectResp.Programs[0].CertBin);

  // Worker-side cache traffic rides the reply into the daemon's stats.
  wire::Stats S = Srv.stats();
  EXPECT_EQ(S.Workers, 2u);
  EXPECT_GE(S.WorkerSpawns, 2u); // The pool pre-forks.
  EXPECT_EQ(S.WorkerCrashes, 0u);
  EXPECT_GE(S.CacheStores, 1u); // The cold run stored, inside the worker.

  // A repeat is memoized parent-side — no worker round trip at all.
  Result<wire::Message> Warm = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(Warm));
  ASSERT_EQ(Warm->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(Warm->Reply.Programs[0].From, uint8_t(Provenance::Memo));
  EXPECT_EQ(Warm->Reply.Programs[0].CertBin, R->Reply.Programs[0].CertBin);

  Srv.requestStop();
  Srv.wait();
}

TEST(SupervisorTest, InjectedCrashIsNamedAndNeverMemoized) {
  TempPaths P("crash");
  // RetryLimit 0: fail fast with the *specific* loss name.
  ServerOptions SO = workerOptions(P, 1, 0);
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));

  {
    fault::ScopedFaults Faults("svc-worker-crash:persistent");
    Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
    ASSERT_TRUE(bool(R));
    ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
    EXPECT_EQ(R->Error.Reason, "worker-crashed");
    EXPECT_NE(R->Error.Detail.find("signal 9"), std::string::npos)
        << R->Error.Detail;
    // The detail names the job so crash reports and logs correlate.
    EXPECT_NE(R->Error.Detail.find("fnv1a"), std::string::npos)
        << R->Error.Detail;
  }
  wire::Stats S = Srv.stats();
  EXPECT_EQ(S.WorkerCrashes, 1u);
  EXPECT_EQ(S.WorkerDegraded, 1u);
  EXPECT_EQ(S.WorkerRetries, 0u);
  EXPECT_EQ(S.CacheStores, 0u); // The crashed job certified nothing.

  // Disarmed, the same request certifies live — the degraded reply left
  // no residue in the memo, and the pool respawned the lost worker.
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(R->Reply.Exit, 0);
  EXPECT_EQ(R->Reply.Programs[0].From, uint8_t(Provenance::Live));
  EXPECT_EQ(Srv.stats().MemoHits, 0u);
  EXPECT_GE(Srv.stats().WorkerRestarts, 1u);

  Srv.requestStop();
  Srv.wait();
}

TEST(SupervisorTest, SigsegvPayloadIsDeliveredAndNamed) {
  TempPaths P("segv");
  ServerOptions SO = workerOptions(P, 1, 0);
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));
  fault::ScopedFaults Faults("svc-worker-crash:persistent:v=11");
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(R->Error.Reason, "worker-crashed");
#if RELC_UNDER_ASAN
  // ASan installs its own SIGSEGV handler in the worker: the delivered
  // signal is intercepted, a report is printed, and the process _exits
  // with ASan's exitcode (1) instead of dying by the signal. The loss is
  // still classified worker-crashed; only the kernel signature differs.
  EXPECT_NE(R->Error.Detail.find("exit code 1"), std::string::npos)
      << R->Error.Detail;
#else
  EXPECT_NE(R->Error.Detail.find("signal 11"), std::string::npos)
      << R->Error.Detail;
#endif
  Srv.requestStop();
  Srv.wait();
}

TEST(SupervisorTest, HangIsNamedWorkerTimeout) {
  TempPaths P("hang");
  ServerOptions SO = workerOptions(P, 1, 0, /*JobWallMs=*/400);
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));
  {
    fault::ScopedFaults Faults("svc-worker-hang:persistent");
    Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
    ASSERT_TRUE(bool(R));
    ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
    EXPECT_EQ(R->Error.Reason, "worker-timeout");
    EXPECT_NE(R->Error.Detail.find("deadline"), std::string::npos)
        << R->Error.Detail;
  }
  wire::Stats S = Srv.stats();
  EXPECT_EQ(S.WorkerTimeouts, 1u);
  EXPECT_EQ(S.WorkerDegraded, 1u);
  // The daemon survived its hung worker and still serves.
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(R->Reply.Exit, 0);
  Srv.requestStop();
  Srv.wait();
}

TEST(SupervisorTest, TransientCrashIsAbsorbedByRetries) {
  TempPaths P("transient");
  ServerOptions SO = workerOptions(P, 1, 2);
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));

  fault::ScopedFaults Faults("svc-worker-crash:transient:n=1");
  // The first attempt loses its worker; the retry completes the job —
  // the client sees a normal, full-strength reply, not a degradation.
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(R->Reply.Exit, 0);
  EXPECT_EQ(R->Reply.Programs[0].Status, uint8_t(ProgramStatus::Certified));

  wire::Stats S = Srv.stats();
  EXPECT_EQ(S.WorkerCrashes, 1u);
  EXPECT_EQ(S.WorkerRetries, 1u);
  EXPECT_GE(S.WorkerRestarts, 1u);
  EXPECT_EQ(S.WorkerDegraded, 0u);
  Srv.requestStop();
  Srv.wait();
}

TEST(SupervisorTest, PersistentCrashExhaustsRetriesAndWritesReports) {
  TempPaths P("exhaust");
  ServerOptions SO = workerOptions(P, 1, 2);
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));

  fault::ScopedFaults Faults("svc-worker-crash:persistent");
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(R->Error.Reason, "worker-retries-exhausted");
  // The detail is a per-attempt log: all three losses, named.
  EXPECT_NE(R->Error.Detail.find("attempt 1"), std::string::npos);
  EXPECT_NE(R->Error.Detail.find("attempt 3"), std::string::npos);
  EXPECT_NE(R->Error.Detail.find("worker-crashed"), std::string::npos);

  wire::Stats S = Srv.stats();
  EXPECT_EQ(S.WorkerCrashes, 3u);
  EXPECT_EQ(S.WorkerRetries, 2u);
  EXPECT_EQ(S.WorkerDegraded, 1u);

  // Every loss left a crash-report artifact: request key, signal,
  // rusage — the operator's evidence trail.
  unsigned Reports = 0;
  std::string OneReport;
  for (const auto &E :
       std::filesystem::directory_iterator(P.CacheDir + "/crash-reports")) {
    ++Reports;
    OneReport = E.path().string();
  }
  EXPECT_EQ(Reports, 3u);
  ASSERT_FALSE(OneReport.empty());
  std::ifstream In(OneReport);
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Text.find("job:"), std::string::npos);
  EXPECT_NE(Text.find("fnv1a"), std::string::npos);
  EXPECT_NE(Text.find("worker-crashed"), std::string::npos);
  EXPECT_NE(Text.find("max-rss-kb:"), std::string::npos);

  Srv.requestStop();
  Srv.wait();
}

TEST(SupervisorTest, SpawnFailureIsChargedLikeACrash) {
  TempPaths P("spawn");
  ServerOptions SO = workerOptions(P, 1, 1);
  Server Srv(SO); // The initial pool fails to spawn — that is not fatal.
  fault::ScopedFaults Faults("svc-worker-spawn:persistent");
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(R->Error.Reason, "worker-retries-exhausted");
  EXPECT_NE(R->Error.Detail.find("spawn"), std::string::npos)
      << R->Error.Detail;
  wire::Stats S = Srv.stats();
  EXPECT_GE(S.WorkerSpawnFailures, 2u); // Initial pool + per-attempt.
  EXPECT_EQ(S.WorkerDegraded, 1u);
  Srv.requestStop();
  Srv.wait();
}

#if !RELC_UNDER_ASAN
TEST(SupervisorTest, RealOomUnderRlimitIsNamedWorkerOom) {
  TempPaths P("oom");
  ServerOptions SO = workerOptions(P, 1, 0);
  // An absolute RLIMIT_AS cannot revoke the heap the fork inherited
  // (malloc arenas survive with their free lists intact), so a fixed
  // "small" limit is no guarantee a small job dies. The svc-worker-oom
  // site makes the job's demand unbounded — the worker allocates until
  // operator new *really* fails under the limit, exercising the genuine
  // bad_alloc → new-handler → exit-77 path end to end.
  SO.WorkerMemLimitMb = 64;
  fault::ScopedFaults Armed("svc-worker-oom:persistent");
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(R->Error.Reason, "worker-oom") << R->Error.Detail;
  EXPECT_NE(R->Error.Detail.find("allocation failure (exit 77)"),
            std::string::npos)
      << R->Error.Detail;
  EXPECT_EQ(Srv.stats().WorkerOoms, 1u);
  Srv.requestStop();
  Srv.wait();
}
#endif // !RELC_UNDER_ASAN

//===----------------------------------------------------------------------===//
// Graceful drain.
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, DrainFinishesInflightAndRefusesNewByName) {
  TempPaths P("drain");
  // One worker, no retries, a short wall deadline: the hung in-flight
  // job resolves (as worker-timeout) well inside the drain window.
  ServerOptions SO = workerOptions(P, 1, 0, /*JobWallMs=*/800);
  SO.DrainTimeoutMs = 10000;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));

  Client A, B;
  ASSERT_TRUE(bool(A.connect(P.Sock)));
  ASSERT_TRUE(bool(B.connect(P.Sock)));

  fault::ScopedFaults Faults("svc-worker-hang:persistent");
  std::atomic<bool> GotInflightReply{false};
  wire::Message InflightReply;
  std::thread T([&] {
    Result<wire::Message> R = A.roundTrip(certifyMsg({"fnv1a"}), 30000);
    if (R) {
      InflightReply = *R;
      GotInflightReply.store(true);
    }
  });
  // Let the job reach its worker, then begin the drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Srv.requestStop();
  ASSERT_TRUE(Srv.draining());

  // New certify work on an existing connection: named busy, not a drop.
  Result<wire::Message> R = B.roundTrip(certifyMsg({"crc32"}), 10000);
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(R->Error.Reason, "server-busy");
  EXPECT_NE(R->Error.Detail.find("draining"), std::string::npos);

  // Ping still answers during the drain: only certification is refused.
  wire::Message Ping;
  Ping.TheKind = wire::Kind::PingRequest;
  R = B.roundTrip(Ping, 10000);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->TheKind, wire::Kind::PongReply);

  // The in-flight job finished (with its named loss — the hang ran into
  // the wall deadline), and the daemon exited cleanly after it.
  T.join();
  ASSERT_TRUE(GotInflightReply.load());
  ASSERT_EQ(InflightReply.TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(InflightReply.Error.Reason, "worker-timeout");
  Srv.wait();
  wire::Stats S = Srv.stats();
  EXPECT_EQ(S.Drains, 1u);
  EXPECT_GE(S.BusyRejections, 1u);
  // The socket path was unlinked at drain start; the lock file remains
  // by design (unlinking it would reopen the ownership race).
  EXPECT_FALSE(std::filesystem::exists(P.Sock));
  EXPECT_TRUE(std::filesystem::exists(P.Sock + ".lock"));
}

//===----------------------------------------------------------------------===//
// The socket-ownership flock, raced for real from two processes.
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, TwoDaemonsRacingOnePathHaveExactlyOneWinner) {
  TempPaths P("race");
  const std::string LoserMark = P.CacheDir + ".loser";
  std::filesystem::remove(LoserMark);

  auto Child = [&]() -> pid_t {
    pid_t Pid = fork();
    if (Pid != 0)
      return Pid;
    // Child: one start() attempt, exit code = verdict.
    ServerOptions SO;
    SO.SocketPath = P.Sock;
    Server Srv(SO);
    Status S = Srv.start();
    if (!S) {
      bool Named =
          S.error().str().find("socket-in-use") != std::string::npos;
      std::ofstream(LoserMark) << "lost\n";
      _exit(Named ? 1 : 2);
    }
    // Winner: hold the socket until the loser has lost (or 10s), so the
    // race cannot degenerate into two sequential wins.
    for (int I = 0; I < 1000; ++I) {
      if (std::filesystem::exists(LoserMark))
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    Srv.requestStop();
    Srv.wait();
    _exit(0);
  };

  pid_t A = Child();
  ASSERT_GT(A, 0);
  pid_t B = Child();
  ASSERT_GT(B, 0);

  int StatusA = 0, StatusB = 0;
  ASSERT_EQ(::waitpid(A, &StatusA, 0), A);
  ASSERT_EQ(::waitpid(B, &StatusB, 0), B);
  ASSERT_TRUE(WIFEXITED(StatusA));
  ASSERT_TRUE(WIFEXITED(StatusB));
  int ExitA = WEXITSTATUS(StatusA), ExitB = WEXITSTATUS(StatusB);
  // Exactly one winner; the loser failed with the *named* refusal, not
  // a silent non-serving daemon or an unlink of the winner's socket.
  EXPECT_TRUE((ExitA == 0 && ExitB == 1) || (ExitA == 1 && ExitB == 0))
      << "exit codes " << ExitA << " / " << ExitB;
  std::filesystem::remove(LoserMark);
}

//===----------------------------------------------------------------------===//
// Client-side retry: the backoff schedule is pinned with a fake clock.
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, ClientRetryScheduleMatchesBackoffExactly) {
  // Nothing listens here: every attempt fails with ECONNREFUSED/ENOENT.
  const std::string Dead =
      "/tmp/relc-sup-dead-" + std::to_string(uint64_t(::getpid())) + ".sock";
  std::filesystem::remove(Dead);

  RetryPolicy Policy;
  Policy.Attempts = 4;
  Policy.BaseMs = 25;
  Policy.CapMs = 1000;
  Policy.Seed = 0;
  std::vector<unsigned> Slept;
  Policy.SleepFn = [&Slept](unsigned Ms) { Slept.push_back(Ms); };

  Client C;
  unsigned Retries = 0;
  wire::Message Ping;
  Ping.TheKind = wire::Kind::PingRequest;
  Result<wire::Message> R =
      C.roundTripWithRetry(Dead, Ping, Policy, 1000, &Retries);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("cannot connect"), std::string::npos);
  EXPECT_EQ(Retries, 3u);

  // The fake clock recorded exactly the schedule backoff::Schedule
  // computes for this policy — pinned values, same as BackoffTest's
  // golden sequence.
  backoff::Schedule Expect({Policy.BaseMs, Policy.CapMs, Policy.Seed});
  ASSERT_EQ(Slept.size(), 3u);
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_EQ(Slept[I], Expect.next()) << "delay " << I;
  EXPECT_EQ(Slept, (std::vector<unsigned>{29, 26, 61}));
}

TEST(SupervisorTest, ClientRetryAbsorbsBusyThenReturnsTheBusyReply) {
  TempPaths P("busyretry");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  SO.MaxInflight = 0; // Every certify is refused at admission.
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));

  RetryPolicy Policy;
  Policy.Attempts = 3;
  std::vector<unsigned> Slept;
  Policy.SleepFn = [&Slept](unsigned Ms) { Slept.push_back(Ms); };
  Client C;
  unsigned Retries = 0;
  Result<wire::Message> R = C.roundTripWithRetry(
      P.Sock, certifyMsg({"fnv1a"}), Policy, 10000, &Retries);
  // server-busy is transient by contract: retried, and after the budget
  // runs out the busy reply itself comes back (it IS a round trip).
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(R->Error.Reason, "server-busy");
  EXPECT_EQ(Retries, 2u);
  EXPECT_EQ(Slept.size(), 2u);
  EXPECT_EQ(Srv.stats().BusyRejections, 3u);
  Srv.requestStop();
  Srv.wait();
}

//===----------------------------------------------------------------------===//
// Fault-matrix rows for the three worker sites: every injection is
// absorbed (byte-identical to baseline) or named, never worse.
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, WorkerFaultMatrixAbsorbedOrNamed) {
  TempPaths Base("matrix-base");
  std::string BaselineJson, BaselineBin;
  {
    ServerOptions SO = workerOptions(Base, 1, 2, /*JobWallMs=*/600);
    Server Srv(SO);
    ASSERT_TRUE(bool(Srv.start()));
    Client C;
    ASSERT_TRUE(bool(C.connect(Base.Sock)));
    Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
    ASSERT_TRUE(bool(R));
    ASSERT_EQ(R->TheKind, wire::Kind::CertifyReply);
    BaselineJson = R->Reply.Programs[0].CertJson;
    BaselineBin = R->Reply.Programs[0].CertBin;
    Srv.requestStop();
    Srv.wait();
  }

  struct Row {
    const char *Spec;
    bool ExpectAbsorbed; ///< else: a named worker-* degradation.
    const char *Reason;  ///< Expected name when degraded.
  };
  const Row Rows[] = {
      {"svc-worker-spawn:transient:n=1", true, ""},
      {"svc-worker-crash:transient:n=1", true, ""},
      {"svc-worker-hang:transient:n=1", true, ""},
      {"svc-worker-spawn:persistent", false, "worker-retries-exhausted"},
      {"svc-worker-crash:persistent", false, "worker-retries-exhausted"},
      {"svc-worker-hang:persistent", false, "worker-retries-exhausted"},
  };
  for (const Row &Rw : Rows) {
    SCOPED_TRACE(std::string("fault spec: ") + Rw.Spec);
    TempPaths P("matrix");
    ServerOptions SO = workerOptions(P, 1, 2, /*JobWallMs=*/600);
    Server Srv(SO);
    fault::ScopedFaults Faults(Rw.Spec);
    ASSERT_TRUE(bool(Srv.start()));
    Client C;
    ASSERT_TRUE(bool(C.connect(P.Sock)));
    Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}), 60000);
    ASSERT_TRUE(bool(R));
    if (Rw.ExpectAbsorbed) {
      // (a) the retry allowance absorbed the transient: byte-identical
      // to the fault-free baseline.
      ASSERT_EQ(R->TheKind, wire::Kind::CertifyReply);
      EXPECT_EQ(R->Reply.Exit, 0);
      EXPECT_EQ(R->Reply.Programs[0].CertJson, BaselineJson);
      EXPECT_EQ(R->Reply.Programs[0].CertBin, BaselineBin);
    } else {
      // (b) the injection survived every retry: degraded by name.
      ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
      EXPECT_EQ(R->Error.Reason, Rw.Reason) << R->Error.Detail;
    }
    // Either way the daemon itself is healthy.
    wire::Message Ping;
    Ping.TheKind = wire::Kind::PingRequest;
    Result<wire::Message> Pong = C.roundTrip(Ping);
    ASSERT_TRUE(bool(Pong));
    EXPECT_EQ(Pong->TheKind, wire::Kind::PongReply);
    Srv.requestStop();
    Srv.wait();
  }
}

//===----------------------------------------------------------------------===//
// The chaos soak: concurrent clients under SIGKILL/SIGSEGV injection.
// Contract: every request resolves as ok-or-named-degraded, zero daemon
// deaths or hangs, and a surviving certificate passes the independent
// checker afterwards.
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, ChaosSoakOkOrNamedDegradedNeverLost) {
  TempPaths P("soak");
  ServerOptions SO = workerOptions(P, 4, 2);
  SO.MaxClients = 128;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));

  // Two clauses on the crash site: ~35% of job keys lose their first
  // attempt to SIGKILL and heal (the retry allowance must absorb every
  // one), and a disjoint ~6% are SIGSEGV'd on every attempt (those must
  // degrade by name). Keys are deterministic, so the soak is seeded
  // chaos, not flake.
  fault::ScopedFaults Faults(
      "svc-worker-crash:transient:n=1:p=0.35:seed=7,"
      "svc-worker-crash:persistent:p=0.06:seed=13:v=11");

  constexpr unsigned Threads = 8, Rounds = 200;
  std::atomic<unsigned> Ok{0}, Degraded{0}, Busy{0}, Lost{0};
  std::atomic<unsigned> ContractViolations{0};
  const std::set<std::string> NamedDegradations = {
      "worker-crashed", "worker-oom", "worker-timeout",
      "worker-retries-exhausted"};

  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      Client C;
      RetryPolicy Policy;
      Policy.Attempts = 3;
      Policy.BaseMs = 5;
      Policy.CapMs = 50;
      Policy.Seed = T;
      for (unsigned R = 0; R < Rounds; ++R) {
        // Mixed load: mostly hot (memo after first completion), with a
        // deterministic cold slice (unique budget = unique job) and two
        // programs so job keys vary.
        unsigned I = T * Rounds + R;
        wire::Message Req;
        if (I % 7 == 3)
          Req = certifyMsg({"crc32"});
        else if (I % 11 == 5)
          Req = certifyMsg({"fnv1a"}, 2000000000 + I); // Cold, live run.
        else
          Req = certifyMsg({"fnv1a"});
        Result<wire::Message> Reply =
            C.roundTripWithRetry(P.Sock, Req, Policy, 120000);
        if (!Reply) {
          Lost.fetch_add(1); // Transport loss even after retries.
          continue;
        }
        if (Reply->TheKind == wire::Kind::CertifyReply) {
          if (Reply->Reply.Exit == 0)
            Ok.fetch_add(1);
          else
            ContractViolations.fetch_add(1);
          continue;
        }
        if (Reply->TheKind != wire::Kind::ErrorReply) {
          ContractViolations.fetch_add(1);
          continue;
        }
        if (NamedDegradations.count(Reply->Error.Reason))
          Degraded.fetch_add(1);
        else if (Reply->Error.Reason == "server-busy")
          Busy.fetch_add(1);
        else
          ContractViolations.fetch_add(1);
      }
    });
  for (std::thread &T : Pool)
    T.join();

  // Every request resolved inside the contract: a full-strength reply
  // or a named degradation/backpressure — nothing lost, nothing hung
  // (join returned), nothing mislabeled.
  EXPECT_EQ(Lost.load(), 0u);
  EXPECT_EQ(ContractViolations.load(), 0u);
  EXPECT_EQ(Ok.load() + Degraded.load() + Busy.load(),
            Threads * Rounds);
  EXPECT_GT(Ok.load(), 0u);
  EXPECT_GT(Degraded.load(), 0u); // The persistent clause actually bit.

  // The daemon never died: it still answers, with coherent supervision
  // counters, and the chaos actually exercised the pool.
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));
  wire::Message Ping;
  Ping.TheKind = wire::Kind::PingRequest;
  ASSERT_TRUE(bool(C.roundTrip(Ping)));
  wire::Stats S = Srv.stats();
  EXPECT_GT(S.WorkerCrashes, 0u);
  EXPECT_GT(S.WorkerRetries, 0u);
  EXPECT_GT(S.WorkerRestarts, 0u);
  EXPECT_EQ(S.WorkerDegraded, Degraded.load());
  EXPECT_EQ(S.Drains, 0u);

  // Post-soak: a surviving certificate is not merely well-formed — it
  // is byte-identical to the fault-free in-process artifacts and passes
  // the independent checker's full re-derivation. Supervision chaos
  // cannot have touched certificate content.
  fault::disarm();
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::CertifyReply);
  ASSERT_EQ(R->Reply.Exit, 0);
  const wire::ProgramResult &PR = R->Reply.Programs[0];

  Request Direct;
  Direct.Programs = {"fnv1a"};
  Direct.LayerTimeoutMs = SO.DefaultLayerTimeoutMs;
  Response DirectResp = certify(Direct);
  ASSERT_EQ(DirectResp.Programs.size(), 1u);
  EXPECT_EQ(PR.CertJson, DirectResp.Programs[0].CertJson);
  EXPECT_EQ(PR.CertBin, DirectResp.Programs[0].CertBin);

  const programs::ProgramDef *Def = programs::findProgram("fnv1a");
  ASSERT_NE(Def, nullptr);
  core::Compiler Compiler;
  Result<core::CompileResult> CR =
      Compiler.compileFn(Def->Model, Def->Spec, Def->Hints);
  ASSERT_TRUE(bool(CR));
  cert::ReadError RE;
  std::optional<cert::Certificate> Cert = cert::Reader::parse(PR.CertJson, &RE);
  ASSERT_TRUE(Cert.has_value()) << RE.Detail;
  cert::CheckResult Check = cert::Rederive::check(
      *Cert, Def->Model, Def->Hints.EntryFacts, Def->Spec, CR->Fn);
  EXPECT_TRUE(Check.Accepted) << Check.Detail;

  Srv.requestStop();
  Srv.wait();
  EXPECT_EQ(Srv.stats().ActiveConnections, 0u);
}

#endif // !RELC_UNDER_TSAN

#endif // !_WIN32

} // namespace
