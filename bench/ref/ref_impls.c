/*===- bench/ref/ref_impls.c - Handwritten C references --------------------===
 *
 * Part of relc, a C++ reproduction of "Relational Compilation for
 * Performance-Critical Applications" (PLDI 2022).
 *
 *===----------------------------------------------------------------------===*/

#include "ref_impls.h"

uint64_t ref_fnv1a(const uint8_t *s, size_t len) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; i++) {
    h ^= s[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void ref_upstr(uint8_t *s, size_t len) {
  /* Box 1's handwritten program. */
  for (size_t i = 0; i < len; i++) {
    uint8_t b = s[i];
    s[i] = (uint8_t)(((uint8_t)(b - 'a')) < 26u ? (b & 0x5f) : b);
  }
}

uint32_t ref_m3s(uint32_t k) {
  k *= 0xcc9e2d51u;
  k = (k << 15) | (k >> 17);
  k *= 0x1b873593u;
  return k;
}

uint16_t ref_ip_chk(const uint8_t *s, size_t len) {
  uint64_t sum = 0;
  size_t i;
  for (i = 0; i + 1 < len; i += 2)
    sum += ((uint64_t)s[i] << 8) | s[i + 1];
  if (len & 1)
    sum += (uint64_t)s[len - 1] << 8;
  while (sum >> 16)
    sum = (sum & 0xffff) + (sum >> 16);
  return (uint16_t)~sum;
}

void ref_fasta(uint8_t *s, size_t len) {
  static const uint8_t comp[256] = {
      0,   1,   2,   3,   4,   5,   6,   7,   8,   9,   10,  11,  12,  13,
      14,  15,  16,  17,  18,  19,  20,  21,  22,  23,  24,  25,  26,  27,
      28,  29,  30,  31,  32,  33,  34,  35,  36,  37,  38,  39,  40,  41,
      42,  43,  44,  45,  46,  47,  48,  49,  50,  51,  52,  53,  54,  55,
      56,  57,  58,  59,  60,  61,  62,  63,  64,  'T', 'V', 'G', 'H', 69,
      70,  'C', 'D', 73,  74,  'M', 76,  'K', 'N', 79,  80,  81,  'Y', 'S',
      'A', 'A', 'B', 'W', 88,  'R', 90,  91,  92,  93,  94,  95,  96,  'T',
      'V', 'G', 'H', 101, 102, 'C', 'D', 105, 106, 'M', 108, 'K', 'N', 111,
      112, 113, 'Y', 'S', 'A', 'A', 'B', 'W', 120, 'R', 122, 123, 124, 125,
      126, 127, 128, 129, 130, 131, 132, 133, 134, 135, 136, 137, 138, 139,
      140, 141, 142, 143, 144, 145, 146, 147, 148, 149, 150, 151, 152, 153,
      154, 155, 156, 157, 158, 159, 160, 161, 162, 163, 164, 165, 166, 167,
      168, 169, 170, 171, 172, 173, 174, 175, 176, 177, 178, 179, 180, 181,
      182, 183, 184, 185, 186, 187, 188, 189, 190, 191, 192, 193, 194, 195,
      196, 197, 198, 199, 200, 201, 202, 203, 204, 205, 206, 207, 208, 209,
      210, 211, 212, 213, 214, 215, 216, 217, 218, 219, 220, 221, 222, 223,
      224, 225, 226, 227, 228, 229, 230, 231, 232, 233, 234, 235, 236, 237,
      238, 239, 240, 241, 242, 243, 244, 245, 246, 247, 248, 249, 250, 251,
      252, 253, 254, 255};
  for (size_t i = 0; i < len; i++)
    s[i] = comp[s[i]];
}

uint32_t ref_crc32(const uint8_t *s, size_t len) {
  static uint32_t table[256];
  static int init = 0;
  if (!init) {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    init = 1;
  }
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; i++)
    crc = (crc >> 8) ^ table[(crc ^ s[i]) & 0xff];
  return crc ^ 0xffffffffu;
}

/* Branchless UTF-8 decoding, lookup-table style. */
uint64_t ref_utf8(const uint8_t *s, size_t len) {
  static const uint8_t lengths[32] = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                                      1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0,
                                      0, 0, 2, 2, 2, 2, 3, 3, 4, 0};
  static const uint8_t masks[5] = {0x00, 0x7f, 0x1f, 0x0f, 0x07};
  static const uint8_t shiftc[5] = {0, 18, 12, 6, 0};
  static const uint32_t mins[5] = {4194304, 0, 128, 2048, 65536};
  static const uint8_t shifte[5] = {0, 6, 4, 2, 0};

  uint64_t h = 0, e = 0;
  size_t i = 0, n = len - 3;
  while (i < n) {
    uint64_t b0 = s[i], b1 = s[i + 1], b2 = s[i + 2], b3 = s[i + 3];
    uint64_t t = lengths[b0 >> 3];
    uint64_t cp = (b0 & masks[t]) << 18 | (b1 & 0x3f) << 12 |
                  (b2 & 0x3f) << 6 | (b3 & 0x3f);
    cp >>= shiftc[t];
    uint64_t err = (uint64_t)(cp < mins[t]) << 6;
    err |= (uint64_t)((cp >> 11) == 0x1b) << 7;
    err |= (uint64_t)(cp > 0x10FFFF) << 8;
    err |= (b1 & 0xc0) >> 2;
    err |= (b2 & 0xc0) >> 4;
    err |= b3 >> 6;
    err ^= 0x2a;
    err >>= shifte[t];
    h ^= cp;
    e |= err;
    i += t + (t == 0);
  }
  for (size_t j = i; j < len; j++) {
    h ^= s[j];
    e |= s[j] > 0x7f;
  }
  return ((e & 0xffffffffull) << 32) | (h & 0xffffffffull);
}
