
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_performance.cpp" "bench/CMakeFiles/fig2_performance.dir/fig2_performance.cpp.o" "gcc" "bench/CMakeFiles/fig2_performance.dir/fig2_performance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/relc_generated.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/relc_refimpls.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/relc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
