//===- tests/validate/FailureInjectionTest.cpp - Tampered artifacts --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The trust story of DESIGN.md §4.4 rests on the validator rejecting
// anything that is not exactly what the compiler proved. These tests
// inject faults into each artifact — the target code, the derivation
// witness, and the linked module — and demand rejection.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "pipeline/Pipeline.h"
#include "programs/Programs.h"
#include "validate/Validate.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::ir;
using namespace relc::bedrock;

namespace {

struct Compiled {
  programs::ProgramDef P;
  core::CompileResult R;

  explicit Compiled(const char *Name) : P(*programs::findProgram(Name)) {
    core::Compiler C;
    Result<core::CompileResult> Res = C.compileFn(P.Model, P.Spec, P.Hints);
    EXPECT_TRUE(bool(Res)) << (Res ? "" : Res.error().str());
    R = Res.take();
  }

  Status certifyWith(const Function &Fn) const {
    bedrock::Module M;
    M.Functions.push_back(Fn);
    return validate::differentialCertify(P.Model, P.Spec, R, M, P.VOpts);
  }
};

TEST(FailureInjectionTest, EmptyBodyRejected) {
  Compiled C("upstr");
  Function Broken = C.R.Fn;
  Broken.Body = skip(); // Does nothing: in-place contents will differ.
  Status S = C.certifyWith(Broken);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("mismatch"), std::string::npos);
}

TEST(FailureInjectionTest, SubtlyWrongLoopBodyRejected) {
  // A plausible-but-wrong upstr: masks *every* byte with 0x5f instead of
  // only lowercase letters — correct on letters, wrong on digits and
  // punctuation. The differential vectors catch it.
  Compiled C("upstr");
  Function Broken = C.R.Fn;
  Broken.Body = seqAll(
      {set("i", lit(0)),
       whileLoop(bin(BinOp::LtU, var("i"), var("len")),
                 seqAll({store(AccessSize::Byte, add(var("s"), var("i")),
                               bin(BinOp::And,
                                   load(AccessSize::Byte,
                                        add(var("s"), var("i"))),
                                   lit(0x5f))),
                         set("i", add(var("i"), lit(1)))}))});
  Status S = C.certifyWith(Broken);
  EXPECT_FALSE(bool(S));
}

TEST(FailureInjectionTest, WrongScalarResultRejected) {
  Compiled C("fnv1a");
  Function Broken = C.R.Fn;
  Broken.Body = seq(Broken.Body, set("h", lit(0))); // Clobber the result.
  EXPECT_FALSE(bool(C.certifyWith(Broken)));
}

TEST(FailureInjectionTest, FrameViolationRejected) {
  // A function that writes one byte past its buffer: the memory model
  // faults the wild store before the frame even gets compared.
  Compiled C("upstr");
  Function Broken = C.R.Fn;
  Broken.Body =
      seq(Broken.Body,
          store(AccessSize::Byte, add(var("s"), var("len")), lit(7)));
  Status S = C.certifyWith(Broken);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("out of bounds"), std::string::npos);
}

TEST(FailureInjectionTest, ReadOnlyArgumentMutationRejected) {
  // fnv1a's array is read-only per its spec; a sneaky store must fail.
  Compiled C("fnv1a");
  Function Broken = C.R.Fn;
  ProgBuilder B;
  Broken.Body = seq(
      ifThenElse(bin(BinOp::LtU, lit(0), var("len")),
                 store(AccessSize::Byte, var("s"), lit(0)), skip()),
      Broken.Body);
  Status S = C.certifyWith(Broken);
  ASSERT_FALSE(bool(S));
  // Either the hash differs or the read-only check fires; both reject.
}

TEST(FailureInjectionTest, SpuriousTraceEventRejected) {
  Compiled C("m3s");
  Function Broken = C.R.Fn;
  Broken.Body = seq(interact({}, "write", {lit(1)}), Broken.Body);
  Status S = C.certifyWith(Broken);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("trace"), std::string::npos);
}

TEST(FailureInjectionTest, LeakedAllocationRejected) {
  // A stackalloc whose body never ends (we fake a leak by allocating in
  // the interpreter setup is not possible from outside; instead check the
  // well-formedness gate: a call to an unknown function).
  Compiled C("m3s");
  Function Broken = C.R.Fn;
  Broken.Body = seq(Broken.Body, call({}, "missing_fn", {}));
  Status S = C.certifyWith(Broken);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("missing_fn"), std::string::npos);
}

TEST(FailureInjectionTest, UnknownRuleInWitnessRejected) {
  Compiled C("upstr");
  C.R.Proof->Children[0]->Rule = "compile_backdoor";
  Status S = validate::replayDerivation(C.P.Model, C.R);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("compile_backdoor"), std::string::npos);
}

TEST(FailureInjectionTest, DroppedSideConditionRejected) {
  // Remove every recorded bounds side condition: the replay count check
  // catches the mismatch with the source's memory accesses.
  Compiled C("crc32");
  std::function<void(core::DerivNode &)> Strip =
      [&](core::DerivNode &N) {
        N.SideConds.clear();
        for (auto &Ch : N.Children)
          Strip(*Ch);
      };
  Strip(*C.R.Proof);
  Status S = validate::replayDerivation(C.P.Model, C.R);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("side conditions"), std::string::npos);
}

TEST(FailureInjectionTest, DroppedInvariantTemplateRejected) {
  Compiled C("upstr");
  std::function<void(core::DerivNode &)> Strip =
      [&](core::DerivNode &N) {
        if (N.Rule == "compile_map_inplace")
          N.Notes.clear();
        for (auto &Ch : N.Children)
          Strip(*Ch);
      };
  Strip(*C.R.Proof);
  Status S = validate::replayDerivation(C.P.Model, C.R);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("invariant"), std::string::npos);
}

// The static layer's reason to exist: a bug differential testing cannot
// see. The tampered upstr below writes one byte past the buffer, but only
// when len == 77 — a length the sampled vector battery never generates
// (ValidationOptions::Sizes has no 77). Differential certification
// accepts the broken function; the static analyzer, which reasons over
// *all* lengths, rejects it.
TEST(FailureInjectionTest, RareLengthOverflowEscapesDifferentialTesting) {
  Compiled C("upstr");
  Function Broken = C.R.Fn;
  Broken.Body =
      seq(Broken.Body,
          ifThenElse(bin(BinOp::Eq, var("len"), lit(77)),
                     store(AccessSize::Byte, add(var("s"), var("len")),
                           lit(0)),
                     skip()));

  // Layer 3 misses it: every sampled vector takes the harmless branch.
  ASSERT_TRUE(bool(C.certifyWith(Broken)));

  // Layer 2 catches it: the store at s+len is outside the frame.
  core::CompileResult BrokenR = std::move(C.R); // Done with differential.
  // (CompileResult owns the derivation tree, so it is move-only.)
  BrokenR.Fn = Broken;
  validate::ValidationOptions VO = C.P.VOpts;
  VO.Hints = C.P.Hints;
  Status S = validate::analyzeTarget(C.P.Model, C.P.Spec, BrokenR, VO);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("bounds"), std::string::npos)
      << S.error().str();
}

// Warnings do not fail certification, but they do surface: a useless
// assignment smuggled into the target passes both differential testing
// and certification, yet the analysis report names it.
TEST(FailureInjectionTest, InjectedDeadStoreSurfacesAsWarning) {
  Compiled C("upstr");
  Function Broken = C.R.Fn;
  Broken.Body = seqAll({set("scratch", lit(41)), Broken.Body});

  ASSERT_TRUE(bool(C.certifyWith(Broken)));

  core::CompileResult BrokenR = std::move(C.R); // Done with differential.
  // (CompileResult owns the derivation tree, so it is move-only.)
  BrokenR.Fn = Broken;
  validate::ValidationOptions VO = C.P.VOpts;
  VO.Hints = C.P.Hints;
  EXPECT_TRUE(bool(validate::analyzeTarget(C.P.Model, C.P.Spec, BrokenR, VO)))
      << "warnings alone must not fail certification";

  analysis::AnalysisReport R = analysis::analyzeProgram(
      Broken, C.P.Spec, C.P.Model, C.P.Hints.EntryFacts);
  ASSERT_EQ(R.numWarnings(), 1u) << R.str();
  EXPECT_EQ(R.Diags[0].C, analysis::Diagnostic::Checker::DeadStore);
  EXPECT_FALSE(R.hasErrors()) << R.str();
}

// The same injections, under the parallel scheduler: a defect in one
// program must fail exactly that program, without poisoning, blocking, or
// slowing its siblings — their layers run to completion concurrently and
// come out green.
TEST(FailureInjectionTest, ParallelPipelineIsolatesInjectedDefect) {
  std::vector<const programs::ProgramDef *> Suite;
  for (const programs::ProgramDef &P : programs::allPrograms())
    Suite.push_back(&P);

  pipeline::PipelineOptions Opts;
  Opts.Jobs = 8; // Layers of all programs genuinely interleave.
  pipeline::TamperHook Tamper = [](const programs::ProgramDef &P,
                                   core::CompileResult &R) {
    if (P.Name == "crc32") // Clobber the scalar result.
      R.Fn.Body = seq(R.Fn.Body, set(R.Fn.Rets.at(0), lit(1)));
  };

  pipeline::PipelineStats Stats;
  std::vector<pipeline::ProgramOutcome> Out =
      pipeline::certifyPrograms(Suite, Opts, &Stats, Tamper);

  ASSERT_EQ(Out.size(), Suite.size());
  EXPECT_EQ(Stats.Failures, 1u);
  for (const pipeline::ProgramOutcome &O : Out) {
    if (O.Def->Name == "crc32") {
      EXPECT_FALSE(O.ok());
      EXPECT_FALSE(O.ValidationError.empty());
      // The rejection carries the standard note chain.
      EXPECT_NE(O.ValidationError.find("while validating program crc32"),
                std::string::npos)
          << O.ValidationError;
    } else {
      EXPECT_TRUE(O.ok()) << O.Def->Name << ": " << O.ValidationError;
      EXPECT_TRUE(O.Diff.Ran) << O.Def->Name;
    }
  }
}

// And the serial reference (-j 1) renders the exact same outcome and
// diagnostics for the injected defect: parallelism never changes verdicts.
TEST(FailureInjectionTest, SerialAndParallelAgreeOnInjectedDefect) {
  std::vector<const programs::ProgramDef *> Suite;
  for (const programs::ProgramDef &P : programs::allPrograms())
    Suite.push_back(&P);
  pipeline::TamperHook Tamper = [](const programs::ProgramDef &P,
                                   core::CompileResult &R) {
    if (P.Name == "upstr")
      R.Fn.Body = skip();
  };

  pipeline::PipelineOptions Serial, Parallel;
  Parallel.Jobs = 8;
  std::vector<pipeline::ProgramOutcome> S =
      pipeline::certifyPrograms(Suite, Serial, nullptr, Tamper);
  std::vector<pipeline::ProgramOutcome> P =
      pipeline::certifyPrograms(Suite, Parallel, nullptr, Tamper);

  ASSERT_EQ(S.size(), P.size());
  for (size_t I = 0; I < S.size(); ++I) {
    EXPECT_EQ(S[I].ok(), P[I].ok()) << S[I].Def->Name;
    EXPECT_EQ(S[I].ValidationError, P[I].ValidationError) << S[I].Def->Name;
  }
}

TEST(FailureInjectionTest, WrongMonadNoteRejected) {
  Compiled C("m3s");
  for (std::string &N : C.R.Proof->Notes)
    if (N.rfind("monad:", 0) == 0)
      N = "monad: io";
  Status S = validate::replayDerivation(C.P.Model, C.R);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("monad"), std::string::npos);
}

} // namespace
