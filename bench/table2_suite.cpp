//===- bench/table2_suite.cpp - Table 2: the benchmark suite ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2: per program, the programmer-effort columns
// (Source / Lemmas / Hints, in lines measured from the marked sections of
// src/programs/), the End-to-End flag, and the feature matrix (Arithmetic,
// Inline, Arrays, Loops, Mutation). The feature matrix is *computed from
// the derivation* — which rule families actually fired while compiling
// each model — not hand-declared.
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"
#include "support/SectionCount.h"

#include <cstdio>

using namespace relc;

namespace {

unsigned sectionOrZero(const std::string &File, const std::string &Name) {
  Result<unsigned> N = countSectionLines(File, Name);
  return N ? *N : 0;
}

const char *mark(bool B) { return B ? "x" : "."; }

} // namespace

int main() {
  std::printf("=== Table 2: the benchmark suite ===\n");
  std::printf("%-7s %6s %7s %5s %10s | %5s %6s %6s %5s %8s\n", "Name",
              "Source", "Lemmas", "Hints", "End-to-End", "Arith", "Inline",
              "Arrays", "Loops", "Mutation");

  for (const programs::ProgramDef &P : programs::allPrograms()) {
    Result<programs::CompiledProgram> C =
        programs::compileAndValidate(P, /*RunValidation=*/false);
    if (!C) {
      std::printf("%-7s FAILED TO COMPILE: %s\n", P.Name.c_str(),
                  C.error().str().c_str());
      continue;
    }
    unsigned Source = sectionOrZero(P.SourceFile, "program-" + P.Name +
                                                      "-source");
    unsigned Lemmas = sectionOrZero(P.SourceFile, "program-" + P.Name +
                                                      "-lemmas");
    unsigned Hints = sectionOrZero(P.SourceFile, "program-" + P.Name +
                                                     "-hints");
    const auto &F = C->Result.Features;
    auto Has = [&](const char *Name) { return F.count(Name) != 0; };
    std::string LemmaStr = Lemmas ? std::to_string(Lemmas) : "-";
    std::string HintStr = Hints ? std::to_string(Hints) : "-";
    std::printf("%-7s %6u %7s %5s %10s | %5s %6s %6s %5s %8s\n",
                P.Name.c_str(), Source, LemmaStr.c_str(), HintStr.c_str(),
                P.EndToEnd ? "yes" : "no", mark(Has("Arithmetic")),
                mark(Has("Inline")), mark(Has("Arrays")), mark(Has("Loops")),
                mark(Has("Mutation")));
    std::printf("        %s\n", P.Description.c_str());
  }

  std::printf("\n(paper reference — Source/Lemmas/Hints in lines of Coq: "
              "fnv1a 35/-/2, utf8 56/-/6, upstr 21/-/6, m3s 11/-/-, "
              "ip 37/3/7, fasta 19/6/5, crc32 31/16/3; feature matrices "
              "match Table 2)\n");
  return 0;
}
