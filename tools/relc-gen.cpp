//===- tools/relc-gen.cpp - Generate C for the benchmark suite -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the pipeline: compiles every registered
// benchmark program with the relational compiler, certifies the results
// (derivation replay, static analysis, translation validation, target-side
// codelint, differential testing — see pipeline/Pipeline.h), and emits the
// certified C into an output directory (consumed by the Figure 2 bench at
// build time). With -print-bedrock or -print-deriv it dumps the
// intermediate artifacts instead.
//
// Certification runs on the job-graph scheduler: -j N executes programs
// and their independent layers concurrently; -j 1 (the default) is the
// serial reference. Output is buffered per program and flushed in
// registration order, so every -j produces byte-identical streams and
// artifacts. Verdicts are reused across runs through the content-
// addressed certificate cache (default .relc-cache/): a warm run skips
// re-certification for programs whose model, fnspec, and emitted code
// hashes all match a previously certified run. The C itself is re-emitted
// from a fresh compile every time — the cache holds verdicts, never code.
//
// Every flag is accepted in both single- and double-dash form.
//
//===----------------------------------------------------------------------===//

#include "cert/Binary.h"
#include "cgen/CEmit.h"
#include "pipeline/Pipeline.h"
#include "pipeline/Scheduler.h"
#include "programs/Programs.h"
#include "support/CommandLine.h"
#include "support/Fault.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace relc;

// Exit-code taxonomy (stable; scripts may rely on it):
//   0  every program fully certified at full strength
//   1  at least one genuine failure (compile error, refuted or rejected
//      certification, failed differential)
//   2  usage error (bad flag, bad fault spec, unwritable output dir)
//   3  no genuine failures, but at least one outcome was *degraded* — a
//      budget ran out or an injected fault fired. With --keep-going,
//      programs whose only problems are degraded outcomes land here
//      instead of 1; a program certified with a budget-truncated TV
//      (differential carried it) lands here too.
int main(int argc, char **argv) {
  std::string OutDir = "generated";
  std::string Only;
  std::string CacheDir = ".relc-cache";
  std::string CertFormat = "auto";
  bool PrintBedrock = false, PrintDeriv = false, NoValidate = false;
  bool NoAnalyze = false, AnalysisReport = false;
  bool NoTv = false, TvReport = false;
  bool NoCache = false, KeepGoing = false;
  unsigned Jobs = 1;
  unsigned LayerTimeoutMs = 0;
  uint64_t TvStepBudget = 0;

  // RELC_FAULT_SPEC arms the registry before flags, so --fault (parsed
  // below) can override it wholesale.
  if (Status S = fault::armFromEnv(); !S) {
    std::fprintf(stderr, "relc-gen: RELC_FAULT_SPEC: %s\n",
                 S.error().str().c_str());
    return 2;
  }

  cl::OptionTable T(
      "relc-gen",
      "Compiles the registered benchmark programs, certifies each result\n"
      "(derivation replay, static analysis, translation validation,\n"
      "differential testing), and writes the certified C plus the\n"
      "per-program .tv.json equivalence certificates to the output\n"
      "directory.");
  T.str({"-out"}, &OutDir, "<dir>", "output directory (default: generated)");
  T.str({"-only"}, &Only, "<name>", "process only the named program");
  T.flag({"-print-bedrock"}, &PrintBedrock, "dump the generated Bedrock2 code");
  T.flag({"-print-deriv"}, &PrintDeriv, "dump the derivation witness");
  T.flag({"-no-validate"}, &NoValidate,
         "skip derivation replay and differential\n"
         "certification (layers 1 and 4)");
  T.flag({"-no-analyze"}, &NoAnalyze,
         "skip the standalone static-analysis gate");
  T.flag({"-analysis-report"}, &AnalysisReport,
         "print each program's full analysis report\n"
         "(forces live certification; disables the cache)");
  T.flag({"-no-tv"}, &NoTv,
         "skip the standalone translation-validation\n"
         "gate (and the .tv.json certificates)");
  T.choice({"-cert-format"}, &CertFormat, {"json", "bin", "auto"}, "<fmt>",
           "which certificate artifacts to write:\n"
           "'json' = canonical .tv.json only, 'bin' =\n"
           "binary .certbin only, 'auto' = both\n"
           "(default: auto)");
  T.flag({"-tv-report"}, &TvReport,
         "print each program's full TV match trace\n"
         "(forces live certification; disables the cache)");
  T.num({"-j", "-jobs"}, &Jobs, 0, "<n>",
        "certification scheduler width; 1 = serial\n"
        "reference order, 0 = all hardware threads\n"
        "(default: 1)");
  T.str({"-cache-dir"}, &CacheDir, "<dir>",
        "certificate cache directory\n"
        "(default: .relc-cache)");
  T.flag({"-no-cache"}, &NoCache, "disable the certificate cache");
  T.num({"-layer-timeout-ms"}, &LayerTimeoutMs, 0, "<ms>",
        "wall-clock deadline per certification layer\n"
        "per program; exhaustion degrades the layer\n"
        "instead of hanging (default: 0 = unlimited)");
  T.custom({"-tv-step-budget"}, /*HasValue=*/true, "<n>",
           "cap translation validation at <n> normalization\n"
           "/search steps; exhaustion degrades TV to\n"
           "inconclusive (default: 0 = unlimited)",
           [&TvStepBudget](const std::string &V, std::string *Err) {
             if (V.empty() ||
                 V.find_first_not_of("0123456789") != std::string::npos) {
               *Err = "expected a non-negative integer, got '" + V + "'";
               return false;
             }
             TvStepBudget = std::strtoull(V.c_str(), nullptr, 10);
             return true;
           });
  T.flag({"-keep-going"}, &KeepGoing,
         "report programs whose only problems are\n"
         "degraded outcomes (budgets, injected faults)\n"
         "as DEGRADED (exit 3) instead of failures");
  T.custom({"-fault"}, /*HasValue=*/true, "<spec>",
           "arm deterministic fault injection, e.g.\n"
           "'cache-write:transient:n=2' or\n"
           "'layer-entry:persistent:match=fnv1a/tv'\n"
           "(overrides RELC_FAULT_SPEC; for testing)",
           [](const std::string &V, std::string *Err) {
             if (Status S = fault::arm(V); !S) {
               *Err = S.error().str();
               return false;
             }
             return true;
           });

  switch (T.parse(argc, argv)) {
  case cl::ParseResult::Ok:
    break;
  case cl::ParseResult::Help:
    return 0;
  case cl::ParseResult::Error:
    return 2;
  }

  bool Validate = !NoValidate, Analyze = !NoAnalyze, Tv = !NoTv;
  bool UseCache = !NoCache;

  std::error_code EC;
  std::filesystem::create_directories(OutDir, EC);
  if (EC) {
    std::fprintf(stderr, "cannot create output directory %s: %s\n",
                 OutDir.c_str(), EC.message().c_str());
    return 2;
  }

  std::vector<const programs::ProgramDef *> Targets;
  for (const programs::ProgramDef &P : programs::allPrograms())
    if (Only.empty() || P.Name == Only)
      Targets.push_back(&P);

  pipeline::PipelineOptions Opts;
  std::string JobsNote;
  Opts.Jobs = pipeline::resolveJobs(Jobs, &JobsNote);
  if (!JobsNote.empty())
    std::fprintf(stderr, "relc-gen: %s\n", JobsNote.c_str());
  Opts.LayerTimeoutMs = LayerTimeoutMs;
  Opts.TvStepBudget = TvStepBudget;
  Opts.KeepGoing = KeepGoing;
  // The full-report flags need the live analysis / TV reports, which a
  // cached verdict cannot reproduce — force live certification.
  if (UseCache && !AnalysisReport && !TvReport)
    Opts.CacheDir = CacheDir;
  Opts.Validate = Validate;
  // validate() has always run analysis and TV as its layers 2 and 3;
  // -no-analyze / -no-tv only control the standalone gates below.
  Opts.Analyze = Analyze || Validate;
  Opts.Tv = Tv || Validate;

  std::vector<pipeline::ProgramOutcome> Outcomes =
      pipeline::certifyPrograms(Targets, Opts);

  std::string Header = cgen::cPrelude();
  bool AnyFailed = false, AnyDegraded = false;

  // Cache-store failures are absorbed per program (the verdict stands),
  // but a misconfigured cache directory silently re-certifies everything
  // on every run. Surface the first failure once, as a named warning.
  bool WarnedCacheStore = false;

  for (const pipeline::ProgramOutcome &O : Outcomes) {
    const programs::ProgramDef &P = *O.Def;

    if (!O.CacheStoreError.empty() && !WarnedCacheStore) {
      std::fprintf(stderr,
                   "relc-gen: warning: cache-dir-unwritable: could not "
                   "persist [%s]'s verdict: %s\n",
                   P.Name.c_str(), O.CacheStoreError.c_str());
      WarnedCacheStore = true;
    }

    // --keep-going: a program whose only problems are degraded outcomes
    // (budget exhaustion, injected faults, scheduler-boundary deaths) is
    // reported as DEGRADED and lands on exit 3, not 1. Nothing genuinely
    // failed certification — but nothing fully certified either, so no C
    // is emitted for it.
    if (!O.ok() && KeepGoing && O.failureIsDegradedOnly()) {
      const std::string &Why = !O.ValidationError.empty() ? O.ValidationError
                               : !O.CompileOk             ? O.CompileError
                                                          : O.DegradedNote;
      std::fprintf(stderr, "[%s] DEGRADED:\n%s\n", P.Name.c_str(),
                   Why.empty() ? O.firstDegradedNote().c_str() : Why.c_str());
      AnyDegraded = true;
      continue;
    }

    if (!O.CompileOk) {
      std::fprintf(stderr, "[%s] FAILED:\n%s\n", P.Name.c_str(),
                   O.CompileError.c_str());
      AnyFailed = true;
      continue;
    }
    // Layer failures under -validate carry the full note chain, exactly
    // as validate::validate renders them.
    if (Validate && !O.ValidationError.empty()) {
      std::fprintf(stderr, "[%s] FAILED:\n%s\n", P.Name.c_str(),
                   O.ValidationError.c_str());
      AnyFailed = true;
      continue;
    }

    std::printf("[%s] ok: %u source bindings -> %u target statements, "
                "derivation of %u rule applications, %u side conditions%s\n",
                P.Name.c_str(), O.Compiled.SourceBindings,
                O.Compiled.EmittedStmts, O.Compiled.Proof->size(),
                O.Compiled.Proof->countSideConds(),
                Validate ? ", validated" : "");

    if (Analyze) {
      if (AnalysisReport) {
        std::printf("%s", O.AReport.str().c_str());
      } else if (!O.AnalysisDiags.empty()) {
        std::istringstream Diags(O.AnalysisDiags);
        std::string Line;
        while (std::getline(Diags, Line))
          std::fprintf(stderr, "[%s] %s\n", P.Name.c_str(), Line.c_str());
      }
      if (!O.Analysis.Ok) {
        std::fprintf(stderr,
                     "[%s] FAILED: static analysis found %u error(s)\n",
                     P.Name.c_str(), O.AReport.numErrors());
        AnyFailed = true;
        continue;
      }
    }

    if (Tv) {
      if (TvReport)
        std::printf("%s", O.TvRep.str().c_str());
      else
        std::printf("[%s] tv: %s (%zu loops, %u terms)\n", P.Name.c_str(),
                    O.TvVerdictName.c_str(), size_t(O.TvLoops),
                    unsigned(O.TvTerms));
      if (!O.Tv.Ok) {
        std::fprintf(stderr, "[%s] FAILED: translation validation refuted "
                             "the compilation:\n%s",
                     P.Name.c_str(), O.TvRep.str().c_str());
        AnyFailed = true;
        continue;
      }
      // Certificate artifacts, per --cert-format: the canonical JSON, the
      // binary image, or (auto) both. Both encode the same Certificate and
      // rederive identically under relc-check.
      if (CertFormat != "bin") {
        std::ofstream Cert(OutDir + "/" + P.Name + ".tv.json");
        Cert << O.TvCertJson;
      }
      if (CertFormat != "json") {
        std::ofstream Cert(OutDir + "/" + P.Name + cert::kBinExtension,
                           std::ios::binary);
        Cert << O.TvCertBin;
      }
    }

    // Target-side codelint verdict: one deterministic line, reproducible
    // from the cache (a warm run replays the stored verdict name).
    if (!O.CodelintVerdictName.empty())
      std::printf("[%s] codelint: %s\n", P.Name.c_str(),
                  O.CodelintVerdictName.c_str());
    if (O.Codelint.Enabled && (O.Codelint.Ran || O.Codelint.FromCache) &&
        !O.Codelint.Ok) {
      // Only reachable with -no-validate (layer 4 otherwise renders the
      // failure into ValidationError, caught above).
      std::fprintf(stderr, "[%s] FAILED:\n%s\n", P.Name.c_str(),
                   O.ValidationError.c_str());
      AnyFailed = true;
      continue;
    }

    // Certified, but some layer only got a truncated run (e.g. TV hit its
    // step budget and fell through to differential): say so, emit the C
    // anyway — the certification itself is sound — and exit 3.
    if (O.anyDegraded()) {
      std::fprintf(stderr, "[%s] note: %s; certification was carried by "
                           "the remaining layers\n",
                   P.Name.c_str(), O.firstDegradedNote().c_str());
      AnyDegraded = true;
    }

    if (PrintBedrock)
      std::printf("%s\n", O.Compiled.Fn.str().c_str());
    if (PrintDeriv)
      std::printf("%s\n", O.Compiled.Proof->str().c_str());

    cgen::CEmitOptions EOpts;
    EOpts.NamePrefix = "relc_";
    Result<std::string> CCode = cgen::emitFunction(O.Compiled.Fn, EOpts);
    if (!CCode) {
      std::fprintf(stderr, "[%s] C emission failed: %s\n", P.Name.c_str(),
                   CCode.error().str().c_str());
      AnyFailed = true;
      continue;
    }

    std::string Path = OutDir + "/" + P.Name + ".c";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "[%s] cannot write %s\n", P.Name.c_str(),
                   Path.c_str());
      AnyFailed = true;
      continue;
    }
    Out << "/* Generated by relc (relational compilation); certified by\n"
           " * derivation replay and differential validation. Do not edit. */\n"
        << cgen::cPrelude() << *CCode;

    // Accumulate the aggregate header.
    const bedrock::Function &Fn = O.Compiled.Fn;
    Header += (Fn.Rets.empty() ? std::string("void") : "uintptr_t") +
              " relc_" + Fn.Name + "(";
    for (size_t I = 0; I < Fn.Args.size(); ++I)
      Header += std::string(I ? ", " : "") + "uintptr_t " + Fn.Args[I];
    Header += ");\n";
  }

  std::ofstream H(OutDir + "/relc_generated.h");
  H << "/* Generated by relc; aggregate declarations. */\n"
    << "#ifndef RELC_GENERATED_H\n#define RELC_GENERATED_H\n"
    << "#ifdef __cplusplus\nextern \"C\" {\n#endif\n"
    << Header << "#ifdef __cplusplus\n}\n#endif\n#endif\n";

  return AnyFailed ? 1 : AnyDegraded ? 3 : 0;
}
