//===- programs/Crc32.cpp - Cyclic redundancy check --------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
// This is the program that motivated the paper's 32-bit-word inline
// tables (§4.1.2: byte tables took tens of lines, full words "hundreds");
// in this reproduction both widths share one rule, and the table's
// element-width reasoning is a single structural fact.
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace relc {
namespace programs {

using namespace ir;

const std::vector<uint64_t> &crc32Table() {
  static const std::vector<uint64_t> Table = [] {
    std::vector<uint64_t> T(256);
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

ProgramDef makeCrc32() {
  ProgramDef P;
  P.Name = "crc32";
  P.Description = "Error-detecting code (cyclic redundancy check)";
  P.SourceFile = "src/programs/Crc32.cpp";
  P.EndToEnd = true;

  // RELC-SECTION-BEGIN: program-crc32-source
  // crc32' := fun s =>
  //   let/n crc := fold_left
  //     (fun crc b => (crc >> 8) ^ crc_tab[(crc ^ b2w b) & 0xff]) s
  //     0xffffffff in
  //   let/n crc := crc ^ 0xffffffff in crc
  FnBuilder FB("crc32_model", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  FB.table("crc_tab", EltKind::U32, crc32Table());
  ExprPtr Step =
      xorw(shrw(v("crc"), cw(8)),
           tget("crc_tab", andw(xorw(v("crc"), b2w(v("b"))), cw(0xff))));
  ProgBuilder Body;
  Body.let("crc", mkFold("s", "crc", "b", cw(0xffffffffull), Step))
      .let("crc", xorw(v("crc"), cw(0xffffffffull)));
  P.Model = std::move(FB).done(std::move(Body).ret({"crc"}));
  // RELC-SECTION-END: program-crc32-source

  P.Spec = sep::FnSpec("crc32");
  P.Spec.arrayArg("s").lenArg("len", "s").retScalar("crc");

  return P;
}

} // namespace programs
} // namespace relc
