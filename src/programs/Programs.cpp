//===- programs/Programs.cpp - The Table 2 benchmark suite -----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace relc {
namespace programs {

const std::vector<ProgramDef> &allPrograms() {
  static const std::vector<ProgramDef> Programs = [] {
    std::vector<ProgramDef> Out;
    Out.push_back(makeFnv1a());
    Out.push_back(makeUtf8());
    Out.push_back(makeUpstr());
    Out.push_back(makeM3s());
    Out.push_back(makeIpChecksum());
    Out.push_back(makeFasta());
    Out.push_back(makeCrc32());
    return Out;
  }();
  return Programs;
}

const ProgramDef *findProgram(const std::string &Name) {
  for (const ProgramDef &P : allPrograms())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

Result<CompiledProgram> compileAndValidate(const ProgramDef &P,
                                           bool RunValidation) {
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
  if (!R)
    return R.takeError().note("while compiling program " + P.Name);

  CompiledProgram Out{R.take(), bedrock::Module{}};
  Out.Linked.Functions.push_back(Out.Result.Fn);

  if (RunValidation) {
    validate::ValidationOptions VO = P.VOpts;
    VO.Hints = P.Hints; // The analyzer assumes exactly what the compiler did.
    Status V = validate::validate(P.Model, P.Spec, Out.Result, Out.Linked,
                                  VO);
    if (!V)
      return V.takeError().note("while validating program " + P.Name);
  }
  return Out;
}

} // namespace programs
} // namespace relc
