# Empty compiler generated dependencies file for effects_tour.
# This may be replaced when dependencies are built.
