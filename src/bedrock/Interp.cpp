//===- bedrock/Interp.cpp - Fuel-bounded big-step interpreter -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "bedrock/Interp.h"

#include "support/StringExtras.h"

#include <set>

namespace relc {
namespace bedrock {

//===----------------------------------------------------------------------===//
// Memory.
//===----------------------------------------------------------------------===//

Word Memory::alloc(Word Size) {
  Word Base = NextBase;
  // Guard gap after every allocation; also keeps bases distinct for
  // zero-size allocations.
  NextBase += Size + 0x1000;
  NextBase = (NextBase + 0xfff) & ~Word(0xfff);
  Regions[Base].Bytes.resize(Size);
  return Base;
}

Status Memory::free(Word Base, Word Size) {
  auto It = Regions.find(Base);
  if (It == Regions.end())
    return Error("free: " + hexStr(Base) + " is not a live allocation base");
  if (It->second.Bytes.size() != Size)
    return Error("free: size mismatch at " + hexStr(Base) + ": have " +
                 std::to_string(It->second.Bytes.size()) + ", freeing " +
                 std::to_string(Size));
  Regions.erase(It);
  return Status::success();
}

const Memory::Region *Memory::find(Word Addr, Word *Offset) const {
  auto It = Regions.upper_bound(Addr);
  if (It == Regions.begin())
    return nullptr;
  --It;
  Word Off = Addr - It->first;
  if (Off >= It->second.Bytes.size())
    return nullptr;
  *Offset = Off;
  return &It->second;
}

Memory::Region *Memory::find(Word Addr, Word *Offset) {
  return const_cast<Region *>(
      static_cast<const Memory *>(this)->find(Addr, Offset));
}

Result<uint8_t> Memory::loadByte(Word Addr) const {
  Word Off;
  const Region *R = find(Addr, &Off);
  if (!R)
    return Error("load of unmapped address " + hexStr(Addr));
  return R->Bytes[Off];
}

Status Memory::storeByte(Word Addr, uint8_t Value) {
  Word Off;
  Region *R = find(Addr, &Off);
  if (!R)
    return Error("store to unmapped address " + hexStr(Addr));
  R->Bytes[Off] = Value;
  return Status::success();
}

Result<Word> Memory::loadN(AccessSize Size, Word Addr) const {
  Word Off;
  const Region *R = find(Addr, &Off);
  unsigned N = unsigned(Size);
  if (!R || Off + N > R->Bytes.size())
    return Error("load" + std::to_string(N) + " out of bounds at " +
                 hexStr(Addr));
  Word V = 0;
  for (unsigned I = 0; I < N; ++I)
    V |= Word(R->Bytes[Off + I]) << (8 * I);
  return V;
}

Status Memory::storeN(AccessSize Size, Word Addr, Word Value) {
  Word Off;
  Region *R = find(Addr, &Off);
  unsigned N = unsigned(Size);
  if (!R || Off + N > R->Bytes.size())
    return Error("store" + std::to_string(N) + " out of bounds at " +
                 hexStr(Addr));
  for (unsigned I = 0; I < N; ++I)
    R->Bytes[Off + I] = uint8_t(Value >> (8 * I));
  return Status::success();
}

Status Memory::fill(Word Addr, const std::vector<uint8_t> &Bytes) {
  for (size_t I = 0; I < Bytes.size(); ++I) {
    Status S = storeByte(Addr + I, Bytes[I]);
    if (!S)
      return S;
  }
  return Status::success();
}

Result<std::vector<uint8_t>> Memory::read(Word Addr, Word Len) const {
  std::vector<uint8_t> Out(Len);
  for (Word I = 0; I < Len; ++I) {
    Result<uint8_t> B = loadByte(Addr + I);
    if (!B)
      return B.takeError();
    Out[I] = *B;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Traces and environments.
//===----------------------------------------------------------------------===//

std::string Event::str() const {
  std::vector<std::string> A, R;
  for (Word W : Args)
    A.push_back(hexStr(W));
  for (Word W : Rets)
    R.push_back(hexStr(W));
  return Action + "(" + join(A, ", ") + ") -> (" + join(R, ", ") + ")";
}

std::string str(const Trace &T) {
  std::string Out;
  for (const Event &E : T)
    Out += E.str() + "\n";
  return Out;
}

Result<std::vector<Word>> TapeEnv::interact(const std::string &Action,
                                            const std::vector<Word> &Args) {
  if (Action == "read") {
    Word V = Next < Input.size() ? Input[Next++] : 0;
    return std::vector<Word>{V};
  }
  if (Action == "write") {
    if (Args.size() != 1)
      return Error("write expects one argument");
    Output.push_back(Args[0]);
    return std::vector<Word>{};
  }
  return Error("TapeEnv: unknown external action '" + Action + "'");
}

//===----------------------------------------------------------------------===//
// Interpreter.
//===----------------------------------------------------------------------===//

Result<Word> Interp::evalExpr(const State &S, const Function &Fn,
                              const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Literal:
    return cast<Literal>(&E)->value();
  case Expr::Kind::Var: {
    const auto *V = cast<Var>(&E);
    auto It = S.Vars.find(V->name());
    if (It == S.Vars.end())
      return Error("read of undefined local '" + V->name() + "'");
    return It->second;
  }
  case Expr::Kind::Load: {
    const auto *L = cast<Load>(&E);
    Result<Word> Addr = evalExpr(S, Fn, *L->addr());
    if (!Addr)
      return Addr.takeError();
    return S.Mem.loadN(L->size(), *Addr);
  }
  case Expr::Kind::TableGet: {
    const auto *T = cast<TableGet>(&E);
    const InlineTable *Tbl = Fn.findTable(T->table());
    if (!Tbl)
      return Error("unknown inline table '" + T->table() + "' in function " +
                   Fn.Name);
    Result<Word> Idx = evalExpr(S, Fn, *T->index());
    if (!Idx)
      return Idx.takeError();
    if (*Idx >= Tbl->Elements.size())
      return Error("inline-table index " + std::to_string(*Idx) +
                   " out of bounds for " + T->table() + "[" +
                   std::to_string(Tbl->Elements.size()) + "]");
    // Entries are stored in EltSize bytes; reading uses the same width.
    Word Mask = unsigned(Tbl->EltSize) == 8
                    ? ~Word(0)
                    : ((Word(1) << (8 * unsigned(Tbl->EltSize))) - 1);
    return Tbl->Elements[*Idx] & Mask;
  }
  case Expr::Kind::Bin: {
    const auto *B = cast<Bin>(&E);
    Result<Word> L = evalExpr(S, Fn, *B->lhs());
    if (!L)
      return L.takeError();
    Result<Word> R = evalExpr(S, Fn, *B->rhs());
    if (!R)
      return R.takeError();
    return evalBinOp(B->op(), *L, *R);
  }
  }
  return Error("unknown expression kind");
}

Status Interp::execCmd(State &S, const Function &Fn, const Cmd &C) {
  resetFuel();
  return execCmdInner(S, Fn, C);
}

Status Interp::execCmdInner(State &S, const Function &Fn, const Cmd &C) {
  if (FuelLeft == 0) {
    FuelExhausted = true;
    return Error("out of fuel (nonterminating or excessively long run)");
  }
  --FuelLeft;

  switch (C.kind()) {
  case Cmd::Kind::Skip:
    return Status::success();

  case Cmd::Kind::Set: {
    const auto *SetC = cast<Set>(&C);
    Result<Word> V = evalExpr(S, Fn, *SetC->value());
    if (!V)
      return V.takeError().note("in " + SetC->str(0));
    S.Vars[SetC->name()] = *V;
    return Status::success();
  }

  case Cmd::Kind::Unset: {
    S.Vars.erase(cast<Unset>(&C)->name());
    return Status::success();
  }

  case Cmd::Kind::Store: {
    const auto *St = cast<Store>(&C);
    Result<Word> Addr = evalExpr(S, Fn, *St->addr());
    if (!Addr)
      return Addr.takeError();
    Result<Word> Val = evalExpr(S, Fn, *St->value());
    if (!Val)
      return Val.takeError();
    Status Ok = S.Mem.storeN(St->size(), *Addr, *Val);
    if (!Ok)
      return Ok.takeError().note("in " + St->str(0));
    return Status::success();
  }

  case Cmd::Kind::Seq: {
    const auto *Sq = cast<Seq>(&C);
    Status First = execCmdInner(S, Fn, *Sq->first());
    if (!First)
      return First;
    return execCmdInner(S, Fn, *Sq->second());
  }

  case Cmd::Kind::If: {
    const auto *I = cast<If>(&C);
    Result<Word> Cond = evalExpr(S, Fn, *I->cond());
    if (!Cond)
      return Cond.takeError();
    return execCmdInner(S, Fn, *Cond != 0 ? *I->thenCmd() : *I->elseCmd());
  }

  case Cmd::Kind::While: {
    const auto *W = cast<While>(&C);
    while (true) {
      if (FuelLeft == 0) {
        FuelExhausted = true;
        return Error("out of fuel in while loop");
      }
      --FuelLeft;
      Result<Word> Cond = evalExpr(S, Fn, *W->cond());
      if (!Cond)
        return Cond.takeError();
      if (*Cond == 0)
        return Status::success();
      Status Body = execCmdInner(S, Fn, *W->body());
      if (!Body)
        return Body;
    }
  }

  case Cmd::Kind::Call: {
    const auto *Cl = cast<Call>(&C);
    std::vector<Word> Args;
    for (const ExprPtr &A : Cl->args()) {
      Result<Word> V = evalExpr(S, Fn, *A);
      if (!V)
        return V.takeError();
      Args.push_back(*V);
    }
    Result<std::vector<Word>> Rets = callFunction(S, Cl->callee(), Args);
    if (!Rets)
      return Rets.takeError().note("in call to " + Cl->callee());
    if (Rets->size() != Cl->rets().size())
      return Error("call to " + Cl->callee() + ": arity mismatch on returns");
    for (size_t I = 0; I < Rets->size(); ++I)
      S.Vars[Cl->rets()[I]] = (*Rets)[I];
    return Status::success();
  }

  case Cmd::Kind::Stackalloc: {
    const auto *SA = cast<Stackalloc>(&C);
    Word Base = S.Mem.alloc(SA->numBytes());
    // Model uninitialized contents nondeterministically.
    std::vector<uint8_t> Junk(SA->numBytes());
    for (uint8_t &B : Junk)
      B = Nondet.nextByte();
    Status Filled = S.Mem.fill(Base, Junk);
    if (!Filled)
      return Filled;
    S.Vars[SA->name()] = Base;
    Status Body = execCmdInner(S, Fn, *SA->body());
    if (!Body)
      return Body;
    // Scope exit: the block must still be intact (Bedrock2 requires the
    // stack region to be reconstituted when the scope ends).
    Status Freed = S.Mem.free(Base, SA->numBytes());
    if (!Freed)
      return Freed.takeError().note("stackalloc scope exit for " + SA->name());
    S.Vars.erase(SA->name());
    return Status::success();
  }

  case Cmd::Kind::Interact: {
    const auto *In = cast<Interact>(&C);
    std::vector<Word> Args;
    for (const ExprPtr &A : In->args()) {
      Result<Word> V = evalExpr(S, Fn, *A);
      if (!V)
        return V.takeError();
      Args.push_back(*V);
    }
    Result<std::vector<Word>> Rets = Env.interact(In->action(), Args);
    if (!Rets)
      return Rets.takeError().note("in external action " + In->action());
    if (Rets->size() != In->rets().size())
      return Error("external action " + In->action() +
                   ": arity mismatch on returns");
    S.Tr.push_back(Event{In->action(), Args, *Rets});
    for (size_t I = 0; I < Rets->size(); ++I)
      S.Vars[In->rets()[I]] = (*Rets)[I];
    return Status::success();
  }
  }
  return Error("unknown command kind");
}

Result<std::vector<Word>> Interp::callFunction(State &S,
                                               const std::string &Name,
                                               const std::vector<Word> &Args) {
  if (CallDepth == 0)
    resetFuel();
  const Function *Fn = Mod.find(Name);
  if (!Fn)
    return Error("call to unknown function '" + Name + "'");
  if (Fn->Args.size() != Args.size())
    return Error("call to " + Name + ": expected " +
                 std::to_string(Fn->Args.size()) + " args, got " +
                 std::to_string(Args.size()));
  if (++CallDepth > 1024) {
    --CallDepth;
    return Error("call depth exceeded (runaway recursion)");
  }

  // Function-scoped locals: swap in a fresh frame.
  Locals Saved = std::move(S.Vars);
  S.Vars = Locals();
  for (size_t I = 0; I < Args.size(); ++I)
    S.Vars[Fn->Args[I]] = Args[I];

  Status Body = execCmdInner(S, *Fn, *Fn->Body);
  if (!Body) {
    --CallDepth;
    S.Vars = std::move(Saved);
    return Body.takeError().note("in function " + Name);
  }

  std::vector<Word> Rets;
  for (const std::string &R : Fn->Rets) {
    auto It = S.Vars.find(R);
    if (It == S.Vars.end()) {
      --CallDepth;
      S.Vars = std::move(Saved);
      return Error("function " + Name + " ended without setting return '" +
                   R + "'");
    }
    Rets.push_back(It->second);
  }
  S.Vars = std::move(Saved);
  --CallDepth;
  return Rets;
}

Result<RunResult>
runFunction(const Module &Mod, const std::string &Name,
            const std::vector<Word> &Args, ExtHandler &Env,
            const std::function<Status(State &, std::vector<Word> &)> &Setup,
            ExecOptions Opts) {
  State S;
  std::vector<Word> ActualArgs = Args;
  if (Setup) {
    Status Ok = Setup(S, ActualArgs);
    if (!Ok)
      return Ok.takeError().note("in run setup");
  }
  Interp I(Mod, Env, Opts);
  Result<std::vector<Word>> Rets = I.callFunction(S, Name, ActualArgs);
  if (!Rets)
    return Rets.takeError();
  return RunResult{Rets.take(), std::move(S), I.fuelUsed()};
}

//===----------------------------------------------------------------------===//
// Static well-formedness.
//===----------------------------------------------------------------------===//

namespace {

class Verifier {
public:
  Verifier(const Module &Mod, const Function &Fn) : Mod(Mod), Fn(Fn) {}

  Status verifyExpr(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Literal:
    case Expr::Kind::Var:
      return Status::success();
    case Expr::Kind::Load:
      return verifyExpr(*cast<Load>(&E)->addr());
    case Expr::Kind::TableGet: {
      const auto *T = cast<TableGet>(&E);
      const InlineTable *Tbl = Fn.findTable(T->table());
      if (!Tbl)
        return Error("function " + Fn.Name + " references unknown table '" +
                     T->table() + "'");
      if (T->size() != Tbl->EltSize)
        return Error("table read width mismatch for '" + T->table() + "'");
      Word Mask = unsigned(Tbl->EltSize) == 8
                      ? ~Word(0)
                      : ((Word(1) << (8 * unsigned(Tbl->EltSize))) - 1);
      for (Word Elt : Tbl->Elements)
        if ((Elt & ~Mask) != 0)
          return Error("table '" + T->table() + "' has an element wider than " +
                       std::to_string(unsigned(Tbl->EltSize)) + " bytes");
      return verifyExpr(*T->index());
    }
    case Expr::Kind::Bin: {
      const auto *B = cast<Bin>(&E);
      Status L = verifyExpr(*B->lhs());
      if (!L)
        return L;
      return verifyExpr(*B->rhs());
    }
    }
    return Error("unknown expression kind");
  }

  Status verifyCmd(const Cmd &C) {
    switch (C.kind()) {
    case Cmd::Kind::Skip:
      return Status::success();
    case Cmd::Kind::Set: {
      const auto *SetC = cast<Set>(&C);
      if (SetC->name().empty())
        return Error("assignment to empty local name");
      return verifyExpr(*SetC->value());
    }
    case Cmd::Kind::Unset:
      return Status::success();
    case Cmd::Kind::Store: {
      const auto *St = cast<Store>(&C);
      Status A = verifyExpr(*St->addr());
      if (!A)
        return A;
      return verifyExpr(*St->value());
    }
    case Cmd::Kind::Seq: {
      const auto *Sq = cast<Seq>(&C);
      Status F = verifyCmd(*Sq->first());
      if (!F)
        return F;
      return verifyCmd(*Sq->second());
    }
    case Cmd::Kind::If: {
      const auto *I = cast<If>(&C);
      Status Cond = verifyExpr(*I->cond());
      if (!Cond)
        return Cond;
      Status T = verifyCmd(*I->thenCmd());
      if (!T)
        return T;
      return verifyCmd(*I->elseCmd());
    }
    case Cmd::Kind::While: {
      const auto *W = cast<While>(&C);
      Status Cond = verifyExpr(*W->cond());
      if (!Cond)
        return Cond;
      return verifyCmd(*W->body());
    }
    case Cmd::Kind::Call: {
      const auto *Cl = cast<Call>(&C);
      const Function *Callee = Mod.find(Cl->callee());
      if (!Callee)
        return Error("call to unknown function '" + Cl->callee() + "'");
      if (Callee->Args.size() != Cl->args().size())
        return Error("call to " + Cl->callee() + ": argument arity mismatch");
      if (Callee->Rets.size() != Cl->rets().size())
        return Error("call to " + Cl->callee() + ": return arity mismatch");
      for (const ExprPtr &A : Cl->args()) {
        Status S = verifyExpr(*A);
        if (!S)
          return S;
      }
      return Status::success();
    }
    case Cmd::Kind::Stackalloc: {
      const auto *SA = cast<Stackalloc>(&C);
      if (SA->name().empty())
        return Error("stackalloc with empty name");
      return verifyCmd(*SA->body());
    }
    case Cmd::Kind::Interact: {
      const auto *In = cast<Interact>(&C);
      for (const ExprPtr &A : In->args()) {
        Status S = verifyExpr(*A);
        if (!S)
          return S;
      }
      return Status::success();
    }
    }
    return Error("unknown command kind");
  }

private:
  const Module &Mod;
  const Function &Fn;
};

} // namespace

Status verifyModule(const Module &Mod) {
  std::set<std::string> Names;
  for (const Function &F : Mod.Functions) {
    if (!Names.insert(F.Name).second)
      return Error("duplicate function name '" + F.Name + "'");
    if (!F.Body)
      return Error("function '" + F.Name + "' has no body");
    std::set<std::string> TableNames;
    for (const InlineTable &T : F.Tables)
      if (!TableNames.insert(T.Name).second)
        return Error("duplicate table name '" + T.Name + "' in " + F.Name);
    Verifier V(Mod, F);
    Status Ok = V.verifyCmd(*F.Body);
    if (!Ok)
      return Ok.takeError().note("in function " + F.Name);
  }
  return Status::success();
}

} // namespace bedrock
} // namespace relc
