# Empty dependencies file for relc_core.
# This may be replaced when dependencies are built.
