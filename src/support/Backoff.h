//===- support/Backoff.h - Deterministic retry backoff ----------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// relc::backoff — the one retry-delay policy shared by every transient-
// failure loop (the relcd worker supervisor, service::Client's busy /
// connect retry): *decorrelated jitter*, the AWS-architecture variant of
// exponential backoff that avoids retry thundering herds without the
// full-jitter pathology of occasionally sleeping ~0 forever:
//
//   delay[0]   = uniform(base, 3 * base)
//   delay[n+1] = min(cap, uniform(base, 3 * delay[n]))
//
// The schedule is a pure function of (base, cap, seed): "randomness"
// comes from a splitmix-style hash chain (support/Hash.h), never from
// wall time or a global RNG, matching the fault registry's determinism
// contract — a retried fault-matrix run backs off identically every
// time, and the unit test pins the exact schedule.
//
// A Schedule computes delays only; it never sleeps. Callers own the
// clock, which is what lets tests substitute a fake one (the Client
// retry hook records delays instead of sleeping through them).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_BACKOFF_H
#define RELC_SUPPORT_BACKOFF_H

#include "support/Hash.h"

#include <cstdint>

namespace relc {
namespace backoff {

struct Policy {
  unsigned BaseMs = 25;  ///< Minimum delay, and the first delay's floor.
  unsigned CapMs = 1000; ///< Hard ceiling on any single delay.
  uint64_t Seed = 0;     ///< Selects the jitter sequence.
};

/// One deterministic decorrelated-jitter delay sequence. next() returns
/// the delay in ms for the upcoming retry; the caller sleeps (or, in
/// tests, records).
class Schedule {
public:
  explicit Schedule(Policy P)
      : P(P), State(hash::mix64(P.Seed ^ 0x9e3779b97f4a7c15ull)),
        Prev(P.BaseMs ? P.BaseMs : 1) {}

  unsigned next() {
    State = hash::mix64(State + 0x9e3779b97f4a7c15ull);
    uint64_t Lo = P.BaseMs;
    uint64_t Hi = uint64_t(Prev) * 3;
    if (Hi < Lo)
      Hi = Lo;
    uint64_t D = Lo + State % (Hi - Lo + 1);
    if (D > P.CapMs)
      D = P.CapMs;
    Prev = unsigned(D ? D : 1);
    return unsigned(D);
  }

  const Policy &policy() const { return P; }

private:
  Policy P;
  uint64_t State;
  unsigned Prev; ///< Last returned delay (the decorrelation term).
};

} // namespace backoff
} // namespace relc

#endif // RELC_SUPPORT_BACKOFF_H
