//===- tests/support/BackoffTest.cpp - Decorrelated-jitter backoff ---------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The deterministic decorrelated-jitter schedule behind every retry loop
// in the service layer (client reconnects, supervisor job retries). The
// schedule is pure computation — the caller owns the sleeping — so these
// tests pin the exact delays a given (policy, seed) produces, the same
// way the wire tests pin frame bytes: a silent change to retry pacing is
// a test failure, not a production surprise.
//
//===----------------------------------------------------------------------===//

#include "support/Backoff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace relc;

namespace {

std::vector<unsigned> take(backoff::Schedule &S, unsigned N) {
  std::vector<unsigned> Out;
  for (unsigned I = 0; I < N; ++I)
    Out.push_back(S.next());
  return Out;
}

TEST(BackoffTest, SamePolicySameSequence) {
  backoff::Schedule A({25, 1000, 7});
  backoff::Schedule B({25, 1000, 7});
  EXPECT_EQ(take(A, 32), take(B, 32));
}

TEST(BackoffTest, SeedDecorrelatesSchedules) {
  backoff::Schedule A({25, 1000, 0});
  backoff::Schedule B({25, 1000, 1});
  EXPECT_NE(take(A, 16), take(B, 16));
}

TEST(BackoffTest, DelaysRespectDecorrelatedJitterBounds) {
  // The AWS decorrelated-jitter contract: every delay lies in
  // [base, min(cap, 3 * previous delay)].
  for (uint64_t Seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    backoff::Policy P{25, 1000, Seed};
    backoff::Schedule S(P);
    unsigned Prev = P.BaseMs;
    for (unsigned I = 0; I < 256; ++I) {
      unsigned D = S.next();
      EXPECT_GE(D, P.BaseMs) << "seed " << Seed << " step " << I;
      EXPECT_LE(D, std::min<uint64_t>(P.CapMs, uint64_t(Prev) * 3))
          << "seed " << Seed << " step " << I;
      Prev = D;
    }
  }
}

TEST(BackoffTest, CapClampsTheTail) {
  backoff::Policy P{50, 120, 3};
  backoff::Schedule S(P);
  bool SawCapRegion = false;
  for (unsigned I = 0; I < 128; ++I) {
    unsigned D = S.next();
    EXPECT_GE(D, 50u);
    EXPECT_LE(D, 120u);
    SawCapRegion |= D > 100;
  }
  EXPECT_TRUE(SawCapRegion); // The schedule actually grows to the cap.
}

TEST(BackoffTest, GoldenSequencesArePinned) {
  // Regenerate by printing the first 8 delays if the mixing function
  // ever changes intentionally; a silent change to retry pacing (and to
  // every test that fakes the clock against it) should fail loudly.
  backoff::Schedule S0({25, 1000, 0});
  EXPECT_EQ(take(S0, 8),
            (std::vector<unsigned>{29, 26, 61, 77, 147, 342, 40, 89}));
  backoff::Schedule S42({25, 1000, 42});
  EXPECT_EQ(take(S42, 8),
            (std::vector<unsigned>{72, 70, 141, 395, 397, 120, 239, 397}));
}

TEST(BackoffTest, ZeroBasePolicyStillProgresses) {
  // A degenerate base of 0 must not wedge the growth recurrence
  // (3 * prev with prev pinned at 0) or divide by zero.
  backoff::Schedule S({0, 100, 9});
  unsigned Max = 0;
  for (unsigned I = 0; I < 64; ++I) {
    unsigned D = S.next();
    EXPECT_LE(D, 100u);
    Max = std::max(Max, D);
  }
  EXPECT_GT(Max, 0u);
}

} // namespace
