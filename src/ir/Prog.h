//===- ir/Prog.h - let/n programs and loop combinators ---------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// FunLang programs are sequences of named let-bindings ("in general,
// Rupicola expects input programs to be sequences of let-bindings, one per
// desired assignment in the target language", §3.4.1) ending in a tuple of
// returned names. The *name* carried by each binding is a semantically
// transparent annotation: rebinding an array or cell name means in-place
// mutation in the target; binding a fresh name means a new local.
//
// Bindings bind either pure expressions or one of the structured combinators
// (ListArray.map, folds, ranged iteration, while, conditionals, stack
// allocation) or a monadic primitive (nondet / writer / IO / cell state).
// Which primitives may appear is governed by the program's ambient monad;
// pure bindings are legal in every monad (§3.4.1: a single lemma for pure
// addition applies to all monadic programs).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_IR_PROG_H
#define RELC_IR_PROG_H

#include "ir/Expr.h"

#include <memory>
#include <string>
#include <vector>

namespace relc {
namespace ir {

/// The ambient effect of a model (§3.4.1, extensional effects).
enum class Monad : uint8_t {
  Pure,   ///< No extensional effects (mutation is intensional).
  Nondet, ///< Nondeterministic choice (A -> Prop encoding in the paper).
  Writer, ///< Accumulates a list of output words.
  Io      ///< Reads from and writes to the environment; trace-observable.
};

const char *monadName(Monad M);

class Prog; // Forward declaration; bindings contain sub-programs.
using ProgPtr = std::shared_ptr<const Prog>;

//===----------------------------------------------------------------------===//
// Bound forms: the right-hand sides of let/n.
//===----------------------------------------------------------------------===//

class BoundForm {
public:
  enum class Kind {
    PureVal,      ///< let/n x := <expr>
    ArrayPut,     ///< let/n a := ListArray.put a i v   (mutation if same name)
    ListMap,      ///< let/n a := ListArray.map f a     (in-place map)
    ListFold,     ///< let/n acc := List.fold_left f a init
    FoldBreak,    ///< let/n acc := fold_break f a init brk  (early exit)
    RangeFold,    ///< let/n (accs..) := ranged_for lo hi accs body
    WhileComb,    ///< let/n (accs..) := while cond accs body  (with measure)
    IfBound,      ///< let/n (xs..) := if c then <prog> else <prog>
    StackInit,    ///< let/n p := stack (bytes...)            (§4.1.2)
    StackUninit,  ///< let/n p := stack_uninit n              (§4.1.2)
    NondetAlloc,  ///< let/n b <- nondet_alloc n   : arbitrary n bytes
    NondetPeek,   ///< let/n x <- nondet_peek      : arbitrary word
    IoRead,       ///< let/n x <- read ()
    IoWrite,      ///< let/n _ <- write e
    WriterTell,   ///< let/n _ <- tell e
    CellGet,      ///< let/n x := Cell.get c
    CellPut,      ///< let/n c := Cell.put c e
    CellIncr,     ///< let/n c := Cell.incr c e   (the Table-1 "iadd")
    CopyArr,      ///< let/n t := copy a   (explicit duplication, §3.4.1)
    ExternCall    ///< let/n (xs..) := call f args
  };

  explicit BoundForm(Kind K) : TheKind(K) {}
  virtual ~BoundForm() = default;

  Kind kind() const { return TheKind; }
  virtual std::string str() const = 0;

private:
  Kind TheKind;
};

using BoundPtr = std::shared_ptr<const BoundForm>;

class PureVal : public BoundForm {
public:
  explicit PureVal(ExprPtr E) : BoundForm(Kind::PureVal), E(std::move(E)) {}
  const Expr *expr() const { return E.get(); }
  ExprPtr exprPtr() const { return E; }
  std::string str() const override { return E->str(); }
  static bool classof(const BoundForm *B) { return B->kind() == Kind::PureVal; }

private:
  ExprPtr E;
};

class ArrayPut : public BoundForm {
public:
  ArrayPut(std::string Array, ExprPtr Index, ExprPtr Val)
      : BoundForm(Kind::ArrayPut), Array(std::move(Array)),
        Index(std::move(Index)), Val(std::move(Val)) {}
  const std::string &array() const { return Array; }
  const Expr *index() const { return Index.get(); }
  const Expr *val() const { return Val.get(); }
  ExprPtr indexPtr() const { return Index; }
  ExprPtr valPtr() const { return Val; }
  std::string str() const override {
    return "ListArray.put " + Array + " " + Index->str() + " " + Val->str();
  }
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::ArrayPut;
  }

private:
  std::string Array;
  ExprPtr Index, Val;
};

class ListMap : public BoundForm {
public:
  ListMap(std::string Array, std::string Param, ExprPtr Body)
      : BoundForm(Kind::ListMap), Array(std::move(Array)),
        Param(std::move(Param)), Body(std::move(Body)) {}
  const std::string &array() const { return Array; }
  const std::string &param() const { return Param; }
  const Expr *body() const { return Body.get(); }
  ExprPtr bodyPtr() const { return Body; }
  std::string str() const override {
    return "ListArray.map (fun " + Param + " => " + Body->str() + ") " + Array;
  }
  static bool classof(const BoundForm *B) { return B->kind() == Kind::ListMap; }

private:
  std::string Array;
  std::string Param;
  ExprPtr Body;
};

class ListFold : public BoundForm {
public:
  ListFold(std::string Array, std::string AccParam, std::string EltParam,
           ExprPtr Init, ExprPtr Body)
      : BoundForm(Kind::ListFold), Array(std::move(Array)),
        AccParam(std::move(AccParam)), EltParam(std::move(EltParam)),
        Init(std::move(Init)), Body(std::move(Body)) {}
  const std::string &array() const { return Array; }
  const std::string &accParam() const { return AccParam; }
  const std::string &eltParam() const { return EltParam; }
  const Expr *init() const { return Init.get(); }
  const Expr *body() const { return Body.get(); }
  ExprPtr initPtr() const { return Init; }
  ExprPtr bodyPtr() const { return Body; }
  std::string str() const override {
    return "List.fold_left (fun " + AccParam + " " + EltParam + " => " +
           Body->str() + ") " + Array + " " + Init->str();
  }
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::ListFold;
  }

private:
  std::string Array;
  std::string AccParam, EltParam;
  ExprPtr Init, Body;
};

/// copy a — explicit duplication (§3.4.1: wrapping "the value being bound
/// in a call to a copy function of type ∀α.α → α"). At the source level it
/// is the identity; at the target level it requests a fresh buffer instead
/// of mutation.
class CopyArr : public BoundForm {
public:
  explicit CopyArr(std::string Array)
      : BoundForm(Kind::CopyArr), Array(std::move(Array)) {}
  const std::string &array() const { return Array; }
  std::string str() const override { return "copy " + Array; }
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::CopyArr;
  }

private:
  std::string Array;
};

/// fold_break f a init brk — fold_left with early exit: before each
/// element, if brk(acc) holds, iteration stops and acc is returned. The
/// paper's "iteration patterns like maps and folds, with and without early
/// exits".
class FoldBreak : public BoundForm {
public:
  FoldBreak(std::string Array, std::string AccParam, std::string EltParam,
            ExprPtr Init, ExprPtr Body, ExprPtr Break)
      : BoundForm(Kind::FoldBreak), Array(std::move(Array)),
        AccParam(std::move(AccParam)), EltParam(std::move(EltParam)),
        Init(std::move(Init)), Body(std::move(Body)),
        Break(std::move(Break)) {}
  const std::string &array() const { return Array; }
  const std::string &accParam() const { return AccParam; }
  const std::string &eltParam() const { return EltParam; }
  const Expr *init() const { return Init.get(); }
  const Expr *body() const { return Body.get(); }
  const Expr *breakCond() const { return Break.get(); }
  std::string str() const override {
    return "fold_break (fun " + AccParam + " " + EltParam + " => " +
           Body->str() + ") " + Array + " " + Init->str() + " {until " +
           Break->str() + "}";
  }
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::FoldBreak;
  }

private:
  std::string Array;
  std::string AccParam, EltParam;
  ExprPtr Init, Body, Break;
};

/// One loop-carried accumulator: its name and initial value.
struct AccInit {
  std::string Name;
  ExprPtr Init;
};

/// ranged_for lo hi (fun i accs => body) accs0 — iterates i over [lo, hi)
/// threading the accumulators; the body is a whole sub-program whose returns
/// are the updated accumulators, in declaration order.
class RangeFold : public BoundForm {
public:
  RangeFold(std::string IdxName, ExprPtr Lo, ExprPtr Hi,
            std::vector<AccInit> Accs, ProgPtr Body)
      : BoundForm(Kind::RangeFold), IdxName(std::move(IdxName)),
        Lo(std::move(Lo)), Hi(std::move(Hi)), Accs(std::move(Accs)),
        Body(std::move(Body)) {}
  const std::string &idxName() const { return IdxName; }
  const Expr *lo() const { return Lo.get(); }
  const Expr *hi() const { return Hi.get(); }
  ExprPtr loPtr() const { return Lo; }
  ExprPtr hiPtr() const { return Hi; }
  const std::vector<AccInit> &accs() const { return Accs; }
  const Prog *body() const { return Body.get(); }
  ProgPtr bodyPtr() const { return Body; }
  std::string str() const override;
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::RangeFold;
  }

private:
  std::string IdxName;
  ExprPtr Lo, Hi;
  std::vector<AccInit> Accs;
  ProgPtr Body;
};

/// while cond accs body — general loop over the accumulators. Totality is
/// justified by a measure expression over the accumulators that the user
/// asserts is (a) a word that strictly decreases every iteration and (b)
/// therefore bounds the iteration count; the validator re-checks this
/// dynamically on every differential run (our stand-in for Bedrock2's
/// termination obligation).
class WhileComb : public BoundForm {
public:
  WhileComb(std::vector<AccInit> Accs, ExprPtr Cond, ProgPtr Body,
            ExprPtr Measure)
      : BoundForm(Kind::WhileComb), Accs(std::move(Accs)),
        Cond(std::move(Cond)), Body(std::move(Body)),
        Measure(std::move(Measure)) {}
  const std::vector<AccInit> &accs() const { return Accs; }
  const Expr *cond() const { return Cond.get(); }
  ExprPtr condPtr() const { return Cond; }
  const Prog *body() const { return Body.get(); }
  ProgPtr bodyPtr() const { return Body; }
  const Expr *measure() const { return Measure.get(); }
  std::string str() const override;
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::WhileComb;
  }

private:
  std::vector<AccInit> Accs;
  ExprPtr Cond;
  ProgPtr Body;
  ExprPtr Measure;
};

/// let/n (xs..) := if c then <prog> else <prog> — the multi-target
/// conditional from the §3.4.2 compare-and-swap example.
class IfBound : public BoundForm {
public:
  IfBound(ExprPtr Cond, ProgPtr Then, ProgPtr Else)
      : BoundForm(Kind::IfBound), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  const Expr *cond() const { return Cond.get(); }
  ExprPtr condPtr() const { return Cond; }
  const Prog *thenProg() const { return Then.get(); }
  const Prog *elseProg() const { return Else.get(); }
  ProgPtr thenPtr() const { return Then; }
  ProgPtr elsePtr() const { return Else; }
  std::string str() const override;
  static bool classof(const BoundForm *B) { return B->kind() == Kind::IfBound; }

private:
  ExprPtr Cond;
  ProgPtr Then, Else;
};

/// let/n p := stack (bytes) — a fresh buffer with the given initial
/// contents, lexically scoped to the rest of the function (§4.1.2).
class StackInit : public BoundForm {
public:
  explicit StackInit(std::vector<uint8_t> Bytes)
      : BoundForm(Kind::StackInit), Bytes(std::move(Bytes)) {}
  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::string str() const override {
    return "stack (" + std::to_string(Bytes.size()) + " bytes)";
  }
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::StackInit;
  }

private:
  std::vector<uint8_t> Bytes;
};

/// let/n p := stack_uninit n — a fresh buffer with unconstrained contents;
/// legal only when the overall result is provably independent of them,
/// which the differential validator checks by varying the nondet seed.
class StackUninit : public BoundForm {
public:
  explicit StackUninit(uint64_t Size)
      : BoundForm(Kind::StackUninit), Size(Size) {}
  uint64_t size() const { return Size; }
  std::string str() const override {
    return "stack_uninit " + std::to_string(Size);
  }
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::StackUninit;
  }

private:
  uint64_t Size;
};

/// Nondeterminism-monad primitives (Table 1's "nondet: alloc, peek").
class NondetAlloc : public BoundForm {
public:
  explicit NondetAlloc(uint64_t Size)
      : BoundForm(Kind::NondetAlloc), Size(Size) {}
  uint64_t size() const { return Size; }
  std::string str() const override {
    return "nondet_alloc " + std::to_string(Size);
  }
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::NondetAlloc;
  }

private:
  uint64_t Size;
};

class NondetPeek : public BoundForm {
public:
  NondetPeek() : BoundForm(Kind::NondetPeek) {}
  std::string str() const override { return "nondet_peek ()"; }
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::NondetPeek;
  }
};

/// IO-monad primitives (Table 1's "io: read, write").
class IoRead : public BoundForm {
public:
  IoRead() : BoundForm(Kind::IoRead) {}
  std::string str() const override { return "read ()"; }
  static bool classof(const BoundForm *B) { return B->kind() == Kind::IoRead; }
};

class IoWrite : public BoundForm {
public:
  explicit IoWrite(ExprPtr E) : BoundForm(Kind::IoWrite), E(std::move(E)) {}
  const Expr *expr() const { return E.get(); }
  ExprPtr exprPtr() const { return E; }
  std::string str() const override { return "write " + E->str(); }
  static bool classof(const BoundForm *B) { return B->kind() == Kind::IoWrite; }

private:
  ExprPtr E;
};

/// Writer-monad primitive (§4.1.1's walkthrough).
class WriterTell : public BoundForm {
public:
  explicit WriterTell(ExprPtr E) : BoundForm(Kind::WriterTell), E(std::move(E)) {}
  const Expr *expr() const { return E.get(); }
  ExprPtr exprPtr() const { return E; }
  std::string str() const override { return "tell " + E->str(); }
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::WriterTell;
  }

private:
  ExprPtr E;
};

/// Mutable-cell operations (Table 1's "cells: get, put, iadd"). Cells are
/// single-word containers; at the source level a cell is a one-element
/// list, so Cell.get unfolds to nth 0 and Cell.put to a functional update.
class CellGet : public BoundForm {
public:
  explicit CellGet(std::string Cell)
      : BoundForm(Kind::CellGet), Cell(std::move(Cell)) {}
  const std::string &cell() const { return Cell; }
  std::string str() const override { return "Cell.get " + Cell; }
  static bool classof(const BoundForm *B) { return B->kind() == Kind::CellGet; }

private:
  std::string Cell;
};

class CellPut : public BoundForm {
public:
  CellPut(std::string Cell, ExprPtr E)
      : BoundForm(Kind::CellPut), Cell(std::move(Cell)), E(std::move(E)) {}
  const std::string &cell() const { return Cell; }
  const Expr *expr() const { return E.get(); }
  ExprPtr exprPtr() const { return E; }
  std::string str() const override {
    return "Cell.put " + Cell + " " + E->str();
  }
  static bool classof(const BoundForm *B) { return B->kind() == Kind::CellPut; }

private:
  std::string Cell;
  ExprPtr E;
};

class CellIncr : public BoundForm {
public:
  CellIncr(std::string Cell, ExprPtr E)
      : BoundForm(Kind::CellIncr), Cell(std::move(Cell)), E(std::move(E)) {}
  const std::string &cell() const { return Cell; }
  const Expr *expr() const { return E.get(); }
  ExprPtr exprPtr() const { return E; }
  std::string str() const override {
    return "Cell.incr " + Cell + " " + E->str();
  }
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::CellIncr;
  }

private:
  std::string Cell;
  ExprPtr E;
};

/// External function call: links against other (compiled or handwritten)
/// target-level functions. Scalar arguments and results only.
class ExternCall : public BoundForm {
public:
  ExternCall(std::string Callee, std::vector<ExprPtr> Args, unsigned NumRets)
      : BoundForm(Kind::ExternCall), Callee(std::move(Callee)),
        Args(std::move(Args)), NumRets(NumRets) {}
  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }
  unsigned numRets() const { return NumRets; }
  std::string str() const override;
  static bool classof(const BoundForm *B) {
    return B->kind() == Kind::ExternCall;
  }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
  unsigned NumRets;
};

//===----------------------------------------------------------------------===//
// Programs and functions.
//===----------------------------------------------------------------------===//

/// One let/n binding: names (usually one; loops and conditionals may bind
/// several) plus the bound form.
struct Binding {
  std::vector<std::string> Names;
  BoundPtr Bound;

  std::string str() const;
};

/// A program: a let-chain followed by a tuple of returned names.
class Prog {
public:
  Prog(std::vector<Binding> Bindings, std::vector<std::string> Returns)
      : Bindings(std::move(Bindings)), Returns(std::move(Returns)) {}

  const std::vector<Binding> &bindings() const { return Bindings; }
  const std::vector<std::string> &returns() const { return Returns; }

  std::string str(unsigned Indent = 0) const;

  /// Total number of bindings, including nested sub-programs (the source
  /// analogue of the §4.3 statement count).
  unsigned countBindings() const;

private:
  std::vector<Binding> Bindings;
  std::vector<std::string> Returns;
};

/// A function parameter: either a scalar word or a list passed by layout
/// (the ABI decides how it appears at the target level).
struct Param {
  enum class Kind { ScalarWord, List, Cell };
  Kind TheKind = Kind::ScalarWord;
  std::string Name;
  EltKind Elt = EltKind::U8; ///< For List params.

  static Param scalar(std::string Name) {
    return {Kind::ScalarWord, std::move(Name), EltKind::U8};
  }
  static Param list(std::string Name, EltKind Elt) {
    return {Kind::List, std::move(Name), Elt};
  }
  static Param cell(std::string Name) {
    return {Kind::Cell, std::move(Name), EltKind::U64};
  }
};

/// A constant table attached to a function (InlineTable.get's target).
struct TableDef {
  std::string Name;
  EltKind Elt = EltKind::U8;
  std::vector<uint64_t> Elements;
};

/// A FunLang function: the annotated functional model fed to the compiler.
struct SourceFn {
  std::string Name;
  Monad TheMonad = Monad::Pure;
  std::vector<Param> Params;
  std::vector<TableDef> Tables;
  ProgPtr Body;

  const TableDef *findTable(const std::string &TableName) const;
  const Param *findParam(const std::string &ParamName) const;
  std::string str() const;
};

/// Stable lowercase name of a binding-construct kind (e.g. "list-map"),
/// used by the rule-metatheory coverage matrix and diagnostics.
const char *boundKindName(BoundForm::Kind K);

/// All binding-construct kinds, in declaration order: the rows of the
/// statement-engine coverage matrix.
const std::vector<BoundForm::Kind> &allBoundKinds();

} // namespace ir
} // namespace relc

#endif // RELC_IR_PROG_H
