//===- tests/ir/InterpTest.cpp - FunLang reference semantics ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Build.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace relc;
using namespace relc::ir;

namespace {

std::vector<Value> run(const SourceFn &Fn, std::vector<Value> Args,
                       EffectCtx &Ctx) {
  Result<std::vector<Value>> R = evalFn(Fn, Args, Ctx);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.error().str());
  return R ? R.take() : std::vector<Value>{};
}

TEST(InterpTest, LetChainThreadsBindings) {
  FnBuilder FB("f", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("y", addw(v("x"), cw(1))).let("z", mulw(v("y"), v("y")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"z", "y"}));
  EffectCtx Ctx;
  std::vector<Value> Out = run(Fn, {Value::word(4)}, Ctx);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].asWord(), 25u);
  EXPECT_EQ(Out[1].asWord(), 5u);
}

TEST(InterpTest, ShadowingRebindsName) {
  FnBuilder FB("f", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("x", addw(v("x"), cw(1))).let("x", addw(v("x"), cw(1)));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"x"}));
  EffectCtx Ctx;
  EXPECT_EQ(run(Fn, {Value::word(0)}, Ctx)[0].asWord(), 2u);
}

TEST(InterpTest, ListMapIsFunctional) {
  FnBuilder FB("f", Monad::Pure);
  FB.listParam("s", EltKind::U8);
  ProgBuilder B;
  B.let("t", mkMap("s", "b", w2b(addw(b2w(v("b")), cw(1)))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"t", "s"}));
  EffectCtx Ctx;
  std::vector<Value> Out = run(Fn, {Value::byteList({1, 2, 3})}, Ctx);
  EXPECT_EQ(Out[0].asBytes(), (std::vector<uint8_t>{2, 3, 4}));
  // The original list is unchanged: map is pure at the source level.
  EXPECT_EQ(Out[1].asBytes(), (std::vector<uint8_t>{1, 2, 3}));
}

TEST(InterpTest, ListFoldAccumulates) {
  FnBuilder FB("f", Monad::Pure);
  FB.listParam("s", EltKind::U8);
  ProgBuilder B;
  B.let("sum", mkFold("s", "sum", "b", cw(0), addw(v("sum"), b2w(v("b")))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"sum"}));
  EffectCtx Ctx;
  EXPECT_EQ(run(Fn, {Value::byteList({10, 20, 30})}, Ctx)[0].asWord(), 60u);
}

TEST(InterpTest, FoldBreakStopsEarly) {
  // Sum bytes until the accumulator reaches 100.
  FnBuilder FB("f", Monad::Pure);
  FB.listParam("s", EltKind::U8);
  ProgBuilder B;
  B.let("sum", mkFoldBreak("s", "sum", "b", cw(0),
                           addw(v("sum"), b2w(v("b"))),
                           ltu(cw(99), v("sum"))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"sum"}));
  EffectCtx Ctx;
  // 60 + 60 = 120 >= 100: the third element is never consumed.
  EXPECT_EQ(run(Fn, {Value::byteList({60, 60, 60})}, Ctx)[0].asWord(), 120u);
  EffectCtx Ctx2;
  // Never breaks: plain fold.
  EXPECT_EQ(run(Fn, {Value::byteList({1, 2, 3})}, Ctx2)[0].asWord(), 6u);
  EffectCtx Ctx3;
  EXPECT_EQ(run(Fn, {Value::byteList({})}, Ctx3)[0].asWord(), 0u);
}

TEST(InterpTest, ArrayPutUpdatesOneSlot) {
  FnBuilder FB("f", Monad::Pure);
  FB.listParam("s", EltKind::U8);
  ProgBuilder B;
  B.let("s", mkPut("s", cw(1), cb(99)));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"s"}));
  EffectCtx Ctx;
  EXPECT_EQ(run(Fn, {Value::byteList({1, 2, 3})}, Ctx)[0].asBytes(),
            (std::vector<uint8_t>{1, 99, 3}));
}

TEST(InterpTest, RangeFoldThreadsMultipleAccs) {
  // (sum, prod) over i in [1, 6).
  FnBuilder FB("f", Monad::Pure);
  ProgBuilder Body;
  Body.let("sum", addw(v("sum"), v("i"))).let("prod", mulw(v("prod"), v("i")));
  ProgBuilder B;
  B.letMulti({"sum", "prod"},
             mkRange("i", cw(1), cw(6), {acc("sum", cw(0)), acc("prod", cw(1))},
                     std::move(Body).ret({"sum", "prod"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"sum", "prod"}));
  EffectCtx Ctx;
  std::vector<Value> Out = run(Fn, {}, Ctx);
  EXPECT_EQ(Out[0].asWord(), 15u);
  EXPECT_EQ(Out[1].asWord(), 120u);
}

TEST(InterpTest, RangeFoldEmptyWhenLoGeHi) {
  FnBuilder FB("f", Monad::Pure);
  FB.wordParam("n");
  ProgBuilder Body;
  Body.let("c", addw(v("c"), cw(1)));
  ProgBuilder B;
  B.letMulti({"c"}, mkRange("i", v("n"), cw(3), {acc("c", cw(0))},
                            std::move(Body).ret({"c"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"c"}));
  EffectCtx Ctx;
  EXPECT_EQ(run(Fn, {Value::word(10)}, Ctx)[0].asWord(), 0u);
}

TEST(InterpTest, WhileRunsUntilCondFalse) {
  // Collatz-free: halve until zero, counting steps; measure is x itself.
  FnBuilder FB("f", Monad::Pure);
  FB.wordParam("x0");
  ProgBuilder Body;
  Body.let("x", shrw(v("x"), cw(1))).let("n", addw(v("n"), cw(1)));
  ProgBuilder B;
  B.letMulti({"x", "n"},
             mkWhile({acc("x", v("x0")), acc("n", cw(0))},
                     nez(v("x")), std::move(Body).ret({"x", "n"}), v("x")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"n"}));
  EffectCtx Ctx;
  EXPECT_EQ(run(Fn, {Value::word(255)}, Ctx)[0].asWord(), 8u);
  EffectCtx Ctx2;
  EXPECT_EQ(run(Fn, {Value::word(0)}, Ctx2)[0].asWord(), 0u);
}

TEST(InterpTest, WhileMeasureViolationIsAnError) {
  // Body does not decrease the declared measure: totality check fires.
  FnBuilder FB("f", Monad::Pure);
  ProgBuilder Body;
  Body.let("x", addw(v("x"), cw(1)));
  ProgBuilder B;
  B.letMulti({"x"}, mkWhile({acc("x", cw(1))}, nez(v("x")),
                            std::move(Body).ret({"x"}), v("x")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"x"}));
  EffectCtx Ctx;
  Result<std::vector<Value>> R = evalFn(Fn, {}, Ctx);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("measure"), std::string::npos);
}

TEST(InterpTest, IfBoundSelectsBranchProgram) {
  FnBuilder FB("f", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder Then;
  Then.let("r", cw(1));
  ProgBuilder Else;
  Else.let("r", cw(0));
  ProgBuilder B;
  B.letMulti({"r"}, mkIf(ltu(v("x"), cw(10)), std::move(Then).ret({"r"}),
                         std::move(Else).ret({"r"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  EffectCtx C1, C2;
  EXPECT_EQ(run(Fn, {Value::word(5)}, C1)[0].asWord(), 1u);
  EXPECT_EQ(run(Fn, {Value::word(50)}, C2)[0].asWord(), 0u);
}

TEST(InterpTest, StackInitHasGivenContents) {
  FnBuilder FB("f", Monad::Pure);
  ProgBuilder B;
  B.let("buf", mkStack({9, 8, 7})).let("x", b2w(aget("buf", cw(2))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"x"}));
  EffectCtx Ctx;
  EXPECT_EQ(run(Fn, {}, Ctx)[0].asWord(), 7u);
}

TEST(InterpTest, StackUninitDrawsFromOracle) {
  FnBuilder FB("f", Monad::Pure);
  ProgBuilder B;
  B.let("buf", mkStackUninit(4)).let("x", b2w(aget("buf", cw(0))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"x"}));
  EffectCtx A, B2;
  A.Nondet = Rng(1);
  B2.Nondet = Rng(2);
  // Different oracles give (almost surely) different junk — the property
  // the determinism check of validation rests on.
  uint64_t VA = run(Fn, {}, A)[0].asWord();
  uint64_t VB = run(Fn, {}, B2)[0].asWord();
  EXPECT_NE(VA, VB);
}

TEST(InterpTest, IoMonadReadsTapeAndLogs) {
  FnBuilder FB("f", Monad::Io);
  ProgBuilder B;
  B.let("a", mkIoRead())
      .let("b", mkIoRead())
      .let("_", mkIoWrite(addw(v("a"), v("b"))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"a"}));
  EffectCtx Ctx;
  Ctx.InputTape = {10, 32};
  run(Fn, {}, Ctx);
  EXPECT_EQ(Ctx.Output, (std::vector<uint64_t>{42}));
  ASSERT_EQ(Ctx.IoLog.size(), 3u);
  EXPECT_EQ(Ctx.IoLog[0], (std::pair<char, uint64_t>{'r', 10}));
  EXPECT_EQ(Ctx.IoLog[1], (std::pair<char, uint64_t>{'r', 32}));
  EXPECT_EQ(Ctx.IoLog[2], (std::pair<char, uint64_t>{'w', 42}));
}

TEST(InterpTest, ReadingPastTheTapeYieldsZero) {
  FnBuilder FB("f", Monad::Io);
  ProgBuilder B;
  B.let("a", mkIoRead());
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"a"}));
  EffectCtx Ctx; // Empty tape.
  EXPECT_EQ(run(Fn, {}, Ctx)[0].asWord(), 0u);
}

TEST(InterpTest, WriterAccumulatesInOrder) {
  FnBuilder FB("f", Monad::Writer);
  FB.wordParam("k");
  ProgBuilder B;
  B.let("_1", mkTell(v("k"))).let("_2", mkTell(mulw(v("k"), cw(2))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"k"}));
  EffectCtx Ctx;
  run(Fn, {Value::word(21)}, Ctx);
  EXPECT_EQ(Ctx.Output, (std::vector<uint64_t>{21, 42}));
}

TEST(InterpTest, CellsGetPutIncr) {
  FnBuilder FB("f", Monad::Pure);
  FB.cellParam("c");
  ProgBuilder B;
  B.let("x", mkCellGet("c"))
      .let("c", mkCellIncr("c", cw(5)))
      .let("y", mkCellGet("c"))
      .let("c", mkCellPut("c", mulw(v("y"), cw(2))))
      .let("z", mkCellGet("c"));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"x", "z", "c"}));
  EffectCtx Ctx;
  std::vector<Value> Out =
      run(Fn, {Value::list(EltKind::U64, {Value::word(10)})}, Ctx);
  EXPECT_EQ(Out[0].asWord(), 10u);
  EXPECT_EQ(Out[1].asWord(), 30u);
  EXPECT_EQ(Out[2].elems()[0].asWord(), 30u);
}

TEST(InterpTest, NondetAllocLengthIsFixed) {
  FnBuilder FB("f", Monad::Nondet);
  ProgBuilder B;
  B.let("buf", mkNondetAlloc(16));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"buf"}));
  EffectCtx Ctx;
  std::vector<Value> Out = run(Fn, {}, Ctx);
  EXPECT_EQ(Out[0].elems().size(), 16u); // λ l ⇒ length l = n.
}

TEST(InterpTest, ExternCallUsesRegisteredSemantics) {
  FnBuilder FB("f", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.letMulti({"y"}, mkCall("double", {v("x")}, 1))
      .let("r", addw(v("y"), cw(1)));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  EffectCtx Ctx;
  Ctx.ExternSem = [](const std::string &Name, const std::vector<Value> &As)
      -> Result<std::vector<Value>> {
    if (Name != "double")
      return Error("unknown");
    return std::vector<Value>{Value::word(As[0].asWord() * 2)};
  };
  EXPECT_EQ(run(Fn, {Value::word(20)}, Ctx)[0].asWord(), 41u);
}

TEST(InterpTest, FuelBoundsRunawayEvaluation) {
  // A while loop that keeps its measure decreasing for 2^63 steps would
  // exhaust any budget; fuel turns it into an error instead of a hang.
  FnBuilder FB("f", Monad::Pure);
  ProgBuilder Body;
  Body.let("x", subw(v("x"), cw(1)));
  ProgBuilder B;
  B.letMulti({"x"}, mkWhile({acc("x", cw(uint64_t(1) << 40))}, nez(v("x")),
                            std::move(Body).ret({"x"}), v("x")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"x"}));
  EffectCtx Ctx;
  EvalOptions Opts;
  Opts.Fuel = 10'000;
  Result<std::vector<Value>> R = evalFn(Fn, {}, Ctx, Opts);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("fuel"), std::string::npos);
}

} // namespace
