//===- tests/pipeline/PipelineTest.cpp - Parallel cert pipeline ------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// End-to-end checks of the suite-level driver: cold runs certify live and
// store verdicts; warm runs skip re-certification yet reproduce the exact
// same summary fields and .tv.json payloads; any mutation of the cache-key
// inputs (model, fnspec, emitted code) forces a miss; parallel and serial
// execution agree on every outcome.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace relc;
using namespace relc::pipeline;

namespace {

struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("relc-pipeline-test-" + Name))
               .string();
    std::filesystem::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

std::vector<const programs::ProgramDef *> suite() {
  std::vector<const programs::ProgramDef *> Out;
  for (const programs::ProgramDef &P : programs::allPrograms())
    Out.push_back(&P);
  return Out;
}

TEST(PipelineTest, ColdRunCertifiesLiveAndStores) {
  TempDir D("cold");
  PipelineOptions Opts;
  Opts.CacheDir = D.Path;
  PipelineStats Stats;
  std::vector<ProgramOutcome> Out = certifyPrograms(suite(), Opts, &Stats);

  ASSERT_EQ(Out.size(), suite().size());
  EXPECT_EQ(Stats.Failures, 0u);
  EXPECT_EQ(Stats.Cache.Hits, 0u);
  EXPECT_EQ(Stats.Cache.Misses, unsigned(Out.size()));
  EXPECT_EQ(Stats.Cache.Stores, unsigned(Out.size()));
  for (const ProgramOutcome &O : Out) {
    EXPECT_TRUE(O.ok()) << O.Def->Name;
    EXPECT_FALSE(O.CacheHit) << O.Def->Name;
    EXPECT_TRUE(O.Replay.Ran && O.Analysis.Ran && O.Tv.Ran &&
                O.Codelint.Ran && O.Diff.Ran)
        << O.Def->Name;
    EXPECT_FALSE(O.TvCertJson.empty()) << O.Def->Name;
    // The codelint layer proved the suite Safe and its record landed in
    // the certificate as the optional section.
    EXPECT_EQ(O.CodelintVerdictName, "safe") << O.Def->Name;
    EXPECT_NE(O.TvCertJson.find("\"codelint\""), std::string::npos)
        << O.Def->Name;
  }
}

TEST(PipelineTest, WarmRunSkipsRecertificationAndMatchesCold) {
  TempDir D("warm");
  PipelineOptions Opts;
  Opts.CacheDir = D.Path;
  std::vector<ProgramOutcome> Cold = certifyPrograms(suite(), Opts);

  PipelineStats Stats;
  std::vector<ProgramOutcome> Warm = certifyPrograms(suite(), Opts, &Stats);

  EXPECT_EQ(Stats.Cache.Hits, unsigned(Warm.size()));
  EXPECT_EQ(Stats.Cache.Misses, 0u);
  EXPECT_EQ(Stats.Cache.Stores, 0u);
  ASSERT_EQ(Warm.size(), Cold.size());
  for (size_t I = 0; I < Warm.size(); ++I) {
    const ProgramOutcome &W = Warm[I], &C = Cold[I];
    EXPECT_TRUE(W.CacheHit) << W.Def->Name;
    EXPECT_TRUE(W.ok()) << W.Def->Name;
    // No layer re-ran...
    EXPECT_FALSE(W.Replay.Ran || W.Analysis.Ran || W.Tv.Ran ||
                 W.Codelint.Ran || W.Diff.Ran)
        << W.Def->Name;
    // ...yet every replayable artifact and summary field is identical.
    EXPECT_TRUE(W.Key == C.Key) << W.Def->Name;
    EXPECT_EQ(W.TvCertJson, C.TvCertJson) << W.Def->Name;
    EXPECT_EQ(W.TvVerdictName, C.TvVerdictName) << W.Def->Name;
    EXPECT_EQ(W.TvLoops, C.TvLoops) << W.Def->Name;
    EXPECT_EQ(W.TvTerms, C.TvTerms) << W.Def->Name;
    EXPECT_EQ(W.AnalysisWarnings, C.AnalysisWarnings) << W.Def->Name;
    EXPECT_EQ(W.AnalysisDiags, C.AnalysisDiags) << W.Def->Name;
    EXPECT_EQ(W.CodelintVerdictName, C.CodelintVerdictName) << W.Def->Name;
    // The code itself was still freshly compiled and emitted.
    EXPECT_EQ(W.Compiled.Fn.str(), C.Compiled.Fn.str()) << W.Def->Name;
  }
}

TEST(PipelineTest, ParallelAndSerialOutcomesAgree) {
  PipelineOptions Serial, Parallel;
  Parallel.Jobs = 8;
  std::vector<ProgramOutcome> S = certifyPrograms(suite(), Serial);
  std::vector<ProgramOutcome> P = certifyPrograms(suite(), Parallel);
  ASSERT_EQ(S.size(), P.size());
  for (size_t I = 0; I < S.size(); ++I) {
    EXPECT_EQ(S[I].ok(), P[I].ok()) << S[I].Def->Name;
    EXPECT_EQ(S[I].ValidationError, P[I].ValidationError) << S[I].Def->Name;
    EXPECT_EQ(S[I].TvCertJson, P[I].TvCertJson) << S[I].Def->Name;
    EXPECT_EQ(S[I].AnalysisDiags, P[I].AnalysisDiags) << S[I].Def->Name;
    EXPECT_TRUE(S[I].Key == P[I].Key) << S[I].Def->Name;
  }
}

TEST(PipelineTest, CertKeySensitiveToEveryComponent) {
  const programs::ProgramDef *P = programs::findProgram("fnv1a");
  ASSERT_NE(P, nullptr);
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(P->Model, P->Spec, P->Hints);
  ASSERT_TRUE(bool(R));
  CertKey Base = certKeyFor(P->Model, P->Hints, P->Spec, R->Fn);

  // Model mutation: rename a parameter.
  {
    ir::SourceFn M = P->Model;
    M.Name = "fnv1a_prime";
    CertKey K = certKeyFor(M, P->Hints, P->Spec, R->Fn);
    EXPECT_NE(K.ModelHash, Base.ModelHash);
    EXPECT_EQ(K.CodeHash, Base.CodeHash);
  }
  // Spec mutation: drop the scalar return.
  {
    sep::FnSpec S = P->Spec;
    S.ScalarRets.clear();
    CertKey K = certKeyFor(P->Model, P->Hints, S, R->Fn);
    EXPECT_NE(K.SpecHash, Base.SpecHash);
    EXPECT_EQ(K.ModelHash, Base.ModelHash);
  }
  // Code mutation: append a statement to the emitted function.
  {
    bedrock::Function Fn = R->Fn;
    Fn.Body = bedrock::seq(Fn.Body, bedrock::set("x", bedrock::lit(1)));
    CertKey K = certKeyFor(P->Model, P->Hints, P->Spec, Fn);
    EXPECT_NE(K.CodeHash, Base.CodeHash);
    EXPECT_EQ(K.ModelHash, Base.ModelHash);
    EXPECT_EQ(K.SpecHash, Base.SpecHash);
  }
}

TEST(PipelineTest, TamperedCodeForcesCacheMissAndFailsAlone) {
  // Warm the cache with a clean suite run, then tamper with one program's
  // emitted code: its key changes (miss), it re-certifies live and fails;
  // sibling programs still hit the cache and stay green.
  TempDir D("tamper");
  PipelineOptions Opts;
  Opts.CacheDir = D.Path;
  certifyPrograms(suite(), Opts);

  TamperHook Tamper = [](const programs::ProgramDef &P,
                         core::CompileResult &R) {
    if (P.Name == "upstr")
      R.Fn.Body = bedrock::skip(); // Certifiably wrong.
  };
  PipelineStats Stats;
  std::vector<ProgramOutcome> Out =
      certifyPrograms(suite(), Opts, &Stats, Tamper);

  EXPECT_EQ(Stats.Failures, 1u);
  EXPECT_EQ(Stats.Cache.Hits, unsigned(Out.size()) - 1);
  EXPECT_EQ(Stats.Cache.Misses, 1u);
  EXPECT_EQ(Stats.Cache.Stores, 0u); // Failures are never cached.
  for (const ProgramOutcome &O : Out) {
    if (O.Def->Name == "upstr") {
      EXPECT_FALSE(O.ok());
      EXPECT_FALSE(O.CacheHit);
      EXPECT_FALSE(O.ValidationError.empty());
    } else {
      EXPECT_TRUE(O.ok()) << O.Def->Name;
      EXPECT_TRUE(O.CacheHit) << O.Def->Name;
    }
  }
}

TEST(PipelineTest, OptionsChangeForcesMiss) {
  TempDir D("opts");
  PipelineOptions Opts;
  Opts.CacheDir = D.Path;
  certifyPrograms(suite(), Opts);

  // Same programs, different layer set: verdicts must not be reused.
  PipelineOptions NoVal = Opts;
  NoVal.Validate = false;
  PipelineStats Stats;
  certifyPrograms(suite(), NoVal, &Stats);
  EXPECT_EQ(Stats.Cache.Hits, 0u);
  EXPECT_EQ(Stats.Cache.Misses, unsigned(suite().size()));

  // Toggling the codelint layer is an options change too.
  PipelineOptions NoCl = Opts;
  NoCl.Codelint = false;
  PipelineStats ClStats;
  certifyPrograms(suite(), NoCl, &ClStats);
  EXPECT_EQ(ClStats.Cache.Hits, 0u);
  EXPECT_EQ(ClStats.Cache.Misses, unsigned(suite().size()));
}

TEST(PipelineTest, CodelintRejectionIsNamedAndFailsAlone) {
  // Seed an out-of-bounds store into one program's emitted code with the
  // other certification layers off: the codelint layer alone must reject
  // it, with its stable kebab-case reason in the rendered failure, while
  // sibling programs certify normally.
  TamperHook Tamper = [](const programs::ProgramDef &P,
                         core::CompileResult &R) {
    if (P.Name == "fnv1a")
      R.Fn.Body = bedrock::seqAll(
          {R.Fn.Body,
           bedrock::store(bedrock::AccessSize::Byte,
                          bedrock::add(bedrock::var("s"), bedrock::var("len")),
                          bedrock::lit(0))});
  };
  PipelineOptions Opts;
  Opts.Validate = false;
  Opts.Analyze = false;
  Opts.Tv = false;
  PipelineStats Stats;
  std::vector<ProgramOutcome> Out =
      certifyPrograms(suite(), Opts, &Stats, Tamper);
  EXPECT_EQ(Stats.Failures, 1u);
  for (const ProgramOutcome &O : Out) {
    if (O.Def->Name == "fnv1a") {
      EXPECT_FALSE(O.ok());
      EXPECT_TRUE(O.Codelint.Ran);
      EXPECT_FALSE(O.Codelint.Ok);
      EXPECT_EQ(O.CodelintVerdictName, "unsafe");
      EXPECT_NE(O.ValidationError.find("codelint"), std::string::npos)
          << O.ValidationError;
      EXPECT_NE(O.ValidationError.find("oob-store"), std::string::npos)
          << O.ValidationError;
    } else {
      EXPECT_TRUE(O.ok()) << O.Def->Name << ": " << O.ValidationError;
      EXPECT_EQ(O.CodelintVerdictName, "safe") << O.Def->Name;
    }
  }
}

} // namespace
