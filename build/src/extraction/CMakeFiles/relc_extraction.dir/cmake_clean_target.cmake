file(REMOVE_RECURSE
  "librelc_extraction.a"
)
