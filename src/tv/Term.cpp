//===- tv/Term.cpp - Hash-consed term graph + normalization ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "tv/Term.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>

namespace relc {
namespace tv {

using bedrock::BinOp;

namespace {

bool isCommutative(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
  case BinOp::Mul:
  case BinOp::And:
  case BinOp::Or:
  case BinOp::Xor:
  case BinOp::Eq:
  case BinOp::Ne:
    return true;
  default:
    return false;
  }
}

/// Highest set bit of \p V, as an all-ones mask covering it (0 -> 0).
uint64_t onesCover(uint64_t V) {
  uint64_t M = V;
  M |= M >> 1;
  M |= M >> 2;
  M |= M >> 4;
  M |= M >> 8;
  M |= M >> 16;
  M |= M >> 32;
  return M;
}

bool isPow2Mask(uint64_t M) { return M != 0 && ((M + 1) & M) == 0; }

} // namespace

//===----------------------------------------------------------------------===//
// FoldRef.
//===----------------------------------------------------------------------===//
//
// Fold node operand layout (see TermGraph::fold):
//   [0]                    guard
//   [1 .. C]               carried initial values
//   [1+C .. 2C]            carried step terms
//   [1+2C + 2r, +1]        region r's (entry, next), regions sorted by name
//
// The view re-reads offsets through the graph on every access, so it
// survives pool reallocation (callers hold FoldRefs across substitute()).

unsigned FoldRef::numCarried() const { return G->foldRec(Fold).NumCarried; }

TermId FoldRef::guard() const { return G->op(Fold, 0); }

TermId FoldRef::init(unsigned J) const { return G->op(Fold, 1 + J); }

TermId FoldRef::next(unsigned J) const {
  return G->op(Fold, 1 + G->foldRec(Fold).NumCarried + J);
}

unsigned FoldRef::numRegions() const { return G->foldRec(Fold).NumRegions; }

std::string FoldRef::regionName(unsigned I) const {
  const TermGraph::FoldRec &R = G->foldRec(Fold);
  const TermGraph::RegionNameRec &NR = G->RegionNames[R.RegionsAt + I];
  return std::string(G->NamePool.data() + NR.NameAt, NR.NameLen);
}

TermId FoldRef::regionEntry(unsigned I) const {
  const TermGraph::FoldRec &R = G->foldRec(Fold);
  return G->op(Fold, 1 + 2 * R.NumCarried + 2 * I);
}

TermId FoldRef::regionNext(unsigned I) const {
  const TermGraph::FoldRec &R = G->foldRec(Fold);
  return G->op(Fold, 1 + 2 * R.NumCarried + 2 * I + 1);
}

//===----------------------------------------------------------------------===//
// Interning.
//===----------------------------------------------------------------------===//

TermGraph::TermGraph() {
  Nodes.reserve(256);
  OpPool.reserve(512);
  NamePool.reserve(1024);
  Table.assign(512, Slot{});
}

uint64_t TermGraph::hashNode(TermKind K, uint8_t W, uint64_t A,
                             std::string_view Name, const TermId *Ops,
                             uint32_t NumOps) {
  // The exact mix the pre-arena TermNode hash used: certificates and the
  // cache embed these hashes, so the algorithm is pinned byte-for-byte.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ull;
    H ^= H >> 29;
  };
  Mix(uint64_t(K));
  Mix(W);
  Mix(A);
  for (char C : Name)
    Mix(uint8_t(C));
  Mix(Name.size());
  for (uint32_t I = 0; I < NumOps; ++I)
    Mix(uint64_t(Ops[I]) * 0x9e3779b97f4a7c15ull + 1);
  return H;
}

bool TermGraph::sameNode(TermId Cand, TermKind K, uint8_t W, uint64_t A,
                         std::string_view Name, const TermId *Ops,
                         uint32_t NumOps) const {
  const Node &N = Nodes[Cand];
  if (N.K != K || N.W != W || N.A != A || N.NumOps != NumOps ||
      N.NameLen != Name.size())
    return false;
  if (!std::equal(Name.begin(), Name.end(), NamePool.data() + N.NameAt))
    return false;
  const TermId *CandOps = OpPool.data() + N.OpsAt;
  return std::equal(Ops, Ops + NumOps, CandOps);
}

void TermGraph::growTable() {
  std::vector<Slot> Old = std::move(Table);
  Table.assign(Old.size() * 2, Slot{});
  const size_t Mask = Table.size() - 1;
  for (const Slot &S : Old) {
    if (S.Id == NoTerm)
      continue;
    size_t I = size_t(S.Hash) & Mask;
    while (Table[I].Id != NoTerm)
      I = (I + 1) & Mask;
    Table[I] = S;
  }
}

TermId TermGraph::intern(TermKind K, uint8_t W, uint64_t A,
                         std::string_view Name, const TermId *Ops,
                         uint32_t NumOps) {
  // Every normalizing constructor funnels through here, so this one check
  // bounds the whole normalization engine (guard::Budget's step is a
  // relaxed fetch_add — negligible next to the hashing below).
  if (TheBudget)
    TheBudget->stepOrThrow();
  uint64_t H = hashNode(K, W, A, Name, Ops, NumOps);

  const size_t Mask = Table.size() - 1;
  size_t I = size_t(H) & Mask;
  while (Table[I].Id != NoTerm) {
    if (Table[I].Hash == H && sameNode(Table[I].Id, K, W, A, Name, Ops, NumOps))
      return Table[I].Id;
    I = (I + 1) & Mask;
  }

  Node N;
  N.K = K;
  N.W = W;
  N.NumOps = uint16_t(NumOps);
  N.A = A;
  N.Hash = H;
  N.OpsAt = uint32_t(OpPool.size());
  OpPool.insert(OpPool.end(), Ops, Ops + NumOps);
  N.NameAt = uint32_t(NamePool.size());
  N.NameLen = uint32_t(Name.size());
  NamePool.insert(NamePool.end(), Name.begin(), Name.end());

  TermId Id = TermId(Nodes.size());
  Nodes.push_back(N);
  Table[I] = {H, Id};
  if (++TableUsed * 4 >= Table.size() * 3)
    growTable();
  return Id;
}

//===----------------------------------------------------------------------===//
// Leaf constructors.
//===----------------------------------------------------------------------===//

TermId TermGraph::constant(uint64_t V) {
  return intern(TermKind::Const, 0, V, {}, nullptr, 0);
}

TermId TermGraph::sym(const std::string &Name) {
  return intern(TermKind::Sym, 0, 0, Name, nullptr, 0);
}

TermId TermGraph::arrInit(const std::string &Region, unsigned EltBytes) {
  return intern(TermKind::ArrInit, uint8_t(EltBytes), 0, Region, nullptr, 0);
}

TermId TermGraph::arrHavoc(const std::string &Sym, unsigned EltBytes) {
  return intern(TermKind::ArrHavoc, uint8_t(EltBytes), 0, Sym, nullptr, 0);
}

std::optional<uint64_t> TermGraph::asConst(TermId T) const {
  const Node &N = Nodes[T];
  if (N.K == TermKind::Const)
    return N.A;
  return std::nullopt;
}

unsigned TermGraph::eltBytesOf(TermId Arr) const {
  const Node &N = Nodes[Arr];
  switch (N.K) {
  case TermKind::ArrInit:
  case TermKind::ArrHavoc:
    return N.W;
  case TermKind::ArrStore:
  case TermKind::FoldOutArr:
    return N.W;
  case TermKind::ArrSelect:
    return eltBytesOf(op(Arr, 1));
  default:
    return 8; // Unknown array-ish term; widest (no masking).
  }
}

const TermGraph::FoldRec &TermGraph::foldRec(TermId Fold) const {
  // FoldRecs is sorted by construction (node ids are assigned in
  // increasing order, and every fold() appends exactly one record).
  auto It = std::lower_bound(FoldRecs.begin(), FoldRecs.end(), Fold,
                             [](const FoldRec &R, TermId T) {
                               return R.Fold < T;
                             });
  assert(It != FoldRecs.end() && It->Fold == Fold && "not a Fold node");
  return *It;
}

FoldRef TermGraph::foldInfo(TermId Fold) const {
  const FoldRec &R = foldRec(Fold);
  return FoldRef(this, Fold, uint32_t(&R - FoldRecs.data()));
}

//===----------------------------------------------------------------------===//
// Affine canonicalization.
//===----------------------------------------------------------------------===//

AffineView TermGraph::affine(TermId T) const {
  AffineView V;
  // Iterative worklist over the +/-/scale spine; atoms stop the recursion.
  struct Item {
    TermId T;
    uint64_t Scale;
  };
  std::vector<Item> Work{{T, 1}};
  auto AddAtom = [&V](TermId A, uint64_t C) {
    uint64_t &Slot = V.Coeffs[A];
    Slot += C;
    if (Slot == 0)
      V.Coeffs.erase(A);
  };
  while (!Work.empty()) {
    Item I = Work.back();
    Work.pop_back();
    if (I.Scale == 0)
      continue;
    const Node &N = Nodes[I.T];
    if (N.K == TermKind::Const) {
      V.K += N.A * I.Scale;
      continue;
    }
    if (N.K == TermKind::Bin) {
      BinOp Op = BinOp(N.A);
      TermId L = op(I.T, 0), R = op(I.T, 1);
      if (Op == BinOp::Add) {
        Work.push_back({L, I.Scale});
        Work.push_back({R, I.Scale});
        continue;
      }
      if (Op == BinOp::Sub) {
        Work.push_back({L, I.Scale});
        Work.push_back({R, uint64_t(0) - I.Scale});
        continue;
      }
      if (Op == BinOp::Mul) {
        if (auto C = asConst(R)) {
          Work.push_back({L, I.Scale * *C});
          continue;
        }
        if (auto C = asConst(L)) {
          Work.push_back({R, I.Scale * *C});
          continue;
        }
      }
      if (Op == BinOp::Shl) {
        if (auto C = asConst(R)) {
          // Shift amounts are taken mod 64 by the word semantics.
          Work.push_back({L, I.Scale << (*C & 63)});
          continue;
        }
      }
    }
    AddAtom(I.T, I.Scale);
  }
  return V;
}

TermId TermGraph::fromAffine(const AffineView &V) {
  if (V.Coeffs.empty())
    return constant(V.K);
  TermId Acc = NoTerm;
  // Atoms in id order: deterministic per graph, and substitute() rebuilds
  // through here so renamed terms re-canonicalize.
  for (const auto &[Atom, Coeff] : V.Coeffs) {
    TermId Piece =
        Coeff == 1 ? Atom : rawBin(BinOp::Mul, Atom, constant(Coeff));
    Acc = Acc == NoTerm ? Piece : rawBin(BinOp::Add, Acc, Piece);
  }
  if (V.K != 0)
    Acc = rawBin(BinOp::Add, Acc, constant(V.K));
  return Acc;
}

TermId TermGraph::rawBin(BinOp Op, TermId L, TermId R) {
  TermId O[2] = {L, R};
  return intern(TermKind::Bin, 0, uint64_t(Op), {}, O, 2);
}

//===----------------------------------------------------------------------===//
// Scalar constructors.
//===----------------------------------------------------------------------===//

TermId TermGraph::bin(BinOp Op, TermId L, TermId R) {
  auto CL = asConst(L), CR = asConst(R);
  if (CL && CR)
    return constant(bedrock::evalBinOp(Op, *CL, *CR));

  switch (Op) {
  case BinOp::Add:
  case BinOp::Sub: {
    AffineView A = affine(L);
    AffineView B = affine(R);
    AffineView Out;
    Out.Coeffs = std::move(A.Coeffs);
    Out.K = A.K;
    uint64_t Sign = Op == BinOp::Add ? 1 : uint64_t(0) - 1;
    for (const auto &[Atom, C] : B.Coeffs) {
      uint64_t &Slot = Out.Coeffs[Atom];
      Slot += Sign * C;
      if (Slot == 0)
        Out.Coeffs.erase(Atom);
    }
    Out.K += Sign * B.K;
    return fromAffine(Out);
  }
  case BinOp::Mul:
    if (CL || CR) {
      uint64_t C = CL ? *CL : *CR;
      TermId X = CL ? R : L;
      if (C == 0)
        return constant(0);
      AffineView A = affine(X);
      for (auto &[Atom, Coeff] : A.Coeffs)
        Coeff *= C;
      // Scaling cannot create new zero coefficients collisions (each key
      // scaled in place), but it can zero one (C even, coeff = 2^63...):
      for (auto It = A.Coeffs.begin(); It != A.Coeffs.end();)
        It = It->second == 0 ? A.Coeffs.erase(It) : std::next(It);
      A.K *= C;
      return fromAffine(A);
    }
    break;
  case BinOp::Shl:
    if (CR)
      return bin(BinOp::Mul, L, constant(uint64_t(1) << (*CR & 63)));
    break;
  default:
    break;
  }
  return binNonAffine(Op, L, R);
}

TermId TermGraph::binNonAffine(BinOp Op, TermId L, TermId R) {
  auto CL = asConst(L), CR = asConst(R);

  switch (Op) {
  case BinOp::And: {
    if (L == R)
      return L;
    // Normalize the constant (if any) to the right.
    if (CL && !CR) {
      std::swap(L, R);
      std::swap(CL, CR);
    }
    if (CR) {
      uint64_t M = *CR;
      if (M == 0)
        return constant(0);
      if (M == ~uint64_t(0))
        return L;
      // Mask erasure: if the value provably fits under a 2^k - 1 mask,
      // the And is the identity. This is what cancels redundant w2b
      // truncations on either side.
      if (isPow2Mask(M)) {
        if (auto Ub = upperBound(L))
          if (*Ub <= M)
            return L;
      }
      // Mask merging: And(And(x, c1), c2) = And(x, c1 & c2).
      if (kindOf(L) == TermKind::Bin && BinOp(attrOf(L)) == BinOp::And) {
        TermId L0 = op(L, 0), L1 = op(L, 1);
        if (auto C1 = asConst(L1))
          return bin(BinOp::And, L0, constant(*C1 & M));
      }
    }
    break;
  }
  case BinOp::Or:
  case BinOp::Xor: {
    if (CL && !CR) {
      std::swap(L, R);
      std::swap(CL, CR);
    }
    if (CR && *CR == 0)
      return L;
    if (L == R)
      return Op == BinOp::Or ? L : constant(0);
    break;
  }
  case BinOp::Shl:
  case BinOp::LShr:
  case BinOp::AShr:
    if (CR && (*CR & 63) == 0)
      return L;
    break;
  case BinOp::Eq:
    if (L == R)
      return constant(1);
    break;
  case BinOp::Ne:
    if (L == R)
      return constant(0);
    break;
  case BinOp::LtU:
  case BinOp::LtS:
    if (L == R)
      return constant(0);
    break;
  default:
    break;
  }

  if (isCommutative(Op) && L > R)
    std::swap(L, R);
  return rawBin(Op, L, R);
}

TermId TermGraph::select(TermId C, TermId T, TermId E) {
  if (auto CC = asConst(C))
    return *CC ? T : E;
  if (T == E)
    return T;
  TermId O[3] = {C, T, E};
  return intern(TermKind::Select, 0, 0, {}, O, 3);
}

TermId TermGraph::elt(TermId Arr, TermId Idx) {
  if (kindOf(Arr) == TermKind::ArrStore) {
    TermId Base = op(Arr, 0), SIdx = op(Arr, 1), SVal = op(Arr, 2);
    if (SIdx == Idx)
      return SVal; // Store-to-load forwarding (masked at store time).
    auto CA = asConst(SIdx), CB = asConst(Idx);
    if (CA && CB && *CA != *CB)
      return elt(Base, Idx); // Provably disjoint; look through.
    // Unknown aliasing: stay opaque (sound; both sides build this shape).
  }
  uint8_t W = uint8_t(eltBytesOf(Arr));
  TermId O[2] = {Arr, Idx};
  return intern(TermKind::Elt, W, 0, {}, O, 2);
}

TermId TermGraph::tableElt(const std::string &Table, unsigned EltBytes,
                           uint64_t MaxElt, TermId Idx) {
  TermId O[1] = {Idx};
  return intern(TermKind::TableElt, uint8_t(EltBytes), MaxElt, Table, O, 1);
}

TermId TermGraph::arrStore(TermId Arr, TermId Idx, TermId Val) {
  unsigned W = eltBytesOf(Arr);
  if (W < 8)
    Val = bin(BinOp::And, Val, constant((uint64_t(1) << (8 * W)) - 1));
  // Store-store collapse at the same index.
  if (kindOf(Arr) == TermKind::ArrStore && op(Arr, 1) == Idx)
    Arr = op(Arr, 0);
  TermId O[3] = {Arr, Idx, Val};
  return intern(TermKind::ArrStore, uint8_t(W), 0, {}, O, 3);
}

TermId TermGraph::arrSelect(TermId C, TermId T, TermId E) {
  if (auto CC = asConst(C))
    return *CC ? T : E;
  if (T == E)
    return T;
  uint8_t W = uint8_t(eltBytesOf(T));
  TermId O[3] = {C, T, E};
  return intern(TermKind::ArrSelect, W, 0, {}, O, 3);
}

//===----------------------------------------------------------------------===//
// Folds.
//===----------------------------------------------------------------------===//

TermId TermGraph::fold(FoldInfo Info) {
  assert(Info.Inits.size() == Info.NumCarried &&
         Info.Nexts.size() == Info.NumCarried && "malformed fold");
  std::sort(Info.Regions.begin(), Info.Regions.end(),
            [](const FoldRegion &A, const FoldRegion &B) {
              return A.Name < B.Name;
            });
  // Assemble the operand list and the comma-joined region-name string in
  // local buffers (intern() requires non-aliasing inputs), in the exact
  // order the pre-arena node used, so hashes are unchanged.
  std::vector<TermId> Ops;
  Ops.reserve(1 + 2 * Info.NumCarried + 2 * Info.Regions.size());
  Ops.push_back(Info.Guard);
  Ops.insert(Ops.end(), Info.Inits.begin(), Info.Inits.end());
  Ops.insert(Ops.end(), Info.Nexts.begin(), Info.Nexts.end());
  std::string Name;
  for (const FoldRegion &R : Info.Regions) {
    Name += R.Name;
    Name += ',';
    Ops.push_back(R.Entry);
    Ops.push_back(R.Next);
  }
  size_t NodesBefore = Nodes.size();
  TermId Id = intern(TermKind::Fold, 0, Info.NumCarried, Name, Ops.data(),
                     uint32_t(Ops.size()));
  if (Nodes.size() == NodesBefore)
    return Id; // Re-interned an existing Fold; its record already exists.

  FoldRec Rec;
  Rec.Fold = Id;
  Rec.NumCarried = Info.NumCarried;
  Rec.RegionsAt = uint32_t(RegionNames.size());
  Rec.NumRegions = uint32_t(Info.Regions.size());
  for (const FoldRegion &R : Info.Regions) {
    RegionNameRec NR;
    NR.NameAt = uint32_t(NamePool.size());
    NR.NameLen = uint32_t(R.Name.size());
    NamePool.insert(NamePool.end(), R.Name.begin(), R.Name.end());
    RegionNames.push_back(NR);
  }
  FoldRecs.push_back(Rec);
  return Id;
}

TermId TermGraph::foldOut(TermId Fold, unsigned Pos) {
  TermId O[1] = {Fold};
  return intern(TermKind::FoldOut, 0, Pos, {}, O, 1);
}

TermId TermGraph::foldOutArr(TermId Fold, const std::string &Region) {
  uint8_t W = 0;
  FoldRef FI = foldInfo(Fold);
  for (unsigned I = 0, E = FI.numRegions(); I < E; ++I)
    if (FI.regionName(I) == Region)
      W = uint8_t(eltBytesOf(FI.regionEntry(I)));
  TermId O[1] = {Fold};
  return intern(TermKind::FoldOutArr, W, 0, Region, O, 1);
}

//===----------------------------------------------------------------------===//
// Upper-bound oracle.
//===----------------------------------------------------------------------===//

std::optional<uint64_t> TermGraph::upperBound(TermId T) const {
  if (UbState.size() <= T) {
    UbState.resize(Nodes.size(), 0);
    UbValue.resize(Nodes.size(), 0);
  }
  if (UbState[T] == 2)
    return UbValue[T];
  if (UbState[T] == 1)
    return std::nullopt;
  UbState[T] = 1; // Cycle/diamond guard during recursion.

  const Node &N = Nodes[T];
  std::optional<uint64_t> Out;
  auto EltCap = [](unsigned W) -> std::optional<uint64_t> {
    return W >= 8 ? std::optional<uint64_t>() : (uint64_t(1) << (8 * W)) - 1;
  };
  switch (N.K) {
  case TermKind::Const:
    Out = N.A;
    break;
  case TermKind::Sym:
    if (EntryFacts) {
      if (auto B = EntryFacts->intervalUpperBound(
              solver::ls(std::string(nameOf(T)))))
        if (*B >= 0)
          Out = uint64_t(*B);
    }
    break;
  case TermKind::Elt:
    Out = EltCap(N.W);
    break;
  case TermKind::TableElt: {
    Out = N.A;
    if (auto Cap = EltCap(N.W))
      Out = std::min(*Out, *Cap);
    break;
  }
  case TermKind::Select: {
    auto A = upperBound(op(T, 1));
    auto B = upperBound(op(T, 2));
    if (A && B)
      Out = std::max(*A, *B);
    break;
  }
  case TermKind::Bin: {
    BinOp Op = BinOp(N.A);
    auto UA = upperBound(op(T, 0));
    auto UB = upperBound(op(T, 1));
    auto CB = asConst(op(T, 1));
    switch (Op) {
    case BinOp::And:
      if (UA && UB)
        Out = std::min(*UA, *UB);
      else if (UA)
        Out = UA;
      else if (UB)
        Out = UB;
      break;
    case BinOp::Or:
    case BinOp::Xor:
      if (UA && UB) {
        uint64_t Cover = onesCover(*UA | *UB);
        Out = Cover;
      }
      break;
    case BinOp::Add:
      if (UA && UB && *UA + *UB >= *UA)
        Out = *UA + *UB;
      break;
    case BinOp::Mul:
      if (UA && UB && (*UA == 0 || *UB == 0))
        Out = 0;
      else if (UA && UB && *UB != 0 && *UA <= ~uint64_t(0) / *UB)
        Out = *UA * *UB;
      break;
    case BinOp::Shl:
      if (UA && CB) {
        uint64_t Sh = *CB & 63;
        if (Sh == 0 || *UA <= (~uint64_t(0) >> Sh))
          Out = *UA << Sh;
      }
      break;
    case BinOp::LShr:
      if (CB) {
        uint64_t Sh = *CB & 63;
        Out = UA ? (*UA >> Sh) : (~uint64_t(0) >> Sh);
      }
      break;
    case BinOp::DivU:
      if (UA && CB && *CB != 0)
        Out = *UA / *CB;
      break;
    case BinOp::RemU:
      if (CB && *CB != 0) {
        Out = *CB - 1;
        if (UA)
          Out = std::min(*Out, *UA);
      } else if (UA) {
        Out = UA; // rem-by-zero yields the dividend; never exceeds it.
      }
      break;
    case BinOp::LtU:
    case BinOp::LtS:
    case BinOp::Eq:
    case BinOp::Ne:
      Out = 1;
      break;
    default:
      break;
    }
    break;
  }
  default:
    break;
  }
  // The memo arrays cannot have grown: upperBound never interns. (They
  // were sized to Nodes.size() on entry.)
  UbState[T] = Out ? 2 : 1;
  UbValue[T] = Out ? *Out : 0;
  return Out;
}

//===----------------------------------------------------------------------===//
// Substitution / traversal.
//===----------------------------------------------------------------------===//

TermId TermGraph::substitute(TermId T,
                             const std::map<TermId, TermId> &Renaming) {
  std::map<TermId, TermId> Memo;
  std::function<TermId(TermId)> Go = [&](TermId X) -> TermId {
    auto It = Memo.find(X);
    if (It != Memo.end())
      return It->second;
    auto R = Renaming.find(X);
    if (R != Renaming.end()) {
      Memo[X] = R->second;
      return R->second;
    }
    // Copy the node's slices out of the pools before rebuilding: the
    // recursive constructor calls below intern, which may reallocate them.
    const Node N = Nodes[X];
    TermId O[3] = {NoTerm, NoTerm, NoTerm};
    for (unsigned I = 0; I < N.NumOps && I < 3; ++I)
      O[I] = OpPool[N.OpsAt + I];
    TermId Out = X;
    switch (N.K) {
    case TermKind::Const:
    case TermKind::Sym:
    case TermKind::ArrInit:
    case TermKind::ArrHavoc:
      Out = X;
      break;
    case TermKind::Bin:
      Out = bin(BinOp(N.A), Go(O[0]), Go(O[1]));
      break;
    case TermKind::Select:
      Out = select(Go(O[0]), Go(O[1]), Go(O[2]));
      break;
    case TermKind::Elt:
      Out = elt(Go(O[0]), Go(O[1]));
      break;
    case TermKind::TableElt:
      Out = tableElt(std::string(nameOf(X)), N.W, N.A, Go(O[0]));
      break;
    case TermKind::ArrStore: {
      // Rebuild without re-masking twice: arrStore re-applies the mask,
      // which is idempotent (And-merge), so plain rebuild is fine.
      Out = arrStore(Go(O[0]), Go(O[1]), Go(O[2]));
      break;
    }
    case TermKind::ArrSelect:
      Out = arrSelect(Go(O[0]), Go(O[1]), Go(O[2]));
      break;
    case TermKind::Fold: {
      // Materialize the construction-time shape from the arena view, then
      // rewrite and re-intern through fold().
      FoldRef FV = foldInfo(X);
      FoldInfo Info;
      Info.NumCarried = FV.numCarried();
      Info.Guard = Go(FV.guard());
      Info.Inits.resize(Info.NumCarried);
      Info.Nexts.resize(Info.NumCarried);
      for (unsigned J = 0; J < Info.NumCarried; ++J) {
        Info.Inits[J] = Go(FV.init(J));
        Info.Nexts[J] = Go(FV.next(J));
      }
      for (unsigned I = 0, E = FV.numRegions(); I < E; ++I) {
        FoldRegion Rg;
        Rg.Name = FV.regionName(I);
        Rg.Entry = Go(FV.regionEntry(I));
        Rg.Next = Go(FV.regionNext(I));
        Info.Regions.push_back(std::move(Rg));
      }
      Out = fold(std::move(Info));
      break;
    }
    case TermKind::FoldOut:
      Out = foldOut(Go(O[0]), unsigned(N.A));
      break;
    case TermKind::FoldOutArr:
      Out = foldOutArr(Go(O[0]), std::string(nameOf(X)));
      break;
    }
    Memo[X] = Out;
    return Out;
  };
  return Go(T);
}

void TermGraph::collectSyms(TermId T, std::set<TermId> &Out) const {
  std::set<TermId> Seen;
  std::vector<TermId> Work{T};
  while (!Work.empty()) {
    TermId X = Work.back();
    Work.pop_back();
    if (!Seen.insert(X).second)
      continue;
    const Node &N = Nodes[X];
    if (N.K == TermKind::Sym || N.K == TermKind::ArrHavoc)
      Out.insert(X);
    for (unsigned I = 0; I < N.NumOps; ++I)
      Work.push_back(OpPool[N.OpsAt + I]);
  }
}

//===----------------------------------------------------------------------===//
// Rendering.
//===----------------------------------------------------------------------===//

std::string TermGraph::str(TermId T, unsigned MaxDepth) const {
  const Node &N = Nodes[T];
  if (MaxDepth == 0)
    return "...";
  auto S = [&](TermId X) { return str(X, MaxDepth - 1); };
  auto Name = [&] { return std::string(nameOf(T)); };
  switch (N.K) {
  case TermKind::Const:
    return N.A < 1024 ? std::to_string(N.A)
                      : [&] {
                          char Buf[32];
                          std::snprintf(Buf, sizeof(Buf), "0x%llx",
                                        (unsigned long long)N.A);
                          return std::string(Buf);
                        }();
  case TermKind::Sym:
    return Name();
  case TermKind::Bin:
    return "(" + S(op(T, 0)) + " " + bedrock::binOpName(BinOp(N.A)) + " " +
           S(op(T, 1)) + ")";
  case TermKind::Select:
    return "(if " + S(op(T, 0)) + " then " + S(op(T, 1)) + " else " +
           S(op(T, 2)) + ")";
  case TermKind::Elt:
    return S(op(T, 0)) + "[" + S(op(T, 1)) + "]";
  case TermKind::TableElt:
    return Name() + "[" + S(op(T, 0)) + "]";
  case TermKind::ArrInit:
    return "arr(" + Name() + ")";
  case TermKind::ArrHavoc:
    return Name();
  case TermKind::ArrStore:
    return S(op(T, 0)) + "{" + S(op(T, 1)) + " := " + S(op(T, 2)) + "}";
  case TermKind::ArrSelect:
    return "(if " + S(op(T, 0)) + " then " + S(op(T, 1)) + " else " +
           S(op(T, 2)) + ")";
  case TermKind::Fold: {
    FoldRef I = foldInfo(T);
    std::string Out = "fold{while " + S(I.guard()) + "; carried";
    for (unsigned J = 0; J < I.numCarried(); ++J)
      Out += " (" + S(I.init(J)) + " -> " + S(I.next(J)) + ")";
    for (unsigned R = 0, E = I.numRegions(); R < E; ++R)
      Out += "; " + I.regionName(R) + ": " + S(I.regionEntry(R)) + " -> " +
             S(I.regionNext(R));
    return Out + "}";
  }
  case TermKind::FoldOut:
    return S(op(T, 0)) + ".out" + std::to_string(N.A);
  case TermKind::FoldOutArr:
    return S(op(T, 0)) + ".arr(" + Name() + ")";
  }
  return "?";
}

} // namespace tv
} // namespace relc
