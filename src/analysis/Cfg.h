//===- analysis/Cfg.h - Control-flow graph over bedrock commands -*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// A basic-block control-flow graph built from the structured `bedrock::Cmd`
// tree. The generated language has no goto, so the graph shape is entirely
// determined by seq / if / while / stackalloc nesting: conditionals produce
// a diamond, loops a header block with a back edge, stackalloc a pair of
// Enter/Exit pseudo-statements bracketing its (possibly branching) body.
//
// Every statement carries a `Path` — a stable hierarchical source location
// ("body.2.then.0") that diagnostics report and that the symbolic domain
// uses as a deterministic key when minting fresh symbols, so re-running a
// transfer function during fixpoint iteration names the same unknowns.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_ANALYSIS_CFG_H
#define RELC_ANALYSIS_CFG_H

#include "bedrock/Ast.h"

#include <string>
#include <vector>

namespace relc {
namespace analysis {

/// One CFG statement: a straight-line command, or one of the two
/// pseudo-statements marking a stackalloc region's lifetime.
struct CfgStmt {
  enum class Kind {
    Simple,     ///< Set / Unset / Store / Call / Interact.
    StackEnter, ///< Binds Stackalloc->name() to a fresh region's base.
    StackExit   ///< Frees the region and unbinds the name.
  };

  Kind K = Kind::Simple;
  const bedrock::Cmd *C = nullptr; ///< Simple: the command; Enter/Exit: the
                                   ///< Stackalloc node.
  std::string Path;                ///< Hierarchical location, e.g. "body.1".
};

struct BasicBlock {
  enum class Term {
    Jump,  ///< Unconditional edge to TrueSucc.
    Branch,///< Two-way on Cond: TrueSucc / FalseSucc.
    Exit   ///< Function exit.
  };

  unsigned Id = 0;
  std::vector<CfgStmt> Stmts;

  Term T = Term::Exit;
  const bedrock::Expr *Cond = nullptr; ///< Branch only.
  std::string CondPath;                ///< Path of the If/While owning Cond.
  unsigned TrueSucc = 0, FalseSucc = 0;

  std::vector<unsigned> Preds;
  bool IsLoopHeader = false;
};

class Cfg {
public:
  /// Lowers \p Fn's body. Never fails: every command form has a lowering.
  static Cfg build(const bedrock::Function &Fn);

  const std::vector<BasicBlock> &blocks() const { return Blocks; }
  const BasicBlock &block(unsigned Id) const { return Blocks[Id]; }
  unsigned entry() const { return 0; }

  /// Block ids in reverse post order from the entry. Structural lowering
  /// makes every block graph-reachable, so this covers all of them.
  const std::vector<unsigned> &rpo() const { return Rpo; }

  /// Position of each block in rpo() (indexed by block id); worklists use
  /// it as their priority.
  const std::vector<unsigned> &rpoPos() const { return RpoPos; }

  std::string str() const;

private:
  std::vector<BasicBlock> Blocks;
  std::vector<unsigned> Rpo, RpoPos;

  friend class CfgBuilder;
  void finalize();
};

} // namespace analysis
} // namespace relc

#endif // RELC_ANALYSIS_CFG_H
