
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sec43_compiler_throughput.cpp" "bench/CMakeFiles/sec43_compiler_throughput.dir/sec43_compiler_throughput.cpp.o" "gcc" "bench/CMakeFiles/sec43_compiler_throughput.dir/sec43_compiler_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/programs/CMakeFiles/relc_programs.dir/DependInfo.cmake"
  "/root/repo/build/src/validate/CMakeFiles/relc_validate.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/relc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sep/CMakeFiles/relc_sep.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/relc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/relc_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/cgen/CMakeFiles/relc_cgen.dir/DependInfo.cmake"
  "/root/repo/build/src/bedrock/CMakeFiles/relc_bedrock.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/relc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
