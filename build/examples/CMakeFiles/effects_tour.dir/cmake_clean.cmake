file(REMOVE_RECURSE
  "CMakeFiles/effects_tour.dir/effects_tour.cpp.o"
  "CMakeFiles/effects_tour.dir/effects_tour.cpp.o.d"
  "effects_tour"
  "effects_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effects_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
