//===- ir/Check.cpp - FunLang well-formedness and typing -------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Check.h"

namespace relc {
namespace ir {

std::string VType::str() const {
  switch (TheKind) {
  case Kind::Scalar:
    return tyName(ScalarTy);
  case Kind::List:
    return "list u" + std::to_string(8 * eltSize(Elt));
  case Kind::Cell:
    return "cell";
  case Kind::Unit:
    return "unit";
  }
  return "?";
}

Result<VType> checkExpr(const SourceFn &Fn, const TypeEnv &Env,
                        const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Const: {
    const Value &V = cast<Const>(&E)->value();
    switch (V.kind()) {
    case Value::Kind::Word:
      return VType::scalar(Ty::Word);
    case Value::Kind::Byte:
      return VType::scalar(Ty::Byte);
    case Value::Kind::Bool:
      return VType::scalar(Ty::Bool);
    default:
      return Error("non-scalar literal");
    }
  }

  case Expr::Kind::VarRef: {
    const auto *V = cast<VarRef>(&E);
    auto It = Env.find(V->name());
    if (It == Env.end())
      return Error("unbound variable '" + V->name() + "'");
    return It->second;
  }

  case Expr::Kind::Bin: {
    const auto *B = cast<Bin>(&E);
    Result<VType> L = checkExpr(Fn, Env, *B->lhs());
    if (!L)
      return L.takeError();
    Result<VType> R = checkExpr(Fn, Env, *B->rhs());
    if (!R)
      return R.takeError();
    if (!(*L == VType::scalar(Ty::Word)) || !(*R == VType::scalar(Ty::Word)))
      return Error("operator '" + std::string(wordOpName(B->op())) +
                   "' requires word operands, got " + L->str() + " and " +
                   R->str() + " in " + E.str());
    return VType::scalar(wordOpIsCompare(B->op()) ? Ty::Bool : Ty::Word);
  }

  case Expr::Kind::Select: {
    const auto *S = cast<Select>(&E);
    Result<VType> C = checkExpr(Fn, Env, *S->cond());
    if (!C)
      return C.takeError();
    if (!(*C == VType::scalar(Ty::Bool)))
      return Error("condition of 'if' is not a bool in " + E.str());
    Result<VType> T = checkExpr(Fn, Env, *S->thenExpr());
    if (!T)
      return T.takeError();
    Result<VType> F = checkExpr(Fn, Env, *S->elseExpr());
    if (!F)
      return F.takeError();
    if (!(*T == *F))
      return Error("branches of 'if' have different types (" + T->str() +
                   " vs " + F->str() + ") in " + E.str());
    if (T->TheKind != VType::Kind::Scalar)
      return Error("expression-level 'if' must be scalar-typed");
    return *T;
  }

  case Expr::Kind::Cast: {
    const auto *C = cast<Cast>(&E);
    Result<VType> V = checkExpr(Fn, Env, *C->operand());
    if (!V)
      return V.takeError();
    switch (C->castKind()) {
    case CastKind::ByteToWord:
      if (!(*V == VType::scalar(Ty::Byte)))
        return Error("b2w applied to " + V->str());
      return VType::scalar(Ty::Word);
    case CastKind::WordToByte:
      if (!(*V == VType::scalar(Ty::Word)))
        return Error("w2b applied to " + V->str());
      return VType::scalar(Ty::Byte);
    case CastKind::BoolToWord:
      if (!(*V == VType::scalar(Ty::Bool)))
        return Error("Z.b2z applied to " + V->str());
      return VType::scalar(Ty::Word);
    }
    return Error("unknown cast");
  }

  case Expr::Kind::ArrayGet: {
    const auto *G = cast<ArrayGet>(&E);
    auto It = Env.find(G->array());
    if (It == Env.end())
      return Error("unbound array '" + G->array() + "'");
    if (It->second.TheKind != VType::Kind::List)
      return Error("ListArray.get on non-list '" + G->array() + "'");
    Result<VType> I = checkExpr(Fn, Env, *G->index());
    if (!I)
      return I.takeError();
    if (!(*I == VType::scalar(Ty::Word)))
      return Error("array index must be a word in " + E.str());
    return VType::scalar(It->second.Elt == EltKind::U8 ? Ty::Byte : Ty::Word);
  }

  case Expr::Kind::TableGet: {
    const auto *G = cast<TableGet>(&E);
    const TableDef *T = Fn.findTable(G->table());
    if (!T)
      return Error("unknown inline table '" + G->table() + "'");
    Result<VType> I = checkExpr(Fn, Env, *G->index());
    if (!I)
      return I.takeError();
    if (!(*I == VType::scalar(Ty::Word)))
      return Error("table index must be a word in " + E.str());
    return VType::scalar(T->Elt == EltKind::U8 ? Ty::Byte : Ty::Word);
  }
  }
  return Error("unknown expression kind");
}

namespace {

class FnChecker {
public:
  explicit FnChecker(const SourceFn &Fn) : Fn(Fn) {}

  Result<std::vector<VType>> checkProg(TypeEnv Env, const Prog &P) {
    for (const Binding &B : P.bindings()) {
      Status S = checkBinding(Env, B);
      if (!S)
        return S.takeError().note("in " + B.str());
    }
    std::vector<VType> Out;
    for (const std::string &R : P.returns()) {
      auto It = Env.find(R);
      if (It == Env.end())
        return Error("returned variable '" + R + "' is unbound");
      Out.push_back(It->second);
    }
    return Out;
  }

private:
  const SourceFn &Fn;

  /// Is the bound form legal under the ambient monad?
  Status checkMonad(const BoundForm &F) {
    Monad M = Fn.TheMonad;
    auto Requires = [&](Monad Needed, const char *What) -> Status {
      if (M != Needed)
        return Error(std::string(What) + " requires the " +
                     monadName(Needed) + " monad, but the model is " +
                     monadName(M));
      return Status::success();
    };
    switch (F.kind()) {
    case BoundForm::Kind::NondetAlloc:
    case BoundForm::Kind::NondetPeek:
      return Requires(Monad::Nondet, "nondeterministic choice");
    case BoundForm::Kind::IoRead:
    case BoundForm::Kind::IoWrite:
      return Requires(Monad::Io, "I/O");
    case BoundForm::Kind::WriterTell:
      return Requires(Monad::Writer, "tell");
    default:
      return Status::success(); // Pure forms are legal in every monad.
    }
  }

  Result<VType> checkAccProg(const TypeEnv &Outer,
                             const std::vector<AccInit> &Accs,
                             const TypeEnv &Extra, const Prog &Body,
                             std::vector<VType> *AccTypes) {
    TypeEnv Env = Outer;
    for (const auto &[K, V] : Extra)
      Env[K] = V;
    AccTypes->clear();
    for (const AccInit &A : Accs) {
      Result<VType> T = checkExpr(Fn, Outer, *A.Init);
      if (!T)
        return T.takeError().note("in initializer of accumulator " + A.Name);
      Env[A.Name] = *T;
      AccTypes->push_back(*T);
    }
    Result<std::vector<VType>> Rets = checkProg(Env, Body);
    if (!Rets)
      return Rets.takeError();
    if (Rets->size() != Accs.size())
      return Error("loop body returns " + std::to_string(Rets->size()) +
                   " values but carries " + std::to_string(Accs.size()) +
                   " accumulators");
    for (size_t I = 0; I < Rets->size(); ++I)
      if (!((*Rets)[I] == (*AccTypes)[I]))
        return Error("loop body changes the type of accumulator '" +
                     Accs[I].Name + "' (" + (*AccTypes)[I].str() + " -> " +
                     (*Rets)[I].str() + ")");
    if (AccTypes->size() == 1)
      return (*AccTypes)[0];
    return VType::unit(); // Tuple result; handled by caller via AccTypes.
  }

  Status bindNames(TypeEnv &Env, const Binding &B,
                   const std::vector<VType> &Types) {
    if (B.Names.size() != Types.size())
      return Error("binding arity mismatch: " +
                   std::to_string(B.Names.size()) + " names for " +
                   std::to_string(Types.size()) + " results");
    for (const std::string &N : B.Names) {
      if (N.empty())
        return Error("empty binder name");
      if (N.find('$') != std::string::npos)
        return Error("binder name '" + N +
                     "' contains '$', which is reserved for compiler-chosen "
                     "locals");
    }
    for (size_t I = 0; I < B.Names.size(); ++I)
      Env[B.Names[I]] = Types[I];
    return Status::success();
  }

  Status checkBinding(TypeEnv &Env, const Binding &B) {
    if (!B.Bound)
      return Error("binding without bound form");
    Status M = checkMonad(*B.Bound);
    if (!M)
      return M;

    const BoundForm &F = *B.Bound;
    switch (F.kind()) {
    case BoundForm::Kind::PureVal: {
      Result<VType> T = checkExpr(Fn, Env, *cast<PureVal>(&F)->expr());
      if (!T)
        return T.takeError();
      return bindNames(Env, B, {*T});
    }

    case BoundForm::Kind::ArrayPut: {
      const auto *P = cast<ArrayPut>(&F);
      auto It = Env.find(P->array());
      if (It == Env.end() || It->second.TheKind != VType::Kind::List)
        return Error("ListArray.put on unbound or non-list '" + P->array() +
                     "'");
      Result<VType> I = checkExpr(Fn, Env, *P->index());
      if (!I)
        return I.takeError();
      if (!(*I == VType::scalar(Ty::Word)))
        return Error("put index must be a word");
      Result<VType> V = checkExpr(Fn, Env, *P->val());
      if (!V)
        return V.takeError();
      Ty Want = It->second.Elt == EltKind::U8 ? Ty::Byte : Ty::Word;
      if (!(*V == VType::scalar(Want)))
        return Error("put value has type " + V->str() + ", array needs " +
                     tyName(Want));
      return bindNames(Env, B, {It->second});
    }

    case BoundForm::Kind::ListMap: {
      const auto *LM = cast<ListMap>(&F);
      auto It = Env.find(LM->array());
      if (It == Env.end() || It->second.TheKind != VType::Kind::List)
        return Error("ListArray.map on unbound or non-list '" + LM->array() +
                     "'");
      TypeEnv Scope = Env;
      Ty EltTy = It->second.Elt == EltKind::U8 ? Ty::Byte : Ty::Word;
      Scope[LM->param()] = VType::scalar(EltTy);
      Result<VType> BodyT = checkExpr(Fn, Scope, *LM->body());
      if (!BodyT)
        return BodyT.takeError();
      if (!(*BodyT == VType::scalar(EltTy)))
        return Error("map body has type " + BodyT->str() +
                     " but the array holds " + tyName(EltTy));
      return bindNames(Env, B, {It->second});
    }

    case BoundForm::Kind::ListFold: {
      const auto *LF = cast<ListFold>(&F);
      auto It = Env.find(LF->array());
      if (It == Env.end() || It->second.TheKind != VType::Kind::List)
        return Error("fold_left on unbound or non-list '" + LF->array() + "'");
      Result<VType> InitT = checkExpr(Fn, Env, *LF->init());
      if (!InitT)
        return InitT.takeError();
      if (InitT->TheKind != VType::Kind::Scalar)
        return Error("fold accumulator must be scalar");
      TypeEnv Scope = Env;
      Scope[LF->accParam()] = *InitT;
      Ty EltTy = It->second.Elt == EltKind::U8 ? Ty::Byte : Ty::Word;
      Scope[LF->eltParam()] = VType::scalar(EltTy);
      Result<VType> BodyT = checkExpr(Fn, Scope, *LF->body());
      if (!BodyT)
        return BodyT.takeError();
      if (!(*BodyT == *InitT))
        return Error("fold body type " + BodyT->str() +
                     " differs from accumulator type " + InitT->str());
      return bindNames(Env, B, {*InitT});
    }

    case BoundForm::Kind::FoldBreak: {
      const auto *LF = cast<FoldBreak>(&F);
      auto It = Env.find(LF->array());
      if (It == Env.end() || It->second.TheKind != VType::Kind::List)
        return Error("fold_break on unbound or non-list '" + LF->array() +
                     "'");
      Result<VType> InitT = checkExpr(Fn, Env, *LF->init());
      if (!InitT)
        return InitT.takeError();
      if (InitT->TheKind != VType::Kind::Scalar)
        return Error("fold_break accumulator must be scalar");
      TypeEnv Scope = Env;
      Scope[LF->accParam()] = *InitT;
      Result<VType> BrkT = checkExpr(Fn, Scope, *LF->breakCond());
      if (!BrkT)
        return BrkT.takeError();
      if (!(*BrkT == VType::scalar(Ty::Bool)))
        return Error("fold_break predicate must be a bool");
      Ty EltTy = It->second.Elt == EltKind::U8 ? Ty::Byte : Ty::Word;
      Scope[LF->eltParam()] = VType::scalar(EltTy);
      Result<VType> BodyT = checkExpr(Fn, Scope, *LF->body());
      if (!BodyT)
        return BodyT.takeError();
      if (!(*BodyT == *InitT))
        return Error("fold_break body type " + BodyT->str() +
                     " differs from accumulator type " + InitT->str());
      return bindNames(Env, B, {*InitT});
    }

    case BoundForm::Kind::RangeFold: {
      const auto *RF = cast<RangeFold>(&F);
      Result<VType> Lo = checkExpr(Fn, Env, *RF->lo());
      if (!Lo)
        return Lo.takeError();
      Result<VType> Hi = checkExpr(Fn, Env, *RF->hi());
      if (!Hi)
        return Hi.takeError();
      if (!(*Lo == VType::scalar(Ty::Word)) ||
          !(*Hi == VType::scalar(Ty::Word)))
        return Error("ranged_for bounds must be words");
      TypeEnv Extra;
      Extra[RF->idxName()] = VType::scalar(Ty::Word);
      std::vector<VType> AccTypes;
      Result<VType> R =
          checkAccProg(Env, RF->accs(), Extra, *RF->body(), &AccTypes);
      if (!R)
        return R.takeError();
      return bindNames(Env, B, AccTypes);
    }

    case BoundForm::Kind::WhileComb: {
      const auto *W = cast<WhileComb>(&F);
      std::vector<VType> AccTypes;
      Result<VType> R = checkAccProg(Env, W->accs(), {}, *W->body(), &AccTypes);
      if (!R)
        return R.takeError();
      // Condition and measure see the accumulators.
      TypeEnv Scope = Env;
      for (size_t I = 0; I < W->accs().size(); ++I)
        Scope[W->accs()[I].Name] = AccTypes[I];
      Result<VType> C = checkExpr(Fn, Scope, *W->cond());
      if (!C)
        return C.takeError();
      if (!(*C == VType::scalar(Ty::Bool)))
        return Error("while condition must be a bool");
      Result<VType> Ms = checkExpr(Fn, Scope, *W->measure());
      if (!Ms)
        return Ms.takeError();
      if (!(*Ms == VType::scalar(Ty::Word)))
        return Error("while measure must be a word");
      return bindNames(Env, B, AccTypes);
    }

    case BoundForm::Kind::IfBound: {
      const auto *I = cast<IfBound>(&F);
      Result<VType> C = checkExpr(Fn, Env, *I->cond());
      if (!C)
        return C.takeError();
      if (!(*C == VType::scalar(Ty::Bool)))
        return Error("conditional guard must be a bool");
      Result<std::vector<VType>> T = checkProg(Env, *I->thenProg());
      if (!T)
        return T.takeError().note("in then-branch");
      Result<std::vector<VType>> E2 = checkProg(Env, *I->elseProg());
      if (!E2)
        return E2.takeError().note("in else-branch");
      if (T->size() != E2->size())
        return Error("conditional branches return different arities");
      for (size_t K = 0; K < T->size(); ++K)
        if (!((*T)[K] == (*E2)[K]))
          return Error("conditional branches disagree on result " +
                       std::to_string(K) + " (" + (*T)[K].str() + " vs " +
                       (*E2)[K].str() + ")");
      return bindNames(Env, B, *T);
    }

    case BoundForm::Kind::StackInit:
      return bindNames(Env, B, {VType::list(EltKind::U8)});
    case BoundForm::Kind::StackUninit:
      return bindNames(Env, B, {VType::list(EltKind::U8)});
    case BoundForm::Kind::NondetAlloc:
      return bindNames(Env, B, {VType::list(EltKind::U8)});
    case BoundForm::Kind::NondetPeek:
      return bindNames(Env, B, {VType::scalar(Ty::Word)});
    case BoundForm::Kind::IoRead:
      return bindNames(Env, B, {VType::scalar(Ty::Word)});

    case BoundForm::Kind::IoWrite: {
      Result<VType> V = checkExpr(Fn, Env, *cast<IoWrite>(&F)->expr());
      if (!V)
        return V.takeError();
      if (!(*V == VType::scalar(Ty::Word)))
        return Error("write expects a word");
      return bindNames(Env, B, {VType::unit()});
    }

    case BoundForm::Kind::WriterTell: {
      Result<VType> V = checkExpr(Fn, Env, *cast<WriterTell>(&F)->expr());
      if (!V)
        return V.takeError();
      if (!(*V == VType::scalar(Ty::Word)))
        return Error("tell expects a word");
      return bindNames(Env, B, {VType::unit()});
    }

    case BoundForm::Kind::CellGet: {
      const auto *C = cast<CellGet>(&F);
      auto It = Env.find(C->cell());
      if (It == Env.end() || It->second.TheKind != VType::Kind::Cell)
        return Error("Cell.get on unbound or non-cell '" + C->cell() + "'");
      return bindNames(Env, B, {VType::scalar(Ty::Word)});
    }

    case BoundForm::Kind::CellPut:
    case BoundForm::Kind::CellIncr: {
      bool IsIncr = F.kind() == BoundForm::Kind::CellIncr;
      const std::string &CellName =
          IsIncr ? cast<CellIncr>(&F)->cell() : cast<CellPut>(&F)->cell();
      const Expr *Arg =
          IsIncr ? cast<CellIncr>(&F)->expr() : cast<CellPut>(&F)->expr();
      auto It = Env.find(CellName);
      if (It == Env.end() || It->second.TheKind != VType::Kind::Cell)
        return Error("cell operation on unbound or non-cell '" + CellName +
                     "'");
      Result<VType> V = checkExpr(Fn, Env, *Arg);
      if (!V)
        return V.takeError();
      if (!(*V == VType::scalar(Ty::Word)))
        return Error("cell operand must be a word");
      return bindNames(Env, B, {VType::cell()});
    }

    case BoundForm::Kind::CopyArr: {
      const auto *C = cast<CopyArr>(&F);
      auto It = Env.find(C->array());
      if (It == Env.end() || It->second.TheKind != VType::Kind::List)
        return Error("copy of unbound or non-list '" + C->array() + "'");
      return bindNames(Env, B, {It->second});
    }

    case BoundForm::Kind::ExternCall: {
      const auto *X = cast<ExternCall>(&F);
      for (const ExprPtr &A : X->args()) {
        Result<VType> T = checkExpr(Fn, Env, *A);
        if (!T)
          return T.takeError();
        if (T->TheKind != VType::Kind::Scalar)
          return Error("external call arguments must be scalars");
      }
      std::vector<VType> Rets(X->numRets(), VType::scalar(Ty::Word));
      return bindNames(Env, B, Rets);
    }
    }
    return Error("unknown bound form");
  }
};

} // namespace

Result<std::vector<VType>> checkFn(const SourceFn &Fn) {
  if (!Fn.Body)
    return Error("function '" + Fn.Name + "' has no body");
  TypeEnv Env;
  for (const Param &P : Fn.Params) {
    if (P.Name.empty())
      return Error("parameter with empty name in '" + Fn.Name + "'");
    if (P.Name.find('$') != std::string::npos)
      return Error("parameter name '" + P.Name + "' contains reserved '$'");
    if (Env.count(P.Name))
      return Error("duplicate parameter '" + P.Name + "'");
    switch (P.TheKind) {
    case Param::Kind::ScalarWord:
      Env[P.Name] = VType::scalar(Ty::Word);
      break;
    case Param::Kind::List:
      Env[P.Name] = VType::list(P.Elt);
      break;
    case Param::Kind::Cell:
      Env[P.Name] = VType::cell();
      break;
    }
  }
  FnChecker C(Fn);
  Result<std::vector<VType>> R = C.checkProg(Env, *Fn.Body);
  if (!R)
    return R.takeError().note("in function " + Fn.Name);
  return R;
}

} // namespace ir
} // namespace relc
