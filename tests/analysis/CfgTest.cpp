//===- tests/analysis/CfgTest.cpp - CFG construction unit tests -----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The structured bedrock::Cmd tree fully determines the CFG shape; these
// tests pin down the lowering: block structure for seq / if / while /
// stackalloc, statement paths, predecessor lists, reverse post order, and
// loop-header marking.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace relc;
using namespace relc::analysis;
using namespace relc::bedrock;

namespace {

Function mkFn(CmdPtr Body) {
  Function F;
  F.Name = "f";
  F.Body = std::move(Body);
  return F;
}

/// Structural invariants every lowering must satisfy.
void checkWellFormed(const Cfg &G) {
  const auto &Blocks = G.blocks();
  ASSERT_FALSE(Blocks.empty());
  // RPO covers every block exactly once (structural lowering leaves no
  // orphans), and positions are consistent.
  ASSERT_EQ(G.rpo().size(), Blocks.size());
  std::vector<bool> Seen(Blocks.size(), false);
  for (unsigned Id : G.rpo()) {
    ASSERT_LT(Id, Blocks.size());
    EXPECT_FALSE(Seen[Id]) << "block " << Id << " appears twice in RPO";
    Seen[Id] = true;
    EXPECT_EQ(G.rpoPos()[Id],
              unsigned(std::find(G.rpo().begin(), G.rpo().end(), Id) -
                       G.rpo().begin()));
  }
  // Edge/pred symmetry, and no degenerate two-way branches.
  for (const BasicBlock &B : Blocks) {
    std::vector<unsigned> Succs;
    if (B.T == BasicBlock::Term::Jump)
      Succs = {B.TrueSucc};
    else if (B.T == BasicBlock::Term::Branch) {
      Succs = {B.TrueSucc, B.FalseSucc};
      EXPECT_NE(B.TrueSucc, B.FalseSucc)
          << "branch with identical successors in block " << B.Id;
      EXPECT_NE(B.Cond, nullptr);
    }
    for (unsigned S : Succs) {
      const auto &P = G.block(S).Preds;
      EXPECT_NE(std::find(P.begin(), P.end(), B.Id), P.end())
          << "missing pred " << B.Id << " -> " << S;
    }
    for (unsigned P : B.Preds) {
      const BasicBlock &PB = G.block(P);
      bool PointsHere = (PB.T != BasicBlock::Term::Exit &&
                         PB.TrueSucc == B.Id) ||
                        (PB.T == BasicBlock::Term::Branch &&
                         PB.FalseSucc == B.Id);
      EXPECT_TRUE(PointsHere) << "stale pred " << P << " -> " << B.Id;
    }
  }
  // Exactly one exit block.
  unsigned Exits = 0;
  for (const BasicBlock &B : Blocks)
    Exits += B.T == BasicBlock::Term::Exit;
  EXPECT_EQ(Exits, 1u);
}

TEST(CfgTest, StraightLineIsOneBlock) {
  Cfg G = Cfg::build(
      mkFn(seqAll({set("x", lit(1)), set("y", var("x")), unset("x")})));
  checkWellFormed(G);
  ASSERT_EQ(G.blocks().size(), 1u);
  const BasicBlock &B = G.block(G.entry());
  EXPECT_EQ(B.T, BasicBlock::Term::Exit);
  ASSERT_EQ(B.Stmts.size(), 3u);
  EXPECT_EQ(B.Stmts[0].Path, "body.0");
  EXPECT_EQ(B.Stmts[1].Path, "body.1");
  EXPECT_EQ(B.Stmts[2].Path, "body.2");
  EXPECT_FALSE(B.IsLoopHeader);
}

TEST(CfgTest, IfLowersToDiamond) {
  Cfg G = Cfg::build(mkFn(seqAll(
      {set("x", lit(0)),
       ifThenElse(bin(BinOp::LtU, var("x"), lit(4)), set("y", lit(1)),
                  set("y", lit(2))),
       set("z", var("y"))})));
  checkWellFormed(G);
  const BasicBlock &E = G.block(G.entry());
  ASSERT_EQ(E.T, BasicBlock::Term::Branch);
  EXPECT_EQ(E.CondPath, "body.1");

  const BasicBlock &Then = G.block(E.TrueSucc);
  const BasicBlock &Else = G.block(E.FalseSucc);
  ASSERT_EQ(Then.Stmts.size(), 1u);
  ASSERT_EQ(Else.Stmts.size(), 1u);
  EXPECT_EQ(Then.Stmts[0].Path, "body.1.then.0");
  EXPECT_EQ(Else.Stmts[0].Path, "body.1.else.0");

  // Both arms rejoin at the same block, which holds the tail statement.
  ASSERT_EQ(Then.T, BasicBlock::Term::Jump);
  ASSERT_EQ(Else.T, BasicBlock::Term::Jump);
  ASSERT_EQ(Then.TrueSucc, Else.TrueSucc);
  const BasicBlock &Join = G.block(Then.TrueSucc);
  ASSERT_EQ(Join.Stmts.size(), 1u);
  EXPECT_EQ(Join.Stmts[0].Path, "body.2");
  EXPECT_EQ(Join.Preds.size(), 2u);
}

TEST(CfgTest, WhileLowersToHeaderWithBackEdge) {
  Cfg G = Cfg::build(mkFn(seqAll(
      {set("i", lit(0)),
       whileLoop(bin(BinOp::LtU, var("i"), var("n")),
                 set("i", add(var("i"), lit(1)))),
       set("out", var("i"))})));
  checkWellFormed(G);

  // Find the unique loop header; its branch splits into body and exit, and
  // the body jumps back to it.
  const BasicBlock *Header = nullptr;
  for (const BasicBlock &B : G.blocks())
    if (B.IsLoopHeader) {
      ASSERT_EQ(Header, nullptr) << "more than one loop header";
      Header = &B;
    }
  ASSERT_NE(Header, nullptr);
  ASSERT_EQ(Header->T, BasicBlock::Term::Branch);
  EXPECT_EQ(Header->CondPath, "body.1");

  const BasicBlock &Body = G.block(Header->TrueSucc);
  ASSERT_EQ(Body.T, BasicBlock::Term::Jump);
  EXPECT_EQ(Body.TrueSucc, Header->Id);
  ASSERT_EQ(Body.Stmts.size(), 1u);
  EXPECT_EQ(Body.Stmts[0].Path, "body.1.body.0");

  // Two predecessors: the preheader (forward) and the body (back edge).
  ASSERT_EQ(Header->Preds.size(), 2u);
  EXPECT_GE(G.rpoPos()[Body.Id], G.rpoPos()[Header->Id])
      << "back edge must come from an equal-or-later RPO position";
  // The exit continues past the loop.
  const BasicBlock &Exit = G.block(Header->FalseSucc);
  ASSERT_EQ(Exit.Stmts.size(), 1u);
  EXPECT_EQ(Exit.Stmts[0].Path, "body.2");
}

TEST(CfgTest, StackallocBracketsItsBody) {
  Cfg G = Cfg::build(mkFn(seqAll(
      {stackalloc("buf", 16,
                  store(AccessSize::Byte, var("buf"), lit(0))),
       set("out", lit(0))})));
  checkWellFormed(G);
  // Straight-line stackalloc stays one block: Enter, body, Exit, tail.
  ASSERT_EQ(G.blocks().size(), 1u);
  const auto &S = G.block(G.entry()).Stmts;
  ASSERT_EQ(S.size(), 4u);
  EXPECT_EQ(S[0].K, CfgStmt::Kind::StackEnter);
  EXPECT_EQ(S[1].K, CfgStmt::Kind::Simple);
  EXPECT_EQ(S[2].K, CfgStmt::Kind::StackExit);
  EXPECT_EQ(S[3].K, CfgStmt::Kind::Simple);
  // Enter and Exit reference the same Stackalloc node.
  EXPECT_EQ(S[0].C, S[2].C);
}

TEST(CfgTest, NestedLoopsMarkBothHeaders) {
  Cfg G = Cfg::build(mkFn(seqAll(
      {set("i", lit(0)),
       whileLoop(
           bin(BinOp::LtU, var("i"), var("n")),
           seqAll({set("j", lit(0)),
                   whileLoop(bin(BinOp::LtU, var("j"), lit(4)),
                             set("j", add(var("j"), lit(1)))),
                   set("i", add(var("i"), lit(1)))}))})));
  checkWellFormed(G);
  unsigned Headers = 0;
  for (const BasicBlock &B : G.blocks())
    Headers += B.IsLoopHeader;
  EXPECT_EQ(Headers, 2u);
}

} // namespace
