//===- cgen/CEmit.h - Bedrock2-to-C pretty-printer --------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The last, unverified step of the pipeline, mirroring Bedrock2's to-C
// pretty-printer ("a very small program of just 200 lines that is
// essentially implementing an identity function", §4.3). It performs a
// direct syntax mapping:
//
//   words            -> uintptr_t (64-bit)
//   load/store<n>    -> uint<8n>_t pointer accesses (little-endian host)
//   inline tables    -> static const arrays local to the function
//   stackalloc       -> a scoped local byte array
//   external actions -> calls to the relc_ext_* runtime hooks
//
// Semantic caveats documented here because the printer is in the trusted
// base: division/remainder by zero is undefined in C but defined (RISC-V
// convention) in the Bedrock2 semantics — generated programs whose side
// conditions admit zero divisors must not be emitted to C (our rule
// library never emits a division whose divisor the model did not guard);
// variable shift amounts are masked to match the target semantics.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CGEN_CEMIT_H
#define RELC_CGEN_CEMIT_H

#include "bedrock/Ast.h"
#include "support/Result.h"

#include <string>

namespace relc {
namespace cgen {

/// Options for emission.
struct CEmitOptions {
  /// Emit `static` functions (for inclusion in a single TU).
  bool StaticFunctions = false;
  /// Prefix prepended to every function name (avoids collisions when
  /// generated and handwritten implementations link into one binary).
  std::string NamePrefix;
};

/// Emits one function as C. Functions with more than one return value are
/// rejected (Bedrock2 supports them; C does not).
Result<std::string> emitFunction(const bedrock::Function &Fn,
                                 const CEmitOptions &Opts = {});

/// Emits a whole module: the runtime prelude (stdint include and the
/// relc_ext_* hook declarations) followed by every function.
Result<std::string> emitModule(const bedrock::Module &Mod,
                               const CEmitOptions &Opts = {});

/// The prelude only (used by tests and by handwritten-reference files).
std::string cPrelude();

} // namespace cgen
} // namespace relc

#endif // RELC_CGEN_CEMIT_H
