//===- bedrock/Interp.h - Fuel-bounded big-step interpreter ----*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Executable semantics for the Bedrock2-like target language. This is the
// stand-in for Bedrock2's Coq semantics: the validator runs compiled code
// under this interpreter and compares against the source model's meaning.
//
// Semantics notes (Box 2 of the paper):
//  - Only terminating executions have meaning: execution is fuel-bounded,
//    and running out of fuel is an error, so a passing validation is a
//    total-correctness observation.
//  - Memory is flat and byte-addressed; every access is bounds-checked
//    against live allocations, so wild reads/writes are errors, not UB.
//  - Stack allocations expose uninitialized memory: fresh blocks are filled
//    from a nondeterminism oracle, so code whose result depends on
//    uninitialized bytes fails differential validation across seeds.
//  - External interactions append events to a trace and get their results
//    from an environment handler.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_BEDROCK_INTERP_H
#define RELC_BEDROCK_INTERP_H

#include "bedrock/Ast.h"
#include "support/Result.h"
#include "support/Rng.h"

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace relc {
namespace bedrock {

//===----------------------------------------------------------------------===//
// Memory.
//===----------------------------------------------------------------------===//

/// Flat byte-addressed memory made of disjoint live allocations. Addresses
/// are separated by guard gaps so that off-by-one pointer arithmetic lands
/// in unmapped space and faults.
class Memory {
public:
  /// Allocates \p Size bytes (zero-size allowed) and returns the base
  /// address. Initial contents are zero; use fill() for other contents.
  Word alloc(Word Size);

  /// Frees the allocation based at \p Base. Fails if \p Base is not a live
  /// allocation base or the recorded size differs (used by stackalloc scope
  /// exit, which must find the block intact).
  Status free(Word Base, Word Size);

  /// Byte accessors; fail on addresses outside live allocations.
  Result<uint8_t> loadByte(Word Addr) const;
  Status storeByte(Word Addr, uint8_t Value);

  /// Little-endian sized accessors. The access must lie entirely inside one
  /// allocation (no cross-allocation straddling).
  Result<Word> loadN(AccessSize Size, Word Addr) const;
  Status storeN(AccessSize Size, Word Addr, Word Value);

  /// Copies \p Bytes into memory starting at \p Addr.
  Status fill(Word Addr, const std::vector<uint8_t> &Bytes);

  /// Reads \p Len bytes starting at \p Addr.
  Result<std::vector<uint8_t>> read(Word Addr, Word Len) const;

  /// Number of live allocations (for leak checking in tests).
  size_t liveAllocations() const { return Regions.size(); }

private:
  struct Region {
    std::vector<uint8_t> Bytes;
  };

  /// Returns the region containing \p Addr and the offset within it, or
  /// null when unmapped.
  const Region *find(Word Addr, Word *Offset) const;
  Region *find(Word Addr, Word *Offset);

  std::map<Word, Region> Regions; ///< Keyed by base address.
  Word NextBase = 0x100000;       ///< Bump pointer; gaps of 4 KiB.
};

//===----------------------------------------------------------------------===//
// Traces and the external environment.
//===----------------------------------------------------------------------===//

/// One externally observable event: an interaction's name, the argument
/// words passed out, and the result words received.
struct Event {
  std::string Action;
  std::vector<Word> Args;
  std::vector<Word> Rets;

  bool operator==(const Event &O) const = default;
  std::string str() const;
};

using Trace = std::vector<Event>;

std::string str(const Trace &T);

/// The environment's side of external interactions. Given the action name
/// and arguments, produces the result words. The same handler object is
/// shared with the source-language interpreter so that both sides observe
/// the same environment — the premise of trace equality in specs.
class ExtHandler {
public:
  virtual ~ExtHandler() = default;
  virtual Result<std::vector<Word>> interact(const std::string &Action,
                                             const std::vector<Word> &Args) = 0;
};

/// A convenient environment: "read"-style actions consume from an input
/// tape; "write"-style actions accumulate into an output buffer (also
/// visible in the trace). Reading past the tape yields zeros.
class TapeEnv : public ExtHandler {
public:
  explicit TapeEnv(std::vector<Word> Input = {}) : Input(std::move(Input)) {}

  Result<std::vector<Word>> interact(const std::string &Action,
                                     const std::vector<Word> &Args) override;

  const std::vector<Word> &output() const { return Output; }

private:
  std::vector<Word> Input;
  size_t Next = 0;
  std::vector<Word> Output;
};

//===----------------------------------------------------------------------===//
// Execution.
//===----------------------------------------------------------------------===//

using Locals = std::unordered_map<std::string, Word>;

/// Mutable machine state threaded through execution.
struct State {
  Memory Mem;
  Locals Vars;
  Trace Tr;
};

/// Interpreter options.
struct ExecOptions {
  uint64_t Fuel = 50'000'000; ///< Max statement steps before giving up.
  uint64_t NondetSeed = 1;    ///< Oracle seed for uninitialized stack bytes.
};

class Interp {
public:
  Interp(const Module &Mod, ExtHandler &Env, ExecOptions Opts = {})
      : Mod(Mod), Env(Env), Opts(Opts), Nondet(Opts.NondetSeed) {}

  /// Evaluates expression \p E in \p S (const: expressions are pure reads).
  Result<Word> evalExpr(const State &S, const Function &Fn, const Expr &E);

  /// Executes command \p C, mutating \p S.
  Status execCmd(State &S, const Function &Fn, const Cmd &C);

  /// Calls function \p Name with argument words \p Args against memory and
  /// trace in \p S; returns the result words. Locals are function-scoped.
  /// Refills the fuel budget before starting.
  Result<std::vector<Word>> callFunction(State &S, const std::string &Name,
                                         const std::vector<Word> &Args);

  /// Refills the fuel budget (done automatically by top-level entry points).
  void resetFuel() {
    FuelLeft = Opts.Fuel;
    FuelExhausted = false;
  }

  /// True iff the most recent run failed by running out of fuel (cleared by
  /// the next top-level entry). Lets the differential layer distinguish
  /// "target diverged" from "target was starved of fuel" and surface the
  /// named diagnostic required for graceful degradation.
  bool hitFuelLimit() const { return FuelExhausted; }

  /// Statement steps consumed by the most recent top-level run. Tests use
  /// this to cross-check codelint's static step envelope: a Safe verdict's
  /// StepBound must dominate the fuel any concrete run actually burns.
  uint64_t fuelUsed() const { return Opts.Fuel - FuelLeft; }

private:
  const Module &Mod;
  ExtHandler &Env;
  ExecOptions Opts;
  Rng Nondet;
  uint64_t FuelLeft = 0;
  bool FuelExhausted = false;
  unsigned CallDepth = 0;

  Status execCmdInner(State &S, const Function &Fn, const Cmd &C);
};

/// One-shot convenience: run \p Name from \p Mod on a fresh state whose
/// memory was prepared by \p Setup; returns (rets, final state).
struct RunResult {
  std::vector<Word> Rets;
  State Final;
  uint64_t FuelUsed = 0; ///< Interp::fuelUsed() after the run.
};
Result<RunResult>
runFunction(const Module &Mod, const std::string &Name,
            const std::vector<Word> &Args, ExtHandler &Env,
            const std::function<Status(State &, std::vector<Word> &)> &Setup,
            ExecOptions Opts = {});

//===----------------------------------------------------------------------===//
// Static well-formedness.
//===----------------------------------------------------------------------===//

/// Structural checks run before execution or code emission: referenced
/// inline tables exist with in-range elements, called functions exist with
/// matching arity, stackalloc sizes are nonzero multiples of 1, and local
/// names are nonempty.
Status verifyModule(const Module &Mod);

} // namespace bedrock
} // namespace relc

#endif // RELC_BEDROCK_INTERP_H
