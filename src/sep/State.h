//===- sep/State.h - Symbolic machine state for compilation ----*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The compilation judgment {t; m; l; σ} c {P p} (§3.3) carries a symbolic
// description of the machine: the locals map l and the separation-logic
// memory predicate m. This module defines that symbolic state.
//
//  - A SymVal is a symbolic machine word: either a known constant or a
//    named solver symbol (facts about symbols live in the FactDb).
//  - A HeapClause is one separation-logic conjunct: `array p s`, `cell p c`
//    or an untyped scratch block from stackalloc. The Payload names the
//    *source-level* value currently stored — the ghost connection between
//    the functional model and memory. Array contents are never tracked
//    element-wise during compilation; the payload name plus the length
//    term is exactly what the paper's predicates capture ("we chose a
//    separation-logic predicate that captured the length of the string in
//    addition to its contents", §3.4.2).
//  - A TargetSlot describes what a target local holds: a scalar mirroring
//    a source variable, or a pointer to a heap clause.
//
// The loop-invariant heuristic of §3.4.2 operates on this state: loop
// targets are classified scalar/pointer by looking them up here, scalars
// abstract their local's SymVal to a fresh symbol, and pointers abstract
// the clause payload while retaining the structural length fact.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SEP_STATE_H
#define RELC_SEP_STATE_H

#include "ir/Prog.h"
#include "solver/Linear.h"
#include "support/Result.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace relc {
namespace sep {

/// A symbolic machine word.
struct SymVal {
  bool IsConst = false;
  uint64_t K = 0;  ///< When IsConst.
  std::string S;   ///< Solver symbol name otherwise.

  static SymVal constant(uint64_t K) { return SymVal{true, K, ""}; }
  static SymVal sym(std::string Name) {
    return SymVal{false, 0, std::move(Name)};
  }

  /// As a solver term. Constants above int64 range are unsupported in
  /// facts; such values never appear in index arithmetic.
  solver::LinTerm term() const {
    if (IsConst)
      return solver::lc(int64_t(K));
    return solver::ls(S);
  }

  bool sameAs(const SymVal &O) const {
    return IsConst == O.IsConst && (IsConst ? K == O.K : S == O.S);
  }

  std::string str() const {
    return IsConst ? std::to_string(K) : S;
  }
};

/// One separation-logic conjunct.
struct HeapClause {
  enum class Kind { Array, Cell, Scratch };

  Kind TheKind = Kind::Array;
  std::string Ptr;      ///< Symbol naming the base address.
  std::string Payload;  ///< Source-level name of the stored value ("" for
                        ///< scratch).
  ir::EltKind Elt = ir::EltKind::U8; ///< Element width (Array).
  solver::LinTerm Len;  ///< Element count (Array) — a solver term.
  uint64_t ScratchSize = 0; ///< Byte size (Scratch).
  bool FromStack = false;   ///< Allocated by stackalloc (scoped lifetime).

  std::string str() const;
};

/// What a target local holds.
struct TargetSlot {
  enum class Kind { Scalar, Ptr };

  Kind TheKind = Kind::Scalar;
  SymVal Val;                  ///< Scalar value, or the address for Ptr.
  ir::Ty ScalarTy = ir::Ty::Word; ///< Scalars: the source-level type the
                                  ///< (zero-extended) word mirrors.
  int ClauseIdx = -1;          ///< Ptr: index into CompState::Heap.

  static TargetSlot scalar(SymVal V, ir::Ty T) {
    TargetSlot S;
    S.TheKind = Kind::Scalar;
    S.Val = std::move(V);
    S.ScalarTy = T;
    return S;
  }
  static TargetSlot ptr(SymVal Addr, int Clause) {
    TargetSlot S;
    S.TheKind = Kind::Ptr;
    S.Val = std::move(Addr);
    S.ClauseIdx = Clause;
    return S;
  }
};

/// The symbolic machine state carried through compilation.
class CompState {
public:
  std::map<std::string, TargetSlot> Locals;
  std::vector<HeapClause> Heap;
  solver::FactDb Facts;

  /// Fresh solver-symbol generation (for loop abstraction, definitional
  /// symbols for nonlinear subterms, temporaries).
  std::string freshSym(const std::string &Hint);

  /// Fresh target-local name that does not collide with existing locals.
  std::string freshLocal(const std::string &Hint);

  /// The clause currently holding source-level value \p SourceName, if any.
  int findClauseByPayload(const std::string &SourceName) const;

  /// The local holding a pointer to clause \p ClauseIdx, if any.
  std::optional<std::string> findPtrLocal(int ClauseIdx) const;

  /// The local scalar mirroring source variable \p SourceName. By the let/n
  /// convention, scalars live in a local of the same name; this checks it.
  const TargetSlot *findScalar(const std::string &SourceName) const;

  /// A local whose scalar value is syntactically the term \p Len (used to
  /// locate a length variable for loop emission).
  std::optional<std::string> findLocalEqualTo(const solver::LinTerm &Len) const;

  /// Renders locals + heap for diagnostics and derivation records (the
  /// printed judgment users see on unsolved goals).
  std::string str() const;

private:
  unsigned FreshCounter = 0;
};

} // namespace sep
} // namespace relc

#endif // RELC_SEP_STATE_H
