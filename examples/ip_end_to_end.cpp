//===- examples/ip_end_to_end.cpp - §4.1.3's end-to-end pipeline -----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The paper's end-to-end story (§4.1.3, detailed for the IP checksum in
// the dissertation): start from an abstract specification, verify the
// annotated functional model against it, then derive and certify the
// low-level code. Here the abstract spec is an executable reference of
// RFC 1071 (the "add 16-bit words with end-around carry" definition), the
// model-vs-spec step is an exhaustive-and-randomized check, and the rest
// is the standard relc pipeline, finishing with the generated C.
//
//===----------------------------------------------------------------------===//

#include "cgen/CEmit.h"
#include "ir/Interp.h"
#include "programs/Programs.h"
#include "support/Rng.h"

#include <cstdio>

using namespace relc;

namespace {

/// The abstract specification: RFC 1071's reference algorithm, written
/// with no performance or layout concerns.
uint16_t specChecksum(const std::vector<uint8_t> &Data) {
  uint64_t Sum = 0;
  for (size_t I = 0; I + 1 < Data.size(); I += 2)
    Sum += (uint64_t(Data[I]) << 8) | Data[I + 1];
  if (Data.size() % 2)
    Sum += uint64_t(Data.back()) << 8;
  while (Sum >> 16)
    Sum = (Sum & 0xffff) + (Sum >> 16);
  return uint16_t(~Sum);
}

} // namespace

int main() {
  const programs::ProgramDef *P = programs::findProgram("ip");
  if (!P)
    return 1;

  // Step 1: the functional model is proven against the abstract spec —
  // here, checked on exhaustive small inputs plus random large ones.
  Rng R(2024);
  unsigned Checked = 0;
  for (size_t Len = 0; Len <= 64; ++Len) {
    for (unsigned Rep = 0; Rep < 4; ++Rep, ++Checked) {
      std::vector<uint8_t> Data = R.bytes(Len);
      ir::EffectCtx Ctx;
      Result<std::vector<ir::Value>> Out = ir::evalFn(
          P->Model,
          {ir::Value::byteList(Data), ir::Value::word(Data.size())}, Ctx);
      if (!Out || (*Out)[0].asWord() != specChecksum(Data)) {
        std::fprintf(stderr, "model disagrees with the RFC 1071 spec!\n");
        return 1;
      }
    }
  }
  for (unsigned Rep = 0; Rep < 50; ++Rep, ++Checked) {
    std::vector<uint8_t> Data = R.bytes(1 + R.below(5000));
    ir::EffectCtx Ctx;
    Result<std::vector<ir::Value>> Out = ir::evalFn(
        P->Model, {ir::Value::byteList(Data), ir::Value::word(Data.size())},
        Ctx);
    if (!Out || (*Out)[0].asWord() != specChecksum(Data)) {
      std::fprintf(stderr, "model disagrees with the RFC 1071 spec!\n");
      return 1;
    }
  }
  std::printf("step 1: functional model == RFC 1071 spec on %u vectors\n",
              Checked);

  // Step 2+3: relational compilation and certification.
  Result<programs::CompiledProgram> C = programs::compileAndValidate(*P);
  if (!C) {
    std::fprintf(stderr, "pipeline failed:\n%s\n", C.error().str().c_str());
    return 1;
  }
  std::printf("step 2: derived \"%s\" (%u statements, derivation of %u "
              "rule applications)\n",
              P->Spec.TargetName.c_str(), C->Result.EmittedStmts,
              C->Result.Proof->size());
  std::printf("step 3: witness replayed and differentially certified\n\n");

  // Step 4: the generated C (what ships).
  Result<std::string> Code = cgen::emitFunction(C->Result.Fn);
  std::printf("%s%s", cgen::cPrelude().c_str(),
              Code ? Code->c_str() : Code.error().str().c_str());
  return 0;
}
