file(REMOVE_RECURSE
  "CMakeFiles/sec413_expr_ablation.dir/sec413_expr_ablation.cpp.o"
  "CMakeFiles/sec413_expr_ablation.dir/sec413_expr_ablation.cpp.o.d"
  "sec413_expr_ablation"
  "sec413_expr_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec413_expr_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
