//===- cert/Writer.cpp - Canonical certificate serialization ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "cert/Writer.h"

#include "support/Hash.h"
#include "support/StringExtras.h"
#include "tv/Tv.h"

#include <cstdio>

namespace relc {
namespace cert {

namespace {

/// 0x-prefixed fixed-width hex, the rendering term hashes have used since
/// v1 (content hashes use hash::hex16's bare form instead, matching
/// the cache's file stems).
std::string hex64(uint64_t V) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx", (unsigned long long)V);
  return Buf;
}

std::string quoted(const std::string &S) { return "\"" + jsonEscape(S) + "\""; }

std::string strList(const std::vector<std::string> &Elems) {
  std::string Out = "[";
  for (size_t I = 0; I < Elems.size(); ++I)
    Out += std::string(I ? ", " : "") + quoted(Elems[I]);
  return Out + "]";
}

/// Local verdict naming: tv::verdictName lives in the driver object
/// (Tv.cpp), which nothing in cert may link against.
const char *verdictStr(tv::Verdict V) {
  switch (V) {
  case tv::Verdict::Proved:
    return "proved";
  case tv::Verdict::Refuted:
    return "refuted";
  case tv::Verdict::Inconclusive:
    return "inconclusive";
  }
  return "?";
}

} // namespace

std::string Writer::write(const Certificate &C) {
  std::string J = "{\n";
  J += "  \"schema_version\": " + std::to_string(C.SchemaVersion) + ",\n";
  J += "  \"producer\": " + quoted(C.Producer) + ",\n";
  J += "  \"function\": " + quoted(C.Function) + ",\n";
  J += "  \"model_hash\": \"" + hash::hex16(C.Key.ModelHash) + "\",\n";
  J += "  \"spec_hash\": \"" + hash::hex16(C.Key.SpecHash) + "\",\n";
  J += "  \"code_hash\": \"" + hash::hex16(C.Key.CodeHash) + "\",\n";
  J += "  \"verdict\": " + quoted(C.Verdict) + ",\n";
  J += "  \"reason\": " + quoted(C.Reason) + ",\n";
  J += "  \"num_terms\": " + std::to_string(C.NumTerms) + ",\n";

  J += "  \"loops\": [";
  for (size_t I = 0; I < C.Loops.size(); ++I) {
    const LoopRec &L = C.Loops[I];
    J += std::string(I ? "," : "") + "\n    {\"ordinal\": " +
         std::to_string(L.Ordinal) + ", \"binding\": " + quoted(L.Binding) +
         ", \"path\": " + quoted(L.Path) + ", \"fold_hash\": \"" +
         hex64(L.FoldHash) + "\", \"carried\": " + std::to_string(L.Carried) +
         ", \"regions\": " + std::to_string(L.Regions) +
         ",\n     \"witness\": {\"locals\": " + strList(L.WitnessLocals) +
         ", \"regions\": " + strList(L.WitnessRegions) +
         ", \"target_path\": " + quoted(L.TargetPath) + "}}";
  }
  J += C.Loops.empty() ? "],\n" : "\n  ],\n";

  J += "  \"bindings\": [";
  for (size_t I = 0; I < C.Bindings.size(); ++I) {
    const BindingRec &B = C.Bindings[I];
    J += std::string(I ? "," : "") + "\n    {\"path\": " + quoted(B.Path) +
         ", \"name\": " + quoted(B.Name) + ", \"hash\": \"" + hex64(B.Hash) +
         "\"}";
  }
  J += C.Bindings.empty() ? "],\n" : "\n  ],\n";

  J += "  \"outputs\": [";
  for (size_t I = 0; I < C.Outputs.size(); ++I) {
    const OutputRec &O = C.Outputs[I];
    J += std::string(I ? "," : "") + "\n    {\"name\": " + quoted(O.Name) +
         ", \"kind\": " + quoted(O.Kind) +
         ", \"matched\": " + (O.Matched ? "true" : "false") +
         ", \"src_hash\": \"" + hex64(O.SrcHash) + "\", \"tgt_hash\": \"" +
         hex64(O.TgtHash) + "\", \"source_binding\": " +
         quoted(O.SourceBinding) + ", \"target_path\": " +
         quoted(O.TargetPath) + "}";
  }
  bool HasCl = C.Codelint.has_value();
  J += C.Outputs.empty() ? (HasCl ? "],\n" : "]\n")
                         : (HasCl ? "\n  ],\n" : "\n  ]\n");

  if (HasCl) {
    const CodelintRec &L = *C.Codelint;
    J += "  \"codelint\": {\"version\": " + std::to_string(L.Version) +
         ", \"mem\": " + quoted(L.Mem) + ", \"stack\": " + quoted(L.Stack) +
         ", \"steps\": " + quoted(L.Steps) +
         ",\n    \"accesses\": " + std::to_string(L.Accesses) +
         ", \"locals_bytes\": " + std::to_string(L.LocalsBytes) +
         ", \"scratch_bytes\": " + std::to_string(L.ScratchBytes) +
         ", \"operand_depth\": " + std::to_string(L.OperandDepth) +
         ", \"step_bound\": " + std::to_string(L.StepBound) + "}\n";
  }
  J += "}\n";
  return J;
}

Certificate fromTvReport(const tv::TvReport &Rep, const ContentKey &Key) {
  Certificate C;
  C.Function = Rep.Fn;
  C.Key = Key;
  C.Verdict = verdictStr(Rep.TheVerdict);
  C.Reason = Rep.Reason;
  C.NumTerms = Rep.NumTerms;
  for (const tv::LoopRecord &L : Rep.Loops) {
    LoopRec R;
    R.Ordinal = L.Ordinal;
    R.Binding = L.Binding;
    R.Path = L.Path;
    R.FoldHash = L.FoldHash;
    R.Carried = L.Carried;
    R.Regions = L.Regions;
    R.WitnessLocals = L.WitnessLocals;
    R.WitnessRegions = L.WitnessRegions;
    R.TargetPath = L.TargetPath;
    C.Loops.push_back(std::move(R));
  }
  for (const tv::BindingRecord &B : Rep.Bindings)
    C.Bindings.push_back({B.Path, B.Name, B.Hash});
  for (const tv::OutputRecord &O : Rep.Outputs) {
    OutputRec R;
    R.Name = O.Name;
    R.Kind = O.Kind;
    R.SrcHash = O.SrcHash;
    R.TgtHash = O.TgtHash;
    R.Matched = O.Matched;
    R.SourceBinding = O.SourceBinding;
    R.TargetPath = O.TargetPath;
    C.Outputs.push_back(std::move(R));
  }
  return C;
}

} // namespace cert
} // namespace relc
