//===- tests/analysis/SeededBugsTest.cpp - Planted-defect corpus ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Hand-written Bedrock2 programs, each carrying exactly one planted
// defect, and for each a clean twin differing only in the defect. The
// analyzer must flag the defect with the right checker at the right
// location, and must stay silent on the twin — this corpus is the
// precision/recall contract of the static layer.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::analysis;
using namespace relc::bedrock;

namespace {

/// ABI for `f(s, len)` over a byte array plus scalar return, mirroring the
/// digest makeAbiInfo produces for an `arrayArg/lenArg` fnspec.
AbiInfo byteArrayAbi() {
  AbiInfo Abi;
  Region R;
  R.K = Region::Kind::Array;
  R.Name = "s";
  R.EltBytes = 1;
  R.Extent = solver::ls("len_s");
  R.ClauseStr = "array s len";
  Abi.Regions.push_back(R);
  Abi.ArgRegion["s"] = 0;
  Abi.ArgTerm["len"] = solver::ls("len_s");
  Abi.EntryFacts.addGe0(solver::ls("len_s"), "length nonnegative");
  Abi.EntryFacts.addGe0(solver::lc(int64_t(1) << 32) - solver::ls("len_s"),
                        "ABI length bound");
  return Abi;
}

Function mkFn(const char *Name, CmdPtr Body) {
  Function F;
  F.Name = Name;
  F.Args = {"s", "len"};
  F.Rets = {"out"};
  F.Body = std::move(Body);
  return F;
}

/// The one diagnostic a seeded program must produce.
const Diagnostic &theOnly(const AnalysisReport &R) {
  EXPECT_EQ(R.Diags.size(), 1u) << R.str();
  static Diagnostic Dummy;
  return R.Diags.empty() ? Dummy : R.Diags.front();
}

void expectClean(const AnalysisReport &R) {
  EXPECT_TRUE(R.Diags.empty()) << R.str();
}

//===----------------------------------------------------------------------===//
// Defect 1: read of a possibly-uninitialized local.
//===----------------------------------------------------------------------===//

CmdPtr uninitBody(bool Seeded) {
  // The bug: `acc` is only initialized inside the conditional, then read
  // unconditionally. The twin initializes it up front.
  std::vector<CmdPtr> Cmds;
  if (!Seeded)
    Cmds.push_back(set("acc", lit(0)));
  Cmds.push_back(ifThenElse(bin(BinOp::LtU, lit(0), var("len")),
                            set("acc", load(AccessSize::Byte, var("s"))),
                            skip()));
  Cmds.push_back(set("out", add(var("acc"), lit(1))));
  return seqAll(std::move(Cmds));
}

TEST(SeededBugsTest, UninitReadFlagged) {
  AbiInfo Abi = byteArrayAbi();
  AnalysisReport R =
      analyzeFunction(mkFn("uninit_bug", uninitBody(true)), Abi);
  const Diagnostic &D = theOnly(R);
  EXPECT_EQ(D.C, Diagnostic::Checker::Uninit);
  EXPECT_TRUE(D.IsError);
  EXPECT_EQ(D.Path, "body.1") << D.str();
  EXPECT_NE(D.Message.find("acc"), std::string::npos) << D.str();
}

TEST(SeededBugsTest, UninitTwinClean) {
  AbiInfo Abi = byteArrayAbi();
  expectClean(analyzeFunction(mkFn("uninit_ok", uninitBody(false)), Abi));
}

//===----------------------------------------------------------------------===//
// Defect 2: off-by-one store past the array.
//===----------------------------------------------------------------------===//

CmdPtr storeLoopBody(bool Seeded) {
  // The bug: the loop runs to i <= len (guard i <u len+1), so the final
  // iteration stores one byte past the frame. The twin stops at len.
  ExprPtr Guard =
      Seeded ? bin(BinOp::LtU, var("i"), add(var("len"), lit(1)))
             : bin(BinOp::LtU, var("i"), var("len"));
  return seqAll(
      {set("i", lit(0)),
       whileLoop(std::move(Guard),
                 seqAll({store(AccessSize::Byte, add(var("s"), var("i")),
                               lit(0)),
                         set("i", add(var("i"), lit(1)))})),
       set("out", var("i"))});
}

TEST(SeededBugsTest, OffByOneStoreFlagged) {
  AbiInfo Abi = byteArrayAbi();
  AnalysisReport R =
      analyzeFunction(mkFn("off_by_one_bug", storeLoopBody(true)), Abi);
  const Diagnostic &D = theOnly(R);
  EXPECT_EQ(D.C, Diagnostic::Checker::Bounds);
  EXPECT_TRUE(D.IsError);
  EXPECT_EQ(D.Path, "body.1.body.0") << D.str();
}

TEST(SeededBugsTest, StoreLoopTwinClean) {
  AbiInfo Abi = byteArrayAbi();
  expectClean(
      analyzeFunction(mkFn("store_loop_ok", storeLoopBody(false)), Abi));
}

//===----------------------------------------------------------------------===//
// Defect 3: dead store.
//===----------------------------------------------------------------------===//

CmdPtr deadStoreBody(bool Seeded) {
  // The bug: `h` is assigned and immediately clobbered before any read.
  // The twin folds the first value into the result.
  std::vector<CmdPtr> Cmds;
  Cmds.push_back(set("h", lit(17)));
  if (Seeded)
    Cmds.push_back(set("h", lit(23)));
  else
    Cmds.push_back(set("h", add(var("h"), lit(23))));
  Cmds.push_back(set("out", var("h")));
  return seqAll(std::move(Cmds));
}

TEST(SeededBugsTest, DeadStoreFlagged) {
  AbiInfo Abi = byteArrayAbi();
  AnalysisReport R =
      analyzeFunction(mkFn("dead_store_bug", deadStoreBody(true)), Abi);
  const Diagnostic &D = theOnly(R);
  EXPECT_EQ(D.C, Diagnostic::Checker::DeadStore);
  EXPECT_FALSE(D.IsError) << "dead stores are warnings";
  EXPECT_EQ(D.Path, "body.0") << D.str();
  EXPECT_FALSE(R.hasErrors());
  EXPECT_EQ(R.numWarnings(), 1u);
}

TEST(SeededBugsTest, DeadStoreTwinClean) {
  AbiInfo Abi = byteArrayAbi();
  expectClean(
      analyzeFunction(mkFn("dead_store_ok", deadStoreBody(false)), Abi));
}

//===----------------------------------------------------------------------===//
// Defect 4: unreachable branch.
//===----------------------------------------------------------------------===//

CmdPtr unreachableBody(bool Seeded) {
  // The bug: the guard compares a constant against itself, so the then-arm
  // can never run. The twin branches on the actual argument.
  ExprPtr Guard = Seeded ? bin(BinOp::LtU, lit(3), lit(3))
                         : bin(BinOp::LtU, lit(3), var("len"));
  return seqAll({set("h", lit(0)),
                 ifThenElse(std::move(Guard), set("h", lit(1)), skip()),
                 set("out", var("h"))});
}

TEST(SeededBugsTest, UnreachableBranchFlagged) {
  AbiInfo Abi = byteArrayAbi();
  AnalysisReport R =
      analyzeFunction(mkFn("unreachable_bug", unreachableBody(true)), Abi);
  const Diagnostic &D = theOnly(R);
  EXPECT_EQ(D.C, Diagnostic::Checker::Unreachable);
  EXPECT_FALSE(D.IsError) << "unreachable code is a warning";
  EXPECT_EQ(D.Path, "body.1.then.0") << D.str();
  EXPECT_FALSE(R.hasErrors());
}

TEST(SeededBugsTest, UnreachableTwinClean) {
  AbiInfo Abi = byteArrayAbi();
  expectClean(
      analyzeFunction(mkFn("unreachable_ok", unreachableBody(false)), Abi));
}

//===----------------------------------------------------------------------===//
// Defect interplay: each report carries exactly its own defect, not noise
// from the shared scaffolding.
//===----------------------------------------------------------------------===//

TEST(SeededBugsTest, ReportsCarrySummaryCounts) {
  AbiInfo Abi = byteArrayAbi();
  AnalysisReport R =
      analyzeFunction(mkFn("off_by_one_bug", storeLoopBody(true)), Abi);
  EXPECT_TRUE(R.hasErrors());
  EXPECT_EQ(R.numErrors(), 1u);
  EXPECT_EQ(R.numWarnings(), 0u);
  EXPECT_GT(R.NumBlocks, 1u);
  EXPECT_GT(R.NumStmts, 0u);
  EXPECT_GT(R.SymIterations, 0u);
  EXPECT_NE(R.str().find("bounds"), std::string::npos) << R.str();
}

} // namespace
