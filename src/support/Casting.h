//===- support/Casting.h - isa/cast/dyn_cast templates ----------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// LLVM-style custom RTTI. AST node classes carry a kind discriminator and a
// static classof(const Base*); these templates provide isa<>, cast<> and
// dyn_cast<> over them without enabling C++ RTTI.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_CASTING_H
#define RELC_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace relc {

/// Returns true iff \p Val is an instance of To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the cast is valid.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible kind");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible kind");
  return static_cast<const To *>(Val);
}

/// Downcast that yields nullptr when the kinds do not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that tolerates null input.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace relc

#endif // RELC_SUPPORT_CASTING_H
