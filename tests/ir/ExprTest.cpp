//===- tests/ir/ExprTest.cpp -----------------------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Build.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::ir;

namespace {

/// Evaluates a closed-ish expression under the given environment.
Value evalIn(const Env &E, const ExprPtr &Ex) {
  SourceFn Fn; // No tables needed.
  EffectCtx Ctx;
  Evaluator Ev(Fn, Ctx);
  Result<Value> V = Ev.evalExpr(E, *Ex);
  EXPECT_TRUE(bool(V)) << (V ? "" : V.error().str());
  return V ? V.take() : Value::unit();
}

TEST(ExprTest, WordOpSemantics) {
  EXPECT_EQ(evalWordOp(WordOp::Add, ~0ull, 1), 0u);             // Wraps.
  EXPECT_EQ(evalWordOp(WordOp::Sub, 0, 1), ~0ull);              // Borrows.
  EXPECT_EQ(evalWordOp(WordOp::Mul, 1ull << 62, 4), 0u);        // Wraps.
  EXPECT_EQ(evalWordOp(WordOp::DivU, 7, 0), ~0ull);             // RISC-V.
  EXPECT_EQ(evalWordOp(WordOp::RemU, 7, 0), 7u);                // RISC-V.
  EXPECT_EQ(evalWordOp(WordOp::Shl, 1, 65), 2u);                // Mod 64.
  EXPECT_EQ(evalWordOp(WordOp::LShr, 0x8000000000000000ull, 63), 1u);
  EXPECT_EQ(evalWordOp(WordOp::AShr, ~0ull, 4), ~0ull);         // Sign.
  EXPECT_EQ(evalWordOp(WordOp::LtU, 1, ~0ull), 1u);
  EXPECT_EQ(evalWordOp(WordOp::LtS, 1, ~0ull), 0u); // -1 < 1 signed.
  EXPECT_EQ(evalWordOp(WordOp::Eq, 3, 3), 1u);
  EXPECT_EQ(evalWordOp(WordOp::Ne, 3, 3), 0u);
}

TEST(ExprTest, ArithmeticEvaluates) {
  Env E = {{"x", Value::word(10)}, {"y", Value::word(3)}};
  EXPECT_EQ(evalIn(E, addw(v("x"), mulw(v("y"), cw(2)))).asWord(), 16u);
  EXPECT_EQ(evalIn(E, xorw(v("x"), v("y"))).asWord(), 9u);
}

TEST(ExprTest, ComparesYieldBooleans) {
  Env E = {{"x", Value::word(10)}};
  Value B = evalIn(E, ltu(v("x"), cw(11)));
  EXPECT_EQ(B.kind(), Value::Kind::Bool);
  EXPECT_TRUE(B.asBool());
}

TEST(ExprTest, SelectPicksArm) {
  Env E = {{"x", Value::word(5)}};
  EXPECT_EQ(evalIn(E, select(ltu(v("x"), cw(10)), cw(1), cw(2))).asWord(),
            1u);
  EXPECT_EQ(evalIn(E, select(ltu(v("x"), cw(5)), cw(1), cw(2))).asWord(),
            2u);
}

TEST(ExprTest, CastsConvert) {
  Env E = {{"b", Value::byte(0xfe)}, {"w", Value::word(0x1234)}};
  EXPECT_EQ(evalIn(E, b2w(v("b"))).asWord(), 0xfeu);
  Value B = evalIn(E, w2b(v("w")));
  EXPECT_EQ(B.kind(), Value::Kind::Byte);
  EXPECT_EQ(B.asByte(), 0x34);
  EXPECT_EQ(evalIn(E, bool2w(cbool(true))).asWord(), 1u);
}

TEST(ExprTest, RotlMatchesReference) {
  for (uint32_t K : {0u, 1u, 0xdeadbeefu, 0x80000000u}) {
    Env E = {{"k", Value::word(K)}};
    uint32_t Want = (K << 15) | (K >> 17);
    EXPECT_EQ(evalIn(E, rotl(v("k"), 15, 32)).asWord(), Want);
  }
}

TEST(ExprTest, TypeErrorsAreReported) {
  SourceFn Fn;
  EffectCtx Ctx;
  Evaluator Ev(Fn, Ctx);
  Env E = {{"b", Value::byte(1)}};
  // Byte used in arithmetic without b2w.
  EXPECT_FALSE(bool(Ev.evalExpr(E, *addw(v("b"), cw(1)))));
  // w2b of a byte.
  EXPECT_FALSE(bool(Ev.evalExpr(E, *w2b(v("b")))));
  // Unbound variable.
  EXPECT_FALSE(bool(Ev.evalExpr(E, *v("nope"))));
}

TEST(ExprTest, ArrayGetBoundsChecked) {
  SourceFn Fn;
  EffectCtx Ctx;
  Evaluator Ev(Fn, Ctx);
  Env E = {{"a", Value::byteList({10, 20, 30})}};
  Result<Value> Ok = Ev.evalExpr(E, *aget("a", cw(2)));
  ASSERT_TRUE(bool(Ok));
  EXPECT_EQ(Ok->asByte(), 30);
  EXPECT_FALSE(bool(Ev.evalExpr(E, *aget("a", cw(3)))));
}

TEST(ExprTest, TableGetUsesFunctionTables) {
  SourceFn Fn;
  Fn.Tables.push_back(TableDef{"t", EltKind::U32, {100, 200, 300}});
  EffectCtx Ctx;
  Evaluator Ev(Fn, Ctx);
  Env E;
  Result<Value> V = Ev.evalExpr(E, *tget("t", cw(1)));
  ASSERT_TRUE(bool(V));
  EXPECT_EQ(V->asWord(), 200u);
  EXPECT_FALSE(bool(Ev.evalExpr(E, *tget("t", cw(3)))));
  EXPECT_FALSE(bool(Ev.evalExpr(E, *tget("missing", cw(0)))));
}

TEST(ExprTest, PrinterIsGallinaFlavored) {
  ExprPtr E = select(ltu(subw(b2w(v("b")), cw(97)), cw(26)),
                     andw(b2w(v("b")), cw(95)), b2w(v("b")));
  std::string S = E->str();
  EXPECT_NE(S.find("if"), std::string::npos);
  EXPECT_NE(S.find("<?"), std::string::npos);
  EXPECT_NE(S.find("b2w b"), std::string::npos);
}

} // namespace
