//===- core/ExprCompile.h - Relational expression compiler -----*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The second of Rupicola's two relational compilers (§4.1.3): "Rupicola is
// really two relational compilers rolled into one: one targeting Bedrock2's
// statements and one targeting its expressions." Like the statement
// compiler it is a first-match rule engine over an extensible rule set; the
// §4.1.3 ablation compares it against the original reflective design
// (src/reflect/).
//
// Compiling a source expression yields:
//  - a Bedrock2 expression,
//  - its source-level scalar type,
//  - a symbolic value (a solver symbol or constant) denoting the result —
//    fresh result symbols come with *structural facts* (byte results are
//    ≤ 255, x & c is ≤ c and ≤ x, 2^k·(x >> k) ≤ x, ...) that downstream
//    bounds side conditions are proved from (§3.4.2's "structural"
//    properties),
//  - an optional statement preamble (expression-level conditionals
//    materialize through a temporary and an If).
//
// Bounds side conditions of array and inline-table reads are discharged
// here against the current fact database and recorded in the derivation.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CORE_EXPRCOMPILE_H
#define RELC_CORE_EXPRCOMPILE_H

#include "bedrock/Ast.h"
#include "core/Derivation.h"
#include "ir/Expr.h"
#include "sep/State.h"
#include "support/Result.h"

#include <memory>
#include <vector>

namespace relc {
namespace core {

class CompileCtx;

/// The result of compiling one source expression.
struct CompiledExpr {
  bedrock::ExprPtr E;
  ir::Ty Type = ir::Ty::Word;
  sep::SymVal Val;                   ///< Symbolic result value.
  std::vector<bedrock::CmdPtr> Pre;  ///< Statements to run before using E.
};

class ExprCompiler;

/// Declarative description of an expression rule's conclusion — the
/// expression engine's counterpart of core::GoalPattern. Selection is by
/// node kind alone (plus any MatchConds); side conditions like bounds
/// checks are discharged during apply and failing them is a hard error.
struct ExprGoalPattern {
  /// Expression node kinds matches() accepts. Empty = never selected.
  std::vector<ir::Expr::Kind> Kinds;

  /// Extra *selection* predicates narrowing the kinds, as stable
  /// kebab-case tags (e.g. "operands-are-same-var"). A rule with
  /// MatchConds is strictly narrower than a same-kind rule without them,
  /// so it does not count as subsuming one.
  std::vector<std::string> MatchConds;

  /// Apply-time side conditions (kebab-case tags), e.g. "index-in-bounds".
  std::vector<std::string> SideConds;

  /// True iff apply() recursively compiles operand sub-expressions.
  bool EmitsExprGoals = false;

  /// Every recursive goal is a strict subterm of the matched expression.
  bool Decreasing = true;

  bool satisfiable() const { return !Kinds.empty(); }

  /// Canonical one-line rendering; hashed into the registry fingerprint.
  std::string render() const;
};

/// One expression-compilation lemma.
class ExprRule {
public:
  virtual ~ExprRule() = default;
  virtual std::string name() const = 0;
  /// Declarative conclusion descriptor; must agree with matches()/apply().
  virtual ExprGoalPattern pattern() const = 0;
  virtual bool matches(const CompileCtx &Ctx, const ir::Expr &E) const = 0;
  virtual Result<CompiledExpr> apply(CompileCtx &Ctx, ExprCompiler &EC,
                                     const ir::Expr &E, DerivNode &D) = 0;
};

class ExprRuleSet {
public:
  void add(std::unique_ptr<ExprRule> R) { Rules.push_back(std::move(R)); }
  void addFront(std::unique_ptr<ExprRule> R) {
    Rules.insert(Rules.begin(), std::move(R));
  }
  ExprRule *findMatch(const CompileCtx &Ctx, const ir::Expr &E) const {
    for (const auto &R : Rules)
      if (R->matches(Ctx, E))
        return R.get();
    return nullptr;
  }
  size_t size() const { return Rules.size(); }

  /// Registration-order access for the metatheory analyses.
  const ExprRule &operator[](size_t I) const { return *Rules[I]; }

  /// Order-sensitive digest of names and rendered patterns (see
  /// RuleSet::fingerprint).
  uint64_t fingerprint() const;

private:
  std::vector<std::unique_ptr<ExprRule>> Rules;
};

/// The first-match driver for expressions.
class ExprCompiler {
public:
  explicit ExprCompiler(CompileCtx &Ctx);

  ExprRuleSet &rules() { return Rules; }

  /// Compiles \p E under the current symbolic state; unsupported shapes
  /// yield an unsolved-goal error naming the missing lemma shape.
  Result<CompiledExpr> compile(const ir::Expr &E, DerivNode &D);

  /// Compiles \p E and additionally checks it has scalar type \p Want.
  Result<CompiledExpr> compileTyped(const ir::Expr &E, ir::Ty Want,
                                    DerivNode &D);

private:
  CompileCtx &Ctx;
  ExprRuleSet Rules;
};

/// Installs the standard expression rules (literals, variables, binary
/// operators with definitional-symbol fact generation, casts, selects,
/// array reads, inline-table reads).
void registerStandardExprRules(ExprRuleSet &RS);

/// Builds the address expression Ptr + Index·EltSize (omitting the
/// multiplication for byte arrays).
bedrock::ExprPtr scaledAddress(bedrock::ExprPtr Ptr, bedrock::ExprPtr Index,
                               ir::EltKind Elt);

/// Maps element kinds to access sizes.
bedrock::AccessSize accessSize(ir::EltKind Elt);

/// Maps source word operators to target operators (same carrier set).
bedrock::BinOp lowerWordOp(ir::WordOp Op);

} // namespace core
} // namespace relc

#endif // RELC_CORE_EXPRCOMPILE_H
