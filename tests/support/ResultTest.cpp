//===- tests/support/ResultTest.cpp ----------------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Result.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

Result<int> parsePositive(int X) {
  if (X <= 0)
    return Error("not positive: " + std::to_string(X));
  return X;
}

TEST(ResultTest, SuccessHoldsValue) {
  Result<int> R = parsePositive(42);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(*R, 42);
  EXPECT_EQ(R.take(), 42);
}

TEST(ResultTest, FailureHoldsError) {
  Result<int> R = parsePositive(-1);
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.error().message(), "not positive: -1");
}

TEST(ResultTest, NotesAccumulateInnermostFirst) {
  Error E("root cause");
  E.note("inner context").note("outer context");
  std::string S = E.str();
  EXPECT_NE(S.find("root cause"), std::string::npos);
  size_t Inner = S.find("inner context");
  size_t Outer = S.find("outer context");
  ASSERT_NE(Inner, std::string::npos);
  ASSERT_NE(Outer, std::string::npos);
  EXPECT_LT(Inner, Outer);
}

TEST(ResultTest, TakeErrorPropagatesWithNote) {
  Result<int> Inner = parsePositive(0);
  ASSERT_FALSE(bool(Inner));
  Result<std::string> Outer = [&]() -> Result<std::string> {
    return Inner.takeError().note("while formatting");
  }();
  ASSERT_FALSE(bool(Outer));
  EXPECT_NE(Outer.error().str().find("while formatting"), std::string::npos);
}

TEST(ResultTest, StatusDefaultsToSuccess) {
  Status S;
  EXPECT_TRUE(bool(S));
  Status F = Error("boom");
  EXPECT_FALSE(bool(F));
  EXPECT_EQ(F.error().message(), "boom");
}

TEST(ResultTest, MoveOnlyValuesWork) {
  Result<std::unique_ptr<int>> R = std::make_unique<int>(7);
  ASSERT_TRUE(bool(R));
  std::unique_ptr<int> P = R.take();
  EXPECT_EQ(*P, 7);
}

} // namespace
