//===- bench/sec43_compiler_throughput.cpp - §4.3: compiler speed ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// §4.3 reports that Rupicola compiles "anywhere between 2 and 15
// statements per second" because it runs at the speed of Coq's proof
// engine. This bench measures the same metric for this reproduction:
// statements emitted per second of compilation (proof search + solver
// side conditions + derivation construction), per program and overall.
// The point of comparison is qualitative — the architecture is the same
// (first-match rule search, solver-discharged side conditions), the proof
// engine is native code instead of Ltac.
//
// Also measured here: the two static certification layers that run on
// every compile and are therefore part of the effective throughput — the
// dataflow analyzer (relc::analysis) and the translation validator
// (relc::tv, symbolic equivalence proof per program).
//
// Besides the paper-shaped text summary, the bench writes a
// machine-readable BENCH_sec43.json (per-program compile/analyze/tv
// milliseconds and statement counts) for trajectory tracking across
// commits.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "bench_common.h"
#include "programs/Programs.h"
#include "tv/Tv.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>

using namespace relc;
using namespace relc_bench;

namespace {

void benchCompile(benchmark::State &State, const programs::ProgramDef &P) {
  unsigned Stmts = 0;
  for (auto _ : State) {
    core::Compiler C;
    Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    else
      Stmts = R->EmittedStmts;
    benchmark::DoNotOptimize(R);
  }
  State.counters["statements"] = Stmts;
  State.counters["stmts_per_sec"] = benchmark::Counter(
      double(Stmts) * double(State.iterations()), benchmark::Counter::kIsRate);
}

void benchAnalyze(benchmark::State &State, const programs::ProgramDef &P) {
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
  if (!R) {
    State.SkipWithError(R.error().str().c_str());
    return;
  }
  unsigned Stmts = R->Fn.countStmts();
  for (auto _ : State) {
    analysis::AnalysisReport Rep = analysis::analyzeProgram(
        R->Fn, P.Spec, P.Model, P.Hints.EntryFacts);
    if (Rep.hasErrors())
      State.SkipWithError(Rep.str().c_str());
    benchmark::DoNotOptimize(Rep);
  }
  State.counters["statements"] = Stmts;
  State.counters["stmts_per_sec"] = benchmark::Counter(
      double(Stmts) * double(State.iterations()), benchmark::Counter::kIsRate);
}

void benchTv(benchmark::State &State, const programs::ProgramDef &P) {
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
  if (!R) {
    State.SkipWithError(R.error().str().c_str());
    return;
  }
  unsigned Terms = 0;
  for (auto _ : State) {
    tv::TvReport Rep = tv::validateTranslation(P.Model, P.Spec, R->Fn,
                                               P.Hints.EntryFacts);
    if (!Rep.proved())
      State.SkipWithError(Rep.str().c_str());
    Terms = Rep.NumTerms;
    benchmark::DoNotOptimize(Rep);
  }
  State.counters["terms"] = Terms;
}

} // namespace

int main(int argc, char **argv) {
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    benchmark::RegisterBenchmark(
        ("sec43/compile/" + P.Name).c_str(),
        [&P](benchmark::State &S) { benchCompile(S, P); });
    benchmark::RegisterBenchmark(
        ("sec43/analyze/" + P.Name).c_str(),
        [&P](benchmark::State &S) { benchAnalyze(S, P); });
    benchmark::RegisterBenchmark(
        ("sec43/tv/" + P.Name).c_str(),
        [&P](benchmark::State &S) { benchTv(S, P); });
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Paper-shaped summary, measured once per program with fixed reps so
  // the numbers are comparable across runs (and feed the JSON below).
  struct Row {
    std::string Name;
    unsigned Stmts = 0;       ///< Emitted target statements.
    double CompileMs = 0;
    unsigned AnIters = 0;     ///< Analyzer fixpoint iterations.
    double AnalyzeMs = 0;
    unsigned TvTerms = 0;     ///< Shared term-graph size.
    unsigned TvLoops = 0;     ///< Matched loop summaries.
    double TvMs = 0;
    std::string TvVerdict;
  };
  std::vector<Row> Rows;
  const unsigned Reps = 40;

  for (const programs::ProgramDef &P : programs::allPrograms()) {
    Row R;
    R.Name = P.Name;
    core::Compiler C;

    auto T0 = std::chrono::steady_clock::now();
    for (unsigned I = 0; I < Reps; ++I) {
      Result<core::CompileResult> CR = C.compileFn(P.Model, P.Spec, P.Hints);
      if (CR)
        R.Stmts = CR->EmittedStmts;
      benchmark::DoNotOptimize(CR);
    }
    auto T1 = std::chrono::steady_clock::now();
    R.CompileMs =
        std::chrono::duration<double, std::milli>(T1 - T0).count() / Reps;

    Result<core::CompileResult> CR = C.compileFn(P.Model, P.Spec, P.Hints);
    if (!CR)
      continue;

    T0 = std::chrono::steady_clock::now();
    for (unsigned I = 0; I < Reps; ++I) {
      analysis::AnalysisReport Rep = analysis::analyzeProgram(
          CR->Fn, P.Spec, P.Model, P.Hints.EntryFacts);
      R.AnIters = Rep.SymIterations;
      benchmark::DoNotOptimize(Rep);
    }
    T1 = std::chrono::steady_clock::now();
    R.AnalyzeMs =
        std::chrono::duration<double, std::milli>(T1 - T0).count() / Reps;

    T0 = std::chrono::steady_clock::now();
    for (unsigned I = 0; I < Reps; ++I) {
      tv::TvReport Rep = tv::validateTranslation(P.Model, P.Spec, CR->Fn,
                                                 P.Hints.EntryFacts);
      R.TvTerms = Rep.NumTerms;
      R.TvLoops = unsigned(Rep.Loops.size());
      R.TvVerdict = tv::verdictName(Rep.TheVerdict);
      benchmark::DoNotOptimize(Rep);
    }
    T1 = std::chrono::steady_clock::now();
    R.TvMs =
        std::chrono::duration<double, std::milli>(T1 - T0).count() / Reps;

    Rows.push_back(std::move(R));
  }

  std::printf("\n=== §4.3: compiler throughput (statements/second) ===\n");
  unsigned TotalStmts = 0;
  double TotalMs = 0;
  for (const Row &R : Rows) {
    std::printf("%-7s %3u statements in %7.3f ms  -> %10.0f stmts/s\n",
                R.Name.c_str(), R.Stmts, R.CompileMs,
                R.CompileMs > 0 ? R.Stmts / (R.CompileMs / 1000.0) : 0.0);
    TotalStmts += R.Stmts;
    TotalMs += R.CompileMs;
  }
  std::printf("overall: %u statements in %.3f ms -> %.0f stmts/s  "
              "(paper, in Coq: 2-15 stmts/s)\n",
              TotalStmts, TotalMs,
              TotalMs > 0 ? TotalStmts / (TotalMs / 1000.0) : 0.0);

  // Static-analysis cost per program (the certification pipeline's layer
  // 2; runs on every compile).
  std::printf("\n=== static analysis of generated code (per program) ===\n");
  double TotalAnMs = 0;
  for (const Row &R : Rows) {
    std::printf("%-7s %3u statements, %2u fixpoint iterations in %7.3f ms\n",
                R.Name.c_str(), R.Stmts, R.AnIters, R.AnalyzeMs);
    TotalAnMs += R.AnalyzeMs;
  }

  // Translation-validation cost per program (layer 3; the symbolic
  // equivalence proof runs on every compile too).
  std::printf("\n=== translation validation (per program) ===\n");
  double TotalTvMs = 0;
  for (const Row &R : Rows) {
    std::printf("%-7s %-7s %4u terms, %u loop summaries in %7.3f ms\n",
                R.Name.c_str(), R.TvVerdict.c_str(), R.TvTerms, R.TvLoops,
                R.TvMs);
    TotalTvMs += R.TvMs;
  }
  std::printf("overall per suite pass: %.3f ms compile, %.3f ms analysis, "
              "%.3f ms translation validation\n",
              TotalMs, TotalAnMs, TotalTvMs);

  // Machine-readable trajectory record.
  std::ofstream J("BENCH_sec43.json");
  J << "{\n  \"bench\": \"sec43_compiler_throughput\",\n  \"reps\": " << Reps
    << ",\n  \"programs\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"name\": \"%s\", \"statements\": %u, "
                  "\"compile_ms\": %.4f, \"analyze_ms\": %.4f, "
                  "\"analyze_iters\": %u, \"tv_ms\": %.4f, "
                  "\"tv_terms\": %u, \"tv_loops\": %u, "
                  "\"tv_verdict\": \"%s\"}%s\n",
                  R.Name.c_str(), R.Stmts, R.CompileMs, R.AnalyzeMs,
                  R.AnIters, R.TvMs, R.TvTerms, R.TvLoops,
                  R.TvVerdict.c_str(), I + 1 < Rows.size() ? "," : "");
    J << Buf;
  }
  char Tail[256];
  std::snprintf(Tail, sizeof(Tail),
                "  ],\n  \"totals\": {\"statements\": %u, "
                "\"compile_ms\": %.4f, \"analyze_ms\": %.4f, "
                "\"tv_ms\": %.4f}\n}\n",
                TotalStmts, TotalMs, TotalAnMs, TotalTvMs);
  J << Tail;
  std::printf("wrote BENCH_sec43.json\n");
  return 0;
}
