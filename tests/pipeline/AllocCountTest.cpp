//===- tests/pipeline/AllocCountTest.cpp - Warm-path allocation bounds ----===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The point of the binary cache image is that a warm hit costs O(1)
// allocations regardless of how large the embedded certificate grew —
// one exact-sized string per field, no line splitting, no field map, no
// unescape loop. These tests pin that property with the bench_common.h
// counting hook: this is the one TU of this binary that defines
// RELC_BENCH_COUNT_ALLOCS, so global operator new feeds allocCount().
//
// The bounds are deliberately generous (a libstdc++ upgrade may shift
// small constants); what must NOT pass is an accidental reintroduction
// of payload-proportional work on the binary path.
//
//===----------------------------------------------------------------------===//

#define RELC_BENCH_COUNT_ALLOCS
#include "bench_common.h"

#include "pipeline/CertCache.h"

#include "gtest/gtest.h"

#include <optional>
#include <string>

using namespace relc;
using namespace relc::pipeline;
using relc_bench::allocationsDuring;

namespace {

CertKey sampleKey() {
  CertKey K;
  K.ModelHash = 0x1111111111111111ULL;
  K.SpecHash = 0x2222222222222222ULL;
  K.CodeHash = 0x3333333333333333ULL;
  return K;
}

/// An entry whose certificate payloads scale with \p PayloadSize; the
/// JSON face must escape the quote/newline mix, the binary face carries
/// it verbatim.
CertEntry sampleEntry(size_t PayloadSize) {
  CertEntry E;
  E.OptsHash = 0x4444444444444444ULL;
  E.Program = "alloc-probe";
  E.ReplayOk = true;
  E.AnalysisOk = true;
  E.AnalysisWarnings = 1;
  E.AnalysisDiags = "w: note\n";
  E.TvRan = true;
  E.TvVerdict = "equivalent";
  E.TvLoops = 3;
  E.TvTerms = 99;
  std::string Payload;
  Payload.reserve(PayloadSize);
  while (Payload.size() < PayloadSize)
    Payload += "{\"step\": \"rewrite\", \"term\": \"(f x)\"}\n";
  Payload.resize(PayloadSize);
  E.TvCertificate = Payload;
  E.TvCertBin = std::string("RELCCERT\x00\x01", 10) + Payload;
  E.CodelintRan = true;
  E.CodelintVerdict = "clean";
  E.DifferentialOk = true;
  return E;
}

/// Allocations performed by one binary-image load. The lambda stays free
/// of gtest machinery so only the deserializer is counted; validity is
/// asserted by the caller afterwards.
uint64_t binLoadAllocs(const std::string &Image, bool *OkOut) {
  bool Ok = false;
  uint64_t N = allocationsDuring([&] {
    std::optional<CertEntry> E = CertCache::deserializeBin(Image);
    Ok = E.has_value();
  });
  *OkOut = Ok;
  return N;
}

uint64_t jsonLoadAllocs(const std::string &Text, bool *OkOut) {
  bool Ok = false;
  uint64_t N = allocationsDuring([&] {
    std::optional<CertEntry> E = CertCache::deserialize(Text);
    Ok = E.has_value();
  });
  *OkOut = Ok;
  return N;
}

TEST(AllocCountTest, HookIsCountingAtAll) {
  uint64_t N = allocationsDuring([] {
    std::string S(4096, 'x');
    // Defeat any heroic optimizer: observe the buffer.
    volatile char C = S[1];
    (void)C;
  });
  EXPECT_GE(N, 1u);
}

TEST(AllocCountTest, BinLoadIsConstantAllocationsInPayloadSize) {
  CertKey K = sampleKey();
  std::string Small = CertCache::serializeBin(K, sampleEntry(64));
  std::string Large = CertCache::serializeBin(K, sampleEntry(1 << 20));

  bool OkSmall = false, OkLarge = false;
  uint64_t NSmall = binLoadAllocs(Small, &OkSmall);
  uint64_t NLarge = binLoadAllocs(Large, &OkLarge);
  ASSERT_TRUE(OkSmall);
  ASSERT_TRUE(OkLarge);

  // O(1): a small fixed budget, and growing the payload 16000x must not
  // move the count beyond trivial slack (SSO boundaries on tiny fields).
  EXPECT_LE(NSmall, 32u) << "binary load allocates more than O(1)";
  EXPECT_LE(NLarge, 32u) << "binary load allocates more than O(1)";
  uint64_t Delta = NLarge > NSmall ? NLarge - NSmall : NSmall - NLarge;
  EXPECT_LE(Delta, 4u) << "binary load allocations scale with payload size";
}

TEST(AllocCountTest, JsonLoadAllocationsGrowButBinStaysFlat) {
  CertKey K = sampleKey();
  CertEntry Large = sampleEntry(1 << 20);
  std::string Json = CertCache::serialize(K, Large);
  std::string Bin = CertCache::serializeBin(K, Large);

  bool JsonOk = false, BinOk = false;
  uint64_t NJson = jsonLoadAllocs(Json, &JsonOk);
  uint64_t NBin = binLoadAllocs(Bin, &BinOk);
  ASSERT_TRUE(JsonOk);
  ASSERT_TRUE(BinOk);

  // The JSON face line-splits, builds a field map, and unescapes through
  // amortized growth — for a 1 MiB certificate it must allocate well
  // beyond the binary face's fixed budget. 2x is a deliberately loose
  // floor (measured gap is an order of magnitude).
  EXPECT_GT(NJson, 2 * NBin);
}

TEST(AllocCountTest, BinLoadRoundTripsWhileCounted) {
  // Counting must not perturb correctness: the loaded entry matches what
  // was stored, byte for byte on every string field.
  CertKey K = sampleKey();
  CertEntry In = sampleEntry(4096);
  CertKey KOut;
  std::optional<CertEntry> Out =
      CertCache::deserializeBin(CertCache::serializeBin(K, In), &KOut);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(KOut.ModelHash, K.ModelHash);
  EXPECT_EQ(KOut.SpecHash, K.SpecHash);
  EXPECT_EQ(KOut.CodeHash, K.CodeHash);
  EXPECT_EQ(Out->Program, In.Program);
  EXPECT_EQ(Out->TvCertificate, In.TvCertificate);
  EXPECT_EQ(Out->TvCertBin, In.TvCertBin);
  EXPECT_EQ(Out->CodelintVerdict, In.CodelintVerdict);
}

} // namespace
