//===- support/StringExtras.cpp - String helpers --------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/StringExtras.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>

namespace relc {

std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string hexStr(uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  if (V == 0)
    return "0x0";
  std::string Rev;
  while (V != 0) {
    Rev.push_back(Digits[V & 0xf]);
    V >>= 4;
  }
  std::string Out = "0x";
  Out.append(Rev.rbegin(), Rev.rend());
  return Out;
}

std::string hexByte(uint8_t B) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.push_back(Digits[B >> 4]);
  Out.push_back(Digits[B & 0xf]);
  return Out;
}

static bool isCKeyword(const std::string &Name) {
  static const std::array<const char *, 37> Keywords = {
      "auto",     "break",    "case",     "char",   "const",    "continue",
      "default",  "do",       "double",   "else",   "enum",     "extern",
      "float",    "for",      "goto",     "if",     "inline",   "int",
      "long",     "register", "restrict", "return", "short",    "signed",
      "sizeof",   "static",   "struct",   "switch", "typedef",  "union",
      "unsigned", "void",     "volatile", "while",  "_Bool",    "uintptr_t",
      "memcpy"};
  for (const char *K : Keywords)
    if (Name == K)
      return true;
  return false;
}

bool isValidCIdentifier(const std::string &Name) {
  if (Name.empty() || isCKeyword(Name))
    return false;
  if (!std::isalpha(static_cast<unsigned char>(Name[0])) && Name[0] != '_')
    return false;
  for (char C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
      return false;
  return true;
}

std::string sanitizeCIdentifier(const std::string &Name) {
  if (isValidCIdentifier(Name))
    return Name;
  std::string Out = "v_";
  for (char C : Name) {
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_') {
      Out.push_back(C);
      continue;
    }
    Out += "_x";
    Out += hexByte(static_cast<uint8_t>(C));
  }
  return Out;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", (unsigned char)C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

bool jsonUnescape(const std::string &S, std::string *Out) {
  Out->clear();
  Out->reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    char C = S[I];
    if (C != '\\') {
      Out->push_back(C);
      continue;
    }
    if (I + 1 >= S.size())
      return false;
    char E = S[++I];
    switch (E) {
    case '"':
      Out->push_back('"');
      break;
    case '\\':
      Out->push_back('\\');
      break;
    case 'n':
      Out->push_back('\n');
      break;
    case 't':
      Out->push_back('\t');
      break;
    case 'u': {
      if (I + 4 >= S.size())
        return false;
      unsigned V = 0;
      for (unsigned K = 1; K <= 4; ++K) {
        char H = S[I + K];
        unsigned D;
        if (H >= '0' && H <= '9')
          D = unsigned(H - '0');
        else if (H >= 'a' && H <= 'f')
          D = unsigned(H - 'a') + 10;
        else if (H >= 'A' && H <= 'F')
          D = unsigned(H - 'A') + 10;
        else
          return false;
        V = (V << 4) | D;
      }
      I += 4;
      if (V < 0x80)
        Out->push_back(char(V));
      else
        return false; // Emitters only \u-escape control characters.
      break;
    }
    default:
      // Pass through unknown escapes verbatim (we never emit them).
      Out->push_back('\\');
      Out->push_back(E);
    }
  }
  return true;
}

unsigned editDistance(const std::string &A, const std::string &B) {
  // Single-row dynamic program; inputs are short option names.
  std::vector<unsigned> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = unsigned(J);
  for (size_t I = 1; I <= A.size(); ++I) {
    unsigned Diag = Row[0];
    Row[0] = unsigned(I);
    for (size_t J = 1; J <= B.size(); ++J) {
      unsigned Sub = Diag + (A[I - 1] == B[J - 1] ? 0 : 1);
      Diag = Row[J];
      Row[J] = std::min({Sub, Row[J] + 1, Row[J - 1] + 1});
    }
  }
  return Row[B.size()];
}

std::string replaceAll(std::string S, const std::string &From,
                       const std::string &To) {
  if (From.empty())
    return S;
  size_t Pos = 0;
  while ((Pos = S.find(From, Pos)) != std::string::npos) {
    S.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return S;
}

std::string indentLines(const std::string &S, unsigned Spaces) {
  std::string Pad(Spaces, ' ');
  std::string Out;
  size_t Start = 0;
  while (Start < S.size()) {
    size_t End = S.find('\n', Start);
    if (End == std::string::npos)
      End = S.size();
    if (End != Start)
      Out += Pad;
    Out.append(S, Start, End - Start);
    if (End < S.size())
      Out += '\n';
    Start = End + 1;
  }
  return Out;
}

} // namespace relc
