//===- core/rules/BaseRules.cpp - Plain let/n bindings ---------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/rules/Rules.h"
#include "core/rules/RulesCommon.h"

namespace relc {
namespace core {

using sep::TargetSlot;

namespace {

// RELC-SECTION-BEGIN: lemma-let
/// compile_let: a named pure binding becomes one target assignment, the
/// variable name carried by let/n choosing the local (§3.4.1: "one per
/// desired assignment in the target language"). This single lemma covers
/// pure bindings under *every* monad, since the driver normalizes pure
/// binds the same way in all of them.
class LetRule : public StmtRule {
public:
  std::string name() const override { return "compile_let"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::PureVal};
    P.SideConds = {"no-live-pointer-overwrite"};
    P.SubGoals = GoalPattern::Emits::Expr;
    return P;
  }

  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::PureVal>(B.Bound.get()) && B.Names.size() == 1;
  }

  Result<bedrock::CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B,
                                const Cont &K, DerivNode &D) override {
    const std::string &Name = B.Names[0];
    const auto *P = cast<ir::PureVal>(B.Bound.get());
    Result<CompiledExpr> CE = Ctx.exprs().compile(*P->expr(), D);
    if (!CE)
      return CE.takeError();
    auto It = Ctx.State.Locals.find(Name);
    if (It != Ctx.State.Locals.end() &&
        It->second.TheKind == TargetSlot::Kind::Ptr)
      return Error("unsolved goal: binding scalar '" + Name +
                   "' would overwrite a live pointer local; rename it");
    Ctx.State.Locals[Name] = TargetSlot::scalar(CE->Val, CE->Type);
    std::vector<bedrock::CmdPtr> Cmds = CE->Pre;
    Cmds.push_back(bedrock::set(Name, CE->E));
    Result<bedrock::CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-let

} // namespace

std::unique_ptr<StmtRule> makeLetRule() { return std::make_unique<LetRule>(); }

} // namespace core
} // namespace relc
