//===- tests/core/CondStackTest.cpp - Conditionals & stack allocation ------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "CoreTestUtil.h"

using namespace relc;
using namespace relc::ir;
using namespace relc::coretest;

namespace {

TEST(CondTest, PaperCompareAndSwapShape) {
  // §3.4.2's example: let (r, c) := if t then (true, put c x) else
  // (false, c) — here over a cell.
  FnBuilder FB("cas", Monad::Pure);
  FB.cellParam("c").wordParam("t").wordParam("x");
  ProgBuilder Then;
  Then.let("c", mkCellPut("c", v("x"))).let("r", cw(1));
  ProgBuilder Else;
  Else.let("r", cw(0));
  ProgBuilder B;
  B.let("cur", mkCellGet("c"))
      .letMulti({"r", "c"},
                mkIf(eqw(v("cur"), v("t")), std::move(Then).ret({"r", "c"}),
                     std::move(Else).ret({"r", "c"})))
      .let("out", v("r"));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"out", "c"}));
  sep::FnSpec Spec("cas");
  Spec.cellArg("c").scalarArg("t").scalarArg("x").retScalar("out")
      .retCellInPlace("c");
  core::CompileResult Out;
  ASSERT_CERTIFIES(Fn, Spec, {}, {}, &Out);
  // The join inference recorded the template, and the classification
  // found r scalar, c pointer — just like the paper.
  std::string D = Out.Proof->str();
  EXPECT_NE(D.find("join template"), std::string::npos);
  EXPECT_NE(D.find("cond_then"), std::string::npos);
  EXPECT_NE(D.find("cond_else"), std::string::npos);
}

TEST(CondTest, BranchFactsProveTailAccess) {
  // if (len & 1) != 0 then s[len-1] else 0 — the ip odd-tail shape.
  FnBuilder FB("tail", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder Then;
  Then.let("r", b2w(aget("s", subw(v("len"), cw(1)))));
  ProgBuilder Else;
  Else.let("r", cw(0));
  ProgBuilder B;
  B.letMulti({"r"}, mkIf(nez(andw(v("len"), cw(1))),
                         std::move(Then).ret({"r"}),
                         std::move(Else).ret({"r"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("tail");
  Spec.arrayArg("s").lenArg("len", "s").retScalar("r");
  EXPECT_CERTIFIES(Fn, Spec);
}

TEST(CondTest, WithoutBranchFactTheAccessFails) {
  // The same access under a guard that gives no lower bound on len.
  FnBuilder FB("tail", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len").wordParam("z");
  ProgBuilder Then;
  Then.let("r", b2w(aget("s", subw(v("len"), cw(1)))));
  ProgBuilder Else;
  Else.let("r", cw(0));
  ProgBuilder B;
  B.letMulti({"r"}, mkIf(nez(andw(v("z"), cw(1))), // Unrelated guard.
                         std::move(Then).ret({"r"}),
                         std::move(Else).ret({"r"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("tail");
  Spec.arrayArg("s").lenArg("len", "s").scalarArg("z").retScalar("r");
  core::Compiler C;
  EXPECT_FALSE(bool(C.compileFn(Fn, Spec)));
}

TEST(CondTest, NestedConditionals) {
  FnBuilder FB("clamp", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder InnerThen;
  InnerThen.let("r", cw(100));
  ProgBuilder InnerElse;
  InnerElse.let("r", v("x"));
  ProgBuilder OuterThen;
  OuterThen.letMulti({"r"}, mkIf(ltu(cw(100), v("x")),
                                 std::move(InnerThen).ret({"r"}),
                                 std::move(InnerElse).ret({"r"})));
  ProgBuilder OuterElse;
  OuterElse.let("r", cw(10));
  ProgBuilder B;
  B.letMulti({"r"}, mkIf(ltu(cw(10), v("x")), std::move(OuterThen).ret({"r"}),
                         std::move(OuterElse).ret({"r"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("clamp");
  Spec.scalarArg("x").retScalar("r");
  EXPECT_CERTIFIES(Fn, Spec);
}

TEST(StackTest, InitializedStackBufferReadableAndScoped) {
  // A 4-byte constant table on the stack, indexed by x & 3.
  FnBuilder FB("lut4", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("buf", mkStack({10, 20, 30, 40}))
      .let("r", b2w(aget("buf", andw(v("x"), cw(3)))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("lut4");
  Spec.scalarArg("x").retScalar("r");
  core::CompileResult Out;
  ASSERT_CERTIFIES(Fn, Spec, {}, {}, &Out);
  EXPECT_NE(Out.Fn.str().find("stackalloc buf[4]"), std::string::npos);
}

TEST(StackTest, LargeInitializedBufferUsesWordStores) {
  FnBuilder FB("big", Monad::Pure);
  FB.wordParam("x");
  std::vector<uint8_t> Init(19);
  for (size_t I = 0; I < Init.size(); ++I)
    Init[I] = uint8_t(3 * I + 1);
  ProgBuilder B;
  B.let("buf", mkStack(Init)).let("r", b2w(aget("buf", cw(18))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("big");
  Spec.scalarArg("x").retScalar("r");
  core::CompileResult Out;
  ASSERT_CERTIFIES(Fn, Spec, {}, {}, &Out);
  // 2 word stores + 3 byte stores, not 19 byte stores.
  EXPECT_NE(Out.Fn.str().find("store8"), std::string::npos);
}

TEST(StackTest, UninitThenFullyOverwrittenIsDeterministic) {
  FnBuilder FB("scr", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder Fill;
  Fill.let("buf", mkPut("buf", v("j"), w2b(andw(v("x"), cw(0xff)))));
  ProgBuilder B;
  B.let("buf", mkStackUninit(8))
      .letMulti({"buf"}, mkRange("j", cw(0), cw(8), {acc("buf", v("buf"))},
                                 std::move(Fill).ret({"buf"})))
      .let("r", b2w(aget("buf", cw(5))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("scr");
  Spec.scalarArg("x").retScalar("r");
  EXPECT_CERTIFIES(Fn, Spec);
}

TEST(StackTest, UninitDependentResultFailsValidation) {
  // Reading junk directly: compilation succeeds (the lemma applies), but
  // differential certification rejects it — the §4.1.2 determinism
  // obligation, discharged dynamically.
  FnBuilder FB("junk", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("buf", mkStackUninit(8)).let("r", b2w(aget("buf", cw(0))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("junk");
  Spec.scalarArg("x").retScalar("r");
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec);
  ASSERT_TRUE(bool(R)) << R.error().str();
  bedrock::Module Linked;
  Linked.Functions.push_back(R->Fn);
  Status V = validate::validate(Fn, Spec, *R, Linked, {});
  EXPECT_FALSE(bool(V));
}

TEST(StackTest, StackBufferCannotBeAnInPlaceResult) {
  // Returning a stack buffer through the ensures clause is rejected: it
  // dies with its scope.
  FnBuilder FB("esc", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  B.let("s2", mkStack({1, 2, 3}));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"s"}));
  sep::FnSpec Spec("esc");
  Spec.arrayArg("s").lenArg("len", "s").retInPlace("s");
  // This one is fine (s untouched)...
  EXPECT_CERTIFIES(Fn, Spec);
  // ...but binding the stack buffer under the parameter's name collides.
  ProgBuilder B2;
  B2.let("s", mkStack({1, 2, 3}));
  FnBuilder FB2("esc2", Monad::Pure);
  FB2.listParam("s", EltKind::U8).wordParam("len");
  SourceFn Fn2 = std::move(FB2).done(std::move(B2).ret({"s"}));
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn2, Spec);
  EXPECT_FALSE(bool(R));
}

TEST(CopyTest, CopyOfStackBufferIsIndependent) {
  // t := copy(buf); mutate t; both survive with the right contents.
  FnBuilder FB("cpy", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("buf", mkStack({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}))
      .let("t", mkCopy("buf"))
      .let("t", mkPut("t", cw(0), cb(0xEE)))
      .let("orig", b2w(aget("buf", cw(0))))
      .let("dup", b2w(aget("t", cw(0))))
      .let("r", orw(shlw(v("orig"), cw(8)), v("dup")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("cpy");
  Spec.scalarArg("x").retScalar("r");
  core::CompileResult Out;
  // Source semantics: copy duplicates, so orig stays 1 while dup becomes
  // 0xEE and r = 0x1EE — checked by the differential vectors.
  ASSERT_CERTIFIES(Fn, Spec, {}, {}, &Out);
  EXPECT_NE(Out.Fn.str().find("stackalloc t[11]"), std::string::npos);
}

TEST(CopyTest, CopyOfSymbolicLengthArrayIsUnsolvedGoal) {
  FnBuilder FB("cpy", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  B.let("t", mkCopy("s")).let("r", v("len"));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("cpy");
  Spec.arrayArg("s").lenArg("len", "s").retScalar("r");
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("statically sized"), std::string::npos);
}

TEST(CopyTest, CopyBackToSameNameRejected) {
  FnBuilder FB("cpy", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("buf", mkStack({1, 2})).let("buf", mkCopy("buf")).let("r", v("x"));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("cpy");
  Spec.scalarArg("x").retScalar("r");
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("identity"), std::string::npos);
}

TEST(StackTest, OversizeStackAllocationRejected) {
  FnBuilder FB("huge", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("buf", mkStackUninit(1 << 20)).let("r", v("x"));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("huge");
  Spec.scalarArg("x").retScalar("r");
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("4096"), std::string::npos);
}

} // namespace
