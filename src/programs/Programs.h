//===- programs/Programs.h - The Table 2 benchmark suite --------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The seven programs of the paper's benchmark suite (Table 2), each as an
// annotated functional model plus its ABI, compilation hints, and
// validation configuration:
//
//   fnv1a  Fowler–Noll–Vo (noncryptographic) hash
//   utf8   Branchless UTF-8 decoding
//   upstr  In-place string uppercase (Box 1)
//   m3s    Scramble part of the Murmur3 algorithm
//   ip     IP (one's-complement) checksum (RFC 1071)
//   fasta  In-place DNA sequence complement
//   crc32  Error-detecting code (cyclic redundancy check)
//
// Each program's model and hint code is bracketed with RELC-SECTION
// markers so Table 2's Source/Lemmas/Hints columns are measured from the
// real sources.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_PROGRAMS_PROGRAMS_H
#define RELC_PROGRAMS_PROGRAMS_H

#include "core/Compiler.h"
#include "ir/Build.h"
#include "sep/Spec.h"
#include "validate/Validate.h"

#include <string>
#include <vector>

namespace relc {
namespace programs {

/// Everything the toolchain needs to compile, validate, and report on one
/// benchmark program.
struct ProgramDef {
  std::string Name;
  std::string Description; ///< The Table 2 caption line.

  ir::SourceFn Model;
  sep::FnSpec Spec;
  core::CompileHints Hints;

  /// Validation configuration (input profiles, etc.).
  validate::ValidationOptions VOpts;

  /// Table 2 "End-to-End": the model additionally carries proofs (here:
  /// property tests in tests/programs/) against an abstract specification.
  bool EndToEnd = false;

  /// Where this program's marked sections live (for LoC measurement),
  /// relative to the repository root.
  std::string SourceFile;

  /// Minimum input-buffer length required by the ABI (requires clause);
  /// the validator and benches only generate inputs satisfying it.
  size_t MinLen = 0;
};

/// All seven benchmark programs, in Table 2 order.
const std::vector<ProgramDef> &allPrograms();

/// Looks a program up by name (null when absent).
const ProgramDef *findProgram(const std::string &Name);

/// Individual constructors (each in its own translation unit).
ProgramDef makeFnv1a();
ProgramDef makeUtf8();
ProgramDef makeUpstr();
ProgramDef makeM3s();
ProgramDef makeIpChecksum();
ProgramDef makeFasta();
ProgramDef makeCrc32();

/// Compiles one program and runs the full validator; returns the result
/// together with the single-function module it was linked into.
struct CompiledProgram {
  core::CompileResult Result;
  bedrock::Module Linked;
};
Result<CompiledProgram> compileAndValidate(const ProgramDef &P,
                                           bool RunValidation = true);

/// The CRC-32 (IEEE, reflected, poly 0xEDB88320) lookup table, shared by
/// the model, the reference implementation, and tests.
const std::vector<uint64_t> &crc32Table();

/// The DNA complement table (identity outside IUPAC codes), shared by the
/// fasta model and its reference.
const std::vector<uint64_t> &fastaComplementTable();

} // namespace programs
} // namespace relc

#endif // RELC_PROGRAMS_PROGRAMS_H
