//===- bench/sec43_compiler_throughput.cpp - §4.3: compiler speed ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// §4.3 reports that Rupicola compiles "anywhere between 2 and 15
// statements per second" because it runs at the speed of Coq's proof
// engine. This bench measures the same metric for this reproduction:
// statements emitted per second of compilation (proof search + solver
// side conditions + derivation construction), per program and overall.
// The point of comparison is qualitative — the architecture is the same
// (first-match rule search, solver-discharged side conditions), the proof
// engine is native code instead of Ltac.
//
// Also measured here: the static-analysis layer of the validator
// (relc::analysis), reported as statements verified per second — it runs
// on every compile, so its cost is part of the effective throughput.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "bench_common.h"
#include "programs/Programs.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace relc;
using namespace relc_bench;

namespace {

void benchCompile(benchmark::State &State, const programs::ProgramDef &P) {
  unsigned Stmts = 0;
  for (auto _ : State) {
    core::Compiler C;
    Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    else
      Stmts = R->EmittedStmts;
    benchmark::DoNotOptimize(R);
  }
  State.counters["statements"] = Stmts;
  State.counters["stmts_per_sec"] = benchmark::Counter(
      double(Stmts) * double(State.iterations()), benchmark::Counter::kIsRate);
}

void benchAnalyze(benchmark::State &State, const programs::ProgramDef &P) {
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
  if (!R) {
    State.SkipWithError(R.error().str().c_str());
    return;
  }
  unsigned Stmts = R->Fn.countStmts();
  for (auto _ : State) {
    analysis::AnalysisReport Rep = analysis::analyzeProgram(
        R->Fn, P.Spec, P.Model, P.Hints.EntryFacts);
    if (Rep.hasErrors())
      State.SkipWithError(Rep.str().c_str());
    benchmark::DoNotOptimize(Rep);
  }
  State.counters["statements"] = Stmts;
  State.counters["stmts_per_sec"] = benchmark::Counter(
      double(Stmts) * double(State.iterations()), benchmark::Counter::kIsRate);
}

} // namespace

int main(int argc, char **argv) {
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    benchmark::RegisterBenchmark(
        ("sec43/compile/" + P.Name).c_str(),
        [&P](benchmark::State &S) { benchCompile(S, P); });
    benchmark::RegisterBenchmark(
        ("sec43/analyze/" + P.Name).c_str(),
        [&P](benchmark::State &S) { benchAnalyze(S, P); });
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Paper-shaped summary.
  std::printf("\n=== §4.3: compiler throughput (statements/second) ===\n");
  unsigned TotalStmts = 0;
  double TotalMs = 0;
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    const unsigned Reps = 40;
    core::Compiler C;
    auto T0 = std::chrono::steady_clock::now();
    unsigned Stmts = 0;
    for (unsigned I = 0; I < Reps; ++I) {
      Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
      if (R)
        Stmts = R->EmittedStmts;
      benchmark::DoNotOptimize(R);
    }
    auto T1 = std::chrono::steady_clock::now();
    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count() /
                Reps;
    std::printf("%-7s %3u statements in %7.3f ms  -> %10.0f stmts/s\n",
                P.Name.c_str(), Stmts, Ms,
                Ms > 0 ? Stmts / (Ms / 1000.0) : 0.0);
    TotalStmts += Stmts;
    TotalMs += Ms;
  }
  std::printf("overall: %u statements in %.3f ms -> %.0f stmts/s  "
              "(paper, in Coq: 2-15 stmts/s)\n",
              TotalStmts, TotalMs,
              TotalMs > 0 ? TotalStmts / (TotalMs / 1000.0) : 0.0);

  // Static-analysis cost per program (the certification pipeline's layer
  // 2; runs on every compile).
  std::printf("\n=== static analysis of generated code (per program) ===\n");
  double TotalAnMs = 0;
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    core::Compiler C;
    Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
    if (!R)
      continue;
    const unsigned Reps = 40;
    auto T0 = std::chrono::steady_clock::now();
    unsigned Iters = 0;
    for (unsigned I = 0; I < Reps; ++I) {
      analysis::AnalysisReport Rep = analysis::analyzeProgram(
          R->Fn, P.Spec, P.Model, P.Hints.EntryFacts);
      Iters = Rep.SymIterations;
      benchmark::DoNotOptimize(Rep);
    }
    auto T1 = std::chrono::steady_clock::now();
    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count() /
                Reps;
    std::printf("%-7s %3u statements, %2u fixpoint iterations in %7.3f ms\n",
                P.Name.c_str(), R->Fn.countStmts(), Iters, Ms);
    TotalAnMs += Ms;
  }
  std::printf("overall: %.3f ms analysis vs %.3f ms compilation per suite "
              "pass\n",
              TotalAnMs, TotalMs);
  return 0;
}
