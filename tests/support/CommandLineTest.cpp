//===- tests/support/CommandLineTest.cpp - Table-driven flag parsing -------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The shared cl::OptionTable parser behind relc-gen / relc-lint /
// relc-check: both dash spellings, value consumption, numeric minima,
// positional handlers, -help, and typo suggestions.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

using namespace relc;

namespace {

/// Runs T.parse over the given arguments (argv[0] is synthesized).
cl::ParseResult parseArgs(const cl::OptionTable &T,
                          std::vector<std::string> Args) {
  std::vector<char *> Argv;
  std::string Tool = "test-tool";
  Argv.push_back(Tool.data());
  for (std::string &A : Args)
    Argv.push_back(A.data());
  return T.parse(int(Argv.size()), Argv.data());
}

struct Fixture {
  bool Verbose = false;
  std::string Out = "default";
  unsigned Jobs = 1;
  std::vector<std::string> Pos;
  cl::OptionTable T{"test-tool", "A tool for testing the option table."};

  Fixture() {
    T.flag({"-v", "-verbose"}, &Verbose, "be chatty");
    T.str({"-out"}, &Out, "<dir>", "output directory");
    T.num({"-j", "-jobs"}, &Jobs, 1, "<n>", "job count");
    T.positional("name", "things to process",
                 [this](const std::string &A, std::string *Err) {
                   if (A == "bad") {
                     *Err = "unknown name '" + A + "'";
                     return false;
                   }
                   Pos.push_back(A);
                   return true;
                 });
  }
};

TEST(CommandLineTest, SingleAndDoubleDashSpellings) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-v", "--out", "here", "-jobs", "4"}),
            cl::ParseResult::Ok);
  EXPECT_TRUE(F.Verbose);
  EXPECT_EQ(F.Out, "here");
  EXPECT_EQ(F.Jobs, 4u);

  Fixture G;
  EXPECT_EQ(parseArgs(G.T, {"--verbose", "-out", "there"}),
            cl::ParseResult::Ok);
  EXPECT_TRUE(G.Verbose);
  EXPECT_EQ(G.Out, "there");
}

TEST(CommandLineTest, DefaultsSurviveEmptyArgv) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {}), cl::ParseResult::Ok);
  EXPECT_FALSE(F.Verbose);
  EXPECT_EQ(F.Out, "default");
  EXPECT_EQ(F.Jobs, 1u);
  EXPECT_TRUE(F.Pos.empty());
}

TEST(CommandLineTest, PositionalArgumentsCollected) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"alpha", "-v", "beta"}), cl::ParseResult::Ok);
  ASSERT_EQ(F.Pos.size(), 2u);
  EXPECT_EQ(F.Pos[0], "alpha");
  EXPECT_EQ(F.Pos[1], "beta");
}

TEST(CommandLineTest, PositionalRejectionIsAnError) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"alpha", "bad"}), cl::ParseResult::Error);
}

TEST(CommandLineTest, UnknownOptionIsAnError) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-frobnicate"}), cl::ParseResult::Error);
}

TEST(CommandLineTest, MissingValueIsAnError) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-out"}), cl::ParseResult::Error);
}

TEST(CommandLineTest, NumRejectsGarbageAndBelowMin) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-j", "zero"}), cl::ParseResult::Error);
  Fixture G;
  EXPECT_EQ(parseArgs(G.T, {"-j", "0"}), cl::ParseResult::Error);
  Fixture H;
  EXPECT_EQ(parseArgs(H.T, {"-j", "16"}), cl::ParseResult::Ok);
  EXPECT_EQ(H.Jobs, 16u);
}

TEST(CommandLineTest, NumWithZeroMinAcceptsZero) {
  // relc-gen/relc-lint declare -j with Min = 0: "-j 0" is valid and means
  // "use the hardware" (resolved by pipeline::resolveJobs, not here).
  unsigned Jobs = 1;
  cl::OptionTable T{"test-tool", "overview"};
  T.num({"-j", "-jobs"}, &Jobs, 0, "<n>", "job count (0 = hardware)");
  EXPECT_EQ(parseArgs(T, {"-j", "0"}), cl::ParseResult::Ok);
  EXPECT_EQ(Jobs, 0u);
  EXPECT_EQ(parseArgs(T, {"-j", "-1"}), cl::ParseResult::Error);
}

TEST(CommandLineTest, HelpFlagShortCircuits) {
  Fixture F;
  testing::internal::CaptureStdout();
  cl::ParseResult R = parseArgs(F.T, {"-help"});
  std::string Out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(R, cl::ParseResult::Help);
  EXPECT_NE(Out.find("usage: test-tool"), std::string::npos);
  EXPECT_NE(Out.find("-out"), std::string::npos);
  EXPECT_NE(Out.find("output directory"), std::string::npos);
}

TEST(CommandLineTest, HelpTextListsEverySpelling) {
  Fixture F;
  std::string Help = F.T.helpText();
  EXPECT_NE(Help.find("A tool for testing"), std::string::npos);
  EXPECT_NE(Help.find("-v"), std::string::npos);
  EXPECT_NE(Help.find("-verbose"), std::string::npos);
  EXPECT_NE(Help.find("-jobs"), std::string::npos);
  EXPECT_NE(Help.find("<n>"), std::string::npos);
  EXPECT_NE(Help.find("name"), std::string::npos);
}

TEST(CommandLineTest, TypoSuggestion) {
  Fixture F;
  EXPECT_EQ(F.T.suggestion("-vebose"), "-verbose");
  EXPECT_EQ(F.T.suggestion("-ouy"), "-out");
  // Nothing within distance 2 of this.
  EXPECT_EQ(F.T.suggestion("-completely-different"), "");
}

TEST(CommandLineTest, UsageLineMentionsPositionalMeta) {
  Fixture F;
  std::string U = F.T.usageLine();
  EXPECT_NE(U.find("test-tool"), std::string::npos);
  EXPECT_NE(U.find("name"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// -flag=value spelling.
//===----------------------------------------------------------------------===//

TEST(CommandLineTest, EqualsValueForm) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-out=there", "-j=8"}), cl::ParseResult::Ok);
  EXPECT_EQ(F.Out, "there");
  EXPECT_EQ(F.Jobs, 8u);
}

TEST(CommandLineTest, EqualsValueFormWithDoubleDash) {
  // The relc-gen spelling '--tv-step-budget=5000': double dash plus
  // inline value, routed through a custom consumer.
  uint64_t Budget = 0;
  cl::OptionTable T{"test-tool", "overview"};
  T.custom({"-tv-step-budget"}, /*HasValue=*/true, "<n>", "step cap",
           [&Budget](const std::string &V, std::string *Err) {
             if (V.empty() ||
                 V.find_first_not_of("0123456789") != std::string::npos) {
               *Err = "expected a non-negative integer, got '" + V + "'";
               return false;
             }
             Budget = std::strtoull(V.c_str(), nullptr, 10);
             return true;
           });
  EXPECT_EQ(parseArgs(T, {"--tv-step-budget=5000"}), cl::ParseResult::Ok);
  EXPECT_EQ(Budget, 5000u);
}

TEST(CommandLineTest, EqualsEmptyValueReachesConsumer) {
  // '-j=' hands the empty string to the numeric consumer, which rejects
  // it in its own words — not the generic missing-value error.
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-j="}), cl::ParseResult::Error);
  // And a string option accepts the empty value as-is.
  Fixture G;
  EXPECT_EQ(parseArgs(G.T, {"-out="}), cl::ParseResult::Ok);
  EXPECT_EQ(G.Out, "");
}

TEST(CommandLineTest, EqualsOnValuelessFlagIsAnError) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-v=1"}), cl::ParseResult::Error);
  EXPECT_FALSE(F.Verbose);
}

TEST(CommandLineTest, EqualsOnUnknownOptionStillSuggests) {
  // The '=value' tail must not defeat the typo suggestion.
  Fixture F;
  testing::internal::CaptureStderr();
  EXPECT_EQ(parseArgs(F.T, {"--ouy=here"}), cl::ParseResult::Error);
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("did you mean '-out'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Typo suggestions for the relc-lint metatheory flags.
//===----------------------------------------------------------------------===//

TEST(CommandLineTest, TypoSuggestionForRulesFlags) {
  // Mirror of the relc-lint table: misspelling -rules or -rulint-report
  // must point at the real flag.
  bool Rules = false, RulintReport = false;
  cl::OptionTable T{"relc-lint", "overview"};
  T.flag({"-rules"}, &Rules, "metatheory gate");
  T.flag({"-rulint-report"}, &RulintReport, "registry summary");
  EXPECT_EQ(T.suggestion("-rule"), "-rules");
  EXPECT_EQ(T.suggestion("-ruels"), "-rules");
  EXPECT_EQ(T.suggestion("-rulint-reprot"), "-rulint-report");

  testing::internal::CaptureStderr();
  EXPECT_EQ(parseArgs(T, {"--rulez"}), cl::ParseResult::Error);
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("did you mean '-rules'"), std::string::npos);
  EXPECT_FALSE(Rules);
}

//===----------------------------------------------------------------------===//
// choice(): the enumerated option behind --cert-format.
//===----------------------------------------------------------------------===//

struct ChoiceFixture {
  std::string Format = "auto";
  cl::OptionTable T{"relc-gen", "overview"};
  ChoiceFixture() {
    T.choice({"-cert-format"}, &Format, {"json", "bin", "auto"}, "<fmt>",
             "certificate format");
  }
};

TEST(CommandLineTest, ChoiceAcceptsEachAllowedValueInBothDashForms) {
  {
    ChoiceFixture F;
    EXPECT_EQ(parseArgs(F.T, {"-cert-format", "json"}), cl::ParseResult::Ok);
    EXPECT_EQ(F.Format, "json");
  }
  {
    ChoiceFixture F;
    EXPECT_EQ(parseArgs(F.T, {"--cert-format", "bin"}), cl::ParseResult::Ok);
    EXPECT_EQ(F.Format, "bin");
  }
  {
    ChoiceFixture F;
    EXPECT_EQ(parseArgs(F.T, {"--cert-format=bin"}), cl::ParseResult::Ok);
    EXPECT_EQ(F.Format, "bin");
  }
  {
    ChoiceFixture F;
    EXPECT_EQ(parseArgs(F.T, {"-cert-format=auto"}), cl::ParseResult::Ok);
    EXPECT_EQ(F.Format, "auto");
  }
}

TEST(CommandLineTest, ChoiceDefaultSurvivesEmptyArgv) {
  ChoiceFixture F;
  EXPECT_EQ(parseArgs(F.T, {}), cl::ParseResult::Ok);
  EXPECT_EQ(F.Format, "auto");
}

TEST(CommandLineTest, ChoiceRejectsUnknownValueNamingTheChoices) {
  ChoiceFixture F;
  testing::internal::CaptureStderr();
  EXPECT_EQ(parseArgs(F.T, {"--cert-format=xml"}), cl::ParseResult::Error);
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("invalid value 'xml'"), std::string::npos);
  EXPECT_NE(Err.find("'json', 'bin' or 'auto'"), std::string::npos);
  EXPECT_EQ(F.Format, "auto"); // Untouched on error.
}

TEST(CommandLineTest, ChoiceFlagTypoIsSuggested) {
  ChoiceFixture F;
  EXPECT_EQ(F.T.suggestion("-cert-fromat"), "-cert-format");
  testing::internal::CaptureStderr();
  EXPECT_EQ(parseArgs(F.T, {"--cert-fromat=bin"}), cl::ParseResult::Error);
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("did you mean '-cert-format'"), std::string::npos);
}

} // namespace
