//===- service/Worker.h - relcd certification worker ------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The sandboxed half of crash-only certification (DESIGN.md §4.12): a
// worker is a forked subprocess that serves certify jobs over one end of
// a socketpair, speaking the same v1 length-prefixed frames as the
// public socket — the wire codec is reused unchanged, so a worker reply
// is byte-identical to what the in-process dispatch path would produce.
//
// The child confines itself before serving:
//
//   - RLIMIT_AS (when configured): address-space cap, so a runaway
//     certification OOMs the worker, not the daemon;
//   - RLIMIT_CPU (when configured): cpu cap, backstopping the
//     supervisor's wall deadline against spin loops;
//   - std::set_new_handler → _exit(kWorkerOomExit): allocation failure
//     becomes a *classifiable* exit code instead of an unhandled
//     bad_alloc, so the supervisor can name the death "worker-oom".
//
// Everything else — crash detection, deadlines, retries, fault
// injection — lives parent-side in service/Supervisor.h. The worker
// contains no fault-registry consultation at all: injected crashes are
// real signals delivered by the supervisor, so the child's certify path
// is exactly the production path.
//
// runCertify() is THE projection from a canonicalized wire request to a
// wire reply (service::certify + exit-taxonomy mapping + cache-counter
// fold). Both the worker loop and the in-process dispatch path call it,
// which is what makes worker mode a pure isolation change, not a second
// code path to audit.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVICE_WORKER_H
#define RELC_SERVICE_WORKER_H

#include "service/Protocol.h"

#include <cstdint>
#include <string>

namespace relc {
namespace service {

/// Exit code a worker uses when operator new fails (typically under
/// RLIMIT_AS); the supervisor maps it to "worker-oom".
constexpr int kWorkerOomExit = 77;

/// What a worker child needs to serve certify jobs: the server-policy
/// fields of service::Request plus its rlimits.
struct WorkerConfig {
  std::string CacheDir; ///< "" disables the certificate cache.
  unsigned Jobs = 1;    ///< Scheduler width per certify request.
  uint64_t MemLimitMb = 0;  ///< RLIMIT_AS in MiB; 0 = inherit.
  unsigned CpuLimitSec = 0; ///< RLIMIT_CPU in seconds; 0 = inherit.
};

/// Builds the wire reply for one already-canonicalized certify request:
/// a CertifyReply (with cache counters), or a named ErrorReply
/// ("unknown-program") on usage errors.
wire::Message runCertify(const wire::CertifyRequest &Canon,
                         const WorkerConfig &Cfg);

/// Child-side entry point: applies the rlimits and the OOM exit
/// handler, then serves framed certify requests on \p Fd until EOF or a
/// fatal protocol error. Never returns (always _exit).
[[noreturn]] void workerMain(int Fd, const WorkerConfig &Cfg);

} // namespace service
} // namespace relc

#endif // RELC_SERVICE_WORKER_H
