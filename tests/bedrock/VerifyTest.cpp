//===- tests/bedrock/VerifyTest.cpp - Static well-formedness ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "bedrock/Interp.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::bedrock;

namespace {

Function minimalFn(const char *Name, CmdPtr Body) {
  Function F;
  F.Name = Name;
  F.Body = std::move(Body);
  return F;
}

TEST(VerifyTest, AcceptsWellFormedModule) {
  Module M;
  Function Callee = minimalFn("g", skip());
  Callee.Args = {"x"};
  Callee.Rets = {"y"};
  Callee.Body = set("y", var("x"));
  Function Caller = minimalFn("f", call({"r"}, "g", {lit(1)}));
  M.Functions = {Callee, Caller};
  EXPECT_TRUE(bool(verifyModule(M)));
}

TEST(VerifyTest, RejectsDuplicateFunctionNames) {
  Module M;
  M.Functions = {minimalFn("f", skip()), minimalFn("f", skip())};
  EXPECT_FALSE(bool(verifyModule(M)));
}

TEST(VerifyTest, RejectsMissingBody) {
  Module M;
  Function F;
  F.Name = "f";
  M.Functions = {F};
  EXPECT_FALSE(bool(verifyModule(M)));
}

TEST(VerifyTest, RejectsUnknownCallee) {
  Module M;
  M.Functions = {minimalFn("f", call({}, "ghost", {}))};
  Status S = verifyModule(M);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("ghost"), std::string::npos);
}

TEST(VerifyTest, RejectsCallArityMismatch) {
  Module M;
  Function G = minimalFn("g", skip());
  G.Args = {"a", "b"};
  M.Functions = {G, minimalFn("f", call({}, "g", {lit(1)}))};
  EXPECT_FALSE(bool(verifyModule(M)));
}

TEST(VerifyTest, RejectsUnknownTable) {
  Module M;
  M.Functions = {
      minimalFn("f", set("x", tableGet(AccessSize::Byte, "t", lit(0))))};
  EXPECT_FALSE(bool(verifyModule(M)));
}

TEST(VerifyTest, RejectsTableWidthMismatch) {
  Module M;
  Function F = minimalFn("f", set("x", tableGet(AccessSize::Four, "t",
                                                lit(0))));
  F.Tables.push_back(InlineTable{"t", AccessSize::Byte, {1, 2}});
  M.Functions = {F};
  EXPECT_FALSE(bool(verifyModule(M)));
}

TEST(VerifyTest, RejectsOverwideTableElements) {
  Module M;
  Function F = minimalFn("f", set("x", tableGet(AccessSize::Byte, "t",
                                                lit(0))));
  F.Tables.push_back(InlineTable{"t", AccessSize::Byte, {0x1ff}});
  M.Functions = {F};
  EXPECT_FALSE(bool(verifyModule(M)));
}

TEST(VerifyTest, PrinterRoundTripsStructure) {
  Function F = minimalFn(
      "f", seqAll({set("x", lit(1)),
                   ifThenElse(bin(BinOp::LtU, var("x"), lit(2)),
                              whileLoop(lit(0), skip()), skip()),
                   stackalloc("p", 8, store(AccessSize::Eight, var("p"),
                                            lit(0)))}));
  F.Args = {"a"};
  std::string S = F.str();
  EXPECT_NE(S.find("func f(a)"), std::string::npos);
  EXPECT_NE(S.find("while"), std::string::npos);
  EXPECT_NE(S.find("stackalloc p[8]"), std::string::npos);
}

TEST(VerifyTest, StatementCountIgnoresSkips) {
  CmdPtr Body = seqAll({set("x", lit(1)), skip(), set("y", lit(2)),
                        whileLoop(lit(0), set("z", lit(3)))});
  Function F = minimalFn("f", Body);
  EXPECT_EQ(F.countStmts(), 4u); // 2 sets + while + inner set.
}

} // namespace
