file(REMOVE_RECURSE
  "CMakeFiles/relc_programs.dir/Crc32.cpp.o"
  "CMakeFiles/relc_programs.dir/Crc32.cpp.o.d"
  "CMakeFiles/relc_programs.dir/Fasta.cpp.o"
  "CMakeFiles/relc_programs.dir/Fasta.cpp.o.d"
  "CMakeFiles/relc_programs.dir/Fnv1a.cpp.o"
  "CMakeFiles/relc_programs.dir/Fnv1a.cpp.o.d"
  "CMakeFiles/relc_programs.dir/IpChecksum.cpp.o"
  "CMakeFiles/relc_programs.dir/IpChecksum.cpp.o.d"
  "CMakeFiles/relc_programs.dir/M3s.cpp.o"
  "CMakeFiles/relc_programs.dir/M3s.cpp.o.d"
  "CMakeFiles/relc_programs.dir/Programs.cpp.o"
  "CMakeFiles/relc_programs.dir/Programs.cpp.o.d"
  "CMakeFiles/relc_programs.dir/Upstr.cpp.o"
  "CMakeFiles/relc_programs.dir/Upstr.cpp.o.d"
  "CMakeFiles/relc_programs.dir/Utf8.cpp.o"
  "CMakeFiles/relc_programs.dir/Utf8.cpp.o.d"
  "librelc_programs.a"
  "librelc_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
