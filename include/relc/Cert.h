//===- relc/Cert.h - Public certificate surface -----------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The public facade over the certificate formats: the versioned schema
// (cert::Certificate, cert::kSchemaVersion, named rejections), the
// canonical JSON face (cert::Reader / cert::Writer), and the zero-copy
// binary image (cert::BinReader / cert::BinWriter, kBinExtension).
// Everything here is consumable without the TV driver — relc-check
// links this surface plus relc/Check.h and nothing else, and CI's nm
// audit keeps it that way.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_API_CERT_H
#define RELC_API_CERT_H

#include "cert/Binary.h"
#include "cert/Cert.h"
#include "cert/Reader.h"
#include "cert/Writer.h"

#endif // RELC_API_CERT_H
