//===- tests/extraction/ExtractionTest.cpp - Box 1 baseline ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "extraction/ExtractionRuntime.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::extraction;

namespace {

TEST(ExtractionTest, CharBoxRoundTrips) {
  for (unsigned B = 0; B < 256; ++B)
    EXPECT_EQ(unboxChar(boxChar(uint8_t(B))), B);
}

TEST(ExtractionTest, StrRoundTrips) {
  std::vector<uint8_t> Bytes = {'h', 'i', 0, 0xff};
  EXPECT_EQ(bytesOfStr(strOfBytes(Bytes)), Bytes);
  EXPECT_EQ(bytesOfStr(nullptr), std::vector<uint8_t>{});
}

TEST(ExtractionTest, LengthAndRev) {
  Str S = strOfBytes({1, 2, 3});
  EXPECT_EQ(length(S), 3u);
  EXPECT_EQ(bytesOfStr(rev(S)), (std::vector<uint8_t>{3, 2, 1}));
  EXPECT_EQ(length(Str{}), 0u);
}

TEST(ExtractionTest, MapPreservesOrder) {
  Str S = strOfBytes({1, 2, 3});
  Str M = map<CharBox>(
      [](const CharBox &C) { return boxChar(uint8_t(unboxChar(C) * 2)); },
      S);
  EXPECT_EQ(bytesOfStr(M), (std::vector<uint8_t>{2, 4, 6}));
}

TEST(ExtractionTest, NthIsPositionalWithDefault) {
  List<uint64_t> L = cons<uint64_t>(10, cons<uint64_t>(20, nullptr));
  EXPECT_EQ(nth<uint64_t>(L, 0, 99), 10u);
  EXPECT_EQ(nth<uint64_t>(L, 1, 99), 20u);
  EXPECT_EQ(nth<uint64_t>(L, 2, 99), 99u);
}

TEST(ExtractionTest, ToupperMatchesCtype) {
  for (unsigned B = 0; B < 256; ++B) {
    uint8_t Want = (B >= 'a' && B <= 'z') ? uint8_t(B - 32) : uint8_t(B);
    EXPECT_EQ(unboxChar(toupperMatch(boxChar(uint8_t(B)))), Want);
  }
}

TEST(ExtractionTest, UpstrAgreesWithDirectLoop) {
  Rng R(4);
  std::vector<uint8_t> Data = R.bytes(4096);
  std::vector<uint8_t> Want = Data;
  for (uint8_t &B : Want)
    if (B >= 'a' && B <= 'z')
      B = uint8_t(B - 32);
  EXPECT_EQ(bytesOfStr(upstr(strOfBytes(Data))), Want);
}

TEST(ExtractionTest, Fnv1aAgreesWithDirectLoop) {
  Rng R(5);
  std::vector<uint8_t> Data = R.bytes(2048);
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint8_t B : Data) {
    H ^= B;
    H *= 0x100000001b3ull;
  }
  EXPECT_EQ(fnv1a(strOfBytes(Data)), H);
}

TEST(ExtractionTest, MegabyteListsDestructWithoutOverflow) {
  // The iterative cons destructor: building and dropping a 1M-cell list
  // must not blow the stack.
  Rng R(6);
  {
    Str S = strOfBytes(R.bytes(1 << 20));
    EXPECT_EQ(length(S), size_t(1 << 20));
  } // Destruction happens here.
  SUCCEED();
}

} // namespace
