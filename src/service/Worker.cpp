//===- service/Worker.cpp - relcd certification worker ---------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Worker.h"

#include "service/Service.h"
#include "support/Fault.h"

#include <new>
#include <string>
#include <vector>

#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

namespace relc {
namespace service {

wire::Message runCertify(const wire::CertifyRequest &Canon,
                         const WorkerConfig &Cfg) {
  Request R;
  R.Programs = Canon.Programs;
  R.Validate = Canon.Validate;
  R.Analyze = Canon.Analyze;
  R.Tv = Canon.Tv;
  R.Codelint = Canon.Codelint;
  R.Jobs = Cfg.Jobs;
  R.CacheDir = Cfg.CacheDir;
  R.LayerTimeoutMs = Canon.LayerTimeoutMs;
  R.TvStepBudget = Canon.TvStepBudget;
  R.KeepGoing = Canon.KeepGoing;
  R.WantCertJson = Canon.WantCertJson;
  R.WantCertBin = Canon.WantCertBin;
  R.EmitC = false;

  Response Resp = certify(R);

  wire::Message Reply;
  if (!Resp.UsageError.empty()) {
    Reply.TheKind = wire::Kind::ErrorReply;
    Reply.Error.Reason = "unknown-program";
    Reply.Error.Detail = Resp.UsageError;
    return Reply;
  }

  Reply.TheKind = wire::Kind::CertifyReply;
  Reply.Reply.Exit = uint8_t(Resp.Exit);
  Reply.Reply.CacheHits = Resp.Stats.Cache.Hits;
  Reply.Reply.CacheMisses = Resp.Stats.Cache.Misses;
  Reply.Reply.CacheStores = Resp.Stats.Cache.Stores;
  for (const ProgramReply &PR : Resp.Programs) {
    wire::ProgramResult P;
    P.Name = PR.Name;
    P.Status = uint8_t(PR.Status);
    P.From = uint8_t(PR.From);
    P.Error = PR.Error;
    P.DegradedNote = PR.DegradedNote;
    P.TvVerdict = PR.TvVerdict;
    P.CodelintVerdict = PR.CodelintVerdict;
    P.CertJson = PR.CertJson;
    P.CertBin = PR.CertBin;
    Reply.Reply.Programs.push_back(std::move(P));
  }
  return Reply;
}

namespace {

/// Blocking whole-frame write on the worker's socketpair end.
bool writeAll(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += size_t(N);
  }
  return true;
}

void applyLimit(int Resource, uint64_t Value) {
  rlimit L{};
  L.rlim_cur = Value;
  L.rlim_max = Value;
  ::setrlimit(Resource, &L); // Best-effort; the wall deadline backstops.
}

} // namespace

void workerMain(int Fd, const WorkerConfig &Cfg) {
  // Allocation failure must be a *classifiable* death: RLIMIT_AS turns
  // a runaway job into bad_alloc, and this turns bad_alloc into the
  // one exit code the supervisor names "worker-oom".
  std::set_new_handler([] { _exit(kWorkerOomExit); });
  if (Cfg.MemLimitMb)
    applyLimit(RLIMIT_AS, Cfg.MemLimitMb << 20);
  if (Cfg.CpuLimitSec)
    applyLimit(RLIMIT_CPU, Cfg.CpuLimitSec);

  std::string Buf;
  for (;;) {
    size_t FrameSize = 0;
    std::string_view Payload;
    wire::FrameStatus FS = wire::splitFrame(Buf, &FrameSize, &Payload);
    if (FS == wire::FrameStatus::Ok) {
      wire::Message Req;
      std::string Reason;
      wire::Message Reply;
      if (!wire::decode(Payload, &Req, &Reason)) {
        Reply.TheKind = wire::Kind::ErrorReply;
        Reply.Error.Reason = Reason;
      } else if (Req.TheKind != wire::Kind::CertifyRequest) {
        Reply.TheKind = wire::Kind::ErrorReply;
        Reply.Error.Reason = "unknown-request-kind";
      } else {
        // svc-worker-oom: starve this job for memory *for real*. A forked
        // worker inherits the parent's already-mapped heap (malloc arenas,
        // free lists), which RLIMIT_AS cannot revoke — so an absolute
        // limit only bites once a job outgrows that inherited slack. The
        // hog allocates until operator new fails, driving the genuine
        // bad_alloc → new-handler → exit-77 → "worker-oom" path no matter
        // how much slack the fork carried over. Bounded so that arming
        // the site without a mem limit degrades into a plain exit-77
        // rather than eating the machine.
        if (fault::fire(fault::Site::SvcWorkerOom,
                        Req.Certify.Programs.empty()
                            ? std::string("all")
                            : Req.Certify.Programs.front())) {
          std::vector<char *> Hog;
          for (unsigned I = 0; I < 4096; ++I)
            Hog.push_back(new char[1 << 20]);
          _exit(kWorkerOomExit);
        }
        Reply = runCertify(Req.Certify, Cfg);
      }
      Buf.erase(0, FrameSize);
      if (!writeAll(Fd, wire::frame(wire::encode(Reply))))
        _exit(0); // Supervisor went away; nothing left to serve.
      continue;
    }
    if (FS != wire::FrameStatus::NeedMore)
      _exit(1); // Corrupt supervisor channel: unrecoverable.

    char Tmp[65536];
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      _exit(0);
    }
    if (N == 0)
      _exit(0); // Clean EOF: the supervisor closed its end.
    Buf.append(Tmp, size_t(N));
  }
}

} // namespace service
} // namespace relc
