//===- rulemeta/RuleMeta.h - Rule-database metatheory analyses --*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Static analysis over the compilation-rule database itself. The paper's
// extensibility story — users grow the compiler by registering rules —
// means the rule registry is configuration, and configuration needs its
// own checker (DESIGN.md §4.8). Every rule carries a declarative
// GoalPattern / ExprGoalPattern descriptor (core/Rule.h, ExprCompile.h);
// on that metadata this library implements five analyses:
//
//   1. shadowing/overlap  — an earlier rule's selection pattern subsumes
//      (rule-shadowed) or intersects (rule-overlap) a later one's, so the
//      later rule never fires or fires order-dependently;
//   2. coverage           — the construct × engine matrix: source
//      constructs no registered rule can compile (uncovered-construct),
//      reported before any program hits the gap;
//   3. dead rules         — unsatisfiable patterns, or rules fully
//      covered by the union of earlier rules (rule-dead);
//   4. recursion audit    — the rule-dependency graph (who emits goals
//      matching whom) must have no cycle through a rule that does not
//      emit structurally decreasing sub-goals (rule-cycle);
//   5. derivation audit   — replay a compilation witness (DerivNode tree)
//      against the live registry: every recorded rule must still exist,
//      still match its recorded goal, and still be the *first* match
//      (stale-derivation). This catches certificate/registry drift that
//      relc-check cannot see, because relc-check replays recorded
//      witnesses without consulting the registry.
//
// Like the certificate layer, every refusal carries a stable kebab-case
// reason that tools and CI match on. Analyses 1–4 are purely static
// (descriptors only); analysis 5 consults matches()/findMatch on the live
// registry.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_RULEMETA_RULEMETA_H
#define RELC_RULEMETA_RULEMETA_H

#include "core/Compiler.h"
#include "core/ExprCompile.h"
#include "core/Rule.h"

#include <string>
#include <vector>

namespace relc {
namespace rulemeta {

/// Why the analyzer flagged something. The names (reasonName) are a
/// stable, kebab-case vocabulary: tests and CI match on the exact
/// strings, so adding reasons is fine but renaming one is a break.
enum class Reason : uint8_t {
  RuleShadowed,       ///< An earlier rule's pattern subsumes this one's.
  RuleOverlap,        ///< Two patterns intersect: order-dependent firing.
  RuleDead,           ///< Unsatisfiable, or earlier rules' union covers it.
  UncoveredConstruct, ///< A construct kind no registered rule matches.
  RuleCycle,          ///< Dependency cycle without a decreasing argument.
  StaleDerivation,    ///< A witness disagrees with the live registry.
};

/// Stable kebab-case reason name, e.g. "rule-shadowed".
const char *reasonName(Reason R);

/// One analyzer finding. Everything the analyzer reports is gating: a
/// finding means the registry (or a witness against it) is not trustworthy
/// as-is, and relc-rulint / relc-lint --rules exit nonzero on any.
struct Finding {
  Reason Why;
  /// The offending rule's name, or the uncovered construct's matrix row
  /// ("stmt/list-map", "expr/select") for coverage findings.
  std::string Subject;
  std::string Detail;

  /// "<reason>: <subject>: <detail>" — the stable diagnostic line.
  std::string str() const;
};

/// A batch of findings from one or more analyses.
struct Report {
  std::vector<Finding> Findings;

  bool clean() const { return Findings.empty(); }
  void add(Reason Why, std::string Subject, std::string Detail) {
    Findings.push_back({Why, std::move(Subject), std::move(Detail)});
  }
  void append(Report Other) {
    for (Finding &F : Other.Findings)
      Findings.push_back(std::move(F));
  }

  /// Newline-joined finding lines ("" when clean).
  std::string str() const;
};

/// Analyses 1 and 3 over one statement registry and one expression
/// registry: shadowing, overlap, and dead rules. Order-sensitive — the
/// database is first-match.
Report analyzeOrdering(const core::RuleSet &RS, const core::ExprRuleSet &ES);

/// Analysis 2: the construct × engine coverage matrix. Every
/// ir::BoundForm::Kind must be selectable by some statement rule and every
/// ir::Expr::Kind by some expression rule.
Report analyzeCoverage(const core::RuleSet &RS, const core::ExprRuleSet &ES);

/// Analysis 4: the recursion/termination audit over the rule-dependency
/// graph induced by the Emits descriptors.
Report analyzeRecursion(const core::RuleSet &RS, const core::ExprRuleSet &ES);

/// Analyses 1–4 in one pass, in that order.
Report analyzeRegistry(const core::RuleSet &RS, const core::ExprRuleSet &ES);

/// Analysis 5: replays the compilation witness \p Proof (the root
/// "compile_fn" node of core::CompileResult::Proof) for \p Model against
/// the live registry \p RS. \p Spec and the model are needed to rebuild
/// the matching context and to pair derivation nodes with source bindings.
Report auditDerivation(const ir::SourceFn &Model, const sep::FnSpec &Spec,
                       const core::DerivNode &Proof, const core::RuleSet &RS);

} // namespace rulemeta
} // namespace relc

#endif // RELC_RULEMETA_RULEMETA_H
