//===- tests/reflect/ReflectTest.cpp - Reflective expression compiler ------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "reflect/ReflectExpr.h"

#include "bedrock/Interp.h"
#include "ir/Build.h"
#include "ir/Interp.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::ir;

namespace {

TEST(ReflectTest, ReifiesBaseGrammar) {
  Result<reflect::RExprPtr> R =
      reflect::reify(*addw(v("x"), mulw(v("y"), cw(3))));
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)->str(), "(x + (y * 3))");
}

TEST(ReflectTest, RejectsConstructsOutsideTheClosedGrammar) {
  // The §4.1.3 pain point: every one of these needs compiler surgery.
  EXPECT_FALSE(bool(reflect::reify(*b2w(cb(1)))));
  EXPECT_FALSE(bool(reflect::reify(*w2b(v("x")))));
  EXPECT_FALSE(bool(reflect::reify(*select(ltu(v("x"), cw(1)), cw(0),
                                           cw(1)))));
  EXPECT_FALSE(bool(reflect::reify(*aget("a", cw(0)))));
  EXPECT_FALSE(bool(reflect::reify(*tget("t", cw(0)))));
  EXPECT_FALSE(bool(reflect::reify(*cb(3)))); // Byte literal.
}

TEST(ReflectTest, PipelineCompilesAndCertifies) {
  Result<bedrock::ExprPtr> E =
      reflect::compileExprReflective(*xorw(shlw(v("x"), cw(3)), v("y")));
  ASSERT_TRUE(bool(E)) << E.error().str();
  EXPECT_EQ((*E)->str(), "((x << 3) ^ y)");
}

TEST(ReflectTest, CertifierCatchesWrongCompilation) {
  // Hand-build a mismatched pair: reified x + y against target x - y.
  Result<reflect::RExprPtr> R = reflect::reify(*addw(v("x"), v("y")));
  ASSERT_TRUE(bool(R));
  bedrock::ExprPtr Wrong =
      bedrock::bin(bedrock::BinOp::Sub, bedrock::var("x"),
                   bedrock::var("y"));
  Status S = reflect::certifyReified(**R, *Wrong);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("mismatch"), std::string::npos);
}

TEST(ReflectTest, DenotationAgreesWithFunLangSemantics) {
  // On the shared grammar the reflective denotation and the FunLang
  // evaluator agree — the two compilers compile the same language.
  Rng Random(0xabc);
  for (int Trial = 0; Trial < 50; ++Trial) {
    uint64_t X = Random.next(), Y = Random.next();
    ExprPtr E = mulw(xorw(v("x"), cw(Trial)), addw(v("y"), cw(7)));
    Result<reflect::RExprPtr> R = reflect::reify(*E);
    ASSERT_TRUE(bool(R));
    Result<uint64_t> Refl =
        reflect::evalReified(**R, {{"x", X}, {"y", Y}});
    ASSERT_TRUE(bool(Refl));

    SourceFn Fn;
    EffectCtx Ctx;
    Evaluator Ev(Fn, Ctx);
    Env Environment = {{"x", Value::word(X)}, {"y", Value::word(Y)}};
    Result<Value> Direct = Ev.evalExpr(Environment, *E);
    ASSERT_TRUE(bool(Direct));
    EXPECT_EQ(*Refl, Direct->asWord());
  }
}

} // namespace
