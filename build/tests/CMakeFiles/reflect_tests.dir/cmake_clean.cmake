file(REMOVE_RECURSE
  "CMakeFiles/reflect_tests.dir/reflect/ReflectTest.cpp.o"
  "CMakeFiles/reflect_tests.dir/reflect/ReflectTest.cpp.o.d"
  "reflect_tests"
  "reflect_tests.pdb"
  "reflect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
