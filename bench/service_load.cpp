//===- bench/service_load.cpp - relcd daemon load benchmark ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Prices what the relcd daemon adds and what it costs: N client threads
// fire thousands of mixed certify requests over the Unix-domain socket —
// ~90% "hot" (repeats of already-certified suite programs, served from
// the daemon's reply memo) and ~10% "cold" (a unique never-exhausting
// TV-step budget salts the request shape, forcing a live certification).
// Reported against the in-process warm path (service::certify with a
// populated disk cache), the number the daemon must stay within 2× of:
// a resident process may add transport, never a recompile.
//
// By default the daemon runs in-process on a scratch socket; -socket
// points the load at an externally started relcd instead (the CI smoke
// job does this), in which case stats come over the wire exactly like
// any other client's would.
//
// Writes BENCH_service.json (sorted keys) for trajectory tracking;
// EXPERIMENTS.md records the committed numbers.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "programs/Programs.h"
#include "service/Client.h"
#include "service/Server.h"
#include "service/Service.h"
#include "support/CommandLine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace relc;
using namespace relc_bench;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

double percentile(std::vector<double> V, double Q) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  return V[size_t(double(V.size() - 1) * Q + 0.5)];
}

service::wire::Message certifyMsg(std::vector<std::string> Programs,
                                  uint64_t TvStepBudget = 0) {
  service::wire::Message M;
  M.TheKind = service::wire::Kind::CertifyRequest;
  M.Certify.Programs = std::move(Programs);
  M.Certify.TvStepBudget = TvStepBudget;
  return M;
}

/// One stats round trip (works identically against the in-process server
/// and an external daemon).
service::wire::Stats fetchStats(const std::string &Socket) {
  service::Client C;
  if (Status S = C.connect(Socket, 5000); !S) {
    std::fprintf(stderr, "FATAL: stats connect: %s\n", S.error().str().c_str());
    std::exit(1);
  }
  service::wire::Message Req;
  Req.TheKind = service::wire::Kind::StatsRequest;
  Result<service::wire::Message> R = C.roundTrip(Req);
  if (!R || R->TheKind != service::wire::Kind::StatsReply) {
    std::fprintf(stderr, "FATAL: stats round trip failed\n");
    std::exit(1);
  }
  return R->TheStats;
}

} // namespace

int main(int argc, char **argv) {
  std::string Socket;
  unsigned Clients = 32;
  unsigned Requests = 64;
  std::string OutPath = "BENCH_service.json";

  cl::OptionTable T(
      "service_load",
      "Drives a relcd daemon with N client threads of mixed hot/cold\n"
      "certify requests and reports p50/p99 latency, the cache hit rate,\n"
      "and the warm-request ratio against the in-process warm path.\n"
      "Without -socket, a daemon is started in-process on a scratch\n"
      "socket.");
  T.str({"-socket"}, &Socket, "<path>",
        "drive an externally started relcd on this\n"
        "socket instead of an in-process server");
  T.num({"-clients"}, &Clients, 1, "<n>",
        "concurrent client threads (default: 32)");
  T.num({"-requests"}, &Requests, 1, "<n>",
        "requests per client thread (default: 64)");
  T.str({"-out"}, &OutPath, "<file>",
        "JSON output path (default: BENCH_service.json)");
  switch (T.parse(argc, argv)) {
  case cl::ParseResult::Ok:
    break;
  case cl::ParseResult::Help:
    return 0;
  case cl::ParseResult::Error:
    return 2;
  }

  // Suite program names: the hot side of the mix rotates through them.
  std::vector<std::string> Suite;
  for (const programs::ProgramDef &P : programs::allPrograms())
    Suite.push_back(P.Name);

  // The in-process server, unless an external daemon was named.
  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("relc-service-bench-" + std::to_string(uint64_t(::getpid()))))
          .string();
  std::unique_ptr<service::Server> Srv;
  if (Socket.empty()) {
    Socket = (std::filesystem::temp_directory_path() /
              ("relc-service-bench-" + std::to_string(uint64_t(::getpid())) +
               ".sock"))
                 .string();
    std::filesystem::remove(Socket);
    std::filesystem::remove_all(CacheDir);
    service::ServerOptions SO;
    SO.SocketPath = Socket;
    SO.CacheDir = CacheDir;
    SO.MaxClients = 256; // The bench prices latency, not the busy path.
    SO.MaxInflight = 16;
    Srv = std::make_unique<service::Server>(SO);
    if (Status S = Srv->start(); !S) {
      std::fprintf(stderr, "FATAL: server start: %s\n",
                   S.error().str().c_str());
      return 1;
    }
  }

  std::printf("relcd service load: %u clients x %u requests (%s daemon)\n\n",
              Clients, Requests, Srv ? "in-process" : "external");

  // --- Baseline: the in-process warm path. One cold run populates the
  // disk cache; the measured reps replay from it — compile + hash +
  // cache read, no re-certification. Budgets mirror the server-side
  // canonicalization so the request shapes match.
  service::Request Warm;
  Warm.Programs = {"fnv1a"};
  Warm.CacheDir = CacheDir;
  Warm.LayerTimeoutMs = 30000;
  {
    service::Response Prime = service::certify(Warm);
    if (Prime.Exit != 0) {
      std::fprintf(stderr, "FATAL: in-process prime exited %d\n", Prime.Exit);
      return 1;
    }
  }
  std::vector<double> BaseSamples;
  for (unsigned I = 0; I < 30; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    service::Response R = service::certify(Warm);
    BaseSamples.push_back(msSince(T0));
    if (R.Exit != 0) {
      std::fprintf(stderr, "FATAL: in-process warm run exited %d\n", R.Exit);
      return 1;
    }
  }
  double InprocWarm = percentile(BaseSamples, 0.5);
  std::printf("  in-process warm (disk-cache replay) : %7.3f ms p50\n",
              InprocWarm);

  // --- Prime the daemon: one certify per suite program warms the disk
  // cache and the reply memo, so the hot side of the load is a memo hit.
  for (const std::string &P : Suite) {
    service::Client C;
    if (Status S = C.connect(Socket, 5000); !S) {
      std::fprintf(stderr, "FATAL: prime connect: %s\n",
                   S.error().str().c_str());
      return 1;
    }
    Result<service::wire::Message> R = C.roundTrip(certifyMsg({P}));
    if (!R || R->TheKind != service::wire::Kind::CertifyReply ||
        R->Reply.Exit != 0) {
      std::fprintf(stderr, "FATAL: priming '%s' failed\n", P.c_str());
      return 1;
    }
  }

  // --- Warm-request p50 over the wire: the number the acceptance pins
  // within 2x of the in-process warm path.
  std::vector<double> WireWarmSamples;
  {
    service::Client C;
    if (Status S = C.connect(Socket, 5000); !S) {
      std::fprintf(stderr, "FATAL: warm connect: %s\n",
                   S.error().str().c_str());
      return 1;
    }
    for (unsigned I = 0; I < 50; ++I) {
      auto T0 = std::chrono::steady_clock::now();
      Result<service::wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
      WireWarmSamples.push_back(msSince(T0));
      if (!R || R->TheKind != service::wire::Kind::CertifyReply) {
        std::fprintf(stderr, "FATAL: warm round trip failed\n");
        return 1;
      }
    }
  }
  double WireWarm = percentile(WireWarmSamples, 0.5);
  std::printf("  daemon warm request (memo hit)      : %7.3f ms p50  "
              "(%.2fx in-process warm)\n\n",
              WireWarm, WireWarm / InprocWarm);

  // --- Mixed load: every 10th request is cold (a unique, never-
  // exhausting TV step budget salts the memo key, forcing a live
  // certification); the rest rotate hot through the primed suite.
  service::wire::Stats Before = fetchStats(Socket);
  std::mutex SampleMu;
  std::vector<double> AllSamples, HotSamples, ColdSamples;
  std::atomic<unsigned> OkReplies{0}, BusyReplies{0}, ErrorReplies{0},
      LostRoundTrips{0};
  auto LoadT0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      service::Client Cl;
      if (!Cl.connect(Socket, 10000))
        return;
      std::vector<double> MyAll, MyHot, MyCold;
      for (unsigned R = 0; R < Requests; ++R) {
        bool Cold = R % 10 == 9;
        service::wire::Message Req =
            Cold ? certifyMsg({"fnv1a"},
                              1000000000ULL + uint64_t(C) * Requests + R)
                 : certifyMsg({Suite[(C + R) % Suite.size()]});
        auto T0 = std::chrono::steady_clock::now();
        Result<service::wire::Message> Reply = Cl.roundTrip(Req);
        double Ms = msSince(T0);
        if (!Reply) {
          LostRoundTrips.fetch_add(1);
          Cl.close();
          if (!Cl.connect(Socket, 10000))
            return;
          continue;
        }
        MyAll.push_back(Ms);
        (Cold ? MyCold : MyHot).push_back(Ms);
        if (Reply->TheKind == service::wire::Kind::CertifyReply &&
            Reply->Reply.Exit == 0)
          OkReplies.fetch_add(1);
        else if (Reply->TheKind == service::wire::Kind::ErrorReply &&
                 Reply->Error.Reason == "server-busy")
          BusyReplies.fetch_add(1);
        else
          ErrorReplies.fetch_add(1);
      }
      std::lock_guard<std::mutex> L(SampleMu);
      AllSamples.insert(AllSamples.end(), MyAll.begin(), MyAll.end());
      HotSamples.insert(HotSamples.end(), MyHot.begin(), MyHot.end());
      ColdSamples.insert(ColdSamples.end(), MyCold.begin(), MyCold.end());
    });
  for (std::thread &Th : Threads)
    Th.join();
  double LoadMs = msSince(LoadT0);
  service::wire::Stats After = fetchStats(Socket);

  uint64_t DCertify = After.CertifyRequests - Before.CertifyRequests;
  uint64_t DMemo = After.MemoHits - Before.MemoHits;
  uint64_t DCacheHits = After.CacheHits - Before.CacheHits;
  double HitRate =
      DCertify ? double(DMemo + DCacheHits) / double(DCertify) : 0.0;

  double P50 = percentile(AllSamples, 0.5);
  double P99 = percentile(AllSamples, 0.99);
  std::printf("  mixed load: %zu replies in %.0f ms (%.0f req/s)\n",
              AllSamples.size(), LoadMs,
              AllSamples.size() / (LoadMs / 1000.0));
  std::printf("    p50 %7.3f ms   p99 %8.3f ms\n", P50, P99);
  std::printf("    hot  p50 %7.3f ms   cold p50 %8.3f ms\n",
              percentile(HotSamples, 0.5), percentile(ColdSamples, 0.5));
  std::printf("    ok %u  busy %u  error %u  lost %u\n", OkReplies.load(),
              BusyReplies.load(), ErrorReplies.load(), LostRoundTrips.load());
  std::printf("    memo hits %llu  cache hits %llu  of %llu certifies  "
              "(hit rate %.3f)\n",
              (unsigned long long)DMemo, (unsigned long long)DCacheHits,
              (unsigned long long)DCertify, HitRate);

  if (Srv) {
    // Clean shutdown of the in-process daemon before reporting.
    service::Client C;
    if (C.connect(Socket, 2000)) {
      service::wire::Message Down;
      Down.TheKind = service::wire::Kind::ShutdownRequest;
      (void)C.roundTrip(Down);
    }
    Srv->requestStop();
    Srv->wait();
    Srv.reset();
    std::filesystem::remove_all(CacheDir);
    std::filesystem::remove(Socket);
  }

  // Sorted keys, so diffs of committed files read cleanly.
  std::ofstream J(OutPath);
  char Buf[160];
  J << "{\n";
  J << "  \"busy_replies\": " << BusyReplies.load() << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"cache_hit_rate\": %.3f,\n", HitRate);
  J << Buf;
  J << "  \"clients\": " << Clients << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"cold_p50_ms\": %.3f,\n",
                percentile(ColdSamples, 0.5));
  J << Buf;
  J << "  \"error_replies\": " << ErrorReplies.load() << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"hot_p50_ms\": %.3f,\n",
                percentile(HotSamples, 0.5));
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"inprocess_warm_ms\": %.3f,\n",
                InprocWarm);
  J << Buf;
  J << "  \"lost_round_trips\": " << LostRoundTrips.load() << ",\n";
  J << "  \"memo_hits\": " << DMemo << ",\n";
  J << "  \"ok_replies\": " << OkReplies.load() << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"p50_ms\": %.3f,\n", P50);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"p99_ms\": %.3f,\n", P99);
  J << Buf;
  J << "  \"requests_per_client\": " << Requests << ",\n";
  J << "  \"requests_total\": " << AllSamples.size() << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"warm_ratio_vs_inprocess\": %.3f,\n",
                WireWarm / InprocWarm);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"warm_wire_p50_ms\": %.3f\n", WireWarm);
  J << Buf;
  J << "}\n";
  std::printf("\nwrote %s\n", OutPath.c_str());

  // The acceptance gates, enforced here so CI's smoke job is one run:
  // no lost round trips against a healthy daemon, and the warm wire
  // request within 2x of the in-process warm path.
  if (LostRoundTrips.load() > 0) {
    std::fprintf(stderr, "FATAL: %u round trips lost\n", LostRoundTrips.load());
    return 1;
  }
  if (WireWarm > 2.0 * InprocWarm) {
    std::fprintf(stderr, "FATAL: warm wire p50 %.3f ms exceeds 2x in-process "
                         "warm %.3f ms\n",
                 WireWarm, InprocWarm);
    return 1;
  }
  return 0;
}
