# Empty compiler generated dependencies file for relc_solver.
# This may be replaced when dependencies are built.
