//===- tests/pipeline/SchedulerTest.cpp - Job-graph scheduler --------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Scheduler.h"

#include "support/Fault.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

using namespace relc;
using namespace relc::pipeline;

namespace {

TEST(SchedulerTest, SerialRunsInSubmissionOrder) {
  JobGraph G;
  std::vector<int> Order;
  for (int I = 0; I < 8; ++I)
    G.add("job" + std::to_string(I), [&Order, I] { Order.push_back(I); });
  ASSERT_TRUE(bool(G.run(1)));
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SchedulerTest, DependenciesRunBeforeDependents) {
  // A diamond per chain, many chains, at high width: every observation of
  // a dependent must see its dependencies' effects.
  JobGraph G;
  constexpr int N = 50;
  std::vector<std::atomic<int>> Stage(N);
  std::atomic<int> Violations{0};
  for (int I = 0; I < N; ++I) {
    Stage[I] = 0;
    JobId Root = G.add("root", [&, I] { Stage[I] = 1; });
    JobId L = G.add("left", [&, I] {
      if (Stage[I] != 1)
        ++Violations;
    }, {Root});
    JobId R = G.add("right", [&, I] {
      if (Stage[I] != 1)
        ++Violations;
    }, {Root});
    G.add("join", [&, I] {
      if (Stage[I] != 1)
        ++Violations;
      Stage[I] = 2;
    }, {L, R});
  }
  ASSERT_TRUE(bool(G.run(8)));
  EXPECT_EQ(Violations, 0);
  for (int I = 0; I < N; ++I)
    EXPECT_EQ(Stage[I], 2);
}

TEST(SchedulerTest, AllJobsRunExactlyOnceAtEveryWidth) {
  for (unsigned W : {1u, 2u, 4u, 8u}) {
    JobGraph G;
    constexpr int N = 200;
    std::vector<std::atomic<int>> Runs(N);
    std::vector<JobId> Ids;
    for (int I = 0; I < N; ++I) {
      Runs[I] = 0;
      // Chain every 4th job on its predecessor to mix roots and deps.
      std::vector<JobId> Deps;
      if (I % 4 == 3)
        Deps.push_back(Ids[size_t(I) - 1]);
      Ids.push_back(G.add("j" + std::to_string(I),
                          [&Runs, I] { ++Runs[I]; }, Deps));
    }
    ASSERT_TRUE(bool(G.run(W))) << "width " << W;
    for (int I = 0; I < N; ++I)
      EXPECT_EQ(Runs[I], 1) << "job " << I << " at width " << W;
  }
}

TEST(SchedulerTest, ThrowingJobDoesNotPoisonSiblings) {
  JobGraph G;
  std::atomic<int> SiblingRuns{0};
  JobId Bad = G.add("bad", [] { throw std::runtime_error("injected"); });
  JobId Dep = G.add("dependent", [] {}, {Bad});
  for (int I = 0; I < 10; ++I)
    G.add("sibling", [&SiblingRuns] { ++SiblingRuns; });

  Status S = G.run(4);
  ASSERT_FALSE(bool(S));
  EXPECT_EQ(SiblingRuns, 10);
  EXPECT_EQ(G.state(Bad), JobState::Threw);
  EXPECT_NE(G.errorOf(Bad).find("injected"), std::string::npos);
  // The dependent was skipped, not run.
  EXPECT_EQ(G.state(Dep), JobState::NotRun);
  EXPECT_NE(S.error().str().find("bad"), std::string::npos);
}

TEST(SchedulerTest, SkipsTransitiveDependentsOfFailure) {
  JobGraph G;
  JobId A = G.add("a", [] { throw std::runtime_error("boom"); });
  JobId B = G.add("b", [] {}, {A});
  JobId C = G.add("c", [] {}, {B});
  ASSERT_FALSE(bool(G.run(2)));
  EXPECT_EQ(G.state(A), JobState::Threw);
  EXPECT_EQ(G.state(B), JobState::NotRun);
  EXPECT_EQ(G.state(C), JobState::NotRun);
}

TEST(SchedulerTest, SerialAndParallelAgreeOnOutcomes) {
  // The same graph (with one failing job) produces the same per-job states
  // at width 1 and width 8.
  auto Build = [](JobGraph &G, std::vector<JobId> *Ids) {
    JobId A = G.add("a", [] {});
    JobId Bad = G.add("bad", [] { throw std::runtime_error("x"); }, {A});
    JobId C = G.add("c", [] {}, {A});
    JobId D = G.add("d", [] {}, {Bad, C});
    *Ids = {A, Bad, C, D};
  };
  JobGraph S, P;
  std::vector<JobId> SI, PI;
  Build(S, &SI);
  Build(P, &PI);
  (void)S.run(1);
  (void)P.run(8);
  for (size_t I = 0; I < SI.size(); ++I)
    EXPECT_EQ(S.state(SI[I]), P.state(PI[I])) << "job " << I;
}

TEST(SchedulerTest, StressRandomDagAtWidth8) {
  // A layered random DAG: each job depends on a pseudo-random subset of
  // earlier jobs. Checks completion and dependency ordering under real
  // contention.
  JobGraph G;
  constexpr int N = 500;
  std::vector<std::atomic<bool>> Done(N);
  std::atomic<int> Violations{0};
  std::vector<JobId> Ids;
  uint64_t Rng = 0x9e3779b97f4a7c15ULL;
  auto Next = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };
  std::vector<std::vector<int>> DepIdx(N);
  for (int I = 0; I < N; ++I) {
    Done[I] = false;
    if (I > 0)
      for (int K = 0; K < 3; ++K)
        if (Next() % 4 != 0)
          DepIdx[I].push_back(int(Next() % uint64_t(I)));
    std::vector<JobId> Deps;
    for (int D : DepIdx[I])
      Deps.push_back(Ids[size_t(D)]);
    Ids.push_back(G.add("n" + std::to_string(I), [&, I] {
      for (int D : DepIdx[I])
        if (!Done[D])
          ++Violations;
      Done[I] = true;
    }, Deps));
  }
  ASSERT_TRUE(bool(G.run(8)));
  EXPECT_EQ(Violations, 0);
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(Done[I]) << "job " << I;
}

TEST(SchedulerTest, RunOnEmptyGraphSucceeds) {
  JobGraph G;
  EXPECT_TRUE(bool(G.run(1)));
  JobGraph G2;
  EXPECT_TRUE(bool(G2.run(8)));
}

TEST(SchedulerTest, ResolveJobsPassesThroughAndClamps) {
  EXPECT_EQ(resolveJobs(1), 1u);
  EXPECT_EQ(resolveJobs(8), 8u);
  std::string Note;
  EXPECT_EQ(resolveJobs(4, &Note), 4u);
  EXPECT_TRUE(Note.empty()); // No surprise, no note.
  EXPECT_EQ(resolveJobs(100000, &Note), 64u);
  EXPECT_FALSE(Note.empty());
}

TEST(SchedulerTest, ResolveJobsZeroMeansHardware) {
  std::string Note;
  unsigned N = resolveJobs(0, &Note);
  EXPECT_GE(N, 1u);
  EXPECT_LE(N, 64u);
  // Whatever the hardware reports, -j 0 always explains itself.
  EXPECT_NE(Note.find("-j 0"), std::string::npos);
}

TEST(SchedulerTest, RunAcceptsZeroThreads) {
  // run(0) resolves to hardware concurrency internally; jobs all execute.
  JobGraph G;
  std::atomic<int> Ran{0};
  for (int I = 0; I < 16; ++I)
    G.add("job", [&Ran] { ++Ran; });
  ASSERT_TRUE(bool(G.run(0)));
  EXPECT_EQ(Ran, 16);
}

TEST(SchedulerTest, SchedJobFaultMakesJobThrew) {
  fault::ScopedFaults Armed("sched-job:persistent:match=victim");
  JobGraph G;
  bool VictimRan = false, SiblingRan = false;
  JobId V = G.add("victim", [&VictimRan] { VictimRan = true; });
  JobId S = G.add("sibling", [&SiblingRan] { SiblingRan = true; });
  JobId D = G.add("dependent", [] {}, {V});
  EXPECT_FALSE(bool(G.run(1)));
  // The injected fault kills the job at the boundary: its body never ran,
  // the outcome is Threw with the injection named, dependents are
  // skipped, and siblings are untouched.
  EXPECT_FALSE(VictimRan);
  EXPECT_EQ(G.state(V), JobState::Threw);
  EXPECT_NE(G.errorOf(V).find("injected persistent sched-job fault"),
            std::string::npos);
  EXPECT_EQ(G.state(D), JobState::NotRun);
  EXPECT_TRUE(SiblingRan);
  EXPECT_EQ(G.state(S), JobState::Done);
}

TEST(SchedulerTest, SchedJobTransientFaultIsAbsorbed) {
  fault::ScopedFaults Armed("sched-job:transient:n=2");
  JobGraph G;
  bool Ran = false;
  JobId J = G.add("job", [&Ran] { Ran = true; });
  EXPECT_TRUE(bool(G.run(1)));
  EXPECT_TRUE(Ran);
  EXPECT_EQ(G.state(J), JobState::Done);
}

} // namespace
