# Empty dependencies file for relc_bedrock.
# This may be replaced when dependencies are built.
