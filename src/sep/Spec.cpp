//===- sep/Spec.cpp - Function ABI specifications (fnspec) -----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "sep/Spec.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <set>

namespace relc {
namespace sep {

const ArgSpec *FnSpec::findArgForSource(const std::string &SourceName) const {
  for (const ArgSpec &A : Args)
    if (A.SourceName == SourceName)
      return &A;
  return nullptr;
}

std::string FnSpec::str() const {
  std::vector<std::string> ArgNames;
  for (const ArgSpec &A : Args)
    ArgNames.push_back(A.TargetName);
  std::string Out =
      "fnspec! \"" + TargetName + "\" " + join(ArgNames, " ") + " {\n";
  std::vector<std::string> Requires;
  for (const ArgSpec &A : Args) {
    switch (A.TheKind) {
    case ArgSpec::Kind::ArrayPtr:
      Requires.push_back("(array " + A.TargetName + " " + A.SourceName +
                         " * r) m");
      break;
    case ArgSpec::Kind::ArrayLen:
      Requires.push_back(A.TargetName + " = of_nat (length " + A.OfArray +
                         ")");
      break;
    case ArgSpec::Kind::CellPtr:
      Requires.push_back("(cell " + A.TargetName + " " + A.SourceName +
                         " * r) m");
      break;
    case ArgSpec::Kind::Scalar:
      break;
    }
  }
  Out += "  requires tr m := " +
         (Requires.empty() ? std::string("True") : join(Requires, " /\\ ")) +
         ";\n";
  std::vector<std::string> Ensures;
  for (const std::string &S : InPlaceArrays)
    Ensures.push_back("(array " + S + "_ptr (" + TargetName + "' " + S +
                      ") * r) m'");
  for (const std::string &S : InPlaceCells)
    Ensures.push_back("(cell " + S + "_ptr (" + TargetName + "' " + S +
                      ") * r) m'");
  for (const std::string &S : ScalarRets)
    Ensures.push_back("ret_" + S + " = " + TargetName + "' ..");
  Out += "  ensures tr' m' := " +
         (Ensures.empty() ? std::string("m' = m") : join(Ensures, " /\\ ")) +
         " }\n";
  return Out;
}

Status checkSpecAgainstFn(const FnSpec &Spec, const ir::SourceFn &Fn) {
  if (Spec.TargetName.empty())
    return Error("fnspec has no target name");

  // Each source parameter must be realized exactly once.
  std::set<std::string> Covered;
  std::set<std::string> TargetNames;
  for (const ArgSpec &A : Spec.Args) {
    if (!TargetNames.insert(A.TargetName).second)
      return Error("fnspec for " + Spec.TargetName +
                   ": duplicate target argument '" + A.TargetName + "'");
    const ir::Param *P = Fn.findParam(A.SourceName);
    if (!P)
      return Error("fnspec argument '" + A.TargetName +
                   "' names unknown source parameter '" + A.SourceName + "'");
    if (!Covered.insert(A.SourceName).second)
      return Error("source parameter '" + A.SourceName +
                   "' realized by two fnspec arguments");
    switch (A.TheKind) {
    case ArgSpec::Kind::Scalar:
    case ArgSpec::Kind::ArrayLen:
      if (P->TheKind != ir::Param::Kind::ScalarWord)
        return Error("fnspec argument '" + A.TargetName +
                     "' passes non-scalar parameter by value");
      break;
    case ArgSpec::Kind::ArrayPtr:
      if (P->TheKind != ir::Param::Kind::List)
        return Error("fnspec argument '" + A.TargetName +
                     "' is an array pointer but '" + A.SourceName +
                     "' is not a list parameter");
      break;
    case ArgSpec::Kind::CellPtr:
      if (P->TheKind != ir::Param::Kind::Cell)
        return Error("fnspec argument '" + A.TargetName +
                     "' is a cell pointer but '" + A.SourceName +
                     "' is not a cell parameter");
      break;
    }
    if (A.TheKind == ArgSpec::Kind::ArrayLen) {
      const ir::Param *Arr = Fn.findParam(A.OfArray);
      if (!Arr || Arr->TheKind != ir::Param::Kind::List)
        return Error("length argument '" + A.TargetName +
                     "' measures unknown list parameter '" + A.OfArray + "'");
    }
  }
  for (const ir::Param &P : Fn.Params)
    if (!Covered.count(P.Name))
      return Error("source parameter '" + P.Name +
                   "' is not realized by any fnspec argument");

  // Results.
  const std::vector<std::string> &Rets = Fn.Body->returns();
  auto Returned = [&](const std::string &Name) {
    return std::find(Rets.begin(), Rets.end(), Name) != Rets.end();
  };
  for (const std::string &S : Spec.InPlaceArrays) {
    const ir::Param *P = Fn.findParam(S);
    if (!P || P->TheKind != ir::Param::Kind::List)
      return Error("in-place result '" + S + "' is not a list parameter");
    if (!Returned(S))
      return Error("in-place result '" + S +
                   "' is not returned by the model (the ensures clause would "
                   "be vacuous)");
  }
  for (const std::string &S : Spec.InPlaceCells) {
    const ir::Param *P = Fn.findParam(S);
    if (!P || P->TheKind != ir::Param::Kind::Cell)
      return Error("in-place result '" + S + "' is not a cell parameter");
    if (!Returned(S))
      return Error("in-place cell result '" + S +
                   "' is not returned by the model");
  }
  for (const std::string &S : Spec.ScalarRets) {
    if (!Returned(S))
      return Error("scalar return '" + S + "' is not returned by the model");
    // Conservative shape check: a scalar return must not name a list or
    // cell parameter (those come back in place, not by value).
    if (const ir::Param *P = Fn.findParam(S))
      if (P->TheKind != ir::Param::Kind::ScalarWord)
        return Error("scalar return '" + S +
                     "' names a list/cell parameter; use retInPlace");
  }
  for (const std::string &R : Rets) {
    bool Used = std::count(Spec.ScalarRets.begin(), Spec.ScalarRets.end(),
                           R) ||
                std::count(Spec.InPlaceArrays.begin(),
                           Spec.InPlaceArrays.end(), R) ||
                std::count(Spec.InPlaceCells.begin(), Spec.InPlaceCells.end(),
                           R);
    if (!Used)
      return Error("model result '" + R +
                   "' is not captured by the fnspec (add retScalar or "
                   "retInPlace)");
  }
  return Status::success();
}

} // namespace sep
} // namespace relc
