//===- cgen/CEmit.cpp - Bedrock2-to-C pretty-printer ------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "cgen/CEmit.h"

#include "support/StringExtras.h"

#include <map>
#include <set>

namespace relc {
namespace cgen {

using namespace bedrock;

namespace {

/// Collects every local name assigned anywhere in a command (excluding
/// stackalloc binders, which are declared by their scoped block).
void collectLocals(const Cmd &C, std::set<std::string> *Out) {
  switch (C.kind()) {
  case Cmd::Kind::Set:
    Out->insert(cast<Set>(&C)->name());
    return;
  case Cmd::Kind::Seq: {
    const auto *S = cast<Seq>(&C);
    collectLocals(*S->first(), Out);
    collectLocals(*S->second(), Out);
    return;
  }
  case Cmd::Kind::If: {
    const auto *I = cast<If>(&C);
    collectLocals(*I->thenCmd(), Out);
    collectLocals(*I->elseCmd(), Out);
    return;
  }
  case Cmd::Kind::While:
    collectLocals(*cast<While>(&C)->body(), Out);
    return;
  case Cmd::Kind::Call:
    for (const std::string &R : cast<Call>(&C)->rets())
      Out->insert(R);
    return;
  case Cmd::Kind::Interact:
    for (const std::string &R : cast<Interact>(&C)->rets())
      Out->insert(R);
    return;
  case Cmd::Kind::Stackalloc:
    collectLocals(*cast<Stackalloc>(&C)->body(), Out);
    return;
  default:
    return;
  }
}

/// Maps Bedrock2 names (which may contain '$') to unique C identifiers.
class NameMap {
public:
  std::string get(const std::string &Name) {
    auto It = Map.find(Name);
    if (It != Map.end())
      return It->second;
    std::string C = sanitizeCIdentifier(replaceAll(Name, "$", "_"));
    while (Used.count(C))
      C += "_";
    Used.insert(C);
    Map.emplace(Name, C);
    return Map.at(Name);
  }

private:
  std::map<std::string, std::string> Map;
  std::set<std::string> Used;
};

const char *intType(AccessSize Size) {
  switch (Size) {
  case AccessSize::Byte:
    return "uint8_t";
  case AccessSize::Two:
    return "uint16_t";
  case AccessSize::Four:
    return "uint32_t";
  case AccessSize::Eight:
    return "uint64_t";
  }
  return "uint8_t";
}

class Emitter {
public:
  Emitter(const Function &Fn, const CEmitOptions &Opts)
      : Fn(Fn), Opts(Opts) {}

  Result<std::string> run() {
    if (Fn.Rets.size() > 1)
      return Error("C emission supports at most one return value (function " +
                   Fn.Name + " has " + std::to_string(Fn.Rets.size()) + ")");

    std::string FnName = Opts.NamePrefix + Fn.Name;
    std::string Sig = (Fn.Rets.empty() ? "void" : "uintptr_t");
    std::string Head;
    if (Opts.StaticFunctions)
      Head += "static ";
    Head += Sig + " " + sanitizeCIdentifier(FnName) + "(";
    for (size_t I = 0; I < Fn.Args.size(); ++I) {
      if (I)
        Head += ", ";
      Head += "uintptr_t " + Names.get(Fn.Args[I]);
    }
    Head += ")";

    std::string Body;
    // Inline tables become static const arrays.
    for (const InlineTable &T : Fn.Tables) {
      Body += "  static const " + std::string(intType(T.EltSize)) + " " +
              Names.get("table_" + T.Name) + "[" +
              std::to_string(T.Elements.size()) + "] = {";
      for (size_t I = 0; I < T.Elements.size(); ++I) {
        if (I)
          Body += ", ";
        if (I % 8 == 0)
          Body += "\n    ";
        Body += hexStr(T.Elements[I]);
      }
      Body += "\n  };\n";
    }

    // Locals assigned anywhere are declared up front (Bedrock2 locals are
    // function-scoped words).
    std::set<std::string> Locals;
    collectLocals(*Fn.Body, &Locals);
    for (const std::string &A : Fn.Args)
      Locals.erase(A);
    for (const std::string &L : Locals)
      Body += "  uintptr_t " + Names.get(L) + " = 0;\n";

    Result<std::string> Stmts = emitCmd(*Fn.Body, 1);
    if (!Stmts)
      return Stmts.takeError();
    Body += *Stmts;

    if (!Fn.Rets.empty())
      Body += "  return " + Names.get(Fn.Rets[0]) + ";\n";

    return Head + " {\n" + Body + "}\n";
  }

private:
  const Function &Fn;
  const CEmitOptions &Opts;
  NameMap Names;

  std::string pad(unsigned Depth) { return std::string(2 * Depth, ' '); }

  Result<std::string> emitExpr(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Literal: {
      Word V = cast<Literal>(&E)->value();
      return (V < 1024 ? std::to_string(V) : hexStr(V)) +
             std::string("ull");
    }
    case Expr::Kind::Var:
      return Names.get(cast<Var>(&E)->name());
    case Expr::Kind::Load: {
      const auto *L = cast<Load>(&E);
      Result<std::string> A = emitExpr(*L->addr());
      if (!A)
        return A;
      return "(uintptr_t)(*(const " + std::string(intType(L->size())) +
             " *)(" + *A + "))";
    }
    case Expr::Kind::TableGet: {
      const auto *T = cast<TableGet>(&E);
      Result<std::string> I = emitExpr(*T->index());
      if (!I)
        return I;
      return "(uintptr_t)" + Names.get("table_" + T->table()) + "[" + *I +
             "]";
    }
    case Expr::Kind::Bin: {
      const auto *B = cast<Bin>(&E);
      Result<std::string> L = emitExpr(*B->lhs());
      if (!L)
        return L;
      Result<std::string> R = emitExpr(*B->rhs());
      if (!R)
        return R;
      return emitBin(B->op(), *L, *R, *B->rhs());
    }
    }
    return Error("unknown expression kind");
  }

  /// Shift amounts: constants below 64 print bare; anything else is masked
  /// to match the target semantics (C makes oversize shifts undefined).
  static bool isSmallConstant(const Expr &E) {
    const auto *L = dyn_cast<Literal>(&E);
    return L && L->value() < 64;
  }

  Result<std::string> emitBin(BinOp Op, const std::string &L,
                              const std::string &R, const Expr &RhsExpr) {
    auto Infix = [&](const char *O) {
      return "(" + L + " " + O + " " + R + ")";
    };
    auto Shift = [&](const char *O) {
      if (isSmallConstant(RhsExpr))
        return "(" + L + " " + O + " " + R + ")";
      return "(" + L + " " + O + " (" + R + " & 63))";
    };
    switch (Op) {
    case BinOp::Add:
      return Infix("+");
    case BinOp::Sub:
      return Infix("-");
    case BinOp::Mul:
      return Infix("*");
    case BinOp::DivU:
      return Infix("/"); // Guarded by rule side conditions; see header.
    case BinOp::RemU:
      return Infix("%");
    case BinOp::And:
      return Infix("&");
    case BinOp::Or:
      return Infix("|");
    case BinOp::Xor:
      return Infix("^");
    case BinOp::Shl:
      return Shift("<<");
    case BinOp::LShr:
      return Shift(">>");
    case BinOp::AShr:
      if (isSmallConstant(RhsExpr))
        return "((uintptr_t)((int64_t)" + L + " >> " + R + "))";
      return "((uintptr_t)((int64_t)" + L + " >> (" + R + " & 63)))";
    case BinOp::LtU:
      return "((uintptr_t)(" + L + " < " + R + "))";
    case BinOp::LtS:
      return "((uintptr_t)((int64_t)" + L + " < (int64_t)" + R + "))";
    case BinOp::Eq:
      return "((uintptr_t)(" + L + " == " + R + "))";
    case BinOp::Ne:
      return "((uintptr_t)(" + L + " != " + R + "))";
    }
    return Error("unknown binary operator");
  }

  Result<std::string> emitCmd(const Cmd &C, unsigned Depth) {
    switch (C.kind()) {
    case Cmd::Kind::Skip:
      return std::string();

    case Cmd::Kind::Set: {
      const auto *S = cast<Set>(&C);
      Result<std::string> V = emitExpr(*S->value());
      if (!V)
        return V;
      return pad(Depth) + Names.get(S->name()) + " = " + *V + ";\n";
    }

    case Cmd::Kind::Unset:
      return std::string(); // Scope bookkeeping only; no C effect.

    case Cmd::Kind::Store: {
      const auto *S = cast<Store>(&C);
      Result<std::string> A = emitExpr(*S->addr());
      if (!A)
        return A;
      Result<std::string> V = emitExpr(*S->value());
      if (!V)
        return V;
      return pad(Depth) + "*(" + intType(S->size()) + " *)(" + *A + ") = (" +
             intType(S->size()) + ")(" + *V + ");\n";
    }

    case Cmd::Kind::Seq: {
      const auto *S = cast<Seq>(&C);
      Result<std::string> A = emitCmd(*S->first(), Depth);
      if (!A)
        return A;
      Result<std::string> B = emitCmd(*S->second(), Depth);
      if (!B)
        return B;
      return *A + *B;
    }

    case Cmd::Kind::If: {
      const auto *I = cast<If>(&C);
      Result<std::string> Cond = emitExpr(*I->cond());
      if (!Cond)
        return Cond;
      // Idiom: `if (c) x = a; else x = b;` prints as the conditional
      // expression a C programmer would write (and optimizers vectorize).
      if (const auto *TS = dyn_cast<Set>(I->thenCmd()))
        if (const auto *ES = dyn_cast<Set>(I->elseCmd()))
          if (TS->name() == ES->name()) {
            Result<std::string> A = emitExpr(*TS->value());
            if (!A)
              return A;
            Result<std::string> B = emitExpr(*ES->value());
            if (!B)
              return B;
            return pad(Depth) + Names.get(TS->name()) + " = " + *Cond +
                   " ? " + *A + " : " + *B + ";\n";
          }
      Result<std::string> T = emitCmd(*I->thenCmd(), Depth + 1);
      if (!T)
        return T;
      std::string Out = pad(Depth) + "if (" + *Cond + ") {\n" + *T;
      if (!isa<Skip>(I->elseCmd())) {
        Result<std::string> E = emitCmd(*I->elseCmd(), Depth + 1);
        if (!E)
          return E;
        Out += pad(Depth) + "} else {\n" + *E;
      }
      return Out + pad(Depth) + "}\n";
    }

    case Cmd::Kind::While: {
      const auto *W = cast<While>(&C);
      Result<std::string> Cond = emitExpr(*W->cond());
      if (!Cond)
        return Cond;
      Result<std::string> B = emitCmd(*W->body(), Depth + 1);
      if (!B)
        return B;
      return pad(Depth) + "while (" + *Cond + ") {\n" + *B + pad(Depth) +
             "}\n";
    }

    case Cmd::Kind::Call: {
      const auto *Cl = cast<Call>(&C);
      if (Cl->rets().size() > 1)
        return Error("C emission: call with multiple returns");
      std::string Args;
      for (size_t I = 0; I < Cl->args().size(); ++I) {
        if (I)
          Args += ", ";
        Result<std::string> A = emitExpr(*Cl->args()[I]);
        if (!A)
          return A;
        Args += *A;
      }
      std::string Out = pad(Depth);
      if (!Cl->rets().empty())
        Out += Names.get(Cl->rets()[0]) + " = ";
      Out += sanitizeCIdentifier(Opts.NamePrefix + Cl->callee()) + "(" + Args +
             ");\n";
      return Out;
    }

    case Cmd::Kind::Stackalloc: {
      const auto *S = cast<Stackalloc>(&C);
      Result<std::string> B = emitCmd(*S->body(), Depth + 1);
      if (!B)
        return B;
      std::string Buf = Names.get(S->name() + "$buf");
      std::string Ptr = Names.get(S->name());
      return pad(Depth) + "{\n" + pad(Depth + 1) + "uint8_t " + Buf + "[" +
             std::to_string(S->numBytes() ? S->numBytes() : 1) + "];\n" +
             pad(Depth + 1) + "uintptr_t " + Ptr + " = (uintptr_t)" + Buf +
             ";\n" + *B + pad(Depth) + "}\n";
    }

    case Cmd::Kind::Interact: {
      const auto *I = cast<Interact>(&C);
      if (I->action() == "read" && I->args().empty() &&
          I->rets().size() == 1)
        return pad(Depth) + Names.get(I->rets()[0]) + " = relc_ext_read();\n";
      if (I->action() == "write" && I->args().size() == 1 &&
          I->rets().empty()) {
        Result<std::string> A = emitExpr(*I->args()[0]);
        if (!A)
          return A;
        return pad(Depth) + "relc_ext_write(" + *A + ");\n";
      }
      return Error("C emission: unknown external action '" + I->action() +
                   "'");
    }
    }
    return Error("unknown command kind");
  }
};

} // namespace

std::string cPrelude() {
  return "#include <stdint.h>\n"
         "\n"
         "/* Environment hooks for externally observable interactions. */\n"
         "extern uintptr_t relc_ext_read(void);\n"
         "extern void relc_ext_write(uintptr_t w);\n"
         "\n";
}

Result<std::string> emitFunction(const Function &Fn, const CEmitOptions &Opts) {
  Emitter E(Fn, Opts);
  return E.run();
}

Result<std::string> emitModule(const Module &Mod, const CEmitOptions &Opts) {
  std::string Out = "/* Generated by relc (relational compilation); do not "
                    "edit. */\n" +
                    cPrelude();
  // Forward declarations allow any call order.
  for (const Function &Fn : Mod.Functions) {
    if (Fn.Rets.size() > 1)
      return Error("C emission supports at most one return value");
    Out += std::string(Opts.StaticFunctions ? "static " : "") +
           (Fn.Rets.empty() ? "void" : "uintptr_t") + " " +
           sanitizeCIdentifier(Opts.NamePrefix + Fn.Name) + "(";
    for (size_t I = 0; I < Fn.Args.size(); ++I)
      Out += std::string(I ? ", " : "") + "uintptr_t";
    Out += ");\n";
  }
  Out += "\n";
  for (const Function &Fn : Mod.Functions) {
    Result<std::string> F = emitFunction(Fn, Opts);
    if (!F)
      return F.takeError().note("while emitting " + Fn.Name);
    Out += *F + "\n";
  }
  return Out;
}

} // namespace cgen
} // namespace relc
