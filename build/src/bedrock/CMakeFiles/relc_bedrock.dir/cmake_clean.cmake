file(REMOVE_RECURSE
  "CMakeFiles/relc_bedrock.dir/Ast.cpp.o"
  "CMakeFiles/relc_bedrock.dir/Ast.cpp.o.d"
  "CMakeFiles/relc_bedrock.dir/Interp.cpp.o"
  "CMakeFiles/relc_bedrock.dir/Interp.cpp.o.d"
  "librelc_bedrock.a"
  "librelc_bedrock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_bedrock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
