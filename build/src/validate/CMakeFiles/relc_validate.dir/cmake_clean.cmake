file(REMOVE_RECURSE
  "CMakeFiles/relc_validate.dir/Validate.cpp.o"
  "CMakeFiles/relc_validate.dir/Validate.cpp.o.d"
  "librelc_validate.a"
  "librelc_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
