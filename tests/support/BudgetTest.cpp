//===- tests/support/BudgetTest.cpp - guard::Budget unit tests -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace relc;
using namespace relc::guard;

namespace {

TEST(BudgetTest, DefaultIsUnlimited) {
  Budget B;
  EXPECT_FALSE(B.limited());
  for (int I = 0; I < 10000; ++I)
    EXPECT_TRUE(B.step());
  EXPECT_FALSE(B.exhausted());
  EXPECT_EQ(B.state(), Exhaustion::None);
  EXPECT_EQ(B.stepsUsed(), 10000u);
}

TEST(BudgetTest, ZeroZeroIsUnlimited) {
  Budget B(0, 0);
  EXPECT_FALSE(B.limited());
  EXPECT_TRUE(B.checkpoint());
}

TEST(BudgetTest, StepLimitExhaustsAndLatches) {
  Budget B(0, 100);
  EXPECT_TRUE(B.limited());
  unsigned Ok = 0;
  for (int I = 0; I < 200; ++I)
    if (B.step())
      ++Ok;
  EXPECT_EQ(Ok, 99u); // The 100th step consumes the allowance.
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.state(), Exhaustion::OutOfSteps);
  // Latched: it never recovers.
  EXPECT_FALSE(B.step());
  EXPECT_FALSE(B.checkpoint());
}

TEST(BudgetTest, BulkChargeExhausts) {
  Budget B(0, 1000);
  EXPECT_TRUE(B.step(500));
  EXPECT_FALSE(B.step(500)); // Reaches the limit exactly.
  EXPECT_EQ(B.state(), Exhaustion::OutOfSteps);
}

TEST(BudgetTest, ExpiredDeadlineTripsCheckpoint) {
  // A 0-step... we cannot pass 0 (that disables the deadline), so use a
  // 1 ms deadline and wait it out. checkpoint() polls unconditionally.
  Budget B(1, 0);
  EXPECT_TRUE(B.limited());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(B.checkpoint());
  EXPECT_EQ(B.state(), Exhaustion::TimedOut);
  EXPECT_FALSE(B.step()); // Latched.
}

TEST(BudgetTest, ExpiredDeadlineTripsStepWithin256) {
  Budget B(1, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // step() only polls on 256-step boundaries; within 257 steps it must
  // have noticed.
  bool Tripped = false;
  for (int I = 0; I < 257 && !Tripped; ++I)
    Tripped = !B.step();
  EXPECT_TRUE(Tripped);
  EXPECT_EQ(B.state(), Exhaustion::TimedOut);
}

TEST(BudgetTest, StepOrThrowCarriesKindAndText) {
  Budget B(0, 10);
  try {
    for (int I = 0; I < 100; ++I)
      B.stepOrThrow();
    FAIL() << "expected BudgetExhausted";
  } catch (const BudgetExhausted &E) {
    EXPECT_EQ(E.kind(), Exhaustion::OutOfSteps);
    EXPECT_NE(std::string(E.what()).find("10-step budget"), std::string::npos);
  }
}

TEST(BudgetTest, DescribeNamesTheBound) {
  Budget Steps(0, 42);
  while (Steps.step())
    ;
  EXPECT_EQ(Steps.describe(), "exhausted its 42-step budget");

  Budget Time(1, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(Time.checkpoint());
  EXPECT_NE(Time.describe().find("exceeded its 1 ms deadline"),
            std::string::npos);

  Budget Fresh(1000, 1000);
  EXPECT_TRUE(Fresh.step());
  EXPECT_NE(Fresh.describe().find("within its budget"), std::string::npos);
}

TEST(BudgetTest, ExhaustionNames) {
  EXPECT_STREQ(exhaustionName(Exhaustion::None), "none");
  EXPECT_STREQ(exhaustionName(Exhaustion::TimedOut), "timed-out");
  EXPECT_STREQ(exhaustionName(Exhaustion::OutOfSteps), "out-of-steps");
}

TEST(BudgetTest, ConcurrentSteppersLatchOnce) {
  // Many threads hammer one budget; exactly the allowance's worth of
  // steps succeed overall (single fetch_add accounting), and the latched
  // state is one of the two exhaustions, stable afterwards.
  Budget B(0, 10000);
  std::atomic<uint64_t> Succeeded{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < 5000; ++I)
        if (B.step())
          Succeeded.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.state(), Exhaustion::OutOfSteps);
  // Steps past the limit all failed; successes are below the limit.
  EXPECT_LT(Succeeded.load(), 10000u);
  EXPECT_FALSE(B.step());
}

} // namespace
