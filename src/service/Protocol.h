//===- service/Protocol.h - relcd wire schema v1 ----------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The versioned, length-prefixed request/response wire schema the relcd
// daemon speaks over its Unix-domain socket — a direct projection of
// service::Request / service::Response (Service.h), with the same
// named-rejection discipline the .certbin reader established: every way
// a frame can be refused has exactly one kebab-case reason, pinned by
// tests and stable across releases.
//
// Frame layout (all integers little-endian):
//
//   magic[8] = "RELCSRVC" | schema u32 | payload-length u32 | payload...
//
// and the payload is one tagged message: a leading kind byte, then that
// kind's fields (strings are u32-length-prefixed byte runs; lists are
// u32-count-prefixed).
//
// Named rejections (kebab-case, exhaustive):
//
//   bad-magic               frame does not start with "RELCSRVC"
//   unknown-schema-version  header names a schema this build cannot speak
//   oversized-frame         declared payload exceeds kMaxFramePayload
//   truncated-frame         peer closed (or went silent) mid-frame
//   malformed-frame         payload bytes do not decode as the tagged kind
//   unknown-request-kind    well-formed frame, unrecognized kind byte
//   unknown-program         certify request names an unregistered program
//   server-busy             backpressure: admission cap reached, no idle
//                           worker, or the daemon is draining
//   request-timeout         peer fed bytes too slowly (slow-loris guard)
//   injected-fault          relc::fault fired at a svc-* site (testing)
//
// Worker-supervision degradations (same discipline — named, never
// cached or memoized; see service/Supervisor.h):
//
//   worker-crashed            worker died by signal or unexpected exit
//   worker-oom                worker exceeded RLIMIT_AS (OOM exit code)
//   worker-timeout            per-job wall deadline or RLIMIT_CPU hit
//   worker-retries-exhausted  every retry of a job lost its worker
//
// Degraded and faulted outcomes travel as *named statuses* inside a
// well-formed reply (or as a named error frame) — never as a silent
// connection drop, and never into any cache.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVICE_PROTOCOL_H
#define RELC_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace relc {
namespace service {
namespace wire {

constexpr char kMagic[8] = {'R', 'E', 'L', 'C', 'S', 'R', 'V', 'C'};
constexpr uint32_t kSchemaVersion = 1;
constexpr size_t kHeaderSize = 16;
/// Hard cap on one frame's payload: a whole-suite reply with both
/// certificate faces is ~100 KiB, so 16 MiB is generous headroom while
/// still refusing absurd allocations before they happen.
constexpr uint32_t kMaxFramePayload = 16u << 20;

/// Message kinds. Requests are low, replies have the high bit region,
/// so a kind byte is never valid in both directions.
enum class Kind : uint8_t {
  CertifyRequest = 0x01,
  PingRequest = 0x02,
  StatsRequest = 0x03,
  ShutdownRequest = 0x04,
  CertifyReply = 0x41,
  PongReply = 0x42,
  StatsReply = 0x43,
  ShutdownReply = 0x44,
  ErrorReply = 0x7F,
};

/// A certify request: the wire face of service::Request. The daemon
/// supplies CacheDir/Jobs/EmitC itself (server policy, not client
/// choice).
struct CertifyRequest {
  std::vector<std::string> Programs; ///< Empty = the whole suite.
  bool Validate = true;
  bool Analyze = true;
  bool Tv = true;
  bool Codelint = true;
  bool KeepGoing = false;
  bool WantCertJson = true; ///< --cert-format json|auto
  bool WantCertBin = true;  ///< --cert-format bin|auto
  uint32_t LayerTimeoutMs = 0; ///< 0 = accept the server default.
  uint64_t TvStepBudget = 0;   ///< 0 = accept the server default.
};

/// One program's result inside a certify reply: the flat projection of
/// service::ProgramReply.
struct ProgramResult {
  std::string Name;
  uint8_t Status = 0; ///< service::ProgramStatus.
  uint8_t From = 0;   ///< service::Provenance (cache-hit provenance).
  std::string Error;
  std::string DegradedNote;
  std::string TvVerdict;
  std::string CodelintVerdict;
  std::string CertJson; ///< Byte-identical to relc-gen's .tv.json.
  std::string CertBin;  ///< Byte-identical to relc-gen's .certbin.
};

struct CertifyReply {
  uint8_t Exit = 0; ///< The stable relc-gen exit taxonomy (0/1/2/3).
  std::vector<ProgramResult> Programs;
  /// Disk certificate-cache traffic this reply caused — in worker mode
  /// the cache I/O happens in the worker subprocess, so the counters
  /// ride the reply back for the daemon's aggregate stats.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheStores = 0;
};

struct Pong {
  uint32_t ApiVersion = 0;          ///< service::kApiVersion.
  uint32_t SchemaVersion = 0;       ///< wire::kSchemaVersion.
  uint64_t RegistryFingerprint = 0; ///< core::standardRegistryFingerprint.
  uint64_t Pid = 0;
};

struct Stats {
  uint64_t Requests = 0;        ///< Frames dispatched (all kinds).
  uint64_t CertifyRequests = 0;
  uint64_t MemoHits = 0;        ///< Served from the in-memory reply memo.
  uint64_t CacheHits = 0;       ///< Disk certificate-cache hits.
  uint64_t CacheMisses = 0;
  uint64_t CacheStores = 0;
  uint64_t BusyRejections = 0;      ///< server-busy replies.
  uint64_t ProtocolRejections = 0;  ///< Named frame rejections.
  uint64_t FaultedRequests = 0;     ///< injected-fault replies.
  uint64_t ActiveConnections = 0;
  // Worker-supervision counters (all 0 when the daemon runs certify
  // in-process, i.e. -workers 0).
  uint64_t Workers = 0;            ///< Configured worker-pool size.
  uint64_t WorkerSpawns = 0;       ///< Total worker forks (incl. initial).
  uint64_t WorkerRestarts = 0;     ///< Respawns after an abnormal death.
  uint64_t WorkerSpawnFailures = 0;
  uint64_t WorkerCrashes = 0;      ///< Deaths by signal / unexpected exit.
  uint64_t WorkerOoms = 0;         ///< Deaths by the OOM exit code.
  uint64_t WorkerTimeouts = 0;     ///< Per-job wall-deadline kills.
  uint64_t WorkerRetries = 0;      ///< Jobs re-dispatched after a loss.
  uint64_t WorkerDegraded = 0;     ///< worker-* degraded replies served.
  uint64_t Drains = 0;             ///< Graceful drains begun.
  std::string CacheDir;
};

struct ErrorReply {
  std::string Reason; ///< One of the kebab-case names above.
  std::string Detail; ///< Human-readable elaboration ("" allowed).
};

/// One decoded message of any kind; only the member matching TheKind is
/// meaningful.
struct Message {
  Kind TheKind = Kind::PingRequest;
  CertifyRequest Certify; ///< Kind::CertifyRequest.
  CertifyReply Reply;     ///< Kind::CertifyReply.
  Pong ThePong;           ///< Kind::PongReply.
  Stats TheStats;         ///< Kind::StatsReply.
  ErrorReply Error;       ///< Kind::ErrorReply.
};

//===----------------------------------------------------------------------===//
// Framing.
//===----------------------------------------------------------------------===//

/// What examining a byte buffer for one frame decided.
enum class FrameStatus : uint8_t {
  Ok,             ///< A complete frame; *Payload and *FrameSize are set.
  NeedMore,       ///< Prefix of a valid frame; read more bytes.
  BadMagic,       ///< "bad-magic".
  UnknownVersion, ///< "unknown-schema-version".
  Oversized,      ///< "oversized-frame".
};

/// The kebab-case rejection for a terminal FrameStatus ("" for Ok /
/// NeedMore).
const char *frameStatusReason(FrameStatus S);

/// Wraps \p Payload in a frame header.
std::string frame(std::string_view Payload);

/// Examines \p Buf for one complete frame. On Ok, *FrameSize is the
/// total frame length (consume it) and *Payload aliases the payload
/// bytes inside \p Buf.
FrameStatus splitFrame(std::string_view Buf, size_t *FrameSize,
                       std::string_view *Payload);

//===----------------------------------------------------------------------===//
// Payload encoding.
//===----------------------------------------------------------------------===//

/// Encodes \p M into a payload (frame it with frame() before writing).
std::string encode(const Message &M);

/// Decodes one payload. On failure returns false with *Reason set to
/// "malformed-frame" or "unknown-request-kind".
bool decode(std::string_view Payload, Message *M, std::string *Reason);

} // namespace wire
} // namespace service
} // namespace relc

#endif // RELC_SERVICE_PROTOCOL_H
