# Empty dependencies file for extraction_tests.
# This may be replaced when dependencies are built.
