//===- tests/stackm/StackMachineTest.cpp - §2 demo pair --------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "stackm/StackMachine.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::stackm;

namespace {

/// A random closed S expression of bounded depth (Add-only when
/// BaseOnly; otherwise with Mul nodes too).
SExprPtr randomExpr(Rng &R, unsigned Depth, bool BaseOnly) {
  if (Depth == 0 || R.below(3) == 0)
    return sInt(int64_t(R.next() % 2001) - 1000);
  SExprPtr L = randomExpr(R, Depth - 1, BaseOnly);
  SExprPtr Rhs = randomExpr(R, Depth - 1, BaseOnly);
  if (!BaseOnly && R.nextBool())
    return sMul(std::move(L), std::move(Rhs));
  return sAdd(std::move(L), std::move(Rhs));
}

TEST(StackMachineTest, SemanticsOfPaperExample) {
  SExprPtr S7 = sAdd(sInt(3), sInt(4));
  EXPECT_EQ(evalS(*S7), 7);
  TProgram T7 = {TOp::push(3), TOp::push(4), TOp::popAdd()};
  EXPECT_EQ(evalT(T7, {}), (std::vector<int64_t>{7}));
  // ∀ zs: the stack below is untouched.
  EXPECT_EQ(evalT(T7, {10, 20}), (std::vector<int64_t>{10, 20, 7}));
}

TEST(StackMachineTest, InvalidPopsAreNoOps) {
  // The semantics is total: popping from a short stack does nothing.
  EXPECT_EQ(evalT({TOp::popAdd()}, {}), (std::vector<int64_t>{}));
  EXPECT_EQ(evalT({TOp::popAdd()}, {5}), (std::vector<int64_t>{5}));
}

TEST(StackMachineTest, FunctionalCompilerMatchesPaper) {
  SExprPtr S7 = sAdd(sInt(3), sInt(4));
  Result<TProgram> T = compileStoT(*S7);
  ASSERT_TRUE(bool(T));
  EXPECT_EQ(*T, (TProgram{TOp::push(3), TOp::push(4), TOp::popAdd()}));
}

TEST(StackMachineTest, FunctionalCompilerIsClosed) {
  // SMul is outside the monolithic compiler's language.
  Result<TProgram> T = compileStoT(*sMul(sInt(2), sInt(3)));
  EXPECT_FALSE(bool(T));
}

TEST(StackMachineTest, RelationalCompilerProducesWitness) {
  SExprPtr S7 = sAdd(sInt(3), sInt(4));
  Result<CompiledS> R = compileRelational(SRuleSet::base(), S7);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Program, (TProgram{TOp::push(3), TOp::push(4), TOp::popAdd()}));
  EXPECT_EQ(R->Proof->size(), 3u);
  EXPECT_TRUE(bool(checkDerivation(*R->Proof)));
  EXPECT_TRUE(bool(checkEquivalence(R->Program, *S7)));
}

TEST(StackMachineTest, UnsolvedGoalNamesTheMissingLemma) {
  Result<CompiledS> R =
      compileRelational(SRuleSet::base(), sMul(sInt(2), sInt(3)));
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("unsolved goal"), std::string::npos);
  EXPECT_NE(R.error().str().find("(2 * 3)"), std::string::npos);
}

TEST(StackMachineTest, ExtensionRuleEnablesMul) {
  SRuleSet RS = SRuleSet::base();
  RS.add(makeMulRule());
  SExprPtr E = sMul(sAdd(sInt(2), sInt(3)), sInt(7));
  Result<CompiledS> R = compileRelational(RS, E);
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(bool(checkDerivation(*R->Proof)));
  EXPECT_TRUE(bool(checkEquivalence(R->Program, *E)));
}

TEST(StackMachineTest, FrontRegisteredRuleShadowsGenericOnes) {
  SRuleSet RS = SRuleSet::base();
  RS.add(makeMulRule());
  RS.addFront(makeConstFoldRule());
  SExprPtr E = sMul(sAdd(sInt(2), sInt(3)), sInt(7));
  Result<CompiledS> R = compileRelational(RS, E);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Program, (TProgram{TOp::push(35)}));
  EXPECT_TRUE(bool(checkDerivation(*R->Proof)));
}

TEST(StackMachineTest, TamperedDerivationIsRejected) {
  SExprPtr S7 = sAdd(sInt(3), sInt(4));
  Result<CompiledS> R = compileRelational(SRuleSet::base(), S7);
  ASSERT_TRUE(bool(R));

  // Wrong emitted program.
  {
    auto Tampered = std::make_unique<Derivation>();
    Tampered->RuleName = R->Proof->RuleName;
    Tampered->Goal = R->Proof->Goal;
    Tampered->Source = R->Proof->Source;
    Tampered->Emitted = {TOp::push(8)};
    for (auto &C : R->Proof->Children) {
      auto Copy = std::make_unique<Derivation>();
      Copy->RuleName = C->RuleName;
      Copy->Source = C->Source;
      Copy->Emitted = C->Emitted;
      Tampered->Children.push_back(std::move(Copy));
    }
    EXPECT_FALSE(bool(checkDerivation(*Tampered)));
  }
  // Unknown rule name.
  {
    R->Proof->RuleName = "Made_Up_Rule";
    EXPECT_FALSE(bool(checkDerivation(*R->Proof)));
  }
}

TEST(StackMachineTest, ConstFoldSideConditionIsRechecked) {
  // A const-fold node whose pushed value is wrong must be rejected.
  SExprPtr E = sAdd(sInt(1), sInt(2));
  auto D = std::make_unique<Derivation>();
  D->RuleName = "Ext_RConstFold";
  D->Source = E;
  D->Emitted = {TOp::push(4)}; // Should be 3.
  EXPECT_FALSE(bool(checkDerivation(*D)));
  D->Emitted = {TOp::push(3)};
  EXPECT_TRUE(bool(checkDerivation(*D)));
}

/// Property sweep: relational compilation agrees with the semantics on
/// random expression trees, and all witnesses replay.
class StackMachineProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(StackMachineProperty, RandomTreesCompileCorrectly) {
  Rng R(GetParam() * 7919 + 1);
  SRuleSet RS = SRuleSet::base();
  RS.add(makeMulRule());
  for (int Trial = 0; Trial < 25; ++Trial) {
    SExprPtr E = randomExpr(R, 5, /*BaseOnly=*/false);
    Result<CompiledS> C = compileRelational(RS, E);
    ASSERT_TRUE(bool(C)) << E->str();
    ASSERT_TRUE(bool(checkDerivation(*C->Proof))) << E->str();
    ASSERT_TRUE(bool(checkEquivalence(C->Program, *E))) << E->str();
    // And the functional compiler agrees on the Add-only fragment.
    SExprPtr Base = randomExpr(R, 4, /*BaseOnly=*/true);
    Result<TProgram> F = compileStoT(*Base);
    Result<CompiledS> Rel = compileRelational(RS, Base);
    ASSERT_TRUE(bool(F) && bool(Rel));
    EXPECT_EQ(*F, Rel->Program) << Base->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackMachineProperty,
                         ::testing::Range(0u, 8u));

} // namespace
