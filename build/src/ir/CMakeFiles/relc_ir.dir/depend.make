# Empty dependencies file for relc_ir.
# This may be replaced when dependencies are built.
