//===- pipeline/Pipeline.cpp - Parallel, incremental certification ---------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "cert/Binary.h"
#include "cert/Writer.h"
#include "pipeline/Scheduler.h"
#include "sep/State.h"
#include "support/Budget.h"
#include "support/Fault.h"
#include "support/Hash.h"
#include "support/StringExtras.h"
#include "validate/Validate.h"

#include <chrono>

namespace relc {
namespace pipeline {

using hash::fnv1a64;
using hash::hex16;

namespace {

double millisSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Runs \p Fn, recording its wall time into \p L.
template <typename FnT> void timed(LayerRun &L, FnT &&Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  L.Millis = millisSince(T0);
  L.Ran = true;
}

} // namespace

bool ProgramOutcome::ok() const {
  if (!CompileOk)
    return false;
  for (const LayerRun *L : {&Replay, &Analysis, &Tv, &Codelint, &Diff})
    if (L->Enabled && !((L->Ran || L->FromCache) && L->Ok))
      return false;
  return true;
}

bool ProgramOutcome::anyDegraded() const {
  if (CompileDegraded || !DegradedNote.empty())
    return true;
  for (const LayerRun *L : {&Replay, &Analysis, &Tv, &Codelint, &Diff})
    if (L->Degraded)
      return true;
  return false;
}

bool ProgramOutcome::failureIsDegradedOnly() const {
  if (!CompileOk && !CompileDegraded)
    return false; // A genuine compile failure.
  bool Any = CompileDegraded || !DegradedNote.empty();
  for (const LayerRun *L : {&Replay, &Analysis, &Tv, &Codelint, &Diff}) {
    if (!L->Enabled)
      continue;
    if (L->Degraded) {
      Any = true;
      continue;
    }
    if ((L->Ran || L->FromCache) && L->Ok)
      continue; // Genuinely passed.
    if (!L->Ran && !L->FromCache)
      continue; // Never got a chance: some upstream problem owns this.
    return false; // Ran to a genuine failing verdict.
  }
  return Any;
}

std::string ProgramOutcome::firstDegradedNote() const {
  if (CompileDegraded)
    return CompileError;
  struct Probe {
    const LayerRun *L;
    const char *What;
  };
  for (const Probe &P :
       {Probe{&Replay, "derivation replay"}, Probe{&Analysis, "static analysis"},
        Probe{&Tv, "translation validation"}, Probe{&Codelint, "codelint"},
        Probe{&Diff, "differential certification"}}) {
    if (!P.L->Degraded)
      continue;
    if (!P.L->FaultNote.empty())
      return P.L->FaultNote;
    return std::string(P.What) + " exhausted its budget";
  }
  return DegradedNote;
}

CertKey certKeyFor(const ir::SourceFn &Model, const core::CompileHints &Hints,
                   const sep::FnSpec &Spec, const bedrock::Function &Code) {
  // The content hashing itself lives in cert::contentKey, so the cache,
  // the certificate writer, and the independent checker (relc-check) all
  // agree on what "the same program" means.
  cert::ContentKey K = cert::contentKey(Model, Hints.EntryFacts, Spec, Code);
  return CertKey{K.ModelHash, K.SpecHash, K.CodeHash};
}

uint64_t optionsHashFor(const validate::ValidationOptions &VOpts,
                        const PipelineOptions &Opts,
                        uint64_t RegistryFingerprint) {
  uint64_t H = fnv1a64("relc-opts-v1|");
  H = fnv1a64("vectors=" + std::to_string(VOpts.VectorsPerSize) + "|", H);
  for (size_t Sz : VOpts.Sizes)
    H = fnv1a64(std::to_string(Sz) + ",", H);
  H = fnv1a64("|seed=" + hex16(VOpts.Seed), H);
  // Custom generators / predicates are opaque closures; their *presence*
  // is keyed (and the model/spec hashes pin the program they belong to).
  // Editing a generator's body without touching the model is the one
  // invalidation the key cannot see — documented in DESIGN.md §4.5.
  H = fnv1a64(VOpts.MakeInputs ? "|gen=custom" : "|gen=default", H);
  H = fnv1a64(VOpts.NondetEnsures ? "|ens=custom" : "|ens=none", H);
  H = fnv1a64(std::string("|callees=") +
                  std::to_string(VOpts.CalleeModels.size()),
              H);
  // Which layers the verdict covers: an entry certified without TV must
  // not satisfy a run that wants TV, and vice versa.
  H = fnv1a64(std::string("|layers=") + (Opts.Validate ? "V" : "-") +
                  (Opts.Analyze ? "A" : "-") + (Opts.Tv ? "T" : "-") +
                  (Opts.Codelint ? "C" : "-"),
              H);
  // Certificate schema version: cached entries embed the serialized
  // certificate, so a schema change must miss (an old entry would replay
  // a v1 payload byte-for-byte and break warm/cold byte identity).
  H = fnv1a64("|certv=" + std::to_string(cert::kSchemaVersion), H);
  // Codelint analyzer version: its record is embedded both in the cache
  // entry and the certificate's codelint section, so an analyzer upgrade
  // (new cost model, new domains) must invalidate cached verdicts — an old
  // section would fail relc-check's re-derivation.
  H = fnv1a64("|codelintv=" + std::to_string(codelint::kCodelintVersion), H);
  // Budget options participate too: degraded outcomes are never cached,
  // but a verdict certified under one budget regime must not silently
  // satisfy a run under another (KeepGoing is classification-only and
  // deliberately absent).
  H = fnv1a64("|timeout=" + std::to_string(VOpts.LayerTimeoutMs) +
                  "|tvsteps=" + std::to_string(VOpts.TvStepBudget) +
                  "|fuel=" + std::to_string(VOpts.InterpFuel),
              H);
  // The rule registry is part of the verdict's identity: a cached verdict
  // certifies what THIS compiler produced, so editing, reordering, adding,
  // or removing a compilation rule must miss every cached entry even when
  // model/spec/code hashes happen to collide across registries.
  H = fnv1a64("|rules=" + hex16(RegistryFingerprint), H);
  return H;
}

namespace {

/// True iff \p E records a successful verdict for every layer \p Opts
/// enables. Entries are only stored for full successes, so a false here
/// means a corrupt-but-integral entry; treat as a miss defensively.
bool entryCovers(const CertEntry &E, const PipelineOptions &Opts) {
  if (Opts.Validate && !(E.ReplayOk && E.DifferentialOk))
    return false;
  if (Opts.Analyze && !E.AnalysisOk)
    return false;
  if (Opts.Tv && !E.TvRan)
    return false;
  if (Opts.Codelint && !E.CodelintRan)
    return false;
  return true;
}

/// One-line rejection text for a failed codelint layer: the overall
/// verdict plus the first finding (each finding carries its stable
/// kebab-case reason).
std::string codelintRejection(const codelint::Report &R) {
  std::string Why =
      "codelint verdict " + std::string(codelint::verdictName(R.overall()));
  if (!R.Findings.empty())
    Why += ": " + R.Findings.front().str();
  return Why;
}

/// Fills \p O's layer fields from a cached verdict.
void applyCached(ProgramOutcome &O, const CertEntry &E) {
  auto FromCache = [](LayerRun &L) {
    if (L.Enabled) {
      L.FromCache = true;
      L.Ok = true;
    }
  };
  FromCache(O.Replay);
  FromCache(O.Analysis);
  FromCache(O.Tv);
  FromCache(O.Codelint);
  FromCache(O.Diff);
  O.AnalysisWarnings = E.AnalysisWarnings;
  O.AnalysisDiags = E.AnalysisDiags;
  O.TvVerdictName = E.TvVerdict;
  O.TvLoops = E.TvLoops;
  O.TvTerms = E.TvTerms;
  O.TvCertJson = E.TvCertificate;
  O.TvCertBin = E.TvCertBin;
  // A legacy JSON-only entry predates the binary image: re-encode it from
  // the canonical JSON so warm runs still emit both artifacts. Both
  // writers are deterministic, so the result is byte-identical to what a
  // cold run would have produced.
  if (O.TvCertBin.empty() && !O.TvCertJson.empty())
    if (std::optional<cert::Certificate> C = cert::Reader::parse(O.TvCertJson))
      O.TvCertBin = cert::BinWriter::write(*C);
  O.CodelintVerdictName = E.CodelintVerdict;
  O.CacheHit = true;
}

} // namespace

std::vector<ProgramOutcome>
certifyPrograms(const std::vector<const programs::ProgramDef *> &Progs,
                const PipelineOptions &Opts, PipelineStats *Stats,
                const TamperHook &Tamper) {
  std::vector<ProgramOutcome> Out(Progs.size());
  std::vector<CacheStats> PerProgramCache(Progs.size());
  CertCache Cache(Opts.CacheDir);
  JobGraph G;

  // Per-program job ids, for mapping scheduler-level outcomes (a job that
  // threw or was skipped) back onto named degraded outcomes after run().
  struct ProgJobs {
    JobId Compile = NoJob, Replay = NoJob, Analysis = NoJob, Tv = NoJob,
          Codelint = NoJob, Diff = NoJob, Certify = NoJob;
  };
  std::vector<ProgJobs> Jobs(Progs.size());

  for (size_t I = 0; I < Progs.size(); ++I) {
    const programs::ProgramDef *P = Progs[I];
    ProgramOutcome &O = Out[I];
    CacheStats &CS = PerProgramCache[I];
    O.Def = P;
    O.Replay.Enabled = Opts.Validate;
    O.Analysis.Enabled = Opts.Analyze;
    O.Tv.Enabled = Opts.Tv;
    O.Codelint.Enabled = Opts.Codelint;
    O.Diff.Enabled = Opts.Validate;

    // Per-job validation options: what validate::validate would see.
    // (Copied per program so concurrent jobs never share mutable state.)
    // Suite-level budget overrides apply here, so the options hash and
    // every layer agree on the effective budgets.
    auto MakeVOpts = [P, &Opts]() {
      validate::ValidationOptions VO = P->VOpts;
      VO.Hints = P->Hints;
      if (Opts.LayerTimeoutMs)
        VO.LayerTimeoutMs = Opts.LayerTimeoutMs;
      if (Opts.TvStepBudget)
        VO.TvStepBudget = Opts.TvStepBudget;
      return VO;
    };

    //--- compile: the root of this program's chain.
    JobId JCompile = Jobs[I].Compile =
        G.add(P->Name + "/compile", [&O, &CS, &Cache, &Opts, P, &Tamper,
                                     MakeVOpts] {
      auto T0 = std::chrono::steady_clock::now();
      core::Compiler C;
      Result<core::CompileResult> R = C.compileFn(P->Model, P->Spec,
                                                  P->Hints);
      O.CompileMillis = millisSince(T0);
      if (!R) {
        O.CompileError =
            R.takeError().note("while compiling program " + P->Name).str();
        return;
      }
      O.Compiled = R.take();
      if (Tamper)
        Tamper(*P, O.Compiled);
      O.CompileOk = true;
      O.Linked.Functions.push_back(O.Compiled.Fn);

      O.Key = certKeyFor(P->Model, P->Hints, P->Spec, O.Compiled.Fn);
      O.OptsHash = optionsHashFor(MakeVOpts(), Opts);
      if (Cache.enabled()) {
        std::optional<CertEntry> E = Cache.lookup(O.Key, O.OptsHash, &CS);
        if (E && entryCovers(*E, Opts))
          applyCached(O, *E);
      }
    });

    //--- The three static layers: independent once the code is emitted.
    // Each starts with a layer-entry fault probe: transient hits are
    // absorbed by the retry allowance, a persistent one makes the layer a
    // named Degraded outcome (never a hang, never a poisoned sibling).
    std::vector<JobId> StaticJobs;
    if (Opts.Validate)
      StaticJobs.push_back(Jobs[I].Replay = G.add(P->Name + "/replay", [&O] {
        if (!O.CompileOk || O.CacheHit)
          return;
        if (auto H = fault::fireWithRetry(fault::Site::LayerEntry,
                                          O.Def->Name + "/replay")) {
          O.Replay.Ran = true;
          O.Replay.Ok = false;
          O.Replay.Degraded = true;
          O.Replay.FaultNote = H->describe();
          if (O.ValidationError.empty())
            O.ValidationError = Error(H->describe())
                                    .note("derivation replay did not run")
                                    .note("while validating program " +
                                          O.Def->Name)
                                    .str();
          return;
        }
        timed(O.Replay, [&] {
          Status S = validate::replayDerivation(O.Def->Model, O.Compiled);
          O.Replay.Ok = bool(S);
          if (!S && O.ValidationError.empty())
            O.ValidationError =
                S.takeError()
                    .note("derivation replay rejected the witness")
                    .note("while validating program " + O.Def->Name)
                    .str();
        });
      }, {JCompile}));

    if (Opts.Analyze)
      StaticJobs.push_back(Jobs[I].Analysis =
                               G.add(P->Name + "/analysis", [&O, MakeVOpts] {
        if (!O.CompileOk || O.CacheHit)
          return;
        if (auto H = fault::fireWithRetry(fault::Site::LayerEntry,
                                          O.Def->Name + "/analysis")) {
          O.Analysis.Ran = true;
          O.Analysis.Ok = false;
          O.Analysis.Degraded = true;
          O.Analysis.FaultNote = H->describe();
          return; // Rendering happens downstream, in fixed layer order.
        }
        timed(O.Analysis, [&] {
          validate::ValidationOptions VO = MakeVOpts();
          std::optional<guard::Budget> B;
          if (VO.LayerTimeoutMs)
            B.emplace(VO.LayerTimeoutMs, /*StepLimit=*/0);
          O.AReport = analysis::analyzeProgram(
              O.Compiled.Fn, O.Def->Spec, O.Def->Model,
              O.Def->Hints.EntryFacts, B ? &*B : nullptr);
          O.AnalysisWarnings = O.AReport.numWarnings();
          O.Analysis.Ok = !O.AReport.hasErrors();
          O.Analysis.Degraded = O.AReport.BudgetExhausted;
          for (const analysis::Diagnostic &D : O.AReport.Diags)
            O.AnalysisDiags +=
                (O.AnalysisDiags.empty() ? "" : "\n") + D.str();
        });
      }, {JCompile}));

    if (Opts.Tv)
      StaticJobs.push_back(Jobs[I].Tv = G.add(P->Name + "/tv",
                                              [&O, MakeVOpts] {
        if (!O.CompileOk || O.CacheHit)
          return;
        if (auto H = fault::fireWithRetry(fault::Site::LayerEntry,
                                          O.Def->Name + "/tv")) {
          O.Tv.Ran = true;
          O.Tv.Ok = false;
          O.Tv.Degraded = true;
          O.Tv.FaultNote = H->describe();
          return; // Rendering happens downstream, in fixed layer order.
        }
        timed(O.Tv, [&] {
          validate::ValidationOptions VO = MakeVOpts();
          std::optional<guard::Budget> B;
          if (VO.LayerTimeoutMs || VO.TvStepBudget)
            B.emplace(VO.LayerTimeoutMs, VO.TvStepBudget);
          O.TvRep = tv::validateTranslation(
              O.Def->Model, O.Def->Spec, O.Compiled.Fn,
              O.Def->Hints.EntryFacts, B ? &*B : nullptr);
          // Budget exhaustion surfaces as Inconclusive: Ok (the fragment
          // gate is deliberate) but Degraded — never cached, and the
          // differential layer still runs and carries the certification.
          O.Tv.Ok = !O.TvRep.refuted();
          O.Tv.Degraded = O.TvRep.BudgetExhausted;
          O.TvVerdictName = tv::verdictName(O.TvRep.TheVerdict);
          O.TvLoops = O.TvRep.Loops.size();
          O.TvTerms = O.TvRep.NumTerms;
          // The certificate JSON is assembled downstream in the certify
          // job, where the codelint layer's record (if any) can be merged
          // in as the optional "codelint" section.
        });
      }, {JCompile}));

    if (Opts.Codelint)
      StaticJobs.push_back(Jobs[I].Codelint =
                               G.add(P->Name + "/codelint", [&O, MakeVOpts] {
        if (!O.CompileOk || O.CacheHit)
          return;
        if (auto H = fault::fireWithRetry(fault::Site::CodelintEntry,
                                          O.Def->Name + "/codelint")) {
          O.Codelint.Ran = true;
          O.Codelint.Ok = false;
          O.Codelint.Degraded = true;
          O.Codelint.FaultNote = H->describe();
          return; // Rendering happens downstream, in fixed layer order.
        }
        timed(O.Codelint, [&] {
          validate::ValidationOptions VO = MakeVOpts();
          std::optional<guard::Budget> B;
          if (VO.LayerTimeoutMs)
            B.emplace(VO.LayerTimeoutMs, /*StepLimit=*/0);
          O.ClReport = codelint::analyzeFunction(
              O.Compiled.Fn, O.Def->Spec, O.Def->Model,
              O.Def->Hints.EntryFacts, B ? &*B : nullptr);
          O.CodelintVerdictName =
              codelint::verdictName(O.ClReport.overall());
          // The pipeline gate is refutation-shaped: only a demonstrated
          // violation (Unsafe) fails certification. Unknown passes here —
          // the strict all-Safe gate is relc-lint --code.
          O.Codelint.Ok =
              O.ClReport.overall() != codelint::Verdict::Unsafe;
          O.Codelint.Degraded = O.ClReport.BudgetExhausted;
        });
      }, {JCompile}));

    //--- Differential certification: after every static layer passed.
    std::vector<JobId> DiffDeps = StaticJobs;
    DiffDeps.insert(DiffDeps.begin(), JCompile);
    JobId JDiff = NoJob;
    if (Opts.Validate)
      JDiff = Jobs[I].Diff = G.add(P->Name + "/differential",
                                   [&O, MakeVOpts] {
        if (!O.CompileOk || O.CacheHit)
          return;
        // Match serial validate(): differential runs only when every
        // enabled static layer passed. Error reporting keeps the fixed
        // layer order (replay > analysis > tv), so an analysis failure
        // that raced ahead of a replay failure never wins. A layer that
        // was fault-degraded at entry renders its FaultNote here instead
        // of a nonsensical rejection of an empty report.
        if (O.Replay.Enabled && !O.Replay.Ok)
          return;
        if (O.Analysis.Enabled && !O.Analysis.Ok) {
          if (O.ValidationError.empty()) {
            if (!O.Analysis.FaultNote.empty())
              O.ValidationError =
                  Error(O.Analysis.FaultNote)
                      .note("static analysis did not run")
                      .note("while validating program " + O.Def->Name)
                      .str();
            else
              O.ValidationError =
                  validate::analysisRejection(O.Compiled.Fn.Name, O.AReport)
                      .note("static analysis rejected the target")
                      .note("while validating program " + O.Def->Name)
                      .str();
          }
          return;
        }
        if (O.Tv.Enabled && !O.Tv.Ok) {
          if (O.ValidationError.empty()) {
            if (!O.Tv.FaultNote.empty())
              O.ValidationError =
                  Error(O.Tv.FaultNote)
                      .note("translation validation did not run")
                      .note("while validating program " + O.Def->Name)
                      .str();
            else
              O.ValidationError =
                  validate::tvRejection(O.TvRep)
                      .note("translation validation rejected the target")
                      .note("while validating program " + O.Def->Name)
                      .str();
          }
          return;
        }
        if (O.Codelint.Enabled && !O.Codelint.Ok) {
          if (O.ValidationError.empty()) {
            if (!O.Codelint.FaultNote.empty())
              O.ValidationError =
                  Error(O.Codelint.FaultNote)
                      .note("codelint did not run")
                      .note("while validating program " + O.Def->Name)
                      .str();
            else
              O.ValidationError =
                  Error(codelintRejection(O.ClReport))
                      .note("codelint rejected the emitted code")
                      .note("while validating program " + O.Def->Name)
                      .str();
          }
          return;
        }
        if (auto H = fault::fireWithRetry(fault::Site::LayerEntry,
                                          O.Def->Name + "/differential")) {
          O.Diff.Ran = true;
          O.Diff.Ok = false;
          O.Diff.Degraded = true;
          O.Diff.FaultNote = H->describe();
          if (O.ValidationError.empty())
            O.ValidationError =
                Error(H->describe())
                    .note("differential certification did not run")
                    .note("while validating program " + O.Def->Name)
                    .str();
          return;
        }
        timed(O.Diff, [&] {
          bool DiffBudgetOut = false;
          Status S = validate::differentialCertify(O.Def->Model, O.Def->Spec,
                                                   O.Compiled, O.Linked,
                                                   MakeVOpts(),
                                                   &DiffBudgetOut);
          O.Diff.Ok = bool(S);
          O.Diff.Degraded = DiffBudgetOut;
          if (!S && O.ValidationError.empty())
            O.ValidationError =
                S.takeError()
                    .note("differential certification failed")
                    .note("while validating program " + O.Def->Name)
                    .str();
        });
      }, DiffDeps);

    //--- Certificate store + per-program wrap-up.
    std::vector<JobId> FinishDeps = DiffDeps;
    if (JDiff != NoJob)
      FinishDeps.push_back(JDiff);
    Jobs[I].Certify = G.add(P->Name + "/certify", [&O, &CS, &Cache, &Opts] {
      // Assemble the certificate JSON from the live TV report, merging the
      // codelint layer's record as the optional "codelint" section. The
      // section is embedded only when the layer ran to completion
      // un-degraded (no entry fault, no budget exhaustion): relc-check
      // re-derives it *unbudgeted*, and a budgeted run that finished is
      // guaranteed to equal the unbudgeted one — a truncated run is not.
      if (O.CompileOk && !O.CacheHit && O.Tv.Enabled && O.Tv.Ran &&
          O.Tv.FaultNote.empty()) {
        cert::Certificate C = cert::fromTvReport(
            O.TvRep, {O.Key.ModelHash, O.Key.SpecHash, O.Key.CodeHash});
        if (O.Codelint.Enabled && O.Codelint.Ran && !O.Codelint.Degraded &&
            O.Codelint.FaultNote.empty())
          C.Codelint = cert::codelintRecOf(O.ClReport);
        O.TvCertJson = cert::Writer::write(C);
        O.TvCertBin = cert::BinWriter::write(C);
      }
      // Render the non-validate failure texts (analysis/tv/codelint
      // rejections when layer 4 is disabled and never got to render them).
      if (O.CompileOk && !O.CacheHit && O.ValidationError.empty()) {
        if (O.Analysis.Enabled && O.Analysis.Ran && !O.Analysis.Ok) {
          if (!O.Analysis.FaultNote.empty())
            O.ValidationError = Error(O.Analysis.FaultNote)
                                    .note("static analysis did not run")
                                    .str();
          else
            O.ValidationError =
                validate::analysisRejection(O.Compiled.Fn.Name, O.AReport)
                    .str();
        } else if (O.Tv.Enabled && O.Tv.Ran && !O.Tv.Ok) {
          if (!O.Tv.FaultNote.empty())
            O.ValidationError = Error(O.Tv.FaultNote)
                                    .note("translation validation did not run")
                                    .str();
          else
            O.ValidationError = validate::tvRejection(O.TvRep).str();
        } else if (O.Codelint.Enabled && O.Codelint.Ran && !O.Codelint.Ok) {
          if (!O.Codelint.FaultNote.empty())
            O.ValidationError = Error(O.Codelint.FaultNote)
                                    .note("codelint did not run")
                                    .str();
          else
            O.ValidationError =
                Error(codelintRejection(O.ClReport))
                    .note("codelint rejected the emitted code")
                    .str();
        }
      }
      // Degraded outcomes are never cached: a budget-truncated or
      // fault-shadowed verdict must be re-derived at full strength before
      // it can be reused (§4.7).
      if (!Cache.enabled() || O.CacheHit || !O.ok() || O.anyDegraded())
        return;
      CertEntry E;
      E.Program = O.Def->Name;
      E.OptsHash = O.OptsHash;
      E.ReplayOk = O.Replay.Enabled && O.Replay.Ok;
      E.AnalysisOk = O.Analysis.Enabled && O.Analysis.Ok;
      E.AnalysisWarnings = O.AnalysisWarnings;
      E.AnalysisDiags = O.AnalysisDiags;
      E.TvRan = O.Tv.Enabled;
      E.TvVerdict = O.TvVerdictName;
      E.TvLoops = O.TvLoops;
      E.TvTerms = O.TvTerms;
      E.TvCertificate = O.TvCertJson;
      E.TvCertBin = O.TvCertBin;
      E.CodelintRan = O.Codelint.Enabled;
      E.CodelintVerdict = O.CodelintVerdictName;
      E.DifferentialOk = O.Diff.Enabled && O.Diff.Ok;
      Status S = Cache.store(O.Key, E, &CS);
      // Failure to persist is not a certification failure — the verdict
      // stands — but callers (relc-gen) surface the first one as a named
      // cache-dir-unwritable warning so a misconfigured cache directory is
      // not silently re-certifying everything forever.
      if (!S)
        O.CacheStoreError = S.takeError().str();
    }, FinishDeps);
  }

  Status Run = G.run(Opts.Jobs);
  (void)Run; // Jobs capture all failures in their outcome slots.

  // Map scheduler-level problems — a job that threw (genuinely or via an
  // injected sched-job fault) or was skipped downstream of one — onto
  // named degraded outcomes, in fixed layer order so serial and parallel
  // runs render identically. Without this, a dead job would leave its
  // layer looking "never enabled" and the program would fail with no
  // explanation at all.
  auto Problem = [&G](JobId J) -> std::optional<std::string> {
    if (J == NoJob)
      return std::nullopt;
    if (G.state(J) == JobState::Threw)
      return "did not complete: " + G.errorOf(J);
    if (G.state(J) == JobState::NotRun)
      return "was skipped (an upstream job failed)";
    return std::nullopt;
  };
  for (size_t I = 0; I < Progs.size(); ++I) {
    ProgramOutcome &O = Out[I];
    const ProgJobs &PJ = Jobs[I];
    if (auto W = Problem(PJ.Compile)) {
      O.CompileOk = false;
      O.CompileDegraded = true;
      if (O.CompileError.empty())
        O.CompileError = "compile job " + *W;
    }
    struct LayerJob {
      JobId J;
      LayerRun *L;
      const char *What;
    };
    for (const LayerJob &LJ :
         {LayerJob{PJ.Replay, &O.Replay, "derivation replay"},
          LayerJob{PJ.Analysis, &O.Analysis, "static analysis"},
          LayerJob{PJ.Tv, &O.Tv, "translation validation"},
          LayerJob{PJ.Codelint, &O.Codelint, "codelint"},
          LayerJob{PJ.Diff, &O.Diff, "differential certification"}}) {
      auto W = Problem(LJ.J);
      if (!W)
        continue;
      LJ.L->Degraded = true;
      LJ.L->Ok = false;
      if (LJ.L->FaultNote.empty())
        LJ.L->FaultNote = std::string(LJ.What) + " job " + *W;
      if (O.CompileOk && !O.CacheHit && O.ValidationError.empty())
        O.ValidationError = Error(LJ.L->FaultNote)
                                .note("while validating program " +
                                      O.Def->Name)
                                .str();
    }
    if (auto W = Problem(PJ.Certify))
      O.DegradedNote = "certify job " + *W;
  }

  if (Stats) {
    Stats->Programs += unsigned(Progs.size());
    for (size_t I = 0; I < Progs.size(); ++I) {
      Stats->Cache.Hits += PerProgramCache[I].Hits;
      Stats->Cache.Misses += PerProgramCache[I].Misses;
      Stats->Cache.Stores += PerProgramCache[I].Stores;
      Stats->Cache.CorruptDiscarded += PerProgramCache[I].CorruptDiscarded;
      Stats->Cache.BinHits += PerProgramCache[I].BinHits;
      if (!Out[I].ok())
        ++Stats->Failures;
    }
  }
  return Out;
}

} // namespace pipeline
} // namespace relc
