//===- tests/analysis/SuiteCleanTest.cpp - Table 2 programs are clean -----===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Every benchmark program the compiler produces must analyze clean: zero
// errors and zero warnings. This is the suite-level soundness/precision
// check — the analyzer is strong enough to justify every bounds check the
// compiler discharged, and the compiler emits no dead or unreachable code.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

class SuiteCleanTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteCleanTest, AnalyzesWithZeroDiagnostics) {
  const programs::ProgramDef *P = programs::findProgram(GetParam());
  ASSERT_NE(P, nullptr);

  // Compile only — validation would itself run the analyzer; this test
  // wants the raw report.
  Result<programs::CompiledProgram> C =
      programs::compileAndValidate(*P, /*RunValidation=*/false);
  ASSERT_TRUE(bool(C)) << (C ? "" : C.error().str());

  analysis::AnalysisReport R = analysis::analyzeProgram(
      C->Result.Fn, P->Spec, P->Model, P->Hints.EntryFacts);
  EXPECT_TRUE(R.Diags.empty()) << R.str();
  EXPECT_FALSE(R.hasErrors());
  EXPECT_EQ(R.numWarnings(), 0u);

  // The report reflects a real run: the symbolic fixpoint visited blocks,
  // and the function was not trivially empty.
  EXPECT_GT(R.NumBlocks, 0u);
  EXPECT_GT(R.NumStmts, 0u);
  EXPECT_GT(R.SymIterations, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, SuiteCleanTest,
                         ::testing::Values("fnv1a", "utf8", "upstr", "m3s",
                                           "ip", "fasta", "crc32"),
                         [](const auto &Info) { return Info.param; });

} // namespace
