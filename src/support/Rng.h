//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// SplitMix64: a tiny, fast, seedable generator. Used for differential-test
// vector generation and workload synthesis; determinism matters so that
// validation failures are reproducible from the seed alone.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_RNG_H
#define RELC_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relc {

class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Next 64 uniformly distributed bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). Bound must be nonzero. Uses rejection-free
  /// modulo; bias is irrelevant for test-vector generation.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    return Lo + below(Hi - Lo + 1);
  }

  uint8_t nextByte() { return static_cast<uint8_t>(next()); }

  bool nextBool() { return (next() & 1) != 0; }

  /// A vector of \p N random bytes.
  std::vector<uint8_t> bytes(std::size_t N) {
    std::vector<uint8_t> Out(N);
    for (std::size_t I = 0; I < N; ++I)
      Out[I] = nextByte();
    return Out;
  }

  /// A vector of \p N bytes drawn from \p Alphabet (used e.g. for DNA and
  /// ASCII workloads).
  std::vector<uint8_t> bytesFrom(std::size_t N, const std::vector<uint8_t> &Alphabet) {
    std::vector<uint8_t> Out(N);
    for (std::size_t I = 0; I < N; ++I)
      Out[I] = Alphabet[below(Alphabet.size())];
    return Out;
  }

private:
  uint64_t State;
};

} // namespace relc

#endif // RELC_SUPPORT_RNG_H
