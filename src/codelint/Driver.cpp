//===- codelint/Driver.cpp - Codelint driver over the suite ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "codelint/Driver.h"

namespace relc {
namespace codelint {

ProgramLint lintProgram(const programs::ProgramDef &P,
                        const guard::Budget *Budget) {
  ProgramLint L;
  L.Name = P.Name;
  Result<programs::CompiledProgram> C =
      programs::compileAndValidate(P, /*RunValidation=*/false);
  if (!C) {
    L.CompileError = C.error().str();
    return L;
  }
  L.CompileOk = true;
  L.R = analyzeFunction(C->Result.Fn, P.Spec, P.Model, P.Hints.EntryFacts,
                        Budget);
  return L;
}

std::vector<ProgramLint> lintSuite(const guard::Budget *Budget) {
  std::vector<ProgramLint> Out;
  for (const programs::ProgramDef &P : programs::allPrograms())
    Out.push_back(lintProgram(P, Budget));
  return Out;
}

std::vector<ProgramLint> lintStackExamples() {
  using namespace stackm;
  std::vector<ProgramLint> Out;
  SExprPtr Demo = sAdd(sInt(3), sMul(sInt(4), sAdd(sInt(5), sInt(6))));

  auto AddExample = [&](const std::string &Name, Result<TProgram> P) {
    ProgramLint L;
    L.Name = Name;
    if (!P) {
      L.CompileError = P.error().str();
    } else {
      L.CompileOk = true;
      L.R = analyzeStackProgram(*P);
    }
    Out.push_back(std::move(L));
  };

  // The traditional verified compiler (§2.1) on its base fragment.
  AddExample("stackm-traditional", compileStoT(*sAdd(sInt(3), sInt(4))));

  // The relational compiler (§2.2–2.3) with the extension rules.
  SRuleSet Rules = SRuleSet::base();
  Rules.add(makeMulRule());
  Result<CompiledS> R = compileRelational(Rules, Demo);
  AddExample("stackm-relational",
             R ? Result<TProgram>(R->Program)
               : Result<TProgram>(R.takeError()));

  // Constant folding as a prioritized rewrite rule.
  SRuleSet Folding = SRuleSet::base();
  Folding.add(makeMulRule());
  Folding.addFront(makeConstFoldRule());
  Result<CompiledS> F = compileRelational(Folding, Demo);
  AddExample("stackm-constfold",
             F ? Result<TProgram>(F->Program)
               : Result<TProgram>(F.takeError()));
  return Out;
}

std::string renderLint(const ProgramLint &L) {
  if (!L.CompileOk)
    return "[" + L.Name + "] codelint: compile failed\n" + L.CompileError +
           "\n";
  std::string Out = "[" + L.Name + "] " + L.R.str();
  return Out;
}

} // namespace codelint
} // namespace relc
