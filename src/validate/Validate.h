//===- validate/Validate.h - Derivation replay + certification --*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The trusted checker of the pipeline — the stand-in for Coq's kernel
// accepting the generated proof term. The paper itself notes that Rupicola
// can be classified as a translation-validation system (§5); this module
// *is* that validator, in three layers:
//
//  1. Derivation replay: structural checks over the witness — every rule
//     name must be in the trusted schema set, the emitted target function
//     must be statically well formed, and every array / inline-table
//     access in the source must have a recorded, solver-checked bounds
//     side condition in the derivation (tampered witnesses are rejected;
//     the failure-injection tests exercise this).
//
//  2. Static analysis of the generated code (relc::analysis): dataflow
//     verification that every load/store is within the sep-logic frame
//     the ABI grants, no local is read uninitialized, and the code is
//     free of dead stores and unreachable branches. Unlike layer 4 this
//     covers *all* inputs, not a sampled battery.
//
//  3. Translation validation (relc::tv): symbolic evaluation of model and
//     generated code into one normalizing term graph, with loops matched
//     as summarized folds. A Refuted verdict — the two sides provably
//     compute different outputs — rejects the compilation outright, with
//     the offending source binding and target statement path named. An
//     Inconclusive verdict (program outside the validated fragment, e.g.
//     effectful monads) is not a failure; certification then rests on
//     the other layers. Proved covers functional correctness for *all*
//     inputs, which neither layer 2 (safety only) nor layer 4 (sampled)
//     establishes.
//
//  4. Differential certification against the ABI: for a battery of
//     structured and random input vectors, run the model under the
//     FunLang reference semantics and the compiled function under the
//     Bedrock2 semantics, and check the fnspec's ensures clause — scalar
//     returns, in-place array/cell results, frame preservation of
//     read-only arguments *and* of unrelated memory (a canary region),
//     trace correspondence per the model's monad, and absence of leaked
//     allocations. Nondet models check a caller-supplied ensures
//     predicate instead of value equality (the paper's λ l ⇒ length l = n
//     style of spec).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_VALIDATE_VALIDATE_H
#define RELC_VALIDATE_VALIDATE_H

#include "analysis/Analysis.h"
#include "bedrock/Interp.h"
#include "core/Compiler.h"
#include "ir/Interp.h"
#include "sep/Spec.h"
#include "support/Result.h"
#include "tv/Tv.h"

#include <functional>
#include <map>

namespace relc {
namespace validate {

/// Target-side observations handed to ensures predicates.
struct TargetOutputs {
  std::vector<uint64_t> Rets;
  std::map<std::string, std::vector<uint8_t>> FinalArrays; ///< Raw bytes per
                                                           ///< list param.
  std::map<std::string, uint64_t> FinalCells;
  bedrock::Trace Tr;
};

/// For nondeterministic models: the ensures clause as a predicate over the
/// inputs and whatever the target produced.
using EnsuresCheck =
    std::function<Status(const std::vector<ir::Value> &Inputs,
                         const TargetOutputs &Out)>;

/// Generates the input values for one vector; overridable per program for
/// workload-shaped inputs. \p SizeHint suggests list lengths.
using InputGen =
    std::function<std::vector<ir::Value>(const ir::SourceFn &, Rng &,
                                         size_t SizeHint)>;

struct ValidationOptions {
  unsigned VectorsPerSize = 3;
  std::vector<size_t> Sizes = {0, 1, 2, 3, 5, 8, 16, 31, 64, 255, 999};
  uint64_t Seed = 0xc0ffee;
  InputGen MakeInputs;          ///< Defaults to uniform random inputs.
  EnsuresCheck NondetEnsures;   ///< Required for nondet models.
  /// Word models of external callees, used to give the source semantics of
  /// ExternCall bindings: callee name -> its SourceFn.
  std::map<std::string, const ir::SourceFn *> CalleeModels;
  /// The hints the program was compiled with; analyzeTarget re-applies
  /// them so the static analyzer sees the same entry facts the compiler
  /// assumed (e.g. a minimum buffer length).
  core::CompileHints Hints;
  /// Run the symbolic translation validator (layer 3). On by default; a
  /// Refuted verdict fails validation, Inconclusive does not.
  bool RunTv = true;
  /// Scheduler width for the certification layers. With Jobs == 1 (the
  /// default) the layers run inline in the fixed serial order; with more,
  /// replay / analysis / tv execute concurrently on the job-graph
  /// scheduler (they are independent once code is emitted) and
  /// differential certification runs after all of them. Verdicts and
  /// diagnostics are identical either way: failures are reported in the
  /// fixed layer order, not completion order.
  unsigned Jobs = 1;

  //===------------------------------------------------------------------===//
  // Robustness guards (DESIGN.md §4.7). Exhaustion of any of these maps
  // only to a *refusal* — an Inconclusive verdict, an analysis error, or a
  // differential failure naming the budget — never to a wrong accept.
  //===------------------------------------------------------------------===//

  /// Wall-clock deadline, in milliseconds, for each certification layer
  /// (analysis, tv, and the differential vector loop each get their own
  /// fresh deadline). 0 = unlimited.
  unsigned LayerTimeoutMs = 0;
  /// Step budget for the symbolic validator: caps term-graph interning plus
  /// bijection-search nodes. 0 = unlimited.
  uint64_t TvStepBudget = 0;
  /// Override for the Bedrock2 interpreter's fuel during differential
  /// certification. 0 = the interpreter default.
  uint64_t InterpFuel = 0;
};

/// Layer 1: replays the derivation witness. Independent of the search
/// driver; rejects unknown rules and missing side conditions.
Status replayDerivation(const ir::SourceFn &Fn,
                        const core::CompileResult &Compiled);

/// Layer 2: static certification of the generated code itself. Runs the
/// relc::analysis dataflow verifier (initialization, intervals, symbolic
/// bounds against the sep-logic frame) over the compiled function and
/// rejects it on any analysis *error*: unprovable bounds, a potentially
/// uninitialized read, or non-convergence. Warnings (dead stores,
/// unreachable code) do not fail certification — they can be faithful
/// images of a model's own dead lets or decided branches.
Status analyzeTarget(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
                     const core::CompileResult &Compiled,
                     const ValidationOptions &Opts = {});

/// Layer 3: symbolic translation validation (relc::tv). Returns failure
/// only on a *refuted* equivalence — a statically proven miscompilation.
/// Inconclusive verdicts succeed (the fragment gate is deliberate; the
/// sampled layer still runs). The full report, including the equivalence
/// certificate, is available through tv::validateTranslation directly.
Status translationValidate(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
                           const core::CompileResult &Compiled,
                           const ValidationOptions &Opts = {});

/// Layer 4: differential certification of \p Compiled (linked against
/// \p Linked, which must contain every external callee) against \p Fn's
/// reference semantics under ABI \p Spec.
///
/// With Opts.LayerTimeoutMs set, the vector loop checks a deadline between
/// vectors; exceeding it fails with a diagnostic naming the budget and how
/// many vectors completed, and sets *\p BudgetExhausted (when non-null) so
/// the pipeline can classify the failure as Degraded rather than genuine.
/// The same flag is set when a vector fails because an injected fault
/// (relc::fault interp-fuel) starved the interpreter: the diagnostic names
/// the injection and the outcome is degraded, not a genuine divergence.
Status differentialCertify(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
                           const core::CompileResult &Compiled,
                           const bedrock::Module &Linked,
                           const ValidationOptions &Opts = {},
                           bool *BudgetExhausted = nullptr);

/// All layers: replay, static analysis, translation validation,
/// differential testing.
Status validate(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
                const core::CompileResult &Compiled,
                const bedrock::Module &Linked,
                const ValidationOptions &Opts = {});

/// Default input generator: random bytes/words sized by the hint.
std::vector<ir::Value> defaultInputs(const ir::SourceFn &Fn, Rng &R,
                                     size_t SizeHint);

/// Renders the layer-2 rejection for an analysis report with errors.
/// Shared by analyzeTarget and the parallel pipeline (pipeline/Pipeline.h)
/// so serial and parallel runs print byte-identical diagnostics.
Error analysisRejection(const std::string &TargetName,
                        const analysis::AnalysisReport &Report);

/// Renders the layer-3 rejection for a refuted translation validation.
Error tvRejection(const tv::TvReport &Rep);

} // namespace validate
} // namespace relc

#endif // RELC_VALIDATE_VALIDATE_H
