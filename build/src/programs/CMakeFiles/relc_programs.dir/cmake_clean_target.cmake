file(REMOVE_RECURSE
  "librelc_programs.a"
)
