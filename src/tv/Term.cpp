//===- tv/Term.cpp - Hash-consed term graph + normalization ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "tv/Term.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>

namespace relc {
namespace tv {

using bedrock::BinOp;

namespace {

bool isCommutative(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
  case BinOp::Mul:
  case BinOp::And:
  case BinOp::Or:
  case BinOp::Xor:
  case BinOp::Eq:
  case BinOp::Ne:
    return true;
  default:
    return false;
  }
}

/// Highest set bit of \p V, as an all-ones mask covering it (0 -> 0).
uint64_t onesCover(uint64_t V) {
  uint64_t M = V;
  M |= M >> 1;
  M |= M >> 2;
  M |= M >> 4;
  M |= M >> 8;
  M |= M >> 16;
  M |= M >> 32;
  return M;
}

bool isPow2Mask(uint64_t M) { return M != 0 && ((M + 1) & M) == 0; }

} // namespace

TermGraph::TermGraph() { Nodes.reserve(256); }

//===----------------------------------------------------------------------===//
// Interning.
//===----------------------------------------------------------------------===//

uint64_t TermGraph::hashNode(const TermNode &N) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ull;
    H ^= H >> 29;
  };
  Mix(uint64_t(N.K));
  Mix(N.W);
  Mix(N.A);
  for (char C : N.Name)
    Mix(uint8_t(C));
  Mix(N.Name.size());
  for (TermId Op : N.Ops)
    Mix(uint64_t(Op) * 0x9e3779b97f4a7c15ull + 1);
  return H;
}

bool TermGraph::sameNode(const TermNode &A, const TermNode &B) const {
  return A.K == B.K && A.W == B.W && A.A == B.A && A.Name == B.Name &&
         A.Ops == B.Ops;
}

TermId TermGraph::intern(TermNode N) {
  // Every normalizing constructor funnels through here, so this one check
  // bounds the whole normalization engine (guard::Budget's step is a
  // relaxed fetch_add — negligible next to the hashing below).
  if (TheBudget)
    TheBudget->stepOrThrow();
  N.Hash = hashNode(N);
  auto It = Interned.find(N.Hash);
  if (It != Interned.end())
    for (TermId Cand : It->second)
      if (sameNode(Nodes[Cand], N))
        return Cand;
  TermId Id = TermId(Nodes.size());
  Interned[N.Hash].push_back(Id);
  Nodes.push_back(std::move(N));
  return Id;
}

//===----------------------------------------------------------------------===//
// Leaf constructors.
//===----------------------------------------------------------------------===//

TermId TermGraph::constant(uint64_t V) {
  TermNode N;
  N.K = TermKind::Const;
  N.A = V;
  return intern(std::move(N));
}

TermId TermGraph::sym(const std::string &Name) {
  TermNode N;
  N.K = TermKind::Sym;
  N.Name = Name;
  return intern(std::move(N));
}

TermId TermGraph::arrInit(const std::string &Region, unsigned EltBytes) {
  TermNode N;
  N.K = TermKind::ArrInit;
  N.Name = Region;
  N.W = uint8_t(EltBytes);
  return intern(std::move(N));
}

TermId TermGraph::arrHavoc(const std::string &Sym, unsigned EltBytes) {
  TermNode N;
  N.K = TermKind::ArrHavoc;
  N.Name = Sym;
  N.W = uint8_t(EltBytes);
  return intern(std::move(N));
}

std::optional<uint64_t> TermGraph::asConst(TermId T) const {
  const TermNode &N = Nodes[T];
  if (N.K == TermKind::Const)
    return N.A;
  return std::nullopt;
}

unsigned TermGraph::eltBytesOf(TermId Arr) const {
  const TermNode &N = Nodes[Arr];
  switch (N.K) {
  case TermKind::ArrInit:
  case TermKind::ArrHavoc:
    return N.W;
  case TermKind::ArrStore:
  case TermKind::FoldOutArr:
    return N.W;
  case TermKind::ArrSelect:
    return eltBytesOf(N.Ops[1]);
  default:
    return 8; // Unknown array-ish term; widest (no masking).
  }
}

const FoldInfo &TermGraph::foldInfo(TermId Fold) const {
  auto It = Folds.find(Fold);
  assert(It != Folds.end() && "not a Fold node");
  return It->second;
}

//===----------------------------------------------------------------------===//
// Affine canonicalization.
//===----------------------------------------------------------------------===//

AffineView TermGraph::affine(TermId T) const {
  AffineView V;
  // Iterative worklist over the +/-/scale spine; atoms stop the recursion.
  struct Item {
    TermId T;
    uint64_t Scale;
  };
  std::vector<Item> Work{{T, 1}};
  auto AddAtom = [&V](TermId A, uint64_t C) {
    uint64_t &Slot = V.Coeffs[A];
    Slot += C;
    if (Slot == 0)
      V.Coeffs.erase(A);
  };
  while (!Work.empty()) {
    Item I = Work.back();
    Work.pop_back();
    if (I.Scale == 0)
      continue;
    const TermNode &N = Nodes[I.T];
    if (N.K == TermKind::Const) {
      V.K += N.A * I.Scale;
      continue;
    }
    if (N.K == TermKind::Bin) {
      BinOp Op = BinOp(N.A);
      if (Op == BinOp::Add) {
        Work.push_back({N.Ops[0], I.Scale});
        Work.push_back({N.Ops[1], I.Scale});
        continue;
      }
      if (Op == BinOp::Sub) {
        Work.push_back({N.Ops[0], I.Scale});
        Work.push_back({N.Ops[1], uint64_t(0) - I.Scale});
        continue;
      }
      if (Op == BinOp::Mul) {
        if (auto C = asConst(N.Ops[1])) {
          Work.push_back({N.Ops[0], I.Scale * *C});
          continue;
        }
        if (auto C = asConst(N.Ops[0])) {
          Work.push_back({N.Ops[1], I.Scale * *C});
          continue;
        }
      }
      if (Op == BinOp::Shl) {
        if (auto C = asConst(N.Ops[1])) {
          // Shift amounts are taken mod 64 by the word semantics.
          Work.push_back({N.Ops[0], I.Scale << (*C & 63)});
          continue;
        }
      }
    }
    AddAtom(I.T, I.Scale);
  }
  return V;
}

TermId TermGraph::fromAffine(const AffineView &V) {
  if (V.Coeffs.empty())
    return constant(V.K);
  TermId Acc = NoTerm;
  // Atoms in id order: deterministic per graph, and substitute() rebuilds
  // through here so renamed terms re-canonicalize.
  for (const auto &[Atom, Coeff] : V.Coeffs) {
    TermId Piece =
        Coeff == 1 ? Atom : rawBin(BinOp::Mul, Atom, constant(Coeff));
    Acc = Acc == NoTerm ? Piece : rawBin(BinOp::Add, Acc, Piece);
  }
  if (V.K != 0)
    Acc = rawBin(BinOp::Add, Acc, constant(V.K));
  return Acc;
}

TermId TermGraph::rawBin(BinOp Op, TermId L, TermId R) {
  TermNode N;
  N.K = TermKind::Bin;
  N.A = uint64_t(Op);
  N.Ops = {L, R};
  return intern(std::move(N));
}

//===----------------------------------------------------------------------===//
// Scalar constructors.
//===----------------------------------------------------------------------===//

TermId TermGraph::bin(BinOp Op, TermId L, TermId R) {
  auto CL = asConst(L), CR = asConst(R);
  if (CL && CR)
    return constant(bedrock::evalBinOp(Op, *CL, *CR));

  switch (Op) {
  case BinOp::Add:
  case BinOp::Sub: {
    AffineView A = affine(L);
    AffineView B = affine(R);
    AffineView Out;
    Out.Coeffs = std::move(A.Coeffs);
    Out.K = A.K;
    uint64_t Sign = Op == BinOp::Add ? 1 : uint64_t(0) - 1;
    for (const auto &[Atom, C] : B.Coeffs) {
      uint64_t &Slot = Out.Coeffs[Atom];
      Slot += Sign * C;
      if (Slot == 0)
        Out.Coeffs.erase(Atom);
    }
    Out.K += Sign * B.K;
    return fromAffine(Out);
  }
  case BinOp::Mul:
    if (CL || CR) {
      uint64_t C = CL ? *CL : *CR;
      TermId X = CL ? R : L;
      if (C == 0)
        return constant(0);
      AffineView A = affine(X);
      for (auto &[Atom, Coeff] : A.Coeffs)
        Coeff *= C;
      // Scaling cannot create new zero coefficients collisions (each key
      // scaled in place), but it can zero one (C even, coeff = 2^63...):
      for (auto It = A.Coeffs.begin(); It != A.Coeffs.end();)
        It = It->second == 0 ? A.Coeffs.erase(It) : std::next(It);
      A.K *= C;
      return fromAffine(A);
    }
    break;
  case BinOp::Shl:
    if (CR)
      return bin(BinOp::Mul, L, constant(uint64_t(1) << (*CR & 63)));
    break;
  default:
    break;
  }
  return binNonAffine(Op, L, R);
}

TermId TermGraph::binNonAffine(BinOp Op, TermId L, TermId R) {
  auto CL = asConst(L), CR = asConst(R);

  switch (Op) {
  case BinOp::And: {
    if (L == R)
      return L;
    // Normalize the constant (if any) to the right.
    if (CL && !CR) {
      std::swap(L, R);
      std::swap(CL, CR);
    }
    if (CR) {
      uint64_t M = *CR;
      if (M == 0)
        return constant(0);
      if (M == ~uint64_t(0))
        return L;
      // Mask erasure: if the value provably fits under a 2^k - 1 mask,
      // the And is the identity. This is what cancels redundant w2b
      // truncations on either side.
      if (isPow2Mask(M)) {
        if (auto Ub = upperBound(L))
          if (*Ub <= M)
            return L;
      }
      // Mask merging: And(And(x, c1), c2) = And(x, c1 & c2).
      const TermNode &NL = Nodes[L];
      if (NL.K == TermKind::Bin && BinOp(NL.A) == BinOp::And)
        if (auto C1 = asConst(NL.Ops[1]))
          return bin(BinOp::And, NL.Ops[0], constant(*C1 & M));
    }
    break;
  }
  case BinOp::Or:
  case BinOp::Xor: {
    if (CL && !CR) {
      std::swap(L, R);
      std::swap(CL, CR);
    }
    if (CR && *CR == 0)
      return L;
    if (L == R)
      return Op == BinOp::Or ? L : constant(0);
    break;
  }
  case BinOp::Shl:
  case BinOp::LShr:
  case BinOp::AShr:
    if (CR && (*CR & 63) == 0)
      return L;
    break;
  case BinOp::Eq:
    if (L == R)
      return constant(1);
    break;
  case BinOp::Ne:
    if (L == R)
      return constant(0);
    break;
  case BinOp::LtU:
  case BinOp::LtS:
    if (L == R)
      return constant(0);
    break;
  default:
    break;
  }

  if (isCommutative(Op) && L > R)
    std::swap(L, R);
  return rawBin(Op, L, R);
}

TermId TermGraph::select(TermId C, TermId T, TermId E) {
  if (auto CC = asConst(C))
    return *CC ? T : E;
  if (T == E)
    return T;
  TermNode N;
  N.K = TermKind::Select;
  N.Ops = {C, T, E};
  return intern(std::move(N));
}

TermId TermGraph::elt(TermId Arr, TermId Idx) {
  const TermNode &N = Nodes[Arr];
  if (N.K == TermKind::ArrStore) {
    TermId SIdx = N.Ops[1];
    if (SIdx == Idx)
      return N.Ops[2]; // Store-to-load forwarding (masked at store time).
    auto CA = asConst(SIdx), CB = asConst(Idx);
    if (CA && CB && *CA != *CB)
      return elt(N.Ops[0], Idx); // Provably disjoint; look through.
    // Unknown aliasing: stay opaque (sound; both sides build this shape).
  }
  TermNode Out;
  Out.K = TermKind::Elt;
  Out.W = uint8_t(eltBytesOf(Arr));
  Out.Ops = {Arr, Idx};
  return intern(std::move(Out));
}

TermId TermGraph::tableElt(const std::string &Table, unsigned EltBytes,
                           uint64_t MaxElt, TermId Idx) {
  TermNode N;
  N.K = TermKind::TableElt;
  N.Name = Table;
  N.W = uint8_t(EltBytes);
  N.A = MaxElt;
  N.Ops = {Idx};
  return intern(std::move(N));
}

TermId TermGraph::arrStore(TermId Arr, TermId Idx, TermId Val) {
  unsigned W = eltBytesOf(Arr);
  if (W < 8)
    Val = bin(BinOp::And, Val, constant((uint64_t(1) << (8 * W)) - 1));
  // Store-store collapse at the same index.
  const TermNode &N = Nodes[Arr];
  if (N.K == TermKind::ArrStore && N.Ops[1] == Idx)
    Arr = N.Ops[0];
  TermNode Out;
  Out.K = TermKind::ArrStore;
  Out.W = uint8_t(W);
  Out.Ops = {Arr, Idx, Val};
  return intern(std::move(Out));
}

TermId TermGraph::arrSelect(TermId C, TermId T, TermId E) {
  if (auto CC = asConst(C))
    return *CC ? T : E;
  if (T == E)
    return T;
  TermNode N;
  N.K = TermKind::ArrSelect;
  N.W = uint8_t(eltBytesOf(T));
  N.Ops = {C, T, E};
  return intern(std::move(N));
}

//===----------------------------------------------------------------------===//
// Folds.
//===----------------------------------------------------------------------===//

TermId TermGraph::fold(FoldInfo Info) {
  assert(Info.Inits.size() == Info.NumCarried &&
         Info.Nexts.size() == Info.NumCarried && "malformed fold");
  std::sort(Info.Regions.begin(), Info.Regions.end(),
            [](const FoldRegion &A, const FoldRegion &B) {
              return A.Name < B.Name;
            });
  TermNode N;
  N.K = TermKind::Fold;
  N.A = Info.NumCarried;
  N.Ops.push_back(Info.Guard);
  N.Ops.insert(N.Ops.end(), Info.Inits.begin(), Info.Inits.end());
  N.Ops.insert(N.Ops.end(), Info.Nexts.begin(), Info.Nexts.end());
  for (const FoldRegion &R : Info.Regions) {
    N.Name += R.Name;
    N.Name += ',';
    N.Ops.push_back(R.Entry);
    N.Ops.push_back(R.Next);
  }
  TermId Id = intern(std::move(N));
  Folds.emplace(Id, std::move(Info));
  return Id;
}

TermId TermGraph::foldOut(TermId Fold, unsigned Pos) {
  TermNode N;
  N.K = TermKind::FoldOut;
  N.A = Pos;
  N.Ops = {Fold};
  return intern(std::move(N));
}

TermId TermGraph::foldOutArr(TermId Fold, const std::string &Region) {
  TermNode N;
  N.K = TermKind::FoldOutArr;
  N.Name = Region;
  for (const FoldRegion &R : foldInfo(Fold).Regions)
    if (R.Name == Region)
      N.W = uint8_t(eltBytesOf(R.Entry));
  N.Ops = {Fold};
  return intern(std::move(N));
}

//===----------------------------------------------------------------------===//
// Upper-bound oracle.
//===----------------------------------------------------------------------===//

std::optional<uint64_t> TermGraph::upperBound(TermId T) const {
  auto Memo = UbMemo.find(T);
  if (Memo != UbMemo.end())
    return Memo->second;
  UbMemo[T] = std::nullopt; // Cycle/diamond guard during recursion.

  const TermNode &N = Nodes[T];
  std::optional<uint64_t> Out;
  auto EltCap = [](unsigned W) -> std::optional<uint64_t> {
    return W >= 8 ? std::optional<uint64_t>() : (uint64_t(1) << (8 * W)) - 1;
  };
  switch (N.K) {
  case TermKind::Const:
    Out = N.A;
    break;
  case TermKind::Sym:
    if (EntryFacts) {
      if (auto B = EntryFacts->intervalUpperBound(solver::ls(N.Name)))
        if (*B >= 0)
          Out = uint64_t(*B);
    }
    break;
  case TermKind::Elt:
    Out = EltCap(N.W);
    break;
  case TermKind::TableElt: {
    Out = N.A;
    if (auto Cap = EltCap(N.W))
      Out = std::min(*Out, *Cap);
    break;
  }
  case TermKind::Select: {
    auto A = upperBound(N.Ops[1]);
    auto B = upperBound(N.Ops[2]);
    if (A && B)
      Out = std::max(*A, *B);
    break;
  }
  case TermKind::Bin: {
    BinOp Op = BinOp(N.A);
    auto UA = upperBound(N.Ops[0]);
    auto UB = upperBound(N.Ops[1]);
    auto CB = asConst(N.Ops[1]);
    switch (Op) {
    case BinOp::And:
      if (UA && UB)
        Out = std::min(*UA, *UB);
      else if (UA)
        Out = UA;
      else if (UB)
        Out = UB;
      break;
    case BinOp::Or:
    case BinOp::Xor:
      if (UA && UB) {
        uint64_t Cover = onesCover(*UA | *UB);
        Out = Cover;
      }
      break;
    case BinOp::Add:
      if (UA && UB && *UA + *UB >= *UA)
        Out = *UA + *UB;
      break;
    case BinOp::Mul:
      if (UA && UB && (*UA == 0 || *UB == 0))
        Out = 0;
      else if (UA && UB && *UB != 0 && *UA <= ~uint64_t(0) / *UB)
        Out = *UA * *UB;
      break;
    case BinOp::Shl:
      if (UA && CB) {
        uint64_t Sh = *CB & 63;
        if (Sh == 0 || *UA <= (~uint64_t(0) >> Sh))
          Out = *UA << Sh;
      }
      break;
    case BinOp::LShr:
      if (CB) {
        uint64_t Sh = *CB & 63;
        Out = UA ? (*UA >> Sh) : (~uint64_t(0) >> Sh);
      }
      break;
    case BinOp::DivU:
      if (UA && CB && *CB != 0)
        Out = *UA / *CB;
      break;
    case BinOp::RemU:
      if (CB && *CB != 0) {
        Out = *CB - 1;
        if (UA)
          Out = std::min(*Out, *UA);
      } else if (UA) {
        Out = UA; // rem-by-zero yields the dividend; never exceeds it.
      }
      break;
    case BinOp::LtU:
    case BinOp::LtS:
    case BinOp::Eq:
    case BinOp::Ne:
      Out = 1;
      break;
    default:
      break;
    }
    break;
  }
  default:
    break;
  }
  UbMemo[T] = Out;
  return Out;
}

//===----------------------------------------------------------------------===//
// Substitution / traversal.
//===----------------------------------------------------------------------===//

TermId TermGraph::substitute(TermId T,
                             const std::map<TermId, TermId> &Renaming) {
  std::map<TermId, TermId> Memo;
  // Explicit stack (post-order rebuild) to stay safe on deep store chains.
  std::function<TermId(TermId)> Go = [&](TermId X) -> TermId {
    auto It = Memo.find(X);
    if (It != Memo.end())
      return It->second;
    auto R = Renaming.find(X);
    if (R != Renaming.end()) {
      Memo[X] = R->second;
      return R->second;
    }
    const TermNode N = Nodes[X]; // Copy: Nodes may reallocate below.
    TermId Out = X;
    switch (N.K) {
    case TermKind::Const:
    case TermKind::Sym:
    case TermKind::ArrInit:
    case TermKind::ArrHavoc:
      Out = X;
      break;
    case TermKind::Bin:
      Out = bin(BinOp(N.A), Go(N.Ops[0]), Go(N.Ops[1]));
      break;
    case TermKind::Select:
      Out = select(Go(N.Ops[0]), Go(N.Ops[1]), Go(N.Ops[2]));
      break;
    case TermKind::Elt:
      Out = elt(Go(N.Ops[0]), Go(N.Ops[1]));
      break;
    case TermKind::TableElt:
      Out = tableElt(N.Name, N.W, N.A, Go(N.Ops[0]));
      break;
    case TermKind::ArrStore: {
      // Rebuild without re-masking twice: arrStore re-applies the mask,
      // which is idempotent (And-merge), so plain rebuild is fine.
      Out = arrStore(Go(N.Ops[0]), Go(N.Ops[1]), Go(N.Ops[2]));
      break;
    }
    case TermKind::ArrSelect:
      Out = arrSelect(Go(N.Ops[0]), Go(N.Ops[1]), Go(N.Ops[2]));
      break;
    case TermKind::Fold: {
      FoldInfo Info = foldInfo(X);
      Info.Guard = Go(Info.Guard);
      for (TermId &I : Info.Inits)
        I = Go(I);
      for (TermId &Nx : Info.Nexts)
        Nx = Go(Nx);
      for (FoldRegion &Rg : Info.Regions) {
        Rg.Entry = Go(Rg.Entry);
        Rg.Next = Go(Rg.Next);
      }
      Out = fold(std::move(Info));
      break;
    }
    case TermKind::FoldOut:
      Out = foldOut(Go(N.Ops[0]), unsigned(N.A));
      break;
    case TermKind::FoldOutArr:
      Out = foldOutArr(Go(N.Ops[0]), N.Name);
      break;
    }
    Memo[X] = Out;
    return Out;
  };
  return Go(T);
}

void TermGraph::collectSyms(TermId T, std::set<TermId> &Out) const {
  std::set<TermId> Seen;
  std::vector<TermId> Work{T};
  while (!Work.empty()) {
    TermId X = Work.back();
    Work.pop_back();
    if (!Seen.insert(X).second)
      continue;
    const TermNode &N = Nodes[X];
    if (N.K == TermKind::Sym || N.K == TermKind::ArrHavoc)
      Out.insert(X);
    for (TermId Op : N.Ops)
      Work.push_back(Op);
  }
}

//===----------------------------------------------------------------------===//
// Rendering.
//===----------------------------------------------------------------------===//

std::string TermGraph::str(TermId T, unsigned MaxDepth) const {
  const TermNode &N = Nodes[T];
  if (MaxDepth == 0)
    return "...";
  auto S = [&](TermId X) { return str(X, MaxDepth - 1); };
  switch (N.K) {
  case TermKind::Const:
    return N.A < 1024 ? std::to_string(N.A)
                      : [&] {
                          char Buf[32];
                          std::snprintf(Buf, sizeof(Buf), "0x%llx",
                                        (unsigned long long)N.A);
                          return std::string(Buf);
                        }();
  case TermKind::Sym:
    return N.Name;
  case TermKind::Bin:
    return "(" + S(N.Ops[0]) + " " + bedrock::binOpName(BinOp(N.A)) + " " +
           S(N.Ops[1]) + ")";
  case TermKind::Select:
    return "(if " + S(N.Ops[0]) + " then " + S(N.Ops[1]) + " else " +
           S(N.Ops[2]) + ")";
  case TermKind::Elt:
    return S(N.Ops[0]) + "[" + S(N.Ops[1]) + "]";
  case TermKind::TableElt:
    return N.Name + "[" + S(N.Ops[0]) + "]";
  case TermKind::ArrInit:
    return "arr(" + N.Name + ")";
  case TermKind::ArrHavoc:
    return N.Name;
  case TermKind::ArrStore:
    return S(N.Ops[0]) + "{" + S(N.Ops[1]) + " := " + S(N.Ops[2]) + "}";
  case TermKind::ArrSelect:
    return "(if " + S(N.Ops[0]) + " then " + S(N.Ops[1]) + " else " +
           S(N.Ops[2]) + ")";
  case TermKind::Fold: {
    const FoldInfo &I = foldInfo(T);
    std::string Out = "fold{while " + S(I.Guard) + "; carried";
    for (unsigned J = 0; J < I.NumCarried; ++J)
      Out += " (" + S(I.Inits[J]) + " -> " + S(I.Nexts[J]) + ")";
    for (const FoldRegion &R : I.Regions)
      Out += "; " + R.Name + ": " + S(R.Entry) + " -> " + S(R.Next);
    return Out + "}";
  }
  case TermKind::FoldOut:
    return S(N.Ops[0]) + ".out" + std::to_string(N.A);
  case TermKind::FoldOutArr:
    return S(N.Ops[0]) + ".arr(" + N.Name + ")";
  }
  return "?";
}

} // namespace tv
} // namespace relc
