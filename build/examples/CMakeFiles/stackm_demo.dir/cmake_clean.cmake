file(REMOVE_RECURSE
  "CMakeFiles/stackm_demo.dir/stackm_demo.cpp.o"
  "CMakeFiles/stackm_demo.dir/stackm_demo.cpp.o.d"
  "stackm_demo"
  "stackm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
