//===- tests/programs/SuiteTest.cpp - The Table 2 suite, end to end --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::programs;

namespace {

class SuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteTest, CompilesReplaysAndCertifies) {
  const ProgramDef *P = findProgram(GetParam());
  ASSERT_NE(P, nullptr);
  Result<CompiledProgram> C = compileAndValidate(*P);
  ASSERT_TRUE(bool(C)) << C.error().str();
  EXPECT_GT(C->Result.EmittedStmts, 0u);
  EXPECT_GT(C->Result.Proof->size(), 1u);
}

TEST_P(SuiteTest, FeatureMatrixMatchesTable2) {
  const ProgramDef *P = findProgram(GetParam());
  ASSERT_NE(P, nullptr);
  Result<CompiledProgram> C = compileAndValidate(*P, false);
  ASSERT_TRUE(bool(C));
  const std::set<std::string> &F = C->Result.Features;
  // Every program computes: Arithmetic always fires.
  EXPECT_TRUE(F.count("Arithmetic"));
  if (GetParam() == "upstr" || GetParam() == "fasta") {
    EXPECT_TRUE(F.count("Mutation"));
    EXPECT_TRUE(F.count("Loops"));
    EXPECT_TRUE(F.count("Arrays"));
  }
  if (GetParam() == "fasta" || GetParam() == "crc32" ||
      GetParam() == "utf8") {
    EXPECT_TRUE(F.count("Inline"));
  }
  if (GetParam() == "m3s") {
    EXPECT_FALSE(F.count("Loops"));
    EXPECT_FALSE(F.count("Arrays"));
    EXPECT_FALSE(F.count("Mutation"));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, SuiteTest,
    ::testing::Values("fnv1a", "utf8", "upstr", "m3s", "ip", "fasta",
                      "crc32"),
    [](const ::testing::TestParamInfo<std::string> &I) { return I.param; });

TEST(SuiteRegistryTest, RegistryIsCompleteAndNamed) {
  EXPECT_EQ(allPrograms().size(), 7u);
  EXPECT_EQ(findProgram("nope"), nullptr);
  for (const ProgramDef &P : allPrograms()) {
    EXPECT_FALSE(P.Description.empty()) << P.Name;
    EXPECT_FALSE(P.SourceFile.empty()) << P.Name;
    EXPECT_EQ(P.Spec.TargetName.empty(), false) << P.Name;
  }
}

TEST(SuiteRegistryTest, EndToEndFlagsMatchTable2) {
  // The paper marks every program but m3s as end-to-end.
  for (const ProgramDef &P : allPrograms())
    EXPECT_EQ(P.EndToEnd, P.Name != "m3s") << P.Name;
}

} // namespace
