# Empty compiler generated dependencies file for sec413_expr_ablation.
# This may be replaced when dependencies are built.
