//===- bench/pipeline_scaling.cpp - Parallel pipeline scaling --------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Measures the two perf levers of the certification pipeline:
//
//  1. Scheduler scaling: full-suite certification wall-clock at
//     -j 1 / 2 / 4 / 8 with the certificate cache disabled. The job graph
//     exposes (programs × independent layers) parallelism; how much of it
//     turns into speedup depends on the machine — the JSON records
//     hardware_threads so readers can interpret the ratios (on a 1-core
//     container every width degenerates to serial, and the numbers then
//     measure scheduler overhead, which must stay small).
//
//  2. Incremental certification: cold (empty cache) vs warm (fully
//     populated cache) suite runs. A warm run skips replay, analysis,
//     translation validation, codelint, and differential testing per
//     program, leaving only compilation + hashing + cache I/O — this
//     speedup is machine-independent. The warm path is priced twice,
//     interleaved: once against the full two-file cache (binary image
//     hit) and once against a JSON-only twin of the same cache (parse
//     fallback), so warm_bin_ms vs warm_parse_ms isolates what the
//     zero-copy image buys. A heap-allocation count for one warm run
//     rides along (this TU arms the bench_common.h counting hook).
//
// Plus two overhead prices that must stay small: the §4.7 guard
// bookkeeping (≤2%) and the target-side codelint layer (≤10% of a full
// certification run). Overhead percentages are computed from medians of
// the interleaved samples — a mean lets one scheduler hiccup on either
// side fabricate (or hide) a percent or two of phantom overhead.
//
// Writes BENCH_pipeline.json (sorted keys) for trajectory tracking;
// EXPERIMENTS.md records the committed numbers.
//
//===----------------------------------------------------------------------===//

#define RELC_BENCH_COUNT_ALLOCS
#include "bench_common.h"
#include "pipeline/Pipeline.h"
#include "programs/Programs.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace relc;
using namespace relc_bench;

namespace {

std::vector<const programs::ProgramDef *> suite() {
  std::vector<const programs::ProgramDef *> Out;
  for (const programs::ProgramDef &P : programs::allPrograms())
    Out.push_back(&P);
  return Out;
}

/// One full-suite certification run; returns wall milliseconds. Aborts the
/// bench on any certification failure — timing a broken pipeline would
/// only produce garbage numbers.
double runOnce(const pipeline::PipelineOptions &Opts) {
  auto T0 = std::chrono::steady_clock::now();
  std::vector<pipeline::ProgramOutcome> Out =
      pipeline::certifyPrograms(suite(), Opts);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  for (const pipeline::ProgramOutcome &O : Out)
    if (!O.ok()) {
      std::fprintf(stderr, "FATAL: %s failed certification:\n%s\n",
                   O.Def->Name.c_str(), O.ValidationError.c_str());
      std::exit(1);
    }
  return Ms;
}

Stats measure(const pipeline::PipelineOptions &Opts, unsigned Reps) {
  runOnce(Opts); // Warmup (page cache, allocator).
  std::vector<double> Samples;
  for (unsigned I = 0; I < Reps; ++I)
    Samples.push_back(runOnce(Opts));
  return stats(Samples);
}

} // namespace

int main() {
  const unsigned Reps = 15;
  const unsigned HwThreads = std::thread::hardware_concurrency();
  const std::vector<unsigned> Widths = {1, 2, 4, 8};

  std::printf("Parallel certification pipeline: full-suite wall-clock\n");
  std::printf("(%zu programs x 5 layers; %u repetitions; %u hardware "
              "thread(s))\n\n",
              suite().size(), Reps, HwThreads);

  // --- Scheduler scaling, cache disabled.
  std::vector<Stats> ByWidth;
  for (unsigned W : Widths) {
    pipeline::PipelineOptions Opts;
    Opts.Jobs = W;
    ByWidth.push_back(measure(Opts, Reps));
    std::printf("  -j %u : %7.2f ms median (+/- %.2f)  speedup vs -j1: "
                "%.2fx\n",
                W, ByWidth.back().Median, ByWidth.back().Ci95,
                ByWidth.front().Median / ByWidth.back().Median);
  }

  // --- Guard overhead: the same serial run with every §4.7 budget armed
  // but sized to never exhaust (a generous deadline and step cap). This
  // prices the pure bookkeeping — atomic step counters at the TV /
  // analysis / differential loop heads plus deadline polls every 256
  // steps — which must stay within noise (≤2%). Guarded and unguarded
  // samples are interleaved so ambient load drift hits both sides
  // equally; comparing two disjoint measurement windows instead can
  // fabricate tens of percent of phantom overhead on a busy machine.
  pipeline::PipelineOptions Plain;
  Plain.Jobs = 1;
  pipeline::PipelineOptions Guarded;
  Guarded.Jobs = 1;
  Guarded.LayerTimeoutMs = 600000;
  Guarded.TvStepBudget = 1000000000ULL;
  runOnce(Plain);
  runOnce(Guarded); // Warmup both.
  std::vector<double> PlainSamples, GuardSamples;
  for (unsigned I = 0; I < Reps; ++I) {
    PlainSamples.push_back(runOnce(Plain));
    GuardSamples.push_back(runOnce(Guarded));
  }
  Stats PlainStats = stats(PlainSamples);
  Stats GuardStats = stats(GuardSamples);
  double GuardPct =
      (GuardStats.Median - PlainStats.Median) / PlainStats.Median * 100.0;
  std::printf("\n  guards off   (-j 1, interleaved)            : %7.2f ms "
              "median (mean %.2f +/- %.2f)\n",
              PlainStats.Median, PlainStats.Mean, PlainStats.Ci95);
  std::printf("  guards armed (-j 1, never-exhausting budgets): %7.2f ms "
              "median (mean %.2f +/- %.2f)  overhead: %+.2f%%\n",
              GuardStats.Median, GuardStats.Mean, GuardStats.Ci95, GuardPct);

  // --- Codelint overhead: the same serial run with the target-side
  // analyzer on (the default) vs off, interleaved like the guard
  // measurement. This prices the whole layer — CFG + symbolic fixpoint +
  // solver-replayed accesses + the trip-count pattern matches — whose
  // budget is ≤10% of a full certification run.
  pipeline::PipelineOptions NoCl;
  NoCl.Jobs = 1;
  NoCl.Codelint = false;
  runOnce(NoCl); // Warmup (Plain is warm from the guard section).
  std::vector<double> ClOnSamples, ClOffSamples;
  for (unsigned I = 0; I < Reps; ++I) {
    ClOnSamples.push_back(runOnce(Plain));
    ClOffSamples.push_back(runOnce(NoCl));
  }
  Stats ClOn = stats(ClOnSamples);
  Stats ClOff = stats(ClOffSamples);
  double ClPct = (ClOn.Median - ClOff.Median) / ClOn.Median * 100.0;
  std::printf("\n  codelint on  (-j 1, interleaved): %7.2f ms median "
              "(mean %.2f +/- %.2f)\n",
              ClOn.Median, ClOn.Mean, ClOn.Ci95);
  std::printf("  codelint off (-j 1, interleaved): %7.2f ms median "
              "(mean %.2f +/- %.2f)  layer share: %+.2f%%\n",
              ClOff.Median, ClOff.Mean, ClOff.Ci95, ClPct);

  // --- Cold vs warm certificate cache, at the widest setting.
  std::string CacheDir =
      (std::filesystem::temp_directory_path() / "relc-bench-cache").string();
  std::string JsonCacheDir = CacheDir + "-json";
  std::filesystem::remove_all(CacheDir);
  std::filesystem::remove_all(JsonCacheDir);
  pipeline::PipelineOptions Cached;
  Cached.Jobs = Widths.back();
  Cached.CacheDir = CacheDir;

  // Cold: each rep starts from an empty directory and pays certify +
  // store. Median over several reps — a single cold run was how the old
  // bench produced its drifting committed number.
  std::vector<double> ColdSamples;
  for (unsigned I = 0; I < Reps; ++I) {
    std::filesystem::remove_all(CacheDir);
    ColdSamples.push_back(runOnce(Cached));
  }
  Stats Cold = stats(ColdSamples);

  // The final cold rep left a fully populated two-file cache. Build a
  // JSON-only twin of it (same entries, binary siblings dropped) so the
  // warm workload can be priced through each face: image hit vs parse
  // fallback. Warm runs never write back, so both twins stay as built.
  std::filesystem::create_directories(JsonCacheDir);
  for (const std::filesystem::directory_entry &E :
       std::filesystem::directory_iterator(CacheDir))
    if (E.path().string().size() < 9 ||
        E.path().string().substr(E.path().string().size() - 9) != ".cert.bin")
      std::filesystem::copy_file(E.path(),
                                 JsonCacheDir + "/" +
                                     E.path().filename().string());
  pipeline::PipelineOptions JsonCached = Cached;
  JsonCached.CacheDir = JsonCacheDir;

  runOnce(Cached);
  runOnce(JsonCached); // Warmup both.
  std::vector<double> WarmBinSamples, WarmParseSamples;
  for (unsigned I = 0; I < Reps; ++I) {
    WarmBinSamples.push_back(runOnce(Cached));
    WarmParseSamples.push_back(runOnce(JsonCached));
  }
  Stats WarmBin = stats(WarmBinSamples);
  Stats WarmParse = stats(WarmParseSamples);

  // Heap allocations for one whole warm suite run through each face
  // (this TU defines RELC_BENCH_COUNT_ALLOCS, so global operator new
  // feeds allocCount() binary-wide).
  uint64_t AllocWarm = allocationsDuring([&] { runOnce(Cached); });
  uint64_t AllocWarmParse = allocationsDuring([&] { runOnce(JsonCached); });
  std::filesystem::remove_all(CacheDir);
  std::filesystem::remove_all(JsonCacheDir);

  std::printf("\n  cache cold        : %7.2f ms median (certify + store)\n",
              Cold.Median);
  std::printf("  cache warm (bin)  : %7.2f ms median (mean %.2f +/- %.2f)  "
              "speedup vs cold: %.2fx  allocs: %llu\n",
              WarmBin.Median, WarmBin.Mean, WarmBin.Ci95,
              Cold.Median / WarmBin.Median,
              (unsigned long long)AllocWarm);
  std::printf("  cache warm (json) : %7.2f ms median (mean %.2f +/- %.2f)  "
              "parse fallback  allocs: %llu\n",
              WarmParse.Median, WarmParse.Mean, WarmParse.Ci95,
              (unsigned long long)AllocWarmParse);

  // All timing fields are medians of interleaved (or repeated) samples;
  // keys stay sorted so diffs of committed files read cleanly.
  std::ofstream J("BENCH_pipeline.json");
  char Buf[160];
  J << "{\n";
  J << "  \"alloc_count_warm\": " << AllocWarm << ",\n";
  J << "  \"alloc_count_warm_parse\": " << AllocWarmParse << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"cache_cold_ms\": %.3f,\n", Cold.Median);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"cache_warm_ms\": %.3f,\n",
                WarmBin.Median);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"cache_warm_speedup\": %.3f,\n",
                Cold.Median / WarmBin.Median);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"codelint_off_ms\": %.3f,\n",
                ClOff.Median);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"codelint_overhead_pct\": %.3f,\n",
                ClPct);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"guard_overhead_pct\": %.3f,\n",
                GuardPct);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"guarded_jobs_1_ms\": %.3f,\n",
                GuardStats.Median);
  J << Buf;
  J << "  \"hardware_threads\": " << HwThreads << ",\n";
  for (size_t I = 0; I < Widths.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "  \"jobs_%u_ms\": %.3f,\n", Widths[I],
                  ByWidth[I].Median);
    J << Buf;
  }
  J << "  \"programs\": " << suite().size() << ",\n";
  J << "  \"repetitions\": " << Reps << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"speedup_j8_vs_j1\": %.3f,\n",
                ByWidth.front().Median / ByWidth.back().Median);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"warm_bin_ms\": %.3f,\n",
                WarmBin.Median);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"warm_parse_ms\": %.3f\n",
                WarmParse.Median);
  J << Buf;
  J << "}\n";
  std::printf("\nwrote BENCH_pipeline.json\n");
  return 0;
}
