//===- bench/sec43_compiler_throughput.cpp - §4.3: compiler speed ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// §4.3 reports that Rupicola compiles "anywhere between 2 and 15
// statements per second" because it runs at the speed of Coq's proof
// engine. This bench measures the same metric for this reproduction:
// statements emitted per second of compilation (proof search + solver
// side conditions + derivation construction), per program and overall.
// The point of comparison is qualitative — the architecture is the same
// (first-match rule search, solver-discharged side conditions), the proof
// engine is native code instead of Ltac.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "programs/Programs.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace relc;
using namespace relc_bench;

namespace {

void benchCompile(benchmark::State &State, const programs::ProgramDef &P) {
  unsigned Stmts = 0;
  for (auto _ : State) {
    core::Compiler C;
    Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    else
      Stmts = R->EmittedStmts;
    benchmark::DoNotOptimize(R);
  }
  State.counters["statements"] = Stmts;
  State.counters["stmts_per_sec"] = benchmark::Counter(
      double(Stmts) * double(State.iterations()), benchmark::Counter::kIsRate);
}

} // namespace

int main(int argc, char **argv) {
  for (const programs::ProgramDef &P : programs::allPrograms())
    benchmark::RegisterBenchmark(
        ("sec43/compile/" + P.Name).c_str(),
        [&P](benchmark::State &S) { benchCompile(S, P); });

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Paper-shaped summary.
  std::printf("\n=== §4.3: compiler throughput (statements/second) ===\n");
  unsigned TotalStmts = 0;
  double TotalMs = 0;
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    const unsigned Reps = 40;
    core::Compiler C;
    auto T0 = std::chrono::steady_clock::now();
    unsigned Stmts = 0;
    for (unsigned I = 0; I < Reps; ++I) {
      Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
      if (R)
        Stmts = R->EmittedStmts;
      benchmark::DoNotOptimize(R);
    }
    auto T1 = std::chrono::steady_clock::now();
    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count() /
                Reps;
    std::printf("%-7s %3u statements in %7.3f ms  -> %10.0f stmts/s\n",
                P.Name.c_str(), Stmts, Ms,
                Ms > 0 ? Stmts / (Ms / 1000.0) : 0.0);
    TotalStmts += Stmts;
    TotalMs += Ms;
  }
  std::printf("overall: %u statements in %.3f ms -> %.0f stmts/s  "
              "(paper, in Coq: 2-15 stmts/s)\n",
              TotalStmts, TotalMs,
              TotalMs > 0 ? TotalStmts / (TotalMs / 1000.0) : 0.0);
  return 0;
}
