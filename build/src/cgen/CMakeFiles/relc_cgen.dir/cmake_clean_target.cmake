file(REMOVE_RECURSE
  "librelc_cgen.a"
)
