//===- tests/core/ExprCompileTest.cpp - Relational expression compiler -----===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "ir/Build.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::ir;

namespace {

/// A harness with parameters x (word), b (byte-ranged word), arr (byte
/// array of length len_arr), and table "tab" (byte table, 256 entries).
class ExprHarness {
public:
  ExprHarness() {
    FnBuilder FB("h", Monad::Pure);
    FB.wordParam("x");
    FB.table("tab", EltKind::U8, std::vector<uint64_t>(256, 3));
    ProgBuilder B;
    B.let("r", v("x"));
    Fn = std::move(FB).done(std::move(B).ret({"r"}));
    Spec.scalarArg("x").retScalar("r");
    core::registerStandardRules(Rules);
    Ctx = std::make_unique<core::CompileCtx>(Fn, Spec, Rules);
    Ctx->State.Locals["x"] =
        sep::TargetSlot::scalar(sep::SymVal::sym("x"), Ty::Word);
    Ctx->State.Facts.addGe0(solver::ls("x"));
    // A byte-valued local.
    Ctx->State.Locals["b"] =
        sep::TargetSlot::scalar(sep::SymVal::sym("b"), Ty::Byte);
    Ctx->State.Facts.addGe0(solver::ls("b"));
    Ctx->State.Facts.addLe(solver::ls("b"), solver::lc(255));
    // An array clause with a pointer local and a length local.
    sep::HeapClause C;
    C.TheKind = sep::HeapClause::Kind::Array;
    C.Ptr = "ptr_arr";
    C.Payload = "arr";
    C.Elt = EltKind::U8;
    C.Len = solver::ls("len_arr");
    Ctx->State.Heap.push_back(C);
    Ctx->State.Locals["arr"] = sep::TargetSlot::ptr(
        sep::SymVal::sym("ptr_arr"), 0);
    Ctx->State.Locals["n"] =
        sep::TargetSlot::scalar(sep::SymVal::sym("len_arr"), Ty::Word);
    Ctx->State.Facts.addGe0(solver::ls("len_arr"));
    Ctx->State.Facts.addLe(solver::ls("len_arr"),
                           solver::lc(int64_t(1) << 20));
  }

  Result<core::CompiledExpr> compile(const ExprPtr &E) {
    core::DerivNode D("root", "test");
    return Ctx->exprs().compile(*E, D);
  }

  core::CompileCtx &ctx() { return *Ctx; }

private:
  ir::SourceFn Fn;
  sep::FnSpec Spec{"h"};
  core::RuleSet Rules;
  std::unique_ptr<core::CompileCtx> Ctx;
};

TEST(ExprCompileTest, LiteralsAreConstants) {
  ExprHarness H;
  Result<core::CompiledExpr> R = H.compile(cw(42));
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(R->Val.IsConst);
  EXPECT_EQ(R->Val.K, 42u);
  EXPECT_EQ(R->Type, Ty::Word);
  EXPECT_TRUE(R->Pre.empty());
}

TEST(ExprCompileTest, ConstantFolding) {
  ExprHarness H;
  Result<core::CompiledExpr> R = H.compile(mulw(addw(cw(3), cw(4)), cw(2)));
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(R->Val.IsConst);
  EXPECT_EQ(R->Val.K, 14u);
  // The emitted expression is a single literal.
  EXPECT_EQ(R->E->str(), "14");
}

TEST(ExprCompileTest, VarLookupUsesSlot) {
  ExprHarness H;
  Result<core::CompiledExpr> R = H.compile(v("x"));
  ASSERT_TRUE(bool(R));
  EXPECT_FALSE(R->Val.IsConst);
  EXPECT_EQ(R->Val.S, "x");
  EXPECT_EQ(R->E->str(), "x");
}

TEST(ExprCompileTest, UnboundVarIsUnsolvedGoal) {
  ExprHarness H;
  Result<core::CompiledExpr> R = H.compile(v("ghost"));
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("unsolved goal"), std::string::npos);
}

TEST(ExprCompileTest, MaskFactsEnableTableBounds) {
  // tab[(x & 0xff)] — the bound comes from the mask's structural fact.
  ExprHarness H;
  Result<core::CompiledExpr> R =
      H.compile(tget("tab", andw(v("x"), cw(0xff))));
  ASSERT_TRUE(bool(R)) << R.error().str();
  EXPECT_EQ(R->Type, Ty::Byte);
}

TEST(ExprCompileTest, UnboundedIndexFailsBounds) {
  ExprHarness H;
  Result<core::CompiledExpr> R = H.compile(tget("tab", v("x")));
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("unsolved side condition"),
            std::string::npos);
}

TEST(ExprCompileTest, ByteVarIndexesByteTable) {
  ExprHarness H;
  Result<core::CompiledExpr> R = H.compile(tget("tab", b2w(v("b"))));
  ASSERT_TRUE(bool(R)) << R.error().str(); // b ≤ 255 < 256.
}

TEST(ExprCompileTest, ArrayGetRequiresProvableBounds) {
  ExprHarness H;
  // arr[n - 1] is not provable (n may be zero)...
  Result<core::CompiledExpr> Bad =
      H.compile(aget("arr", subw(v("n"), cw(1))));
  EXPECT_FALSE(bool(Bad));
  // ...but arr[n >> 1] needs n >= 1? No: n>>1 < n only if n >= 1; however
  // 2*(n>>1) <= n gives n>>1 <= n/2 which is < n only when n > 0. With a
  // constant index under a known lower bound it works:
  H.ctx().State.Facts.addLe(solver::lc(4), solver::ls("len_arr"),
                            "test: len >= 4");
  Result<core::CompiledExpr> Ok = H.compile(aget("arr", cw(3)));
  ASSERT_TRUE(bool(Ok)) << Ok.error().str();
  EXPECT_EQ(Ok->Type, Ty::Byte);
}

TEST(ExprCompileTest, ShiftFactsComposeForIpPattern) {
  ExprHarness H;
  // i < (n >> 1) ⊢ arr[2i + 1] in bounds.
  Result<core::CompiledExpr> Half = H.compile(shrw(v("n"), cw(1)));
  ASSERT_TRUE(bool(Half));
  H.ctx().State.Locals["i"] =
      sep::TargetSlot::scalar(sep::SymVal::sym("i"), Ty::Word);
  H.ctx().State.Facts.addGe0(solver::ls("i"));
  H.ctx().State.Facts.addLt(solver::ls("i"), Half->Val.term(),
                            "test loop bound");
  Result<core::CompiledExpr> R =
      H.compile(aget("arr", addw(mulw(v("i"), cw(2)), cw(1))));
  EXPECT_TRUE(bool(R)) << (R ? "" : R.error().str());
}

TEST(ExprCompileTest, W2bElidedWhenProvablyByte) {
  ExprHarness H;
  // b2w(b) & 0x0f is provably ≤ 255, so w2b emits no mask.
  Result<core::CompiledExpr> R = H.compile(w2b(andw(b2w(v("b")), cw(0x0f))));
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->E->str().find("255"), std::string::npos);
  // An opaque word needs the mask.
  Result<core::CompiledExpr> Masked = H.compile(w2b(mulw(v("x"), v("x"))));
  ASSERT_TRUE(bool(Masked));
  EXPECT_NE(Masked->E->str().find("& 255"), std::string::npos);
}

TEST(ExprCompileTest, SelectMaterializesThroughTemporary) {
  ExprHarness H;
  Result<core::CompiledExpr> R =
      H.compile(select(ltu(v("x"), cw(5)), v("x"), cw(5)));
  ASSERT_TRUE(bool(R));
  // A conditional preamble assigns the temporary; the result expression
  // is the temporary itself (which cgen prints as a C ternary).
  ASSERT_EQ(R->Pre.size(), 1u);
  EXPECT_TRUE(isa<bedrock::If>(R->Pre[0].get()));
  EXPECT_NE(R->E->str().find("sel$"), std::string::npos);
}

TEST(ExprCompileTest, SelectArmsBoundPropagates) {
  ExprHarness H;
  // Both arms byte-ranged ⇒ the select result is byte-ranged, so a
  // following w2b is the identity (no mask emitted).
  Result<core::CompiledExpr> R = H.compile(
      w2b(select(ltu(v("x"), cw(5)), andw(v("x"), cw(0x7f)), cw(5))));
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->E->str().find("255"), std::string::npos);
}

TEST(ExprCompileTest, CompareProducesBool) {
  ExprHarness H;
  Result<core::CompiledExpr> R = H.compile(ltu(v("x"), cw(7)));
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Type, Ty::Bool);
}

TEST(ExprCompileTest, TypeMismatchCaught) {
  ExprHarness H;
  // Byte var used directly as a word operand.
  Result<core::CompiledExpr> R = H.compile(addw(v("b"), cw(1)));
  EXPECT_FALSE(bool(R));
}

TEST(ExprCompileTest, CustomExprRuleExtendsTheCompiler) {
  // A program-specific rule: recognize (x ^ x) and emit the constant 0 —
  // a rewrite plugged in as a rule, not a compiler change.
  class XorSelfRule : public core::ExprRule {
  public:
    std::string name() const override { return "expr_compile_literal"; }
    core::ExprGoalPattern pattern() const override {
      core::ExprGoalPattern P;
      P.Kinds = {ir::Expr::Kind::Bin};
      P.MatchConds = {"op-is-xor", "operands-are-same-var"};
      return P;
    }
    bool matches(const core::CompileCtx &, const ir::Expr &E) const override {
      const auto *B = dyn_cast<ir::Bin>(&E);
      if (!B || B->op() != WordOp::Xor)
        return false;
      const auto *L = dyn_cast<ir::VarRef>(B->lhs());
      const auto *R = dyn_cast<ir::VarRef>(B->rhs());
      return L && R && L->name() == R->name();
    }
    Result<core::CompiledExpr> apply(core::CompileCtx &, core::ExprCompiler &,
                                     const ir::Expr &,
                                     core::DerivNode &) override {
      core::CompiledExpr Out;
      Out.E = bedrock::lit(0);
      Out.Val = sep::SymVal::constant(0);
      Out.Type = Ty::Word;
      return Out;
    }
  };

  ExprHarness H;
  H.ctx().exprs().rules().addFront(std::make_unique<XorSelfRule>());
  Result<core::CompiledExpr> R = H.compile(xorw(v("x"), v("x")));
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(R->Val.IsConst);
  EXPECT_EQ(R->Val.K, 0u);
}

} // namespace
