file(REMOVE_RECURSE
  "CMakeFiles/relc_extraction.dir/ExtractionRuntime.cpp.o"
  "CMakeFiles/relc_extraction.dir/ExtractionRuntime.cpp.o.d"
  "librelc_extraction.a"
  "librelc_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
