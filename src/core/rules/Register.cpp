//===- core/rules/Register.cpp - Standard rule registration ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/rules/Rules.h"

namespace relc {
namespace core {

void registerStandardRules(RuleSet &RS) {
  // Order is documentation only for disjoint matches (each rule matches a
  // distinct binding shape), but program-specific rules registered with
  // addFront deliberately shadow these.
  RS.add(makeLetRule());
  RS.add(makeArrayPutRule());
  RS.add(makeMapRule());
  RS.add(makeFoldRule());
  RS.add(makeFoldBreakRule());
  RS.add(makeRangeRule());
  RS.add(makeWhileRule());
  RS.add(makeIfRule());
  RS.add(makeStackInitRule());
  RS.add(makeStackUninitRule());
  RS.add(makeCellGetRule());
  RS.add(makeCellPutRule());
  RS.add(makeCellIncrRule());
  RS.add(makeNondetAllocRule());
  RS.add(makeNondetPeekRule());
  RS.add(makeIoReadRule());
  RS.add(makeIoWriteRule());
  RS.add(makeWriterTellRule());
  RS.add(makeCopyRule());
  RS.add(makeExternCallRule());
}

} // namespace core
} // namespace relc
