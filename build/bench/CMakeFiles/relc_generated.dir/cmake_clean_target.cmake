file(REMOVE_RECURSE
  "../lib/librelc_generated.a"
)
