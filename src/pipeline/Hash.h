//===- pipeline/Hash.h - Content hashing for the certificate cache -*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The certificate cache (pipeline/CertCache.h) is content-addressed: a
// cached verdict is keyed on hashes of the exact inputs certification
// consumed — the functional model, the fnspec, and the emitted Bedrock2
// code. All three have canonical, deterministic renderings (their str()
// forms), so content hashing reduces to string hashing. FNV-1a/64 is
// plenty here: the cache is an *optimization*, not a trust boundary — a
// (cryptographically implausible) collision could at worst reuse a verdict
// for a different program, and the trust story in DESIGN.md §4.5 covers
// why even that does not silently certify wrong code in practice: every
// run still compiles and replays emission, and any input change reflected
// in the rendering changes the key.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_PIPELINE_HASH_H
#define RELC_PIPELINE_HASH_H

#include <cstdint>
#include <string>
#include <string_view>

namespace relc {
namespace pipeline {

/// FNV-1a over \p S, continuing from \p H (chainable).
uint64_t fnv1a64(std::string_view S, uint64_t H = 0xcbf29ce484222325ULL);

/// Fixed-width (16 digit) lowercase hex, no prefix — filename-safe and
/// sortable, unlike relc::hexStr's 0x-prefixed variable width.
std::string hex16(uint64_t V);

/// Inverse of hex16 (any-width unprefixed hex). Returns false on any
/// non-hex character or empty input.
bool parseHex(std::string_view S, uint64_t *Out);

} // namespace pipeline
} // namespace relc

#endif // RELC_PIPELINE_HASH_H
