# Empty compiler generated dependencies file for stackm_demo.
# This may be replaced when dependencies are built.
