file(REMOVE_RECURSE
  "CMakeFiles/extraction_tests.dir/extraction/ExtractionTest.cpp.o"
  "CMakeFiles/extraction_tests.dir/extraction/ExtractionTest.cpp.o.d"
  "extraction_tests"
  "extraction_tests.pdb"
  "extraction_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extraction_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
