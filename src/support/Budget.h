//===- support/Budget.h - Cooperative deadline / step budgets ---*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// relc::guard — the cooperative termination framework under the hardened
// certification pipeline. A Budget pairs an optional monotonic wall-clock
// deadline with an optional step allowance; long-running certification
// loops (TV term-graph normalization and bijection backtracking, the
// analysis dataflow worklist, solver elimination, the differential vector
// loop) call step() at their loop heads and stop — gracefully — once the
// budget is exhausted. This is what makes every layer wall-clock
// terminating: the loops themselves may be combinatorial, but the checks
// bound them.
//
// Cost model (the ≤2% overhead requirement, bench/pipeline_scaling):
// step() is one relaxed fetch_add on a per-layer (never shared across
// worker threads' layers) counter; the monotonic clock is only polled
// when the counter crosses a 256-step boundary, so the amortized cost of
// a deadline is a fraction of a nanosecond per step. An unbudgeted layer
// passes a null Budget* and pays a single branch.
//
// Trust story (DESIGN.md §4.7): exhaustion is *latched* and always maps
// to a refusal — TV reports Inconclusive, the analyzer reports a
// convergence error, the solver answers "cannot refute" (i.e. not
// proved), the differential layer fails with a named budget error. No
// code path turns an exhausted budget into an accept, so budgets can
// cost completeness, never soundness.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_BUDGET_H
#define RELC_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace relc {
namespace guard {

/// How a budget ran out (latched: the first exhaustion wins and sticks).
enum class Exhaustion : uint8_t {
  None = 0,   ///< Still within budget.
  TimedOut,   ///< The wall-clock deadline passed.
  OutOfSteps, ///< The step allowance was consumed.
};

inline const char *exhaustionName(Exhaustion E) {
  switch (E) {
  case Exhaustion::None:
    return "none";
  case Exhaustion::TimedOut:
    return "timed-out";
  case Exhaustion::OutOfSteps:
    return "out-of-steps";
  }
  return "none";
}

/// Thrown by budgeted subsystems that have no error channel at the point
/// of exhaustion (the TV term graph's normalizing constructors); caught at
/// the layer boundary and converted into the layer's refusal verdict.
class BudgetExhausted : public std::runtime_error {
public:
  BudgetExhausted(Exhaustion Kind, const std::string &What)
      : std::runtime_error(What), Kind(Kind) {}
  Exhaustion kind() const { return Kind; }

private:
  Exhaustion Kind;
};

/// One layer's budget: a monotonic deadline, a step allowance, or both
/// (zero means "unlimited" for each). Not copyable — layers share it by
/// pointer, and the counters are meaningful per instance.
class Budget {
public:
  /// Unlimited budget: step() always succeeds.
  Budget() = default;

  /// \p DeadlineMs bounds wall time from *now*; \p StepLimit bounds the
  /// total step() count. Zero disables the respective bound.
  Budget(uint64_t DeadlineMs, uint64_t StepLimit)
      : DeadlineMs(DeadlineMs), StepLimit(StepLimit),
        HasDeadline(DeadlineMs != 0),
        Deadline(std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(DeadlineMs)) {}

  Budget(const Budget &) = delete;
  Budget &operator=(const Budget &) = delete;

  bool limited() const { return HasDeadline || StepLimit != 0; }

  /// Charges \p N steps. Returns true while the budget holds; false once
  /// it is exhausted (and forever after — exhaustion latches). The clock
  /// is polled only when the step counter crosses a 256-step boundary,
  /// so deadlines are cheap even on hot paths.
  bool step(uint64_t N = 1) const {
    if (St.load(std::memory_order_relaxed) !=
        uint8_t(Exhaustion::None))
      return false;
    uint64_t Before = Steps.fetch_add(N, std::memory_order_relaxed);
    uint64_t After = Before + N;
    if (StepLimit != 0 && After >= StepLimit) {
      latch(Exhaustion::OutOfSteps);
      return false;
    }
    if (HasDeadline && (Before >> 8) != (After >> 8) &&
        std::chrono::steady_clock::now() >= Deadline) {
      latch(Exhaustion::TimedOut);
      return false;
    }
    return true;
  }

  /// Like step(), but polls the clock unconditionally. For coarse loop
  /// heads (one check per differential vector / worklist pop) where the
  /// 256-step amortization would make a deadline too lazy.
  bool checkpoint(uint64_t N = 1) const {
    if (!step(N))
      return false;
    if (HasDeadline && std::chrono::steady_clock::now() >= Deadline) {
      latch(Exhaustion::TimedOut);
      return false;
    }
    return true;
  }

  /// step() that throws BudgetExhausted instead of returning false.
  void stepOrThrow(uint64_t N = 1) const {
    if (!step(N))
      throw BudgetExhausted(state(), describe());
  }

  bool exhausted() const {
    return St.load(std::memory_order_relaxed) != uint8_t(Exhaustion::None);
  }
  Exhaustion state() const {
    return Exhaustion(St.load(std::memory_order_relaxed));
  }
  uint64_t stepsUsed() const {
    return Steps.load(std::memory_order_relaxed);
  }

  /// Past-tense account of the exhaustion, for layer diagnostics:
  /// "exceeded its 200 ms deadline after 123456 steps" /
  /// "exhausted its 50000-step budget". Callers prefix the layer name.
  std::string describe() const {
    switch (state()) {
    case Exhaustion::None:
      return "is within its budget (" + std::to_string(stepsUsed()) +
             " steps used)";
    case Exhaustion::TimedOut:
      return "exceeded its " + std::to_string(DeadlineMs) +
             " ms deadline after " + std::to_string(stepsUsed()) + " steps";
    case Exhaustion::OutOfSteps:
      return "exhausted its " + std::to_string(StepLimit) + "-step budget";
    }
    return "is within its budget";
  }

private:
  uint64_t DeadlineMs = 0;
  uint64_t StepLimit = 0;
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline{};
  mutable std::atomic<uint64_t> Steps{0};
  mutable std::atomic<uint8_t> St{uint8_t(Exhaustion::None)};

  void latch(Exhaustion E) const {
    uint8_t Expected = uint8_t(Exhaustion::None);
    St.compare_exchange_strong(Expected, uint8_t(E),
                               std::memory_order_relaxed);
  }
};

} // namespace guard
} // namespace relc

#endif // RELC_SUPPORT_BUDGET_H
