//===- pipeline/CertCache.h - Content-addressed certificate cache -*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Certification verdicts are deterministic functions of (model, fnspec,
// emitted code, validation options): the same triple always replays, ana-
// lyzes, translation-validates, and differentially certifies to the same
// result. This cache makes that determinism pay: relc-gen keys each
// program's verdict on content hashes of exactly those inputs and skips
// re-certification when an identical triple was already certified —
// groundwork for incremental suite builds at scale.
//
// Trust story (DESIGN.md §4.5): the cache holds *verdicts*, never code.
// Every run still compiles the model and re-emits the C from the freshly
// compiled function; a cache hit only skips re-deriving the certification
// verdict for inputs proven (by hash) identical to ones already certified.
// Any change to the model, the fnspec, the emitted code, or the validation
// options changes a hash and misses — invalidation is structural, not
// time-based. Entries that fail to parse, whose recorded key disagrees
// with the filename, or whose integrity hash does not match the payload
// are *discarded and deleted*, and the verdict is re-derived from scratch:
// a corrupted cache can cost time, never soundness. Entries are only ever
// written for fully successful certifications — failures are not cached
// (they are cheap to re-derive and their diagnostics should stay fresh).
//
// On-disk format: two files per entry under the cache directory, both
// named by the key — <model>-<spec>-<code> (16 hex digits each):
//
//   <stem>.cert.json  the canonical, diffable JSON entry (keys sorted,
//                     one per line, byte-stable for a given entry);
//   <stem>.cert.bin   the same entry as a length-prefixed binary image
//                     with a trailing integrity hash — the warm path.
//
// lookup() tries the binary image first (one read, a bounds-checked
// fixed-field decode, zero JSON parsing) and falls back to the JSON file
// when the image is missing or fails verification — a corrupt image is
// deleted and costs one fallback parse, never soundness. store() writes
// both files with the same crash-safe unique-temp-file + rename dance, so
// a cache produced by any writer serves both paths.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_PIPELINE_CERTCACHE_H
#define RELC_PIPELINE_CERTCACHE_H

#include "support/Result.h"

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace relc {
namespace pipeline {

/// Content-hash triple addressing one certification verdict.
struct CertKey {
  uint64_t ModelHash = 0; ///< Model rendering + compile-hint fact digest.
  uint64_t SpecHash = 0;  ///< Fnspec rendering (ABI, returns, in-place).
  uint64_t CodeHash = 0;  ///< Emitted Bedrock2 function rendering.

  /// "<model>-<spec>-<code>", 16 hex digits each: the entry's file stem.
  std::string fileStem() const;

  bool operator==(const CertKey &O) const {
    return ModelHash == O.ModelHash && SpecHash == O.SpecHash &&
           CodeHash == O.CodeHash;
  }
};

/// One cached certification verdict, with enough detail to reproduce a
/// successful run's terminal output and .tv.json artifact byte for byte.
struct CertEntry {
  std::string Program;      ///< Program name (diagnostics only, not key).
  uint64_t OptsHash = 0;    ///< Validation-options digest; part of lookup.
  bool ReplayOk = false;    ///< Layer 1 verdict.
  bool AnalysisOk = false;  ///< Layer 2 verdict (no errors).
  uint64_t AnalysisWarnings = 0;
  /// Rendered analysis diagnostics (warnings), newline-joined, so a warm
  /// run reprints them byte-identically to the cold run ("" if none).
  std::string AnalysisDiags;
  bool TvRan = false;       ///< Layer 3 executed (vs. disabled).
  std::string TvVerdict;    ///< "Proved" / "Inconclusive" ("" if !TvRan).
  uint64_t TvLoops = 0, TvTerms = 0; ///< For the per-program tv line.
  std::string TvCertificate; ///< The .tv.json payload ("" if !TvRan).
  /// The .certbin payload (cert::BinWriter image; "" if !TvRan). Carried
  /// verbatim in the binary cache entry so warm runs reproduce cold
  /// artifacts byte-for-byte; legacy JSON entries leave it empty and the
  /// pipeline re-encodes it from TvCertificate.
  std::string TvCertBin;
  bool CodelintRan = false;  ///< Target-side codelint layer executed.
  std::string CodelintVerdict; ///< Overall verdict name ("" if !CodelintRan).
  bool DifferentialOk = false; ///< Layer 4 verdict.
};

/// Running statistics for one pipeline execution.
struct CacheStats {
  unsigned Hits = 0;
  unsigned Misses = 0;
  unsigned Stores = 0;
  unsigned CorruptDiscarded = 0;
  unsigned BinHits = 0; ///< Subset of Hits served from the binary image.
};

class CertCache {
public:
  /// \p Dir empty disables the cache (lookup misses, store no-ops).
  /// Opening an enabled cache sweeps temp files orphaned by crashed
  /// writers (see sweepStaleTemps).
  explicit CertCache(std::string Dir);

  bool enabled() const { return !Dir.empty(); }
  const std::string &dir() const { return Dir; }

  /// Returns the entry for \p Key iff one exists, parses cleanly, passes
  /// its integrity hash, and matches \p OptsHash. A present-but-invalid
  /// entry is deleted (and counted in \p Stats->CorruptDiscarded); an
  /// options mismatch is a plain miss (the entry stays — another flag
  /// combination may still want it... but see store(), which overwrites).
  std::optional<CertEntry> lookup(const CertKey &Key, uint64_t OptsHash,
                                  CacheStats *Stats = nullptr) const;

  /// Persists \p Entry under \p Key (creating the directory on first use).
  /// The write is atomic: a *uniquely named* temp file (pid + per-process
  /// counter in the suffix, so concurrent writers — including separate
  /// relc-gen processes sharing one cache — never collide) is renamed into
  /// place, and readers never observe a torn entry. I/O failures are
  /// retried a few times with short backoff before giving up; a failed
  /// store leaves no temp file behind. Only call for fully successful,
  /// non-degraded certifications.
  Status store(const CertKey &Key, const CertEntry &Entry,
               CacheStats *Stats = nullptr) const;

  /// Removes temp files (".cert.json.tmp*" and legacy ".tmp") under the
  /// cache directory older than \p MaxAge — debris from writers that
  /// crashed between create and rename. Returns how many were removed.
  /// Called automatically on open with a conservative age; tests pass 0s
  /// to sweep unconditionally.
  unsigned
  sweepStaleTemps(std::chrono::seconds MaxAge = std::chrono::seconds(600))
      const;

  /// Serialization, exposed for tests and the independent checker: the
  /// exact JSON file content store() writes, including the integrity hash.
  /// (The JSON entry deliberately omits TvCertBin — it predates it, stays
  /// byte-compatible with entries written before the binary path existed,
  /// and the binary payload is re-derivable from TvCertificate.)
  static std::string serialize(const CertKey &Key, const CertEntry &Entry);

  /// Inverse of serialize(). Fails (nullopt) on any malformed field,
  /// missing key, format-version mismatch, or integrity-hash mismatch.
  static std::optional<CertEntry> deserialize(const std::string &Text,
                                              CertKey *KeyOut = nullptr);

  /// The binary cache image store() writes next to the JSON: every field
  /// (including both certificate payloads, verbatim) as length-prefixed
  /// little-endian records behind a magic + version, with a trailing
  /// FNV-1a integrity hash. Loading it allocates one string per string
  /// field — O(1) allocations per entry, no parsing.
  static std::string serializeBin(const CertKey &Key, const CertEntry &Entry);

  /// Inverse of serializeBin(). Fails (nullopt) on bad magic or version,
  /// a truncated or oversized image, any out-of-range length, or an
  /// integrity-hash mismatch. Never throws; never trusts a length before
  /// bounds-checking it.
  static std::optional<CertEntry> deserializeBin(const std::string &Image,
                                                 CertKey *KeyOut = nullptr);

private:
  std::string Dir;

  std::string pathFor(const CertKey &Key) const;
  std::string binPathFor(const CertKey &Key) const;
};

} // namespace pipeline
} // namespace relc

#endif // RELC_PIPELINE_CERTCACHE_H
