//===- examples/stackm_demo.cpp - The §2 story, executable -----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Section 2's step-by-step development on the arithmetic-to-stack-machine
// pair: the traditional functional compiler, the same compiler as a
// relation driven by proof search, the derivation ("proof term") it
// produces, and open-ended extension — multiplication and a constant-
// folding rewrite plug in as new rules without touching the existing
// ones, which is exactly what the closed functional compiler cannot do.
//
//===----------------------------------------------------------------------===//

#include "stackm/StackMachine.h"

#include <cstdio>

using namespace relc::stackm;

int main() {
  // s7 := SAdd (SInt 3) (SInt 4), as in §2.1.
  SExprPtr S7 = sAdd(sInt(3), sInt(4));
  std::printf("source s7 = %s, 𝜎S(s7) = %lld\n", S7->str().c_str(),
              (long long)evalS(*S7));

  // The traditional compiler StoT.
  relc::Result<TProgram> T7 = compileStoT(*S7);
  std::printf("StoT s7 = %s\n\n", str(*T7).c_str());

  // The relational compiler: proof search over the two base lemmas.
  SRuleSet Base = SRuleSet::base();
  relc::Result<CompiledS> R = compileRelational(Base, S7);
  std::printf("relational: t7 = %s\nderivation (the proof term):\n%s\n",
              str(R->Program).c_str(), R->Proof->str(2).c_str());
  relc::Status Checked = checkDerivation(*R->Proof);
  relc::Status Equiv = checkEquivalence(R->Program, *S7);
  std::printf("kernel check: %s; ∀ zs, 𝜎T t zs = 𝜎S s :: zs: %s\n\n",
              Checked ? "accepted" : "REJECTED",
              Equiv ? "holds on samples" : "FAILS");

  // Open-ended extension (§2.3): multiplication is not in the base
  // language...
  SExprPtr Prod = sMul(sAdd(sInt(2), sInt(3)), sInt(7));
  relc::Result<TProgram> Closed = compileStoT(*Prod);
  std::printf("StoT on %s: %s\n", Prod->str().c_str(),
              Closed ? "ok (unexpected!)" : Closed.error().str().c_str());
  relc::Result<CompiledS> NoRule = compileRelational(Base, Prod);
  std::printf("relational without the Mul rule:\n  %s\n",
              NoRule ? "ok (unexpected!)" : NoRule.error().str().c_str());

  // ...until the user registers a lemma for it.
  SRuleSet Extended = SRuleSet::base();
  Extended.add(makeMulRule());
  relc::Result<CompiledS> WithMul = compileRelational(Extended, Prod);
  std::printf("after adding Ext_RMul: %s\n", str(WithMul->Program).c_str());

  // Program-specific rewrites shadow generic rules when registered first:
  // constant subtrees compile to a single push.
  SRuleSet Folding = SRuleSet::base();
  Folding.add(makeMulRule());
  Folding.addFront(makeConstFoldRule());
  relc::Result<CompiledS> Folded = compileRelational(Folding, Prod);
  std::printf("with Ext_RConstFold in front: %s\n",
              str(Folded->Program).c_str());
  relc::Status FoldOk = checkDerivation(*Folded->Proof);
  std::printf("kernel check of the folded derivation: %s\n",
              FoldOk ? "accepted" : "REJECTED");
  return 0;
}
