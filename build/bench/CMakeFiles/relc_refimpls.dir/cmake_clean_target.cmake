file(REMOVE_RECURSE
  "../lib/librelc_refimpls.a"
)
