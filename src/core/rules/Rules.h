//===- core/rules/Rules.h - The standard rule library -----------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Factory functions for every statement-compilation lemma in the standard
// library. Each family lives in its own translation unit, bracketed by
// RELC-SECTION markers so the Table 1 bench can measure each extension's
// actual lines of "Lemma" (rule logic) and "Proof" (state-transformation
// justification) code.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CORE_RULES_RULES_H
#define RELC_CORE_RULES_RULES_H

#include "core/Rule.h"

#include <memory>

namespace relc {
namespace core {

// BaseRules.cpp — plain let/n of a pure expression.
std::unique_ptr<StmtRule> makeLetRule();

// ArrayRules.cpp — in-place ListArray.put.
std::unique_ptr<StmtRule> makeArrayPutRule();

// LoopRules.cpp — iteration patterns.
std::unique_ptr<StmtRule> makeMapRule();
std::unique_ptr<StmtRule> makeFoldRule();
std::unique_ptr<StmtRule> makeFoldBreakRule();
std::unique_ptr<StmtRule> makeRangeRule();
std::unique_ptr<StmtRule> makeWhileRule();

// CondRules.cpp — multi-target conditionals.
std::unique_ptr<StmtRule> makeIfRule();

// StackRules.cpp — stack allocation (§4.1.2).
std::unique_ptr<StmtRule> makeStackInitRule();
std::unique_ptr<StmtRule> makeStackUninitRule();

// CellRules.cpp — mutable cells (Table 1: get, put, iadd).
std::unique_ptr<StmtRule> makeCellGetRule();
std::unique_ptr<StmtRule> makeCellPutRule();
std::unique_ptr<StmtRule> makeCellIncrRule();

// NondetRules.cpp — nondeterminism monad (Table 1: alloc, peek).
std::unique_ptr<StmtRule> makeNondetAllocRule();
std::unique_ptr<StmtRule> makeNondetPeekRule();

// IoRules.cpp — IO monad (Table 1: read, write).
std::unique_ptr<StmtRule> makeIoReadRule();
std::unique_ptr<StmtRule> makeIoWriteRule();

// WriterRules.cpp — writer monad (§4.1.1 walkthrough).
std::unique_ptr<StmtRule> makeWriterTellRule();

// CopyRules.cpp — explicit duplication (§3.4.1).
std::unique_ptr<StmtRule> makeCopyRule();

// CallRules.cpp — external function calls (linking).
std::unique_ptr<StmtRule> makeExternCallRule();

} // namespace core
} // namespace relc

#endif // RELC_CORE_RULES_RULES_H
