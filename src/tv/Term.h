//===- tv/Term.h - Hash-consed term graph for translation validation -------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The shared value language of the translation validator (see Tv.h): both
// the FunLang model and the generated Bedrock2 code are symbolically
// evaluated into nodes of one TermGraph, and the equivalence check at the
// end is *pointer equality* — the graph is hash-consed, and every
// constructor normalizes, so two syntactically different but
// normalization-equal computations intern to the same node id.
//
// The normalization engine is deliberately small (the paper's validator is
// a proof checker, not a theorem prover) and strictly directed:
//
//   - constant folding through bedrock::evalBinOp (the target's word
//     semantics, which the source interpreter agrees with on the pure
//     fragment);
//   - affine canonicalization: +, -, and multiplication/left-shift by
//     constants are flattened into Σ coeff·atom + k with coefficients
//     mod 2^64 and atoms ordered canonically (the word analogue of the
//     solver::LinTerm representation; non-affine subterms become opaque
//     atoms). Sound for equality: equal affine forms denote equal words.
//   - bit-level identities keyed by a structural upper-bound oracle
//     (loads from byte arrays are ≤ 255, inline-table reads are bounded
//     by the table's maximum, ...): And-masks that provably do not change
//     the value are erased *on both sides*, which cancels the compiler's
//     "omit the w2b mask when the operand is provably narrow" optimization.
//   - load/store forwarding through array terms (the separation-logic
//     frame guarantees distinct regions never alias, so forwarding only
//     needs to reason within one region's store chain).
//
// Loops appear as summarized Fold nodes: guard + per-carried-value initial
// and step terms over canonical bound symbols, plus the array regions the
// body writes. FoldOut / FoldOutArr project the post-loop values. Two
// loops agree iff their summaries intern to the same Fold node — equal
// initial states evolved by equal guarded transitions are equal at every
// trip count, including the symbolic one.
//
// Storage: the graph is a set of contiguous per-graph arenas, not a node
// soup. Nodes are fixed-size records whose operand lists and names are
// (offset, length) slices of two shared pools (OpPool / NamePool), and the
// hash-cons table is a flat open-addressed array of (hash, id) slots — so
// interning a node costs zero heap allocations once the pools are warm,
// and tearing a graph down is a handful of frees regardless of node count.
// The pools grow by reallocation, so raw pointers/views into them (ops(),
// nameOf(), FoldRef accessors hand out fresh ones per call) must never be
// held across an interning constructor call.
//
// Concurrency contract (audited for the parallel certification pipeline,
// pipeline/Scheduler.h): the hash-cons table and every pool are
// per-TermGraph members, not globals — every TV job constructs its own
// graph, so concurrent jobs share no mutable state and need no locks
// (per-job arenas, not mutex-guarded interning; DESIGN.md §4.5). Keep it
// that way: a global intern table would make node ids — which the
// certificates embed — depend on scheduling order and break the
// byte-identical -j1/-jN guarantee, besides needing synchronization.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_TV_TERM_H
#define RELC_TV_TERM_H

#include "bedrock/Ast.h"
#include "solver/Linear.h"
#include "support/Budget.h"

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace relc {
namespace tv {

/// Index of a node in a TermGraph. Ids are dense and only meaningful
/// within their graph; cross-run stability comes from hashOf().
using TermId = uint32_t;
constexpr TermId NoTerm = ~TermId(0);

enum class TermKind : uint8_t {
  Const,      ///< A = the word value.
  Sym,        ///< Name = symbol ("x", "len_s", "ptr_s", "%L0.i", ...).
  Bin,        ///< A = bedrock::BinOp; Ops = {lhs, rhs}.
  Select,     ///< Ops = {cond, then, else}; cond nonzero picks then.
  Elt,        ///< Ops = {array, index}; one element, width = array's.
  TableElt,   ///< Name = table; W = elt bytes; A = max element; Ops = {idx}.
  ArrInit,    ///< Name = region; W = elt bytes. The entry contents.
  ArrHavoc,   ///< Name = canonical symbol; W = elt bytes. Unknown contents.
  ArrStore,   ///< Ops = {array, index, value}; value pre-masked to width.
  ArrSelect,  ///< Ops = {cond, then-array, else-array}.
  Fold,       ///< A loop summary; see TermGraph::fold.
  FoldOut,    ///< Ops = {fold}; A = carried position. Post-loop value.
  FoldOutArr, ///< Ops = {fold}; Name = region. Post-loop array contents.
};

/// One region's effect inside a Fold summary (construction-time shape;
/// interned folds keep this data in the graph's arenas, see FoldRef).
struct FoldRegion {
  std::string Name;  ///< Region (source array/cell name).
  TermId Entry = NoTerm; ///< Contents at loop entry (outer state).
  TermId Next = NoTerm;  ///< Contents after one iteration, over the
                         ///< canonical bound symbols.
};

/// Construction-time description of a Fold node, passed to
/// TermGraph::fold(). The vectors are consumed on interning — the graph
/// stores the same data as pooled operand slices, not as this struct.
struct FoldInfo {
  unsigned NumCarried = 0;
  TermId Guard = NoTerm;
  std::vector<TermId> Inits;       ///< Carried initial values (outer state).
  std::vector<TermId> Nexts;       ///< One-iteration step terms (canonical
                                   ///< bound symbols).
  std::vector<FoldRegion> Regions; ///< Written regions, sorted by name.
};

class TermGraph;

/// A by-value view of an interned Fold's structure. Reads go through the
/// graph on every call (the arenas may reallocate while the view is held —
/// e.g. across substitute() during loop matching), so a FoldRef stays
/// valid for the graph's lifetime; only the values it returns are
/// transient. regionName() returns an owned string for the same reason.
class FoldRef {
public:
  unsigned numCarried() const;
  TermId guard() const;
  TermId init(unsigned J) const;
  TermId next(unsigned J) const;
  unsigned numRegions() const;
  std::string regionName(unsigned I) const;
  TermId regionEntry(unsigned I) const;
  TermId regionNext(unsigned I) const;

private:
  friend class TermGraph;
  FoldRef(const TermGraph *G, TermId Fold, uint32_t Rec)
      : G(G), Fold(Fold), Rec(Rec) {}
  const TermGraph *G;
  TermId Fold;
  uint32_t Rec; ///< Index into the graph's FoldRecs.
};

/// An affine view of a scalar term: Σ Coeffs[atom]·atom + K, all
/// arithmetic mod 2^64 (well-defined on uint64_t; equality of affine
/// forms implies equality of the denoted words).
struct AffineView {
  std::map<TermId, uint64_t> Coeffs; ///< Zero coefficients erased.
  uint64_t K = 0;
};

class TermGraph {
public:
  TermGraph();

  //===--------------------------------------------------------------------===//
  // Normalizing constructors.
  //===--------------------------------------------------------------------===//

  TermId constant(uint64_t V);
  TermId sym(const std::string &Name);
  TermId bin(bedrock::BinOp Op, TermId L, TermId R);
  TermId select(TermId C, TermId T, TermId E);
  TermId elt(TermId Arr, TermId Idx);
  TermId tableElt(const std::string &Table, unsigned EltBytes, uint64_t MaxElt,
                  TermId Idx);
  TermId arrInit(const std::string &Region, unsigned EltBytes);
  TermId arrHavoc(const std::string &Sym, unsigned EltBytes);
  /// Masks \p Val to the array's element width before recording it, so a
  /// value the compiler stored unmasked (because it proved narrowness) and
  /// the model's explicitly truncated value intern identically.
  TermId arrStore(TermId Arr, TermId Idx, TermId Val);
  TermId arrSelect(TermId C, TermId T, TermId E);

  TermId fold(FoldInfo Info);
  TermId foldOut(TermId Fold, unsigned Pos);
  TermId foldOutArr(TermId Fold, const std::string &Region);

  //===--------------------------------------------------------------------===//
  // Inspection.
  //===--------------------------------------------------------------------===//

  std::optional<uint64_t> asConst(TermId T) const;
  unsigned eltBytesOf(TermId Arr) const; ///< Element width of an array term.
  uint64_t hashOf(TermId T) const { return Nodes[T].Hash; }
  FoldRef foldInfo(TermId Fold) const;
  size_t size() const { return Nodes.size(); }

  /// Structural upper bound on the word value of \p T, when one is
  /// derivable (e.g. a byte-array element is ≤ 255). \p Facts supplies
  /// interval bounds for entry symbols (the ABI's requires clause).
  std::optional<uint64_t> upperBound(TermId T) const;

  /// Registers entry-symbol facts consulted by the upper-bound oracle.
  void setEntryFacts(const solver::FactDb *Db) { EntryFacts = Db; }

  /// Arms a cooperative budget: every intern() — the funnel all
  /// normalizing constructors pass through — charges one step, and
  /// exhaustion raises guard::BudgetExhausted, caught at the TV layer
  /// boundary and turned into an Inconclusive verdict. Null disarms.
  void setBudget(const guard::Budget *B) { TheBudget = B; }

  /// Affine decomposition of \p T (always succeeds; worst case the whole
  /// term is a single atom with coefficient 1).
  AffineView affine(TermId T) const;

  /// Rebuilds the canonical term of an affine view.
  TermId fromAffine(const AffineView &V);

  /// Rewrites \p T under a Sym -> Sym renaming, re-normalizing bottom-up
  /// (so canonical atom orderings are recomputed for the new symbols).
  TermId substitute(TermId T, const std::map<TermId, TermId> &Renaming);

  /// All Sym node ids reachable from \p T.
  void collectSyms(TermId T, std::set<TermId> &Out) const;

  /// Rendering for diagnostics and certificates (depth-capped).
  std::string str(TermId T, unsigned MaxDepth = 12) const;

private:
  friend class FoldRef;

  /// A fixed-size node record; operands and the name are slices of the
  /// shared pools. 32 bytes vs. the ~80 of the old struct-of-containers
  /// node, and zero owned allocations.
  struct Node {
    TermKind K = TermKind::Const;
    uint8_t W = 0;       ///< Element width in bytes (array-ish nodes).
    uint16_t NumOps = 0;
    uint32_t OpsAt = 0;  ///< First operand in OpPool.
    uint32_t NameAt = 0; ///< First character in NamePool.
    uint32_t NameLen = 0;
    uint64_t A = 0;      ///< Const value / BinOp / position / max element.
    uint64_t Hash = 0;   ///< Content hash (stable across graphs and runs).
  };

  /// One open-addressing hash-cons slot; Id == NoTerm marks empty.
  struct Slot {
    uint64_t Hash = 0;
    TermId Id = NoTerm;
  };

  /// Region-name slice of one Fold region (entry/next term ids live in the
  /// Fold node's pooled operands; only the name needs extra storage).
  struct RegionNameRec {
    uint32_t NameAt = 0;
    uint32_t NameLen = 0;
  };

  /// Per-Fold record. Folds are appended in increasing TermId order, so
  /// foldInfo() resolves by binary search over FoldRecs.
  struct FoldRec {
    TermId Fold = NoTerm;
    uint32_t NumCarried = 0;
    uint32_t RegionsAt = 0; ///< First region in RegionNames.
    uint32_t NumRegions = 0;
  };

  std::vector<Node> Nodes;
  std::vector<TermId> OpPool;
  std::vector<char> NamePool;
  std::vector<Slot> Table; ///< Open-addressed; size is a power of two.
  size_t TableUsed = 0;
  std::vector<FoldRec> FoldRecs;
  std::vector<RegionNameRec> RegionNames;
  const solver::FactDb *EntryFacts = nullptr;
  const guard::Budget *TheBudget = nullptr;
  /// Upper-bound memo, indexed by TermId: 0 = unknown, 1 = no bound,
  /// 2 = bound in UbValue. (Replaces a per-query std::map; grown lazily.)
  mutable std::vector<uint8_t> UbState;
  mutable std::vector<uint64_t> UbValue;

  //===--------------------------------------------------------------------===//
  // Arena accessors. The returned pointers/views alias the pools: consume
  // them before the next interning constructor call.
  //===--------------------------------------------------------------------===//

  TermKind kindOf(TermId T) const { return Nodes[T].K; }
  uint64_t attrOf(TermId T) const { return Nodes[T].A; }
  unsigned widthOf(TermId T) const { return Nodes[T].W; }
  unsigned numOps(TermId T) const { return Nodes[T].NumOps; }
  TermId op(TermId T, unsigned I) const {
    return OpPool[Nodes[T].OpsAt + I];
  }
  const TermId *ops(TermId T) const { return OpPool.data() + Nodes[T].OpsAt; }
  std::string_view nameOf(TermId T) const {
    const Node &N = Nodes[T];
    return {NamePool.data() + N.NameAt, N.NameLen};
  }

  /// The funnel every constructor passes through: hash, probe the flat
  /// table, and either return the existing id or append a node whose
  /// operands/name are copied into the pools. \p Ops/\p Name must NOT
  /// alias the pools (they are stack/local buffers at every call site).
  TermId intern(TermKind K, uint8_t W, uint64_t A, std::string_view Name,
                const TermId *Ops, uint32_t NumOps);
  bool sameNode(TermId Cand, TermKind K, uint8_t W, uint64_t A,
                std::string_view Name, const TermId *Ops,
                uint32_t NumOps) const;
  static uint64_t hashNode(TermKind K, uint8_t W, uint64_t A,
                           std::string_view Name, const TermId *Ops,
                           uint32_t NumOps);
  void growTable();
  const FoldRec &foldRec(TermId Fold) const;

  /// Non-normalizing Bin constructor used by the affine emitter.
  TermId rawBin(bedrock::BinOp Op, TermId L, TermId R);
  TermId binNonAffine(bedrock::BinOp Op, TermId L, TermId R);
};

} // namespace tv
} // namespace relc

#endif // RELC_TV_TERM_H
