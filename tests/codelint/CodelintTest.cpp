//===- tests/codelint/CodelintTest.cpp - Codelint contract tests ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The target-side analyzer's precision/recall contract (DESIGN.md §4.9):
//
//  - Recall: a seeded wrong-code corpus — an out-of-bounds store, an
//    unbounded (self-recursive) stack, a frame-escaping stackalloc
//    pointer, an underflowing stackm pop — each rejected with its exact
//    kebab-case reason. Every seed starts from a genuinely certified
//    suite program, so the defect is the only difference.
//
//  - Precision: the whole benchmark suite and the §2 stackm examples come
//    out proved Safe on all three analyses.
//
//  - Soundness of the resource envelopes, cross-checked dynamically: the
//    static step bound dominates the fuel the Bedrock2 interpreter
//    actually burns, and the static operand-depth bound dominates the
//    depth the stackm interpreter actually reaches.
//
//  - Refusal-by-default: an exhausted budget degrades verdicts to
//    Unknown (never Unsafe, never a wrong Safe) with a named finding.
//
//===----------------------------------------------------------------------===//

#include "codelint/Driver.h"

#include "bedrock/Interp.h"
#include "programs/Programs.h"
#include "stackm/StackMachine.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::codelint;
using namespace relc::bedrock;

namespace {

/// Compiles suite program \p Name (validation off; these tests are about
/// the analyzer, not the compiler).
programs::CompiledProgram compiled(const std::string &Name) {
  const programs::ProgramDef *P = programs::findProgram(Name);
  EXPECT_NE(P, nullptr) << Name;
  Result<programs::CompiledProgram> C =
      programs::compileAndValidate(*P, /*RunValidation=*/false);
  EXPECT_TRUE(bool(C)) << (C ? "" : C.error().str());
  return C.take();
}

bool hasFinding(const Report &R, const std::string &Reason) {
  for (const Finding &F : R.Findings)
    if (F.Reason == Reason)
      return true;
  return false;
}

/// Analyzes \p Fn under suite program \p Name's ABI (spec/model/hints).
Report analyzeAs(const std::string &Name, const Function &Fn) {
  const programs::ProgramDef *P = programs::findProgram(Name);
  EXPECT_NE(P, nullptr) << Name;
  return analyzeFunction(Fn, P->Spec, P->Model, P->Hints.EntryFacts);
}

//===----------------------------------------------------------------------===//
// Precision: the certified artifacts are provably Safe.
//===----------------------------------------------------------------------===//

TEST(CodelintTest, SuiteProvedSafe) {
  for (const ProgramLint &L : lintSuite()) {
    ASSERT_TRUE(L.CompileOk) << L.Name << ": " << L.CompileError;
    EXPECT_EQ(L.R.overall(), Verdict::Safe) << renderLint(L);
    EXPECT_EQ(L.R.Mem, Verdict::Safe) << renderLint(L);
    EXPECT_EQ(L.R.Stack, Verdict::Safe) << renderLint(L);
    EXPECT_EQ(L.R.Steps, Verdict::Safe) << renderLint(L);
    EXPECT_TRUE(L.R.Findings.empty()) << renderLint(L);
    EXPECT_GT(L.R.StepBound, 0u) << renderLint(L);
  }
}

TEST(CodelintTest, StackExamplesProvedSafe) {
  std::vector<ProgramLint> Ls = lintStackExamples();
  ASSERT_EQ(Ls.size(), 3u);
  for (const ProgramLint &L : Ls) {
    ASSERT_TRUE(L.CompileOk) << L.Name << ": " << L.CompileError;
    EXPECT_EQ(L.R.overall(), Verdict::Safe) << renderLint(L);
    EXPECT_GT(L.R.OperandDepth, 0u) << renderLint(L);
  }
}

//===----------------------------------------------------------------------===//
// Recall: the seeded wrong-code corpus, each with its pinned reason.
//===----------------------------------------------------------------------===//

TEST(CodelintTest, SeededOobStoreRejected) {
  // fnv1a with one extra store at s + len: one byte past the frame.
  programs::CompiledProgram C = compiled("fnv1a");
  Function Bad = C.Result.Fn;
  Bad.Body = seqAll({Bad.Body, store(AccessSize::Byte,
                                     add(var("s"), var("len")), lit(0))});
  Report R = analyzeAs("fnv1a", Bad);
  EXPECT_EQ(R.Mem, Verdict::Unsafe) << R.str();
  EXPECT_EQ(R.overall(), Verdict::Unsafe);
  EXPECT_TRUE(hasFinding(R, "oob-store")) << R.str();
}

TEST(CodelintTest, SeededFrameEscapeRejected) {
  // fnv1a that replaces its hash result with a pointer into a stackalloc
  // frame — the scoped pointer escapes by being returned.
  programs::CompiledProgram C = compiled("fnv1a");
  Function Bad = C.Result.Fn;
  Bad.Body = seqAll({Bad.Body, stackalloc("scr", 8, set("h", var("scr")))});
  Report R = analyzeAs("fnv1a", Bad);
  EXPECT_EQ(R.Mem, Verdict::Unsafe) << R.str();
  EXPECT_TRUE(hasFinding(R, "frame-escape")) << R.str();
}

TEST(CodelintTest, SeededUnboundedStackRejected) {
  // fnv1a that tail-calls itself: no bounded stack frame exists.
  programs::CompiledProgram C = compiled("fnv1a");
  Function Bad = C.Result.Fn;
  Bad.Body =
      seqAll({Bad.Body, call({"h"}, "fnv1a", {var("s"), var("len")})});
  Report R = analyzeAs("fnv1a", Bad);
  EXPECT_EQ(R.Stack, Verdict::Unsafe) << R.str();
  EXPECT_TRUE(hasFinding(R, "unbounded-stack")) << R.str();
}

TEST(CodelintTest, SeededStackmUnderflowRejected) {
  // A bare popAdd on an empty operand stack. The interpreter's total
  // semantics make it a no-op, but no well-formed compilation emits it.
  Report R = analyzeStackProgram({stackm::TOp::popAdd()});
  EXPECT_EQ(R.Stack, Verdict::Unsafe) << R.str();
  EXPECT_TRUE(hasFinding(R, "stack-underflow")) << R.str();
  ASSERT_FALSE(R.Findings.empty());
  EXPECT_EQ(R.Findings.front().Path, "op#0");
}

//===----------------------------------------------------------------------===//
// Dynamic cross-checks: the static envelopes dominate observed behavior.
//===----------------------------------------------------------------------===//

TEST(CodelintTest, StepBoundDominatesInterpreterFuel) {
  programs::CompiledProgram C = compiled("fnv1a");
  Report R = analyzeAs("fnv1a", C.Result.Fn);
  ASSERT_EQ(R.Steps, Verdict::Safe) << R.str();

  std::vector<uint8_t> Input = {'r', 'e', 'l', 'c', '-', 'c', 'o', 'd',
                                'e', 'l', 'i', 'n', 't', '!', '!', '!'};
  TapeEnv Env;
  Result<RunResult> Run = runFunction(
      C.Linked, "fnv1a", {}, Env,
      [&](State &S, std::vector<Word> &Args) -> Status {
        Word Base = S.Mem.alloc(Input.size());
        if (Status F = S.Mem.fill(Base, Input); !F)
          return F;
        Args = {Base, Input.size()};
        return Status::success();
      });
  ASSERT_TRUE(bool(Run)) << (Run ? "" : Run.error().str());
  EXPECT_GT(Run->FuelUsed, 0u);
  EXPECT_LE(Run->FuelUsed, R.StepBound)
      << "static step envelope must dominate observed fuel";
}

TEST(CodelintTest, OperandDepthDominatesObservedDepth) {
  using namespace stackm;
  // The same shapes the driver lints: the traditional compiler's base
  // fragment and the relational compiler with the Mul extension.
  std::vector<TProgram> Programs;
  Programs.push_back(*compileStoT(*sAdd(sAdd(sInt(1), sInt(2)),
                                        sAdd(sInt(3), sInt(4)))));
  SRuleSet Rules = SRuleSet::base();
  Rules.add(makeMulRule());
  Programs.push_back(
      compileRelational(Rules,
                        sAdd(sInt(3), sMul(sInt(4), sAdd(sInt(5), sInt(6)))))
          ->Program);

  for (const TProgram &P : Programs) {
    Report R = analyzeStackProgram(P);
    ASSERT_EQ(R.overall(), Verdict::Safe) << R.str();
    size_t Observed = 0;
    (void)evalT(P, {}, &Observed);
    EXPECT_GE(R.OperandDepth, Observed) << R.str();
    EXPECT_EQ(R.StepBound, P.size()) << "stackm step count is exact";
  }
}

//===----------------------------------------------------------------------===//
// Refusal-by-default: starvation degrades to Unknown, never Unsafe.
//===----------------------------------------------------------------------===//

TEST(CodelintTest, ExhaustedBudgetDegradesToUnknown) {
  programs::CompiledProgram C = compiled("fnv1a");
  const programs::ProgramDef *P = programs::findProgram("fnv1a");
  guard::Budget B(/*DeadlineMs=*/0, /*StepLimit=*/1);
  Report R = analyzeFunction(C.Result.Fn, P->Spec, P->Model,
                             P->Hints.EntryFacts, &B);
  EXPECT_TRUE(R.BudgetExhausted) << R.str();
  EXPECT_EQ(R.overall(), Verdict::Unknown) << R.str();
  EXPECT_NE(R.overall(), Verdict::Unsafe);
  EXPECT_TRUE(hasFinding(R, "analysis-incomplete")) << R.str();
}

//===----------------------------------------------------------------------===//
// Verdict names: stable kebab-case, round-trippable (the certificate
// reader parses them back).
//===----------------------------------------------------------------------===//

TEST(CodelintTest, VerdictNamesRoundTrip) {
  for (Verdict V : {Verdict::Safe, Verdict::Unknown, Verdict::Unsafe}) {
    std::optional<Verdict> Back = verdictFromName(verdictName(V));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, V);
  }
  EXPECT_FALSE(verdictFromName("Safe").has_value()) << "names are kebab-case";
  EXPECT_FALSE(verdictFromName("").has_value());
}

} // namespace
