file(REMOVE_RECURSE
  "librelc_sep.a"
)
