//===- tests/core/LoopRulesTest.cpp - Map/fold/range/while lemmas ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "CoreTestUtil.h"

using namespace relc;
using namespace relc::ir;
using namespace relc::coretest;

namespace {

sep::FnSpec arraySpec(const char *Name, bool InPlace, const char *Ret) {
  sep::FnSpec Spec(Name);
  Spec.arrayArg("s").lenArg("len", "s");
  if (InPlace)
    Spec.retInPlace("s");
  if (Ret)
    Spec.retScalar(Ret);
  return Spec;
}

SourceFn arrayFn(ProgPtr Body) {
  FnBuilder FB("m", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  return std::move(FB).done(std::move(Body));
}

TEST(LoopRulesTest, InPlaceMapCertifies) {
  ProgBuilder B;
  B.let("s", mkMap("s", "b", w2b(xorw(b2w(v("b")), cw(0x55)))));
  EXPECT_CERTIFIES(arrayFn(std::move(B).ret({"s"})),
                   arraySpec("xmask", true, nullptr));
}

TEST(LoopRulesTest, MapUnderDifferentNameIsUnsolvedGoal) {
  ProgBuilder B;
  B.let("t", mkMap("s", "b", v("b")));
  core::Compiler C;
  Result<core::CompileResult> R =
      C.compileFn(arrayFn(std::move(B).ret({"s"})),
                  arraySpec("f", true, nullptr));
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("in-place"), std::string::npos);
}

TEST(LoopRulesTest, MapParamCollisionDetected) {
  // The lambda parameter shadows the length local.
  ProgBuilder B;
  B.let("s", mkMap("s", "len", v("len")));
  core::Compiler C;
  Result<core::CompileResult> R =
      C.compileFn(arrayFn(std::move(B).ret({"s"})),
                  arraySpec("f", true, nullptr));
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("collides"), std::string::npos);
}

TEST(LoopRulesTest, FoldWithMatchingAccNameCertifies) {
  ProgBuilder B;
  B.let("h", mkFold("s", "h", "b", cw(5381),
                    addw(mulw(v("h"), cw(33)), b2w(v("b")))));
  EXPECT_CERTIFIES(arrayFn(std::move(B).ret({"h"})),
                   arraySpec("djb2", false, "h"));
}

TEST(LoopRulesTest, FoldWithDifferentAccNameGetsFixup) {
  // Binding name differs from the lambda's accumulator name: the rule
  // inserts the final rebinding assignment.
  ProgBuilder B;
  B.let("result", mkFold("s", "acc", "b", cw(0), addw(v("acc"), b2w(v("b")))));
  core::CompileResult Out;
  ASSERT_CERTIFIES(arrayFn(std::move(B).ret({"result"})),
                   arraySpec("sum", false, "result"), {}, {}, &Out);
  EXPECT_NE(Out.Fn.str().find("result = acc"), std::string::npos);
}

TEST(LoopRulesTest, FoldResultFeedsLaterBindings) {
  ProgBuilder B;
  B.let("h", mkFold("s", "h", "b", cw(0), xorw(v("h"), b2w(v("b")))))
      .let("r", andw(v("h"), cw(0xff)));
  EXPECT_CERTIFIES(arrayFn(std::move(B).ret({"r"})),
                   arraySpec("xf", false, "r"));
}

TEST(LoopRulesTest, FoldBreakCertifies) {
  // djb2 until the hash has its top byte set — an early-exit fold.
  ProgBuilder B;
  B.let("h", mkFoldBreak("s", "h", "b", cw(5381),
                         addw(mulw(v("h"), cw(33)), b2w(v("b"))),
                         ltu(cw(1ull << 40), v("h"))));
  EXPECT_CERTIFIES(arrayFn(std::move(B).ret({"h"})),
                   arraySpec("djb2_break", false, "h"));
}

TEST(LoopRulesTest, FoldBreakEmitsConjunctionGuard) {
  ProgBuilder B;
  B.let("h", mkFoldBreak("s", "h", "b", cw(0),
                         orw(v("h"), b2w(v("b"))),
                         eqw(v("h"), cw(255))));
  core::CompileResult Out;
  ASSERT_CERTIFIES(arrayFn(std::move(B).ret({"h"})),
                   arraySpec("orb", false, "h"), {}, {}, &Out);
  std::string S = Out.Fn.str();
  EXPECT_NE(S.find("& ((h == 255) == 0)"), std::string::npos);
}

TEST(LoopRulesTest, FoldBreakNameMismatchRejected) {
  ProgBuilder B;
  B.let("x", mkFoldBreak("s", "h", "b", cw(0), v("h"), eqw(v("h"), cw(1))));
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(
      arrayFn(std::move(B).ret({"x"})), arraySpec("f", false, "x"));
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("name-directed"), std::string::npos);
}

TEST(LoopRulesTest, RangeFoldWithScalarAndArrayAccs) {
  // Zero the first (len >> 1) bytes while summing the old values.
  ProgBuilder Body;
  Body.let("sum", addw(v("sum"), b2w(aget("s", v("i")))))
      .let("s", mkPut("s", v("i"), cb(0)));
  ProgBuilder B;
  B.letMulti({"sum", "s"},
             mkRange("i", cw(0), shrw(v("len"), cw(1)),
                     {acc("sum", cw(0)), acc("s", v("s"))},
                     std::move(Body).ret({"sum", "s"})));
  EXPECT_CERTIFIES(arrayFn(std::move(B).ret({"sum", "s"})),
                   arraySpec("zerohalf", true, "sum"));
}

TEST(LoopRulesTest, RangeBoundsEvaluatedOnce) {
  // hi = len is materialized into a compiler-chosen local so body
  // rebindings of unrelated names cannot perturb it; and the index local
  // is dead after the loop (reusable by later bindings).
  ProgBuilder Body;
  Body.let("c", addw(v("c"), cw(1)));
  ProgBuilder B;
  B.letMulti({"c"}, mkRange("i", cw(0), v("len"), {acc("c", cw(0))},
                            std::move(Body).ret({"c"})))
      .let("i", mulw(v("c"), cw(2))); // Reuses the index name.
  EXPECT_CERTIFIES(arrayFn(std::move(B).ret({"i"})),
                   arraySpec("count", false, "i"));
}

TEST(LoopRulesTest, RangeAccNameMismatchIsNameDirectedError) {
  ProgBuilder Body;
  Body.let("a", addw(v("a"), cw(1)));
  ProgBuilder B;
  B.letMulti({"b"}, mkRange("i", cw(0), cw(4), {acc("a", cw(0))},
                            std::move(Body).ret({"a"})));
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(
      arrayFn(std::move(B).ret({"b"})), arraySpec("f", false, "b"));
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("name-directed"), std::string::npos);
}

TEST(LoopRulesTest, BodyBinderCollisionIsRejected) {
  // The body binds "len", which is a live local.
  ProgBuilder Body;
  Body.let("len", addw(v("a"), cw(1))).let("a", v("len"));
  ProgBuilder B;
  B.letMulti({"a"}, mkRange("i", cw(0), cw(4), {acc("a", cw(0))},
                            std::move(Body).ret({"a"})));
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(
      arrayFn(std::move(B).ret({"a"})), arraySpec("f", false, "a"));
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("collides"), std::string::npos);
}

TEST(LoopRulesTest, WhileGuardFactsReachTheBody) {
  // s[i] inside `while (i < len)` needs the guard fact.
  ProgBuilder Body;
  Body.let("h", xorw(v("h"), b2w(aget("s", v("i")))))
      .let("i", addw(v("i"), cw(1)));
  ProgBuilder B;
  B.letMulti({"i", "h"},
             mkWhile({acc("i", cw(0)), acc("h", cw(0))},
                     ltu(v("i"), v("len")), std::move(Body).ret({"i", "h"}),
                     subw(v("len"), v("i"))));
  EXPECT_CERTIFIES(arrayFn(std::move(B).ret({"h"})),
                   arraySpec("wsum", false, "h"));
}

TEST(LoopRulesTest, CarryFoldWhileCertifies) {
  // The ip-checksum carry loop in isolation.
  FnBuilder FB("m", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder Body;
  Body.let("acc", addw(andw(v("acc"), cw(0xffff)), shrw(v("acc"), cw(16))));
  ProgBuilder B;
  B.letMulti({"acc"}, mkWhile({acc("acc", v("x"))},
                              nez(shrw(v("acc"), cw(16))),
                              std::move(Body).ret({"acc"}), v("acc")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"acc"}));
  sep::FnSpec Spec("carry");
  Spec.scalarArg("x").retScalar("acc");
  EXPECT_CERTIFIES(Fn, Spec);
}

TEST(LoopRulesTest, NestedLoopsCompile) {
  // for i in [0, len>>2): fold the bytes of each 4-block.
  ProgBuilder Inner;
  Inner.let("acc", addw(v("acc"), b2w(aget("s", addw(mulw(v("i"), cw(4)),
                                                     v("j"))))));
  ProgBuilder Outer;
  Outer.letMulti({"acc"}, mkRange("j", cw(0), cw(4), {acc("acc", v("acc"))},
                                  std::move(Inner).ret({"acc"})));
  ProgBuilder B;
  B.letMulti({"acc"},
             mkRange("i", cw(0), shrw(v("len"), cw(2)), {acc("acc", cw(0))},
                     std::move(Outer).ret({"acc"})));
  EXPECT_CERTIFIES(arrayFn(std::move(B).ret({"acc"})),
                   arraySpec("blocksum", false, "acc"));
}

} // namespace
