//===- examples/extension_writer.cpp - The §4.1.1 writer walkthrough -------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// §4.1.1 walks through adding a writer monad "starting from a blank
// file". This example replays that story:
//
//   1. build a compiler that knows everything *except* the writer rule,
//   2. try to compile a writer-monad model — the compiler stops with the
//      printed unsolved goal, whose shape tells you the missing lemma
//      ("users never have to guess ... they can learn the shape of
//      missing lemmas from the goals printed"),
//   3. register the writer rule (one object) and recompile: the model now
//      derives, and validation checks the writer lift — accumulated
//      output equals the target trace's write events.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "core/rules/Rules.h"
#include "ir/Build.h"
#include "validate/Validate.h"

#include <cstdio>

using namespace relc;
using namespace relc::ir;

int main() {
  // RELC-SECTION-BEGIN: writer-example
  // A writer-monad model: emit k, 2k and 3k, return their sum.
  FnBuilder FB("emit3_model", Monad::Writer);
  FB.wordParam("k");
  ProgBuilder Body;
  Body.let("_1", mkTell(v("k")))
      .let("d", mulw(v("k"), cw(2)))
      .let("_2", mkTell(v("d")))
      .let("t", mulw(v("k"), cw(3)))
      .let("_3", mkTell(v("t")))
      .let("sum", addw(addw(v("k"), v("d")), v("t")));
  SourceFn Model = std::move(FB).done(std::move(Body).ret({"sum"}));
  sep::FnSpec Spec("emit3");
  Spec.scalarArg("k").retScalar("sum");
  // RELC-SECTION-END: writer-example

  // 1. A compiler with every standard rule *except* compile_writer_tell.
  core::Compiler Partial{core::Compiler::EmptyTag{}};
  Partial.rules().add(core::makeLetRule());
  Partial.rules().add(core::makeArrayPutRule());
  Partial.rules().add(core::makeMapRule());
  Partial.rules().add(core::makeFoldRule());
  Partial.rules().add(core::makeRangeRule());
  Partial.rules().add(core::makeWhileRule());
  Partial.rules().add(core::makeIfRule());
  Partial.rules().add(core::makeStackInitRule());
  Partial.rules().add(core::makeCellGetRule());
  Partial.rules().add(core::makeCellPutRule());
  Partial.rules().add(core::makeIoReadRule());
  Partial.rules().add(core::makeIoWriteRule());

  // 2. Compilation stops at the unsolved goal.
  Result<core::CompileResult> Fail = Partial.compileFn(Model, Spec);
  if (Fail) {
    std::fprintf(stderr, "expected an unsolved goal!\n");
    return 1;
  }
  std::printf("=== before the extension: the printed unsolved goal ===\n"
              "%s\n\n",
              Fail.error().str().c_str());

  // 3. Plug in the writer lemma and rerun.
  Partial.rules().add(core::makeWriterTellRule());
  Result<core::CompileResult> Ok = Partial.compileFn(Model, Spec);
  if (!Ok) {
    std::fprintf(stderr, "still failing:\n%s\n", Ok.error().str().c_str());
    return 1;
  }
  std::printf("=== after registering compile_writer_tell ===\n%s\n",
              Ok->Fn.str().c_str());

  bedrock::Module Linked;
  Linked.Functions.push_back(Ok->Fn);
  Status V = validate::validate(Model, Spec, *Ok, Linked);
  if (!V) {
    std::fprintf(stderr, "validation failed:\n%s\n", V.error().str().c_str());
    return 1;
  }
  std::printf("validated: accumulated writer output == target write "
              "events, sum == k + 2k + 3k.\n");
  return 0;
}
