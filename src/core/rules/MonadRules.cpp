//===- core/rules/MonadRules.cpp - Extensional effects (§3.4.1) ------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The extensional-effect extensions: nondeterminism (Table 1: alloc,
// peek), IO (Table 1: read, write) and the writer monad (the §4.1.1
// walkthrough). Each rule notes the monad-specific lift that justifies
// threading the postcondition through bind; the validator interprets those
// lifts when comparing effects (existential for nondet, trace-prefix
// accumulation for writer, trace equality for IO).
//
//===----------------------------------------------------------------------===//

#include "core/rules/Rules.h"
#include "core/rules/RulesCommon.h"

namespace relc {
namespace core {

using bedrock::CmdPtr;
using sep::HeapClause;
using sep::SymVal;
using sep::TargetSlot;
using solver::lc;

namespace {

//===----------------------------------------------------------------------===//
// Nondeterminism monad.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: lemma-nondet-alloc
/// compile_nondet_alloc: `let/n b <- nondet_alloc n` — an arbitrary n-byte
/// buffer (the paper's example: "a list of n unspecified natural numbers
/// is represented as (λ l ⇒ length l = n)"). Realized by a stackalloc
/// whose contents start unconstrained; the buffer lives until the end of
/// the enclosing scope.
class NondetAllocRule : public StmtRule {
public:
  std::string name() const override { return "compile_nondet_alloc"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::NondetAlloc};
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::NondetAlloc>(B.Bound.get()) && B.Names.size() == 1;
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *N = cast<ir::NondetAlloc>(B.Bound.get());
    const std::string &Name = B.Names[0];
    if (Ctx.State.Locals.count(Name))
      return Error("nondet_alloc binding '" + Name +
                   "' collides with a live local; rename it");
    D.Notes.push_back("lift: λ ma st. ∃ a, ma a ∧ P a st (nondet)");
    std::string PtrSym = Ctx.State.freshSym("nd_" + Name);
    HeapClause C;
    C.TheKind = HeapClause::Kind::Array;
    C.Ptr = PtrSym;
    C.Payload = Name;
    C.Elt = ir::EltKind::U8;
    C.Len = lc(int64_t(N->size()));
    C.FromStack = true;
    Ctx.State.Heap.push_back(C);
    Ctx.State.Locals[Name] =
        TargetSlot::ptr(SymVal::sym(PtrSym), int(Ctx.State.Heap.size()) - 1);

    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    if (Ctx.State.Heap.empty() || Ctx.State.Heap.back().Ptr != PtrSym)
      return Error("nondet_alloc scope for '" + Name +
                   "' ended with a non-LIFO heap shape");
    Ctx.State.Heap.pop_back();
    Ctx.State.Locals.erase(Name);
    return bedrock::stackalloc(Name, N->size(), Rest.take());
  }
};
// RELC-SECTION-END: lemma-nondet-alloc

// RELC-SECTION-BEGIN: lemma-nondet-peek
/// compile_nondet_peek: `let/n x <- nondet_peek ()` — an arbitrary word,
/// realized by reading one word of unconstrained stack memory.
class NondetPeekRule : public StmtRule {
public:
  std::string name() const override { return "compile_nondet_peek"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::NondetPeek};
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::NondetPeek>(B.Bound.get()) && B.Names.size() == 1;
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const std::string &Name = B.Names[0];
    D.Notes.push_back("lift: λ ma st. ∃ a, ma a ∧ P a st (nondet)");
    SymVal V = freshTypedSym(Ctx.State, Name, ir::Ty::Word);
    Ctx.State.Locals[Name] = TargetSlot::scalar(V, ir::Ty::Word);
    std::string Scratch = Ctx.State.freshLocal("peek");
    CmdPtr Peek = bedrock::stackalloc(
        Scratch, 8,
        bedrock::set(Name, bedrock::load(bedrock::AccessSize::Eight,
                                         bedrock::var(Scratch))));
    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    return bedrock::seq(Peek, Rest.take());
  }
};
// RELC-SECTION-END: lemma-nondet-peek

//===----------------------------------------------------------------------===//
// IO monad.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: lemma-io-read
/// compile_io_read: `let/n x <- read ()` — an observable interaction; the
/// environment chooses the result and the event is appended to the trace.
class IoReadRule : public StmtRule {
public:
  std::string name() const override { return "compile_io_read"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::IoRead};
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::IoRead>(B.Bound.get()) && B.Names.size() == 1;
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const std::string &Name = B.Names[0];
    D.Notes.push_back("lift: trace-indexed (io): tr' = tr ++ [read ↦ x]");
    SymVal V = freshTypedSym(Ctx.State, Name, ir::Ty::Word);
    Ctx.State.Locals[Name] = TargetSlot::scalar(V, ir::Ty::Word);
    CmdPtr Read = bedrock::interact({Name}, "read", {});
    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    return bedrock::seq(Read, Rest.take());
  }
};
// RELC-SECTION-END: lemma-io-read

// RELC-SECTION-BEGIN: lemma-io-write
/// compile_io_write: `let/n _ <- write e` — emits the value to the
/// environment; observable in the trace.
class IoWriteRule : public StmtRule {
public:
  std::string name() const override { return "compile_io_write"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::IoWrite};
    P.SubGoals = GoalPattern::Emits::Expr;
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::IoWrite>(B.Bound.get()) && B.Names.size() == 1;
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *W = cast<ir::IoWrite>(B.Bound.get());
    D.Notes.push_back("lift: trace-indexed (io): tr' = tr ++ [write e]");
    Result<CompiledExpr> V =
        Ctx.exprs().compileTyped(*W->expr(), ir::Ty::Word, D);
    if (!V)
      return V.takeError();
    std::vector<CmdPtr> Cmds = V->Pre;
    Cmds.push_back(bedrock::interact({}, "write", {V->E}));
    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-io-write

//===----------------------------------------------------------------------===//
// Writer monad (§4.1.1 walkthrough).
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: lemma-writer-tell
/// compile_writer_tell: `let/n _ <- tell e`. The writer lift accumulates
/// output (`lift o P = λ ma st. P (fst ma) (o ++ snd ma) st`, §3.4.1);
/// operationally the accumulated output maps to write events on the target
/// trace, which is how the paper's walkthrough wires the writer monad to
/// Bedrock2 I/O.
class WriterTellRule : public StmtRule {
public:
  std::string name() const override { return "compile_writer_tell"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::WriterTell};
    P.SubGoals = GoalPattern::Emits::Expr;
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::WriterTell>(B.Bound.get()) && B.Names.size() == 1;
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *W = cast<ir::WriterTell>(B.Bound.get());
    D.Notes.push_back("lift: λ o P ma st. P (fst ma) (o ++ snd ma) st "
                      "(writer)");
    Result<CompiledExpr> V =
        Ctx.exprs().compileTyped(*W->expr(), ir::Ty::Word, D);
    if (!V)
      return V.takeError();
    std::vector<CmdPtr> Cmds = V->Pre;
    Cmds.push_back(bedrock::interact({}, "write", {V->E}));
    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-writer-tell

//===----------------------------------------------------------------------===//
// External calls (linking).
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: lemma-extern-call
/// compile_call: `let/n (xs..) := call f args` — a call to another
/// (relationally compiled or handwritten-and-specified) target function.
/// Scalar arguments and results only; results become fresh locals.
class ExternCallRule : public StmtRule {
public:
  std::string name() const override { return "compile_call"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::ExternCall};
    P.MinNames = 0;
    P.MaxNames = GoalPattern::kAnyArity;
    P.SideConds = {"names-match-callee-rets"};
    P.SubGoals = GoalPattern::Emits::Expr;
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::ExternCall>(B.Bound.get());
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *C = cast<ir::ExternCall>(B.Bound.get());
    if (B.Names.size() != C->numRets())
      return Error("call binds " + std::to_string(B.Names.size()) +
                   " names for " + std::to_string(C->numRets()) + " results");
    std::vector<bedrock::ExprPtr> Args;
    std::vector<CmdPtr> Cmds;
    for (const ir::ExprPtr &A : C->args()) {
      Result<CompiledExpr> V = Ctx.exprs().compile(*A, D);
      if (!V)
        return V.takeError();
      Cmds.insert(Cmds.end(), V->Pre.begin(), V->Pre.end());
      Args.push_back(V->E);
    }
    for (const std::string &Name : B.Names) {
      auto It = Ctx.State.Locals.find(Name);
      if (It != Ctx.State.Locals.end() &&
          It->second.TheKind == TargetSlot::Kind::Ptr)
        return Error("call result '" + Name +
                     "' would overwrite a live pointer local");
      SymVal V = freshTypedSym(Ctx.State, Name, ir::Ty::Word);
      Ctx.State.Locals[Name] = TargetSlot::scalar(V, ir::Ty::Word);
    }
    Ctx.noteExternalCallee(C->callee());
    D.SideConds.push_back("callee \"" + C->callee() +
                          "\" linked with a compatible spec");
    Cmds.push_back(bedrock::call(B.Names, C->callee(), std::move(Args)));
    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-extern-call

} // namespace

std::unique_ptr<StmtRule> makeNondetAllocRule() {
  return std::make_unique<NondetAllocRule>();
}
std::unique_ptr<StmtRule> makeNondetPeekRule() {
  return std::make_unique<NondetPeekRule>();
}
std::unique_ptr<StmtRule> makeIoReadRule() {
  return std::make_unique<IoReadRule>();
}
std::unique_ptr<StmtRule> makeIoWriteRule() {
  return std::make_unique<IoWriteRule>();
}
std::unique_ptr<StmtRule> makeWriterTellRule() {
  return std::make_unique<WriterTellRule>();
}
std::unique_ptr<StmtRule> makeExternCallRule() {
  return std::make_unique<ExternCallRule>();
}

} // namespace core
} // namespace relc
