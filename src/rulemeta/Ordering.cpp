//===- rulemeta/Ordering.cpp - Shadowing, overlap, and dead rules ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Analyses 1 and 3: in a first-match database, registration order *is*
// semantics. A later rule whose selection pattern an earlier rule covers
// can never fire (rule-shadowed); two unconditional rules whose patterns
// merely intersect fire order-dependently (rule-overlap); a rule whose
// pattern is unsatisfiable, or whose every selectable binding is claimed
// by the union of earlier rules, is registered for nothing (rule-dead).
//
// Deliberately NOT flagged: a *conditional* rule (ExprGoalPattern::
// MatchConds) registered in front of a generic same-kind rule. That is
// the paper's specialization idiom — addFront a narrow program-specific
// lemma to shadow the generic one on a slice — and the narrow rule's
// extra predicates make the overlap intended, not accidental.
//
//===----------------------------------------------------------------------===//

#include "rulemeta/Pattern.h"
#include "rulemeta/RuleMeta.h"

#include <algorithm>
#include <utility>

namespace relc {
namespace rulemeta {

namespace {

struct NamedPattern {
  std::string Name;
  SelPattern Sel;
};

std::string bitsStr(uint64_t Bits, bool Stmt) {
  std::string Out;
  for (unsigned B = 0; B < 64; ++B)
    if (Bits & (1ULL << B))
      Out += (Out.empty() ? "" : ",") + kindBitName(B, Stmt);
  return Out;
}

/// True iff the union of \p Intervals covers [Lo, Hi].
bool intervalsCover(std::vector<std::pair<uint64_t, uint64_t>> Intervals,
                    uint64_t Lo, uint64_t Hi) {
  std::sort(Intervals.begin(), Intervals.end());
  uint64_t Need = Lo;
  for (const auto &[S, E] : Intervals) {
    if (S > Need)
      return false; // Gap below the next interval.
    if (E >= Hi)
      return true;
    if (E + 1 > Need)
      Need = E + 1;
  }
  return false;
}

/// Runs the ordering analyses over one engine's pattern list.
void analyzeEngine(const std::vector<NamedPattern> &Rules, bool Stmt,
                   Report &R) {
  std::vector<bool> PairShadowed(Rules.size(), false);
  for (size_t J = 0; J < Rules.size(); ++J) {
    const NamedPattern &Later = Rules[J];
    if (!Later.Sel.satisfiable()) {
      R.add(Reason::RuleDead, Later.Name,
            "selection pattern is unsatisfiable (empty kind set or inverted "
            "arity range); the rule can never fire");
      continue;
    }
    for (size_t I = 0; I < J; ++I) {
      const NamedPattern &Earlier = Rules[I];
      if (!Earlier.Sel.satisfiable())
        continue;
      if (Earlier.Sel.subsumes(Later.Sel)) {
        R.add(Reason::RuleShadowed, Later.Name,
              "earlier rule '" + Earlier.Name +
                  "' subsumes its selection pattern; in a first-match "
                  "database it can never fire");
        PairShadowed[J] = true;
        break; // One subsumer is enough; union-dead would double-report.
      }
      if (!Earlier.Sel.Conditional && !Later.Sel.Conditional &&
          Earlier.Sel.intersects(Later.Sel))
        R.add(Reason::RuleOverlap, Later.Name,
              "fires order-dependently with earlier rule '" + Earlier.Name +
                  "' on {" +
                  bitsStr(Earlier.Sel.KindBits & Later.Sel.KindBits, Stmt) +
                  "}");
    }
    if (PairShadowed[J])
      continue;
    // Union-shadowing: no single earlier rule covers the pattern, but for
    // every kind it selects, earlier unconditional rules jointly cover the
    // whole arity range.
    bool AllKindsCovered = true;
    for (unsigned B = 0; B < 64 && AllKindsCovered; ++B) {
      if (!(Later.Sel.KindBits & (1ULL << B)))
        continue;
      std::vector<std::pair<uint64_t, uint64_t>> Claimed;
      for (size_t I = 0; I < J; ++I) {
        const SelPattern &E = Rules[I].Sel;
        if (E.satisfiable() && !E.Conditional && (E.KindBits & (1ULL << B)))
          Claimed.push_back({E.MinNames, E.MaxNames});
      }
      AllKindsCovered =
          intervalsCover(std::move(Claimed), Later.Sel.MinNames,
                         Later.Sel.MaxNames);
    }
    if (AllKindsCovered)
      R.add(Reason::RuleDead, Later.Name,
            "every binding it selects is already claimed by the union of "
            "earlier rules; it can never fire");
  }
}

} // namespace

Report analyzeOrdering(const core::RuleSet &RS, const core::ExprRuleSet &ES) {
  Report R;
  std::vector<NamedPattern> Stmt;
  for (size_t I = 0; I < RS.size(); ++I)
    Stmt.push_back({RS[I].name(), SelPattern::of(RS[I].pattern())});
  analyzeEngine(Stmt, /*Stmt=*/true, R);

  std::vector<NamedPattern> Expr;
  for (size_t I = 0; I < ES.size(); ++I)
    Expr.push_back({ES[I].name(), SelPattern::of(ES[I].pattern())});
  analyzeEngine(Expr, /*Stmt=*/false, R);
  return R;
}

} // namespace rulemeta
} // namespace relc
