//===- tests/tv/TvSuiteTest.cpp - The suite proves, with certificates ------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// ISSUE acceptance: every one of the seven benchmark programs must come
// out of the compiler *Proved* equivalent to its model — zero escapes
// into Inconclusive — and the emitted certificate must be well formed.
//
//===----------------------------------------------------------------------===//

#include "cert/Writer.h"
#include "programs/Programs.h"
#include "tv/Tv.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

tv::TvReport validateProgram(const programs::ProgramDef &P,
                             cert::ContentKey *Key = nullptr) {
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.error().str());
  if (Key)
    *Key = cert::contentKey(P.Model, P.Hints.EntryFacts, P.Spec, R->Fn);
  return tv::validateTranslation(P.Model, P.Spec, R->Fn, P.Hints.EntryFacts);
}

TEST(TvSuiteTest, AllSevenProgramsProve) {
  unsigned N = 0;
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    tv::TvReport Rep = validateProgram(P);
    EXPECT_TRUE(Rep.proved()) << Rep.str();
    ++N;
  }
  EXPECT_EQ(N, 7u);
}

TEST(TvSuiteTest, EveryOutputChannelMatches) {
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    tv::TvReport Rep = validateProgram(P);
    ASSERT_TRUE(Rep.proved()) << Rep.str();
    // The fnspec promises at least one output; all channels compared and
    // matched, each with a nonzero term hash on both sides.
    EXPECT_FALSE(Rep.Outputs.empty()) << P.Name;
    for (const tv::OutputRecord &O : Rep.Outputs) {
      EXPECT_TRUE(O.Matched) << P.Name << ": " << O.Name;
      EXPECT_EQ(O.SrcHash, O.TgtHash) << P.Name << ": " << O.Name;
      EXPECT_NE(O.SrcHash, 0u) << P.Name << ": " << O.Name;
    }
  }
}

TEST(TvSuiteTest, LoopyProgramsRecordMatchedFolds) {
  // Programs with source loops must carry matched loop records whose fold
  // hashes are per-loop distinct within a program.
  for (const char *Name : {"fnv1a", "crc32", "upstr", "utf8", "ip"}) {
    const programs::ProgramDef *P = programs::findProgram(Name);
    ASSERT_NE(P, nullptr);
    tv::TvReport Rep = validateProgram(*P);
    ASSERT_TRUE(Rep.proved()) << Rep.str();
    EXPECT_FALSE(Rep.Loops.empty()) << Name;
    for (size_t I = 0; I < Rep.Loops.size(); ++I) {
      EXPECT_EQ(Rep.Loops[I].Ordinal, unsigned(I));
      EXPECT_NE(Rep.Loops[I].FoldHash, 0u);
      for (size_t J = I + 1; J < Rep.Loops.size(); ++J)
        EXPECT_NE(Rep.Loops[I].FoldHash, Rep.Loops[J].FoldHash) << Name;
    }
  }
}

TEST(TvSuiteTest, CertificateIsMachineReadable) {
  const programs::ProgramDef *P = programs::findProgram("crc32");
  ASSERT_NE(P, nullptr);
  cert::ContentKey Key;
  tv::TvReport Rep = validateProgram(*P, &Key);
  ASSERT_TRUE(Rep.proved()) << Rep.str();
  std::string Cert = cert::Writer::write(cert::fromTvReport(Rep, Key));
  EXPECT_NE(Cert.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(Cert.find("\"producer\": \"relc-tv\""), std::string::npos);
  EXPECT_NE(Cert.find("\"verdict\": \"proved\""), std::string::npos);
  EXPECT_NE(Cert.find("\"function\": \"crc32\""), std::string::npos);
  EXPECT_NE(Cert.find("\"model_hash\""), std::string::npos);
  EXPECT_NE(Cert.find("\"fold_hash\""), std::string::npos);
  EXPECT_NE(Cert.find("\"witness\""), std::string::npos);
  EXPECT_NE(Cert.find("\"outputs\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy; the JSON only
  // nests via the fixed skeleton, and strings escape their delimiters).
  EXPECT_EQ(std::count(Cert.begin(), Cert.end(), '{'),
            std::count(Cert.begin(), Cert.end(), '}'));
  EXPECT_EQ(std::count(Cert.begin(), Cert.end(), '['),
            std::count(Cert.begin(), Cert.end(), ']'));
}

TEST(TvSuiteTest, CertificateIsDeterministic) {
  const programs::ProgramDef *P = programs::findProgram("fnv1a");
  ASSERT_NE(P, nullptr);
  cert::ContentKey KA, KB;
  tv::TvReport A = validateProgram(*P, &KA);
  tv::TvReport B = validateProgram(*P, &KB);
  // Same model + code -> same content key and byte-identical certificate
  // (cacheable; warm-cache runs must replay cold runs exactly).
  EXPECT_TRUE(KA == KB);
  EXPECT_EQ(cert::Writer::write(cert::fromTvReport(A, KA)),
            cert::Writer::write(cert::fromTvReport(B, KB)));
}

} // namespace
