file(REMOVE_RECURSE
  "../generated/crc32.c"
  "../generated/fasta.c"
  "../generated/fnv1a.c"
  "../generated/ip.c"
  "../generated/m3s.c"
  "../generated/relc_generated.h"
  "../generated/upstr.c"
  "../generated/utf8.c"
  "CMakeFiles/relc_generate_c"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/relc_generate_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
