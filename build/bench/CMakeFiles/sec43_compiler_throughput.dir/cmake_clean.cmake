file(REMOVE_RECURSE
  "CMakeFiles/sec43_compiler_throughput.dir/sec43_compiler_throughput.cpp.o"
  "CMakeFiles/sec43_compiler_throughput.dir/sec43_compiler_throughput.cpp.o.d"
  "sec43_compiler_throughput"
  "sec43_compiler_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_compiler_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
