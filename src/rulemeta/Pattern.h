//===- rulemeta/Pattern.h - Selection-pattern algebra -----------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Internal to rulemeta: a uniform selection-pattern representation over
// either rule engine, and the subsumption/intersection algebra the
// ordering and dead-rule analyses run on. Selection semantics only —
// apply-time side conditions are hard errors after selection and do not
// affect which rule fires, so they deliberately do not appear here.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_RULEMETA_PATTERN_H
#define RELC_RULEMETA_PATTERN_H

#include "core/ExprCompile.h"
#include "core/Rule.h"

#include <cstdint>
#include <string>

namespace relc {
namespace rulemeta {

/// One rule's selection predicate, engine-neutral: a kind bitmask (both
/// engines have far fewer than 64 kinds), a bound-name arity interval
/// (expression rules use the degenerate [0, any]), and whether the rule
/// declared extra selection predicates it could not express as kinds
/// (ExprGoalPattern::MatchConds) — a conditional pattern is strictly
/// narrower than its kinds suggest, so it never subsumes anything.
struct SelPattern {
  uint64_t KindBits = 0;
  uint64_t MinNames = 0;
  uint64_t MaxNames = ~0ULL;
  bool Conditional = false;

  static SelPattern of(const core::GoalPattern &P);
  static SelPattern of(const core::ExprGoalPattern &P);

  bool satisfiable() const { return KindBits != 0 && MinNames <= MaxNames; }

  /// This pattern is selected for every binding the other is — kinds and
  /// arity both cover — and is unconditional, so the earlier rule always
  /// wins the first-match race.
  bool subsumes(const SelPattern &O) const {
    return !Conditional && (KindBits & O.KindBits) == O.KindBits &&
           MinNames <= O.MinNames && MaxNames >= O.MaxNames;
  }

  /// Some binding selects both patterns (conditional patterns count: they
  /// *may* fire on the intersection).
  bool intersects(const SelPattern &O) const {
    return (KindBits & O.KindBits) != 0 &&
           MinNames <= O.MaxNames && O.MinNames <= MaxNames;
  }
};

/// Human name for bit \p Bit of a statement (Stmt=true) or expression
/// pattern's KindBits, e.g. "list-map" / "select".
std::string kindBitName(unsigned Bit, bool Stmt);

} // namespace rulemeta
} // namespace relc

#endif // RELC_RULEMETA_PATTERN_H
