/*===- bench/ref/ext_hooks.c - Environment hooks for generated C ----------===
 *
 * Part of relc, a C++ reproduction of "Relational Compilation for
 * Performance-Critical Applications" (PLDI 2022).
 *
 * Default implementations of the external-interaction hooks declared by
 * every generated translation unit. The benchmark programs are pure and
 * never call these; IO/writer examples linked against generated code get
 * a simple counting tape.
 *
 *===----------------------------------------------------------------------===*/

#include <stdint.h>

static uintptr_t relc_ext_read_counter = 0;
static uintptr_t relc_ext_write_sink = 0;

uintptr_t relc_ext_read(void) { return relc_ext_read_counter++; }

void relc_ext_write(uintptr_t w) { relc_ext_write_sink ^= w; }
