# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("stackm")
subdirs("ir")
subdirs("bedrock")
subdirs("sep")
subdirs("solver")
subdirs("core")
subdirs("reflect")
subdirs("cgen")
subdirs("validate")
subdirs("extraction")
subdirs("programs")
