//===- validate/Inputs.cpp - Differential input generation -----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// In its own translation unit, apart from validate(): the benchmark
// programs' custom generators call defaultInputs, so the program registry
// drags this object into every binary that links it — which must not
// also drag in validate() and, through it, the TV driver (the checker's
// independence guarantee is enforced with nm over exactly this split).
//
//===----------------------------------------------------------------------===//

#include "validate/Validate.h"

namespace relc {
namespace validate {

using ir::Value;

std::vector<Value> defaultInputs(const ir::SourceFn &Fn, Rng &R,
                                 size_t SizeHint) {
  std::vector<Value> Out;
  for (const ir::Param &P : Fn.Params) {
    switch (P.TheKind) {
    case ir::Param::Kind::ScalarWord:
      Out.push_back(Value::word(R.next()));
      break;
    case ir::Param::Kind::List: {
      std::vector<Value> Elems;
      for (size_t I = 0; I < SizeHint; ++I) {
        if (P.Elt == ir::EltKind::U8)
          Elems.push_back(Value::byte(R.nextByte()));
        else
          Elems.push_back(Value::word(R.next() & ir::eltMask(P.Elt)));
      }
      Out.push_back(Value::list(P.Elt, std::move(Elems)));
      break;
    }
    case ir::Param::Kind::Cell:
      Out.push_back(Value::list(ir::EltKind::U64, {Value::word(R.next())}));
      break;
    }
  }
  return Out;
}

} // namespace validate
} // namespace relc
