//===- pipeline/Scheduler.cpp - Dependency-aware job scheduler -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Scheduler.h"

#include "support/Fault.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace relc {
namespace pipeline {

unsigned resolveJobs(unsigned Requested, std::string *Note) {
  if (Requested == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    if (HW == 0) {
      if (Note)
        *Note = "-j 0: hardware concurrency unknown; falling back to "
                "serial (-j 1)";
      return 1;
    }
    unsigned N = std::min(HW, 64u);
    if (Note)
      *Note = "-j 0: using all " + std::to_string(N) + " hardware threads";
    return N;
  }
  if (Requested > 64) {
    if (Note)
      *Note = "-j " + std::to_string(Requested) + ": clamped to 64 threads";
    return 64;
  }
  return Requested;
}

JobId JobGraph::add(std::string Name, std::function<void()> Work,
                    std::vector<JobId> Deps) {
  JobId Id = JobId(Jobs.size());
  Job J;
  J.Name = std::move(Name);
  J.Work = std::move(Work);
  for (JobId D : Deps) {
    assert(D < Id && "dependencies must be added before their dependents");
    J.Deps.push_back(D);
    Jobs[D].Dependents.push_back(Id);
  }
  J.PendingDeps = unsigned(J.Deps.size());
  Jobs.push_back(std::move(J));
  return Id;
}

namespace {

/// Runs one job's work, capturing anything it throws.
void execute(const std::string &Name, std::string *ErrorText, JobState *State,
             const std::function<void()> &Work) {
  // Fault site: a job boundary. Keyed by job name, so serial and parallel
  // runs inject identically; transient hits are absorbed here (the retry
  // is immediate — job bodies are idempotent), persistent ones make the
  // job Threw with the injection named, exactly like a genuine throw.
  if (auto H = fault::fireWithRetry(fault::Site::SchedulerJob, Name)) {
    *State = JobState::Threw;
    *ErrorText = H->describe();
    return;
  }
  try {
    Work();
    *State = JobState::Done;
  } catch (const std::exception &E) {
    *State = JobState::Threw;
    *ErrorText = E.what();
  } catch (...) {
    *State = JobState::Threw;
    *ErrorText = "unknown exception";
  }
}

} // namespace

void JobGraph::runSerial() {
  // Submission order is topological, so a single in-order sweep respects
  // every dependency — and is, bit for bit, the pre-pipeline behavior.
  for (Job &J : Jobs) {
    bool DepsOk = std::all_of(J.Deps.begin(), J.Deps.end(), [&](JobId D) {
      return Jobs[D].State == JobState::Done;
    });
    if (!DepsOk)
      continue; // Stays NotRun: an upstream job threw.
    execute(J.Name, &J.ErrorText, &J.State, J.Work);
  }
}

namespace {

/// One worker's mutex-guarded deque. Owner pushes/pops at the back;
/// thieves take from the front.
struct WorkDeque {
  std::mutex Mu;
  std::deque<JobId> Q;

  void push(JobId J) {
    std::lock_guard<std::mutex> L(Mu);
    Q.push_back(J);
  }
  bool popBack(JobId *J) {
    std::lock_guard<std::mutex> L(Mu);
    if (Q.empty())
      return false;
    *J = Q.back();
    Q.pop_back();
    return true;
  }
  bool stealFront(JobId *J) {
    std::lock_guard<std::mutex> L(Mu);
    if (Q.empty())
      return false;
    *J = Q.front();
    Q.pop_front();
    return true;
  }
};

} // namespace

void JobGraph::runParallel(unsigned NumThreads) {
  std::vector<WorkDeque> Deques(NumThreads);
  std::atomic<size_t> Unfinished{Jobs.size()};
  std::mutex IdleMu;
  std::condition_variable IdleCv;

  // Per-job bookkeeping shared across workers. PendingDeps is decremented
  // atomically as dependencies finish; DepFailed poisons dependents of a
  // throwing job so they complete (for accounting) without running.
  std::vector<std::atomic<unsigned>> Pending(Jobs.size());
  std::vector<std::atomic<bool>> DepFailed(Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    Pending[I].store(Jobs[I].PendingDeps, std::memory_order_relaxed);
    DepFailed[I].store(false, std::memory_order_relaxed);
  }

  // Seed: initially-ready jobs, dealt round-robin across workers.
  {
    unsigned Next = 0;
    for (size_t I = 0; I < Jobs.size(); ++I)
      if (Jobs[I].PendingDeps == 0)
        Deques[Next++ % NumThreads].push(JobId(I));
  }

  auto Finish = [&](JobId Id, unsigned Self) {
    // Release dependents; a failure (Threw or skipped) cascades.
    bool Failed = Jobs[Id].State != JobState::Done;
    for (JobId Dep : Jobs[Id].Dependents) {
      if (Failed)
        DepFailed[Dep].store(true, std::memory_order_release);
      if (Pending[Dep].fetch_sub(1, std::memory_order_acq_rel) == 1)
        Deques[Self].push(Dep);
    }
    if (Unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> L(IdleMu);
      IdleCv.notify_all();
    } else {
      IdleCv.notify_one();
    }
  };

  auto Worker = [&](unsigned Self) {
    for (;;) {
      JobId Id = NoJob;
      if (!Deques[Self].popBack(&Id)) {
        // Steal oldest-first from the next nonempty victim.
        for (unsigned V = 1; V < NumThreads && Id == NoJob; ++V)
          if (Deques[(Self + V) % NumThreads].stealFront(&Id))
            break;
      }
      if (Id == NoJob) {
        std::unique_lock<std::mutex> L(IdleMu);
        if (Unfinished.load(std::memory_order_acquire) == 0)
          return;
        // Re-check queues under the idle lock is not needed for
        // correctness: Finish() notifies after every push, so a missed
        // wakeup is at most one wait_for interval away.
        IdleCv.wait_for(L, std::chrono::milliseconds(2));
        if (Unfinished.load(std::memory_order_acquire) == 0)
          return;
        continue;
      }
      Job &J = Jobs[Id];
      if (DepFailed[Id].load(std::memory_order_acquire)) {
        // Leave State == NotRun: an upstream job failed.
      } else {
        execute(J.Name, &J.ErrorText, &J.State, J.Work);
      }
      Finish(Id, Self);
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back(Worker, T);
  for (std::thread &T : Threads)
    T.join();
}

Status JobGraph::summarize() const {
  std::string Err;
  for (const Job &J : Jobs) {
    if (J.State == JobState::Threw)
      Err += (Err.empty() ? "" : "; ") + std::string("job '") + J.Name +
             "' threw: " + J.ErrorText;
    else if (J.State == JobState::NotRun)
      Err += (Err.empty() ? "" : "; ") + std::string("job '") + J.Name +
             "' skipped (upstream failure)";
  }
  if (!Err.empty())
    return Error("job graph: " + Err);
  return Status::success();
}

Status JobGraph::run(unsigned NumThreads) {
  NumThreads = resolveJobs(NumThreads);
  // -j N is a semantic cap, not a demand for N OS threads: jobs are
  // CPU-bound and never block on one another (dependencies live in the
  // graph), so workers beyond the core count only add spawn cost and
  // context switches. Outputs are thread-count independent (jobs own
  // disjoint state; reductions happen after run()), so the pool size is
  // free to shrink to the hardware. On a 1-core container this turns a
  // warm-cache -j 8 run from 8 spawned threads into an inline loop.
  unsigned HW = std::thread::hardware_concurrency();
  if (HW != 0)
    NumThreads = std::min(NumThreads, HW);
  NumThreads = unsigned(std::min<size_t>(NumThreads, Jobs.size()));
  if (NumThreads <= 1 || Jobs.size() <= 1)
    runSerial();
  else
    runParallel(NumThreads);
  return summarize();
}

} // namespace pipeline
} // namespace relc
