//===- core/Rule.h - Compilation-rule interfaces ----------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// "A relational compiler is just a collection of facts connecting target
// programs to source programs" (§2.3). A StmtRule is the executable form of
// one statement-compilation lemma (§3.3): it recognizes a source binding
// shape, transforms the symbolic state the way the lemma's premises
// dictate, emits the corresponding target fragment, and invokes the
// continuation for the rest of the program — exactly the continuation
// premise K of the paper's lemmas ("Most Rupicola lemmas include such
// continuations").
//
// Rules are collected in an ordered RuleSet — the hint database. The driver
// applies the first matching rule, never backtracks, and reports a printed
// unsolved goal when nothing matches (§3.1).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CORE_RULE_H
#define RELC_CORE_RULE_H

#include "bedrock/Ast.h"
#include "core/Derivation.h"
#include "ir/Prog.h"
#include "support/Result.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace relc {
namespace core {

class CompileCtx;

/// The continuation premise: compiles the rest of the current program and
/// returns its target code. Most rules sequence their own emission before
/// it; scoping rules (stackalloc) wrap it.
using Cont = std::function<Result<bedrock::CmdPtr>(DerivNode &)>;

/// Declarative description of a statement rule's conclusion: which binding
/// shapes matches() accepts, which side conditions apply() enforces, and
/// which sub-goals it emits. This is what makes the rule database
/// analyzable *as data* (relc::rulemeta): shadowing, coverage, dead rules,
/// and the termination audit are all computed from these descriptors, and
/// the registry fingerprint hashes them so a rule edit invalidates cached
/// verdicts.
///
/// The split matters: Kinds and the arity range describe the *selection*
/// predicate (what matches() checks — the driver picks the first rule
/// whose selection predicate holds and never falls through), while
/// NameDirection and SideConds describe conditions apply() enforces as
/// hard errors after selection. Shadowing is therefore decided by the
/// selection fields alone.
struct GoalPattern {
  /// Arity sentinel: the rule accepts any number of bound names.
  static constexpr unsigned kAnyArity = ~0U;

  /// Construct kinds matches() accepts. Empty means the rule can never be
  /// selected (flagged rule-dead by the analyzer).
  std::vector<ir::BoundForm::Kind> Kinds;

  /// Bound-name arity range [MinNames, MaxNames], inclusive.
  unsigned MinNames = 1;
  unsigned MaxNames = 1;

  /// The name-directed convention the rule enforces during apply between
  /// the bound name and the construct's subject (its array/cell operand).
  enum class NameDirection : uint8_t {
    None,    ///< No constraint.
    InPlace, ///< Bound name must equal the subject (in-place lemmas).
    Fresh,   ///< Bound name must differ from the subject (copy lemmas).
  };
  NameDirection NameDir = NameDirection::None;

  /// Further apply-time side conditions, as stable kebab-case tags (e.g.
  /// "index-in-bounds"). Documented for diagnostics and hashed into the
  /// fingerprint; not part of selection.
  std::vector<std::string> SideConds;

  /// What sub-goals apply() hands back to the compiler, i.e. the edges the
  /// rule contributes to the rule-dependency graph. Prog implies Expr:
  /// sub-programs contain expressions.
  enum class Emits : uint8_t { None, Expr, Prog };
  Emits SubGoals = Emits::None;

  /// Every emitted sub-goal is a strict structural subterm of the matched
  /// construct. This is the termination argument the recursion audit
  /// demands of every cycle in the rule-dependency graph.
  bool Decreasing = true;

  /// True iff the selection predicate can hold for some binding.
  bool satisfiable() const {
    return !Kinds.empty() && MinNames <= MaxNames;
  }

  /// Canonical one-line rendering, stable across runs: what the registry
  /// fingerprint hashes for this rule.
  std::string render() const;
};

class StmtRule {
public:
  virtual ~StmtRule() = default;

  /// Lemma name, e.g. "compile_map_inplace".
  virtual std::string name() const = 0;

  /// Declarative conclusion descriptor. Must agree with matches()/apply():
  /// the metatheory analyses (relc-rulint) and the registry fingerprint
  /// both trust it.
  virtual GoalPattern pattern() const = 0;

  /// True iff this rule's conclusion matches the binding (syntactic match
  /// only; side conditions are attempted during apply and failing them is a
  /// hard, reported error — the driver does not fall through to other
  /// rules, keeping compilation predictable).
  virtual bool matches(const CompileCtx &Ctx, const ir::Binding &B) const = 0;

  /// Emits target code for \p B followed by the continuation \p K. Appends
  /// discharged side conditions and notes to \p D.
  virtual Result<bedrock::CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B,
                                        const Cont &K, DerivNode &D) = 0;
};

/// Ordered, extensible rule collection: the hint database of §2.3. Lookup
/// is first-match in order, so program-specific rules registered at the
/// front shadow generic ones.
class RuleSet {
public:
  void add(std::unique_ptr<StmtRule> R) { Rules.push_back(std::move(R)); }
  void addFront(std::unique_ptr<StmtRule> R) {
    Rules.insert(Rules.begin(), std::move(R));
  }

  StmtRule *findMatch(const CompileCtx &Ctx, const ir::Binding &B) const {
    for (const auto &R : Rules)
      if (R->matches(Ctx, B))
        return R.get();
    return nullptr;
  }

  size_t size() const { return Rules.size(); }

  /// Registration-order access, for the metatheory analyses: order IS the
  /// semantics of a first-match database.
  const StmtRule &operator[](size_t I) const { return *Rules[I]; }

  /// Order-sensitive digest of every rule's name and rendered pattern.
  /// Salted into the certificate cache's options hash so editing,
  /// reordering, adding, or removing a rule misses every cached verdict.
  uint64_t fingerprint() const;

private:
  std::vector<std::unique_ptr<StmtRule>> Rules;
};

/// Populates \p RS with the standard rule library: arithmetic/let, arrays,
/// loops (map/fold/ranged/while), conditionals, stack allocation, cells,
/// inline tables (expression side), and the monadic extensions (nondet,
/// io, writer), plus external calls. Each family lives in its own
/// translation unit under core/rules/.
void registerStandardRules(RuleSet &RS);

/// Combined fingerprint of the standard statement AND expression rule
/// libraries — the digest of "which compiler is this". Computed once and
/// cached (the standard registries are process-constants).
uint64_t standardRegistryFingerprint();

} // namespace core
} // namespace relc

#endif // RELC_CORE_RULE_H
