//===- analysis/Analysis.cpp - Static verifier for generated code ---------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include "analysis/Dataflow.h"

#include <algorithm>
#include <set>

namespace relc {
namespace analysis {

using namespace bedrock;
using solver::lc;

const char *checkerName(Diagnostic::Checker C) {
  switch (C) {
  case Diagnostic::Checker::Uninit:
    return "uninit";
  case Diagnostic::Checker::Bounds:
    return "bounds";
  case Diagnostic::Checker::DeadStore:
    return "dead-store";
  case Diagnostic::Checker::Unreachable:
    return "unreachable";
  case Diagnostic::Checker::Convergence:
    return "convergence";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::string Out = IsError ? "error" : "warning";
  Out += " [" + std::string(checkerName(C)) + "] " + Fn;
  if (!Path.empty())
    Out += " at " + Path;
  if (!Stmt.empty())
    Out += ": " + Stmt;
  Out += "\n  " + Message;
  return Out;
}

bool AnalysisReport::hasErrors() const {
  return std::any_of(Diags.begin(), Diags.end(),
                     [](const Diagnostic &D) { return D.IsError; });
}

unsigned AnalysisReport::numErrors() const {
  return unsigned(std::count_if(Diags.begin(), Diags.end(),
                                [](const Diagnostic &D) { return D.IsError; }));
}

unsigned AnalysisReport::numWarnings() const {
  return unsigned(Diags.size()) - numErrors();
}

std::string AnalysisReport::str() const {
  std::string Out = "analysis of " + Fn + ": " + std::to_string(NumBlocks) +
                    " blocks, " + std::to_string(NumStmts) + " statements, " +
                    std::to_string(SymIterations) +
                    " symbolic iterations\n";
  for (const Diagnostic &D : Diags)
    Out += D.str() + "\n";
  Out += std::to_string(numErrors()) + " error(s), " +
         std::to_string(numWarnings()) + " warning(s)\n";
  return Out;
}

namespace {

/// Prints one CFG statement on one line for diagnostics.
std::string stmtStr(const CfgStmt &S) {
  std::string Out;
  switch (S.K) {
  case CfgStmt::Kind::Simple:
    Out = S.C->str(0);
    break;
  case CfgStmt::Kind::StackEnter:
    Out = "stackalloc " + cast<Stackalloc>(S.C)->name();
    break;
  case CfgStmt::Kind::StackExit:
    Out = "end of stackalloc " + cast<Stackalloc>(S.C)->name();
    break;
  }
  while (!Out.empty() && (Out.back() == '\n' || Out.back() == ' '))
    Out.pop_back();
  return Out;
}

class Analyzer {
public:
  Analyzer(const Function &Fn, const AbiInfo &Abi, const guard::Budget *Budget)
      : Fn(Fn), Abi(Abi), Budget(Budget), G(Cfg::build(Fn)) {
    // The copy (not the caller's AbiInfo) gets the budget pointer: every
    // domain state clones EntryFacts, and FactDb copies carry it along,
    // so all solver queries under this run are bounded too.
    this->Abi.EntryFacts.setBudget(Budget);
  }

  AnalysisReport run() {
    Report.Fn = Fn.Name;
    Report.NumBlocks = unsigned(G.blocks().size());
    Report.NumStmts = Fn.countStmts();

    runInit();
    runIntervalsAndSymbolic();
    checkUninit();
    checkBounds();
    checkDeadStores();
    checkUnreachable();
    return std::move(Report);
  }

private:
  const Function &Fn;
  AbiInfo Abi; ///< Copy: its EntryFacts carry the budget (see ctor).
  const guard::Budget *Budget;
  Cfg G;
  AnalysisReport Report;

  DataflowResult<InitDomain> InitR;
  DataflowResult<IntervalDomain> ItvR;
  DataflowResult<SymbolicDomain> SymR;

  void diag(Diagnostic::Checker C, const std::string &Path,
            const std::string &Stmt, const std::string &Message,
            bool IsError) {
    Report.Diags.push_back({C, Fn.Name, Path, Stmt, Message, IsError});
  }

  bool reachable(unsigned Id) const {
    return SymR.In[Id].has_value() && ItvR.In[Id].has_value();
  }

  /// Diagnostic tail for a non-converged fixpoint: names the exhausted
  /// budget when that is what stopped it, so degraded outcomes are
  /// distinguishable from genuine widening failures.
  template <typename Domain>
  void convergenceDiag(const DataflowResult<Domain> &R,
                       const std::string &What, const std::string &CapText) {
    if (R.Converged)
      return;
    if (R.BudgetExhausted) {
      Report.BudgetExhausted = true;
      diag(Diagnostic::Checker::Convergence, "", "",
           What + " " + Budget->describe(), true);
    } else {
      diag(Diagnostic::Checker::Convergence, "", "", What + CapText, true);
    }
  }

  void runInit() {
    InitDomain D(Fn);
    InitR = runForward(G, D, 64, Budget);
    convergenceDiag(InitR, "initialized-locals analysis", " did not converge");
  }

  void runIntervalsAndSymbolic() {
    IntervalDomain Itv(G, Fn, Abi);
    ItvR = runForward(G, Itv, 64, Budget);
    convergenceDiag(ItvR, "interval analysis", " did not converge");

    SymbolicDomain Sym(G, Fn, Abi);
    SymR = runForward(G, Sym, 64, Budget);
    Report.SymIterations = SymR.Iterations;
    convergenceDiag(SymR, "symbolic analysis",
                    " did not converge (abstract state kept changing past "
                    "the iteration cap)");
  }

  //===--------------------------------------------------------------------===//
  // Use of uninitialized locals.
  //===--------------------------------------------------------------------===//

  void checkUninit() {
    if (!InitR.Converged)
      return;
    std::set<std::pair<std::string, std::string>> Seen; // (path, var)
    auto CheckRead = [&](const std::string &Path, const std::string &Stmt,
                         const std::set<std::string> &Defined,
                         const std::string &V) {
      if (Defined.count(V) || !Seen.insert({Path, V}).second)
        return;
      diag(Diagnostic::Checker::Uninit, Path, Stmt,
           "local '" + V +
               "' may be read before it is assigned on some path",
           true);
    };
    for (unsigned Id : G.rpo()) {
      if (!InitR.In[Id])
        continue;
      std::set<std::string> Defined = InitR.In[Id]->Defined;
      const BasicBlock &B = G.block(Id);
      for (const CfgStmt &S : B.Stmts) {
        forEachReadVar(S, [&](const std::string &V) {
          CheckRead(S.Path, stmtStr(S), Defined, V);
        });
        InitDomain::apply(S, Defined);
      }
      if (B.T == BasicBlock::Term::Branch)
        forEachVar(*B.Cond, [&](const std::string &V) {
          CheckRead(B.CondPath, B.Cond->str(), Defined, V);
        });
    }
  }

  //===--------------------------------------------------------------------===//
  // Load/store/table bounds against the ABI frame.
  //===--------------------------------------------------------------------===//

  void checkBounds() {
    if (!SymR.Converged)
      return;
    SymbolicDomain Sym(G, Fn, Abi);
    const CfgStmt *CurStmt = nullptr;
    const BasicBlock *CurBlock = nullptr;

    Sym.setSink([&](const SymbolicDomain::Access &Acc, SymState &St,
                    solver::FactDb &Db) {
      std::string Where =
          CurStmt ? stmtStr(*CurStmt) : CurBlock->Cond->str();
      auto Err = [&](const std::string &Msg) {
        diag(Diagnostic::Checker::Bounds, Acc.Site, Where, Msg, true);
      };

      if (Acc.K == SymbolicDomain::Access::Kind::Table) {
        if (!Acc.Table) {
          Err("access to unknown inline table");
          return;
        }
        if (Acc.Addr.K != AbsVal::Kind::Scalar) {
          Err("table index is a pointer");
          return;
        }
        Status S = Db.proveLt(Acc.Addr.T,
                              lc(int64_t(Acc.Table->Elements.size())));
        if (!S)
          Err("cannot prove table index < " +
              std::to_string(Acc.Table->Elements.size()) + " (table " +
              Acc.Table->Name + "): " + S.error().str());
        return;
      }

      const char *What =
          Acc.K == SymbolicDomain::Access::Kind::Load ? "load" : "store";
      if (Acc.Addr.K != AbsVal::Kind::Ptr) {
        Err(std::string(What) +
            " address does not provably point into any clause of the "
            "ABI's separation-logic frame");
        return;
      }
      const Region &R = Abi.Regions[size_t(Acc.Addr.Region)];
      if (St.DeadRegions.count(Acc.Addr.Region)) {
        Err(std::string(What) + " into expired stackalloc region '" +
            R.Name + "' (its lexical lifetime has ended)");
        return;
      }
      Status Lo = Db.proveLe(lc(0), Acc.Addr.T);
      if (!Lo) {
        Err("cannot prove " + std::string(What) +
            " offset is nonnegative within {" + R.ClauseStr +
            "}: " + Lo.error().str());
        return;
      }
      Status Hi = Db.proveLe(Acc.Addr.T + lc(int64_t(Acc.Bytes)), R.Extent);
      if (!Hi)
        Err("cannot prove " + std::to_string(Acc.Bytes) + "-byte " + What +
            " at offset " + Acc.Addr.T.str() + " stays within {" +
            R.ClauseStr + "}: " + Hi.error().str());
    });

    for (unsigned Id : G.rpo()) {
      if (!SymR.In[Id])
        continue;
      const BasicBlock &B = G.block(Id);
      CurBlock = &B;
      SymState S = *SymR.In[Id];
      for (const CfgStmt &St : B.Stmts) {
        CurStmt = &St;
        Sym.transfer(G, B, St, S);
      }
      CurStmt = nullptr;
      // Branch conditions can contain loads/table reads too; evaluating
      // one edge visits every access in the condition.
      if (B.T == BasicBlock::Term::Branch)
        (void)Sym.edge(G, B, S, true);
    }
  }

  //===--------------------------------------------------------------------===//
  // Dead stores (backward liveness over locals).
  //===--------------------------------------------------------------------===//

  /// Live set just before leaving \p B backward through its statements;
  /// returns the live-in set.
  std::set<std::string> liveThrough(const BasicBlock &B,
                                    std::set<std::string> Live) const {
    if (B.T == BasicBlock::Term::Branch)
      forEachVar(*B.Cond, [&](const std::string &V) { Live.insert(V); });
    for (auto It = B.Stmts.rbegin(); It != B.Stmts.rend(); ++It) {
      forEachDefVar(*It, [&](const std::string &V) { Live.erase(V); });
      forEachKillVar(*It, [&](const std::string &V) { Live.erase(V); });
      forEachReadVar(*It, [&](const std::string &V) { Live.insert(V); });
    }
    return Live;
  }

  void checkDeadStores() {
    const size_t N = G.blocks().size();
    std::vector<std::set<std::string>> LiveOut(N);
    for (const BasicBlock &B : G.blocks())
      if (B.T == BasicBlock::Term::Exit)
        LiveOut[B.Id].insert(Fn.Rets.begin(), Fn.Rets.end());

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (auto It = G.rpo().rbegin(); It != G.rpo().rend(); ++It) {
        const BasicBlock &B = G.block(*It);
        std::set<std::string> LiveIn = liveThrough(B, LiveOut[B.Id]);
        for (unsigned P : B.Preds)
          for (const std::string &V : LiveIn)
            Changed |= LiveOut[P].insert(V).second;
      }
    }

    for (unsigned Id : G.rpo()) {
      if (!reachable(Id)) // Unreachable code gets its own diagnostic.
        continue;
      const BasicBlock &B = G.block(Id);
      std::set<std::string> Live = LiveOut[Id];
      if (B.T == BasicBlock::Term::Branch)
        forEachVar(*B.Cond, [&](const std::string &V) { Live.insert(V); });
      // Walk backward, flagging Sets whose target is not live afterwards.
      for (auto It = B.Stmts.rbegin(); It != B.Stmts.rend(); ++It) {
        if (It->K == CfgStmt::Kind::Simple)
          if (const auto *C = dyn_cast<Set>(It->C))
            if (!Live.count(C->name()))
              diag(Diagnostic::Checker::DeadStore, It->Path, stmtStr(*It),
                   "value assigned to '" + C->name() +
                       "' is never read (dead store)",
                   false);
        forEachDefVar(*It, [&](const std::string &V) { Live.erase(V); });
        forEachKillVar(*It, [&](const std::string &V) { Live.erase(V); });
        forEachReadVar(*It, [&](const std::string &V) { Live.insert(V); });
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Unreachable code.
  //===--------------------------------------------------------------------===//

  void checkUnreachable() {
    if (!SymR.Converged || !ItvR.Converged)
      return;
    for (const BasicBlock &B : G.blocks()) {
      if (reachable(B.Id))
        continue;
      const CfgStmt *First = nullptr;
      for (const CfgStmt &S : B.Stmts)
        if (S.K != CfgStmt::Kind::StackExit) {
          First = &S;
          break;
        }
      if (!First)
        continue; // Join/exit scaffolding only.
      // Report only the frontier: blocks with a reachable predecessor.
      // Deeper blocks are implied by the frontier diagnostic.
      bool Frontier = false;
      for (unsigned P : B.Preds)
        Frontier |= reachable(P);
      if (!Frontier)
        continue;
      diag(Diagnostic::Checker::Unreachable, First->Path, stmtStr(*First),
           "no feasible path reaches this statement (the branch condition "
           "is statically decided)",
           false);
    }
  }
};

} // namespace

AnalysisReport analyzeFunction(const Function &Fn, const AbiInfo &Abi,
                               const guard::Budget *Budget) {
  return Analyzer(Fn, Abi, Budget).run();
}

AnalysisReport analyzeProgram(const Function &Fn, const sep::FnSpec &Spec,
                              const ir::SourceFn &Src,
                              const EntryFactList &Hints,
                              const guard::Budget *Budget) {
  return analyzeFunction(Fn, makeAbiInfo(Fn, Spec, Src, Hints), Budget);
}

} // namespace analysis
} // namespace relc
