//===- programs/Fasta.cpp - In-place DNA sequence complement ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace relc {
namespace programs {

using namespace ir;

const std::vector<uint64_t> &fastaComplementTable() {
  static const std::vector<uint64_t> Table = [] {
    // IUPAC nucleotide complements (both cases map to uppercase
    // complements, as in the classic fasta reverse-complement benchmark);
    // all other bytes map to themselves so the function is total.
    std::vector<uint64_t> T(256);
    for (unsigned I = 0; I < 256; ++I)
      T[I] = I;
    const char *From = "ACGTUMRWSYKVHDBNacgtumrwsykvhdbn";
    const char *To = "TGCAAKYWSRMBDHVNTGCAAKYWSRMBDHVN";
    for (unsigned I = 0; From[I]; ++I)
      T[uint8_t(From[I])] = uint8_t(To[I]);
    return T;
  }();
  return Table;
}

ProgramDef makeFasta() {
  ProgramDef P;
  P.Name = "fasta";
  P.Description = "In-place DNA sequence complement";
  P.SourceFile = "src/programs/Fasta.cpp";
  P.EndToEnd = true;

  // RELC-SECTION-BEGIN: program-fasta-source
  // fasta' := fun s => let/n s := ListArray.map
  //             (fun b => InlineTable.get comp (b2w b)) s in s
  FnBuilder FB("fasta_model", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  FB.table("comp", EltKind::U8, fastaComplementTable());
  ProgBuilder Body;
  Body.let("s", mkMap("s", "b", tget("comp", b2w(v("b")))));
  P.Model = std::move(FB).done(std::move(Body).ret({"s"}));
  // RELC-SECTION-END: program-fasta-source

  P.Spec = sep::FnSpec("fasta");
  P.Spec.arrayArg("s").lenArg("len", "s").retInPlace("s");

  return P;
}

} // namespace programs
} // namespace relc
