file(REMOVE_RECURSE
  "CMakeFiles/programs_tests.dir/programs/ModelLemmasTest.cpp.o"
  "CMakeFiles/programs_tests.dir/programs/ModelLemmasTest.cpp.o.d"
  "CMakeFiles/programs_tests.dir/programs/SuiteTest.cpp.o"
  "CMakeFiles/programs_tests.dir/programs/SuiteTest.cpp.o.d"
  "programs_tests"
  "programs_tests.pdb"
  "programs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/programs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
