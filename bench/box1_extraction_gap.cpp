//===- bench/box1_extraction_gap.cpp - Box 1 / §4.2: extraction gap --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates the Box 1 / §4.2 comparison: the same tasks run through the
// extraction-style runtime (cons-list strings of boxed characters, double
// traversal, linear nth) and through the relationally generated C. The
// paper reports the extraction side "multiple orders of magnitude slower",
// and notes that for table-driven programs the gap is *asymptotic*
// (linear nth vs constant-time dereference) — the final sweep shows the
// per-lookup cost of list-nth growing with table size while array
// indexing stays flat.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "extraction/ExtractionRuntime.h"
#include "ref_impls.h"
#include "relc_generated.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace relc_bench;
using namespace relc::extraction;

namespace {

constexpr size_t kStrSize = 1 << 18; // 256 KiB: extraction-side friendly.

double timeOnceMs(const std::function<void()> &Fn, unsigned Reps) {
  Stats S = cyclesPerByte(Fn, 1, Reps); // Cycles per run.
  return S.Mean / (estimateGHz() * 1e6);
}

void row(const char *Task, double ExtMs, double GenMs) {
  std::printf("%-22s %14.3f %14.4f %12.0fx\n", Task, ExtMs, GenMs,
              GenMs > 0 ? ExtMs / GenMs : 0.0);
}

} // namespace

int main() {
  std::printf("=== Box 1 / §4.2: extraction-style vs relationally "
              "generated C (%zu-byte input) ===\n",
              kStrSize);
  std::printf("%-22s %14s %14s %12s\n", "task", "extraction ms",
              "generated ms", "slowdown");

  // Correctness first: both sides must agree on every task.
  std::vector<uint8_t> Ascii = asciiBytes(kStrSize, 7);
  std::vector<uint8_t> Rand = randomBytes(kStrSize, 9);
  std::vector<uint8_t> Dna = dnaBytes(kStrSize, 11);

  {
    Str S = strOfBytes(Ascii);
    std::vector<uint8_t> ExtOut = bytesOfStr(upstr(S));
    std::vector<uint8_t> GenOut = Ascii;
    relc_upstr(uintptr_t(GenOut.data()), GenOut.size());
    if (ExtOut != GenOut) {
      std::fprintf(stderr, "box1: upstr implementations disagree\n");
      return 1;
    }
    if (fnv1a(strOfBytes(Rand)) != relc_fnv1a(uintptr_t(Rand.data()),
                                              Rand.size())) {
      std::fprintf(stderr, "box1: fnv1a implementations disagree\n");
      return 1;
    }
    if (crc32ListTable(strOfBytes(Rand)) !=
        relc_crc32(uintptr_t(Rand.data()), Rand.size())) {
      std::fprintf(stderr, "box1: crc32 implementations disagree\n");
      return 1;
    }
    std::vector<uint8_t> FExt = bytesOfStr(fastaListTable(strOfBytes(Dna)));
    std::vector<uint8_t> FGen = Dna;
    relc_fasta(uintptr_t(FGen.data()), FGen.size());
    if (FExt != FGen) {
      std::fprintf(stderr, "box1: fasta implementations disagree\n");
      return 1;
    }
  }

  // upstr: Box 1 verbatim — String.map Char.toupper.
  {
    Str S = strOfBytes(Ascii);
    double Ext = timeOnceMs(
        [&] {
          Str Out = upstr(S);
          benchmark::DoNotOptimize(Out);
        },
        8);
    std::vector<uint8_t> Buf = Ascii;
    double Gen = timeOnceMs(
        [&] {
          relc_upstr(uintptr_t(Buf.data()), Buf.size());
          benchmark::DoNotOptimize(Buf.data());
        },
        64);
    row("upstr (Box 1)", Ext, Gen);
  }

  // fnv1a: fold over a boxed character list vs a register loop.
  {
    Str S = strOfBytes(Rand);
    double Ext = timeOnceMs(
        [&] { benchmark::DoNotOptimize(fnv1a(S)); }, 8);
    double Gen = timeOnceMs(
        [&] {
          benchmark::DoNotOptimize(
              relc_fnv1a(uintptr_t(Rand.data()), Rand.size()));
        },
        64);
    row("fnv1a", Ext, Gen);
  }

  // crc32 with a *list* lookup table: the asymptotic footnote.
  {
    std::vector<uint8_t> Small = randomBytes(kStrSize / 16, 13);
    Str S = strOfBytes(Small);
    double Ext = timeOnceMs(
        [&] { benchmark::DoNotOptimize(crc32ListTable(S)); }, 4);
    double Gen = timeOnceMs(
        [&] {
          benchmark::DoNotOptimize(
              relc_crc32(uintptr_t(Small.data()), Small.size()));
        },
        64);
    std::printf("%-22s %14.3f %14.4f %12.0fx   (%zu bytes; linear nth per "
                "step)\n",
                "crc32 (list table)", Ext, Gen,
                Gen > 0 ? Ext / Gen : 0.0, Small.size());
  }

  // fasta with a list complement table.
  {
    Str S = strOfBytes(Dna);
    double Ext = timeOnceMs(
        [&] {
          Str Out = fastaListTable(S);
          benchmark::DoNotOptimize(Out);
        },
        4);
    std::vector<uint8_t> Buf = Dna;
    double Gen = timeOnceMs(
        [&] {
          relc_fasta(uintptr_t(Buf.data()), Buf.size());
          benchmark::DoNotOptimize(Buf.data());
        },
        64);
    row("fasta (list table)", Ext, Gen);
  }

  // The asymptotic sweep: cost of one lookup as the table grows.
  std::printf("\n--- List.nth vs array indexing: per-lookup cost by table "
              "size (the footnote's asymptotic gap) ---\n");
  std::printf("%8s %16s %16s\n", "size", "nth ns/lookup", "array ns/lookup");
  for (size_t N : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    List<uint64_t> L;
    std::vector<uint64_t> V(N);
    for (size_t I = N; I-- > 0;) {
      V[I] = I * 2654435761u;
      L = cons(V[I], L);
    }
    const unsigned Lookups = 4096;
    std::vector<uint8_t> Idx = randomBytes(Lookups, N);
    double NthNs = timeOnceMs(
                       [&] {
                         uint64_t Acc = 0;
                         for (unsigned I = 0; I < Lookups; ++I)
                           Acc ^= nth<uint64_t>(L, Idx[I] % N, 0);
                         benchmark::DoNotOptimize(Acc);
                       },
                       16) *
                   1e6 / Lookups;
    double ArrNs = timeOnceMs(
                       [&] {
                         uint64_t Acc = 0;
                         for (unsigned I = 0; I < Lookups; ++I)
                           Acc ^= V[Idx[I] % N];
                         benchmark::DoNotOptimize(Acc);
                       },
                       16) *
                   1e6 / Lookups;
    std::printf("%8zu %16.2f %16.2f\n", N, NthNs, ArrNs);
  }

  std::printf("\n(paper: extraction-style code is multiple orders of "
              "magnitude slower, and table-driven code changes asymptotic "
              "complexity)\n");
  return 0;
}
