file(REMOVE_RECURSE
  "CMakeFiles/ip_end_to_end.dir/ip_end_to_end.cpp.o"
  "CMakeFiles/ip_end_to_end.dir/ip_end_to_end.cpp.o.d"
  "ip_end_to_end"
  "ip_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
