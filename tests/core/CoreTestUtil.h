//===- tests/core/CoreTestUtil.h - Shared core-test plumbing ---*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_TESTS_CORE_CORETESTUTIL_H
#define RELC_TESTS_CORE_CORETESTUTIL_H

#include "core/Compiler.h"
#include "ir/Build.h"
#include "validate/Validate.h"

#include <gtest/gtest.h>

namespace relc {
namespace coretest {

/// Compiles a model; on success also replays the derivation and runs the
/// differential certifier. Returns the failure (if any) for inspection.
inline Status compileAndCertify(const ir::SourceFn &Fn,
                                const sep::FnSpec &Spec,
                                const core::CompileHints &Hints = {},
                                const validate::ValidationOptions &VOpts = {},
                                core::CompileResult *Out = nullptr) {
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec, Hints);
  if (!R)
    return R.takeError();
  bedrock::Module Linked;
  Linked.Functions.push_back(R->Fn);
  validate::ValidationOptions VO = VOpts;
  VO.Hints = Hints; // The static-analysis layer assumes what the compiler did.
  Status V = validate::validate(Fn, Spec, *R, Linked, VO);
  if (!V)
    return V;
  if (Out)
    *Out = std::move(*R);
  return Status::success();
}

/// Asserts full pipeline success with a readable message.
#define EXPECT_CERTIFIES(...)                                                 \
  do {                                                                        \
    ::relc::Status S_ = ::relc::coretest::compileAndCertify(__VA_ARGS__);     \
    EXPECT_TRUE(bool(S_)) << (S_ ? "" : S_.error().str());                    \
  } while (0)

#define ASSERT_CERTIFIES(...)                                                 \
  do {                                                                        \
    ::relc::Status S_ = ::relc::coretest::compileAndCertify(__VA_ARGS__);     \
    ASSERT_TRUE(bool(S_)) << (S_ ? "" : S_.error().str());                    \
  } while (0)

} // namespace coretest
} // namespace relc

#endif // RELC_TESTS_CORE_CORETESTUTIL_H
