# Empty dependencies file for relc_generated.
# This may be replaced when dependencies are built.
