//===- programs/IpChecksum.cpp - RFC 1071 one's-complement checksum ---------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The IP checksum (RFC 1071): sum the buffer as big-endian 16-bit words,
// fold the carries, complement. The model exercises three loop shapes at
// once — a ranged fold over word pairs, a conditional for the odd tail,
// and a carry-folding while loop with a termination measure — and its
// bounds side conditions are the paper's flagship solver examples:
//
//   - 2·i + 1 < len follows from i < (len >> 1) through the shift-right
//     structural fact 2·(len>>1) ≤ len;
//   - (len − 1) < len in the odd-tail branch needs len ≥ 1, recovered
//     from the branch fact (len & 1) ≥ 1 and the mask fact (len & 1) ≤
//     len — the §3.4.2 "incidental property" pattern.
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace relc {
namespace programs {

using namespace ir;

ProgramDef makeIpChecksum() {
  ProgramDef P;
  P.Name = "ip";
  P.Description = "IP (one's-complement) checksum (RFC 1071)";
  P.SourceFile = "src/programs/IpChecksum.cpp";
  P.EndToEnd = true;

  // RELC-SECTION-BEGIN: program-ip-source
  FnBuilder FB("ip_model", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");

  // Pair loop: acc += (s[2i] << 8) | s[2i+1] for i in [0, len >> 1).
  ExprPtr HiByte = b2w(aget("s", mulw(v("i"), cw(2))));
  ExprPtr LoByte = b2w(aget("s", addw(mulw(v("i"), cw(2)), cw(1))));
  ProgBuilder PairBody;
  PairBody.let("acc", addw(v("acc"), orw(shlw(HiByte, cw(8)), LoByte)));

  // Odd tail: acc += s[len-1] << 8 when len is odd.
  ProgBuilder OddThen;
  OddThen.let("acc", addw(v("acc"), shlw(b2w(aget("s", subw(v("len"), cw(1)))),
                                         cw(8))));
  ProgBuilder OddElse;
  OddElse.let("acc", v("acc"));

  // Carry folding: while acc >> 16 != 0, acc = (acc & 0xffff) + (acc >> 16).
  // Termination measure: acc itself strictly decreases while a carry
  // remains.
  ProgBuilder FoldBody;
  FoldBody.let("acc", addw(andw(v("acc"), cw(0xffff)), shrw(v("acc"), cw(16))));

  ProgBuilder Body;
  Body.letMulti({"acc"},
                mkRange("i", cw(0), shrw(v("len"), cw(1)),
                        {acc("acc", cw(0))},
                        std::move(PairBody).ret({"acc"})))
      .letMulti({"acc"}, mkIf(nez(andw(v("len"), cw(1))),
                              std::move(OddThen).ret({"acc"}),
                              std::move(OddElse).ret({"acc"})))
      .letMulti({"acc"}, mkWhile({acc("acc", v("acc"))},
                                 nez(shrw(v("acc"), cw(16))),
                                 std::move(FoldBody).ret({"acc"}), v("acc")))
      .let("chk", andw(xorw(v("acc"), cw(~uint64_t(0))), cw(0xffff)));
  P.Model = std::move(FB).done(std::move(Body).ret({"chk"}));
  // RELC-SECTION-END: program-ip-source

  P.Spec = sep::FnSpec("ip_chk");
  P.Spec.arrayArg("s").lenArg("len", "s").retScalar("chk");

  return P;
}

} // namespace programs
} // namespace relc
