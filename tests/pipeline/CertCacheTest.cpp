//===- tests/pipeline/CertCacheTest.cpp - Certificate cache ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pipeline/CertCache.h"
#include "support/Fault.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

// fork() is unsupported under ThreadSanitizer; detect it for both
// compilers (clang: __has_feature, gcc: __SANITIZE_THREAD__).
#if defined(__SANITIZE_THREAD__)
#define RELC_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RELC_UNDER_TSAN 1
#endif
#endif
#ifndef RELC_UNDER_TSAN
#define RELC_UNDER_TSAN 0
#endif

using namespace relc;
using namespace relc::pipeline;
using hash::fnv1a64;
using hash::hex16;
using hash::parseHex;

namespace {

/// A unique scratch directory per test, removed on destruction.
struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("relc-cache-test-" + Name))
               .string();
    std::filesystem::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

CertKey sampleKey() {
  CertKey K;
  K.ModelHash = 0x1111aaaa2222bbbbULL;
  K.SpecHash = 0x3333cccc4444ddddULL;
  K.CodeHash = 0x5555eeee6666ffffULL;
  return K;
}

CertEntry sampleEntry() {
  CertEntry E;
  E.Program = "upstr";
  E.OptsHash = 0xdeadbeefcafef00dULL;
  E.ReplayOk = true;
  E.AnalysisOk = true;
  E.AnalysisWarnings = 2;
  E.AnalysisDiags = "warning: dead store to 'x'\nwarning: unreachable";
  E.TvRan = true;
  E.TvVerdict = "proved";
  E.TvLoops = 1;
  E.TvTerms = 42;
  E.TvCertificate = "{\n  \"verdict\": \"proved\"\n}\n";
  // Arbitrary non-printable bytes: the binary payload must survive the
  // cache byte-for-byte without any escaping contortions.
  E.TvCertBin = std::string("RELCCERT\x00\x01\xff\nimage", 16);
  E.DifferentialOk = true;
  return E;
}

TEST(CertCacheTest, Fnv1a64IsStableAndChainable) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  // Chaining two halves equals hashing the concatenation.
  EXPECT_EQ(fnv1a64("world", fnv1a64("hello ")), fnv1a64("hello world"));
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(CertCacheTest, Hex16RoundTrips) {
  for (uint64_t V : {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL}) {
    std::string S = hex16(V);
    EXPECT_EQ(S.size(), 16u);
    uint64_t Back = 0;
    ASSERT_TRUE(parseHex(S, &Back)) << S;
    EXPECT_EQ(Back, V);
  }
  uint64_t X;
  EXPECT_FALSE(parseHex("not-hex-not-hex!", &X));
  EXPECT_FALSE(parseHex("", &X));
  EXPECT_FALSE(parseHex("00000000000000000", &X)); // 17 digits: too long.
}

TEST(CertCacheTest, SerializeDeserializeRoundTrips) {
  CertKey K = sampleKey();
  CertEntry E = sampleEntry();
  std::string Text = CertCache::serialize(K, E);

  CertKey K2;
  std::optional<CertEntry> E2 = CertCache::deserialize(Text, &K2);
  ASSERT_TRUE(E2.has_value());
  EXPECT_TRUE(K2 == K);
  EXPECT_EQ(E2->Program, E.Program);
  EXPECT_EQ(E2->OptsHash, E.OptsHash);
  EXPECT_EQ(E2->ReplayOk, E.ReplayOk);
  EXPECT_EQ(E2->AnalysisOk, E.AnalysisOk);
  EXPECT_EQ(E2->AnalysisWarnings, E.AnalysisWarnings);
  EXPECT_EQ(E2->AnalysisDiags, E.AnalysisDiags);
  EXPECT_EQ(E2->TvRan, E.TvRan);
  EXPECT_EQ(E2->TvVerdict, E.TvVerdict);
  EXPECT_EQ(E2->TvLoops, E.TvLoops);
  EXPECT_EQ(E2->TvTerms, E.TvTerms);
  EXPECT_EQ(E2->TvCertificate, E.TvCertificate);
  EXPECT_EQ(E2->DifferentialOk, E.DifferentialOk);
}

TEST(CertCacheTest, SerializationIsByteStable) {
  // Two serializations of the same entry are identical — the disk format
  // must be deterministic for byte-identical warm-run artifacts.
  EXPECT_EQ(CertCache::serialize(sampleKey(), sampleEntry()),
            CertCache::serialize(sampleKey(), sampleEntry()));
}

TEST(CertCacheTest, AnyFlippedPayloadBitFailsIntegrity) {
  std::string Text = CertCache::serialize(sampleKey(), sampleEntry());
  // Flip the verdict: "proved" -> "proxed".
  size_t Pos = Text.find("proved");
  ASSERT_NE(Pos, std::string::npos);
  std::string Tampered = Text;
  Tampered[Pos + 3] = 'x';
  EXPECT_FALSE(CertCache::deserialize(Tampered).has_value());
}

TEST(CertCacheTest, StoreThenLookupHits) {
  TempDir D("roundtrip");
  CertCache Cache(D.Path);
  CacheStats Stats;
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry(), &Stats)));
  EXPECT_EQ(Stats.Stores, 1u);

  std::optional<CertEntry> E =
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(E->TvCertificate, sampleEntry().TvCertificate);
}

TEST(CertCacheTest, AnyKeyComponentChangeMisses) {
  TempDir D("keymiss");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));

  for (int Component = 0; Component < 3; ++Component) {
    CertKey K = sampleKey();
    (Component == 0   ? K.ModelHash
     : Component == 1 ? K.SpecHash
                      : K.CodeHash) ^= 1;
    CacheStats Stats;
    EXPECT_FALSE(Cache.lookup(K, sampleEntry().OptsHash, &Stats).has_value());
    EXPECT_EQ(Stats.Misses, 1u);
    EXPECT_EQ(Stats.CorruptDiscarded, 0u);
  }
}

TEST(CertCacheTest, OptionsHashMismatchMisses) {
  TempDir D("optsmiss");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  CacheStats Stats;
  EXPECT_FALSE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash ^ 1, &Stats)
          .has_value());
  EXPECT_EQ(Stats.Misses, 1u);
  // The entry itself is fine — it stays on disk.
  EXPECT_TRUE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats).has_value());
}

TEST(CertCacheTest, CorruptedEntryDiscardedDeletedAndRederivable) {
  TempDir D("corrupt");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));

  // Corrupt BOTH faces of the entry on disk (store writes a JSON file and
  // a binary image per entry).
  std::vector<std::string> Paths;
  for (const auto &Ent : std::filesystem::directory_iterator(D.Path))
    Paths.push_back(Ent.path().string());
  ASSERT_EQ(Paths.size(), 2u);
  for (const std::string &Path : Paths) {
    std::ofstream Out(Path, std::ios::app | std::ios::binary);
    Out << "garbage\n";
  }

  CacheStats Stats;
  EXPECT_FALSE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats).has_value());
  EXPECT_EQ(Stats.CorruptDiscarded, 2u);
  EXPECT_EQ(Stats.Misses, 1u);
  // Both poisoned files are gone; a fresh store + lookup works again.
  for (const std::string &Path : Paths)
    EXPECT_FALSE(std::filesystem::exists(Path)) << Path;
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  EXPECT_TRUE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats).has_value());
}

TEST(CertCacheTest, BinImageRoundTripsAndIsByteStable) {
  CertKey K = sampleKey();
  CertEntry E = sampleEntry();
  std::string Image = CertCache::serializeBin(K, E);
  EXPECT_EQ(Image, CertCache::serializeBin(K, E));

  CertKey K2;
  std::optional<CertEntry> E2 = CertCache::deserializeBin(Image, &K2);
  ASSERT_TRUE(E2.has_value());
  EXPECT_TRUE(K2 == K);
  EXPECT_EQ(E2->Program, E.Program);
  EXPECT_EQ(E2->OptsHash, E.OptsHash);
  EXPECT_EQ(E2->AnalysisWarnings, E.AnalysisWarnings);
  EXPECT_EQ(E2->AnalysisDiags, E.AnalysisDiags);
  EXPECT_EQ(E2->TvVerdict, E.TvVerdict);
  EXPECT_EQ(E2->TvLoops, E.TvLoops);
  EXPECT_EQ(E2->TvTerms, E.TvTerms);
  EXPECT_EQ(E2->TvCertificate, E.TvCertificate);
  EXPECT_EQ(E2->TvCertBin, E.TvCertBin);
  EXPECT_EQ(E2->DifferentialOk, E.DifferentialOk);
}

TEST(CertCacheTest, BinImageAnyFlippedBitFailsIntegrity) {
  std::string Image = CertCache::serializeBin(sampleKey(), sampleEntry());
  // Flip one bit at a spread of positions — magic, header, payload,
  // trailer — and every time the image must be refused whole.
  for (size_t At : {size_t(0), size_t(9), Image.size() / 2,
                    Image.size() - 1}) {
    std::string Tampered = Image;
    Tampered[At] = char(Tampered[At] ^ 0x10);
    EXPECT_FALSE(CertCache::deserializeBin(Tampered).has_value()) << At;
  }
  // Truncations and extensions fail too.
  EXPECT_FALSE(
      CertCache::deserializeBin(Image.substr(0, Image.size() - 1))
          .has_value());
  EXPECT_FALSE(CertCache::deserializeBin(Image + "x").has_value());
  EXPECT_FALSE(CertCache::deserializeBin("").has_value());
}

TEST(CertCacheTest, WarmHitIsServedFromBinImage) {
  TempDir D("bin-hit");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  CacheStats Stats;
  std::optional<CertEntry> E =
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.BinHits, 1u);
  EXPECT_EQ(E->TvCertBin, sampleEntry().TvCertBin);
}

TEST(CertCacheTest, CorruptBinImageFallsBackToJson) {
  TempDir D("bin-fallback");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  std::string BinPath = D.Path + "/" + sampleKey().fileStem() + ".cert.bin";
  {
    std::ofstream Out(BinPath, std::ios::app | std::ios::binary);
    Out << "garbage";
  }
  CacheStats Stats;
  std::optional<CertEntry> E =
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats);
  // Still a hit — served from the JSON — and the poisoned image is gone.
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.BinHits, 0u);
  EXPECT_EQ(Stats.CorruptDiscarded, 1u);
  EXPECT_FALSE(std::filesystem::exists(BinPath));
  EXPECT_EQ(E->TvCertificate, sampleEntry().TvCertificate);
}

TEST(CertCacheTest, LegacyJsonOnlyEntryStillHits) {
  // A cache written before the binary path existed has no .cert.bin
  // siblings; those entries must keep hitting (via the JSON fallback),
  // with TvCertBin left empty for the pipeline to re-encode.
  TempDir D("legacy");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  std::filesystem::remove(D.Path + "/" + sampleKey().fileStem() +
                          ".cert.bin");
  CacheStats Stats;
  std::optional<CertEntry> E =
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.BinHits, 0u);
  EXPECT_EQ(Stats.CorruptDiscarded, 0u);
  EXPECT_EQ(E->TvCertificate, sampleEntry().TvCertificate);
  EXPECT_TRUE(E->TvCertBin.empty());
}

TEST(CertCacheTest, MisfiledEntryDiscarded) {
  // An integral entry stored under the wrong filename (e.g. a manually
  // renamed file) must not be trusted: the recorded key disagrees.
  TempDir D("misfiled");
  CertCache Cache(D.Path);
  CertKey Wrong = sampleKey();
  Wrong.CodeHash ^= 0xff;
  std::filesystem::create_directories(D.Path);
  std::ofstream Out(D.Path + "/" + Wrong.fileStem() + ".cert.json");
  Out << CertCache::serialize(sampleKey(), sampleEntry());
  Out.close();

  CacheStats Stats;
  EXPECT_FALSE(Cache.lookup(Wrong, sampleEntry().OptsHash, &Stats).has_value());
  EXPECT_EQ(Stats.CorruptDiscarded, 1u);
}

TEST(CertCacheTest, DisabledCacheAlwaysMisses) {
  CertCache Cache("");
  EXPECT_FALSE(Cache.enabled());
  CacheStats Stats;
  EXPECT_TRUE(bool(Cache.store(sampleKey(), sampleEntry(), &Stats)));
  EXPECT_EQ(Stats.Stores, 0u);
  EXPECT_FALSE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats).has_value());
  EXPECT_EQ(Stats.Misses, 1u);
}

//===----------------------------------------------------------------------===//
// Crash- and concurrency-safety (ISSUE 5): unique temp names, stale-temp
// sweeping, fault-injected I/O, and multi-process exclusion.
//===----------------------------------------------------------------------===//

unsigned countTemps(const std::string &Dir) {
  unsigned N = 0;
  std::error_code EC;
  for (const auto &Ent : std::filesystem::directory_iterator(Dir, EC)) {
    std::string Name = Ent.path().filename().string();
    if (Name.find(".cert.json.tmp") != std::string::npos ||
        Name.find(".cert.bin.tmp") != std::string::npos)
      ++N;
  }
  return N;
}

TEST(CertCacheTest, StoreLeavesNoTempBehind) {
  TempDir D("no-temps");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  EXPECT_EQ(countTemps(D.Path), 0u);
  EXPECT_TRUE(Cache.lookup(sampleKey(), sampleEntry().OptsHash).has_value());
}

TEST(CertCacheTest, SweepRemovesOrphanedTempsOnly) {
  TempDir D("sweep");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  // Fake debris from a crashed writer: both the legacy fixed ".tmp" name
  // and the current unique-suffix shape.
  std::string Stem = sampleKey().fileStem();
  std::ofstream(D.Path + "/" + Stem + ".cert.json.tmp") << "torn";
  std::ofstream(D.Path + "/" + Stem + ".cert.json.tmp.12345.0") << "torn";
  std::ofstream(D.Path + "/" + Stem + ".cert.bin.tmp.12345.1") << "torn";
  EXPECT_EQ(countTemps(D.Path), 3u);
  // MaxAge 0: sweep unconditionally.
  EXPECT_EQ(Cache.sweepStaleTemps(std::chrono::seconds(0)), 3u);
  EXPECT_EQ(countTemps(D.Path), 0u);
  // The real entry survived.
  EXPECT_TRUE(Cache.lookup(sampleKey(), sampleEntry().OptsHash).has_value());
}

TEST(CertCacheTest, SweepSparesYoungTemps) {
  TempDir D("sweep-young");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  std::string Stem = sampleKey().fileStem();
  std::ofstream(D.Path + "/" + Stem + ".cert.json.tmp.999.0") << "inflight";
  // A just-written temp may belong to a live writer: the default
  // conservative age must not touch it.
  EXPECT_EQ(Cache.sweepStaleTemps(), 0u);
  EXPECT_EQ(countTemps(D.Path), 1u);
}

TEST(CertCacheTest, TransientWriteFaultAbsorbedByRetry) {
  TempDir D("write-transient");
  CertCache Cache(D.Path);
  fault::ScopedFaults Armed("cache-write:transient:n=2");
  CacheStats Stats;
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry(), &Stats)));
  EXPECT_EQ(Stats.Stores, 1u);
  EXPECT_EQ(countTemps(D.Path), 0u);
  EXPECT_TRUE(Cache.lookup(sampleKey(), sampleEntry().OptsHash).has_value());
}

TEST(CertCacheTest, PersistentWriteFaultFailsNamedAndClean) {
  TempDir D("write-persistent");
  CertCache Cache(D.Path);
  fault::ScopedFaults Armed("cache-write:persistent");
  Status S = Cache.store(sampleKey(), sampleEntry());
  ASSERT_FALSE(bool(S));
  std::string Text = S.error().str();
  EXPECT_NE(Text.find("failed after 4 attempts"), std::string::npos);
  EXPECT_NE(Text.find("injected persistent cache-write fault"),
            std::string::npos);
  EXPECT_EQ(countTemps(D.Path), 0u); // No debris on failure.
}

TEST(CertCacheTest, PersistentReadFaultDegradesToMiss) {
  TempDir D("read-fault");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  fault::ScopedFaults Armed("cache-read:persistent");
  CacheStats Stats;
  // A read fault costs a re-derivation, never a wrong verdict: plain miss.
  EXPECT_FALSE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats).has_value());
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.CorruptDiscarded, 0u); // The entry is fine; not deleted.
}

TEST(CertCacheTest, OpenSweepsStaleTemps) {
  TempDir D("open-sweep");
  std::filesystem::create_directories(D.Path);
  std::string Stale = D.Path + "/" + sampleKey().fileStem() +
                      ".cert.json.tmp.424242.7";
  std::ofstream(Stale) << "torn";
  // Age the file past the conservative on-open threshold.
  std::filesystem::last_write_time(
      Stale, std::filesystem::file_time_type::clock::now() -
                 std::chrono::hours(2));
  CertCache Cache(D.Path);
  EXPECT_EQ(countTemps(D.Path), 0u);
}

#if !defined(_WIN32) && !RELC_UNDER_TSAN
TEST(CertCacheTest, MultiProcessWritersNeverTearEntries) {
  // Several processes hammer the same key concurrently; every writer
  // either succeeds atomically or fails cleanly, and the surviving entry
  // always parses with a valid integrity hash. (fork() is unsupported
  // under TSan, hence the guard above.)
  TempDir D("multiproc");
  CertCache Parent(D.Path);
  constexpr int Writers = 8, Rounds = 25;
  std::vector<pid_t> Pids;
  for (int W = 0; W < Writers; ++W) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // Child: distinct Program text per writer makes torn mixes visible.
      CertCache Cache(D.Path);
      CertEntry E = sampleEntry();
      E.Program = "writer" + std::to_string(W);
      bool AllOk = true;
      for (int R = 0; R < Rounds; ++R)
        AllOk = AllOk && bool(Cache.store(sampleKey(), E));
      _exit(AllOk ? 0 : 1);
    }
    Pids.push_back(Pid);
  }
  for (pid_t Pid : Pids) {
    int WStatus = 0;
    ASSERT_EQ(waitpid(Pid, &WStatus, 0), Pid);
    EXPECT_TRUE(WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 0);
  }
  // Whatever interleaving happened, the entry on disk is whole.
  CertKey K;
  std::ifstream In(D.Path + "/" + sampleKey().fileStem() + ".cert.json",
                   std::ios::binary);
  ASSERT_TRUE(bool(In));
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::optional<CertEntry> E = CertCache::deserialize(Buf.str(), &K);
  ASSERT_TRUE(E.has_value());
  EXPECT_TRUE(K == sampleKey());
  EXPECT_EQ(E->Program.rfind("writer", 0), 0u);
  EXPECT_EQ(countTemps(D.Path), 0u);
}
#endif

} // namespace
