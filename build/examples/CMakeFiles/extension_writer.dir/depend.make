# Empty dependencies file for extension_writer.
# This may be replaced when dependencies are built.
