//===- tests/pipeline/RobustnessTest.cpp - Guards and degradation ----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// DESIGN.md §4.7 end-to-end: budget exhaustion and injected faults degrade
// certification layers gracefully — a named refusal, never a hang, a wrong
// accept, a cached degraded verdict, or a poisoned sibling. Serial and
// parallel runs report degraded outcomes byte-identically.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "support/Fault.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace relc;
using namespace relc::pipeline;

namespace {

struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("relc-robustness-test-" + Name))
               .string();
    std::filesystem::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

std::vector<const programs::ProgramDef *> suite() {
  std::vector<const programs::ProgramDef *> Out;
  for (const programs::ProgramDef &P : programs::allPrograms())
    Out.push_back(&P);
  return Out;
}

TEST(RobustnessTest, TvStepBudgetDegradesToInconclusiveAndIsNeverCached) {
  const programs::ProgramDef *P = programs::findProgram("fnv1a");
  ASSERT_NE(P, nullptr);
  TempDir D("tvbudget");
  PipelineOptions Opts;
  Opts.CacheDir = D.Path;
  Opts.TvStepBudget = 50; // fnv1a's TV interns well over 50 terms.
  PipelineStats Stats;
  std::vector<ProgramOutcome> Out = certifyPrograms({P}, Opts, &Stats);
  ASSERT_EQ(Out.size(), 1u);
  const ProgramOutcome &O = Out[0];

  // Exhaustion is a refusal, not a wrong answer: TV degrades to
  // Inconclusive (which passes) and the differential layer carries the
  // certification, so the program is still ok — but flagged degraded.
  EXPECT_TRUE(O.ok());
  EXPECT_TRUE(O.Tv.Ran);
  EXPECT_TRUE(O.Tv.Ok); // Inconclusive is not Refuted.
  EXPECT_TRUE(O.Tv.Degraded);
  EXPECT_TRUE(O.TvRep.BudgetExhausted);
  EXPECT_EQ(O.TvVerdictName, "inconclusive");
  EXPECT_NE(O.TvRep.Reason.find("budget"), std::string::npos)
      << O.TvRep.Reason;
  EXPECT_TRUE(O.Diff.Ran && O.Diff.Ok);
  EXPECT_TRUE(O.anyDegraded());
  EXPECT_NE(O.firstDegradedNote().find("translation validation"),
            std::string::npos)
      << O.firstDegradedNote();

  // A budget-truncated verdict must never be reused.
  EXPECT_EQ(Stats.Cache.Stores, 0u);

  // At full strength (different options hash -> miss) the same program
  // re-certifies completely and only then is cached.
  PipelineOptions Full;
  Full.CacheDir = D.Path;
  PipelineStats FullStats;
  std::vector<ProgramOutcome> Again = certifyPrograms({P}, Full, &FullStats);
  ASSERT_EQ(Again.size(), 1u);
  EXPECT_TRUE(Again[0].ok());
  EXPECT_FALSE(Again[0].anyDegraded());
  EXPECT_FALSE(Again[0].CacheHit);
  EXPECT_EQ(Again[0].TvVerdictName, "proved");
  EXPECT_EQ(FullStats.Cache.Stores, 1u);
}

TEST(RobustnessTest, DeadlineExhaustionIsNeverAGenuineFailure) {
  // A 1ms per-layer deadline on the full suite: on a fast machine some
  // layers finish anyway, on a slow one they all time out. Either way the
  // guard may only *refuse* — every non-ok outcome must be degraded-only,
  // with a diagnostic naming the budget. (This also bounds wall-clock:
  // the whole suite completes instead of hanging.)
  PipelineOptions Opts;
  Opts.LayerTimeoutMs = 1;
  Opts.Jobs = 4;
  std::vector<ProgramOutcome> Out = certifyPrograms(suite(), Opts);
  ASSERT_EQ(Out.size(), suite().size());
  for (const ProgramOutcome &O : Out) {
    EXPECT_TRUE(O.ok() || O.failureIsDegradedOnly())
        << O.Def->Name << ": " << O.ValidationError;
    if (!O.ok()) {
      EXPECT_FALSE(O.ValidationError.empty()) << O.Def->Name;
    }
  }
}

TEST(RobustnessTest, AdversarialTvBlowupFallsThroughToDifferential) {
  // Adversarial input for the symbolic validator: semantically inert decoy
  // assignments bloat the term graph far past the step budget. Replay is
  // witness-only and analysis only warns about dead stores, so with the
  // budget in place TV degrades to Inconclusive and the differential layer
  // still certifies the (correct) code — within the deadline.
  const programs::ProgramDef *P = programs::findProgram("fnv1a");
  ASSERT_NE(P, nullptr);
  TamperHook Bloat = [](const programs::ProgramDef &Def,
                        core::CompileResult &R) {
    if (Def.Name != "fnv1a")
      return;
    for (int I = 0; I < 32; ++I)
      R.Fn.Body = bedrock::seq(
          R.Fn.Body, bedrock::set("decoy" + std::to_string(I),
                                  bedrock::lit(bedrock::Word(I) * 7)));
  };
  PipelineOptions Opts;
  Opts.TvStepBudget = 40;
  Opts.LayerTimeoutMs = 60000;
  std::vector<ProgramOutcome> Out =
      certifyPrograms({P}, Opts, nullptr, Bloat);
  ASSERT_EQ(Out.size(), 1u);
  const ProgramOutcome &O = Out[0];
  EXPECT_TRUE(O.ok()) << O.ValidationError;
  EXPECT_TRUE(O.Replay.Ok);
  EXPECT_TRUE(O.Analysis.Ok);
  EXPECT_TRUE(O.Tv.Degraded);
  EXPECT_TRUE(O.TvRep.BudgetExhausted);
  EXPECT_EQ(O.TvVerdictName, "inconclusive");
  EXPECT_TRUE(O.Diff.Ran && O.Diff.Ok);
  EXPECT_TRUE(O.anyDegraded());
}

TEST(RobustnessTest, FuelExhaustionSurfacesNamedDiagnosticAtEveryWidth) {
  // A genuinely fuel-starved interpreter (config, not fault injection) is
  // a real certification failure — and its diagnostic names the budget all
  // the way through layer 4, byte-identically at -j 1 and -j 4.
  const programs::ProgramDef *Base = programs::findProgram("fnv1a");
  const programs::ProgramDef *Sibling = programs::findProgram("upstr");
  ASSERT_NE(Base, nullptr);
  ASSERT_NE(Sibling, nullptr);
  programs::ProgramDef Starved = *Base;
  Starved.VOpts.InterpFuel = 8; // Far too little for any real vector.

  PipelineOptions Serial, Parallel;
  Parallel.Jobs = 4;
  std::vector<ProgramOutcome> S =
      certifyPrograms({&Starved, Sibling}, Serial);
  std::vector<ProgramOutcome> Par =
      certifyPrograms({&Starved, Sibling}, Parallel);
  ASSERT_EQ(S.size(), 2u);
  ASSERT_EQ(Par.size(), 2u);

  for (const std::vector<ProgramOutcome> *Run : {&S, &Par}) {
    const ProgramOutcome &O = (*Run)[0];
    EXPECT_FALSE(O.ok());
    // Config-driven starvation is genuine, not degraded: nothing was
    // injected, the options simply don't allow certification.
    EXPECT_FALSE(O.failureIsDegradedOnly());
    EXPECT_NE(O.ValidationError.find(
                  "the Bedrock2 interpreter exhausted its fuel budget "
                  "(8 steps)"),
              std::string::npos)
        << O.ValidationError;
    EXPECT_NE(O.ValidationError.find("target semantics failed on vector"),
              std::string::npos);
    // The sibling is untouched.
    EXPECT_TRUE((*Run)[1].ok()) << (*Run)[1].ValidationError;
  }
  // Byte-identical reporting regardless of scheduler width.
  EXPECT_EQ(S[0].ValidationError, Par[0].ValidationError);
  EXPECT_EQ(S[1].ValidationError, Par[1].ValidationError);
  EXPECT_EQ(S[0].TvCertJson, Par[0].TvCertJson);
}

TEST(RobustnessTest, InjectedFuelFaultIsDegradedAndNamed) {
  // The same starvation *injected* as a fault is a degraded outcome: the
  // diagnostic names the injection, --keep-going may reclassify it, and
  // sibling programs are unaffected.
  fault::ScopedFaults Armed("interp-fuel:persistent:v=16:match=fnv1a");
  const programs::ProgramDef *P = programs::findProgram("fnv1a");
  const programs::ProgramDef *Sibling = programs::findProgram("upstr");
  ASSERT_NE(P, nullptr);
  ASSERT_NE(Sibling, nullptr);
  PipelineOptions Opts;
  std::vector<ProgramOutcome> Out = certifyPrograms({P, Sibling}, Opts);
  ASSERT_EQ(Out.size(), 2u);
  const ProgramOutcome &O = Out[0];
  EXPECT_FALSE(O.ok());
  EXPECT_TRUE(O.Diff.Ran);
  EXPECT_FALSE(O.Diff.Ok);
  EXPECT_TRUE(O.Diff.Degraded);
  EXPECT_TRUE(O.failureIsDegradedOnly());
  EXPECT_NE(O.ValidationError.find("injected persistent interp-fuel fault"),
            std::string::npos)
      << O.ValidationError;
  EXPECT_NE(O.ValidationError.find("fuel budget (16 steps)"),
            std::string::npos)
      << O.ValidationError;
  EXPECT_TRUE(Out[1].ok()) << Out[1].ValidationError;
}

TEST(RobustnessTest, LayerEntryFaultDegradesNamedAndIsNotCached) {
  fault::ScopedFaults Armed("layer-entry:persistent:match=fnv1a/tv");
  const programs::ProgramDef *P = programs::findProgram("fnv1a");
  ASSERT_NE(P, nullptr);
  TempDir D("layerentry");
  PipelineOptions Opts;
  Opts.CacheDir = D.Path;
  PipelineStats Stats;
  std::vector<ProgramOutcome> Out = certifyPrograms({P}, Opts, &Stats);
  ASSERT_EQ(Out.size(), 1u);
  const ProgramOutcome &O = Out[0];

  EXPECT_FALSE(O.ok());
  EXPECT_TRUE(O.failureIsDegradedOnly());
  EXPECT_TRUE(O.Tv.Degraded);
  EXPECT_FALSE(O.Tv.Ok);
  EXPECT_NE(
      O.Tv.FaultNote.find("injected persistent layer-entry fault at "
                          "'fnv1a/tv'"),
      std::string::npos)
      << O.Tv.FaultNote;
  EXPECT_NE(O.ValidationError.find("injected persistent layer-entry fault"),
            std::string::npos)
      << O.ValidationError;
  // The other layers ran and passed: the fault poisons one layer, not the
  // whole chain.
  EXPECT_TRUE(O.Replay.Ok);
  EXPECT_TRUE(O.Analysis.Ok);
  // Fault-shadowed verdicts are never cached.
  EXPECT_EQ(Stats.Cache.Stores, 0u);
}

TEST(RobustnessTest, TransientFaultsWithinRetryAllowanceAreInvisible) {
  // A transient fault that heals within the retry allowance leaves no
  // trace at all: same outcome as a clean run.
  const programs::ProgramDef *P = programs::findProgram("fnv1a");
  ASSERT_NE(P, nullptr);
  PipelineOptions Opts;
  std::vector<ProgramOutcome> Clean = certifyPrograms({P}, Opts);
  fault::ScopedFaults Armed("cache-read:transient:n=1,"
                            "cache-write:transient:n=1,"
                            "interp-fuel:transient:n=1");
  std::vector<ProgramOutcome> Faulted = certifyPrograms({P}, Opts);
  ASSERT_EQ(Clean.size(), 1u);
  ASSERT_EQ(Faulted.size(), 1u);
  EXPECT_TRUE(Faulted[0].ok());
  EXPECT_FALSE(Faulted[0].anyDegraded());
  EXPECT_EQ(Faulted[0].ValidationError, Clean[0].ValidationError);
  EXPECT_EQ(Faulted[0].TvCertJson, Clean[0].TvCertJson);
  EXPECT_EQ(Faulted[0].TvVerdictName, Clean[0].TvVerdictName);
}

} // namespace
