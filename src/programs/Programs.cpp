//===- programs/Programs.cpp - The Table 2 benchmark suite -----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace relc {
namespace programs {

const std::vector<ProgramDef> &allPrograms() {
  static const std::vector<ProgramDef> Programs = [] {
    std::vector<ProgramDef> Out;
    Out.push_back(makeFnv1a());
    Out.push_back(makeUtf8());
    Out.push_back(makeUpstr());
    Out.push_back(makeM3s());
    Out.push_back(makeIpChecksum());
    Out.push_back(makeFasta());
    Out.push_back(makeCrc32());
    return Out;
  }();
  return Programs;
}

const ProgramDef *findProgram(const std::string &Name) {
  for (const ProgramDef &P : allPrograms())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

// compileAndValidate lives in CompileAndValidate.cpp: it calls
// validate::validate, and keeping it out of the registry's translation
// unit keeps the validator (and the TV driver behind it) out of binaries
// that only enumerate programs — the independent checker in particular.

} // namespace programs
} // namespace relc
