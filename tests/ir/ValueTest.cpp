//===- tests/ir/ValueTest.cpp ----------------------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include <gtest/gtest.h>

using namespace relc::ir;

namespace {

TEST(ValueTest, ScalarConstructorsAndAccessors) {
  EXPECT_EQ(Value::word(42).asWord(), 42u);
  EXPECT_EQ(Value::byte(0xAB).asByte(), 0xAB);
  EXPECT_TRUE(Value::boolean(true).asBool());
  EXPECT_FALSE(Value::boolean(false).asBool());
  EXPECT_EQ(Value::unit().kind(), Value::Kind::Unit);
  EXPECT_EQ(Value::byte(7).scalar(), 7u);
  EXPECT_EQ(Value::boolean(true).scalar(), 1u);
}

TEST(ValueTest, ByteListRoundTrip) {
  std::vector<uint8_t> Bytes = {1, 2, 255, 0};
  Value L = Value::byteList(Bytes);
  EXPECT_EQ(L.listElt(), EltKind::U8);
  EXPECT_EQ(L.asBytes(), Bytes);
  EXPECT_EQ(L.elems().size(), 4u);
}

TEST(ValueTest, WordListAsWords) {
  Value L = Value::list(EltKind::U32,
                        {Value::word(7), Value::word(0xffffffff)});
  EXPECT_EQ(L.asWords(), (std::vector<uint64_t>{7, 0xffffffff}));
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::word(1), Value::word(1));
  EXPECT_NE(Value::word(1), Value::word(2));
  EXPECT_NE(Value::word(1), Value::byte(1)); // Kinds matter.
  EXPECT_EQ(Value::byteList({1, 2}), Value::byteList({1, 2}));
  EXPECT_NE(Value::byteList({1, 2}), Value::byteList({1, 3}));
  EXPECT_NE(Value::list(EltKind::U8, {Value::byte(1)}),
            Value::list(EltKind::U16, {Value::byte(1)}));
  EXPECT_EQ(Value::tuple({Value::word(1), Value::unit()}),
            Value::tuple({Value::word(1), Value::unit()}));
}

TEST(ValueTest, EltKindHelpers) {
  EXPECT_EQ(eltSize(EltKind::U8), 1u);
  EXPECT_EQ(eltSize(EltKind::U64), 8u);
  EXPECT_EQ(eltMask(EltKind::U8), 0xffull);
  EXPECT_EQ(eltMask(EltKind::U16), 0xffffull);
  EXPECT_EQ(eltMask(EltKind::U32), 0xffffffffull);
  EXPECT_EQ(eltMask(EltKind::U64), ~0ull);
}

TEST(ValueTest, PrintingAbbreviatesLongLists) {
  std::vector<uint8_t> Big(100, 7);
  std::string S = Value::byteList(Big).str();
  EXPECT_NE(S.find("100 elems"), std::string::npos);
  EXPECT_LT(S.size(), 200u);
}

} // namespace
