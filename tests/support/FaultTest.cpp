//===- tests/support/FaultTest.cpp - relc::fault registry tests ------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace relc;
using namespace relc::fault;

namespace {

TEST(FaultTest, UnarmedNeverFires) {
  disarm();
  EXPECT_FALSE(armed());
  EXPECT_FALSE(fire(Site::CacheRead, "k"));
  EXPECT_FALSE(fireWithRetry(Site::LayerEntry, "k"));
}

TEST(FaultTest, SiteNamesRoundTrip) {
  for (unsigned I = 0; I < NumSites; ++I) {
    Site S = Site(I), Out;
    ASSERT_TRUE(siteFromName(siteName(S), &Out)) << siteName(S);
    EXPECT_EQ(Out, S);
  }
  Site Out;
  EXPECT_FALSE(siteFromName("bogus", &Out));
}

TEST(FaultTest, ParseErrorsAreNamedAndNonDestructive) {
  ScopedFaults Armed("cache-read:persistent");
  EXPECT_TRUE(armed());
  Status S = arm("not-a-site");
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("unknown site 'not-a-site'"),
            std::string::npos);
  // Failure leaves the previous arming untouched.
  EXPECT_TRUE(armed());
  EXPECT_EQ(activeSpec(), "cache-read:persistent");

  EXPECT_FALSE(bool(arm("cache-read:bogus-modifier")));
  EXPECT_FALSE(bool(arm("cache-read:p=1.5")));
  EXPECT_FALSE(bool(arm("cache-read:n=0")));
  EXPECT_FALSE(bool(arm("cache-read:seed=abc")));
}

TEST(FaultTest, TransientHealsAfterCount) {
  ScopedFaults Armed("layer-entry:transient:n=2");
  EXPECT_TRUE(fire(Site::LayerEntry, "p/tv").has_value());
  EXPECT_TRUE(fire(Site::LayerEntry, "p/tv").has_value());
  EXPECT_FALSE(fire(Site::LayerEntry, "p/tv").has_value()); // Healed.
  // Per-key counters: another key gets its own failures.
  EXPECT_TRUE(fire(Site::LayerEntry, "q/tv").has_value());
}

TEST(FaultTest, PersistentNeverHeals) {
  ScopedFaults Armed("sched-job:persistent");
  for (int I = 0; I < 5; ++I) {
    std::optional<Hit> H = fire(Site::SchedulerJob, "j");
    ASSERT_TRUE(H.has_value());
    EXPECT_FALSE(H->Transient);
    EXPECT_EQ(H->Occurrence, unsigned(I));
  }
}

TEST(FaultTest, FireWithRetryAbsorbsTransients) {
  ScopedFaults Armed("cache-write:transient:n=2");
  // Two transient failures, then healed: the retry loop absorbs them.
  EXPECT_FALSE(fireWithRetry(Site::CacheWrite, "k").has_value());
  // Already healed for this key: later calls see nothing.
  EXPECT_FALSE(fireWithRetry(Site::CacheWrite, "k").has_value());
}

TEST(FaultTest, FireWithRetryReportsPersistent) {
  ScopedFaults Armed("cache-write:persistent");
  std::optional<Hit> H = fireWithRetry(Site::CacheWrite, "k");
  ASSERT_TRUE(H.has_value());
  EXPECT_FALSE(H->Transient);
}

TEST(FaultTest, FireWithRetryReportsUnhealedTransient) {
  // More failures than the retry allowance: the site must degrade.
  ScopedFaults Armed("cache-write:transient:n=100");
  std::optional<Hit> H = fireWithRetry(Site::CacheWrite, "k", 4);
  ASSERT_TRUE(H.has_value());
  EXPECT_TRUE(H->Transient);
}

TEST(FaultTest, MatchRestrictsKeys) {
  ScopedFaults Armed("layer-entry:persistent:match=fnv1a");
  EXPECT_TRUE(fire(Site::LayerEntry, "fnv1a/tv").has_value());
  EXPECT_FALSE(fire(Site::LayerEntry, "crc32/tv").has_value());
}

TEST(FaultTest, SiteRestrictsFiring) {
  ScopedFaults Armed("cache-read:persistent");
  EXPECT_TRUE(fire(Site::CacheRead, "k").has_value());
  EXPECT_FALSE(fire(Site::CacheWrite, "k").has_value());
  EXPECT_FALSE(fire(Site::LayerEntry, "k").has_value());
}

TEST(FaultTest, ProbabilisticTargetingIsDeterministic) {
  // With p=0.5 and many keys, some are targeted and some are not — and
  // re-arming the same spec targets exactly the same keys.
  std::vector<bool> First, Second;
  {
    ScopedFaults Armed("layer-entry:persistent:p=0.5:seed=7");
    for (int I = 0; I < 64; ++I)
      First.push_back(
          fire(Site::LayerEntry, "key" + std::to_string(I)).has_value());
  }
  {
    ScopedFaults Armed("layer-entry:persistent:p=0.5:seed=7");
    for (int I = 0; I < 64; ++I)
      Second.push_back(
          fire(Site::LayerEntry, "key" + std::to_string(I)).has_value());
  }
  EXPECT_EQ(First, Second);
  unsigned Hits = 0;
  for (bool B : First)
    Hits += B;
  EXPECT_GT(Hits, 0u);
  EXPECT_LT(Hits, 64u);

  // A different seed targets a different key set (with overwhelming
  // probability over 64 keys).
  std::vector<bool> Other;
  {
    ScopedFaults Armed("layer-entry:persistent:p=0.5:seed=8");
    for (int I = 0; I < 64; ++I)
      Other.push_back(
          fire(Site::LayerEntry, "key" + std::to_string(I)).has_value());
  }
  EXPECT_NE(First, Other);
}

TEST(FaultTest, ValuePayloadCarried) {
  ScopedFaults Armed("interp-fuel:persistent:v=123");
  std::optional<Hit> H = fire(Site::InterpFuel, "fnv1a");
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->Value, 123u);
}

TEST(FaultTest, DescribeNamesEverything) {
  ScopedFaults Armed("sched-job:persistent");
  std::optional<Hit> H = fire(Site::SchedulerJob, "fnv1a/compile");
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->describe(),
            "injected persistent sched-job fault at 'fnv1a/compile' (hit #0)");
}

TEST(FaultTest, MultiClauseSpecs) {
  ScopedFaults Armed("cache-read:transient:n=1,sched-job:persistent");
  EXPECT_TRUE(fire(Site::CacheRead, "k").has_value());
  EXPECT_FALSE(fire(Site::CacheRead, "k").has_value()); // Healed.
  EXPECT_TRUE(fire(Site::SchedulerJob, "j").has_value());
}

TEST(FaultTest, ScopedFaultsRestoresPrevious) {
  disarm();
  {
    ScopedFaults Outer("cache-read:persistent");
    EXPECT_EQ(activeSpec(), "cache-read:persistent");
    {
      ScopedFaults Inner("sched-job:persistent");
      EXPECT_EQ(activeSpec(), "sched-job:persistent");
    }
    EXPECT_EQ(activeSpec(), "cache-read:persistent");
  }
  EXPECT_FALSE(armed());
}

TEST(FaultTest, EmptySpecDisarms) {
  ScopedFaults Armed("cache-read:persistent");
  EXPECT_TRUE(bool(arm("")));
  EXPECT_FALSE(armed());
}

} // namespace
