//===- tests/tv/TvSeededBugsTest.cpp - Planted-miscompilation corpus -------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Hand-planted wrong-code twins: for each classic miscompilation — an
// off-by-one loop bound, swapped operands, a dropped store — a Bedrock2
// function that *almost* implements its model, and a clean twin differing
// only in the defect. The validator must refute each defect naming the
// failing model binding, and must prove the clean twin. This corpus is
// the precision/recall contract of the translation-validation layer,
// mirroring tests/analysis/SeededBugsTest.cpp one layer up the trust
// story.
//
// The clean twins are deliberately written by hand in a *natural* loop
// style rather than echoing the compiler's exact output shape: proving
// them exercises the normalization engine (affine index arithmetic,
// store-masking, mask erasure), not just syntactic replay.
//
//===----------------------------------------------------------------------===//

#include "ir/Build.h"
#include "tv/Tv.h"
#include "validate/Validate.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::ir;
using namespace relc::bedrock;

namespace {

//===----------------------------------------------------------------------===//
// Defect 1: off-by-one loop bound (reads one element past the model).
//===----------------------------------------------------------------------===//

SourceFn sumModel() {
  FnBuilder FB("sum", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  B.let("acc", mkFold("s", "a", "b", cw(0), addw(v("a"), b2w(v("b")))));
  return std::move(FB).done(std::move(B).ret({"acc"}));
}

sep::FnSpec sumSpec() {
  sep::FnSpec Spec("sum");
  Spec.arrayArg("s").lenArg("len", "s").retScalar("acc");
  return Spec;
}

Function sumTarget(bool OffByOne) {
  Function F;
  F.Name = "sum";
  F.Args = {"s", "len"};
  F.Rets = {"acc"};
  bedrock::ExprPtr Bound = OffByOne ? add(var("len"), lit(1)) : var("len");
  F.Body = seqAll(
      {set("acc", lit(0)), set("i", lit(0)),
       whileLoop(bin(BinOp::LtU, var("i"), Bound),
                 seqAll({set("acc", add(var("acc"),
                                        load(AccessSize::Byte,
                                             add(var("s"), var("i"))))),
                         set("i", add(var("i"), lit(1)))}))});
  return F;
}

TEST(TvSeededBugsTest, OffByOneLoopBoundRefuted) {
  tv::TvReport Rep =
      tv::validateTranslation(sumModel(), sumSpec(), sumTarget(true));
  ASSERT_TRUE(Rep.refuted()) << Rep.str();
  // The refutation names the failing model binding and the loop's path.
  EXPECT_NE(Rep.Reason.find("'acc'"), std::string::npos) << Rep.Reason;
  EXPECT_NE(Rep.Reason.find("body."), std::string::npos) << Rep.Reason;
  EXPECT_NE(Rep.Reason.find("guard"), std::string::npos) << Rep.Reason;
}

TEST(TvSeededBugsTest, OffByOneCleanTwinProves) {
  tv::TvReport Rep =
      tv::validateTranslation(sumModel(), sumSpec(), sumTarget(false));
  EXPECT_TRUE(Rep.proved()) << Rep.str();
}

//===----------------------------------------------------------------------===//
// Defect 2: swapped operands of a non-commutative operator.
//===----------------------------------------------------------------------===//

SourceFn diffModel() {
  // acc' = acc - b: subtraction makes the operand order observable.
  FnBuilder FB("diff", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  B.let("acc", mkFold("s", "a", "b", cw(0), subw(v("a"), b2w(v("b")))));
  return std::move(FB).done(std::move(B).ret({"acc"}));
}

sep::FnSpec diffSpec() {
  sep::FnSpec Spec("diff");
  Spec.arrayArg("s").lenArg("len", "s").retScalar("acc");
  return Spec;
}

Function diffTarget(bool Swapped) {
  Function F;
  F.Name = "diff";
  F.Args = {"s", "len"};
  F.Rets = {"acc"};
  bedrock::ExprPtr Elt = load(AccessSize::Byte, add(var("s"), var("i")));
  bedrock::ExprPtr Step = Swapped ? sub(Elt, var("acc")) : sub(var("acc"), Elt);
  F.Body = seqAll({set("acc", lit(0)), set("i", lit(0)),
                   whileLoop(bin(BinOp::LtU, var("i"), var("len")),
                             seqAll({set("acc", Step),
                                     set("i", add(var("i"), lit(1)))}))});
  return F;
}

TEST(TvSeededBugsTest, SwappedOperandsRefuted) {
  tv::TvReport Rep =
      tv::validateTranslation(diffModel(), diffSpec(), diffTarget(true));
  ASSERT_TRUE(Rep.refuted()) << Rep.str();
  EXPECT_NE(Rep.Reason.find("'acc'"), std::string::npos) << Rep.Reason;
  EXPECT_NE(Rep.Reason.find("steps to"), std::string::npos) << Rep.Reason;
}

TEST(TvSeededBugsTest, SwappedOperandsCleanTwinProves) {
  tv::TvReport Rep =
      tv::validateTranslation(diffModel(), diffSpec(), diffTarget(false));
  EXPECT_TRUE(Rep.proved()) << Rep.str();
}

//===----------------------------------------------------------------------===//
// Defect 3: dropped store (the loop computes but never writes back).
//===----------------------------------------------------------------------===//

SourceFn incrModel() {
  // In-place map: every byte incremented (mod 256).
  FnBuilder FB("incr", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  B.let("s", mkMap("s", "b", w2b(addw(b2w(v("b")), cw(1)))));
  return std::move(FB).done(std::move(B).ret({"s"}));
}

sep::FnSpec incrSpec() {
  sep::FnSpec Spec("incr");
  Spec.arrayArg("s").lenArg("len", "s").retInPlace("s");
  return Spec;
}

Function incrTarget(bool DropStore) {
  Function F;
  F.Name = "incr";
  F.Args = {"s", "len"};
  bedrock::ExprPtr Addr = add(var("s"), var("i"));
  bedrock::CmdPtr Write = DropStore
                     ? set("dead", add(load(AccessSize::Byte, Addr), lit(1)))
                     : store(AccessSize::Byte, Addr,
                             add(load(AccessSize::Byte, Addr), lit(1)));
  F.Body = seqAll({set("i", lit(0)),
                   whileLoop(bin(BinOp::LtU, var("i"), var("len")),
                             seqAll({Write, set("i", add(var("i"), lit(1)))}))});
  return F;
}

TEST(TvSeededBugsTest, DroppedStoreRefuted) {
  tv::TvReport Rep =
      tv::validateTranslation(incrModel(), incrSpec(), incrTarget(true));
  ASSERT_TRUE(Rep.refuted()) << Rep.str();
  // The report names the model binding whose region writes are missing.
  EXPECT_NE(Rep.Reason.find("'s'"), std::string::npos) << Rep.Reason;
  EXPECT_NE(Rep.Reason.find("body."), std::string::npos) << Rep.Reason;
}

TEST(TvSeededBugsTest, DroppedStoreCleanTwinProves) {
  tv::TvReport Rep =
      tv::validateTranslation(incrModel(), incrSpec(), incrTarget(false));
  EXPECT_TRUE(Rep.proved()) << Rep.str();
  // The in-place array is the proved output channel.
  ASSERT_EQ(Rep.Outputs.size(), 1u);
  EXPECT_EQ(Rep.Outputs[0].Kind, "array");
}

//===----------------------------------------------------------------------===//
// The validate() pipeline rejects a tampered compilation via the TV layer.
//===----------------------------------------------------------------------===//

TEST(TvSeededBugsTest, ValidatePipelineRejectsTamperedTarget) {
  FnBuilder FB("axpb", Monad::Pure);
  FB.wordParam("x").wordParam("y");
  ProgBuilder B;
  B.let("r", addw(v("x"), v("y")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("axpb");
  Spec.scalarArg("x").scalarArg("y").retScalar("r");

  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec, {});
  ASSERT_TRUE(bool(R)) << (R ? "" : R.error().str());

  // Tamper with the *code* only: the witness still replays, the static
  // analyzer still sees safe straight-line code — but the function now
  // computes x - y. Only the equivalence layers can see that.
  bedrock::Function GoodFn = R->Fn;
  R->Fn.Body = set("r", sub(var("x"), var("y")));

  bedrock::Module M;
  M.Functions.push_back(R->Fn);
  Status S = validate::validate(Fn, Spec, *R, M, {});
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("translation validation"), std::string::npos)
      << S.error().str();

  // The untampered result passes the full pipeline.
  R->Fn = GoodFn;
  bedrock::Module Good;
  Good.Functions.push_back(R->Fn);
  Status OK = validate::validate(Fn, Spec, *R, Good, {});
  EXPECT_TRUE(bool(OK)) << (OK ? "" : OK.error().str());
}

} // namespace
