//===- service/Supervisor.h - relcd worker-pool supervisor ------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The parent half of crash-only certification (DESIGN.md §4.12): a
// fixed-size pool of forked workers (service/Worker.h), each on its own
// socketpair, plus everything needed to survive them:
//
//   - loss detection: exit-by-signal, the OOM exit code, and hangs via
//     a per-job wall deadline layered over guard::Budget (the worker's
//     cooperative budgets bound the job from the inside; the deadline
//     bounds it from the outside even when cooperation fails);
//   - recovery: the dead worker is SIGKILL'd (idempotent), reaped with
//     wait4 (rusage feeds the crash report), its slot respawned lazily,
//     and the job retried up to RetryLimit times with decorrelated-
//     jitter backoff (support/Backoff.h);
//   - naming: a job that cannot be completed degrades to a named
//     ErrorReply — "worker-crashed" / "worker-oom" / "worker-timeout"
//     (RetryLimit 0) or "worker-retries-exhausted" with the per-attempt
//     losses in the detail — under the PR 5 taxonomy: named, exit 3 at
//     the tool face, never cached or memoized;
//   - evidence: each loss writes a crash-report artifact (job key,
//     classification, wait status, rusage) into CrashDir when set.
//
// Deterministic chaos (relc::fault) is injected here, parent-side, so
// the per-key ordinals live in one process and transient/persistent
// semantics survive worker restarts: svc-worker-spawn fails a fork,
// svc-worker-crash delivers a real signal (v = signo, default SIGKILL)
// to the worker mid-job, svc-worker-hang withholds the worker's reply
// until the deadline fires. The worker child consults no fault site —
// its certify path is exactly the production path.
//
// Trust story: the supervisor is trusted for *availability only*. It
// never interprets certificate bytes; a lying worker is caught by
// relc-check exactly as a lying relc-gen would be.
//
// Forking: workers are forked without exec. The daemon routes every
// certification through the pool in worker mode, so no parent thread
// holds pipeline/allocator locks across fork long-term; the child only
// runs the certify path and _exits.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVICE_SUPERVISOR_H
#define RELC_SERVICE_SUPERVISOR_H

#include "service/Protocol.h"
#include "service/Worker.h"
#include "support/Result.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

namespace relc {
namespace service {

struct SupervisorOptions {
  unsigned Workers = 2;
  /// Retries after the first attempt; 0 = fail fast with the specific
  /// loss name instead of "worker-retries-exhausted".
  unsigned RetryLimit = 2;
  unsigned JobWallMs = 60000;       ///< Per-attempt wall deadline.
  unsigned AcquireTimeoutMs = 60000; ///< Wait for an idle worker.
  unsigned BackoffBaseMs = 25;
  unsigned BackoffCapMs = 1000;
  uint64_t BackoffSeed = 0;
  WorkerConfig Worker;   ///< CacheDir / Jobs / rlimits for each child.
  std::string CrashDir;  ///< Crash-report artifacts; "" disables them.
};

/// How a job attempt lost its worker.
enum class Loss : uint8_t {
  Crashed, ///< Signal death or unexpected exit ("worker-crashed").
  Oom,     ///< kWorkerOomExit ("worker-oom").
  Timeout, ///< Wall-deadline kill or SIGXCPU ("worker-timeout").
};
const char *lossName(Loss L);

/// Classifies one reaped wait status. \p KilledByDeadline marks kills
/// the supervisor itself delivered after the wall deadline. *Detail
/// gets the human elaboration ("killed by signal 9 (Killed)").
Loss classifyExit(int WaitStatus, bool KilledByDeadline,
                  std::string *Detail);

struct SupervisorCounters {
  uint64_t Spawns = 0;        ///< Total forks, including the initial pool.
  uint64_t Restarts = 0;      ///< Respawns after an abnormal death.
  uint64_t SpawnFailures = 0;
  uint64_t Crashes = 0;
  uint64_t Ooms = 0;
  uint64_t Timeouts = 0;
  uint64_t Retries = 0;         ///< Attempts re-dispatched after a loss.
  uint64_t DegradedReplies = 0; ///< worker-* ErrorReplies served.
  uint64_t JobsRun = 0;         ///< Jobs completed by a worker.
  uint64_t CrashReports = 0;    ///< Artifacts written to CrashDir.
};

class Supervisor {
public:
  explicit Supervisor(SupervisorOptions O);
  ~Supervisor();
  Supervisor(const Supervisor &) = delete;
  Supervisor &operator=(const Supervisor &) = delete;

  /// Spawns the initial pool. Spawn failures here are not fatal — a
  /// slot that cannot spawn now is retried per job.
  Status start();

  /// Terminates the pool: idle workers are killed and reaped; busy
  /// workers are killed so their in-flight runJob calls return a named
  /// loss without retrying. Idempotent.
  void stop();

  bool stopping() const { return Stopping.load(std::memory_order_acquire); }

  /// Runs one canonicalized certify job on a pooled worker, retrying
  /// lost attempts. Returns the worker's reply verbatim, or a named
  /// degraded ErrorReply ("worker-*"), or "server-busy" when no worker
  /// frees up in time / the pool is draining. \p JobKey keys the fault
  /// sites, the backoff jitter, and the crash reports.
  wire::Message runJob(const wire::CertifyRequest &Canon,
                       const std::string &JobKey);

  SupervisorCounters counters() const;

  const SupervisorOptions &options() const { return Opts; }

private:
  struct Slot {
    pid_t Pid = -1;
    int Fd = -1;
    bool Busy = false;
    bool EverSpawned = false;
  };

  int acquireSlot();
  void releaseSlot(int Idx);
  Status ensureSpawned(int Idx, const std::string &JobKey);
  /// Kills (idempotently), reaps, classifies, and tears down the slot's
  /// worker; writes the crash report.
  Loss reapLoss(int Idx, bool KilledByDeadline, const std::string &JobKey,
                unsigned Attempt, std::string *Detail);
  /// One dispatch attempt; true with *Reply on success, false with
  /// *TheLoss / *Detail on a lost worker.
  bool attemptJob(int Idx, const wire::CertifyRequest &Canon,
                  const std::string &JobKey, unsigned Attempt,
                  wire::Message *Reply, Loss *TheLoss, std::string *Detail);
  void writeCrashReport(const std::string &JobKey, unsigned Attempt,
                        Loss L, const std::string &Detail, int WaitStatus,
                        long MaxRssKb, pid_t Pid);

  SupervisorOptions Opts;
  std::atomic<bool> Stopping{false};

  mutable std::mutex Mu;
  std::condition_variable IdleCv;
  std::vector<Slot> Slots;

  std::atomic<uint64_t> Spawns{0}, Restarts{0}, SpawnFailures{0}, Crashes{0},
      Ooms{0}, Timeouts{0}, Retries{0}, DegradedReplies{0}, JobsRun{0},
      CrashReportsWritten{0}, CrashSeq{0};
};

} // namespace service
} // namespace relc

#endif // RELC_SERVICE_SUPERVISOR_H
