//===- tests/tv/TermTest.cpp - Term-graph normalization units --------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The translation validator's soundness rests on every normalization rule
// of the term graph being a word-level identity, and its completeness on
// the rules canonicalizing the syntactic variation the compiler actually
// introduces. Each test here pins one rule: two different constructions
// that denote the same word must intern to the same node, and
// constructions that denote different words must not.
//
//===----------------------------------------------------------------------===//

#include "tv/Term.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::tv;
using bedrock::BinOp;

namespace {

TEST(TermTest, ConstantsFold) {
  TermGraph G;
  EXPECT_EQ(G.bin(BinOp::Add, G.constant(2), G.constant(3)), G.constant(5));
  EXPECT_EQ(G.bin(BinOp::Mul, G.constant(7), G.constant(6)), G.constant(42));
  EXPECT_EQ(G.bin(BinOp::Sub, G.constant(0), G.constant(1)),
            G.constant(~uint64_t(0)));
}

TEST(TermTest, HashConsingDeduplicates) {
  TermGraph G;
  TermId X1 = G.sym("x");
  TermId X2 = G.sym("x");
  EXPECT_EQ(X1, X2);
  EXPECT_NE(G.sym("y"), X1);
  EXPECT_EQ(G.bin(BinOp::Xor, X1, G.sym("y")),
            G.bin(BinOp::Xor, G.sym("x"), G.sym("y")));
}

TEST(TermTest, AffineCanonicalization) {
  TermGraph G;
  TermId X = G.sym("x"), Y = G.sym("y");
  // (x + y) + 1 == 1 + (y + x)
  EXPECT_EQ(G.bin(BinOp::Add, G.bin(BinOp::Add, X, Y), G.constant(1)),
            G.bin(BinOp::Add, G.constant(1), G.bin(BinOp::Add, Y, X)));
  // (x + 3) - (x + 1) == 2
  EXPECT_EQ(G.bin(BinOp::Sub, G.bin(BinOp::Add, X, G.constant(3)),
                  G.bin(BinOp::Add, X, G.constant(1))),
            G.constant(2));
  // 2*(x + 3) == (x*2) + 6
  EXPECT_EQ(G.bin(BinOp::Mul, G.constant(2), G.bin(BinOp::Add, X, G.constant(3))),
            G.bin(BinOp::Add, G.bin(BinOp::Mul, X, G.constant(2)),
                  G.constant(6)));
  // x - x == 0, even under mod-2^64 coefficients.
  EXPECT_EQ(G.bin(BinOp::Sub, X, X), G.constant(0));
}

TEST(TermTest, ShiftByConstantIsScaling) {
  TermGraph G;
  TermId X = G.sym("x");
  EXPECT_EQ(G.bin(BinOp::Shl, X, G.constant(1)),
            G.bin(BinOp::Mul, X, G.constant(2)));
  EXPECT_EQ(G.bin(BinOp::Shl, X, G.constant(3)),
            G.bin(BinOp::Mul, G.constant(8), X));
}

TEST(TermTest, DifferentValuesStayDifferent) {
  TermGraph G;
  TermId X = G.sym("x"), Y = G.sym("y");
  EXPECT_NE(G.bin(BinOp::Add, X, G.constant(1)), X);
  EXPECT_NE(G.bin(BinOp::Sub, X, Y), G.bin(BinOp::Sub, Y, X));
  EXPECT_NE(G.bin(BinOp::LtU, X, Y), G.bin(BinOp::LtU, Y, X));
}

TEST(TermTest, ByteElementMaskErased) {
  TermGraph G;
  // A byte-array element is <= 255, so the compiler's w2b mask (and the
  // model's explicit truncation) are both erased.
  TermId Arr = G.arrInit("s", 1);
  TermId E = G.elt(Arr, G.sym("i"));
  EXPECT_EQ(G.bin(BinOp::And, E, G.constant(0xff)), E);
  // But a mask that can change the value stays.
  EXPECT_NE(G.bin(BinOp::And, E, G.constant(0x0f)), E);
  // And a word-array element is not narrowed.
  TermId W = G.elt(G.arrInit("w", 8), G.sym("i"));
  EXPECT_NE(G.bin(BinOp::And, W, G.constant(0xff)), W);
}

TEST(TermTest, StoreForwarding) {
  TermGraph G;
  TermId Arr = G.arrInit("s", 1);
  TermId I = G.sym("i");
  TermId V = G.sym("v");
  TermId St = G.arrStore(Arr, I, V);
  // Same-index load forwards the (masked) stored value.
  EXPECT_EQ(G.elt(St, I), G.bin(BinOp::And, V, G.constant(0xff)));
  // Distinct constant indices look through the store.
  TermId St2 = G.arrStore(Arr, G.constant(3), V);
  EXPECT_EQ(G.elt(St2, G.constant(7)), G.elt(Arr, G.constant(7)));
  // A possibly-equal symbolic index does not look through.
  EXPECT_NE(G.elt(St, G.sym("j")), G.elt(Arr, G.sym("j")));
}

TEST(TermTest, StoreMasksValueToWidth) {
  TermGraph G;
  TermId Arr = G.arrInit("s", 1);
  TermId I = G.sym("i");
  TermId V = G.sym("v");
  // Storing v and storing (v & 0xff) to a byte array are the same write.
  EXPECT_EQ(G.arrStore(Arr, I, V),
            G.arrStore(Arr, I, G.bin(BinOp::And, V, G.constant(0xff))));
}

TEST(TermTest, SelectFoldsOnConstantCondition) {
  TermGraph G;
  TermId T = G.sym("t"), E = G.sym("e");
  EXPECT_EQ(G.select(G.constant(1), T, E), T);
  EXPECT_EQ(G.select(G.constant(0), T, E), E);
  EXPECT_EQ(G.select(G.sym("c"), T, T), T);
}

TEST(TermTest, SubstituteRenamesAndRenormalizes) {
  TermGraph G;
  TermId X = G.sym("x"), Y = G.sym("y"), Z = G.sym("z");
  TermId Sum = G.bin(BinOp::Add, X, Y);
  std::map<TermId, TermId> Ren = {{X, Z}};
  // The renamed term must re-canonicalize to what a direct construction
  // over the new symbols gives (atom order may differ between graphs).
  EXPECT_EQ(G.substitute(Sum, Ren), G.bin(BinOp::Add, Z, Y));
  // Renaming both symbols of a subtraction swaps it coherently.
  std::map<TermId, TermId> Swap = {{X, Y}, {Y, X}};
  EXPECT_EQ(G.substitute(G.bin(BinOp::Sub, X, Y), Swap),
            G.bin(BinOp::Sub, Y, X));
}

TEST(TermTest, FoldSummariesInternStructurally) {
  TermGraph G;
  auto MakeFold = [&](uint64_t InitVal) {
    FoldInfo FI;
    FI.NumCarried = 2;
    TermId I = G.sym("%L0.c0"), A = G.sym("%L0.c1");
    FI.Guard = G.bin(BinOp::LtU, I, G.sym("len_s"));
    FI.Inits = {G.constant(0), G.constant(InitVal)};
    FI.Nexts = {G.bin(BinOp::Add, I, G.constant(1)),
                G.bin(BinOp::Add, A, G.elt(G.arrInit("s", 1), I))};
    return G.fold(FI);
  };
  TermId F1 = MakeFold(0), F2 = MakeFold(0), F3 = MakeFold(1);
  EXPECT_EQ(F1, F2);
  EXPECT_NE(F1, F3);
  EXPECT_EQ(G.foldOut(F1, 1), G.foldOut(F2, 1));
  EXPECT_NE(G.foldOut(F1, 0), G.foldOut(F1, 1));
}

TEST(TermTest, HashesAreStableAcrossGraphs) {
  // Certificates compare hashes across separately-built graphs.
  TermGraph G1, G2;
  TermId A = G1.bin(BinOp::Add, G1.sym("x"), G1.constant(7));
  TermId B = G2.bin(BinOp::Add, G2.sym("x"), G2.constant(7));
  EXPECT_EQ(G1.hashOf(A), G2.hashOf(B));
  EXPECT_NE(G1.hashOf(A), G2.hashOf(G2.sym("x")));
}

TEST(TermTest, UpperBoundOracle) {
  TermGraph G;
  // Byte elements, table reads, and compares have structural bounds.
  TermId E = G.elt(G.arrInit("s", 1), G.sym("i"));
  ASSERT_TRUE(G.upperBound(E).has_value());
  EXPECT_EQ(*G.upperBound(E), 255u);
  TermId C = G.bin(BinOp::LtU, G.sym("x"), G.sym("y"));
  ASSERT_TRUE(G.upperBound(C).has_value());
  EXPECT_EQ(*G.upperBound(C), 1u);
  EXPECT_FALSE(G.upperBound(G.sym("x")).has_value());
}

} // namespace
