//===- extraction/ExtractionRuntime.cpp - Box 1 baseline --------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "extraction/ExtractionRuntime.h"

#include "programs/Programs.h"

namespace relc {
namespace extraction {

CharBox boxChar(uint8_t B) {
  auto A = std::make_shared<Ascii>();
  for (unsigned I = 0; I < 8; ++I)
    A->Bits[I] = (B >> I) & 1;
  return A;
}

uint8_t unboxChar(const CharBox &C) {
  uint8_t B = 0;
  for (unsigned I = 0; I < 8; ++I)
    B |= uint8_t(C->Bits[I]) << I;
  return B;
}

Str strOfBytes(const std::vector<uint8_t> &Bytes) {
  Str Out;
  for (size_t I = Bytes.size(); I-- > 0;)
    Out = cons(boxChar(Bytes[I]), Out);
  return Out;
}

std::vector<uint8_t> bytesOfStr(const Str &S) {
  std::vector<uint8_t> Out;
  for (auto P = S; P; P = P->Tail)
    Out.push_back(unboxChar(P->Head));
  return Out;
}

CharBox toupperMatch(const CharBox &C) {
  // The extracted shape of `match c with "a"%char => "A"%char | ...`:
  // decode, dispatch over the 26 lowercase cases, allocate the result.
  switch (unboxChar(C)) {
  case 'a': return boxChar('A');
  case 'b': return boxChar('B');
  case 'c': return boxChar('C');
  case 'd': return boxChar('D');
  case 'e': return boxChar('E');
  case 'f': return boxChar('F');
  case 'g': return boxChar('G');
  case 'h': return boxChar('H');
  case 'i': return boxChar('I');
  case 'j': return boxChar('J');
  case 'k': return boxChar('K');
  case 'l': return boxChar('L');
  case 'm': return boxChar('M');
  case 'n': return boxChar('N');
  case 'o': return boxChar('O');
  case 'p': return boxChar('P');
  case 'q': return boxChar('Q');
  case 'r': return boxChar('R');
  case 's': return boxChar('S');
  case 't': return boxChar('T');
  case 'u': return boxChar('U');
  case 'v': return boxChar('V');
  case 'w': return boxChar('W');
  case 'x': return boxChar('X');
  case 'y': return boxChar('Y');
  case 'z': return boxChar('Z');
  default: return C;
  }
}

Str upstr(const Str &S) {
  return map<CharBox>(toupperMatch, S);
}

uint64_t fnv1a(const Str &S) {
  return foldLeft<uint64_t, CharBox>(
      [](uint64_t H, const CharBox &C) {
        return (H ^ unboxChar(C)) * 0x100000001b3ull;
      },
      S, 0xcbf29ce484222325ull);
}

uint64_t crc32ListTable(const Str &S) {
  // Build the CRC table as a Gallina list once; each lookup is linear.
  static const List<uint64_t> Table = [] {
    const std::vector<uint64_t> &T = programs::crc32Table();
    List<uint64_t> Out;
    for (size_t I = T.size(); I-- > 0;)
      Out = cons(T[I], Out);
    return Out;
  }();
  uint64_t Crc = foldLeft<uint64_t, CharBox>(
      [](uint64_t C, const CharBox &Ch) {
        return (C >> 8) ^
               nth<uint64_t>(Table, size_t((C ^ unboxChar(Ch)) & 0xff), 0);
      },
      S, 0xffffffffull);
  return Crc ^ 0xffffffffull;
}

Str fastaListTable(const Str &S) {
  static const List<uint64_t> Table = [] {
    const std::vector<uint64_t> &T = programs::fastaComplementTable();
    List<uint64_t> Out;
    for (size_t I = T.size(); I-- > 0;)
      Out = cons(T[I], Out);
    return Out;
  }();
  return map<CharBox>(
      [](const CharBox &C) {
        return boxChar(
            uint8_t(nth<uint64_t>(Table, unboxChar(C), 0)));
      },
      S);
}

} // namespace extraction
} // namespace relc
