//===- core/rules/RulesCommon.cpp - Shared rule helpers --------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/rules/RulesCommon.h"

namespace relc {
namespace core {

using sep::SymVal;
using sep::TargetSlot;
using solver::lc;

sep::SymVal freshTypedSym(sep::CompState &St, const std::string &Hint,
                          ir::Ty T) {
  SymVal V = SymVal::sym(St.freshSym(Hint));
  St.Facts.addGe0(V.term(), "word is nonnegative");
  if (T == ir::Ty::Byte)
    St.Facts.addLe(V.term(), lc(255), "byte value");
  if (T == ir::Ty::Bool)
    St.Facts.addLe(V.term(), lc(1), "bool value");
  return V;
}

Result<std::string> singleName(const ir::Binding &B) {
  if (B.Names.size() != 1)
    return Error("binding " + B.str() + " must bind exactly one name");
  return B.Names[0];
}

CompileCtx::EndHandler accEndHandler(std::vector<LoopTarget> Targets,
                                     std::vector<std::string> Returns) {
  return [Targets = std::move(Targets), Returns = std::move(Returns)](
             CompileCtx &Ctx, DerivNode &D) -> Result<bedrock::CmdPtr> {
    if (Returns.size() != Targets.size())
      return Error("loop/branch body returns " +
                   std::to_string(Returns.size()) + " values for " +
                   std::to_string(Targets.size()) + " targets");
    std::vector<bedrock::CmdPtr> Fixups;
    for (size_t I = 0; I < Targets.size(); ++I) {
      const LoopTarget &T = Targets[I];
      const std::string &R = Returns[I];
      if (T.IsPointer) {
        if (R != T.Name)
          return Error("pointer target '" + T.Name +
                       "' must be returned under its own name (got '" + R +
                       "')");
        int Clause = Ctx.State.findClauseByPayload(T.Name);
        if (Clause < 0)
          return Error("body did not leave '" + T.Name +
                       "' in the memory predicate")
              .note(Ctx.State.str());
        D.SideConds.push_back("array payload '" + T.Name +
                              "' realized at join point");
        continue;
      }
      const TargetSlot *Slot = Ctx.State.findScalar(R);
      if (!Slot)
        return Error("body result '" + R + "' is not held by a scalar local")
            .note(Ctx.State.str());
      if (Slot->ScalarTy != T.ScalarTy)
        return Error("body result '" + R + "' has type " +
                     ir::tyName(Slot->ScalarTy) + ", target '" + T.Name +
                     "' expects " + ir::tyName(T.ScalarTy));
      if (R != T.Name) {
        Fixups.push_back(bedrock::set(T.Name, bedrock::var(R)));
        Ctx.State.Locals[T.Name] = *Slot;
      }
      D.SideConds.push_back("local '" + T.Name +
                            "' carries the target value at join point");
    }
    return bedrock::seqAll(std::move(Fixups));
  };
}

Result<std::vector<bedrock::CmdPtr>>
emitAccInits(CompileCtx &Ctx, const std::vector<ir::AccInit> &Accs,
             const std::vector<std::string> &BindNames,
             std::map<std::string, ir::Ty> *NewScalarTys, DerivNode &D) {
  if (Accs.size() != BindNames.size())
    return Error("loop binds " + std::to_string(BindNames.size()) +
                 " names but carries " + std::to_string(Accs.size()) +
                 " accumulators");
  for (size_t I = 0; I < Accs.size(); ++I)
    if (Accs[I].Name != BindNames[I])
      return Error("loop accumulator '" + Accs[I].Name +
                   "' must be bound under the same name (got '" +
                   BindNames[I] + "'); compilation is name-directed");

  std::vector<bedrock::CmdPtr> Cmds;
  for (const ir::AccInit &A : Accs) {
    // Array (pointer) accumulator: initializer must be the array itself.
    if (const auto *V = dyn_cast<ir::VarRef>(A.Init.get())) {
      int Clause = Ctx.State.findClauseByPayload(V->name());
      if (Clause >= 0) {
        if (V->name() != A.Name)
          return Error("unsolved goal: array accumulator '" + A.Name +
                       "' must be initialized by the array of the same name "
                       "(mutation is chosen by name reuse); to copy, bind a "
                       "copy explicitly first");
        continue; // No code: the clause already realizes the accumulator.
      }
    }
    // Scalar accumulator.
    Result<CompiledExpr> Init = Ctx.exprs().compile(*A.Init, D);
    if (!Init)
      return Init.takeError().note("in initializer of accumulator " + A.Name);
    if (Ctx.State.Locals.count(A.Name) &&
        Ctx.State.Locals[A.Name].TheKind == TargetSlot::Kind::Ptr)
      return Error("accumulator '" + A.Name +
                   "' would overwrite a live pointer local");
    for (const bedrock::CmdPtr &P : Init->Pre)
      Cmds.push_back(P);
    Cmds.push_back(bedrock::set(A.Name, Init->E));
    Ctx.State.Locals[A.Name] = TargetSlot::scalar(Init->Val, Init->Type);
    (*NewScalarTys)[A.Name] = Init->Type;
  }
  return Cmds;
}

} // namespace core
} // namespace relc
