//===- tests/service/ServiceTest.cpp - Certification service + daemon ------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The certification-as-a-service layer end to end: service::certify's
// exit taxonomy and artifact contract, and a real Server + Client over a
// Unix-domain socket — warm-path memoization, backpressure by name,
// server-side budget defaults, wire-level byte-identity with relc-gen's
// artifacts, connection-level rejections (truncated-frame, slow-loris
// request-timeout, bad magic from a raw socket), deterministic fault
// injection at the svc-* sites, and crash recovery: a daemon killed with
// SIGKILL mid-request leaves a stale socket and a half-warm cache that a
// restarted daemon must recover, not inherit corruption from.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Server.h"
#include "service/Service.h"
#include "support/Fault.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

// fork() is unsupported under ThreadSanitizer; detect it for both
// compilers (clang: __has_feature, gcc: __SANITIZE_THREAD__).
#if defined(__SANITIZE_THREAD__)
#define RELC_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RELC_UNDER_TSAN 1
#endif
#endif
#ifndef RELC_UNDER_TSAN
#define RELC_UNDER_TSAN 0
#endif

using namespace relc;
using namespace relc::service;

namespace {

/// Unique short socket paths (sun_path is ~108 bytes, so /tmp, not the
/// build tree) and scratch dirs, removed on destruction.
struct TempPaths {
  std::string Sock;
  std::string CacheDir;
  explicit TempPaths(const std::string &Tag) {
    std::string Base = "/tmp/relc-svc-" + Tag + "-" +
                       std::to_string(uint64_t(::getpid()));
    Sock = Base + ".sock";
    CacheDir = Base + ".cache";
    std::filesystem::remove(Sock);
    std::filesystem::remove(Sock + ".lock");
    std::filesystem::remove_all(CacheDir);
  }
  ~TempPaths() {
    std::filesystem::remove(Sock);
    std::filesystem::remove(Sock + ".lock");
    std::filesystem::remove_all(CacheDir);
  }
};

wire::Message certifyMsg(std::vector<std::string> Programs,
                         uint64_t TvStepBudget = 0, bool KeepGoing = false) {
  wire::Message M;
  M.TheKind = wire::Kind::CertifyRequest;
  M.Certify.Programs = std::move(Programs);
  M.Certify.TvStepBudget = TvStepBudget;
  M.Certify.KeepGoing = KeepGoing;
  return M;
}

//===----------------------------------------------------------------------===//
// service::certify — the in-process surface.
//===----------------------------------------------------------------------===//

TEST(ServiceTest, CertifyOneProgramFullStrength) {
  Request R;
  R.Programs = {"fnv1a"};
  R.EmitC = true;
  Response Resp = certify(R);
  EXPECT_EQ(Resp.Exit, 0);
  ASSERT_EQ(Resp.Programs.size(), 1u);
  const ProgramReply &PR = Resp.Programs[0];
  EXPECT_EQ(PR.Status, ProgramStatus::Certified);
  EXPECT_EQ(PR.From, Provenance::Live);
  EXPECT_EQ(PR.TvVerdict, "proved");
  EXPECT_EQ(PR.CodelintVerdict, "safe");
  EXPECT_FALSE(PR.CertJson.empty());
  EXPECT_FALSE(PR.CertBin.empty());
  EXPECT_NE(PR.CCode.find("relc_fnv1a"), std::string::npos);
  EXPECT_NE(Resp.CHeader.find("relc_fnv1a"), std::string::npos);
}

TEST(ServiceTest, UnknownProgramIsUsageError) {
  Request R;
  R.Programs = {"no-such-program"};
  Response Resp = certify(R);
  EXPECT_EQ(Resp.Exit, 2);
  EXPECT_EQ(Resp.UsageError, "unknown-program: 'no-such-program'");
  EXPECT_TRUE(Resp.Programs.empty());
}

TEST(ServiceTest, BudgetExhaustionIsDegradedNotFailed) {
  // The CI taxonomy pin, in-process: a starved TV budget degrades the
  // layer, differential certification carries the program, exit 3.
  Request R;
  R.Programs = {"fnv1a"};
  R.TvStepBudget = 50;
  Response Resp = certify(R);
  EXPECT_EQ(Resp.Exit, 3);
  ASSERT_EQ(Resp.Programs.size(), 1u);
  EXPECT_EQ(Resp.Programs[0].Status, ProgramStatus::CertifiedDegraded);
  EXPECT_FALSE(Resp.Programs[0].DegradedNote.empty());
}

TEST(ServiceTest, StatusAndProvenanceNamesRoundTrip) {
  for (ProgramStatus S :
       {ProgramStatus::Certified, ProgramStatus::CertifiedDegraded,
        ProgramStatus::Degraded, ProgramStatus::Failed}) {
    ProgramStatus Back;
    ASSERT_TRUE(statusFromName(statusName(S), &Back)) << statusName(S);
    EXPECT_EQ(Back, S);
  }
  ProgramStatus Out;
  EXPECT_FALSE(statusFromName("certified-ish", &Out));
  EXPECT_STREQ(provenanceName(Provenance::Live), "live");
  EXPECT_STREQ(provenanceName(Provenance::DiskCache), "disk-cache");
  EXPECT_STREQ(provenanceName(Provenance::Memo), "memo");
}

#ifndef _WIN32

/// Sends raw bytes (none = just connect), optionally half-closes, and
/// decodes the one reply frame the server writes back.
wire::Message rawExchange(const std::string &Sock, const std::string &Bytes,
                          bool ShutWr) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Sock.c_str(), Sock.size() + 1);
  EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  if (!Bytes.empty()) {
    EXPECT_EQ(::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL),
              ssize_t(Bytes.size()));
  }
  if (ShutWr)
    ::shutdown(Fd, SHUT_WR); // EOF mid-frame, but the reply can land.
  std::string Buf;
  char Tmp[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N <= 0)
      break;
    Buf.append(Tmp, size_t(N));
    size_t FrameSize = 0;
    std::string_view Payload;
    if (wire::splitFrame(Buf, &FrameSize, &Payload) == wire::FrameStatus::Ok)
      break;
  }
  ::close(Fd);
  wire::Message M;
  size_t FrameSize = 0;
  std::string_view Payload;
  EXPECT_EQ(wire::splitFrame(Buf, &FrameSize, &Payload),
            wire::FrameStatus::Ok);
  std::string Reason;
  EXPECT_TRUE(wire::decode(Payload, &M, &Reason)) << Reason;
  return M;
}

//===----------------------------------------------------------------------===//
// Crash recovery. First among the daemon tests: fork() from a process
// with detached server threads still winding down is the risk we are
// *not* testing, so this runs before any in-process Server exists.
//===----------------------------------------------------------------------===//

#if !RELC_UNDER_TSAN
TEST(ServiceTest, CrashRecoveryAfterSigkillMidRequest) {
  TempPaths P("crash");
  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    // Child: a daemon that will die rudely.
    ServerOptions SO;
    SO.SocketPath = P.Sock;
    SO.CacheDir = P.CacheDir;
    Server Srv(SO);
    if (!Srv.start())
      _exit(1);
    for (;;)
      std::this_thread::sleep_for(std::chrono::seconds(1));
  }

  // Prime the daemon's disk cache with one completed certification (the
  // connect retries absorb daemon startup), so the killed daemon leaves
  // a half-warm cache behind.
  {
    Client Prime;
    ASSERT_TRUE(bool(Prime.connect(P.Sock, 5000)));
    Result<wire::Message> PR = Prime.roundTrip(certifyMsg({"fnv1a"}));
    ASSERT_TRUE(bool(PR));
    ASSERT_EQ(PR->TheKind, wire::Kind::CertifyReply);
    ASSERT_EQ(PR->Reply.Exit, 0);
  }

  // Now wedge the daemon mid-request — half a certify frame, never the
  // rest, so the connection is deterministically mid-read — and SIGKILL.
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, P.Sock.c_str(), P.Sock.size() + 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  std::string F = wire::frame(wire::encode(certifyMsg({})));
  size_t Half = F.size() / 2;
  ASSERT_EQ(::send(Fd, F.data(), Half, MSG_NOSIGNAL), ssize_t(Half));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::kill(Pid, SIGKILL), 0);
  int WStatus = 0;
  ASSERT_EQ(::waitpid(Pid, &WStatus, 0), Pid);
  ASSERT_TRUE(WIFSIGNALED(WStatus) && WTERMSIG(WStatus) == SIGKILL);
  // The dead daemon never answered the half-request: EOF, not a reply.
  char Tmp[64];
  EXPECT_EQ(::recv(Fd, Tmp, sizeof(Tmp), 0), 0);
  ::close(Fd);
  // The stale socket file is still on disk — that is the recovery case.
  ASSERT_TRUE(std::filesystem::exists(P.Sock));

  // A restarted daemon must recover the stale path and the half-written
  // cache, and serve correct answers.
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  SO.CacheDir = P.CacheDir;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(R->Reply.Exit, 0);
  ASSERT_EQ(R->Reply.Programs.size(), 1u);
  EXPECT_EQ(R->Reply.Programs[0].Status, uint8_t(ProgramStatus::Certified));
  // The killed daemon's completed store survived: the restarted daemon
  // replays it from the disk cache (its in-memory memo died with it).
  EXPECT_EQ(R->Reply.Programs[0].From, uint8_t(Provenance::DiskCache));

  // Cache consistency after the crash: whatever the killed daemon left
  // behind, the replayed verdict matches a fresh in-process run byte for
  // byte.
  Request Direct;
  Direct.Programs = {"fnv1a"};
  Direct.LayerTimeoutMs = SO.DefaultLayerTimeoutMs;
  Response DirectResp = certify(Direct);
  ASSERT_EQ(DirectResp.Programs.size(), 1u);
  EXPECT_EQ(R->Reply.Programs[0].CertJson, DirectResp.Programs[0].CertJson);
  EXPECT_EQ(R->Reply.Programs[0].CertBin, DirectResp.Programs[0].CertBin);

  Srv.requestStop();
  Srv.wait();
}
#endif // !RELC_UNDER_TSAN

//===----------------------------------------------------------------------===//
// Daemon round trips, warmth, and backpressure.
//===----------------------------------------------------------------------===//

TEST(ServiceTest, DaemonServesCertifyPingStats) {
  TempPaths P("basic");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  SO.CacheDir = P.CacheDir;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));

  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));

  wire::Message Ping;
  Ping.TheKind = wire::Kind::PingRequest;
  Result<wire::Message> R = C.roundTrip(Ping);
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::PongReply);
  EXPECT_EQ(R->ThePong.ApiVersion, kApiVersion);
  EXPECT_EQ(R->ThePong.SchemaVersion, wire::kSchemaVersion);
  EXPECT_NE(R->ThePong.RegistryFingerprint, 0u);

  R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(R->Reply.Exit, 0);
  ASSERT_EQ(R->Reply.Programs.size(), 1u);
  EXPECT_EQ(R->Reply.Programs[0].Name, "fnv1a");
  EXPECT_EQ(R->Reply.Programs[0].TvVerdict, "proved");

  // The wire certificates are byte-identical to the in-process (relc-gen)
  // artifacts — the daemon adds transport, never content. The in-process
  // run mirrors the server's canonicalized budget.
  Request Direct;
  Direct.Programs = {"fnv1a"};
  Direct.LayerTimeoutMs = SO.DefaultLayerTimeoutMs;
  Response DirectResp = certify(Direct);
  ASSERT_EQ(DirectResp.Programs.size(), 1u);
  EXPECT_EQ(R->Reply.Programs[0].CertJson, DirectResp.Programs[0].CertJson);
  EXPECT_EQ(R->Reply.Programs[0].CertBin, DirectResp.Programs[0].CertBin);

  wire::Message StatsReq;
  StatsReq.TheKind = wire::Kind::StatsRequest;
  R = C.roundTrip(StatsReq);
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::StatsReply);
  EXPECT_GE(R->TheStats.Requests, 2u);
  EXPECT_EQ(R->TheStats.CertifyRequests, 1u);
  EXPECT_GE(R->TheStats.CacheStores, 1u); // Cold run stored its verdict.

  Srv.requestStop();
  Srv.wait();
}

TEST(ServiceTest, MemoServesRepeatsAndNamesProvenance) {
  TempPaths P("memo");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  SO.CacheDir = P.CacheDir;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));

  Result<wire::Message> Cold = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(Cold));
  ASSERT_EQ(Cold->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(Cold->Reply.Programs[0].From, uint8_t(Provenance::Live));

  Result<wire::Message> Warm = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(Warm));
  ASSERT_EQ(Warm->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(Warm->Reply.Exit, 0);
  // Same verdicts and bytes, but the provenance names the memo.
  EXPECT_EQ(Warm->Reply.Programs[0].From, uint8_t(Provenance::Memo));
  EXPECT_EQ(Warm->Reply.Programs[0].CertBin, Cold->Reply.Programs[0].CertBin);
  EXPECT_EQ(Srv.stats().MemoHits, 1u);

  Srv.requestStop();
  Srv.wait();
}

TEST(ServiceTest, DegradedRepliesAreNeverMemoizedOrCached) {
  TempPaths P("degraded");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  SO.CacheDir = P.CacheDir;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));

  // A starved TV budget degrades the request (exit 3, named status).
  Result<wire::Message> First = C.roundTrip(certifyMsg({"fnv1a"}, 50));
  ASSERT_TRUE(bool(First));
  ASSERT_EQ(First->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(First->Reply.Exit, 3);
  EXPECT_EQ(First->Reply.Programs[0].Status,
            uint8_t(ProgramStatus::CertifiedDegraded));
  EXPECT_FALSE(First->Reply.Programs[0].DegradedNote.empty());
  wire::Stats S1 = Srv.stats();
  EXPECT_EQ(S1.CacheStores, 0u); // Degraded verdicts never hit the disk.

  // Repeating it certifies live again: no memo hit, no cache hit, and
  // the disk cache still holds nothing.
  Result<wire::Message> Second = C.roundTrip(certifyMsg({"fnv1a"}, 50));
  ASSERT_TRUE(bool(Second));
  ASSERT_EQ(Second->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(Second->Reply.Exit, 3);
  EXPECT_EQ(Second->Reply.Programs[0].From, uint8_t(Provenance::Live));
  wire::Stats S2 = Srv.stats();
  EXPECT_EQ(S2.MemoHits, 0u);
  EXPECT_EQ(S2.CacheHits, 0u);
  EXPECT_EQ(S2.CacheStores, 0u);
  EXPECT_GT(S2.CacheMisses, S1.CacheMisses);

  Srv.requestStop();
  Srv.wait();
}

TEST(ServiceTest, BackpressureIsNamedServerBusy) {
  // MaxInflight 0 refuses every certify at admission — deterministic
  // backpressure without a thread race.
  TempPaths P("busy");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  SO.MaxInflight = 0;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(R->Error.Reason, "server-busy");
  EXPECT_NE(R->Error.Detail.find("max-inflight 0"), std::string::npos);
  EXPECT_EQ(Srv.stats().BusyRejections, 1u);
  // Ping still answers: only certification is admission-capped.
  wire::Message Ping;
  Ping.TheKind = wire::Kind::PingRequest;
  R = C.roundTrip(Ping);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->TheKind, wire::Kind::PongReply);
  Srv.requestStop();
  Srv.wait();
}

TEST(ServiceTest, ConnectionCapIsNamedServerBusy) {
  TempPaths P("conncap");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  SO.MaxClients = 1;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client A;
  ASSERT_TRUE(bool(A.connect(P.Sock)));
  wire::Message Ping;
  Ping.TheKind = wire::Kind::PingRequest;
  ASSERT_TRUE(bool(A.roundTrip(Ping))); // A is now counted as active.
  // The over-cap rejection is written unsolicited at accept time and the
  // socket closed, so read it raw: connect, send nothing, decode the one
  // frame the server pushes.
  wire::Message M = rawExchange(P.Sock, "", false);
  ASSERT_EQ(M.TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(M.Error.Reason, "server-busy");
  EXPECT_NE(M.Error.Detail.find("max-clients 1"), std::string::npos);
  EXPECT_GE(Srv.stats().BusyRejections, 1u);
  Srv.requestStop();
  Srv.wait();
}

TEST(ServiceTest, UnknownProgramOverTheWire) {
  TempPaths P("unknown");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));
  Result<wire::Message> R = C.roundTrip(certifyMsg({"no-such-program"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(R->Error.Reason, "unknown-program");
  EXPECT_NE(R->Error.Detail.find("'no-such-program'"), std::string::npos);
  Srv.requestStop();
  Srv.wait();
}

TEST(ServiceTest, SocketInUseIsNamedWhileAlive) {
  // Ownership is decided by the flock on the `.lock` sibling, before
  // the socket file is touched: the loser fails by name and the
  // winner's socket is never probed or unlinked.
  TempPaths P("inuse");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Server Second(SO);
  Status S = Second.start();
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("socket-in-use"), std::string::npos);
  Srv.requestStop();
  Srv.wait();
  // The lock dies with the holder: after a clean shutdown the same
  // path is immediately claimable again.
  Server Third(SO);
  ASSERT_TRUE(bool(Third.start()));
  Third.requestStop();
  Third.wait();
}

//===----------------------------------------------------------------------===//
// Raw-socket protocol rejections against a live daemon.
//===----------------------------------------------------------------------===//

TEST(ServiceTest, WireRejectionsAreNamedOnTheWire) {
  TempPaths P("reject");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  SO.ReadTimeoutMs = 200; // Tight slow-loris window for the timeout case.
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));

  // Garbage bytes: bad-magic.
  wire::Message M = rawExchange(P.Sock, "GET / HTTP/1.1\r\n\r\n", false);
  ASSERT_EQ(M.TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(M.Error.Reason, "bad-magic");

  // Right magic, wrong schema: unknown-schema-version.
  wire::Message Ping;
  Ping.TheKind = wire::Kind::PingRequest;
  std::string F = wire::frame(wire::encode(Ping));
  F[8] = 99;
  M = rawExchange(P.Sock, F, false);
  ASSERT_EQ(M.TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(M.Error.Reason, "unknown-schema-version");

  // Absurd declared length: oversized-frame.
  F = wire::frame(wire::encode(Ping));
  uint32_t Huge = wire::kMaxFramePayload + 1;
  std::memcpy(&F[12], &Huge, 4);
  M = rawExchange(P.Sock, F.substr(0, wire::kHeaderSize), false);
  ASSERT_EQ(M.TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(M.Error.Reason, "oversized-frame");

  // Well-formed frame, unknown kind byte: unknown-request-kind.
  M = rawExchange(P.Sock, wire::frame(std::string(1, char(0x33))), false);
  ASSERT_EQ(M.TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(M.Error.Reason, "unknown-request-kind");

  // A reply kind sent as a request is also unknown-request-kind (it
  // decodes, but the daemon refuses to dispatch it).
  wire::Message Pong;
  Pong.TheKind = wire::Kind::PongReply;
  M = rawExchange(P.Sock, wire::frame(wire::encode(Pong)), false);
  ASSERT_EQ(M.TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(M.Error.Reason, "unknown-request-kind");

  // Half a frame then EOF: truncated-frame.
  F = wire::frame(wire::encode(Ping));
  M = rawExchange(P.Sock, F.substr(0, F.size() - 1), true);
  ASSERT_EQ(M.TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(M.Error.Reason, "truncated-frame");
  EXPECT_NE(M.Error.Detail.find("peer closed after"), std::string::npos);

  // Half a frame then silence: request-timeout (slow-loris guard).
  M = rawExchange(P.Sock, F.substr(0, F.size() - 1), false);
  ASSERT_EQ(M.TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(M.Error.Reason, "request-timeout");

  EXPECT_GE(Srv.stats().ProtocolRejections, 7u);
  Srv.requestStop();
  Srv.wait();
}

//===----------------------------------------------------------------------===//
// Deterministic fault injection at the svc-* sites, plus a concurrent
// multi-client fuzz under an armed fault matrix.
//===----------------------------------------------------------------------===//

TEST(ServiceTest, SvcDispatchFaultIsNamedAndNeverCached) {
  TempPaths P("fault");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  SO.CacheDir = P.CacheDir;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));

  {
    fault::ScopedFaults Faults("svc-dispatch:persistent");
    Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
    ASSERT_TRUE(bool(R));
    ASSERT_EQ(R->TheKind, wire::Kind::ErrorReply);
    EXPECT_EQ(R->Error.Reason, "injected-fault");
    EXPECT_NE(R->Error.Detail.find("svc-dispatch"), std::string::npos);
  }
  wire::Stats S = Srv.stats();
  EXPECT_EQ(S.FaultedRequests, 1u);
  EXPECT_EQ(S.CacheStores, 0u); // The faulted request certified nothing.

  // Disarmed, the same request certifies normally — the fault left no
  // residue in the memo or the cache.
  Result<wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(R->Reply.Exit, 0);
  Srv.requestStop();
  Srv.wait();
}

TEST(ServiceTest, ConcurrentClientsUnderFaultMatrixNeverHang) {
  TempPaths P("fuzz");
  ServerOptions SO;
  SO.SocketPath = P.Sock;
  Server Srv(SO);
  ASSERT_TRUE(bool(Srv.start()));

  // Persistent read/write faults on a deterministic ~third of the
  // connection keys (fireWithRetry absorbs short transients by design,
  // so only persistent clauses actually drop connections): some round
  // trips die with a named client-side error, none hang, and the server
  // neither crashes nor leaks a connection slot.
  fault::ScopedFaults Faults(
      "svc-read:persistent:p=0.35:seed=7,svc-write:persistent:p=0.35:"
      "seed=11");
  constexpr int Clients = 8, Rounds = 6;
  std::atomic<unsigned> Ok{0}, NamedFailures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < Clients; ++T)
    Threads.emplace_back([&, T] {
      for (int R = 0; R < Rounds; ++R) {
        Client C;
        if (!C.connect(P.Sock, 5000))
          continue;
        wire::Message Req;
        Req.TheKind =
            (T + R) % 2 ? wire::Kind::PingRequest : wire::Kind::StatsRequest;
        Result<wire::Message> Reply = C.roundTrip(Req, 20000);
        if (Reply)
          Ok.fetch_add(1);
        else
          NamedFailures.fetch_add(1); // "connection-lost"/"truncated-frame".
      }
    });
  for (std::thread &T : Threads)
    T.join();
  // Every round trip resolved one way or the other (no hangs — join
  // returned), and the armed faults actually bit.
  EXPECT_EQ(Ok.load() + NamedFailures.load(), unsigned(Clients * Rounds));
  EXPECT_GT(NamedFailures.load(), 0u);
  EXPECT_GT(Ok.load(), 0u);

  fault::disarm();
  // The server is still healthy: a fresh client round trip succeeds and
  // every connection slot drained back.
  Client C;
  ASSERT_TRUE(bool(C.connect(P.Sock)));
  wire::Message Ping;
  Ping.TheKind = wire::Kind::PingRequest;
  ASSERT_TRUE(bool(C.roundTrip(Ping)));
  Srv.requestStop();
  Srv.wait();
  EXPECT_EQ(Srv.stats().ActiveConnections, 0u);
}

#endif // !_WIN32

} // namespace
