//===- tests/pipeline/CertCacheTest.cpp - Certificate cache ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pipeline/CertCache.h"
#include "pipeline/Hash.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace relc;
using namespace relc::pipeline;

namespace {

/// A unique scratch directory per test, removed on destruction.
struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Name) {
    Path = (std::filesystem::temp_directory_path() /
            ("relc-cache-test-" + Name))
               .string();
    std::filesystem::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

CertKey sampleKey() {
  CertKey K;
  K.ModelHash = 0x1111aaaa2222bbbbULL;
  K.SpecHash = 0x3333cccc4444ddddULL;
  K.CodeHash = 0x5555eeee6666ffffULL;
  return K;
}

CertEntry sampleEntry() {
  CertEntry E;
  E.Program = "upstr";
  E.OptsHash = 0xdeadbeefcafef00dULL;
  E.ReplayOk = true;
  E.AnalysisOk = true;
  E.AnalysisWarnings = 2;
  E.AnalysisDiags = "warning: dead store to 'x'\nwarning: unreachable";
  E.TvRan = true;
  E.TvVerdict = "proved";
  E.TvLoops = 1;
  E.TvTerms = 42;
  E.TvCertificate = "{\n  \"verdict\": \"proved\"\n}\n";
  E.DifferentialOk = true;
  return E;
}

TEST(CertCacheTest, Fnv1a64IsStableAndChainable) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  // Chaining two halves equals hashing the concatenation.
  EXPECT_EQ(fnv1a64("world", fnv1a64("hello ")), fnv1a64("hello world"));
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(CertCacheTest, Hex16RoundTrips) {
  for (uint64_t V : {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL}) {
    std::string S = hex16(V);
    EXPECT_EQ(S.size(), 16u);
    uint64_t Back = 0;
    ASSERT_TRUE(parseHex(S, &Back)) << S;
    EXPECT_EQ(Back, V);
  }
  uint64_t X;
  EXPECT_FALSE(parseHex("not-hex-not-hex!", &X));
  EXPECT_FALSE(parseHex("", &X));
  EXPECT_FALSE(parseHex("00000000000000000", &X)); // 17 digits: too long.
}

TEST(CertCacheTest, SerializeDeserializeRoundTrips) {
  CertKey K = sampleKey();
  CertEntry E = sampleEntry();
  std::string Text = CertCache::serialize(K, E);

  CertKey K2;
  std::optional<CertEntry> E2 = CertCache::deserialize(Text, &K2);
  ASSERT_TRUE(E2.has_value());
  EXPECT_TRUE(K2 == K);
  EXPECT_EQ(E2->Program, E.Program);
  EXPECT_EQ(E2->OptsHash, E.OptsHash);
  EXPECT_EQ(E2->ReplayOk, E.ReplayOk);
  EXPECT_EQ(E2->AnalysisOk, E.AnalysisOk);
  EXPECT_EQ(E2->AnalysisWarnings, E.AnalysisWarnings);
  EXPECT_EQ(E2->AnalysisDiags, E.AnalysisDiags);
  EXPECT_EQ(E2->TvRan, E.TvRan);
  EXPECT_EQ(E2->TvVerdict, E.TvVerdict);
  EXPECT_EQ(E2->TvLoops, E.TvLoops);
  EXPECT_EQ(E2->TvTerms, E.TvTerms);
  EXPECT_EQ(E2->TvCertificate, E.TvCertificate);
  EXPECT_EQ(E2->DifferentialOk, E.DifferentialOk);
}

TEST(CertCacheTest, SerializationIsByteStable) {
  // Two serializations of the same entry are identical — the disk format
  // must be deterministic for byte-identical warm-run artifacts.
  EXPECT_EQ(CertCache::serialize(sampleKey(), sampleEntry()),
            CertCache::serialize(sampleKey(), sampleEntry()));
}

TEST(CertCacheTest, AnyFlippedPayloadBitFailsIntegrity) {
  std::string Text = CertCache::serialize(sampleKey(), sampleEntry());
  // Flip the verdict: "proved" -> "proxed".
  size_t Pos = Text.find("proved");
  ASSERT_NE(Pos, std::string::npos);
  std::string Tampered = Text;
  Tampered[Pos + 3] = 'x';
  EXPECT_FALSE(CertCache::deserialize(Tampered).has_value());
}

TEST(CertCacheTest, StoreThenLookupHits) {
  TempDir D("roundtrip");
  CertCache Cache(D.Path);
  CacheStats Stats;
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry(), &Stats)));
  EXPECT_EQ(Stats.Stores, 1u);

  std::optional<CertEntry> E =
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(E->TvCertificate, sampleEntry().TvCertificate);
}

TEST(CertCacheTest, AnyKeyComponentChangeMisses) {
  TempDir D("keymiss");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));

  for (int Component = 0; Component < 3; ++Component) {
    CertKey K = sampleKey();
    (Component == 0   ? K.ModelHash
     : Component == 1 ? K.SpecHash
                      : K.CodeHash) ^= 1;
    CacheStats Stats;
    EXPECT_FALSE(Cache.lookup(K, sampleEntry().OptsHash, &Stats).has_value());
    EXPECT_EQ(Stats.Misses, 1u);
    EXPECT_EQ(Stats.CorruptDiscarded, 0u);
  }
}

TEST(CertCacheTest, OptionsHashMismatchMisses) {
  TempDir D("optsmiss");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  CacheStats Stats;
  EXPECT_FALSE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash ^ 1, &Stats)
          .has_value());
  EXPECT_EQ(Stats.Misses, 1u);
  // The entry itself is fine — it stays on disk.
  EXPECT_TRUE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats).has_value());
}

TEST(CertCacheTest, CorruptedEntryDiscardedDeletedAndRederivable) {
  TempDir D("corrupt");
  CertCache Cache(D.Path);
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));

  // Corrupt the single entry file on disk.
  std::string Path;
  for (const auto &Ent : std::filesystem::directory_iterator(D.Path))
    Path = Ent.path().string();
  ASSERT_FALSE(Path.empty());
  {
    std::ofstream Out(Path, std::ios::app);
    Out << "garbage\n";
  }

  CacheStats Stats;
  EXPECT_FALSE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats).has_value());
  EXPECT_EQ(Stats.CorruptDiscarded, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
  // The poisoned file is gone; a fresh store + lookup works again.
  EXPECT_FALSE(std::filesystem::exists(Path));
  ASSERT_TRUE(bool(Cache.store(sampleKey(), sampleEntry())));
  EXPECT_TRUE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats).has_value());
}

TEST(CertCacheTest, MisfiledEntryDiscarded) {
  // An integral entry stored under the wrong filename (e.g. a manually
  // renamed file) must not be trusted: the recorded key disagrees.
  TempDir D("misfiled");
  CertCache Cache(D.Path);
  CertKey Wrong = sampleKey();
  Wrong.CodeHash ^= 0xff;
  std::filesystem::create_directories(D.Path);
  std::ofstream Out(D.Path + "/" + Wrong.fileStem() + ".cert.json");
  Out << CertCache::serialize(sampleKey(), sampleEntry());
  Out.close();

  CacheStats Stats;
  EXPECT_FALSE(Cache.lookup(Wrong, sampleEntry().OptsHash, &Stats).has_value());
  EXPECT_EQ(Stats.CorruptDiscarded, 1u);
}

TEST(CertCacheTest, DisabledCacheAlwaysMisses) {
  CertCache Cache("");
  EXPECT_FALSE(Cache.enabled());
  CacheStats Stats;
  EXPECT_TRUE(bool(Cache.store(sampleKey(), sampleEntry(), &Stats)));
  EXPECT_EQ(Stats.Stores, 0u);
  EXPECT_FALSE(
      Cache.lookup(sampleKey(), sampleEntry().OptsHash, &Stats).has_value());
  EXPECT_EQ(Stats.Misses, 1u);
}

} // namespace
