//===- analysis/Domains.h - Abstract domains for bedrock code ---*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The three concrete abstract domains run by the static verifier, plus the
// ABI digest they consume:
//
//   - AbiInfo distills a program's `sep::FnSpec` into analyzable form:
//     which target arguments are pointers into which separation-logic
//     clause (region), which are scalars or length words, and the entry
//     fact database (the requires clause: lengths nonnegative and ABI-
//     bounded, plus any user compile hints).
//
//   - InitDomain: definitely-initialized locals (set intersection).
//
//   - IntervalDomain: unsigned word ranges with loop-header widening; a
//     cheap relational-free domain whose main job is constant-condition
//     edge pruning for the unreachable-code checker.
//
//   - SymbolicDomain: the precise domain backing the bounds checker. Each
//     local maps to an AbsVal — either a scalar whose *exact* integer word
//     value is an affine `solver::LinTerm`, or a pointer into a region at
//     an exact nonnegative byte offset. Facts (T ≥ 0 rows, keyed by their
//     canonical rendering so branch joins can intersect them) travel in
//     the state, not globally: facts proven under one branch never leak
//     into the other. Unknown values get deterministic site-keyed fresh
//     symbols ("%body.1#0"), so re-running a transfer function during
//     fixpoint iteration reproduces the same names and the iteration
//     reaches a syntactic fixpoint; joins merge differing values into phi
//     symbols keyed by (block, variable). Soundness invariant: every term
//     denotes the exact word value (as an unsigned integer) — affine
//     results of +/-/* are only built when the solver proves the machine
//     operation cannot wrap; otherwise the result is an opaque symbol
//     carrying whatever one-sided bounds hold unconditionally in ℤ.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_ANALYSIS_DOMAINS_H
#define RELC_ANALYSIS_DOMAINS_H

#include "analysis/Cfg.h"
#include "ir/Prog.h"
#include "sep/Spec.h"
#include "sep/State.h"
#include "solver/Linear.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace relc {
namespace analysis {

//===----------------------------------------------------------------------===//
// ABI digest.
//===----------------------------------------------------------------------===//

/// One addressable memory region: a separation-logic clause from the
/// function's ABI spec, or a stackalloc block.
struct Region {
  enum class Kind { Array, Cell, Scratch };

  Kind K = Kind::Array;
  std::string Name;         ///< Source array/cell name, or stackalloc local.
  unsigned EltBytes = 1;    ///< Element width (Cell: 8; Scratch: 1).
  solver::LinTerm Extent;   ///< Byte size: EltBytes·len, 8, or the alloc size.
  bool Scoped = false;      ///< Stackalloc region (lifetime = its body).

  /// The sep-logic clause rendered for diagnostics, e.g. "array ptr_s s".
  std::string ClauseStr;
};

/// Everything the analyzer knows about a function's interface: regions,
/// what each target argument denotes, and the entry facts (the requires
/// clause plus compile hints).
struct AbiInfo {
  std::vector<Region> Regions;

  /// Target argument name -> region it points to.
  std::map<std::string, int> ArgRegion;

  /// Target argument name -> exact entry value (scalars and length words).
  std::map<std::string, solver::LinTerm> ArgTerm;

  /// Stackalloc command -> its (pre-registered) region.
  std::map<const bedrock::Cmd *, int> StackRegion;

  /// Facts about the entry symbols, exactly as the compiler assumed them.
  solver::FactDb EntryFacts;
};

/// Entry-fact providers, the same shape as core::CompileHints::EntryFacts
/// (kept structural so the analysis library does not depend on core).
using EntryFactList = std::vector<std::function<void(sep::CompState &)>>;

/// Distills \p Spec (against model \p Src) plus \p Hints into an AbiInfo
/// for \p Fn. Mirrors the compiler's setupInitialState symbol naming:
/// scalar parameter x is symbol "x", the length of list parameter s is
/// "len_s".
AbiInfo makeAbiInfo(const bedrock::Function &Fn, const sep::FnSpec &Spec,
                    const ir::SourceFn &Src, const EntryFactList &Hints = {});

//===----------------------------------------------------------------------===//
// Statement read/write sets (shared by domains and checkers).
//===----------------------------------------------------------------------===//

/// Locals read by \p S (expression operands; not branch conditions).
void forEachReadVar(const CfgStmt &S,
                    const std::function<void(const std::string &)> &Fn);

/// Locals defined by \p S (Set target, call/interact returns, stackalloc
/// binding).
void forEachDefVar(const CfgStmt &S,
                   const std::function<void(const std::string &)> &Fn);

/// Locals removed from scope by \p S (Unset, stackalloc exit).
void forEachKillVar(const CfgStmt &S,
                    const std::function<void(const std::string &)> &Fn);

//===----------------------------------------------------------------------===//
// Definitely-initialized locals.
//===----------------------------------------------------------------------===//

class InitDomain {
public:
  struct State {
    std::set<std::string> Defined;
  };

  explicit InitDomain(const bedrock::Function &Fn) : Fn(Fn) {}

  State entry() const;
  void transfer(const Cfg &G, const BasicBlock &B, const CfgStmt &S,
                State &St) const;
  std::optional<State> edge(const Cfg &G, const BasicBlock &B, const State &St,
                            bool Taken) const;
  /// Intersection (must-analysis); true iff Into shrank.
  bool join(unsigned BlockId, State &Into, const State &From) const;

  bool same(const State &X, const State &Y) const {
    return X.Defined == Y.Defined;
  }

  bool restartLoops() const { return false; }

  /// Applies \p S's effect to a definedness set (also used by the checker's
  /// in-block replay).
  static void apply(const CfgStmt &S, std::set<std::string> &Defined);

private:
  const bedrock::Function &Fn;
};

//===----------------------------------------------------------------------===//
// Intervals.
//===----------------------------------------------------------------------===//

/// An unsigned word range [Lo, Hi].
struct Interval {
  uint64_t Lo = 0;
  uint64_t Hi = ~uint64_t(0);

  static Interval top() { return {}; }
  static Interval point(uint64_t V) { return {V, V}; }
  bool isTop() const { return Lo == 0 && Hi == ~uint64_t(0); }
  bool operator==(const Interval &O) const { return Lo == O.Lo && Hi == O.Hi; }
};

class IntervalDomain {
public:
  struct State {
    /// Absent variables are unconstrained (top).
    std::map<std::string, Interval> Env;
  };

  IntervalDomain(const Cfg &G, const bedrock::Function &Fn, const AbiInfo &Abi)
      : G(G), Fn(Fn), Abi(Abi) {}

  State entry() const;
  void transfer(const Cfg &G, const BasicBlock &B, const CfgStmt &S,
                State &St) const;
  /// Refines the condition's variables along the edge; nullopt when the
  /// condition's interval excludes this edge entirely.
  std::optional<State> edge(const Cfg &G, const BasicBlock &B, const State &St,
                            bool Taken) const;
  /// Interval hull, widened to top per variable after repeated growth at
  /// loop headers.
  bool join(unsigned BlockId, State &Into, const State &From);

  bool same(const State &X, const State &Y) const { return X.Env == Y.Env; }

  /// Hull + widening tolerates stale merges; restarts would cascade
  /// across loop chains (see Dataflow.h).
  bool restartLoops() const { return false; }

  Interval eval(const State &St, const bedrock::Expr &E) const;

private:
  const Cfg &G;
  const bedrock::Function &Fn;
  const AbiInfo &Abi;
  std::map<unsigned, unsigned> JoinCount;
};

//===----------------------------------------------------------------------===//
// Symbolic values with separation-logic regions.
//===----------------------------------------------------------------------===//

/// Abstract value of one local: an exact scalar word, or a pointer into a
/// region at an exact byte offset (nonnegative by construction).
struct AbsVal {
  enum class Kind { Scalar, Ptr };

  Kind K = Kind::Scalar;
  solver::LinTerm T;   ///< Scalar: the word value; Ptr: the byte offset.
  int Region = -1;     ///< Ptr only.

  static AbsVal scalar(solver::LinTerm T) {
    return {Kind::Scalar, std::move(T), -1};
  }
  static AbsVal ptr(int Region, solver::LinTerm Off) {
    return {Kind::Ptr, std::move(Off), Region};
  }

  bool sameAs(const AbsVal &O) const {
    return K == O.K && Region == O.Region && T.str() == O.T.str();
  }
};

struct SymState {
  std::map<std::string, AbsVal> Env;

  /// Path-sensitive facts, each row meaning Term ≥ 0, keyed by the term's
  /// canonical rendering so joins can intersect. Value: term + reason.
  std::map<std::string, std::pair<solver::LinTerm, std::string>> Facts;

  /// Stackalloc regions whose lifetime has ended on this path.
  std::set<int> DeadRegions;

  void addFact(const solver::LinTerm &T, const std::string &Reason);
};

class SymbolicDomain {
public:
  using State = SymState;

  /// A memory access surfaced to the bounds checker during replay.
  struct Access {
    enum class Kind { Load, Store, Table };
    Kind K = Kind::Load;
    std::string Site;            ///< Path of the access expression's stmt.
    const bedrock::Expr *E = nullptr; ///< The Load/TableGet (null for Store).
    AbsVal Addr;                 ///< Address (Load/Store) or index (Table).
    unsigned Bytes = 1;          ///< Access width.
    const bedrock::InlineTable *Table = nullptr;
  };
  using CheckSink =
      std::function<void(const Access &, SymState &, solver::FactDb &)>;

  SymbolicDomain(const Cfg &G, const bedrock::Function &Fn, const AbiInfo &Abi)
      : G(G), Fn(Fn), Abi(Abi) {}

  State entry() const;
  void transfer(const Cfg &G, const BasicBlock &B, const CfgStmt &S,
                State &St) const;
  std::optional<State> edge(const Cfg &G, const BasicBlock &B, const State &St,
                            bool Taken) const;
  bool join(unsigned BlockId, State &Into, const State &From) const;

  /// Structural equality: same bindings, fact keys, and dead regions.
  bool same(const State &X, const State &Y) const;

  /// Phis minted against a stale back-edge state are sticky (both sides
  /// stay unequal forever), so loops must re-seed when their entry
  /// changes (see Dataflow.h).
  bool restartLoops() const { return true; }

  /// Rebuilds a solver database from a state's fact rows plus the entry
  /// facts.
  solver::FactDb materialize(const State &St) const;

  /// Installs a callback receiving every Load/Store/TableGet the transfer
  /// functions evaluate (the bounds checker's replay pass).
  void setSink(CheckSink S) { Sink = std::move(S); }

private:
  const Cfg &G;
  const bedrock::Function &Fn;
  const AbiInfo &Abi;
  CheckSink Sink;

  /// Mints deterministic fresh symbols: "%<Site>#<Counter>".
  struct EvalCtx {
    std::string Site;
    unsigned Counter = 0;
    std::string fresh() { return "%" + Site + "#" + std::to_string(Counter++); }
  };

  AbsVal eval(SymState &St, solver::FactDb &Db, const bedrock::Expr &E,
              EvalCtx &Ctx) const;
  AbsVal evalBin(SymState &St, solver::FactDb &Db, const bedrock::Bin &E,
                 EvalCtx &Ctx) const;
  /// Adds T ≥ 0 to both the state (for joins) and the working database
  /// (for subsequent probes in the same evaluation).
  static void addFact(SymState &St, solver::FactDb &Db,
                      const solver::LinTerm &T, const std::string &Reason);
  /// Fresh opaque scalar known only to be a word (≥ 0).
  AbsVal opaque(SymState &St, solver::FactDb &Db, EvalCtx &Ctx,
                const std::string &Reason) const;

  void refine(SymState &St, solver::FactDb &Db, const bedrock::Expr &Cond,
              bool Taken, EvalCtx &Ctx) const;
};

} // namespace analysis
} // namespace relc

#endif // RELC_ANALYSIS_DOMAINS_H
