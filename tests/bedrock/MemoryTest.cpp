//===- tests/bedrock/MemoryTest.cpp ----------------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "bedrock/Interp.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::bedrock;

namespace {

TEST(MemoryTest, AllocFillRead) {
  Memory M;
  Word Base = M.alloc(8);
  ASSERT_TRUE(bool(M.fill(Base, {1, 2, 3, 4, 5, 6, 7, 8})));
  Result<std::vector<uint8_t>> R = M.read(Base, 8);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(*R, (std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(MemoryTest, GuardGapsBetweenAllocations) {
  Memory M;
  Word A = M.alloc(16);
  Word B = M.alloc(16);
  EXPECT_NE(A, B);
  // One past the end of A is unmapped (no silent bleed into B).
  EXPECT_FALSE(bool(M.loadByte(A + 16)));
  EXPECT_FALSE(bool(M.loadByte(A - 1)));
  EXPECT_TRUE(bool(M.loadByte(B)));
}

TEST(MemoryTest, SizedAccessLittleEndian) {
  Memory M;
  Word Base = M.alloc(8);
  ASSERT_TRUE(bool(M.storeN(AccessSize::Eight, Base, 0x0102030405060708ull)));
  EXPECT_EQ(*M.loadByte(Base), 0x08);
  EXPECT_EQ(*M.loadByte(Base + 7), 0x01);
  EXPECT_EQ(*M.loadN(AccessSize::Four, Base), 0x05060708u);
  EXPECT_EQ(*M.loadN(AccessSize::Two, Base + 2), 0x0506u);
}

TEST(MemoryTest, StoreTruncatesToWidth) {
  Memory M;
  Word Base = M.alloc(4);
  ASSERT_TRUE(bool(M.storeN(AccessSize::Two, Base, 0xABCD1234ull)));
  EXPECT_EQ(*M.loadN(AccessSize::Two, Base), 0x1234u);
}

TEST(MemoryTest, CrossBoundaryAccessFails) {
  Memory M;
  Word Base = M.alloc(4);
  EXPECT_FALSE(bool(M.loadN(AccessSize::Eight, Base)));
  EXPECT_FALSE(bool(M.storeN(AccessSize::Four, Base + 1, 0)));
  EXPECT_TRUE(bool(M.storeN(AccessSize::Four, Base, 0)));
}

TEST(MemoryTest, FreeRequiresExactBlock) {
  Memory M;
  Word Base = M.alloc(32);
  EXPECT_FALSE(bool(M.free(Base + 1, 31))); // Not a base.
  EXPECT_FALSE(bool(M.free(Base, 16)));     // Wrong size.
  EXPECT_TRUE(bool(M.free(Base, 32)));
  EXPECT_FALSE(bool(M.loadByte(Base))); // Gone.
  EXPECT_EQ(M.liveAllocations(), 0u);
}

TEST(MemoryTest, ZeroSizeAllocationsAreDistinct) {
  Memory M;
  Word A = M.alloc(0);
  Word B = M.alloc(0);
  EXPECT_NE(A, B);
  EXPECT_FALSE(bool(M.loadByte(A)));
  EXPECT_TRUE(bool(M.free(A, 0)));
  EXPECT_TRUE(bool(M.free(B, 0)));
}

} // namespace
