# Empty dependencies file for table1_extensions.
# This may be replaced when dependencies are built.
