//===- reflect/ReflectExpr.h - The reflective expression compiler -*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The §4.1.3 case study's *original* expression-compiler design, kept for
// the ablation: "we compiled expressions by reifying them into an AST type
// and then using a very simple verified compiler targeting Bedrock2's
// expression language" — a closed, monolithic pipeline:
//
//   1. reify:    FunLang expression -> RExpr (a dedicated reified AST
//                covering a *fixed* grammar: literals, variables, the base
//                word operators); anything else fails to reify,
//   2. compile:  RExpr -> Bedrock2 expression by structural recursion,
//   3. certify:  interpret the RExpr back and compare against the Bedrock2
//                expression's denotation on sample environments (the
//                "interpreting deeply embedded results back" discipline).
//
// Extending it means editing the RExpr type, the reifier, the compiler
// *and* the certifier — the paper's complaint ("it required modifications
// in increasingly complex Coq tactics", and per-program customization
// "required duplicating the entire compiler"). The relational expression
// compiler in core/ExprCompile.* replaces all of this with independent
// rules. The sec413 bench measures both designs' LoC (section markers
// below) and compilation throughput.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_REFLECT_REFLECTEXPR_H
#define RELC_REFLECT_REFLECTEXPR_H

#include "bedrock/Ast.h"
#include "ir/Expr.h"
#include "support/Result.h"

#include <map>
#include <memory>
#include <string>

namespace relc {
namespace reflect {

/// The reified expression AST (closed grammar).
struct RExpr {
  enum class Kind { Lit, Var, Op } TheKind = Kind::Lit;
  uint64_t Lit = 0;
  std::string Var;
  ir::WordOp Op = ir::WordOp::Add;
  std::shared_ptr<const RExpr> Lhs, Rhs;

  std::string str() const;
};

using RExprPtr = std::shared_ptr<const RExpr>;

/// Step 1: reification. Fails on any construct outside the closed grammar
/// (casts, selects, array and table reads all fail — the monolithic
/// design's extension cost is exactly that this function, the compiler
/// and the certifier must all change together).
Result<RExprPtr> reify(const ir::Expr &E);

/// Step 2: the simple verified compiler RExpr -> Bedrock2 expression.
bedrock::ExprPtr compileReified(const RExpr &E);

/// Denotation of the reified AST (word-valued; comparisons yield 0/1).
Result<uint64_t> evalReified(const RExpr &E,
                             const std::map<std::string, uint64_t> &Env);

/// Step 3: per-run certification — checks the compiled Bedrock2 expression
/// against the reified denotation on \p Samples random environments.
Status certifyReified(const RExpr &E, const bedrock::Expr &Compiled,
                      unsigned Samples = 16, uint64_t Seed = 0xab1e);

/// The whole pipeline: reify, compile, certify; returns the target
/// expression. The reflective analogue of ExprCompiler::compile.
Result<bedrock::ExprPtr> compileExprReflective(const ir::Expr &E);

} // namespace reflect
} // namespace relc

#endif // RELC_REFLECT_REFLECTEXPR_H
